(* The deterministic task/pool layer: results in submission order at
   any job count, per-task exception capture, edge cases (zero tasks,
   one task, more workers than tasks), and byte-identical output when a
   real simulation — a full Paxos run per task — executes on worker
   domains instead of the coordinator. *)

open Rdma_sim
open Rdma_consensus

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string

let squares n =
  List.init n (fun i ->
      Task.make ~label:(Printf.sprintf "sq%d" i) ~seed:i (fun ~seed ->
          seed * seed))

(* {2 Ordering} *)

(* Results come back in submission order no matter how many domains
   race over the queue, including uneven per-task workloads. *)
let test_submission_order () =
  List.iter
    (fun jobs ->
      let tasks =
        List.init 17 (fun i ->
            Task.make ~label:(Printf.sprintf "t%d" i) ~seed:i (fun ~seed ->
                (* skew the work so completion order differs from
                   submission order under real parallelism *)
                let spin = (17 - seed) * 1000 in
                let acc = ref 0 in
                for k = 1 to spin do
                  acc := !acc + k
                done;
                ignore !acc;
                seed))
      in
      check (Alcotest.list int)
        (Printf.sprintf "order at jobs=%d" jobs)
        (List.init 17 Fun.id)
        (Pool.run_exn ~jobs tasks))
    [ 1; 2; 4; 32 ]

(* {2 Edge cases} *)

let test_zero_tasks () =
  check (Alcotest.list int) "zero tasks" [] (Pool.run_exn ~jobs:4 []);
  check (Alcotest.list int) "zero tasks inline" [] (Pool.run_exn ~jobs:1 [])

let test_single_task () =
  check (Alcotest.list int) "one task, many workers" [ 49 ]
    (Pool.run_exn ~jobs:8 (squares 8 |> List.filteri (fun i _ -> i = 7)))

let test_more_workers_than_tasks () =
  check (Alcotest.list int) "jobs > tasks" [ 0; 1; 4 ]
    (Pool.run_exn ~jobs:64 (squares 3))

(* {2 Exception capture} *)

exception Boom of int

let mixed_tasks =
  List.init 6 (fun i ->
      Task.make ~label:(Printf.sprintf "mixed%d" i) ~seed:i (fun ~seed ->
          if seed mod 2 = 1 then raise (Boom seed) else seed * 10))

(* A raising task fills its own slot with [Error]; its neighbours are
   unaffected, and the error remembers which task raised. *)
let test_exception_capture () =
  List.iter
    (fun jobs ->
      let results = Pool.run ~jobs mixed_tasks in
      check int "six slots" 6 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v ->
              check int (Printf.sprintf "slot %d ok" i) (i * 10) v;
              check Alcotest.bool "even seeds succeed" true (i mod 2 = 0)
          | Error { Pool.task_label; task_seed; exn } ->
              check Alcotest.bool "odd seeds fail" true (i mod 2 = 1);
              check string "label" (Printf.sprintf "mixed%d" i) task_label;
              check int "seed" i task_seed;
              (match exn with
              | Boom n -> check int "payload" i n
              | e -> Alcotest.failf "unexpected exn %s" (Printexc.to_string e)))
        results)
    [ 1; 4 ]

(* [run_exn] re-raises the first error in submission order — seed 1
   here — even if a later task's exception happened first on the
   wall clock. *)
let test_run_exn_reraises_first () =
  List.iter
    (fun jobs ->
      match Pool.run_exn ~jobs mixed_tasks with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom n -> check int "first failing seed" 1 n)
    [ 1; 4 ]

(* {2 Determinism with real simulations} *)

let paxos_digest (report : Report.t) =
  Fmt.str "%a" Report.pp report

(* Each task runs a complete seeded Paxos simulation (its own engine,
   cluster and collector inside the worker domain).  The folded digest
   must be byte-identical at every job count. *)
let test_seeded_sim_digest () =
  let batch jobs =
    Pool.run_exn ~jobs
      (List.init 6 (fun i ->
           Task.make ~label:(Printf.sprintf "paxos%d" i) ~seed:(100 + i)
             (fun ~seed ->
               let n = 3 in
               let inputs = Array.init n (Printf.sprintf "s%d-v%d" seed) in
               paxos_digest (Paxos.run ~n ~seed ~inputs ()))))
    |> String.concat "\n"
  in
  let reference = batch 1 in
  List.iter
    (fun jobs ->
      check string (Printf.sprintf "digest at jobs=%d" jobs) reference
        (batch jobs))
    [ 2; 4 ]

let suite =
  [
    Alcotest.test_case "results in submission order" `Quick
      test_submission_order;
    Alcotest.test_case "zero tasks" `Quick test_zero_tasks;
    Alcotest.test_case "single task" `Quick test_single_task;
    Alcotest.test_case "more workers than tasks" `Quick
      test_more_workers_than_tasks;
    Alcotest.test_case "exceptions captured per slot" `Quick
      test_exception_capture;
    Alcotest.test_case "run_exn re-raises first error" `Quick
      test_run_exn_reraises_first;
    Alcotest.test_case "seeded sims byte-identical at any -j" `Quick
      test_seeded_sim_digest;
  ]
