(* Crypto substrate tests: SHA-256 against the NIST FIPS 180-4 example
   vectors, HMAC-SHA256 against RFC 4231, and the keychain's simulated
   unforgeability. *)

open Rdma_crypto

let check_hash msg expected =
  Alcotest.(check string) ("sha256 of " ^ String.escaped (String.sub msg 0 (min 16 (String.length msg))))
    expected (Sha256.hex_of_string msg)

let test_sha256_empty () =
  check_hash "" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"

let test_sha256_abc () =
  check_hash "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"

let test_sha256_two_blocks () =
  check_hash "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"

let test_sha256_448bit_boundary () =
  (* 56 bytes: forces the padding to spill into a second block *)
  check_hash (String.make 56 'a')
    "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"

let test_sha256_million_a () =
  check_hash (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_sha256_incremental () =
  (* Feeding in odd-sized chunks must match the one-shot digest. *)
  let msg = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let chunk_sizes = [ 1; 3; 63; 64; 65; 100; 704 ] in
  List.iter
    (fun size ->
      let size = min size (String.length msg - !pos) in
      Sha256.feed_string ctx (String.sub msg !pos size);
      pos := !pos + size)
    chunk_sizes;
  Alcotest.(check string) "incremental = one-shot"
    (Sha256.to_hex (Sha256.digest_string msg))
    (Sha256.to_hex (Sha256.finalize ctx))

(* RFC 4231 test case 1 *)
let test_hmac_rfc4231_1 () =
  let key = String.make 20 '\x0b' in
  Alcotest.(check string) "rfc4231 #1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hmac.mac_hex ~key "Hi There")

(* RFC 4231 test case 2 *)
let test_hmac_rfc4231_2 () =
  Alcotest.(check string) "rfc4231 #2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?")

(* RFC 4231 test case 3: key 20 x 0xaa, data 50 x 0xdd *)
let test_hmac_rfc4231_3 () =
  let key = String.make 20 '\xaa' in
  let data = String.make 50 '\xdd' in
  Alcotest.(check string) "rfc4231 #3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (Hmac.mac_hex ~key data)

(* RFC 4231 test case 6: 131-byte key (hashed first) *)
let test_hmac_rfc4231_6 () =
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "rfc4231 #6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hmac.mac_hex ~key "Test Using Larger Than Block-Size Key - Hash Key First")

let test_sign_verify () =
  let chain = Keychain.create ~n:4 () in
  let s1 = Keychain.signer chain 1 in
  let signature = Keychain.sign s1 "hello" in
  Alcotest.(check bool) "valid for author" true
    (Keychain.valid chain ~author:1 "hello" signature);
  Alcotest.(check bool) "s_valid agrees" true (Keychain.s_valid chain "hello" signature);
  Alcotest.(check bool) "wrong payload rejected" false
    (Keychain.valid chain ~author:1 "hell0" signature);
  Alcotest.(check bool) "wrong author rejected" false
    (Keychain.valid chain ~author:2 "hello" signature)

let test_forgery_rejected () =
  let chain = Keychain.create ~n:4 () in
  let forged = Keychain.forge ~author:2 "payload" in
  Alcotest.(check bool) "forged signature invalid" false
    (Keychain.valid chain ~author:2 "payload" forged)

let test_cross_process_signature () =
  (* A signature by p3 must not validate as p1 even on the same payload. *)
  let chain = Keychain.create ~n:4 () in
  let s3 = Keychain.signer chain 3 in
  let signature = Keychain.sign s3 "v" in
  Alcotest.(check bool) "author mismatch rejected" false
    (Keychain.valid chain ~author:1 "v" signature)

let test_signature_codec () =
  let chain = Keychain.create ~n:4 () in
  let s0 = Keychain.signer chain 0 in
  let signature = Keychain.sign s0 "round-trip" in
  match Keychain.decode (Keychain.encode signature) with
  | None -> Alcotest.fail "decode failed"
  | Some s' ->
      Alcotest.(check bool) "decoded signature still valid" true
        (Keychain.valid chain ~author:0 "round-trip" s');
      Alcotest.(check int) "author preserved" 0 (Keychain.author s')

let test_decode_garbage () =
  Alcotest.(check bool) "garbage rejected" true (Keychain.decode "zz" = None);
  Alcotest.(check bool) "half-garbage rejected" true (Keychain.decode "1:nothex" = None);
  Alcotest.(check bool) "bad hex rejected" true
    (Keychain.decode ("1:" ^ String.make 64 'z') = None)

let test_hooks_count () =
  let chain = Keychain.create ~n:2 () in
  let signs = ref 0 and verifies = ref 0 in
  Keychain.set_hooks chain
    ~on_sign:(fun pid -> if pid = 0 then incr signs)
    ~on_verify:(fun ~ok:_ -> incr verifies);
  let s = Keychain.signer chain 0 in
  let g = Keychain.sign s "x" in
  ignore (Keychain.valid chain ~author:0 "x" g);
  ignore (Keychain.s_valid chain "x" g);
  Alcotest.(check int) "signs counted" 1 !signs;
  Alcotest.(check int) "verifies counted" 2 !verifies

(* qcheck properties *)

let qcheck_digest_shape =
  QCheck2.Test.make ~name:"sha256: digests are 32 bytes and deterministic" ~count:200
    QCheck2.Gen.(string_size (0 -- 300))
    (fun s ->
      let d = Sha256.digest_string s in
      String.length d = 32 && String.equal d (Sha256.digest_string s))

let qcheck_distinct_inputs_distinct_digests =
  QCheck2.Test.make ~name:"sha256: no accidental collisions in samples" ~count:200
    QCheck2.Gen.(pair (string_size (0 -- 100)) (string_size (0 -- 100)))
    (fun (a, b) -> a = b || Sha256.digest_string a <> Sha256.digest_string b)

let qcheck_hmac_key_separation =
  QCheck2.Test.make ~name:"hmac: different keys give different macs" ~count:200
    QCheck2.Gen.(tup3 (string_size (1 -- 40)) (string_size (1 -- 40)) (string_size (0 -- 60)))
    (fun (k1, k2, msg) -> k1 = k2 || not (Hmac.equal (Hmac.mac ~key:k1 msg) (Hmac.mac ~key:k2 msg)))

let qcheck_signature_roundtrip =
  QCheck2.Test.make ~name:"keychain: encode/decode preserves validity" ~count:100
    QCheck2.Gen.(pair (0 -- 3) (string_size (0 -- 60)))
    (fun (pid, payload) ->
      let chain = Keychain.create ~n:4 () in
      let s = Keychain.sign (Keychain.signer chain pid) payload in
      match Keychain.decode (Keychain.encode s) with
      | Some s' -> Keychain.valid chain ~author:pid payload s'
      | None -> false)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_digest_shape;
    QCheck_alcotest.to_alcotest qcheck_distinct_inputs_distinct_digests;
    QCheck_alcotest.to_alcotest qcheck_hmac_key_separation;
    QCheck_alcotest.to_alcotest qcheck_signature_roundtrip;
    Alcotest.test_case "sha256: empty string" `Quick test_sha256_empty;
    Alcotest.test_case "sha256: abc" `Quick test_sha256_abc;
    Alcotest.test_case "sha256: NIST two-block message" `Quick test_sha256_two_blocks;
    Alcotest.test_case "sha256: 56-byte padding boundary" `Quick
      test_sha256_448bit_boundary;
    Alcotest.test_case "sha256: one million a" `Slow test_sha256_million_a;
    Alcotest.test_case "sha256: incremental feeding" `Quick test_sha256_incremental;
    Alcotest.test_case "hmac: RFC 4231 case 1" `Quick test_hmac_rfc4231_1;
    Alcotest.test_case "hmac: RFC 4231 case 2" `Quick test_hmac_rfc4231_2;
    Alcotest.test_case "hmac: RFC 4231 case 3" `Quick test_hmac_rfc4231_3;
    Alcotest.test_case "hmac: RFC 4231 case 6 (long key)" `Quick test_hmac_rfc4231_6;
    Alcotest.test_case "keychain: sign/verify" `Quick test_sign_verify;
    Alcotest.test_case "keychain: forgery rejected" `Quick test_forgery_rejected;
    Alcotest.test_case "keychain: cross-process rejected" `Quick
      test_cross_process_signature;
    Alcotest.test_case "keychain: wire codec round trip" `Quick test_signature_codec;
    Alcotest.test_case "keychain: garbage decode rejected" `Quick test_decode_garbage;
    Alcotest.test_case "keychain: hooks count operations" `Quick test_hooks_count;
  ]
