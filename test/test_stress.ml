(* Stress sweeps: exhaustive small grids of (who crashes, when, seed)
   checking the safety invariants of the flagship algorithms, plus the
   I/O trace plumbing. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let test_fast_robust_crash_grid () =
  (* Every (crashed pid, crash time, seed) in a small grid: agreement and
     validity must hold in all of them; the fast-path value, when p0
     decided, must survive. *)
  let n = 3 and m = 3 in
  List.iter
    (fun pid ->
      List.iter
        (fun at ->
          List.iter
            (fun seed ->
              let faults = [ Fault.Crash_process { pid; at } ] in
              let report, _, _ = Fast_robust.run ~seed ~n ~m ~inputs:(inputs n) ~faults () in
              let label = Printf.sprintf "p%d@%.1f seed=%d" pid at seed in
              Alcotest.(check bool) ("agreement " ^ label) true
                (Report.agreement_ok report);
              Alcotest.(check bool) ("validity " ^ label) true
                (Report.validity_ok report ~inputs:(inputs n));
              Alcotest.(check bool) ("survivors decide " ^ label) true
                (Report.decided_count report >= 2))
            [ 1; 2 ])
        [ 0.5; 1.5; 2.5; 40.0 ])
    [ 0; 1; 2 ]

let test_pmp_two_fault_grid () =
  (* One process crash and one memory crash, swept jointly. *)
  let n = 3 and m = 3 in
  List.iter
    (fun (pid, p_at) ->
      List.iter
        (fun (mid, m_at) ->
          let faults =
            [ Fault.Crash_process { pid; at = p_at }; Fault.Crash_memory { mid; at = m_at } ]
          in
          let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
          let label = Printf.sprintf "p%d@%.1f mu%d@%.1f" pid p_at mid m_at in
          Alcotest.(check bool) ("agreement " ^ label) true (Report.agreement_ok report);
          Alcotest.(check bool) ("validity " ^ label) true
            (Report.validity_ok report ~inputs:(inputs n));
          Alcotest.(check bool) ("survivors decide " ^ label) true
            (Report.decided_count report >= 1))
        [ (0, 0.5); (1, 1.5); (2, 3.0) ])
    [ (0, 1.0); (1, 2.0); (2, 10.0) ]

let test_cheap_quorum_crash_grid () =
  (* Cheap Quorum standalone under every (crashed pid, crash time, seed)
     in a small grid.  It is not a complete consensus algorithm, so the
     invariants are the abort lemmas' (4.5/4.6): every survivor reaches
     an outcome (panic mode terminates), and all decided values agree. *)
  let open Rdma_mm in
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "y" |] in
  let cq_cfg = { Cheap_quorum.default_config with fast_timeout = 60.0 } in
  List.iter
    (fun pid ->
      List.iter
        (fun at ->
          List.iter
            (fun seed ->
              let label = Printf.sprintf "p%d@%.1f seed=%d" pid at seed in
              let cluster : string Cluster.t =
                Cluster.create ~seed
                  ~legal_change:(Cheap_quorum.legal_change ~n) ~n ~m ()
              in
              Cheap_quorum.setup_regions cluster;
              let outcomes = Array.make n None in
              for p = 0 to n - 1 do
                Cluster.spawn cluster ~pid:p (fun ctx ->
                    outcomes.(p) <-
                      Some
                        (Cheap_quorum.participate ctx ~cfg:cq_cfg
                           ~input:inputs.(p) ()))
              done;
              Fault.apply cluster [ Fault.Crash_process { pid; at } ];
              Cluster.run cluster;
              Cluster.check_errors cluster;
              let decided = ref [] in
              Array.iteri
                (fun p o ->
                  if p <> pid then begin
                    (match o with
                    | Some (Cheap_quorum.Decided { value; _ }) ->
                        decided := value :: !decided
                    | Some (Cheap_quorum.Aborted _) -> ()
                    | None ->
                        Alcotest.failf "survivor p%d hung (%s)" p label)
                  end)
                outcomes;
              match List.sort_uniq compare !decided with
              | [] | [ _ ] -> ()
              | vs ->
                  Alcotest.failf "conflicting decisions %s (%s)"
                    (String.concat "," vs) label)
            [ 1; 2 ])
        [ 0.5; 1.5; 30.0 ])
    [ 0; 1; 2 ]

let test_robust_backup_crash_grid () =
  (* Robust Backup (Paxos over T-send/T-receive) under the same style of
     grid: full weak-Byzantine-agreement invariants must hold, and both
     survivors must decide — including when the crash lands mid-run
     while histories are in flight. *)
  let n = 3 and m = 3 in
  List.iter
    (fun pid ->
      List.iter
        (fun at ->
          List.iter
            (fun seed ->
              let faults = [ Fault.Crash_process { pid; at } ] in
              let report, byz =
                Robust_backup.run ~seed ~n ~m ~inputs:(inputs n) ~faults ()
              in
              let label = Printf.sprintf "p%d@%.1f seed=%d" pid at seed in
              Alcotest.(check (list int)) ("no byzantine " ^ label) [] byz;
              Alcotest.(check bool) ("agreement " ^ label) true
                (Report.agreement_ok report);
              Alcotest.(check bool) ("validity " ^ label) true
                (Report.validity_ok report ~inputs:(inputs n));
              Alcotest.(check bool) ("survivors decide " ^ label) true
                (Report.decided_count report >= 2))
            [ 1; 2 ])
        [ 1.0; 20.0; 150.0 ])
    [ 0; 1; 2 ]

let test_fast_robust_panic_at_phase_boundary () =
  (* The panic/slow-path switch, pinned to the exact phase boundary: a
     telemetry trigger crashes the leader the instant the cheap-quorum
     span opens, forcing the abort -> Preferential Paxos switch; the
     survivors must still decide one valid value. *)
  let open Rdma_chaos in
  match Scenario.find "fast-robust" with
  | None -> Alcotest.fail "fast-robust scenario not registered"
  | Some s ->
      List.iter
        (fun occurrence ->
          let case =
            {
              Nemesis.case_seed = 7;
              faults = [];
              byz = [];
              triggers =
                [
                  {
                    Nemesis.phase = "fr.cheap-quorum";
                    occurrence;
                    action = Nemesis.Crash_leader;
                  };
                ];
            }
          in
          let outcome = Scenario.run s case in
          Alcotest.(check bool)
            (Printf.sprintf "trigger fired (occurrence %d)" occurrence)
            true
            (outcome.Scenario.fired <> []);
          Alcotest.(check (list string))
            (Printf.sprintf "survivors decide after panic (occurrence %d)"
               occurrence)
            []
            (List.map Oracle.violation_to_string outcome.Scenario.violations))
        [ 1; 2 ]

let test_io_trace_captures_fast_path () =
  (* enable_io_trace records the m slot writes of the 2-delay fast path. *)
  let open Rdma_mm in
  let open Rdma_sim in
  let n = 2 and m = 3 in
  let captured = ref None in
  let prepare cluster =
    captured := Some cluster;
    Cluster.enable_io_trace cluster
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~prepare () in
  Alcotest.(check bool) "decided" true (Report.decided_count report > 0);
  match !captured with
  | None -> Alcotest.fail "prepare hook never ran"
  | Some cluster ->
      let trace = Cluster.trace cluster in
      let writes =
        Trace.count trace (fun e ->
            e.Trace.at = 1.0
            && String.length e.Trace.label > 8
            && String.sub e.Trace.label 0 8 = "p0 write")
      in
      Alcotest.(check int) "m slot writes arrive at t=1" m writes

let suite =
  [
    Alcotest.test_case "fast-robust crash grid (24 runs)" `Slow
      test_fast_robust_crash_grid;
    Alcotest.test_case "protected-paxos two-fault grid (9 runs)" `Quick
      test_pmp_two_fault_grid;
    Alcotest.test_case "cheap-quorum crash grid (18 runs)" `Slow
      test_cheap_quorum_crash_grid;
    Alcotest.test_case "robust-backup crash grid (18 runs)" `Slow
      test_robust_backup_crash_grid;
    Alcotest.test_case "fast-robust panic at the phase boundary" `Quick
      test_fast_robust_panic_at_phase_boundary;
    Alcotest.test_case "I/O trace captures the fast path" `Quick
      test_io_trace_captures_fast_path;
  ]
