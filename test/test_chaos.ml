(* Chaos harness tests: fault-schedule codec round-trips, schedule
   validation, nemesis determinism and budget discipline, exploration
   determinism, shrinking to minimal counterexamples, telemetry-driven
   adversary triggers, and Byzantine containment under attack-augmented
   schedules. *)

open Rdma_obs
open Rdma_mm
open Rdma_consensus
open Rdma_chaos

let fault = Alcotest.testable Fault.pp ( = )

let schedule : Fault.t list =
  [
    Crash_process { pid = 1; at = 3.5 };
    Crash_memory { mid = 0; at = 2.0 };
    Set_leader { pid = 2; at = 7.25 };
    Async_until { gst = 12.0; extra = 4.0 };
    Random_latency { min = 0.5; max = 2.5 };
    Crash_machine { pid = 0; mid = 2; at = 9.0 };
    Partition { pairs = [ (0, 1); (2, 0) ]; at = 4.0 };
    Heal { at = 11.0 };
    Recover_memory { mid = 0; at = 6.5 };
    Restart_machine { pid = 0; mid = 2; at = 14.0 };
    Set_ordering { mode = Rdma_mem.Ordering.Strict };
    Set_ordering { mode = Rdma_mem.Ordering.Completion_lag { max_lag = 6.0 } };
    Set_ordering { mode = Rdma_mem.Ordering.Reorder_qp { window = 4.5 } };
  ]

let test_codec_round_trip () =
  match Fault_codec.schedule_of_json (Fault_codec.schedule_to_json schedule) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok decoded ->
      Alcotest.(check (list fault)) "full vocabulary survives" schedule decoded

let test_codec_deterministic () =
  let render () = Json.to_string (Fault_codec.schedule_to_json schedule) in
  Alcotest.(check string) "same schedule, same bytes" (render ()) (render ());
  (* and the rendered form parses back through the generic JSON layer *)
  match Json.parse (render ()) with
  | Error e -> Alcotest.failf "rendered JSON does not parse: %s" e
  | Ok json -> (
      match Fault_codec.schedule_of_json json with
      | Error e -> Alcotest.failf "parsed JSON does not decode: %s" e
      | Ok decoded ->
          Alcotest.(check (list fault)) "parse . print = id" schedule decoded)

let test_codec_rejects_garbage () =
  (match Fault_codec.of_json (Json.String "crash") with
  | Ok _ -> Alcotest.fail "decoded a bare string"
  | Error _ -> ());
  (match Fault_codec.schedule_of_json (Json.List [ Json.Int 3 ]) with
  | Ok _ -> Alcotest.fail "decoded a schedule of ints"
  | Error _ -> ());
  (* set-ordering requires a known mode and its parameter *)
  (match
     Fault_codec.of_json
       (Json.Obj
          [ ("kind", Json.String "set-ordering"); ("mode", Json.String "tso") ])
   with
  | Ok _ -> Alcotest.fail "decoded an unknown ordering mode"
  | Error _ -> ());
  match
    Fault_codec.of_json
      (Json.Obj
         [
           ("kind", Json.String "set-ordering");
           ("mode", Json.String "completion-lag");
         ])
  with
  | Ok _ -> Alcotest.fail "decoded completion-lag without max_lag"
  | Error _ -> ()

(* Fault.apply validates every target up front: a typo'd pid/mid is a
   schedule bug, not a silent no-op. *)
let test_apply_validates_targets () =
  let cluster : string Cluster.t = Cluster.create ~n:3 ~m:1 () in
  Alcotest.check_raises "pid out of range"
    (Invalid_argument "Fault.apply: pid 5 outside cluster of 3 processes")
    (fun () -> Fault.apply cluster [ Crash_process { pid = 5; at = 1.0 } ]);
  Alcotest.check_raises "mid out of range"
    (Invalid_argument "Fault.apply: mid 1 outside cluster of 1 memories")
    (fun () -> Fault.apply cluster [ Crash_memory { mid = 1; at = 1.0 } ]);
  Alcotest.check_raises "partition pairs are validated too"
    (Invalid_argument "Fault.apply: pid 9 outside cluster of 3 processes")
    (fun () ->
      Fault.apply cluster [ Partition { pairs = [ (0, 9) ]; at = 1.0 } ]);
  Alcotest.check_raises "machine crash checks both halves"
    (Invalid_argument "Fault.apply: mid 4 outside cluster of 1 memories")
    (fun () ->
      Fault.apply cluster [ Crash_machine { pid = 0; mid = 4; at = 1.0 } ]);
  Alcotest.check_raises "memory recovery target validated"
    (Invalid_argument "Fault.apply: mid 7 outside cluster of 1 memories")
    (fun () ->
      Fault.apply cluster [ Recover_memory { mid = 7; at = 1.0 } ]);
  Alcotest.check_raises "machine restart checks both halves"
    (Invalid_argument "Fault.apply: pid 9 outside cluster of 3 processes")
    (fun () ->
      Fault.apply cluster [ Restart_machine { pid = 9; mid = 0; at = 1.0 } ])

let get_scenario name =
  match Scenario.find name with
  | Some s -> s
  | None -> Alcotest.failf "scenario %s not registered" name

let test_nemesis_deterministic () =
  let s = get_scenario "robust-backup" in
  for seed = 1 to 20 do
    let a = Scenario.generate s ~adversary:true ~byz:true ~seed () in
    let b = Scenario.generate s ~adversary:true ~byz:true ~seed () in
    if a <> b then Alcotest.failf "seed %d generated two different cases" seed
  done

let count p l = List.length (List.filter p l)

(* Every generated schedule stays inside the scenario's fault budget —
   the nemesis never leaves the algorithm's fault model on its own. *)
let test_nemesis_respects_budget () =
  List.iter
    (fun (s : Scenario.t) ->
      let b = s.budget in
      for seed = 1 to 50 do
        let case = Scenario.generate s ~adversary:true ~byz:true ~seed () in
        let faults = case.Nemesis.faults in
        let crashes =
          count (function Fault.Crash_process _ -> true | _ -> false) faults
        in
        let machine =
          count (function Fault.Crash_machine _ -> true | _ -> false) faults
        in
        let mem =
          count (function Fault.Crash_memory _ -> true | _ -> false) faults
        in
        let flaps =
          count (function Fault.Set_leader _ -> true | _ -> false) faults
        in
        let triggered_crashes =
          count
            (fun (tr : Nemesis.trigger) -> tr.action <> Nemesis.Flip_leader)
            case.Nemesis.triggers
        in
        (* crashes from any source — scheduled, Byzantine replacement,
           trigger-fired — share the fP pool *)
        let fp_used =
          crashes + machine + triggered_crashes + List.length case.Nemesis.byz
        in
        if fp_used > b.Nemesis.max_process_crashes then
          Alcotest.failf "%s seed %d: %d process-fault slots > fP=%d" s.name
            seed fp_used b.Nemesis.max_process_crashes;
        if mem + machine > b.Nemesis.max_memory_crashes + b.Nemesis.max_machine_crashes
        then
          Alcotest.failf "%s seed %d: memory budget exceeded" s.name seed;
        let recoveries =
          count
            (function
              | Fault.Recover_memory _ | Fault.Restart_machine _ -> true
              | _ -> false)
            faults
        in
        if recoveries > b.Nemesis.max_recoveries then
          Alcotest.failf "%s seed %d: %d recoveries > %d" s.name seed recoveries
            b.Nemesis.max_recoveries;
        (* +1: when the initial leader goes Byzantine the nemesis adds a
           corrective repoint outside the flap pool *)
        if flaps > b.Nemesis.max_leader_flaps + 1 then
          Alcotest.failf "%s seed %d: %d flaps > %d" s.name seed flaps
            b.Nemesis.max_leader_flaps;
        (* +2: a Partition pick emits its Heal companion, and the
           Byzantine leader fix rides along outside the cap; paired
           recoveries and the prepended ordering-mode fault ride along
           too *)
        let orderings =
          count (function Fault.Set_ordering _ -> true | _ -> false) faults
        in
        if
          List.length faults - orderings
          > b.Nemesis.max_faults + 2 + b.Nemesis.max_recoveries
        then
          Alcotest.failf "%s seed %d: schedule too long" s.name seed;
        List.iter
          (fun f ->
            match (f : Fault.t) with
            | Crash_process { at; _ }
            | Crash_memory { at; _ }
            | Crash_machine { at; _ }
            | Set_leader { at; _ }
            | Partition { at; _ } ->
                if at < 0.0 || at > b.Nemesis.horizon then
                  Alcotest.failf "%s seed %d: fault outside horizon" s.name seed
            | Heal { at } ->
                (* heals land at partition start + 2.0 + U[0, horizon/2),
                   so they may trail the horizon by the 2.0 grace gap *)
                if at < 0.0 || at > b.Nemesis.horizon +. 2.0 then
                  Alcotest.failf "%s seed %d: heal outside horizon" s.name seed
            | Recover_memory { at; _ } | Restart_machine { at; _ } ->
                (* recoveries land at crash + 2.0 + U[0, horizon/2) *)
                if at < 0.0 || at > (b.Nemesis.horizon *. 1.5) +. 2.0 then
                  Alcotest.failf "%s seed %d: recovery outside horizon" s.name
                    seed
            | Async_until { gst; extra } ->
                (* drawn as 1.0 + U[0, max): max_gst = 0 disables the
                   asynchronous prefix entirely, hence the offset *)
                if gst > 1.0 +. b.Nemesis.max_gst || extra > 1.0 +. b.Nemesis.max_extra
                then Alcotest.failf "%s seed %d: GST outside budget" s.name seed
            | Random_latency _ ->
                if not b.Nemesis.allow_latency then
                  Alcotest.failf "%s seed %d: latency not allowed" s.name seed
            | Set_ordering { mode } ->
                if
                  not
                    (List.exists
                       (Rdma_mem.Ordering.equal mode)
                       b.Nemesis.orderings)
                then
                  Alcotest.failf "%s seed %d: ordering mode outside budget"
                    s.name seed)
          faults
      done)
    Scenario.all

(* Forcing an ordering mode consumes no generator draws: the forced
   weak-mode case is the forced-strict case of the same seed with one
   Set_ordering fault prepended, so weak-mode grids are directly
   comparable to their strict baselines, schedule for schedule.  (The
   unforced generator draws from the budget's [orderings] pool, so it is
   NOT the baseline — forcing [Strict] is.) *)
let test_forced_ordering_preserves_schedule () =
  let s = get_scenario "disk-paxos" in
  let mode = Rdma_mem.Ordering.Completion_lag { max_lag = 6.0 } in
  for seed = 1 to 30 do
    let strict =
      Scenario.generate s ~adversary:true ~ordering:Rdma_mem.Ordering.Strict
        ~seed ()
    in
    let weak = Scenario.generate s ~adversary:true ~ordering:mode ~seed () in
    (match weak.Nemesis.faults with
    | Fault.Set_ordering { mode = m } :: rest ->
        if not (Rdma_mem.Ordering.equal m mode) then
          Alcotest.failf "seed %d: wrong mode installed" seed;
        Alcotest.(check (list fault))
          (Printf.sprintf "seed %d: schedule unchanged" seed)
          strict.Nemesis.faults rest
    | _ -> Alcotest.failf "seed %d: no Set_ordering prepended" seed);
    if weak.Nemesis.triggers <> strict.Nemesis.triggers then
      Alcotest.failf "seed %d: triggers diverged" seed;
    (* forcing strict never injects a Set_ordering fault *)
    if
      List.exists
        (function Fault.Set_ordering _ -> true | _ -> false)
        strict.Nemesis.faults
    then Alcotest.failf "seed %d: forced strict installed an ordering" seed
  done

(* With the pool enabled in the scenario budgets, the blind nemesis
   actually draws weak modes: across seeds all three outcomes (strict,
   completion-lag, reordered-qp) appear. *)
let test_nemesis_draws_weak_modes () =
  let s = get_scenario "paxos" in
  let lag = ref 0 and reorder = ref 0 and strict = ref 0 in
  for seed = 1 to 60 do
    let case = Scenario.generate s ~seed () in
    match
      List.find_map
        (function Fault.Set_ordering { mode } -> Some mode | _ -> None)
        case.Nemesis.faults
    with
    | Some (Rdma_mem.Ordering.Completion_lag _) -> incr lag
    | Some (Rdma_mem.Ordering.Reorder_qp _) -> incr reorder
    | Some Rdma_mem.Ordering.Strict ->
        Alcotest.failf "seed %d: explicit strict fault generated" seed
    | None -> incr strict
  done;
  if !lag = 0 || !reorder = 0 || !strict = 0 then
    Alcotest.failf "pool not exercised: strict=%d lag=%d reorder=%d" !strict
      !lag !reorder

(* The -j N determinism contract holds under a forced weak mode too:
   per-op lag draws come from per-memory streams keyed on the case seed,
   never from domain-local state. *)
let test_weak_explore_parallel_deterministic () =
  let s = get_scenario "disk-paxos" in
  let batch jobs =
    let options =
      {
        Explore.default_options with
        runs = 8;
        seed = 1;
        jobs;
        ordering = Some (Rdma_mem.Ordering.Completion_lag { max_lag = 6.0 });
      }
    in
    Explore.explore ~options s
  in
  let a = batch 1 and b = batch 4 in
  Alcotest.(check int) "all ran" 8 (Explore.total a);
  Alcotest.(check string) "metrics bytes -j1 = -j4"
    (Export.metrics a.Explore.metrics)
    (Export.metrics b.Explore.metrics)

let batch_digest (b : Explore.batch) =
  let failure (f : Explore.failure) =
    Printf.sprintf "seed=%d probes=%d %s" f.outcome.case.Nemesis.case_seed
      f.shrink_probes
      (Repro.to_string f.repro)
  in
  Printf.sprintf "passed=%d failures=[%s]" b.passed
    (String.concat ";" (List.map failure b.failures))

let test_explore_deterministic () =
  let s = get_scenario "paxos" in
  let options =
    { Explore.default_options with runs = 12; seed = 5; over_budget = true }
  in
  let a = Explore.explore ~options s in
  let b = Explore.explore ~options s in
  Alcotest.(check string) "identical batches" (batch_digest a) (batch_digest b)

(* The pool determinism contract: a batch explored across 4 domains is
   indistinguishable — failures, shrink-probe counts, repro artifacts
   AND the merged metrics snapshot, byte for byte — from the same batch
   explored inline.  Exercised with violations so the parallel shrinker
   runs too. *)
let test_explore_parallel_deterministic () =
  let s = get_scenario "paxos" in
  let batch jobs =
    let options =
      {
        Explore.default_options with
        runs = 12;
        seed = 1;
        over_budget = true;
        jobs;
      }
    in
    Explore.explore ~options s
  in
  let a = batch 1 and b = batch 4 in
  Alcotest.(check string) "digest -j1 = -j4" (batch_digest a) (batch_digest b);
  Alcotest.(check string) "metrics bytes -j1 = -j4"
    (Export.metrics a.Explore.metrics)
    (Export.metrics b.Explore.metrics);
  Alcotest.(check bool) "batch has violations to shrink" true
    (a.Explore.failures <> [])

(* Clean batches merge metrics too: every case contributes its
   collector, in seed order, so the snapshot is non-empty and stable. *)
let test_explore_metrics_merged () =
  let s = get_scenario "paxos" in
  let options = { Explore.default_options with runs = 6; seed = 2 } in
  let batch = Explore.explore ~options s in
  Alcotest.(check int) "all passed" 6 batch.Explore.passed;
  Alcotest.(check bool) "merged metrics non-empty" true
    (Obs.histograms batch.Explore.metrics <> []
    || Obs.counters batch.Explore.metrics <> [])

(* The flagship acceptance demo: an over-budget paxos batch violates,
   the shrinker strictly reduces the schedule, and replaying the repro
   artifact still violates. *)
let test_shrinker_minimizes () =
  let s = get_scenario "paxos" in
  let options =
    { Explore.default_options with runs = 12; seed = 1; over_budget = true }
  in
  let batch = Explore.explore ~options s in
  match batch.failures with
  | [] -> Alcotest.fail "over-budget paxos batch found no violation"
  | f :: _ ->
      let original = List.length f.repro.Repro.original_faults in
      let minimized = List.length f.repro.Repro.faults in
      if minimized >= original then
        Alcotest.failf "no shrink: %d -> %d faults" original minimized;
      (* the minimized schedule must still reproduce the violation *)
      let replayed = Explore.replay s f.repro in
      Alcotest.(check bool) "replay still violates" false
        (Scenario.passed replayed);
      (* and the artifact survives a JSON round trip bit-for-bit *)
      (match Repro.of_string (Repro.to_string f.repro) with
      | Error e -> Alcotest.failf "artifact round trip failed: %s" e
      | Ok again ->
          Alcotest.(check string) "artifact bytes stable"
            (Repro.to_string f.repro) (Repro.to_string again));
      (* 1-minimality: dropping any single remaining fault loses the
         violation, so this is a *minimal* counterexample *)
      List.iteri
        (fun i _ ->
          let without =
            List.filteri (fun j _ -> j <> i) f.repro.Repro.faults
          in
          let case =
            { (Repro.case f.repro) with Nemesis.faults = without }
          in
          if not (Scenario.passed (Scenario.run s case)) then
            Alcotest.failf "dropping fault %d still violates: not minimal" i)
        f.repro.Repro.faults

let test_adversary_trigger_fires () =
  let s = get_scenario "paxos" in
  let case =
    {
      Nemesis.case_seed = 1;
      faults = [];
      byz = [];
      triggers =
        [
          {
            Nemesis.phase = "paxos.phase2";
            occurrence = 1;
            action = Nemesis.Crash_leader;
          };
        ];
    }
  in
  let outcome = Scenario.run s case in
  Alcotest.(check bool) "trigger fired" true (outcome.Scenario.fired <> []);
  (* one trigger-fired crash is within paxos's fP = 1: the run must
     still decide *)
  Alcotest.(check bool) "still within the fault model" true
    (Scenario.passed outcome)

(* >= 200 attack-augmented schedules per flagship algorithm: Byzantine
   containment holds (no agreement/validity/liveness violation) with the
   telemetry adversary armed on top. *)
let containment name =
  let s = get_scenario name in
  let options =
    {
      Explore.default_options with
      runs = 200;
      seed = 1;
      adversary = true;
      byz = true;
    }
  in
  let batch = Explore.explore ~options s in
  let show (f : Explore.failure) =
    Printf.sprintf "seed %d: %s" f.outcome.case.Nemesis.case_seed
      (String.concat ", "
         (List.map Oracle.violation_to_string f.outcome.Scenario.violations))
  in
  Alcotest.(check (list string))
    (name ^ " contains Byzantine behaviour across 200 schedules") []
    (List.map show batch.failures);
  Alcotest.(check int) "all 200 ran" 200 (batch.passed + List.length batch.failures)

let test_containment_robust_backup () = containment "robust-backup"

let test_containment_fast_robust () = containment "fast-robust"

(* >= 100 crash -> recover schedules per recovery scenario: the repair
   invariant holds (every rejoined live memory fully re-replicated at
   the watchdog) alongside agreement and liveness. *)
let recovery_batch ?(runs = 150) name =
  let s = get_scenario name in
  (* Explore runs case i with seed + i; count how many of those
     schedules actually contain a crash -> recover pair. *)
  let with_recovery = ref 0 in
  for i = 0 to runs - 1 do
    let case = Scenario.generate s ~seed:(1 + i) () in
    if
      List.exists
        (function
          | Fault.Recover_memory _ | Fault.Restart_machine _ -> true
          | _ -> false)
        case.Nemesis.faults
    then incr with_recovery
  done;
  if !with_recovery < 100 then
    Alcotest.failf "%s: only %d/%d schedules contain a recovery" name
      !with_recovery runs;
  let options = { Explore.default_options with runs; seed = 1 } in
  let batch = Explore.explore ~options s in
  let show (f : Explore.failure) =
    Printf.sprintf "seed %d: %s" f.outcome.case.Nemesis.case_seed
      (String.concat ", "
         (List.map Oracle.violation_to_string f.outcome.Scenario.violations))
  in
  Alcotest.(check (list string))
    (Printf.sprintf "%s holds all invariants across %d schedules" name runs)
    []
    (List.map show batch.failures);
  Alcotest.(check int) "all ran" runs (batch.passed + List.length batch.failures)

let test_recovery_swmr () = recovery_batch "swmr-recovery"

(* only ~55% of pmp-multi schedules draw a crash the nemesis can pair
   with a recovery, so a larger batch reaches the 100-schedule floor *)
let test_recovery_pmp_multi () = recovery_batch ~runs:220 "pmp-multi-recovery"

let suite =
  [
    Alcotest.test_case "fault codec round trip" `Quick test_codec_round_trip;
    Alcotest.test_case "fault codec deterministic" `Quick
      test_codec_deterministic;
    Alcotest.test_case "fault codec rejects garbage" `Quick
      test_codec_rejects_garbage;
    Alcotest.test_case "Fault.apply validates targets" `Quick
      test_apply_validates_targets;
    Alcotest.test_case "nemesis deterministic per seed" `Quick
      test_nemesis_deterministic;
    Alcotest.test_case "nemesis respects fault budgets" `Quick
      test_nemesis_respects_budget;
    Alcotest.test_case "forced ordering leaves the schedule unchanged" `Quick
      test_forced_ordering_preserves_schedule;
    Alcotest.test_case "nemesis draws weak modes from the pool" `Quick
      test_nemesis_draws_weak_modes;
    Alcotest.test_case "weak-mode exploration byte-identical at -j4" `Quick
      test_weak_explore_parallel_deterministic;
    Alcotest.test_case "exploration is deterministic" `Quick
      test_explore_deterministic;
    Alcotest.test_case "parallel exploration byte-identical" `Quick
      test_explore_parallel_deterministic;
    Alcotest.test_case "batch metrics merged across cases" `Quick
      test_explore_metrics_merged;
    Alcotest.test_case "shrinker yields minimal repro" `Quick
      test_shrinker_minimizes;
    Alcotest.test_case "telemetry adversary fires at phase boundary" `Quick
      test_adversary_trigger_fires;
    Alcotest.test_case "robust-backup Byzantine containment (200 runs)" `Slow
      test_containment_robust_backup;
    Alcotest.test_case "fast-robust Byzantine containment (200 runs)" `Slow
      test_containment_fast_robust;
    Alcotest.test_case "swmr-recovery repair invariant (150 runs)" `Slow
      test_recovery_swmr;
    Alcotest.test_case "pmp-multi-recovery repair invariant (220 runs)" `Slow
      test_recovery_pmp_multi;
  ]
