(* The telemetry subsystem: span nesting under virtual time, streaming
   percentile accuracy against a brute-force sort, exporter
   well-formedness (parse the emitted JSON back), and byte-identical
   exports for identical seeded runs. *)

open Rdma_sim
open Rdma_obs
open Rdma_consensus

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* {2 Spans under virtual time} *)

(* Two fibers each open a span, sleep, open a nested span, and close in
   LIFO order; all timestamps must be virtual times, and nesting must
   hold (child within parent). *)
let test_span_nesting () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  Obs.set_recording obs true;
  let spawn_actor name start =
    ignore
      (Engine.spawn engine name (fun () ->
           Engine.sleep start;
           Obs.with_span obs ~actor:name "outer" (fun () ->
               Engine.sleep 2.0;
               Obs.with_span obs ~actor:name "inner" (fun () -> Engine.sleep 1.0);
               Engine.sleep 0.5)))
  in
  spawn_actor "a" 0.0;
  spawn_actor "b" 3.0;
  Engine.run engine;
  let spans = Obs.spans obs in
  check int "four spans" 4 (List.length spans);
  List.iter
    (fun sp ->
      check bool "span finished" true (Obs.span_stop sp <> None))
    spans;
  let find actor name =
    List.find
      (fun sp -> Obs.span_actor sp = actor && Obs.span_name sp = name)
      spans
  in
  let outer_a = find "a" "outer" and inner_a = find "a" "inner" in
  check (Alcotest.float 1e-9) "outer a starts at 0" 0.0 (Obs.span_start outer_a);
  check (Alcotest.float 1e-9) "inner a starts at 2" 2.0 (Obs.span_start inner_a);
  check (Alcotest.float 1e-9) "inner a duration" 1.0
    (Option.get (Obs.span_duration inner_a));
  (* nesting: child interval inside parent interval *)
  check bool "nested start" true
    (Obs.span_start inner_a >= Obs.span_start outer_a);
  check bool "nested stop" true
    (Option.get (Obs.span_stop inner_a) <= Option.get (Obs.span_stop outer_a));
  (* the second actor's spans are shifted by its start offset *)
  let outer_b = find "b" "outer" in
  check (Alcotest.float 1e-9) "outer b starts at 3" 3.0 (Obs.span_start outer_b);
  check (Alcotest.float 1e-9) "outer durations equal"
    (Option.get (Obs.span_duration outer_a))
    (Option.get (Obs.span_duration outer_b));
  (* entries are retained in chronological order *)
  let times =
    List.map
      (function
        | Obs.Ev { at; _ } -> at
        | Obs.Sp sp -> Obs.span_start sp)
      (Obs.entries obs)
  in
  check bool "entries chronological" true
    (List.sort compare times = times)

(* A span closed by fiber cancellation (crash injection) must still be
   finished — [with_span] closes on discontinue. *)
let test_span_survives_cancel () =
  let engine = Engine.create () in
  let obs = Engine.obs engine in
  Obs.set_recording obs true;
  let fiber =
    Engine.spawn engine "victim" (fun () ->
        Obs.with_span obs ~actor:"victim" "doomed" (fun () ->
            Engine.sleep 10.0))
  in
  Engine.schedule engine 4.0 (fun () -> Engine.cancel fiber);
  Engine.run engine;
  match Obs.spans obs with
  | [ sp ] ->
      check string "span name" "doomed" (Obs.span_name sp);
      check bool "closed by cancellation" true (Obs.span_stop sp <> None);
      (* a cancelled fiber is discontinued at its next wake-up point
         (t=10, the end of its sleep), so the span closes there *)
      check (Alcotest.float 1e-9) "closed at the discontinue point" 10.0
        (Option.get (Obs.span_stop sp))
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* {2 Histogram percentiles vs brute force} *)

let exact_percentile samples q =
  let sorted = List.sort compare samples in
  let n = List.length sorted in
  let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let test_hist_percentiles () =
  (* A deterministic pseudo-random stream with a heavy tail, like real
     latency data. *)
  let st = Random.State.make [| 0xBEEF |] in
  let samples =
    List.init 5000 (fun _ ->
        let u = Random.State.float st 1.0 in
        0.1 +. ((10.0 *. u) ** 3.0))
  in
  let h = Hist.create () in
  List.iter (Hist.add h) samples;
  check int "count" 5000 (Hist.count h);
  List.iter
    (fun q ->
      let exact = exact_percentile samples q in
      let est = Hist.percentile h q in
      if not (est >= exact -. 1e-9 && est <= (exact *. Hist.ratio) +. 1e-9)
      then
        Alcotest.failf "p%.0f estimate %f outside [%f, %f]" (q *. 100.) est
          exact (exact *. Hist.ratio))
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ];
  (* min/max are tracked exactly *)
  check (Alcotest.float 1e-9) "min exact"
    (List.fold_left Stdlib.min infinity samples)
    (Hist.min h);
  check (Alcotest.float 1e-9) "max exact"
    (List.fold_left Stdlib.max neg_infinity samples)
    (Hist.max h)

let test_hist_small_and_zero () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 0.0; 0.0; 5.0 ];
  (* nearest rank over [0; 0; 5]: p50 -> 0, p99 -> 5 *)
  check (Alcotest.float 1e-9) "p50 with zeros" 0.0 (Hist.percentile h 0.5);
  check (Alcotest.float 1e-9) "p99 with zeros" 5.0 (Hist.percentile h 0.99);
  let one = Hist.create () in
  Hist.add one 7.0;
  List.iter
    (fun q ->
      check (Alcotest.float 1e-9) "single sample" 7.0 (Hist.percentile one q))
    [ 0.0; 0.5; 1.0 ]

(* {2 Exporter well-formedness} *)

let run_protected_paxos ~seed =
  let captured = ref None in
  let report =
    Protected_paxos.run ~seed ~n:3 ~m:3
      ~inputs:[| "a"; "b"; "c" |]
      ~prepare:(fun cluster ->
        captured := Some cluster;
        Obs.set_recording (Rdma_mm.Cluster.obs cluster) true)
      ()
  in
  (report, Rdma_mm.Cluster.obs (Option.get !captured))

let test_chrome_export_parses () =
  let report, obs = run_protected_paxos ~seed:1 in
  let trace = Export.chrome obs in
  (match Json.parse trace with
  | Error msg -> Alcotest.failf "chrome export does not parse: %s" msg
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          check bool "has events" true (List.length events > 0);
          List.iter
            (fun e ->
              check bool "event has name" true (Json.member "name" e <> None);
              check bool "event has ph" true (Json.member "ph" e <> None))
            events
      | _ -> Alcotest.fail "traceEvents missing"));
  (match Export.validate_chrome trace with
  | Ok (events, tracks) ->
      check bool "several events" true (events > 5);
      (* 3 processes + 3 memories at least *)
      check bool "at least 6 tracks" true (tracks >= 6)
  | Error msg -> Alcotest.failf "validate_chrome: %s" msg);
  (* the trace carries the 2-delay decision: a pmp.phase2 span of
     duration 2 delays = 2000 trace microseconds *)
  (match Json.parse trace with
  | Ok json -> (
      match Json.member "traceEvents" json with
      | Some (Json.List events) ->
          let phase2 =
            List.filter
              (fun e -> Json.member "name" e |> Option.map Json.to_string_opt
                        |> Option.join = Some "pmp.phase2")
              events
          in
          check bool "pmp.phase2 span present" true (phase2 <> []);
          List.iter
            (fun e ->
              match Json.member "dur" e with
              | Some (Json.Float d) ->
                  check (Alcotest.float 1e-6) "2-delay phase2" 2000.0 d
              | Some (Json.Int d) -> check int "2-delay phase2" 2000 d
              | _ -> Alcotest.fail "phase2 span has no dur")
            phase2
      | _ -> ())
  | Error _ -> ());
  (* report got its per-phase breakdown from the same histograms *)
  check bool "report has phases" true
    (List.exists (fun p -> p.Report.phase = "pmp.phase2") report.Report.phases)

let test_jsonl_export_parses () =
  let _, obs = run_protected_paxos ~seed:1 in
  let lines =
    String.split_on_char '\n' (Export.jsonl obs)
    |> List.filter (fun l -> l <> "")
  in
  check int "one line per entry" (Obs.entry_count obs) (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Error msg -> Alcotest.failf "jsonl line does not parse: %s" msg
      | Ok json ->
          check bool "line has at" true (Json.member "at" json <> None);
          check bool "line has actor" true (Json.member "actor" json <> None))
    lines

let test_metrics_export_parses () =
  let _, obs = run_protected_paxos ~seed:1 in
  match Json.parse (Export.metrics obs) with
  | Error msg -> Alcotest.failf "metrics export does not parse: %s" msg
  | Ok json -> (
      match Json.member "histograms" json with
      | Some (Json.Obj hists) ->
          check bool "has net.latency histogram" true
            (List.mem_assoc "net.latency" hists);
          List.iter
            (fun (_, h) ->
              List.iter
                (fun field ->
                  check bool ("histogram has " ^ field) true
                    (Json.member field h <> None))
                [ "count"; "min"; "max"; "p50"; "p90"; "p99" ])
            hists
      | _ -> Alcotest.fail "histograms missing")

(* {2 Determinism} *)

let test_identical_runs_identical_traces () =
  let _, obs1 = run_protected_paxos ~seed:7 in
  let _, obs2 = run_protected_paxos ~seed:7 in
  check string "chrome traces byte-identical" (Export.chrome obs1)
    (Export.chrome obs2);
  check string "jsonl byte-identical" (Export.jsonl obs1) (Export.jsonl obs2);
  check string "metrics byte-identical" (Export.metrics obs1)
    (Export.metrics obs2);
  (* a different seed still produces a valid — not necessarily different —
     trace; determinism is per-seed *)
  let _, obs3 = run_protected_paxos ~seed:8 in
  match Export.validate_chrome (Export.chrome obs3) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "seed 8 trace invalid: %s" msg

(* Two builds of the same report — metric names registered and samples
   added in opposite orders, enough of them to force different Hashtbl
   bucket layouts — must serialize identically.  This guards the same
   invariant simlint rule D2 checks statically: exporter output order
   (Obs.histograms/counters, Hist's bucket fold) never depends on
   hash-table internals. *)
let test_metric_order_invariant () =
  let names = List.init 40 (fun i -> Printf.sprintf "metric.%02d" i) in
  let samples = [ 1.0; 2.5; 7.0; 0.5; 2.5 ] in
  let build ~rev =
    let obs = Obs.create () in
    let order = if rev then List.rev names else names in
    List.iter
      (fun name ->
        let samples = if rev then List.rev samples else samples in
        List.iter (Obs.observe obs ~cat:"m" name) samples;
        Obs.count obs ("count." ^ name) (String.length name))
      order;
    obs
  in
  let a = build ~rev:false and b = build ~rev:true in
  check string "metrics export byte-identical" (Export.metrics a)
    (Export.metrics b);
  check bool "summaries identical" true (Obs.summaries a = Obs.summaries b);
  check bool "counters identical" true (Obs.counters a = Obs.counters b);
  (* and the read-back order is the sorted one, not insertion order *)
  let hist_names = List.map (fun (n, _, _) -> n) (Obs.histograms b) in
  check bool "histograms sorted" true
    (List.sort compare hist_names = hist_names)

(* Stats.pp must print named counters in sorted order regardless of
   insertion order (Hashtbl iteration order is seed-dependent). *)
let test_stats_pp_sorted () =
  let render order =
    let s = Stats.create () in
    List.iter (Stats.bump s) order;
    Fmt.str "%a" Stats.pp s
  in
  let a = render [ "zeta"; "alpha"; "mid"; "alpha" ] in
  let b = render [ "alpha"; "mid"; "zeta"; "alpha" ] in
  check string "insertion order does not leak" a b;
  let index_of needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      if i + nl > hl then Alcotest.failf "%s not printed" needle
      else if String.sub hay i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  check bool "sorted keys appear in order" true
    (let ia = index_of "alpha" a in
     let im = index_of "mid" a in
     let iz = index_of "zeta" a in
     ia < im && im < iz)

(* {2 Merging domain-confined collectors} *)

(* Hist.merge's contract: folding src into into is observationally the
   same as re-adding every one of src's samples — counts, sums,
   extrema, percentiles and the exported summary all agree. *)
let test_hist_merge_equals_readd () =
  let samples_a = [ 0.0; 1.0; 3.5; 3.5; 120.0 ] in
  let samples_b = [ 0.25; 2.0; 64.0; 0.0; 9.5; 1.0 ] in
  let fill samples =
    let h = Hist.create () in
    List.iter (Hist.add h) samples;
    h
  in
  let merged = fill samples_a in
  Hist.merge ~into:merged (fill samples_b);
  let readded = fill (samples_a @ samples_b) in
  check bool "summaries agree" true (Hist.summary merged = Hist.summary readded);
  List.iter
    (fun q ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "p%.0f agrees" (q *. 100.))
        (Hist.percentile readded q)
        (Hist.percentile merged q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ];
  (* merging an empty histogram is the identity *)
  let before = Hist.summary merged in
  Hist.merge ~into:merged (Hist.create ());
  check bool "empty merge is identity" true (before = Hist.summary merged)

(* Obs.merge folds metrics (histograms by name+cat, counters by name)
   and is insensitive to both the order the metrics were registered in
   the sources and the order the sources are merged — the exported
   snapshot is byte-identical either way. *)
let test_obs_merge_order_stable () =
  let build names =
    let obs = Obs.create () in
    List.iter
      (fun name ->
        Obs.observe obs ~cat:"m" name (float_of_int (String.length name));
        Obs.count obs (name ^ ".n") (String.length name))
      names;
    obs
  in
  let snapshot sources =
    let into = Obs.create () in
    List.iter (fun src -> Obs.merge ~into src) sources;
    Export.metrics into
  in
  let a = build [ "zeta"; "alpha"; "mid" ] in
  let b = build [ "mid"; "beta" ] in
  check string "merge order does not leak"
    (snapshot [ a; b ]) (snapshot [ b; a ]);
  check string "registration order does not leak"
    (snapshot [ build [ "alpha"; "mid"; "zeta" ]; b ])
    (snapshot [ a; b ]);
  (* shared names accumulate rather than overwrite *)
  let into = Obs.create () in
  Obs.merge ~into a;
  Obs.merge ~into b;
  check bool "shared histogram accumulates" true
    (List.exists
       (fun (name, s) -> name = "mid" && s.Hist.count = 2)
       (Obs.summaries into));
  check bool "shared counter accumulates" true
    (List.mem ("mid.n", 6) (Obs.counters into))

(* {2 Gauges} *)

(* High-watermark semantics: a gauge keeps the max of everything set on
   it, and merging folds gauges by max too (merge of peak depths is the
   overall peak, not a sum). *)
let test_gauge_watermark_and_merge () =
  let a = Obs.create () in
  Obs.gauge a "heap.peak" 4.0;
  Obs.gauge a "heap.peak" 9.0;
  Obs.gauge a "heap.peak" 2.0;
  check bool "keeps the max" true (List.mem ("heap.peak", 9.0) (Obs.gauges a));
  let b = Obs.create () in
  Obs.gauge b "heap.peak" 7.0;
  Obs.gauge b "only.b" 1.0;
  let into = Obs.create () in
  Obs.merge ~into a;
  Obs.merge ~into b;
  check bool "merge keeps the max" true
    (List.mem ("heap.peak", 9.0) (Obs.gauges into));
  check bool "merge unions names" true
    (List.mem ("only.b", 1.0) (Obs.gauges into));
  (* the export carries gauges alongside counters *)
  let json = Export.metrics into in
  check bool "export mentions gauges" true
    (let contains hay needle =
       let lh = String.length hay and ln = String.length needle in
       let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
       go 0
     in
     contains json "\"gauges\"" && contains json "heap.peak")

let suite =
  [
    Alcotest.test_case "span nesting under virtual time" `Quick
      test_span_nesting;
    Alcotest.test_case "gauge high watermark and merge" `Quick
      test_gauge_watermark_and_merge;
    Alcotest.test_case "with_span closes on fiber cancellation" `Quick
      test_span_survives_cancel;
    Alcotest.test_case "histogram percentiles vs brute-force sort" `Quick
      test_hist_percentiles;
    Alcotest.test_case "histogram zeros and tiny populations" `Quick
      test_hist_small_and_zero;
    Alcotest.test_case "chrome export parses and validates" `Quick
      test_chrome_export_parses;
    Alcotest.test_case "jsonl export parses line by line" `Quick
      test_jsonl_export_parses;
    Alcotest.test_case "metrics export parses" `Quick
      test_metrics_export_parses;
    Alcotest.test_case "same seed, byte-identical exports" `Quick
      test_identical_runs_identical_traces;
    Alcotest.test_case "metric registration order never leaks" `Quick
      test_metric_order_invariant;
    Alcotest.test_case "Stats.pp sorts named counters" `Quick
      test_stats_pp_sorted;
    Alcotest.test_case "Hist.merge equals re-adding samples" `Quick
      test_hist_merge_equals_readd;
    Alcotest.test_case "Obs.merge is order-stable" `Quick
      test_obs_merge_order_stable;
  ]
