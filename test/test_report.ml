(* Unit tests for the reporting/observability layer: Report invariant
   checks, Trace, Stats, Fault pretty-printing, Memclient quorum
   helpers. *)

open Rdma_sim
open Rdma_mem
open Rdma_consensus

let mk_report decisions =
  Report.of_stats ~algorithm:"test" ~n:(Array.length decisions) ~m:0 ~decisions
    ~stats:(Stats.create ()) ~steps:0 ()

let d v at = Some { Report.value = v; at }

let test_agreement () =
  Alcotest.(check bool) "uniform" true
    (Report.agreement_ok (mk_report [| d "x" 1.0; d "x" 2.0; None |]));
  Alcotest.(check bool) "split detected" false
    (Report.agreement_ok (mk_report [| d "x" 1.0; d "y" 2.0 |]));
  Alcotest.(check bool) "split excused for ignored pid" true
    (Report.agreement_ok ~ignore_pids:[ 1 ] (mk_report [| d "x" 1.0; d "y" 2.0 |]));
  Alcotest.(check bool) "vacuous when nobody decides" true
    (Report.agreement_ok (mk_report [| None; None |]))

let test_validity () =
  let inputs = [| "a"; "b" |] in
  Alcotest.(check bool) "input decided" true
    (Report.validity_ok (mk_report [| d "b" 1.0; None |]) ~inputs);
  Alcotest.(check bool) "invented value flagged" false
    (Report.validity_ok (mk_report [| d "z" 1.0; None |]) ~inputs);
  Alcotest.(check bool) "invented value excused for ignored pid" true
    (Report.validity_ok ~ignore_pids:[ 0 ] (mk_report [| d "z" 1.0; None |]) ~inputs)

let test_decision_times () =
  let r = mk_report [| d "x" 5.0; d "x" 2.0; None |] in
  Alcotest.(check (option (float 0.0))) "first" (Some 2.0) (Report.first_decision_time r);
  Alcotest.(check (option (float 0.0))) "last" (Some 5.0) (Report.last_decision_time r);
  Alcotest.(check int) "count" 2 (Report.decided_count r);
  Alcotest.(check (option (float 0.0))) "no decisions" None
    (Report.first_decision_time (mk_report [| None |]))

let test_trace () =
  let t = Trace.create () in
  Trace.record t ~at:1.0 ~actor:"p0" "hello";
  Trace.recordf t ~at:2.0 ~actor:"p1" "x=%d" 42;
  let events = Trace.events t in
  Alcotest.(check int) "two events" 2 (List.length events);
  Alcotest.(check bool) "chronological" true
    ((List.nth events 0).Trace.at <= (List.nth events 1).Trace.at);
  Alcotest.(check int) "count filter" 1
    (Trace.count t (fun e -> e.Trace.actor = "p1"));
  (match Trace.find t (fun e -> e.Trace.label = "x=42") with
  | Some e -> Alcotest.(check string) "formatted label" "p1" e.Trace.actor
  | None -> Alcotest.fail "recordf event not found");
  let disabled = Trace.create ~enabled:false () in
  Trace.record disabled ~at:0.0 ~actor:"p" "dropped";
  Alcotest.(check int) "disabled trace records nothing" 0
    (List.length (Trace.events disabled))

let test_stats () =
  let s = Stats.create () in
  Stats.incr_messages s;
  Stats.incr_reads s;
  Stats.incr_writes s;
  Stats.incr_perm_changes s;
  Alcotest.(check int) "mem ops sum" 3 (Stats.mem_ops s);
  Stats.bump s "foo";
  Stats.bump s "foo";
  Alcotest.(check int) "named counter" 2 (Stats.get s "foo");
  Stats.set s "foo" 7;
  Alcotest.(check int) "set overrides" 7 (Stats.get s "foo");
  Alcotest.(check int) "unknown counter is 0" 0 (Stats.get s "bar")

let test_fault_pp () =
  let s = Fmt.str "%a" Fault.pp (Fault.Crash_process { pid = 2; at = 1.5 }) in
  Alcotest.(check string) "crash pp" "crash p2@1.5" s;
  let s = Fmt.str "%a" Fault.pp (Fault.Async_until { gst = 30.0; extra = 25.0 }) in
  Alcotest.(check string) "async pp" "async(+25.0)until@30.0" s

let test_memclient_quorum () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let memories = Array.init 5 (fun mid -> Memory.create ~engine ~stats ~mid ()) in
  Array.iter
    (fun mem ->
      Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:2)
        ~registers:[ "x" ])
    memories;
  Memory.crash memories.(4);
  let c = Memclient.create ~pid:0 ~memories in
  Alcotest.(check int) "majority of 5" 3 (Memclient.majority c);
  let finished_at = ref nan in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         let w = Memclient.write_quorum c ~region:"r" ~reg:"x" "v" in
         Alcotest.(check bool) "quorum write acks despite one crash" true
           (w = Memory.Ack);
         let reads = Memclient.read_quorum c ~region:"r" ~reg:"x" in
         Alcotest.(check bool) "read quorum reaches majority" true
           (List.length reads >= 3);
         finished_at := Engine.now engine));
  Engine.run engine;
  Alcotest.(check (float 0.0)) "two ops cost four delays" 4.0 !finished_at

let test_report_pp_smoke () =
  let r = mk_report [| d "x" 2.0; None |] in
  let s = Fmt.str "%a" Report.pp r in
  Alcotest.(check bool) "pp mentions algorithm" true
    (String.length s > 0 && String.sub s 0 4 = "test")

let suite =
  [
    Alcotest.test_case "agreement checks" `Quick test_agreement;
    Alcotest.test_case "validity checks" `Quick test_validity;
    Alcotest.test_case "decision time extraction" `Quick test_decision_times;
    Alcotest.test_case "trace recording and queries" `Quick test_trace;
    Alcotest.test_case "stats counters" `Quick test_stats;
    Alcotest.test_case "fault pretty-printing" `Quick test_fault_pp;
    Alcotest.test_case "memclient quorum helpers" `Quick test_memclient_quorum;
    Alcotest.test_case "report pretty-printing" `Quick test_report_pp_smoke;
  ]
