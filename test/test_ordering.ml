(* Weak memory-ordering model tests: completion-lag (the issuer's
   completion can outrun the remote apply), reordered-qp (in-flight
   same-QP ops apply out of issue order), fence semantics, the
   control-plane drain, and the amnesia defence for lagged writes across
   a restart.

   The per-op lag/reorder draws come from the memory's dedicated rng
   stream keyed on (seed, mid), so every assertion below is pinned to a
   calibrated seed and replays bit-for-bit: seed 1 at mid 0 draws a
   first lag of ~39.55 under max_lag 50 (comfortably past every probe
   instant), and under window 20 draws d_write ~15.82 then d_read ~9.56
   (the read overtakes the write). *)

open Rdma_sim
open Rdma_mem

let make_memory ?legal_change ?(ordering = Ordering.Strict) ?(seed = 1) () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let mem = Memory.create ?legal_change ~ordering ~seed ~engine ~stats ~mid:0 () in
  (engine, mem)

let in_fiber engine f =
  ignore (Engine.spawn engine "test" f);
  Engine.run engine;
  match Engine.errors engine with
  | [] -> ()
  | (name, e) :: _ ->
      Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e)

let op_result =
  Alcotest.testable
    (Fmt.of_to_string (function Memory.Ack -> "ack" | Memory.Nak -> "nak"))
    ( = )

let read_result =
  Alcotest.testable
    (Fmt.of_to_string (function
      | Memory.Read None -> "read ⊥"
      | Memory.Read (Some v) -> "read " ^ v
      | Memory.Read_nak -> "nak"))
    ( = )

(* --- mode parsing ---------------------------------------------------- *)

let test_mode_strings () =
  let round m =
    match Ordering.of_string (Ordering.to_string m) with
    | Ok m' -> Alcotest.(check bool) (Ordering.to_string m) true (Ordering.equal m m')
    | Error e -> Alcotest.failf "%s does not round trip: %s" (Ordering.to_string m) e
  in
  round Ordering.Strict;
  round (Ordering.Completion_lag { max_lag = 6.0 });
  round (Ordering.Completion_lag { max_lag = 0.25 });
  round (Ordering.Reorder_qp { window = 4.0 });
  (* bare names pick up the default parameters *)
  (match Ordering.of_string "completion-lag" with
  | Ok (Ordering.Completion_lag { max_lag }) ->
      Alcotest.(check (float 0.0)) "default lag" Ordering.default_lag max_lag
  | _ -> Alcotest.fail "bare completion-lag rejected");
  (match Ordering.of_string "reordered-within-qp" with
  | Ok (Ordering.Reorder_qp { window }) ->
      Alcotest.(check (float 0.0)) "alias + default window" Ordering.default_window
        window
  | _ -> Alcotest.fail "reordered-within-qp alias rejected");
  (match Ordering.of_string "strict:3" with
  | Ok _ -> Alcotest.fail "strict must not take a parameter"
  | Error _ -> ());
  (match Ordering.of_string "completion-lag:-1" with
  | Ok _ -> Alcotest.fail "negative lag accepted"
  | Error _ -> ());
  match Ordering.of_string "total-store-order" with
  | Ok _ -> Alcotest.fail "unknown mode accepted"
  | Error _ -> ()

(* --- strict: fences are free ----------------------------------------- *)

let test_strict_fence_free () =
  let engine, mem = make_memory () in
  in_fiber engine (fun () ->
      let before = Engine.now engine in
      let f = Ivar.await (Memory.fence_async mem ~from:0) in
      Alcotest.check op_result "strict fence acks" Memory.Ack f;
      Alcotest.(check (float 0.0)) "and costs zero virtual time" before
        (Engine.now engine))

(* --- completion-lag -------------------------------------------------- *)

let region_all = Permission.all_readwrite ~n:2

(* The defining race: the issuer's Ack arrives while the bytes are still
   in flight, so a rival read misses the acked write; the issuer's own
   follow-up read waits for its QP floor (IB read-after-write ordering)
   and once it returns, the write is visible to everyone. *)
let test_completion_outruns_bytes () =
  let engine, mem =
    make_memory ~ordering:(Ordering.Completion_lag { max_lag = 50.0 }) ()
  in
  Memory.add_region mem ~name:"r" ~perm:region_all ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v") in
      Alcotest.check op_result "write acks" Memory.Ack w;
      Alcotest.(check (option string)) "bytes not applied at completion" None
        (Memory.peek_register mem "x");
      let rival = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "rival read misses the acked write"
        (Memory.Read None) rival;
      (* same-QP read: waits out the issuer's floor, sees the write *)
      let own = Ivar.await (Memory.read_async mem ~from:0 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "issuer's own read waits for its write"
        (Memory.Read (Some "v")) own;
      let rival' = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "apply done: everyone sees it"
        (Memory.Read (Some "v")) rival')

(* An explicit fence publishes: once the issuer's fence completes, every
   write it issued before the fence has been applied. *)
let test_fence_publishes () =
  let engine, mem =
    make_memory ~ordering:(Ordering.Completion_lag { max_lag = 50.0 }) ()
  in
  Memory.add_region mem ~name:"r" ~perm:region_all ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v") in
      Alcotest.check op_result "write acks" Memory.Ack w;
      let f = Ivar.await (Memory.fence_async mem ~from:0) in
      Alcotest.check op_result "fence acks" Memory.Ack f;
      Alcotest.(check (option string)) "fence completion implies applied"
        (Some "v")
        (Memory.peek_register mem "x");
      let rival = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "rival sees the fenced write"
        (Memory.Read (Some "v")) rival)

(* The control-plane drain: a permission change waits out every
   outstanding write on the memory before applying — an IB memory
   registration change completes outstanding DMA first.  This is what
   keeps permission-based algorithms safe without explicit fences. *)
let test_control_drains_data () =
  let legal_change ~pid ~region:_ ~current:_ ~requested =
    Permission.sole_writer requested = Some pid
  in
  let engine, mem =
    make_memory ~legal_change
      ~ordering:(Ordering.Completion_lag { max_lag = 50.0 })
      ()
  in
  Memory.add_region mem ~name:"r"
    ~perm:(Permission.exclusive_writer ~writer:0 ~n:2)
    ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v") in
      Alcotest.check op_result "owner's write acks" Memory.Ack w;
      Alcotest.(check (option string)) "still in flight" None
        (Memory.peek_register mem "x");
      (* p1 steals writership: the change must drain p0's lagged write *)
      let c =
        Ivar.await
          (Memory.change_permission_async mem ~from:1 ~region:"r"
             ~perm:(Permission.exclusive_writer ~writer:1 ~n:2))
      in
      Alcotest.check op_result "takeover applied" Memory.Ack c;
      Alcotest.(check (option string))
        "the pre-revocation write landed before the revocation" (Some "v")
        (Memory.peek_register mem "x"))

(* Satellite: a lagged write never crosses a restart.  The completion
   was delivered, but the memory crashes before the apply instant; the
   epoch guard drops the in-flight mutation, so the rejoined (empty)
   memory stays empty and the register reads as stale — amnesia is
   surfaced, never silently papered over. *)
let test_restart_drops_lagged_write () =
  let engine, mem =
    make_memory ~ordering:(Ordering.Completion_lag { max_lag = 50.0 }) ()
  in
  Memory.add_region mem ~name:"r" ~perm:region_all ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v") in
      Alcotest.check op_result "write acks before the crash" Memory.Ack w;
      Alcotest.(check (option string)) "bytes still in flight" None
        (Memory.peek_register mem "x");
      Memory.crash mem;
      Memory.restart mem;
      Alcotest.(check int) "fresh epoch" 1 (Memory.epoch mem);
      (* run far past the original apply instant (~40.55) *)
      Engine.sleep 100.0;
      Alcotest.(check (option string)) "lagged write never lands" None
        (Memory.peek_register mem "x");
      let r = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "register is stale, not silently ⊥"
        Memory.Read_nak r;
      (* a fresh-epoch write repairs it and reads serve again *)
      let w' = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v2") in
      Alcotest.check op_result "repair write acks" Memory.Ack w';
      let own = Ivar.await (Memory.read_async mem ~from:0 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "repaired register serves"
        (Memory.Read (Some "v2")) own)

(* --- reordered-qp ---------------------------------------------------- *)

(* Completion implies delivery under reordering: the response follows
   the perturbed apply, so an awaited Ack means the bytes are there. *)
let test_reorder_completion_implies_applied () =
  let engine, mem =
    make_memory ~ordering:(Ordering.Reorder_qp { window = 20.0 }) ()
  in
  Memory.add_region mem ~name:"r" ~perm:region_all ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v") in
      Alcotest.check op_result "write acks" Memory.Ack w;
      Alcotest.(check (option string)) "ack implies applied" (Some "v")
        (Memory.peek_register mem "x"))

(* Two in-flight same-QP ops apply out of issue order: the read issued
   after the write overtakes it (seed 1: d_read < d_write) and returns
   ⊥ even though the write eventually acks. *)
let test_reorder_read_overtakes_write () =
  let engine, mem =
    make_memory ~ordering:(Ordering.Reorder_qp { window = 20.0 }) ()
  in
  Memory.add_region mem ~name:"r" ~perm:region_all ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v" in
      let r = Memory.read_async mem ~from:0 ~region:"r" ~reg:"x" in
      Alcotest.check read_result "read overtakes the in-flight write"
        (Memory.Read None) (Ivar.await r);
      Alcotest.check op_result "the write still acks" Memory.Ack (Ivar.await w);
      Alcotest.(check (option string)) "and still lands" (Some "v")
        (Memory.peek_register mem "x"))

(* A fence between the two restores program order for any draw: ops
   issued after the fence cannot apply before ops issued before it. *)
let test_reorder_fence_restores_order () =
  let engine, mem =
    make_memory ~ordering:(Ordering.Reorder_qp { window = 20.0 }) ()
  in
  Memory.add_region mem ~name:"r" ~perm:region_all ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v" in
      let f = Memory.fence_async mem ~from:0 in
      let r = Memory.read_async mem ~from:0 ~region:"r" ~reg:"x" in
      Alcotest.check read_result "fenced read sees the write"
        (Memory.Read (Some "v")) (Ivar.await r);
      Alcotest.check op_result "write acks" Memory.Ack (Ivar.await w);
      Alcotest.check op_result "fence acks" Memory.Ack (Ivar.await f))

(* --- the client fence over a quorum ---------------------------------- *)

let test_memclient_fence_quorum () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let memories =
    Array.init 3 (fun mid ->
        let m =
          Memory.create
            ~ordering:(Ordering.Completion_lag { max_lag = 50.0 })
            ~seed:1 ~engine ~stats ~mid ()
        in
        Memory.add_region m ~name:"r" ~perm:region_all ~registers:[ "x" ];
        m)
  in
  let writer = Memclient.create ~pid:0 ~memories in
  let reader = Memclient.create ~pid:1 ~memories in
  in_fiber engine (fun () ->
      let w = Memclient.write_quorum ~k:3 writer ~region:"r" ~reg:"x" "v" in
      Alcotest.check op_result "quorum write acks" Memory.Ack w;
      let f = Memclient.fence_quorum ~k:3 writer in
      Alcotest.check op_result "quorum fence acks" Memory.Ack f;
      (* after the fence, the write is applied at every fenced memory *)
      let reads = Memclient.read_quorum ~k:3 reader ~region:"r" ~reg:"x" in
      List.iter
        (fun (mid, r) ->
          Alcotest.check read_result
            (Printf.sprintf "memory %d serves the fenced write" mid)
            (Memory.Read (Some "v")) r)
        reads)

let test_memclient_fence_strict_free () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let memories =
    Array.init 3 (fun mid ->
        let m = Memory.create ~engine ~stats ~mid () in
        Memory.add_region m ~name:"r" ~perm:region_all ~registers:[ "x" ];
        m)
  in
  let client = Memclient.create ~pid:0 ~memories in
  in_fiber engine (fun () ->
      let before = Engine.now engine in
      Alcotest.check op_result "strict quorum fence acks" Memory.Ack
        (Memclient.fence_quorum client);
      Alcotest.check op_result "strict single fence acks" Memory.Ack
        (Memclient.fence client ~mem:0);
      Alcotest.(check (float 0.0)) "both cost zero virtual time" before
        (Engine.now engine))

(* --- cluster plumbing ------------------------------------------------ *)

let test_cluster_set_ordering () =
  let cluster : string Rdma_mm.Cluster.t = Rdma_mm.Cluster.create ~n:2 ~m:3 () in
  Alcotest.(check bool) "clusters default to strict" true
    (Ordering.equal (Rdma_mm.Cluster.ordering cluster) Ordering.Strict);
  let mode = Ordering.Completion_lag { max_lag = 6.0 } in
  Rdma_mm.Cluster.set_ordering cluster mode;
  Alcotest.(check bool) "set_ordering reaches every memory" true
    (Ordering.equal (Rdma_mm.Cluster.ordering cluster) mode);
  for mid = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "memory %d switched" mid)
      true
      (Ordering.equal (Memory.ordering (Rdma_mm.Cluster.memory cluster mid)) mode)
  done

let suite =
  [
    Alcotest.test_case "mode names parse and round trip" `Quick test_mode_strings;
    Alcotest.test_case "strict fence is free" `Quick test_strict_fence_free;
    Alcotest.test_case "completion-lag: ack outruns the bytes" `Quick
      test_completion_outruns_bytes;
    Alcotest.test_case "completion-lag: fence publishes" `Quick
      test_fence_publishes;
    Alcotest.test_case "completion-lag: permission change drains writes" `Quick
      test_control_drains_data;
    Alcotest.test_case "restart drops in-flight lagged writes" `Quick
      test_restart_drops_lagged_write;
    Alcotest.test_case "reordered-qp: completion implies applied" `Quick
      test_reorder_completion_implies_applied;
    Alcotest.test_case "reordered-qp: read overtakes in-flight write" `Quick
      test_reorder_read_overtakes_write;
    Alcotest.test_case "reordered-qp: fence restores program order" `Quick
      test_reorder_fence_restores_order;
    Alcotest.test_case "memclient fence_quorum publishes to quorum" `Quick
      test_memclient_fence_quorum;
    Alcotest.test_case "memclient fences free under strict" `Quick
      test_memclient_fence_strict_free;
    Alcotest.test_case "cluster-wide set_ordering" `Quick test_cluster_set_ordering;
  ]
