(* The work profiler: scope attribution with a fake clock, fiber
   suspension (detach/attach through the engine), determinism of the
   counter plane across repeated seeds and across [-j], and the
   flamegraph/snapshot renderers. *)

open Rdma_sim
open Rdma_obs
open Rdma_chaos

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* {2 Scope attribution, fake clock} *)

(* A controllable clock: each [now] read returns the scripted next
   value, so self/total times are exact. *)
let test_scope_attribution () =
  let t = ref 0.0 in
  let clock () = !t in
  let prof = Prof.create ~clock () in
  Prof.with_profiler prof (fun () ->
      Prof.bump "root.work" 1;
      Prof.scope "outer" (fun () ->
          t := 1.0;
          Prof.bump "ops" 2;
          Prof.scope "inner" (fun () ->
              t := 4.0;
              Prof.bump "ops" 3);
          t := 6.0));
  check bool "totals sum across scopes" true
    (Prof.totals prof = [ ("ops", 5); ("root.work", 1) ]);
  (* per-scope: root.work lands at the root, ops split by scope *)
  let by_scope = Prof.by_scope prof in
  check bool "root attribution" true
    (List.assoc "(root)" by_scope = [ ("root.work", 1) ]);
  check bool "outer attribution" true
    (List.assoc "outer" by_scope = [ ("ops", 2) ]);
  check bool "inner attribution" true
    (List.assoc "outer;inner" by_scope = [ ("ops", 3) ]);
  (* timing: outer total 6 (0..6), inner total 3 (1..4), outer self 3 *)
  let timing path =
    let _, calls, total_s, self_s =
      List.find (fun (p, _, _, _) -> p = path) (Prof.timings prof)
    in
    (calls, total_s, self_s)
  in
  let calls, total, self = timing "outer" in
  check int "outer calls" 1 calls;
  check (Alcotest.float 1e-9) "outer total" 6.0 total;
  check (Alcotest.float 1e-9) "outer self" 3.0 self;
  let calls, total, self = timing "outer;inner" in
  check int "inner calls" 1 calls;
  check (Alcotest.float 1e-9) "inner total" 3.0 total;
  check (Alcotest.float 1e-9) "inner self" 3.0 self

(* Without an installed profiler every hook must be a free no-op. *)
let test_no_profiler_noop () =
  Prof.bump "ignored" 1;
  check int "scope passes value through" 7 (Prof.scope "s" (fun () -> 7));
  check int "depth is 0" 0 (Prof.depth ())

(* {2 Fiber suspension} *)

(* A scope opened inside a fiber survives suspension: the engine
   detaches the frame across the sleep and re-attaches it on resume, so
   counts bumped after the resume still attribute to the fiber's scope —
   and work done by OTHER events while it sleeps does not. *)
let test_scope_across_suspension () =
  let prof = Prof.create ~clock:(fun () -> 0.0) () in
  Prof.with_profiler prof (fun () ->
      let engine = Engine.create () in
      ignore
        (Engine.spawn engine "worker" (fun () ->
             Prof.scope "fiber.work" (fun () ->
                 Prof.bump "work" 1;
                 Engine.sleep 5.0;
                 Prof.bump "work" 10)));
      (* an interleaved timer event does unscoped work mid-sleep *)
      Engine.schedule engine 2.0 (fun () -> Prof.bump "other" 100);
      Engine.run engine);
  let by_scope = Prof.by_scope prof in
  check bool "fiber work stays scoped" true
    (List.assoc "fiber.work" by_scope = [ ("work", 11) ]);
  check bool "interleaved work is not captured by the fiber" true
    (match List.assoc_opt "(root)" by_scope with
    | Some rows -> List.mem ("other", 100) rows
    | None -> false)

(* A fiber cancelled while suspended inside a scope must not corrupt the
   stack: its frame was detached and is simply dropped; counts bumped
   before the crash survive. *)
let test_scope_cancelled_fiber () =
  let prof = Prof.create ~clock:(fun () -> 0.0) () in
  Prof.with_profiler prof (fun () ->
      let engine = Engine.create () in
      let fiber =
        Engine.spawn engine "victim" (fun () ->
            Prof.scope "victim.scope" (fun () ->
                Prof.bump "work" 3;
                Engine.sleep 10.0;
                Prof.bump "work" 1000))
      in
      Engine.schedule engine 1.0 (fun () -> Engine.cancel fiber);
      Engine.run engine);
  check int "stack drained" 0 (Prof.depth ());
  (* totals also carry the engine's own sim.* counters; the fiber's
     counter is what must read exactly 3 *)
  check bool "pre-crash counts survive, post-crash never happen" true
    (List.assoc_opt "work" (Prof.totals prof) = Some 3);
  check bool "scoped attribution intact" true
    (List.assoc_opt "victim.scope" (Prof.by_scope prof)
    = Some [ ("work", 3) ])

(* {2 Determinism of the counter plane} *)

let explore_metrics ~jobs =
  let scenario =
    match Scenario.find "protected-paxos" with
    | Some s -> s
    | None -> Alcotest.fail "scenario protected-paxos missing"
  in
  let options = { Explore.default_options with runs = 6; seed = 11; jobs } in
  let batch = Explore.explore ~options scenario in
  Export.metrics batch.Explore.metrics

(* The chaos batch's merged metrics — including the absorbed [prof.*]
   op counters — must be byte-identical across repeated runs and across
   [-j 1] vs [-j 4]. *)
let test_counters_jobs_invariant () =
  let m1 = explore_metrics ~jobs:1 in
  let m1' = explore_metrics ~jobs:1 in
  let m4 = explore_metrics ~jobs:4 in
  check string "same seed, same bytes" m1 m1';
  check string "-j 1 equals -j 4" m1 m4;
  (* and the profiler actually measured something *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check bool "absorbed op counters present" true
    (contains m1 "prof.sha256.blocks" && contains m1 "prof.sim.events.popped")

(* Two identical seeded cluster runs under two fresh profilers produce
   identical deterministic planes with nonzero work. *)
let run_profiled_snapshot () =
  let prof = Prof.create ~clock:(fun () -> 0.0) () in
  let _report =
    Prof.with_profiler prof (fun () ->
        Rdma_consensus.Protected_paxos.run ~seed:3 ~n:2 ~m:3
          ~inputs:[| "a"; "b" |] ~faults:[] ())
  in
  (Export.perf_snapshot ~id:"pmp" prof, Prof.totals prof)

let test_snapshot_deterministic () =
  let s1, totals = run_profiled_snapshot () in
  let s2, _ = run_profiled_snapshot () in
  check string "snapshots byte-identical (fake clock)" s1 s2;
  let nonzero name =
    match List.assoc_opt name totals with Some n -> n > 0 | None -> false
  in
  List.iter
    (fun name -> check bool (name ^ " counted") true (nonzero name))
    [
      (* protected-paxos signs nothing (crash model), so no hmac.macs
         here; the Byzantine suites cover the crypto counters *)
      "sha256.blocks";
      "mem.ops.issued";
      "mem.ops.completed";
      "sim.events.popped";
      "sim.heap.pushes";
    ]

(* {2 Renderers} *)

let test_flamegraph_format () =
  let prof = Prof.create ~clock:(fun () -> 0.0) () in
  Prof.with_profiler prof (fun () ->
      Prof.scope "a" (fun () ->
          Prof.bump "sim.events.popped" 2;
          Prof.scope "b" (fun () -> Prof.bump "sim.events.popped" 5)));
  let folded = Export.flamegraph prof in
  check string "collapsed stacks" "a 2\na;b 5\n" folded

let test_heap_peak_gauge () =
  let engine = Engine.create () in
  for i = 1 to 5 do
    Engine.schedule engine (float_of_int i) (fun () -> ())
  done;
  Engine.run engine;
  let gauges = Obs.gauges (Engine.obs engine) in
  match List.assoc_opt "sim.heap.peak_depth" gauges with
  | Some peak -> check bool "peak depth >= 5" true (peak >= 5.0)
  | None -> Alcotest.fail "sim.heap.peak_depth gauge missing"

let suite =
  [
    Alcotest.test_case "scope attribution with a fake clock" `Quick
      test_scope_attribution;
    Alcotest.test_case "no installed profiler is a no-op" `Quick
      test_no_profiler_noop;
    Alcotest.test_case "scope survives fiber suspension" `Quick
      test_scope_across_suspension;
    Alcotest.test_case "cancelled fiber drops its frame cleanly" `Quick
      test_scope_cancelled_fiber;
    Alcotest.test_case "chaos op counters identical at -j 1 and -j 4" `Quick
      test_counters_jobs_invariant;
    Alcotest.test_case "profiled run snapshot is deterministic" `Quick
      test_snapshot_deterministic;
    Alcotest.test_case "flamegraph collapsed-stack format" `Quick
      test_flamegraph_format;
    Alcotest.test_case "event-heap peak depth gauge" `Quick
      test_heap_peak_gauge;
  ]
