(* Network substrate tests: latency = one delay unit, integrity, no-loss,
   GST-controlled asynchrony, partitions (buffer + heal), Ω oracle. *)

open Rdma_sim
open Rdma_net
open Rdma_mm

let build ?(n = 3) () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let net : string Network.t = Network.create ~engine ~stats ~n () in
  (engine, stats, net)

let test_one_delay () =
  let engine, _, net = build () in
  let arrival = ref 0.0 in
  ignore
    (Engine.spawn engine "recv" (fun () ->
         let from, msg = Network.recv (Network.endpoint net 1) in
         arrival := Engine.now engine;
         Alcotest.(check int) "sender id" 0 from;
         Alcotest.(check string) "payload" "hello" msg));
  ignore
    (Engine.spawn engine "send" (fun () ->
         Network.send (Network.endpoint net 0) ~dst:1 "hello"));
  Engine.run engine;
  Alcotest.(check (float 0.0)) "a message costs one delay" 1.0 !arrival

let test_broadcast_counts () =
  let engine, stats, net = build ~n:4 () in
  ignore
    (Engine.spawn engine "send" (fun () ->
         Network.broadcast (Network.endpoint net 2) "x"));
  Engine.run engine;
  Alcotest.(check int) "broadcast = n sends" 4 stats.Stats.messages_sent

let test_fifo_per_link_by_time () =
  let engine, _, net = build () in
  let got = ref [] in
  ignore
    (Engine.spawn engine "recv" (fun () ->
         let ep = Network.endpoint net 1 in
         for _ = 1 to 3 do
           let _, m = Network.recv ep in
           got := m :: !got
         done));
  ignore
    (Engine.spawn engine "send" (fun () ->
         let ep = Network.endpoint net 0 in
         Network.send ep ~dst:1 "1";
         Network.send ep ~dst:1 "2";
         Network.send ep ~dst:1 "3"));
  Engine.run engine;
  Alcotest.(check (list string)) "same-time sends deliver in order" [ "1"; "2"; "3" ]
    (List.rev !got)

let test_gst_extra_delay () =
  let engine, _, net = build () in
  Network.set_gst net ~at:10.0 ~extra:(fun ~src:_ ~dst:_ ~now:_ -> 7.0);
  let first = ref 0.0 and second = ref 0.0 in
  ignore
    (Engine.spawn engine "recv" (fun () ->
         let ep = Network.endpoint net 1 in
         ignore (Network.recv ep);
         first := Engine.now engine;
         ignore (Network.recv ep);
         second := Engine.now engine));
  ignore
    (Engine.spawn engine "send" (fun () ->
         let ep = Network.endpoint net 0 in
         Network.send ep ~dst:1 "early";
         Engine.sleep 12.0;
         Network.send ep ~dst:1 "late"));
  Engine.run engine;
  Alcotest.(check (float 0.0)) "pre-GST message delayed" 8.0 !first;
  Alcotest.(check (float 0.0)) "post-GST message takes one delay" 13.0 !second

let test_partition_buffers_not_drops () =
  let engine, _, net = build () in
  Network.partition net [ (0, 1) ];
  let got_at = ref (-1.0) in
  ignore
    (Engine.spawn engine "recv" (fun () ->
         ignore (Network.recv (Network.endpoint net 1));
         got_at := Engine.now engine));
  ignore
    (Engine.spawn engine "send" (fun () ->
         Network.send (Network.endpoint net 0) ~dst:1 "m"));
  Engine.schedule engine 20.0 (fun () -> Network.heal net);
  Engine.run engine;
  Alcotest.(check (float 0.0)) "buffered message delivered after heal" 21.0 !got_at

(* No-loss under partition, exhaustively: several messages in both
   directions are buffered (never dropped) and every one is delivered
   once the partition heals. *)
let test_partition_no_loss_multi () =
  let engine, _, net = build () in
  Network.partition net [ (0, 1); (1, 0) ];
  Alcotest.(check (list (pair int int)))
    "severed pairs visible" [ (0, 1); (1, 0) ] (Network.severed net);
  let at_1 = ref [] and at_0 = ref [] in
  ignore
    (Engine.spawn engine "recv1" (fun () ->
         for _ = 1 to 3 do
           let _, m = Network.recv (Network.endpoint net 1) in
           at_1 := m :: !at_1
         done));
  ignore
    (Engine.spawn engine "recv0" (fun () ->
         for _ = 1 to 2 do
           let _, m = Network.recv (Network.endpoint net 0) in
           at_0 := m :: !at_0
         done));
  ignore
    (Engine.spawn engine "send" (fun () ->
         let e0 = Network.endpoint net 0 and e1 = Network.endpoint net 1 in
         Network.send e0 ~dst:1 "a";
         Network.send e1 ~dst:0 "x";
         Engine.sleep 2.0;
         Network.send e0 ~dst:1 "b";
         Network.send e1 ~dst:0 "y";
         Engine.sleep 2.0;
         Network.send e0 ~dst:1 "c"));
  Engine.schedule engine 10.0 (fun () -> Network.heal net);
  Engine.run engine;
  Alcotest.(check (list string))
    "all 0->1 messages delivered after heal" [ "a"; "b"; "c" ]
    (List.sort compare !at_1);
  Alcotest.(check (list string))
    "all 1->0 messages delivered after heal" [ "x"; "y" ]
    (List.sort compare !at_0);
  Alcotest.(check (list (pair int int))) "healed" [] (Network.severed net)

(* Links are not FIFO: with randomized per-message latency, a message
   buffered later can overtake one buffered earlier when the heal
   flushes them — the model only guarantees integrity and no-loss. *)
let test_partition_heal_overtakes () =
  let engine = Engine.create ~seed:3 () in
  let stats = Stats.create () in
  let net : string Network.t = Network.create ~engine ~stats ~n:2 () in
  Network.randomize_latency net ~rng:(Engine.rng engine) ~min:0.5 ~max:5.0;
  Network.partition net [ (0, 1) ];
  let got = ref [] in
  ignore
    (Engine.spawn engine "recv" (fun () ->
         for _ = 1 to 2 do
           let _, m = Network.recv (Network.endpoint net 1) in
           got := m :: !got
         done));
  ignore
    (Engine.spawn engine "send" (fun () ->
         let ep = Network.endpoint net 0 in
         Network.send ep ~dst:1 "first";
         Engine.sleep 1.0;
         Network.send ep ~dst:1 "second"));
  Engine.schedule engine 10.0 (fun () -> Network.heal net);
  Engine.run engine;
  Alcotest.(check (list string))
    "later message overtakes the earlier one" [ "second"; "first" ]
    (List.rev !got)

let test_partition_rejects_bad_pid () =
  let _, _, net = build () in
  Alcotest.check_raises "pid out of range"
    (Invalid_argument "Network.partition: pid out of range") (fun () ->
      Network.partition net [ (0, 3) ])

let test_recv_timeout () =
  let engine, _, net = build () in
  let got = ref (Some (0, "x")) in
  ignore
    (Engine.spawn engine "recv" (fun () ->
         got := Network.recv_timeout (Network.endpoint net 1) 3.0));
  Engine.run engine;
  Alcotest.(check bool) "times out with no traffic" true (!got = None)

(* Ω oracle *)

let test_omega_wait_until_leader () =
  let engine = Engine.create () in
  let omega = Omega.create ~engine ~initial:0 in
  let woke_at = ref (-1.0) in
  ignore
    (Engine.spawn engine "candidate" (fun () ->
         Omega.wait_until_leader omega ~me:2;
         woke_at := Engine.now engine));
  Omega.set_leader_after omega 5.0 2;
  Engine.run engine;
  Alcotest.(check (float 0.0)) "woken exactly at leadership change" 5.0 !woke_at

let test_omega_already_leader () =
  let engine = Engine.create () in
  let omega = Omega.create ~engine ~initial:1 in
  let passed = ref false in
  ignore
    (Engine.spawn engine "leader" (fun () ->
         Omega.wait_until_leader omega ~me:1;
         passed := true));
  Engine.run engine;
  Alcotest.(check bool) "no wait when already leader" true !passed

let test_omega_history () =
  let engine = Engine.create () in
  let omega = Omega.create ~engine ~initial:0 in
  Omega.set_leader_after omega 1.0 1;
  Omega.set_leader_after omega 2.0 2;
  Engine.run engine;
  Alcotest.(check (list (pair (float 0.0) int)))
    "history records changes"
    [ (0.0, 0); (1.0, 1); (2.0, 2) ]
    (Omega.history omega)

let test_omega_no_spurious_wake () =
  let engine = Engine.create () in
  let omega = Omega.create ~engine ~initial:0 in
  let woke = ref false in
  ignore
    (Engine.spawn engine "candidate" (fun () ->
         Omega.wait_until_leader omega ~me:2;
         woke := true));
  Omega.set_leader_after omega 1.0 1;
  Engine.run engine;
  Alcotest.(check bool) "other changes do not wake" false !woke

let suite =
  [
    Alcotest.test_case "message costs one delay" `Quick test_one_delay;
    Alcotest.test_case "broadcast sends n messages" `Quick test_broadcast_counts;
    Alcotest.test_case "same-time sends keep order" `Quick test_fifo_per_link_by_time;
    Alcotest.test_case "pre-GST asynchrony" `Quick test_gst_extra_delay;
    Alcotest.test_case "partition buffers, heal flushes" `Quick
      test_partition_buffers_not_drops;
    Alcotest.test_case "partition no-loss, both directions" `Quick
      test_partition_no_loss_multi;
    Alcotest.test_case "heal flush can reorder (non-FIFO)" `Quick
      test_partition_heal_overtakes;
    Alcotest.test_case "partition validates pids" `Quick
      test_partition_rejects_bad_pid;
    Alcotest.test_case "recv timeout" `Quick test_recv_timeout;
    Alcotest.test_case "omega wakes new leader" `Quick test_omega_wait_until_leader;
    Alcotest.test_case "omega immediate when leader" `Quick test_omega_already_leader;
    Alcotest.test_case "omega records history" `Quick test_omega_history;
    Alcotest.test_case "omega no spurious wakeups" `Quick test_omega_no_spurious_wake;
  ]
