let () =
  Alcotest.run "rdma-agreement"
    [
      ("heap", Test_heap.suite);
      ("obs", Test_obs.suite);
      ("engine", Test_engine.suite);
      ("crypto", Test_crypto.suite);
      ("memory", Test_memory.suite);
      ("verbs", Test_verbs.suite);
      ("swmr", Test_swmr.suite);
      ("network", Test_network.suite);
      ("failure-detector", Test_fd.suite);
      ("codec", Test_codec.suite);
      ("report", Test_report.suite);
      ("paxos", Test_paxos.suite);
      ("protected-paxos", Test_protected_paxos.suite);
      ("protected-paxos-multi", Test_pmp_multi.suite);
      ("disk-paxos", Test_disk_paxos.suite);
      ("aligned-paxos", Test_aligned_paxos.suite);
      ("fast-paxos", Test_fast_paxos.suite);
      ("neb", Test_neb.suite);
      ("trusted", Test_trusted.suite);
      ("robust-backup", Test_robust_backup.suite);
      ("preferential-paxos", Test_preferential.suite);
      ("cheap-quorum", Test_cheap_quorum.suite);
      ("fast-robust", Test_fast_robust.suite);
      ("lower-bound", Test_probe.suite);
      ("attacks", Test_attacks.suite);
      ("smr", Test_smr.suite);
      ("recovery", Test_recovery.suite);
      ("lock-service", Test_lock_service.suite);
      ("bft-log", Test_bft_log.suite);
      ("properties", Test_properties.suite);
      ("chaos", Test_chaos.suite);
      ("stress", Test_stress.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("scale", Test_scale.suite);
    ]
