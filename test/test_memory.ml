(* RDMA memory model tests: regions, permissions, dynamic permission
   changes with legalChange, crash semantics, timing. *)

open Rdma_sim
open Rdma_mem

let make_memory ?legal_change () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let mem = Memory.create ?legal_change ~engine ~stats ~mid:0 () in
  (engine, mem)

let in_fiber engine f =
  ignore (Engine.spawn engine "test" f);
  Engine.run engine;
  match Engine.errors engine with
  | [] -> ()
  | (name, e) :: _ -> Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e)

let op_result = Alcotest.testable (Fmt.of_to_string (function Memory.Ack -> "ack" | Memory.Nak -> "nak")) ( = )

let read_result =
  Alcotest.testable
    (Fmt.of_to_string (function
      | Memory.Read None -> "read ⊥"
      | Memory.Read (Some v) -> "read " ^ v
      | Memory.Read_nak -> "nak"))
    ( = )

let test_write_read () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:2) ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v1") in
      Alcotest.check op_result "write acks" Memory.Ack w;
      let r = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "read sees write" (Memory.Read (Some "v1")) r)

let test_initial_bottom () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:2) ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let r = Ivar.await (Memory.read_async mem ~from:0 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "fresh register is ⊥" (Memory.Read None) r)

let test_permission_enforced () =
  let engine, mem = make_memory () in
  (* SWMR region owned by 0: 1 may read but not write. *)
  Memory.add_region mem ~name:"r" ~perm:(Permission.swmr ~writer:0 ~n:2) ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:1 ~region:"r" ~reg:"x" "evil") in
      Alcotest.check op_result "non-writer gets nak" Memory.Nak w;
      let r = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "register untouched" (Memory.Read None) r;
      let w0 = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "mine") in
      Alcotest.check op_result "owner writes" Memory.Ack w0)

let test_read_permission_enforced () =
  let engine, mem = make_memory () in
  (* Region readable only by 0. *)
  Memory.add_region mem ~name:"r"
    ~perm:(Permission.make ~readwrite:[ 0 ] ())
    ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let r = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "unauthorized read naks" Memory.Read_nak r)

let test_unknown_region_and_register () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:2) ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"nope" ~reg:"x" "v") in
      Alcotest.check op_result "unknown region naks" Memory.Nak w;
      let w2 = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"y" "v") in
      Alcotest.check op_result "register outside region naks" Memory.Nak w2)

let test_static_permissions_refuse_change () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.swmr ~writer:0 ~n:2) ~registers:[ "x" ];
  in_fiber engine (fun () ->
      let c =
        Ivar.await
          (Memory.change_permission_async mem ~from:1 ~region:"r"
             ~perm:(Permission.all_readwrite ~n:2))
      in
      Alcotest.check op_result "static legalChange refuses" Memory.Nak c;
      match Memory.region_perm mem "r" with
      | Some p ->
          Alcotest.(check bool) "permission unchanged" true
            (Permission.equal p (Permission.swmr ~writer:0 ~n:2))
      | None -> Alcotest.fail "region vanished")

let test_dynamic_permission_change () =
  let legal_change ~pid ~region:_ ~current:_ ~requested =
    (* anyone may take exclusive writership for themselves *)
    Permission.sole_writer requested = Some pid
  in
  let engine, mem = make_memory ~legal_change () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.exclusive_writer ~writer:0 ~n:3)
    ~registers:[ "x" ];
  in_fiber engine (fun () ->
      (* 1 takes over; 0's subsequent write must nak. *)
      let c =
        Ivar.await
          (Memory.change_permission_async mem ~from:1 ~region:"r"
             ~perm:(Permission.exclusive_writer ~writer:1 ~n:3))
      in
      Alcotest.check op_result "legal takeover applied" Memory.Ack c;
      let w = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "old") in
      Alcotest.check op_result "deposed writer naks" Memory.Nak w;
      let w1 = Ivar.await (Memory.write_async mem ~from:1 ~region:"r" ~reg:"x" "new") in
      Alcotest.check op_result "new owner writes" Memory.Ack w1;
      (* illegal shape (grabbing for someone else) is refused *)
      let c2 =
        Ivar.await
          (Memory.change_permission_async mem ~from:2 ~region:"r"
             ~perm:(Permission.exclusive_writer ~writer:1 ~n:3))
      in
      Alcotest.check op_result "illegal change refused" Memory.Nak c2)

let test_revocation_race () =
  (* The uncontended-instantaneous guarantee: a write that arrives after a
     revocation naks, even if issued before it. *)
  let legal_change ~pid ~region:_ ~current:_ ~requested =
    Permission.sole_writer requested = Some pid
  in
  let engine, mem = make_memory ~legal_change () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.exclusive_writer ~writer:0 ~n:2)
    ~registers:[ "x" ];
  let write_result = ref None in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         (* issue at t=0.5; arrives at memory at t=1.5, after the takeover
            below lands at t=1.25 *)
         Engine.sleep 0.5;
         write_result :=
           Some (Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v"))));
  ignore
    (Engine.spawn engine "grabber" (fun () ->
         Engine.sleep 0.25;
         ignore
           (Ivar.await
              (Memory.change_permission_async mem ~from:1 ~region:"r"
                 ~perm:(Permission.exclusive_writer ~writer:1 ~n:2)))));
  Engine.run engine;
  Alcotest.(check bool) "write overtaken by revocation naks" true
    (!write_result = Some Memory.Nak)

let test_crash_hangs_operations () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  let got = ref (Some Memory.Ack) in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         Memory.crash mem;
         got := Ivar.await_timeout (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v") 50.0));
  Engine.run engine;
  Alcotest.(check bool) "operation on crashed memory hangs" true (!got = None)

let test_crash_mid_flight () =
  (* Crash after the request leg but before the response leg: the write
     may have applied, but the caller never hears back. *)
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  let got = ref (Some Memory.Ack) in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         let iv = Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v" in
         got := Ivar.await_timeout iv 50.0));
  Engine.schedule engine 1.5 (fun () -> Memory.crash mem);
  Engine.run engine;
  Alcotest.(check bool) "no response after crash" true (!got = None);
  Alcotest.(check (option string)) "write applied before crash" (Some "v")
    (Memory.peek_register mem "x")

let test_operation_timing () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  let at = ref 0.0 in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         ignore (Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v"));
         at := Engine.now engine));
  Engine.run engine;
  Alcotest.(check (float 0.0)) "a memory operation costs two delays" 2.0 !at

let test_duplicate_register_rejected () =
  let _, mem = make_memory () in
  Memory.add_region mem ~name:"r1" ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  Alcotest.(check bool) "register cannot join two regions" true
    (try
       Memory.add_region mem ~name:"r2" ~perm:(Permission.all_readwrite ~n:1)
         ~registers:[ "x" ];
       false
     with Invalid_argument _ -> true)

let test_restart_wipes_and_stamps () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:2)
    ~registers:[ "x"; "y" ];
  in_fiber engine (fun () ->
      ignore (Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v1"));
      Memory.crash mem;
      Alcotest.(check bool) "crashed" true (Memory.is_crashed mem);
      Memory.restart mem;
      Alcotest.(check bool) "back up" false (Memory.is_crashed mem);
      Alcotest.(check int) "epoch bumped" 1 (Memory.epoch mem);
      Alcotest.(check (option string)) "value lost" None (Memory.peek_register mem "x");
      Alcotest.(check (list string)) "every register stale" [ "x"; "y" ]
        (Memory.stale_registers mem ~region:"r");
      (* lost state answers "I don't know", never ⊥ — the reader must not
         mistake amnesia for a genuinely unwritten register *)
      let r = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "stale read naks" Memory.Read_nak r;
      (* a current-epoch write repairs the register *)
      ignore (Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v2"));
      Alcotest.(check (list string)) "x repaired, y still stale" [ "y" ]
        (Memory.stale_registers mem ~region:"r");
      let r2 = Ivar.await (Memory.read_async mem ~from:1 ~region:"r" ~reg:"x") in
      Alcotest.check read_result "repaired register serves" (Memory.Read (Some "v2")) r2)

let test_restart_write_many_repairs () =
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:1)
    ~registers:[ "a"; "b"; "c" ];
  in_fiber engine (fun () ->
      Memory.crash mem;
      Memory.restart mem;
      (* state transfer: one batched write stamps every named register,
         ⊥ included — a write of zeroes is still a repair *)
      let w =
        Ivar.await
          (Memory.write_many_async mem ~from:0 ~region:"r"
             ~values:[ ("a", Some "1"); ("b", None) ])
      in
      Alcotest.check op_result "snapshot install acks" Memory.Ack w;
      Alcotest.(check (list string)) "only c still stale" [ "c" ]
        (Memory.stale_registers mem ~region:"r");
      let rm = Ivar.await (Memory.read_many_async mem ~from:0 ~region:"r" ~regs:[ "a"; "b" ]) in
      (match rm with
      | Memory.Read_many vs ->
          Alcotest.(check (array (option string))) "batch serves the snapshot"
            [| Some "1"; None |] vs
      | Memory.Read_many_nak -> Alcotest.fail "repaired batch must serve");
      (* any batch touching a stale register naks whole *)
      let rm2 = Ivar.await (Memory.read_many_async mem ~from:0 ~region:"r" ~regs:[ "a"; "c" ]) in
      Alcotest.(check bool) "batch with a stale member naks" true
        (rm2 = Memory.Read_many_nak))

let test_restart_genesis_vs_quarantine () =
  let legal_change ~pid ~region:_ ~current:_ ~requested =
    Permission.sole_writer requested = Some pid
  in
  let engine, mem = make_memory ~legal_change () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.exclusive_writer ~writer:0 ~n:2)
    ~registers:[ "x" ];
  in_fiber engine (fun () ->
      (* a legalChange-granted takeover is forgotten by the restart *)
      ignore
        (Ivar.await
           (Memory.change_permission_async mem ~from:1 ~region:"r"
              ~perm:(Permission.exclusive_writer ~writer:1 ~n:2)));
      Memory.crash mem;
      Memory.restart mem ~rejoin:`Quarantine;
      Alcotest.(check bool) "quarantined region is fenced" false
        (Memory.region_serving mem "r");
      let w = Ivar.await (Memory.write_async mem ~from:1 ~region:"r" ~reg:"x" "v") in
      Alcotest.check op_result "fenced region naks even the old owner" Memory.Nak w;
      (* re-establishing a permission at the new epoch unfences it *)
      let c =
        Ivar.await
          (Memory.change_permission_async mem ~from:1 ~region:"r"
             ~perm:(Permission.exclusive_writer ~writer:1 ~n:2))
      in
      Alcotest.check op_result "rejoin grant acks" Memory.Ack c;
      Alcotest.(check bool) "region serves again" true (Memory.region_serving mem "r");
      (* a second crash with `Genesis restores the creation-time owner *)
      Memory.crash mem;
      Memory.restart mem;
      Alcotest.(check bool) "genesis rejoin serves immediately" true
        (Memory.region_serving mem "r");
      let w0 = Ivar.await (Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v0") in
      Alcotest.check op_result "creation-time owner writes" Memory.Ack w0;
      let w1 = Ivar.await (Memory.write_async mem ~from:1 ~region:"r" ~reg:"x" "v1") in
      Alcotest.check op_result "pre-crash takeover forgotten" Memory.Nak w1)

let test_restart_drops_in_flight () =
  (* The epoch fence: an operation issued before the crash never gets a
     response, even if the memory restarts while it would be in flight. *)
  let engine, mem = make_memory () in
  Memory.add_region mem ~name:"r" ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  let got = ref (Some Memory.Ack) in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         let iv = Memory.write_async mem ~from:0 ~region:"r" ~reg:"x" "v" in
         got := Ivar.await_timeout iv 50.0));
  Engine.schedule engine 0.5 (fun () -> Memory.crash mem);
  Engine.schedule engine 1.0 (fun () -> Memory.restart mem);
  Engine.run engine;
  Alcotest.(check bool) "pre-crash op stays dropped across the restart" true
    (!got = None);
  Alcotest.(check (option string)) "and its write never applies" None
    (Memory.peek_register mem "x")

let test_restart_requires_crash () =
  let _, mem = make_memory () in
  Alcotest.(check bool) "restarting a live memory is a harness bug" true
    (try
       Memory.restart mem;
       false
     with Invalid_argument _ -> true)

let test_permission_disjointness () =
  Alcotest.(check bool) "overlapping sets rejected" true
    (try
       ignore (Permission.make ~read:[ 0 ] ~readwrite:[ 0 ] ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "write then read" `Quick test_write_read;
    Alcotest.test_case "fresh registers read ⊥" `Quick test_initial_bottom;
    Alcotest.test_case "write permission enforced" `Quick test_permission_enforced;
    Alcotest.test_case "read permission enforced" `Quick test_read_permission_enforced;
    Alcotest.test_case "unknown region/register naks" `Quick
      test_unknown_region_and_register;
    Alcotest.test_case "static permissions refuse changes" `Quick
      test_static_permissions_refuse_change;
    Alcotest.test_case "dynamic permission takeover" `Quick test_dynamic_permission_change;
    Alcotest.test_case "revocation beats in-flight write" `Quick test_revocation_race;
    Alcotest.test_case "crashed memory hangs operations" `Quick test_crash_hangs_operations;
    Alcotest.test_case "crash between apply and response" `Quick test_crash_mid_flight;
    Alcotest.test_case "memory op costs two delays" `Quick test_operation_timing;
    Alcotest.test_case "register in one region only" `Quick test_duplicate_register_rejected;
    Alcotest.test_case "restart wipes values under a fresh epoch" `Quick
      test_restart_wipes_and_stamps;
    Alcotest.test_case "write_many is the state-transfer primitive" `Quick
      test_restart_write_many_repairs;
    Alcotest.test_case "genesis vs quarantine rejoin" `Quick
      test_restart_genesis_vs_quarantine;
    Alcotest.test_case "restart drops in-flight operations" `Quick
      test_restart_drops_in_flight;
    Alcotest.test_case "restart requires a crash" `Quick test_restart_requires_crash;
    Alcotest.test_case "permission sets must be disjoint" `Quick
      test_permission_disjointness;
  ]
