(* Recovery & repair: bounded-time quorum operations, the waiter-leak
   fix in the quorum combinators, SMR checkpoint/state-transfer across
   memory and machine restarts, and pmp-multi checkpoint catch-up. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_consensus
open Rdma_smr

(* ---------------- bounded-time quorum operations ------------------- *)

let test_timed_write_times_out () =
  (* With a majority of memories dead the plain quorum ops hang forever;
     the timed variant must return a typed Timeout within the
     virtual-time deadline, with retry/backoff counters. *)
  let cluster : unit Cluster.t = Cluster.create ~n:1 ~m:3 () in
  Cluster.add_region_everywhere cluster ~name:"r"
    ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  Cluster.crash_memory cluster 1;
  Cluster.crash_memory cluster 2;
  let result = ref None and took = ref nan in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      let t0 = Engine.now ctx.Cluster.ctx_engine in
      let r =
        Memclient.write_quorum_timed ~deadline:32.0 ctx.Cluster.client
          ~region:"r" ~reg:"x" "v"
      in
      took := Engine.now ctx.Cluster.ctx_engine -. t0;
      result := Some r);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  (match !result with
  | Some (Memclient.Timeout { attempts; waited }) ->
      (* backoff windows 4 + 8 + 16 + 4 (clamped) consume the deadline *)
      Alcotest.(check int) "four backoff attempts" 4 attempts;
      Alcotest.(check (float 0.0001)) "waited the whole deadline" 32.0 waited
  | _ -> Alcotest.fail "dead majority must yield Timeout, not hang");
  Alcotest.(check (float 0.0001)) "bounded in virtual time" 32.0 !took;
  let stats = Cluster.stats cluster in
  Alcotest.(check int) "retries counted" 3 (Stats.get stats "rdma.write_quorum.retries");
  Alcotest.(check int) "timeout counted" 1 (Stats.get stats "rdma.write_quorum.timeouts");
  (* and the counters flow into the report consumers read *)
  let report =
    Report.of_stats ~algorithm:"timed" ~n:1 ~m:3 ~decisions:[| None |] ~stats
      ~steps:0 ()
  in
  Alcotest.(check int) "timeouts in Report.named" 1
    (Report.named report "rdma.write_quorum.timeouts");
  Alcotest.(check int) "retries in Report.named" 3
    (Report.named report "rdma.write_quorum.retries")

let test_timed_write_recovers_within_deadline () =
  (* Each attempt re-issues the operation, so a memory that rejoins
     mid-deadline makes a later attempt succeed: the op returns Done,
     not Timeout.  (The attempt in flight across the restart is dropped
     by the epoch fence — only the re-issue lands.) *)
  let cluster : unit Cluster.t = Cluster.create ~n:1 ~m:3 () in
  Cluster.add_region_everywhere cluster ~name:"r"
    ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  Cluster.crash_memory cluster 1;
  Cluster.crash_memory cluster 2;
  Cluster.restart_memory_at cluster ~at:10.0 1;
  let result = ref None in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      result :=
        Some
          (Memclient.write_quorum_timed ~deadline:64.0 ctx.Cluster.client
             ~region:"r" ~reg:"x" "v"));
  Cluster.run cluster;
  Cluster.check_errors cluster;
  (match !result with
  | Some (Memclient.Done r) -> Alcotest.(check bool) "write acks" true (r = Memory.Ack)
  | _ -> Alcotest.fail "rejoin within the deadline must yield Done");
  Alcotest.(check bool) "earlier attempts were retried" true
    (Stats.get (Cluster.stats cluster) "rdma.write_quorum.retries" >= 1);
  Alcotest.(check (list string)) "the re-issued write repaired the register" []
    (Memory.stale_registers (Cluster.memory cluster 1) ~region:"r")

let test_abandoned_attempts_drop_waiters () =
  (* The leak fix: an abandoned quorum wait deregisters its callbacks
     from the ivars it was watching, so a long-running fiber retrying
     against dead memories does not accumulate waiters. *)
  let engine = Engine.create () in
  let ivars = Array.init 4 (fun _ -> Ivar.create ()) in
  ignore
    (Engine.spawn engine "waiter" (fun () ->
         for _ = 1 to 5 do
           ignore (Par.await_k_timeout ivars 4 2.0)
         done));
  Engine.run engine;
  Array.iteri
    (fun i iv ->
      Alcotest.(check int)
        (Printf.sprintf "ivar %d has no leaked waiters" i)
        0 (Ivar.waiter_count iv))
    ivars

(* ------------- SMR checkpoints, state transfer, rejoin ------------- *)

let smr_cfg =
  { Smr_log.default_config with
    replicas = 3; max_entries = 32; serve_until = 300.0; checkpoint_every = 3 }

let build_smr () =
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:(Smr_log.legal_change smr_cfg)
      ~n:(smr_cfg.Smr_log.replicas + 1) ~m:3 ()
  in
  Smr_log.setup_regions cluster smr_cfg;
  let replicas =
    Array.init smr_cfg.Smr_log.replicas (fun pid ->
        Smr_log.spawn_replica cluster ~cfg:smr_cfg ~pid ())
  in
  let committed = ref 0 in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      for seq = 0 to 9 do
        match
          Smr_log.submit ctx ~cfg:smr_cfg ~seq
            ~cmd:(Printf.sprintf "cmd%d" seq)
            ~timeout:200.0
        with
        | Some _ -> incr committed
        | None -> ()
      done);
  (cluster, replicas, committed)

let check_logs_equal replicas =
  let logs = Array.map Smr_log.applied_entries replicas in
  Alcotest.(check bool) "replicas applied the same log" true
    (logs.(0) = logs.(1) && logs.(1) = logs.(2));
  logs.(0)

let test_smr_checkpoint_truncates_and_commits () =
  let cluster, replicas, committed = build_smr () in
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "all commands committed" 10 !committed;
  Alcotest.(check int) "log fully applied" 10 (List.length (check_logs_equal replicas));
  Alcotest.(check bool) "checkpoints were written" true
    (Stats.get (Cluster.stats cluster) "smr.checkpoints" >= 3)

let test_smr_repairs_restarted_memory () =
  let cluster, replicas, committed = build_smr () in
  Fault.apply cluster
    [
      Fault.Crash_memory { mid = 1; at = 20.0 };
      Fault.Recover_memory { mid = 1; at = 40.0 };
    ];
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "all commands committed across the outage" 10 !committed;
  ignore (check_logs_equal replicas);
  Alcotest.(check bool) "leader transferred state to the rejoiner" true
    (Stats.get (Cluster.stats cluster) "smr.repairs" >= 1);
  Alcotest.(check (list string)) "rejoined memory fully re-replicated" []
    (Memory.stale_registers (Cluster.memory cluster 1) ~region:Smr_log.region)

let test_smr_machine_restart_catches_up () =
  (* A follower machine (replica 2 + memory 2) dies and restarts: the
     re-run replica must install a snapshot from the leader and converge
     on the same applied log, and its memory must end fully fresh. *)
  let cluster, replicas, committed = build_smr () in
  Fault.apply cluster
    [
      Fault.Crash_machine { pid = 2; mid = 2; at = 20.0 };
      Fault.Restart_machine { pid = 2; mid = 2; at = 35.0 };
    ];
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "all commands committed across the outage" 10 !committed;
  let log = check_logs_equal replicas in
  Alcotest.(check int) "restarted replica applied everything" 10 (List.length log);
  Alcotest.(check (list string)) "its memory was re-replicated too" []
    (Memory.stale_registers (Cluster.memory cluster 2) ~region:Smr_log.region)

(* -------------- pmp-multi checkpoint catch-up ---------------------- *)

let test_pmp_multi_repairs_restarted_memory () =
  let cfg =
    { Protected_paxos_multi.default_config with
      slots = 3; checkpoint_every = 2; serve_until = 60.0 }
  in
  let captured = ref None in
  let reports =
    Protected_paxos_multi.run ~cfg ~n:3 ~m:3
      ~input_for:(fun ~pid ~instance -> Printf.sprintf "v%d.%d" pid instance)
      ~faults:
        [
          Fault.Crash_memory { mid = 1; at = 3.0 };
          Fault.Recover_memory { mid = 1; at = 10.0 };
        ]
      ~prepare:(fun cluster -> captured := Some cluster)
      ()
  in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d agreement" i)
        true
        (Report.agreement_ok report);
      Alcotest.(check int)
        (Printf.sprintf "instance %d decided by all" i)
        3 (Report.decided_count report))
    reports;
  match !captured with
  | None -> Alcotest.fail "prepare not called"
  | Some cluster ->
      Alcotest.(check (list string)) "custodian re-replicated the rejoiner" []
        (Memory.stale_registers (Cluster.memory cluster 1)
           ~region:Protected_paxos_multi.region)

(* -------------- machine restart re-runs the program ---------------- *)

let test_restart_machine_reruns_program () =
  let cluster : unit Cluster.t = Cluster.create ~n:1 ~m:1 () in
  Cluster.add_region_everywhere cluster ~name:"r"
    ~perm:(Permission.all_readwrite ~n:1) ~registers:[ "x" ];
  let runs = ref 0 in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      incr runs;
      ignore (Memclient.write ctx.Cluster.client ~mem:0 ~region:"r" ~reg:"x" "v"));
  Fault.apply cluster
    [
      Fault.Crash_machine { pid = 0; mid = 0; at = 1.0 };
      Fault.Restart_machine { pid = 0; mid = 0; at = 5.0 };
    ];
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "program ran twice" 2 !runs;
  Alcotest.(check int) "memory under a fresh epoch" 1
    (Memory.epoch (Cluster.memory cluster 0));
  (* the second run's write repaired the register it uses *)
  Alcotest.(check (list string)) "register rewritten at the new epoch" []
    (Memory.stale_registers (Cluster.memory cluster 0) ~region:"r")

let suite =
  [
    Alcotest.test_case "timed quorum write times out on a dead majority" `Quick
      test_timed_write_times_out;
    Alcotest.test_case "timed quorum write succeeds after a mid-deadline rejoin"
      `Quick test_timed_write_recovers_within_deadline;
    Alcotest.test_case "abandoned quorum waits drop their waiters" `Quick
      test_abandoned_attempts_drop_waiters;
    Alcotest.test_case "smr checkpoints commit and truncate" `Quick
      test_smr_checkpoint_truncates_and_commits;
    Alcotest.test_case "smr repairs a restarted memory" `Quick
      test_smr_repairs_restarted_memory;
    Alcotest.test_case "smr machine restart catches up via snapshot" `Quick
      test_smr_machine_restart_catches_up;
    Alcotest.test_case "pmp-multi repairs a restarted memory" `Quick
      test_pmp_multi_repairs_restarted_memory;
    Alcotest.test_case "restart_machine re-runs the program" `Quick
      test_restart_machine_reruns_program;
  ]
