(* Replicated SWMR register tests (the Section 4.1 construction):
   majority semantics under memory crashes, the exactly-one-distinct-value
   read rule, equivocation detection. *)

open Rdma_sim
open Rdma_mem
open Rdma_reg

let build ?(n = 3) ?(m = 3) () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let memories =
    Array.init m (fun mid -> Memory.create ~engine ~stats ~mid ())
  in
  Array.iter
    (fun mem ->
      Memory.add_region mem ~name:"swmr.0" ~perm:(Permission.swmr ~writer:0 ~n)
        ~registers:[ "x" ])
    memories;
  (engine, memories)

let run_fiber engine f =
  ignore (Engine.spawn engine "test" f);
  Engine.run engine;
  match Engine.errors engine with
  | [] -> ()
  | (name, e) :: _ -> Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e)

let handle memories pid =
  Swmr.attach ~client:(Memclient.create ~pid ~memories) ~region:"swmr.0"

let test_write_then_read () =
  let engine, memories = build () in
  run_fiber engine (fun () ->
      let w = handle memories 0 in
      let r = handle memories 1 in
      Alcotest.(check bool) "write acks" true (Swmr.write w ~reg:"x" "v" = Memory.Ack);
      Alcotest.(check (option string)) "read returns value" (Some "v")
        (Swmr.read r ~reg:"x"))

let test_read_bottom () =
  let engine, memories = build () in
  run_fiber engine (fun () ->
      let r = handle memories 1 in
      Alcotest.(check (option string)) "unwritten register reads ⊥" None
        (Swmr.read r ~reg:"x"))

let test_survives_minority_memory_crash () =
  let engine, memories = build ~m:3 () in
  Memory.crash memories.(2);
  run_fiber engine (fun () ->
      let w = handle memories 0 in
      let r = handle memories 1 in
      Alcotest.(check bool) "write completes with 2/3 memories" true
        (Swmr.write w ~reg:"x" "v" = Memory.Ack);
      Alcotest.(check (option string)) "read completes with 2/3 memories" (Some "v")
        (Swmr.read r ~reg:"x"))

let test_blocks_on_majority_crash () =
  let engine, memories = build ~m:3 () in
  Memory.crash memories.(1);
  Memory.crash memories.(2);
  let finished = ref false in
  ignore
    (Engine.spawn engine "writer" (fun () ->
         ignore (Swmr.write (handle memories 0) ~reg:"x" "v");
         finished := true));
  Engine.run engine;
  Alcotest.(check bool) "write blocks forever without a majority" false !finished

let test_equivocation_reads_bottom () =
  (* A (Byzantine) writer that plants different values on different
     replicas: readers see two distinct values and must return ⊥ — the
     memory-level equivocation defence the NEB algorithm builds on. *)
  let engine, memories = build ~m:3 () in
  run_fiber engine (fun () ->
      let plant mid v =
        ignore
          (Ivar.await
             (Memory.write_async memories.(mid) ~from:0 ~region:"swmr.0" ~reg:"x" v))
      in
      plant 0 "v1";
      plant 1 "v2";
      plant 2 "v1";
      let r = handle memories 1 in
      (* Depending on which majority answers, the read sees {v1} or
         {v1,v2}; run it a few times — it must never return v2 alone and
         the 3-response case must be ⊥. *)
      let seen = Swmr.read r ~reg:"x" in
      Alcotest.(check bool) "never the minority value alone" true (seen <> Some "v2"))

let test_write_nak_on_revoked_replica () =
  (* If some replica refuses the write (permission revoked there), the
     writer learns Nak. *)
  let engine = Engine.create () in
  let stats = Stats.create () in
  let legal_change ~pid ~region:_ ~current:_ ~requested =
    Permission.sole_writer requested = Some pid
  in
  let memories = Array.init 3 (fun mid -> Memory.create ~legal_change ~engine ~stats ~mid ()) in
  Array.iter
    (fun mem ->
      Memory.add_region mem ~name:"swmr.0"
        ~perm:(Permission.exclusive_writer ~writer:0 ~n:2)
        ~registers:[ "x" ])
    memories;
  run_fiber engine (fun () ->
      (* process 1 takes over every replica *)
      let grabber = Memclient.create ~pid:1 ~memories in
      ignore
        (Memclient.change_permission_quorum ~k:3 grabber ~region:"swmr.0"
           ~perm:(Permission.exclusive_writer ~writer:1 ~n:2));
      let w = handle memories 0 in
      Alcotest.(check bool) "deposed writer sees Nak" true
        (Swmr.write w ~reg:"x" "v" = Memory.Nak))

let test_read_detailed_reports_naks () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let memories = Array.init 3 (fun mid -> Memory.create ~engine ~stats ~mid ()) in
  Array.iter
    (fun mem ->
      (* region readable only by process 0 *)
      Memory.add_region mem ~name:"swmr.0"
        ~perm:(Permission.make ~readwrite:[ 0 ] ())
        ~registers:[ "x" ])
    memories;
  run_fiber engine (fun () ->
      let r = handle memories 1 in
      let value, naks = Swmr.read_detailed r ~reg:"x" in
      Alcotest.(check (option string)) "no value" None value;
      Alcotest.(check bool) "naks reported" true naks)

let test_read_repair_converges_after_restart () =
  (* A replica crashes after the write and rejoins EMPTY: its register is
     stale and naks reads.  One read_repair sweep by the writer must
     write the majority value back so the rejoined replica is fully
     fresh and serves the value again. *)
  let engine, memories = build () in
  run_fiber engine (fun () ->
      let w = handle memories 0 in
      Alcotest.(check bool) "write acks" true (Swmr.write w ~reg:"x" "v" = Memory.Ack);
      Memory.crash memories.(1);
      Memory.restart memories.(1);
      Alcotest.(check (list string)) "rejoined replica is stale" [ "x" ]
        (Memory.stale_registers memories.(1) ~region:"swmr.0");
      Alcotest.(check (option string)) "repair read still returns the value" (Some "v")
        (Swmr.read_repair w ~reg:"x");
      Alcotest.(check (list string)) "replica repaired" []
        (Memory.stale_registers memories.(1) ~region:"swmr.0");
      Alcotest.(check (option string)) "rejoined replica serves directly" (Some "v")
        (Memory.peek_register memories.(1) "x"))

let test_read_repair_skips_crashed_replica () =
  (* A still-crashed replica never responds; the repair sweep must not
     block on it — it repairs the responders and returns. *)
  let engine, memories = build () in
  run_fiber engine (fun () ->
      let w = handle memories 0 in
      ignore (Swmr.write w ~reg:"x" "v");
      Memory.crash memories.(2);
      Alcotest.(check (option string)) "repair completes on the live majority"
        (Some "v") (Swmr.read_repair w ~reg:"x");
      (* the crashed replica is untouched; once it rejoins, a later sweep
         picks it up *)
      Memory.restart memories.(2);
      Alcotest.(check (option string)) "next sweep repairs the rejoiner" (Some "v")
        (Swmr.read_repair w ~reg:"x");
      Alcotest.(check (list string)) "rejoiner fresh" []
        (Memory.stale_registers memories.(2) ~region:"swmr.0"))

let suite =
  [
    Alcotest.test_case "write then read" `Quick test_write_then_read;
    Alcotest.test_case "unwritten reads ⊥" `Quick test_read_bottom;
    Alcotest.test_case "survives minority memory crash" `Quick
      test_survives_minority_memory_crash;
    Alcotest.test_case "blocks when majority of memories crash" `Quick
      test_blocks_on_majority_crash;
    Alcotest.test_case "equivocating writer reads as ⊥" `Quick
      test_equivocation_reads_bottom;
    Alcotest.test_case "write naks if a replica was revoked" `Quick
      test_write_nak_on_revoked_replica;
    Alcotest.test_case "read_detailed reports naks" `Quick test_read_detailed_reports_naks;
    Alcotest.test_case "read_repair converges after a restart" `Quick
      test_read_repair_converges_after_restart;
    Alcotest.test_case "read_repair skips crashed replicas" `Quick
      test_read_repair_skips_crashed_replica;
  ]
