(* Unit tests for the simulator engine: virtual time, fibers, ivars,
   mailboxes, cancellation, timeouts, determinism. *)

open Rdma_sim

let test_virtual_time () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng 5.0 (fun () -> log := (Engine.now eng, "b") :: !log);
  Engine.schedule eng 1.0 (fun () -> log := (Engine.now eng, "a") :: !log);
  Engine.run eng;
  Alcotest.(check (list (pair (float 0.0) string)))
    "events fire at their virtual times in order"
    [ (1.0, "a"); (5.0, "b") ]
    (List.rev !log)

let test_fiber_sleep () =
  let eng = Engine.create () in
  let finished_at = ref (-1.0) in
  ignore
    (Engine.spawn eng "sleeper" (fun () ->
         Engine.sleep 2.0;
         Engine.sleep 3.0;
         finished_at := Engine.now eng));
  Engine.run eng;
  Alcotest.(check (float 0.0)) "sleeps accumulate" 5.0 !finished_at

let test_ivar_basic () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let got = ref 0 in
  ignore (Engine.spawn eng "waiter" (fun () -> got := Ivar.await iv));
  ignore
    (Engine.spawn eng "filler" (fun () ->
         Engine.sleep 1.5;
         Ivar.fill iv 42));
  Engine.run eng;
  Alcotest.(check int) "await returns filled value" 42 !got

let test_ivar_multiple_waiters () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let sum = ref 0 in
  for _ = 1 to 5 do
    ignore (Engine.spawn eng "w" (fun () -> sum := !sum + Ivar.await iv))
  done;
  ignore (Engine.spawn eng "filler" (fun () -> Ivar.fill iv 10));
  Engine.run eng;
  Alcotest.(check int) "all waiters wake" 50 !sum

let test_ivar_double_fill_raises () =
  let iv = Ivar.create () in
  Ivar.fill iv 1;
  Alcotest.check_raises "second fill raises"
    (Invalid_argument "Ivar.fill: already full") (fun () -> Ivar.fill iv 2)

let test_ivar_timeout () =
  let eng = Engine.create () in
  let never = Ivar.create () in
  let result = ref (Some 99) in
  let when_ = ref 0.0 in
  ignore
    (Engine.spawn eng "waiter" (fun () ->
         result := Ivar.await_timeout never 4.0;
         when_ := Engine.now eng));
  Engine.run eng;
  Alcotest.(check bool) "timed out" true (!result = None);
  Alcotest.(check (float 0.0)) "timeout fires at deadline" 4.0 !when_

let test_ivar_timeout_beats_deadline () =
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let result = ref None in
  ignore (Engine.spawn eng "waiter" (fun () -> result := Ivar.await_timeout iv 10.0));
  ignore
    (Engine.spawn eng "filler" (fun () ->
         Engine.sleep 2.0;
         Ivar.fill iv "v"));
  Engine.run eng;
  Alcotest.(check (option string)) "value wins race" (Some "v") !result

let test_cancellation () =
  let eng = Engine.create () in
  let reached = ref false in
  let fiber =
    Engine.spawn eng "victim" (fun () ->
        Engine.sleep 5.0;
        reached := true)
  in
  Engine.schedule eng 2.0 (fun () -> Engine.cancel fiber);
  Engine.run eng;
  Alcotest.(check bool) "cancelled fiber takes no further steps" false !reached

let test_cancelled_before_start () =
  let eng = Engine.create () in
  let reached = ref false in
  let fiber = Engine.spawn eng "victim" (fun () -> reached := true) in
  Engine.cancel fiber;
  Engine.run eng;
  Alcotest.(check bool) "cancel before first step" false !reached

let test_mailbox_fifo () =
  let eng = Engine.create () in
  let box = Mailbox.create () in
  let got = ref [] in
  ignore
    (Engine.spawn eng "recv" (fun () ->
         for _ = 1 to 3 do
           got := Mailbox.recv box :: !got
         done));
  ignore
    (Engine.spawn eng "send" (fun () ->
         Mailbox.send box "a";
         Engine.sleep 1.0;
         Mailbox.send box "b";
         Mailbox.send box "c"));
  Engine.run eng;
  Alcotest.(check (list string)) "fifo order" [ "a"; "b"; "c" ] (List.rev !got)

let test_mailbox_timeout_preserves_message () =
  let eng = Engine.create () in
  let box = Mailbox.create () in
  let first = ref (Some "x") in
  let second = ref None in
  ignore
    (Engine.spawn eng "recv" (fun () ->
         first := Mailbox.recv_timeout box 1.0;
         (* message arrives after the timeout; a later recv must get it *)
         Engine.sleep 5.0;
         second := Mailbox.recv_timeout box 1.0));
  ignore
    (Engine.spawn eng "send" (fun () ->
         Engine.sleep 3.0;
         Mailbox.send box "late"));
  Engine.run eng;
  Alcotest.(check (option string)) "first recv times out" None !first;
  Alcotest.(check (option string)) "late message not lost" (Some "late") !second

let test_errors_recorded () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng "bomber" (fun () -> failwith "boom"));
  Engine.run eng;
  match Engine.errors eng with
  | [ (name, Failure msg) ] ->
      Alcotest.(check string) "fiber name" "bomber" name;
      Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exactly one recorded error"

let test_determinism () =
  let run_once () =
    let eng = Engine.create ~seed:3 () in
    let log = Buffer.create 64 in
    for i = 0 to 4 do
      ignore
        (Engine.spawn eng (Printf.sprintf "f%d" i) (fun () ->
             Engine.sleep (float_of_int (5 - i));
             Buffer.add_string log (Printf.sprintf "%d@%.0f;" i (Engine.now eng))))
    done;
    Engine.run eng;
    Buffer.contents log
  in
  Alcotest.(check string) "identical runs" (run_once ()) (run_once ())

let test_deadlock_guard () =
  let eng = Engine.create ~max_steps:100 () in
  ignore
    (Engine.spawn eng "spinner" (fun () ->
         while true do
           Engine.yield ()
         done));
  Alcotest.(check bool) "step budget trips" true
    (try
       Engine.run eng;
       false
     with Engine.Deadlock _ -> true)

let test_par_await_k () =
  let eng = Engine.create () in
  let ivars = Array.init 5 (fun _ -> Ivar.create ()) in
  let done_at = ref 0.0 in
  let count = ref 0 in
  ignore
    (Engine.spawn eng "waiter" (fun () ->
         let completed = Par.await_k ivars 3 in
         count := List.length completed;
         done_at := Engine.now eng));
  Array.iteri
    (fun i iv ->
      Engine.schedule eng (float_of_int (i + 1)) (fun () -> Ivar.fill iv i))
    ivars;
  Engine.run eng;
  Alcotest.(check bool) "at least k completed" true (!count >= 3);
  Alcotest.(check (float 0.0)) "returns when the k-th fills" 3.0 !done_at

let test_par_await_k_timeout () =
  let eng = Engine.create () in
  let ivars = Array.init 3 (fun _ -> Ivar.create ()) in
  Ivar.fill ivars.(1) "ready";
  let got = ref [] in
  ignore
    (Engine.spawn eng "waiter" (fun () -> got := Par.await_k_timeout ivars 3 2.5));
  Engine.run eng;
  Alcotest.(check (list (pair int string)))
    "timeout returns partial results" [ (1, "ready") ] !got

(* A crashed issuer must tear down its quorum wait at cancel time: the
   callbacks Par.await_k registered on still-unfilled ivars are
   deregistered, so a completion that arrives after the crash — a lagged
   one under a weak ordering model in particular — finds no waiter and
   nothing leaks on ivars that may never fill. *)
let test_par_await_k_cancel_unhooks () =
  let eng = Engine.create () in
  let ivars = Array.init 3 (fun _ -> Ivar.create ()) in
  let resumed = ref false in
  let waiter =
    Engine.spawn eng "waiter" (fun () ->
        ignore (Par.await_k ivars 2);
        resumed := true)
  in
  Engine.schedule eng 1.0 (fun () -> Ivar.fill ivars.(0) "a");
  Engine.schedule eng 2.0 (fun () -> Engine.cancel waiter);
  Engine.schedule eng 3.0 (fun () ->
      Array.iter
        (fun iv ->
          Alcotest.(check int) "no waiter survives the crash" 0
            (Ivar.waiter_count iv))
        ivars;
      (* late (lagged) completions find no waiter and stay inert *)
      Ivar.fill ivars.(1) "b";
      Ivar.fill ivars.(2) "c");
  Engine.run eng;
  Alcotest.(check bool) "cancelled waiter never resumed" false !resumed;
  match Engine.errors eng with
  | [] -> ()
  | (n, e) :: _ -> Alcotest.failf "fiber %s raised %s" n (Printexc.to_string e)

let test_par_await_k_timeout_cancel_unhooks () =
  let eng = Engine.create () in
  let ivars = Array.init 2 (fun _ -> Ivar.create ()) in
  let resumed = ref false in
  let waiter =
    Engine.spawn eng "waiter" (fun () ->
        ignore (Par.await_k_timeout ivars 2 50.0);
        resumed := true)
  in
  Engine.schedule eng 1.0 (fun () -> Engine.cancel waiter);
  Engine.schedule eng 2.0 (fun () ->
      Array.iter
        (fun iv ->
          Alcotest.(check int) "timed wait unhooked on crash" 0
            (Ivar.waiter_count iv))
        ivars;
      Ivar.fill ivars.(0) 1;
      Ivar.fill ivars.(1) 2);
  Engine.run eng;
  (* the 50.0 timer still fires, finds the wait settled, and is a no-op *)
  Alcotest.(check bool) "cancelled waiter never resumed" false !resumed;
  match Engine.errors eng with
  | [] -> ()
  | (n, e) :: _ -> Alcotest.failf "fiber %s raised %s" n (Printexc.to_string e)

let suite =
  [
    Alcotest.test_case "events fire at virtual times" `Quick test_virtual_time;
    Alcotest.test_case "fiber sleeps accumulate" `Quick test_fiber_sleep;
    Alcotest.test_case "ivar await/fill" `Quick test_ivar_basic;
    Alcotest.test_case "ivar wakes all waiters" `Quick test_ivar_multiple_waiters;
    Alcotest.test_case "ivar double fill raises" `Quick test_ivar_double_fill_raises;
    Alcotest.test_case "ivar timeout" `Quick test_ivar_timeout;
    Alcotest.test_case "ivar value beats deadline" `Quick test_ivar_timeout_beats_deadline;
    Alcotest.test_case "cancellation stops a fiber" `Quick test_cancellation;
    Alcotest.test_case "cancel before first step" `Quick test_cancelled_before_start;
    Alcotest.test_case "mailbox is FIFO" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox timeout keeps late message" `Quick
      test_mailbox_timeout_preserves_message;
    Alcotest.test_case "fiber exceptions recorded" `Quick test_errors_recorded;
    Alcotest.test_case "runs are deterministic" `Quick test_determinism;
    Alcotest.test_case "step budget guards livelock" `Quick test_deadlock_guard;
    Alcotest.test_case "Par.await_k waits for k-th completion" `Quick test_par_await_k;
    Alcotest.test_case "Par.await_k_timeout returns partial" `Quick
      test_par_await_k_timeout;
    Alcotest.test_case "crashed issuer unhooks await_k waiters" `Quick
      test_par_await_k_cancel_unhooks;
    Alcotest.test_case "crashed issuer unhooks timed quorum waiters" `Quick
      test_par_await_k_timeout_cancel_unhooks;
  ]
