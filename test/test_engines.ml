(* The engine-agnostic SMR layer: one replication/failover/read suite
   instantiated for EVERY registered consensus engine (pmp and velos must
   pass it unmodified), the engine registry, and the velos lease-safety
   properties — a leased read costs zero memory operations, expiry and
   failover fall back to quorum confirmation, and the deliberately
   stale-lease fixture is caught by the chaos oracle. *)

open Rdma_sim
open Rdma_mm
open Rdma_obs
open Rdma_smr

let base_cfg =
  {
    Consensus_engine.default_config with
    replicas = 3;
    max_entries = 32;
    serve_until = 500.0;
    anti_entropy_every = 10.0;
    lease_duration = 25.0;
  }

let build (module E : Consensus_engine.S) ?(cfg = base_cfg) ?(seed = 1)
    ~clients ~m () =
  let n = cfg.Consensus_engine.replicas + clients in
  let cluster : string Cluster.t =
    Cluster.create ~seed ~legal_change:(E.legal_change cfg) ~n ~m ()
  in
  E.setup_regions cluster cfg;
  cluster

let spawn_replicas engine ?(cfg = base_cfg) cluster =
  Array.init cfg.Consensus_engine.replicas (fun pid ->
      Consensus_engine.spawn engine cluster ~cfg ~pid ())

(* --- the shared suite, parametric in the engine --------------------- *)

let test_replication_and_kv ((module E : Consensus_engine.S) as engine) () =
  let cluster = build (module E) ~clients:1 ~m:3 () in
  let replicas = spawn_replicas engine cluster in
  let results = ref [] in
  let commands =
    List.map Kv.encode_command
      [ Kv.Set ("a", "1"); Kv.Set ("b", "2"); Kv.Delete "a"; Kv.Set ("c", "3") ]
  in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd ->
          let index = E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:200.0 in
          results := (cmd, index) :: !results)
        commands);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (option int)))
    "commands committed in order"
    [ Some 1; Some 2; Some 3; Some 4 ]
    (List.rev_map snd !results);
  let logs = Array.map Consensus_engine.applied replicas in
  Alcotest.(check bool)
    "replicas agree" true
    (logs.(0) = logs.(1) && logs.(1) = logs.(2));
  Alcotest.(check bool) "leader's term established" true
    (Consensus_engine.current_term replicas.(0) > 0);
  let kv = Kv.of_replica replicas.(1) in
  Alcotest.(check (option string)) "a deleted" None (Kv.get kv "a");
  Alcotest.(check (option string)) "b present" (Some "2") (Kv.get kv "b");
  Alcotest.(check (option string)) "c present" (Some "3") (Kv.get kv "c")

let test_commit_stream ((module E : Consensus_engine.S) as engine) () =
  let cluster = build (module E) ~clients:1 ~m:3 () in
  let replicas = spawn_replicas engine cluster in
  (* [Kv.attach] consumes the engine's on_commit stream incrementally
     instead of re-reading the whole log. *)
  let live = Kv.attach replicas.(2) in
  let seen = ref [] in
  Consensus_engine.on_commit replicas.(2) (fun ~index ~cmd:_ ->
      seen := index :: !seen);
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd ->
          ignore (E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:200.0))
        (List.map Kv.encode_command [ Kv.Set ("x", "1"); Kv.Set ("x", "2") ]));
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list int)) "stream delivered in order" [ 1; 2 ]
    (List.rev !seen);
  Alcotest.(check (option string)) "attached KV is live" (Some "2")
    (Kv.get live "x")

let test_failover_preserves_log ((module E : Consensus_engine.S) as engine) ()
    =
  let cluster = build (module E) ~clients:1 ~m:3 () in
  let replicas = spawn_replicas engine cluster in
  let results = ref [] in
  let commands =
    List.init 6 (fun i ->
        Kv.encode_command (Kv.Set (Printf.sprintf "k%d" i, string_of_int i)))
  in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd ->
          if seq < 3 then
            results :=
              (cmd, E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:150.0)
              :: !results)
        commands;
      Cluster.crash_process cluster 0;
      List.iteri
        (fun seq cmd ->
          if seq >= 3 then
            results :=
              (cmd, E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:250.0)
              :: !results)
        commands);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "all six committed" 6
    (List.length (List.filter (fun (_, i) -> i <> None) !results));
  let l1 = Consensus_engine.applied replicas.(1) in
  let l2 = Consensus_engine.applied replicas.(2) in
  Alcotest.(check bool) "survivors agree" true (l1 = l2);
  Alcotest.(check int) "no committed entry lost" 6 (List.length l1);
  let kv = Kv.of_replica replicas.(1) in
  Alcotest.(check (option string)) "early write survived failover" (Some "0")
    (Kv.get kv "k0");
  Alcotest.(check (option string)) "late write present" (Some "5")
    (Kv.get kv "k5")

let test_memory_crash_tolerated ((module E : Consensus_engine.S) as engine) ()
    =
  let cluster = build (module E) ~clients:1 ~m:3 () in
  let replicas = spawn_replicas engine cluster in
  let results = ref [] in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd ->
          results := E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:200.0 :: !results)
        [ "c0"; "c1"; "c2" ]);
  Cluster.crash_memory_at cluster ~at:0.0 1;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check bool) "all committed with 2/3 memories" true
    (List.for_all (fun i -> i <> None) !results);
  Alcotest.(check int) "replica applied them" 3
    (Consensus_engine.applied_count replicas.(2))

let test_linearizable_read ((module E : Consensus_engine.S) as engine) () =
  let cluster = build (module E) ~clients:1 ~m:3 () in
  let replicas = spawn_replicas engine cluster in
  let observed = ref (-1) in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd -> ignore (E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:200.0))
        [ "a"; "b" ];
      match E.linearizable_read ctx ~cfg:base_cfg ~seq:100 ~timeout:200.0 with
      | Some up_to -> observed := up_to
      | None -> ());
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "read covers every acked append" 2 !observed;
  ignore replicas

let test_lock_service ((module E : Consensus_engine.S) as engine) () =
  let cluster = build (module E) ~clients:1 ~m:3 () in
  let replicas = spawn_replicas engine cluster in
  let commands =
    [
      Lock_service.encode_command (Lock_service.Acquire { lock = "l"; owner = "p3" });
      Lock_service.encode_command (Lock_service.Acquire { lock = "l"; owner = "p4" });
      Lock_service.encode_command (Lock_service.Release { lock = "l"; owner = "p3" });
    ]
  in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd -> ignore (E.submit ctx ~cfg:base_cfg ~seq ~cmd ~timeout:200.0))
        commands);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let locks = Lock_service.of_replica replicas.(0) in
  (* p3 released; p4 was queued and now holds the lock *)
  Alcotest.(check (option string)) "queued waiter promoted" (Some "p4")
    (Option.map fst (Lock_service.holder locks "l"))

(* --- registry ------------------------------------------------------- *)

let test_registry () =
  Alcotest.(check (list string)) "both engines registered" [ "pmp"; "velos" ]
    Engines.names;
  (match Engines.find "velos" with
  | Some (module E : Consensus_engine.S) ->
      Alcotest.(check string) "find resolves" "velos" E.name
  | None -> Alcotest.fail "velos not found");
  Alcotest.check_raises "unknown engine rejected"
    (Invalid_argument "unknown engine \"nope\" (have: pmp, velos)") (fun () ->
      ignore (Engines.get "nope"))

(* --- velos lease safety --------------------------------------------- *)

let velos : Consensus_engine.engine = (module Velos_engine)

let run_profiled cluster =
  let prof = Prof.create ~clock:(fun () -> 0.0) () in
  Prof.with_profiler prof (fun () ->
      Cluster.run cluster;
      Cluster.check_errors cluster);
  prof

(* Sum counter [name] over every profiler scope whose path mentions
   [scope] (reads are served inside replica fibers, so the scope nests
   under the caller's frames). *)
let counter_in prof ~scope ~name =
  List.fold_left
    (fun acc (path, counters) ->
      let contains =
        let lp = String.length path and ls = String.length scope in
        let rec probe i =
          i + ls <= lp && (String.sub path i ls = scope || probe (i + 1))
        in
        probe 0
      in
      if contains then acc + (try List.assoc name counters with Not_found -> 0)
      else acc)
    0 (Prof.by_scope prof)

let leased_scope_seen prof =
  List.exists
    (fun (path, _) ->
      let lp = String.length path in
      let scope = "velos.read.leased" in
      let ls = String.length scope in
      let rec probe i = i + ls <= lp && (String.sub path i ls = scope || probe (i + 1)) in
      probe 0)
    (Prof.by_scope prof)

let test_leased_read_zero_mem_ops () =
  let module E = Velos_engine in
  (* Long enough that the reign-start lease covers every read below
     (the serve loop paces one read per 4-delay request timeout). *)
  let cfg = { base_cfg with Consensus_engine.lease_duration = 60.0 } in
  let cluster = build (module E) ~cfg ~clients:1 ~m:3 () in
  let _replicas = spawn_replicas velos ~cfg cluster in
  let reads = ref [] in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd -> ignore (E.submit ctx ~cfg ~seq ~cmd ~timeout:200.0))
        [ "a"; "b"; "c" ];
      (* The reign-start lease refresh covers these: no quorum rounds. *)
      for seq = 100 to 103 do
        reads := E.linearizable_read ctx ~cfg ~seq ~timeout:200.0 :: !reads
      done);
  let prof = run_profiled cluster in
  Alcotest.(check (list (option int))) "reads all answered and current"
    [ Some 3; Some 3; Some 3; Some 3 ]
    !reads;
  Alcotest.(check bool) "leased-read scope exercised" true
    (leased_scope_seen prof);
  Alcotest.(check int) "a leased read issues ZERO memory operations" 0
    (counter_in prof ~scope:"velos.read.leased" ~name:"mem.ops.issued");
  Alcotest.(check bool) "leased reads were served" true
    (counter_in prof ~scope:"velos.read.leased" ~name:"smr.reads.leased" >= 4);
  Alcotest.(check int) "stat plane agrees: no read paid a quorum round" 0
    (Stats.get (Cluster.stats cluster) "velos.reads.quorum")

let test_expired_lease_pays_quorum () =
  let module E = Velos_engine in
  let cfg = { base_cfg with Consensus_engine.lease_duration = 5.0 } in
  let cluster = build (module E) ~cfg ~clients:1 ~m:3 () in
  let _replicas = spawn_replicas velos ~cfg cluster in
  let read = ref None in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      ignore (E.submit ctx ~cfg ~seq:0 ~cmd:"a" ~timeout:200.0);
      (* outlive the 5-delay lease, then read: the replica must fall
         back to a quorum round before answering *)
      Engine.sleep 40.0;
      read := E.linearizable_read ctx ~cfg ~seq:100 ~timeout:200.0);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (option int)) "read still linearizes" (Some 1) !read;
  Alcotest.(check bool) "expired lease paid a quorum round" true
    (Stats.get (Cluster.stats cluster) "velos.reads.quorum" >= 1)

let test_zero_duration_disables_leases () =
  let module E = Velos_engine in
  let cfg = { base_cfg with Consensus_engine.lease_duration = 0.0 } in
  let cluster = build (module E) ~cfg ~clients:1 ~m:3 () in
  let _replicas = spawn_replicas velos ~cfg cluster in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      ignore (E.submit ctx ~cfg ~seq:0 ~cmd:"a" ~timeout:200.0);
      for seq = 100 to 101 do
        ignore (E.linearizable_read ctx ~cfg ~seq ~timeout:200.0)
      done);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "no leased reads" 0
    (Stats.get (Cluster.stats cluster) "velos.reads.leased");
  Alcotest.(check bool) "every read paid quorum" true
    (Stats.get (Cluster.stats cluster) "velos.reads.quorum" >= 2)

let test_read_after_failover () =
  let module E = Velos_engine in
  (* Long lease so it is still valid when the successor's recovery
     finishes (~27 delays in: detection + permission swap + gather). *)
  let cfg = { base_cfg with Consensus_engine.lease_duration = 60.0 } in
  let cluster = build (module E) ~cfg ~clients:1 ~m:3 () in
  let _replicas = spawn_replicas velos ~cfg cluster in
  let read = ref None in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      List.iteri
        (fun seq cmd -> ignore (E.submit ctx ~cfg ~seq ~cmd ~timeout:150.0))
        [ "a"; "b" ];
      (* Depose the leaseholder: the successor must wait out the lease
         on the shared virtual clock before serving reads. *)
      Cluster.crash_process cluster 0;
      read := E.linearizable_read ctx ~cfg ~seq:100 ~timeout:250.0);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (option int)) "post-failover read sees every acked append"
    (Some 2) !read;
  Alcotest.(check bool) "successor waited out the predecessor's lease" true
    (Stats.get (Cluster.stats cluster) "velos.lease.waits" >= 1)

let test_stale_lease_fixture_caught () =
  let scenario =
    match Rdma_chaos.Scenario.find "velos-stale-lease" with
    | Some s -> s
    | None -> Alcotest.fail "velos-stale-lease scenario not registered"
  in
  let options = { Rdma_chaos.Explore.default_options with runs = 2; seed = 11 } in
  let batch = Rdma_chaos.Explore.explore ~options scenario in
  Alcotest.(check int) "every schedule catches the stale lease" 2
    (List.length batch.Rdma_chaos.Explore.failures)

(* --- suite ---------------------------------------------------------- *)

let per_engine =
  List.concat_map
    (fun ((module E : Consensus_engine.S) as engine) ->
      let t name f =
        Alcotest.test_case (Printf.sprintf "%s: %s" E.name name) `Quick
          (f engine)
      in
      [
        t "replication + kv" test_replication_and_kv;
        t "commit stream + live kv" test_commit_stream;
        t "leader failover preserves log" test_failover_preserves_log;
        t "memory crash tolerated" test_memory_crash_tolerated;
        t "linearizable read" test_linearizable_read;
        t "lock service" test_lock_service;
      ])
    Engines.all

let suite =
  per_engine
  @ [
      Alcotest.test_case "engine registry" `Quick test_registry;
      Alcotest.test_case "velos: leased read = 0 mem ops" `Quick
        test_leased_read_zero_mem_ops;
      Alcotest.test_case "velos: expired lease pays quorum" `Quick
        test_expired_lease_pays_quorum;
      Alcotest.test_case "velos: lease_duration=0 disables leases" `Quick
        test_zero_duration_disables_leases;
      Alcotest.test_case "velos: read after failover" `Quick
        test_read_after_failover;
      Alcotest.test_case "velos: stale-lease fixture caught" `Quick
        test_stale_lease_fixture_caught;
    ]
