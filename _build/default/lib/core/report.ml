(* Uniform run reports.

   Every algorithm runner produces a [Report.t]: per-process decisions
   with their virtual decision times (= delay counts, since one network
   delay is the time unit), plus the substrate counters.  The property
   checks used throughout the tests and benches live here too. *)

open Rdma_sim

type decision = { value : string; at : float }

type t = {
  algorithm : string;
  n : int;
  m : int;
  decisions : decision option array;
  messages : int;
  mem_ops : int;
  signatures : int;
  verifications : int;
  sim_steps : int;
  wall_events : int;
  named : (string * int) list; (* snapshot of the named counters *)
}

let of_stats ~algorithm ~n ~m ~decisions ~(stats : Stats.t) ~steps =
  {
    algorithm;
    n;
    m;
    decisions;
    messages = stats.Stats.messages_sent;
    mem_ops = Stats.mem_ops stats;
    signatures = stats.Stats.signatures;
    verifications = stats.Stats.verifications;
    sim_steps = steps;
    wall_events = steps;
    named =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) stats.Stats.named []
      |> List.sort compare;
  }

let named t key =
  match List.assoc_opt key t.named with Some v -> v | None -> 0

let decided t =
  Array.to_list t.decisions |> List.filter_map Fun.id

let decided_count t = List.length (decided t)

(* Uniform agreement over the processes that decided; the caller excludes
   Byzantine processes before building the report if needed. *)
let agreement_ok ?(ignore_pids = []) t =
  let values =
    Array.to_list t.decisions
    |> List.mapi (fun pid d -> (pid, d))
    |> List.filter (fun (pid, _) -> not (List.mem pid ignore_pids))
    |> List.filter_map (fun (_, d) -> Option.map (fun d -> d.value) d)
  in
  match List.sort_uniq String.compare values with [] | [ _ ] -> true | _ -> false

(* Validity: every decision is some process's input. *)
let validity_ok ?(ignore_pids = []) t ~inputs =
  Array.to_list t.decisions
  |> List.mapi (fun pid d -> (pid, d))
  |> List.for_all (fun (pid, d) ->
         List.mem pid ignore_pids
         ||
         match d with
         | None -> true
         | Some d -> Array.exists (String.equal d.value) inputs)

(* Earliest decision time — the paper's "k-deciding" metric: some process
   decides within k delays. *)
let first_decision_time t =
  decided t |> List.map (fun d -> d.at)
  |> function [] -> None | ts -> Some (List.fold_left min infinity ts)

let last_decision_time t =
  decided t |> List.map (fun d -> d.at)
  |> function [] -> None | ts -> Some (List.fold_left max neg_infinity ts)

let decision_value t =
  match decided t with [] -> None | d :: _ -> Some d.value

let pp ppf t =
  Fmt.pf ppf "%s n=%d m=%d decided=%d/%d first=%a msgs=%d memops=%d signs=%d"
    t.algorithm t.n t.m (decided_count t) t.n
    Fmt.(option ~none:(any "-") (fmt "%.1f"))
    (first_decision_time t) t.messages t.mem_ops t.signatures
