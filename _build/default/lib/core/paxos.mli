(** Classic single-decree Paxos (message passing, crash failures,
    n ≥ 2f + 1) — the baseline algorithm, and the algorithm [A] that
    Robust Backup (Definition 2) transforms by swapping the transport. *)

open Rdma_sim
open Rdma_mm

type msg =
  | Prepare of { ballot : int }
  | Promise of { ballot : int; accepted_ballot : int; accepted_value : string }
  | Reject of { ballot : int; higher : int }
  | Accept of { ballot : int; value : string }
  | Accepted of { ballot : int }
  | Decide of { value : string }

val encode : msg -> string

val decode : string -> msg option

type config = {
  round_timeout : float;  (** how long a proposer waits for a quorum *)
  max_rounds : int;  (** proposer retry budget; keeps failing runs finite *)
  retry_backoff : float;  (** pause between a failed round and the next *)
}

val default_config : config

(** The protocol, functorized over its transport (Definition 2). *)
module Make (T : Transport.S) : sig
  type t

  (** Wire up one process (three fibers: router, acceptor, proposer).
      [spawn_fiber] should be the cluster's [spawn_sub] so injected
      crashes kill all roles. *)
  val spawn :
    engine:Engine.t ->
    omega:Omega.t ->
    ?cfg:config ->
    spawn_fiber:(string -> (unit -> unit) -> unit) ->
    transport:T.t ->
    input:string ->
    unit ->
    t

  (** Fills when this process decides. *)
  val decision : t -> Report.decision Ivar.t
end

module Over_network : module type of Make (Transport.Net)

(** Run a complete message-passing Paxos instance on a fresh cluster of
    [n] processes (no memories). *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  inputs:string array ->
  unit ->
  Report.t
