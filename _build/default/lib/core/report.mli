(** Uniform run reports: per-process decisions with virtual decision times
    (= delay counts) and substrate counters. *)

open Rdma_sim

type decision = { value : string; at : float }

type t = {
  algorithm : string;
  n : int;
  m : int;
  decisions : decision option array;
  messages : int;
  mem_ops : int;
  signatures : int;
  verifications : int;
  sim_steps : int;
  wall_events : int;
  named : (string * int) list;  (** snapshot of the named counters *)
}

val of_stats :
  algorithm:string ->
  n:int ->
  m:int ->
  decisions:decision option array ->
  stats:Stats.t ->
  steps:int ->
  t

(** Look up a named counter (0 if absent). *)
val named : t -> string -> int

val decided : t -> decision list

val decided_count : t -> int

(** Uniform agreement among deciders outside [ignore_pids]. *)
val agreement_ok : ?ignore_pids:int list -> t -> bool

(** Every decision (outside [ignore_pids]) is some process's input. *)
val validity_ok : ?ignore_pids:int list -> t -> inputs:string array -> bool

(** Earliest decision time — the paper's "k-deciding" metric. *)
val first_decision_time : t -> float option

val last_decision_time : t -> float option

val decision_value : t -> string option

val pp : Format.formatter -> t -> unit
