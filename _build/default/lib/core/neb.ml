(* Non-equivocating broadcast (Algorithm 2).

   Each process p owns an SWMR region holding slots[p, k, q]: p's copy of
   the k-th message of q.  To broadcast its k-th message, p writes a
   signed (k, m) into slots[p, k, p].  To deliver q's k-th message, p:
   (1) reads slots[q, k, q]; retries later if ⊥, unsigned, or mis-keyed;
   (2) copies the value into its own slots[p, k, q];
   (3) reads slots[i, k, q] of every process i, and delivers only if each
       is either ⊥ or the same value — a different validly-signed copy
       proves q equivocated, and q's message is never delivered.

   Slots are replicated over the m ≥ 2fM + 1 crash-prone memories with
   the Section 4.1 SWMR construction (module Swmr), which also defeats
   memory-level equivocation: a writer that plants different values on
   different replicas reads back as ⊥.

   Properties (Definition 1), each exercised in the tests:
   1. a correct broadcaster's messages are eventually delivered by every
      correct process;
   2. no two correct processes deliver different k-th messages from the
      same sender;
   3. delivery implies the (correct) sender broadcast exactly that
      message. *)

open Rdma_sim
open Rdma_mm
open Rdma_crypto
open Rdma_reg

(* [ns] namespaces a protocol instance: every region and signature is
   tagged with it, so several instances (e.g. the slots of a replicated
   log) can coexist on the same memories without cross-talk or
   cross-instance signature replay. *)
let region_of ?(ns = "") p = Printf.sprintf "%sneb.%d" ns p

let slot_reg_ns ~ns ~owner ~k ~src = Printf.sprintf "%ss.%d.%d.%d" ns owner k src

let slot_reg ~owner ~k ~src = slot_reg_ns ~ns:"" ~owner ~k ~src

(* Region layout: every process needs max_seq * n slots.  [max_seq] bounds
   how many messages each process may broadcast in this instance (the
   paper's algorithm is unbounded; a simulation instance pre-allocates). *)
let setup_regions cluster ?(ns = "") ~max_seq () =
  let n = Cluster.n cluster in
  for p = 0 to n - 1 do
    let registers =
      List.concat_map
        (fun k -> List.init n (fun src -> slot_reg_ns ~ns ~owner:p ~k:(k + 1) ~src))
        (List.init max_seq Fun.id)
    in
    Cluster.add_region_everywhere cluster ~name:(region_of ~ns p)
      ~perm:(Rdma_mem.Permission.swmr ~writer:p ~n)
      ~registers
  done

let slot_payload ?(ns = "") ~k msg = Codec.join3 ns (Codec.int_field k) msg

let encode_slot ~k ~msg ~signature =
  Codec.join3 (Codec.int_field k) msg (Keychain.encode signature)

let decode_slot s =
  match Codec.split3 s with
  | None -> None
  | Some (kf, msg, sig_enc) -> (
      match (Codec.int_of_field kf, Keychain.decode sig_enc) with
      | Some k, Some signature -> Some (k, msg, signature)
      | _ -> None)

type config = {
  ns : string; (* instance namespace; "" for standalone use *)
  max_seq : int;
  poll_interval : float;
  give_up_at : float; (* virtual time after which the poller stops *)
}

let default_config = { ns = ""; max_seq = 64; poll_interval = 2.0; give_up_at = 3000.0 }

type t = {
  me : int;
  n : int;
  engine : Engine.t;
  chain : Keychain.t;
  signer : Keychain.signer;
  cfg : config;
  own : Swmr.handle; (* my region *)
  regions : Swmr.handle array; (* everyone's region, readable by me *)
  deliver : k:int -> msg:string -> src:int -> unit;
  last : int array; (* per sender: last delivered sequence number *)
  convicted : bool array; (* proven equivocators: never delivered again *)
  mutable next_k : int;
  mutable stopped : bool;
}

let create (ctx : _ Cluster.ctx) ?(cfg = default_config) ~deliver () =
  let n = ctx.Cluster.cluster_n in
  let me = ctx.Cluster.pid in
  let regions =
    Array.init n (fun p ->
        Swmr.attach ~client:ctx.Cluster.client ~region:(region_of ~ns:cfg.ns p))
  in
  {
    me;
    n;
    engine = ctx.Cluster.ctx_engine;
    chain = ctx.Cluster.chain;
    signer = ctx.Cluster.signer;
    cfg;
    own = regions.(me);
    regions;
    deliver;
    last = Array.make n 0;
    convicted = Array.make n false;
    next_k = 0;
    stopped = false;
  }

let stop t = t.stopped <- true

(* broadcast(k, m): write sign((k, m)) into slots[me, k, me].  Blocking
   (one replicated write = 2 delays); sequence numbers auto-increment. *)
let broadcast t msg =
  t.next_k <- t.next_k + 1;
  let k = t.next_k in
  if k > t.cfg.max_seq then invalid_arg "Neb.broadcast: max_seq exhausted";
  let signature = Keychain.sign t.signer (slot_payload ~ns:t.cfg.ns ~k msg) in
  ignore
    (Swmr.write t.own
       ~reg:(slot_reg_ns ~ns:t.cfg.ns ~owner:t.me ~k ~src:t.me)
       (encode_slot ~k ~msg ~signature))

(* One delivery attempt for the next message of [src] (try_deliver in
   Algorithm 2).  Returns true if something was delivered. *)
let try_deliver t src =
  let k = t.last.(src) + 1 in
  if k > t.cfg.max_seq || t.convicted.(src) then false
  else begin
    match Swmr.read t.regions.(src) ~reg:(slot_reg_ns ~ns:t.cfg.ns ~owner:src ~k ~src) with
    | None -> false (* src has not written (or replicas disagree); retry *)
    | Some raw -> (
        match decode_slot raw with
        | None -> false (* garbage: src is Byzantine; retry later *)
        | Some (key, msg, signature) ->
            if
              key <> k
              || not
                   (Keychain.valid t.chain ~author:src
                      (slot_payload ~ns:t.cfg.ns ~k:key msg)
                      signature)
            then false
            else begin
              (* copy to our own slot, then cross-check every copy *)
              ignore
                (Swmr.write t.own ~reg:(slot_reg_ns ~ns:t.cfg.ns ~owner:t.me ~k ~src) raw);
              let conflict = ref false in
              for i = 0 to t.n - 1 do
                if not !conflict then
                  match
                    Swmr.read t.regions.(i) ~reg:(slot_reg_ns ~ns:t.cfg.ns ~owner:i ~k ~src)
                  with
                  | None -> ()
                  | Some other when String.equal other raw -> ()
                  | Some other -> (
                      match decode_slot other with
                      | Some (other_k, other_msg, other_sig)
                        when other_k = k
                             && Keychain.valid t.chain ~author:src
                                  (slot_payload ~ns:t.cfg.ns ~k:other_k other_msg)
                                  other_sig ->
                          (* a validly-signed different copy: src signed two
                             different k-th messages — equivocation *)
                          conflict := true
                      | _ -> () (* unsigned noise in i's slot: ignore *))
              done;
              if !conflict then begin
                t.convicted.(src) <- true;
                false
              end
              else begin
                t.deliver ~k ~msg ~src;
                t.last.(src) <- k;
                true
              end
            end)
  end

(* The delivery daemon: round-robin try_deliver until stopped. *)
let poller t =
  while
    (not t.stopped)
    && Engine.now t.engine < t.cfg.give_up_at
  do
    let delivered_any = ref false in
    for src = 0 to t.n - 1 do
      if not t.stopped then
        while (not t.stopped) && try_deliver t src do
          delivered_any := true
        done
    done;
    if not !delivered_any then Engine.sleep t.cfg.poll_interval
  done

let spawn_poller (ctx : _ Cluster.ctx) t =
  ctx.Cluster.spawn_sub "neb.poller" (fun () -> poller t)
