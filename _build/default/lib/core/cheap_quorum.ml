(* Cheap Quorum (Algorithms 4 and 5): the 2-deciding Byzantine fast path.

   A fixed leader ℓ = p0 signs its proposal and writes it to the leader
   region Value[ℓ]; if the write succeeds (nobody revoked its write
   permission) the leader decides immediately — two delays, one
   signature.  Followers copy the leader's value into their own SWMR
   regions, countersign it, assemble *unanimity proofs* (n signed copies)
   and decide once they see n valid proofs.  Anything suspicious — a
   timeout, a bad signature, a panic flag — sends a process into panic
   mode: it revokes the leader's write permission (the only permission
   change the legalChange policy admits), and aborts with the best value
   it can justify, together with evidence that Preferential Paxos later
   ranks by Definition 3:

     T — a correct unanimity proof,
     M — the leader's signature on the value,
     B — the process's own input, no evidence.

   Cheap Quorum is not a complete consensus algorithm: its abort outputs
   feed Fast & Robust (Section 4.3).  Registers are replicated over the
   m ≥ 2fM + 1 memories (module Swmr), so memory crashes are tolerated
   and a leader that equivocates *across memory replicas* reads back as
   ⊥ at the followers. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_crypto
open Rdma_reg

let leader = 0

(* [ns] namespaces an instance (e.g. one slot of a BFT log): regions and
   signature payloads are tagged, so neither values nor unanimity proofs
   can be replayed across instances. *)
let leader_region_ns ns = ns ^ "cq.L"

let leader_region = leader_region_ns ""

let leader_value_reg = "cq.L.value"

let region_of ?(ns = "") p = Printf.sprintf "%scq.%d" ns p

let value_reg p = Printf.sprintf "cq.%d.value" p

let panic_reg p = Printf.sprintf "cq.%d.panic" p

let proof_reg p = Printf.sprintf "cq.%d.proof" p

(* What each process signs: the proposed value under a protocol tag and
   the instance namespace. *)
let value_payload ?(ns = "") v = Codec.join3 "cqv" ns v

(* Value[ℓ]: the value and the leader's signature. *)
let encode_leader_value ~value ~sig_l =
  Codec.join2 value (Keychain.encode sig_l)

let decode_leader_value s =
  match Codec.split2 s with
  | None -> None
  | Some (value, sig_enc) ->
      Option.map (fun sig_l -> (value, sig_l)) (Keychain.decode sig_enc)

(* Value[p], p a follower: value, leader signature, p's countersignature. *)
let encode_copy ~value ~sig_l ~sig_p =
  Codec.join3 value (Keychain.encode sig_l) (Keychain.encode sig_p)

let decode_copy s =
  match Codec.split3 s with
  | None -> None
  | Some (value, sl, sp) -> (
      match (Keychain.decode sl, Keychain.decode sp) with
      | Some sig_l, Some sig_p -> Some (value, sig_l, sig_p)
      | _ -> None)

(* A unanimity proof: the value plus n countersignatures, one per
   process. *)
let encode_proof ~value ~sigs =
  Codec.join (value :: List.map (fun (q, s) -> Codec.join2 (Codec.int_field q) (Keychain.encode s)) sigs)

let decode_proof s =
  match Codec.split s with
  | [] -> None
  | value :: rest ->
      let sigs =
        List.filter_map
          (fun field ->
            match Codec.split2 field with
            | None -> None
            | Some (qf, senc) -> (
                match (Codec.int_of_field qf, Keychain.decode senc) with
                | Some q, Some s -> Some (q, s)
                | _ -> None))
          rest
      in
      if List.length sigs = List.length rest then Some (value, sigs) else None

(* verifyProof: n distinct signers, every signature valid for the same
   value (Definition 3's "correct unanimity proof"). *)
let verify_proof ?(ns = "") chain ~n proof =
  match decode_proof proof with
  | None -> None
  | Some (value, sigs) ->
      let signers = List.sort_uniq compare (List.map fst sigs) in
      if
        List.length sigs = n
        && List.length signers = n
        && List.for_all
             (fun (q, s) -> Keychain.valid chain ~author:q (value_payload ~ns value) s)
             sigs
      then Some value
      else None

(* The only legal permission change (Algorithm 5 line 3): anyone may make
   the leader region read-only for everybody. *)
let legal_change ~n : Permission.legal_change =
 fun ~pid:_ ~region ~current:_ ~requested ->
  let suffix = "cq.L" in
  let lr = String.length region and ls = String.length suffix in
  lr >= ls
  && String.sub region (lr - ls) ls = suffix
  && Permission.equal requested (Permission.read_all ~n)

let setup_regions ?(ns = "") cluster =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster
    ~name:(leader_region_ns ns)
    ~perm:(Permission.swmr ~writer:leader ~n)
    ~registers:[ ns ^ leader_value_reg ];
  for p = 0 to n - 1 do
    Cluster.add_region_everywhere cluster ~name:(region_of ~ns p)
      ~perm:(Permission.swmr ~writer:p ~n)
      ~registers:[ ns ^ value_reg p; ns ^ panic_reg p; ns ^ proof_reg p ]
  done

type evidence =
  | Unanimity of string (* encoded proof *)
  | Leader_signed of Keychain.signature
  | Bare

type outcome =
  | Decided of { value : string; at : float; proof : evidence }
  | Aborted of { value : string; proof : evidence }

type config = {
  ns : string; (* instance namespace; "" for standalone use *)
  fast_timeout : float;
      (* upper bound on common-case communication delays (footnote 3) *)
  check_interval : float;
}

let default_config = { ns = ""; fast_timeout = 120.0; check_interval = 1.0 }

type state = {
  ctx : string Cluster.ctx;
  cfg : config;
  n : int;
  me : int;
  input : string;
  chain : Keychain.t;
  own : Swmr.handle;
  regions : Swmr.handle array;
  lregion : Swmr.handle;
  deadline : float;
}

let make_state (ctx : _ Cluster.ctx) cfg ~input =
  let n = ctx.Cluster.cluster_n in
  let ns = cfg.ns in
  {
    ctx;
    cfg;
    n;
    me = ctx.Cluster.pid;
    input;
    chain = ctx.Cluster.chain;
    own =
      Swmr.attach ~client:ctx.Cluster.client ~region:(region_of ~ns ctx.Cluster.pid);
    regions =
      Array.init n (fun p ->
          Swmr.attach ~client:ctx.Cluster.client ~region:(region_of ~ns p));
    lregion = Swmr.attach ~client:ctx.Cluster.client ~region:(leader_region_ns ns);
    deadline = Engine.now ctx.Cluster.ctx_engine +. cfg.fast_timeout;
  }

let someone_panicked st =
  let rec check q =
    if q >= st.n then false
    else if Swmr.read st.regions.(q) ~reg:(st.cfg.ns ^ panic_reg q) <> None then true
    else check (q + 1)
  in
  check 0

(* Panic mode (Algorithm 5). *)
let panic_mode st =
  ignore (Swmr.write st.own ~reg:(st.cfg.ns ^ panic_reg st.me) "1");
  Swmr.change_permission st.lregion ~perm:(Permission.read_all ~n:st.n);
  let own_value = Swmr.read st.own ~reg:(st.cfg.ns ^ value_reg st.me) in
  let own_proof = Swmr.read st.own ~reg:(st.cfg.ns ^ proof_reg st.me) in
  match own_value with
  | Some copy -> (
      match decode_copy copy with
      | Some (value, sig_l, _) -> (
          (* abort with our replicated value; attach the unanimity proof
             if we managed to write one *)
          match own_proof with
          | Some proof when verify_proof ~ns:st.cfg.ns st.chain ~n:st.n proof = Some value ->
              Aborted { value; proof = Unanimity proof }
          | _ -> Aborted { value; proof = Leader_signed sig_l })
      | None -> Aborted { value = st.input; proof = Bare })
  | None -> (
      match Swmr.read st.lregion ~reg:(st.cfg.ns ^ leader_value_reg) with
      | Some lv -> (
          match decode_leader_value lv with
          | Some (value, sig_l)
            when Keychain.valid st.chain ~author:leader
                   (value_payload ~ns:st.cfg.ns value)
                   sig_l ->
              Aborted { value; proof = Leader_signed sig_l }
          | _ -> Aborted { value = st.input; proof = Bare })
      | None -> Aborted { value = st.input; proof = Bare })

(* Leader (Algorithm 4, lines 1–6): sign, write, decide on ack. *)
let run_leader st =
  let sig_l = Keychain.sign st.ctx.Cluster.signer (value_payload ~ns:st.cfg.ns st.input) in
  let status =
    Swmr.write st.lregion
      ~reg:(st.cfg.ns ^ leader_value_reg)
      (encode_leader_value ~value:st.input ~sig_l)
  in
  if status = Memory.Nak then panic_mode st
  else begin
    let at = Engine.now st.ctx.Cluster.ctx_engine in
    (* The leader then behaves as a follower so the others can assemble
       their unanimity proofs: it replicates the value in Value[p0] and
       publishes its proof. *)
    Decided { value = st.input; at; proof = Leader_signed sig_l }
  end

(* After the leader decision, keep helping the followers: write our copy
   and proof like any follower would.  Returns the possibly-upgraded
   evidence (a unanimity proof if we saw one). *)
let leader_helper st ~sig_l =
  let value = st.input in
  (* the leader's countersignature is its original signature *)
  ignore
    (Swmr.write st.own
       ~reg:(st.cfg.ns ^ value_reg st.me)
       (encode_copy ~value ~sig_l ~sig_p:sig_l));
  (* gather countersignatures until everyone copied or time runs out *)
  let rec gather () =
    if Engine.now st.ctx.Cluster.ctx_engine > st.deadline || someone_panicked st then None
    else begin
      let copies =
        List.init st.n (fun q ->
            match Swmr.read st.regions.(q) ~reg:(st.cfg.ns ^ value_reg q) with
            | Some c -> (
                match decode_copy c with
                | Some (v, _, sig_q)
                  when v = value
                       && Keychain.author sig_q = q
                       && Keychain.valid st.chain ~author:q
                            (value_payload ~ns:st.cfg.ns v)
                            sig_q ->
                    Some (q, sig_q)
                | _ -> None)
            | None -> None)
      in
      if List.for_all Option.is_some copies then
        Some (encode_proof ~value ~sigs:(List.filter_map Fun.id copies))
      else begin
        Engine.sleep st.cfg.check_interval;
        gather ()
      end
    end
  in
  match gather () with
  | Some proof ->
      ignore (Swmr.write st.own ~reg:(st.cfg.ns ^ proof_reg st.me) proof);
      Some proof
  | None -> None

(* Follower (Algorithm 4, lines 8–23). *)
let run_follower st =
  let engine = st.ctx.Cluster.ctx_engine in
  let expired () = Engine.now engine > st.deadline in
  (* Wait for the leader's signed proposal. *)
  let rec await_leader_value () =
    if expired () || someone_panicked st then None
    else
      match Swmr.read st.lregion ~reg:(st.cfg.ns ^ leader_value_reg) with
      | Some lv -> (
          match decode_leader_value lv with
          | Some (value, sig_l)
            when Keychain.valid st.chain ~author:leader
                   (value_payload ~ns:st.cfg.ns value)
                   sig_l ->
              Some (value, sig_l)
          | _ ->
              (* garbage or a bad signature in the leader region: the
                 leader is Byzantine *)
              None)
      | None ->
          Engine.sleep st.cfg.check_interval;
          await_leader_value ()
  in
  match await_leader_value () with
  | None -> panic_mode st
  | Some (value, sig_l) -> (
      (* Countersign and replicate. *)
      let sig_me = Keychain.sign st.ctx.Cluster.signer (value_payload ~ns:st.cfg.ns value) in
      ignore
        (Swmr.write st.own
           ~reg:(st.cfg.ns ^ value_reg st.me)
           (encode_copy ~value ~sig_l ~sig_p:sig_me));
      (* Wait for all n copies, assemble and publish the unanimity proof,
         then wait for n valid proofs. *)
      let rec await_unanimity () =
        if expired () || someone_panicked st then None
        else begin
          let copies =
            List.init st.n (fun q ->
                match Swmr.read st.regions.(q) ~reg:(st.cfg.ns ^ value_reg q) with
                | Some c -> (
                    match decode_copy c with
                    | Some (v, _, sig_q)
                      when v = value
                           && Keychain.author sig_q = q
                           && Keychain.valid st.chain ~author:q
                                (value_payload ~ns:st.cfg.ns v)
                                sig_q ->
                        Some (q, sig_q)
                    | _ -> None)
                | None -> None)
          in
          if List.for_all Option.is_some copies then
            Some (encode_proof ~value ~sigs:(List.filter_map Fun.id copies))
          else begin
            Engine.sleep st.cfg.check_interval;
            await_unanimity ()
          end
        end
      in
      match await_unanimity () with
      | None -> panic_mode st
      | Some proof -> (
          ignore (Swmr.write st.own ~reg:(st.cfg.ns ^ proof_reg st.me) proof);
          let rec await_proofs () =
            if expired () || someone_panicked st then None
            else begin
              let ok =
                List.init st.n (fun q ->
                    match Swmr.read st.regions.(q) ~reg:(st.cfg.ns ^ proof_reg q) with
                    | Some p -> verify_proof ~ns:st.cfg.ns st.chain ~n:st.n p = Some value
                    | None -> false)
              in
              if List.for_all Fun.id ok then Some ()
              else begin
                Engine.sleep st.cfg.check_interval;
                await_proofs ()
              end
            end
          in
          match await_proofs () with
          | Some () ->
              Decided
                {
                  value;
                  at = Engine.now engine;
                  proof = Unanimity proof;
                }
          | None -> panic_mode st))

(* Run one process's Cheap Quorum participation to its outcome.  A
   deciding leader returns immediately (its fast decision is complete)
   and keeps helping the followers assemble unanimity proofs from a
   background fiber — so a caller composing many instances (the BFT log)
   can move on after two delays. *)
let participate (ctx : _ Cluster.ctx) ?(cfg = default_config) ~input () =
  let st = make_state ctx cfg ~input in
  if st.me = leader then begin
    match run_leader st with
    | Decided { value; at; proof = Leader_signed sig_l } ->
        ctx.Cluster.spawn_sub
          (cfg.ns ^ "cq.helper")
          (fun () -> ignore (leader_helper st ~sig_l));
        Decided { value; at; proof = Leader_signed sig_l }
    | outcome -> outcome
  end
  else run_follower st
