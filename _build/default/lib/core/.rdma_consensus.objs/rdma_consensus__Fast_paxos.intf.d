lib/core/fast_paxos.mli: Cluster Fault Ivar Rdma_mm Rdma_sim Report
