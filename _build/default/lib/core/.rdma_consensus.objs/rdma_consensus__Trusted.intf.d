lib/core/trusted.mli: Cluster Neb Rdma_mm
