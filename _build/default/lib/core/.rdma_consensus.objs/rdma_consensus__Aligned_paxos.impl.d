lib/core/aligned_paxos.ml: Array Cluster Codec Engine Fault Ivar List Mailbox Memclient Memory Network Omega Option Paxos Permission Printf Rdma_mem Rdma_mm Rdma_net Rdma_sim Report
