lib/core/fault.mli: Cluster Format Rdma_mm
