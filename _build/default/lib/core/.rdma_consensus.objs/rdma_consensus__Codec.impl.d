lib/core/codec.ml: Buffer List String
