lib/core/preferential_paxos.mli: Cluster Fault Ivar Rdma_mm Rdma_sim Report Robust_backup
