lib/core/robust_backup.mli: Cluster Fault Ivar Mailbox Paxos Rdma_mm Rdma_sim Report Trusted
