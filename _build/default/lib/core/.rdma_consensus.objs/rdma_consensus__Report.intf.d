lib/core/report.mli: Format Rdma_sim Stats
