lib/core/transport.ml: Network Rdma_net
