lib/core/neb.ml: Array Cluster Codec Engine Fun Keychain List Printf Rdma_crypto Rdma_mem Rdma_mm Rdma_reg Rdma_sim String Swmr
