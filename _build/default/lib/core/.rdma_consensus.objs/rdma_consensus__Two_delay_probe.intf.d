lib/core/two_delay_probe.mli:
