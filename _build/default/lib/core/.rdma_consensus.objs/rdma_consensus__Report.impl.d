lib/core/report.ml: Array Fmt Fun Hashtbl List Option Rdma_sim Stats String
