lib/core/two_delay_probe.ml: Engine List Rdma_sim
