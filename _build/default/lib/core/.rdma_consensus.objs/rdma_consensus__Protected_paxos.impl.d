lib/core/protected_paxos.ml: Array Cluster Codec Engine Fault Ivar List Memclient Memory Network Omega Par Permission Printf Rdma_mem Rdma_mm Rdma_net Rdma_sim Report
