lib/core/paxos.mli: Cluster Engine Fault Ivar Omega Rdma_mm Rdma_sim Report Transport
