lib/core/fast_paxos.ml: Array Cluster Codec Engine Fault Hashtbl Ivar List Mailbox Network Omega Option Rdma_mm Rdma_net Rdma_sim Report
