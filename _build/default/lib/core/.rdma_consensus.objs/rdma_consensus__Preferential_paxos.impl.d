lib/core/preferential_paxos.ml: Array Cluster Codec Engine Fault Hashtbl Ivar List Mailbox Rdma_mm Rdma_sim Report Robust_backup Trusted
