lib/core/fast_robust.mli: Cheap_quorum Cluster Fault Ivar Keychain Preferential_paxos Rdma_crypto Rdma_mem Rdma_mm Rdma_sim Report
