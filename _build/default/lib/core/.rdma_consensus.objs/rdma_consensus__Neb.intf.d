lib/core/neb.mli: Cluster Keychain Rdma_crypto Rdma_mm
