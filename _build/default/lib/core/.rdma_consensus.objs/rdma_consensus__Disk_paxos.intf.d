lib/core/disk_paxos.mli: Cluster Fault Ivar Rdma_mm Rdma_sim Report
