lib/core/robust_backup.ml: Array Cluster Codec Engine Fault Ivar List Mailbox Neb Paxos Rdma_mm Rdma_sim Report Trusted
