lib/core/protected_paxos.mli: Cluster Fault Ivar Permission Rdma_mem Rdma_mm Rdma_sim Report
