lib/core/protected_paxos_multi.ml: Array Cluster Codec Engine Fault Fun Ivar List Memclient Memory Network Omega Option Par Permission Printf Protected_paxos Rdma_mem Rdma_mm Rdma_net Rdma_sim Report
