lib/core/attacks.ml: Cheap_quorum Cluster Codec Engine Keychain Memclient Neb Paxos Permission Preferential_paxos Rdma_crypto Rdma_mem Rdma_mm Rdma_reg Rdma_sim Robust_backup
