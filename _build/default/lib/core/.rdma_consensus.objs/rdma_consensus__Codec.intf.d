lib/core/codec.mli:
