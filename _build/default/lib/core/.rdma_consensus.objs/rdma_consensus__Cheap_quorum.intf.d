lib/core/cheap_quorum.mli: Cluster Keychain Permission Rdma_crypto Rdma_mem Rdma_mm
