lib/core/cheap_quorum.ml: Array Cluster Codec Engine Fun Keychain List Memory Option Permission Printf Rdma_crypto Rdma_mem Rdma_mm Rdma_reg Rdma_sim String Swmr
