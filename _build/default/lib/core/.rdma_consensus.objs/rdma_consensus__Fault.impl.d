lib/core/fault.ml: Cluster Engine Fmt List Network Omega Rdma_mm Rdma_net Rdma_sim
