lib/core/paxos.ml: Array Cluster Codec Engine Fault Ivar List Mailbox Omega Option Rdma_mm Rdma_sim Report Transport
