lib/core/fast_robust.ml: Array Cheap_quorum Cluster Codec Engine Fault Ivar Keychain List Neb Preferential_paxos Printf Rdma_crypto Rdma_mm Rdma_sim Report Robust_backup Stats Trace Trusted
