lib/core/protected_paxos_multi.mli: Cluster Fault Ivar Permission Rdma_mem Rdma_mm Rdma_sim Report
