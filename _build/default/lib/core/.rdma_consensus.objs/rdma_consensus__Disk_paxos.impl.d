lib/core/disk_paxos.ml: Array Cluster Codec Engine Fault Fun Ivar List Memclient Memory Omega Option Par Permission Printf Rdma_mem Rdma_mm Rdma_sim Report
