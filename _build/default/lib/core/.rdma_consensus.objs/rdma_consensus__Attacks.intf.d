lib/core/attacks.mli: Cluster Rdma_mm
