lib/core/trusted.ml: Array Cluster Codec Keychain Lazy List Neb Option Rdma_crypto Rdma_mm Rdma_sim Stats String
