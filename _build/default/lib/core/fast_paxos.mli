(** Fast Paxos — the message-passing 2-deciding baseline (n ≥ 2fP + 1):
    fast quorum = all n acceptors (e = 0), classic recovery under
    failures. *)

open Rdma_sim
open Rdma_mm

type config = {
  recovery_timeout : float;  (** when the leader abandons the fast round *)
  round_timeout : float;
  max_rounds : int;
  proposer_stagger : float;
      (** followers hold their fast proposal back this long per pid *)
}

val default_config : config

type handle

val decision : handle -> Report.decision Ivar.t

val spawn :
  string Cluster.t -> ?cfg:config -> pid:int -> input:string -> unit -> handle

val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  inputs:string array ->
  unit ->
  Report.t
