(** Aligned Paxos (Section 5.2, Algorithms 9–15): processes and memories
    are equivalent agents; consensus survives any minority of the
    combined n + m agent set. *)

open Rdma_sim
open Rdma_mm

(** How memory agents are driven (footnote 4):
    - [Permissions]: Protected-Memory-Paxos style (phase-2 write success
      certifies no rival);
    - [Disk]: Disk-Paxos style (static permissions, phase-2 read-back —
      permissions not needed, two extra delays). *)
type memory_mode = Permissions | Disk

type config = {
  mode : memory_mode;
  max_rounds : int;
  round_timeout : float;
}

val default_config : config

type handle

val decision : handle -> Report.decision Ivar.t

val spawn :
  string Cluster.t -> ?cfg:config -> pid:int -> input:string -> unit -> handle

val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  m:int ->
  inputs:string array ->
  unit ->
  Report.t
