(** Declarative fault schedules covering the model's failure and
    asynchrony knobs (Section 3). *)

open Rdma_mm

type t =
  | Crash_process of { pid : int; at : float }
  | Crash_memory of { mid : int; at : float }
  | Set_leader of { pid : int; at : float }
  | Async_until of { gst : float; extra : float }
  | Random_latency of { min : float; max : float }
      (** per-message latency in [[min, max)]: messages may overtake each
          other (links are not FIFO) *)
  | Crash_machine of { pid : int; mid : int; at : float }
      (** a full-system crash (Section 7): the process and its co-located
          memory fail at the same instant *)

val apply : 'm Cluster.t -> t list -> unit

val pp : Format.formatter -> t -> unit
