(* Canonical wire encoding for register contents and signed payloads.

   Register values and signed messages travel as strings.  Fields are
   joined with '|' after percent-escaping, so any byte sequence round
   trips and signed payloads are canonical (no two field lists share an
   encoding). *)

(* The empty field escapes to "%e" so that the empty *list* can own the
   empty encoding: join [] = "" and join [""] = "%e" stay distinct. *)
let escape s =
  if s = "" then "%e"
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '|' -> Buffer.add_string buf "%7c"
        | '%' -> Buffer.add_string buf "%25"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape s =
  if s = "%e" then ""
  else begin
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let len = String.length s in
    while !i < len do
      (if s.[!i] = '%' && !i + 2 < len then begin
         match String.sub s (!i + 1) 2 with
         | "7c" -> Buffer.add_char buf '|'; i := !i + 3
         | "25" -> Buffer.add_char buf '%'; i := !i + 3
         | _ -> Buffer.add_char buf s.[!i]; incr i
       end
       else begin
         Buffer.add_char buf s.[!i];
         incr i
       end)
    done;
    Buffer.contents buf
  end

let join fields = String.concat "|" (List.map escape fields)

let split s =
  if s = "" then [] else List.map unescape (String.split_on_char '|' s)

(* Fixed-arity helpers used by the protocol codecs; decoding failures
   return [None] — a Byzantine process may write arbitrary bytes. *)

let join2 a b = join [ a; b ]

let join3 a b c = join [ a; b; c ]

let join4 a b c d = join [ a; b; c; d ]

let split2 s = match split s with [ a; b ] -> Some (a, b) | _ -> None

let split3 s = match split s with [ a; b; c ] -> Some (a, b, c) | _ -> None

let split4 s = match split s with [ a; b; c; d ] -> Some (a, b, c, d) | _ -> None

let int_field i = string_of_int i

let int_of_field s = int_of_string_opt s
