(** Protected Memory Paxos (Algorithm 7): crash-tolerant consensus with
    n ≥ fP + 1 processes and m ≥ 2fM + 1 memories, 2-deciding in the
    common case thanks to dynamic permissions (Theorem 5.1). *)

open Rdma_sim
open Rdma_mm
open Rdma_mem

(** The single region spanning each memory. *)
val region : string

val slot_reg : int -> string

val encode_slot : min_prop:int -> acc_prop:int -> value:string -> string

val decode_slot : string -> (int * int * string) option

(** legalChange: a process may only take the exclusive-writer shape for
    itself (Algorithm 7 line 13). *)
val legal_change : Permission.legal_change

type config = {
  f_m : int option;  (** tolerated memory crashes; default ⌊(m−1)/2⌋ *)
  max_rounds : int;
}

val default_config : config

(** Create Region[i] on every memory with p0 as initial exclusive writer. *)
val setup_regions : 'm Cluster.t -> unit

type handle

val decision : handle -> Report.decision Ivar.t

val spawn :
  string Cluster.t -> ?cfg:config -> pid:int -> input:string -> unit -> handle

(** Build a cluster, run one consensus instance, report decisions and
    delay counts. *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  m:int ->
  inputs:string array ->
  unit ->
  Report.t
