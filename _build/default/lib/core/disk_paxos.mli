(** Disk Paxos (Gafni & Lamport) — the static-permission shared-memory
    baseline: n ≥ fP + 1, m ≥ 2fM + 1, but 4-deciding (the phase-2
    read-back that dynamic permissions remove; Section 5.1). *)

open Rdma_sim
open Rdma_mm

type config = {
  f_m : int option;
  max_rounds : int;
  poll_interval : float;  (** follower poll of decided blocks *)
  max_polls : int;
}

val default_config : config

val setup_regions : 'm Cluster.t -> unit

type handle

val decision : handle -> Report.decision Ivar.t

val spawn :
  string Cluster.t -> ?cfg:config -> pid:int -> input:string -> unit -> handle

val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  m:int ->
  inputs:string array ->
  unit ->
  Report.t
