(* Transport abstraction.

   Classic Paxos runs over the raw network; Robust Backup runs the *same*
   Paxos code over trusted channels (T-send/T-receive, Algorithm 3).
   Abstracting the transport is exactly the paper's Definition 2: "the
   algorithm A in which all send and receive operations are replaced by
   T-send and T-receive". *)

module type S = sig
  type t

  val me : t -> int

  val n : t -> int

  (** Point-to-point send (dst may be [me]). *)
  val send : t -> dst:int -> string -> unit

  val broadcast : t -> string -> unit

  (** Blocking receive: [(sender, payload)]. *)
  val recv : t -> int * string

  val recv_timeout : t -> float -> (int * string) option
end

(* The raw network transport. *)
module Net = struct
  open Rdma_net

  type t = { ep : string Network.endpoint; n : int }

  let make ~ep ~n = { ep; n }

  let me t = Network.endpoint_pid t.ep

  let n t = t.n

  let send t ~dst payload = Network.send t.ep ~dst payload

  let broadcast t payload = Network.broadcast t.ep payload

  let recv t = Network.recv t.ep

  let recv_timeout t delay = Network.recv_timeout t.ep delay
end
