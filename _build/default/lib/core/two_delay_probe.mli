(** Theorem 6.1, executable: with static permissions, shared memory
    admits no 2-deciding consensus.  The probe runs the natural
    optimistic candidate under (a) the common-case schedule, (b) the
    proof's adversarial schedule, and (c) the same adversarial schedule
    with dynamic-permission revocation. *)

type result = {
  decisions : (int * string * float) list;  (** (pid, value, time) *)
  agreement_violated : bool;
  first_decision_at : float;
}

(** Common case: the candidate is 2-deciding and agreement holds. *)
val run_synchronous : unit -> result

(** The Theorem 6.1 schedule: agreement is violated. *)
val run_adversarial : unit -> result

(** Same schedule, but the late process revokes the first one's write
    permission before reading: agreement is restored. *)
val run_adversarial_with_revocation : unit -> result
