(** Canonical wire encoding: '|'-joined, percent-escaped fields.  Any byte
    sequence round trips; encodings are canonical. *)

val escape : string -> string

val unescape : string -> string

val join : string list -> string

val split : string -> string list

val join2 : string -> string -> string

val join3 : string -> string -> string -> string

val join4 : string -> string -> string -> string -> string

val split2 : string -> (string * string) option

val split3 : string -> (string * string * string) option

val split4 : string -> (string * string * string * string) option

val int_field : int -> string

val int_of_field : string -> int option
