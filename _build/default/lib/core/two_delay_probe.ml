(* An executable rendition of Theorem 6.1: with static permissions,
   shared memory alone admits no 2-deciding consensus.

   The proof is an indistinguishability argument.  We make it concrete:

   - [Candidate]: the natural "optimistic" 2-deciding attempt.  A
     proposer fires its register writes and its reads of everyone else's
     registers *simultaneously* (it must — any dependency would exceed
     two delays, since one operation already costs two).  If the reads
     all return ⊥ it concludes it ran alone and decides its own value;
     otherwise it falls back (adopting the smallest-id proposal it saw).

   - [run_synchronous]: under the common-case schedule the candidate is
     indeed 2-deciding and agreement holds — the candidate is not a straw
     man in good executions.

   - [run_adversarial]: the schedule from the proof of Theorem 6.1.
     p's reads all return by time t0, but its writes linger in flight
     (asynchrony permits this).  p' starts after t0 and runs alone to a
     decision — nothing p did is visible, so p' is in an execution
     indistinguishable from a solo run and must decide its own value.
     Then p's writes land and its ⊥-reads force it to decide its own
     value too: agreement is violated.  No static-permission algorithm
     can escape this trap; dynamic permissions break the
     indistinguishability because p' would have *revoked* p's write
     permission, turning p's lingering write into a nak (exactly what
     Protected Memory Paxos and Cheap Quorum exploit).

   The registers here are deliberately minimal — static-permission
   shared memory with per-operation delays chosen by the scheduler —
   because the theorem quantifies over all algorithms in that model; the
   probe instantiates the two schedules the proof composes. *)

open Rdma_sim

type result = {
  decisions : (int * string * float) list; (* (pid, value, time) *)
  agreement_violated : bool;
  first_decision_at : float;
}

(* A static-permission SWMR register whose per-operation delays the
   scheduler dictates. *)
type register = { mutable content : string option }

let write engine reg value ~request_delay ~response_delay k =
  Engine.schedule engine request_delay (fun () ->
      reg.content <- Some value;
      Engine.schedule engine response_delay k)

let read engine reg ~request_delay ~response_delay k =
  Engine.schedule engine request_delay (fun () ->
      let v = reg.content in
      Engine.schedule engine response_delay (fun () -> k v))

(* The candidate algorithm for process [me] with input [v]:
   simultaneously write own register and read the other's; decide on the
   reads' answers. *)
let candidate engine ~me ~own ~other ~input ~wdelay ~rdelay ~decide =
  let wreq, wresp = wdelay in
  let rreq, rresp = rdelay in
  write engine own input ~request_delay:wreq ~response_delay:wresp (fun () -> ());
  read engine other ~request_delay:rreq ~response_delay:rresp (fun seen ->
      match seen with
      | None -> decide ~pid:me ~value:input
      | Some v -> decide ~pid:me ~value:(min v input))

let collect_run schedule =
  let engine = Engine.create () in
  let decisions = ref [] in
  let decide ~pid ~value =
    decisions := (pid, value, Engine.now engine) :: !decisions
  in
  schedule engine decide;
  Engine.run engine;
  let decisions = List.rev !decisions in
  let values = List.sort_uniq compare (List.map (fun (_, v, _) -> v) decisions) in
  {
    decisions;
    agreement_violated = List.length values > 1;
    first_decision_at =
      List.fold_left (fun acc (_, _, t) -> min acc t) infinity decisions;
  }

(* Common case: both operations take one delay each way; p1 runs late
   enough to see p0's write.  The candidate decides in 2 delays and
   agreement holds. *)
let run_synchronous () =
  collect_run (fun engine decide ->
      let r0 = { content = None } and r1 = { content = None } in
      candidate engine ~me:0 ~own:r0 ~other:r1 ~input:"v0" ~wdelay:(1.0, 1.0)
        ~rdelay:(1.0, 1.0) ~decide;
      Engine.schedule engine 5.0 (fun () ->
          candidate engine ~me:1 ~own:r1 ~other:r0 ~input:"v1" ~wdelay:(1.0, 1.0)
            ~rdelay:(1.0, 1.0) ~decide))

(* The Theorem 6.1 schedule: p0's reads are prompt, its write lingers 50
   time units in flight; p1 runs solo in the gap. *)
let run_adversarial () =
  collect_run (fun engine decide ->
      let r0 = { content = None } and r1 = { content = None } in
      candidate engine ~me:0 ~own:r0 ~other:r1 ~input:"v0" ~wdelay:(50.0, 1.0)
        ~rdelay:(1.0, 1.0) ~decide;
      Engine.schedule engine 5.0 (fun () ->
          candidate engine ~me:1 ~own:r1 ~other:r0 ~input:"v1" ~wdelay:(1.0, 1.0)
            ~rdelay:(1.0, 1.0) ~decide))

(* The same lingering-write schedule against a *dynamic-permission*
   algorithm shape: before p1 reads, it revokes p0's write permission
   (as Protected Memory Paxos does), so p0's delayed write naks and p0
   does not decide blindly.  We model the revocation as a flag the
   register honours. *)
let run_adversarial_with_revocation () =
  collect_run (fun engine decide ->
      let r0 = { content = None } in
      let p0_write_allowed = ref true in
      (* p0: optimistic write+read, but only decides alone if its write
         was (reported) successful — the uncontended-instantaneous
         guarantee. *)
      let wreq, wresp = (50.0, 1.0) in
      Engine.schedule engine wreq (fun () ->
          let ok = !p0_write_allowed in
          if ok then r0.content <- Some "v0";
          Engine.schedule engine wresp (fun () ->
              if ok then decide ~pid:0 ~value:"v0"
              (* else: nak — p0 falls back to asking the new leader *)));
      Engine.schedule engine 5.0 (fun () ->
          (* p1 revokes, then reads, then decides *)
          p0_write_allowed := false;
          read engine r0 ~request_delay:1.0 ~response_delay:1.0 (fun seen ->
              match seen with
              | None -> decide ~pid:1 ~value:"v1"
              | Some v -> decide ~pid:1 ~value:(min v "v1"))))
