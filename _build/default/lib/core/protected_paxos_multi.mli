(** Repeated Protected Memory Paxos: "the leader terminates one instance
    and becomes the default leader in the next" (Section 5.1).  One
    exclusive write permission covers all instances; leadership reigns
    take over with a single whole-region read, and every steady-state
    decision is one replicated write — two delays. *)

open Rdma_sim
open Rdma_mm
open Rdma_mem

val region : string

val slot_reg : instance:int -> int -> string

val legal_change : Permission.legal_change

type config = {
  slots : int;
  f_m : int option;
  max_takeovers : int;
}

val default_config : config

val setup_regions : 'm Cluster.t -> config -> unit

type handle

(** Per-instance decision ivars for one process. *)
val decisions : handle -> Report.decision Ivar.t array

val spawn :
  string Cluster.t ->
  ?cfg:config ->
  pid:int ->
  input_for:(instance:int -> string) ->
  unit ->
  handle

(** Run [cfg.slots] sequential decisions; returns one report per
    instance (cost counters in each report are cumulative over the whole
    run). *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  n:int ->
  m:int ->
  input_for:(pid:int -> instance:int -> string) ->
  unit ->
  Report.t array
