(** Preferential Paxos (Algorithm 8, Lemma 4.7): a set-up phase in which
    every process adopts the highest-priority input among n − fP
    T-received ones, followed by Robust Backup(Paxos).  The decision is
    always among the fP + 1 highest-priority inputs. *)

open Rdma_sim
open Rdma_mm

(** Verified priority: maps (value, evidence) to a priority; unverifiable
    evidence must get the bottom priority. *)
type classify = value:string -> evidence:string -> int

val no_priorities : classify

type config = {
  backup : Robust_backup.config;
  f_p : int option;  (** default ⌊(n−1)/2⌋ *)
  setup_timeout : float;
}

val default_config : config

val encode_setup : value:string -> evidence:string -> string

val decode_setup : string -> (string * string) option

type handle

val decision : handle -> Report.decision Ivar.t

(** Must run inside the process's program fiber. *)
val attach :
  'm Cluster.ctx ->
  ?cfg:config ->
  ?classify:classify ->
  value:string ->
  evidence:string ->
  unit ->
  handle

val run :
  ?cfg:config ->
  ?classify:classify ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  ?byzantine:(int * (string Cluster.ctx -> unit)) list ->
  n:int ->
  m:int ->
  inputs:(string * string) array ->
  unit ->
  Report.t * int list
