(** A heartbeat-based implementation of the Ω leader oracle: after GST,
    every correct process converges on the lowest-id correct process.
    Shows the model's liveness assumption is implementable from its own
    primitives. *)

open Rdma_sim
open Rdma_net

type config = {
  period : float;  (** heartbeat broadcast interval *)
  suspect_after : float;  (** silence threshold *)
  run_until : float;  (** virtual time at which the daemon stops *)
}

val default_config : config

type t

(** This process's current Ω output: the lowest-id unsuspected process. *)
val leader : t -> int

val suspects : t -> int -> bool

(** Leadership changes as seen by this process, oldest first. *)
val history : t -> (float * int) list

val spawn :
  engine:Engine.t -> ep:unit Network.endpoint -> n:int -> ?cfg:config -> unit -> t
