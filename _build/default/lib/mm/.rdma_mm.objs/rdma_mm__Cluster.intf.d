lib/mm/cluster.mli: Engine Keychain Memclient Memory Network Omega Permission Rdma_crypto Rdma_mem Rdma_net Rdma_sim Stats Trace
