lib/mm/heartbeat_fd.ml: Array Engine List Network Printf Rdma_net Rdma_sim
