lib/mm/omega.ml: Engine List Rdma_sim
