lib/mm/heartbeat_fd.mli: Engine Network Rdma_net Rdma_sim
