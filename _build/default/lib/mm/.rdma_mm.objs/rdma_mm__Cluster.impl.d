lib/mm/cluster.ml: Array Engine Fun Keychain List Memclient Memory Network Omega Permission Printexc Printf Rdma_crypto Rdma_mem Rdma_net Rdma_sim Stats Trace
