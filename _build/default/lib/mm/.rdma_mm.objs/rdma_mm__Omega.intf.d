lib/mm/omega.mli: Engine Rdma_sim
