(* A heartbeat-based implementation of the Ω leader oracle.

   The algorithms in this repository consume Ω as an abstraction (the
   model's "standard additional assumption" for liveness).  This module
   shows the assumption is implementable from the model's own
   primitives: every process broadcasts heartbeats; a process suspects
   any peer whose heartbeat it has not seen for [suspect_after]; its Ω
   output is the lowest-id unsuspected process.

   Guarantee (the usual one): once the network is past GST and message
   delays are bounded by [suspect_after] minus the heartbeat period,
   every correct process permanently stops suspecting every correct
   process and they all converge on the same leader — the lowest-id
   correct process.  Before GST, outputs can be arbitrary (wrong leaders,
   disagreement), which is exactly what Ω permits.

   The module is self-contained over a [Network.t] whose message type it
   owns; production compositions would multiplex heartbeats onto the
   algorithm's network. *)

open Rdma_sim
open Rdma_net

type config = {
  period : float; (* heartbeat broadcast interval *)
  suspect_after : float; (* silence threshold *)
  run_until : float; (* virtual time at which the daemon stops *)
}

let default_config = { period = 2.0; suspect_after = 7.0; run_until = 300.0 }

type t = {
  me : int;
  n : int;
  engine : Engine.t;
  cfg : config;
  last_seen : float array;
  mutable leader_history : (float * int) list; (* newest first *)
}

let leader t =
  let now = Engine.now t.engine in
  let rec first p =
    if p >= t.n then t.me (* everyone suspected: trust self *)
    else if p = t.me || now -. t.last_seen.(p) <= t.cfg.suspect_after then p
    else first (p + 1)
  in
  first 0

let suspects t p =
  p <> t.me && Engine.now t.engine -. t.last_seen.(p) > t.cfg.suspect_after

let history t = List.rev t.leader_history

(* Spawn the heartbeat daemon for process [me]: one sender fiber and one
   receiver fiber.  [ep] must be this process's endpoint on a network
   whose messages are heartbeats (unit payloads). *)
let spawn ~engine ~(ep : unit Network.endpoint) ~n ?(cfg = default_config) () =
  let me = Network.endpoint_pid ep in
  let t =
    {
      me;
      n;
      engine;
      cfg;
      last_seen = Array.make n (Engine.now engine);
      leader_history = [ (Engine.now engine, 0) ];
    }
  in
  let note_leader () =
    let l = leader t in
    match t.leader_history with
    | (_, prev) :: _ when prev = l -> ()
    | _ -> t.leader_history <- (Engine.now engine, l) :: t.leader_history
  in
  ignore
    (Engine.spawn engine
       (Printf.sprintf "fd.sender.%d" me)
       (fun () ->
         while Engine.now engine < cfg.run_until do
           Network.broadcast_others ep ();
           note_leader ();
           Engine.sleep cfg.period
         done));
  ignore
    (Engine.spawn engine
       (Printf.sprintf "fd.receiver.%d" me)
       (fun () ->
         let continue = ref true in
         while !continue do
           match Network.recv_timeout ep (cfg.run_until -. Engine.now engine) with
           | Some (src, ()) ->
               if src >= 0 && src < n then t.last_seen.(src) <- Engine.now engine;
               note_leader ();
               if Engine.now engine >= cfg.run_until then continue := false
           | None -> continue := false
         done));
  t
