(* The Ω leader oracle (Chandra–Toueg), used for liveness only.

   Safety of every algorithm in this repository holds under full
   asynchrony; Ω is the "standard additional assumption" that makes them
   terminate.  Eventually all correct processes trust the same correct
   process; before that the oracle may be wrong in arbitrary,
   test-controlled ways.

   Waiters are woken by leadership changes (no polling), so a fiber
   blocked on Ω generates no simulator events while it waits. *)

open Rdma_sim

type t = {
  engine : Engine.t;
  mutable leader : int;
  mutable waiters : ((int -> bool) * (unit -> unit)) list;
  mutable changes : (float * int) list; (* recorded history, newest first *)
}

let create ~engine ~initial =
  { engine; leader = initial; waiters = []; changes = [ (Engine.now engine, initial) ] }

let leader t = t.leader

let history t = List.rev t.changes

let set_leader t pid =
  if pid <> t.leader then begin
    t.leader <- pid;
    t.changes <- (Engine.now t.engine, pid) :: t.changes;
    let ready, rest = List.partition (fun (want, _) -> want pid) t.waiters in
    t.waiters <- rest;
    List.iter (fun (_, wake) -> wake ()) ready
  end

(* Change leadership [delay] time units from now. *)
let set_leader_after t delay pid =
  Engine.schedule t.engine delay (fun () -> set_leader t pid)

(* Register a one-shot callback fired at the first leadership change to a
   pid satisfying [want] (not retroactive: the current leader does not
   trigger it). *)
let on_change t ~want callback = t.waiters <- (want, callback) :: t.waiters

let wait_while t ~unwanted =
  if unwanted t.leader then
    Engine.suspend (fun _eng _fiber resume ->
        t.waiters <- ((fun pid -> not (unwanted pid)), resume) :: t.waiters)

(* Block the calling fiber until this process is the current leader
   (Algorithm 7 line 9: "wait until Ω == p"). *)
let wait_until_leader t ~me = wait_while t ~unwanted:(fun pid -> pid <> me)

(* Block until the leader is someone other than [prev]. *)
let wait_for_change t ~prev = wait_while t ~unwanted:(fun pid -> pid = prev)
