(* Memory-region permissions (Section 3).

   A permission is three disjoint sets of processes (R, W, RW).  A process
   may read a region if it is in R ∪ RW and write it if in W ∪ RW.  The
   special shape R = P \ {w}, W = ∅, RW = {w} is a Single-Writer
   Multi-Reader (SWMR) region. *)

module Pset = Set.Make (Int)

type t = { read : Pset.t; write : Pset.t; readwrite : Pset.t }

let pset_of_list = Pset.of_list

let make ?(read = []) ?(write = []) ?(readwrite = []) () =
  let read = pset_of_list read
  and write = pset_of_list write
  and readwrite = pset_of_list readwrite in
  if not Pset.(is_empty (inter read write) && is_empty (inter read readwrite)
               && is_empty (inter write readwrite))
  then invalid_arg "Permission.make: R, W, RW must be disjoint";
  { read; write; readwrite }

let none = { read = Pset.empty; write = Pset.empty; readwrite = Pset.empty }

let range n = List.init n Fun.id

(* SWMR region owned by [writer] among processes 0..n-1. *)
let swmr ~writer ~n =
  make
    ~read:(List.filter (fun p -> p <> writer) (range n))
    ~readwrite:[ writer ] ()

(* Every process can read and write — the disk model (Section 3). *)
let all_readwrite ~n = make ~readwrite:(range n) ()

let read_all ~n = make ~read:(range n) ()

(* Everyone reads; exactly [writer] also writes — the shape Protected
   Memory Paxos maintains per memory (Algorithm 7 line 2). *)
let exclusive_writer ~writer ~n =
  make
    ~read:(List.filter (fun p -> p <> writer) (range n))
    ~readwrite:[ writer ] ()

let can_read t p = Pset.mem p t.read || Pset.mem p t.readwrite

let can_write t p = Pset.mem p t.write || Pset.mem p t.readwrite

let readers t = Pset.union t.read t.readwrite

let writers t = Pset.union t.write t.readwrite

(* The single process with write access, if exactly one. *)
let sole_writer t =
  match Pset.elements (writers t) with [ w ] -> Some w | _ -> None

let equal a b =
  Pset.equal a.read b.read && Pset.equal a.write b.write
  && Pset.equal a.readwrite b.readwrite

let pp ppf t =
  let pp_set ppf s = Fmt.(list ~sep:(any ",") int) ppf (Pset.elements s) in
  Fmt.pf ppf "{R:%a W:%a RW:%a}" pp_set t.read pp_set t.write pp_set t.readwrite

(* legalChange(p, mr, old, new) — Section 3, "Permission change".  Returns
   whether process [p] may install [requested] over [current]. *)
type legal_change = pid:int -> region:string -> current:t -> requested:t -> bool

let static_permissions : legal_change = fun ~pid:_ ~region:_ ~current:_ ~requested:_ -> false

let any_change : legal_change = fun ~pid:_ ~region:_ ~current:_ ~requested:_ -> true
