(** Memory-region permissions (Section 3): three disjoint process sets
    (R, W, RW). *)

module Pset : Set.S with type elt = int

type t = { read : Pset.t; write : Pset.t; readwrite : Pset.t }

(** Raises [Invalid_argument] if the three sets are not disjoint. *)
val make : ?read:int list -> ?write:int list -> ?readwrite:int list -> unit -> t

val none : t

(** SWMR region owned by [writer] among processes [0..n-1]. *)
val swmr : writer:int -> n:int -> t

(** Every process can read and write — the disk model. *)
val all_readwrite : n:int -> t

val read_all : n:int -> t

(** Everyone reads, exactly [writer] also writes (Algorithm 7 line 2). *)
val exclusive_writer : writer:int -> n:int -> t

val can_read : t -> int -> bool

val can_write : t -> int -> bool

val readers : t -> Pset.t

val writers : t -> Pset.t

(** The single process with write access, if exactly one. *)
val sole_writer : t -> int option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** [legalChange(p, mr, old, new)] — whether process [p] may install
    [requested] over [current] on [region]. *)
type legal_change = pid:int -> region:string -> current:t -> requested:t -> bool

(** Always refuse: static permissions. *)
val static_permissions : legal_change

(** Always allow (crash-only settings where no process misbehaves). *)
val any_change : legal_change
