lib/rdma/memclient.ml: Array Ivar List Memory Option Par Rdma_sim
