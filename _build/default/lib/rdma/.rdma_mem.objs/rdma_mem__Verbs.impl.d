lib/rdma/verbs.ml: Hashtbl Ivar Memory Permission Printf Rdma_sim String
