lib/rdma/memory.mli: Engine Ivar Permission Rdma_sim Stats
