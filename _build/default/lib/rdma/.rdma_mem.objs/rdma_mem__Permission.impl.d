lib/rdma/permission.ml: Fmt Fun Int List Set
