lib/rdma/verbs.mli: Ivar Memory Rdma_sim
