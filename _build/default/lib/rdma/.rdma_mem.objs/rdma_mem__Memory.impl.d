lib/rdma/memory.ml: Array Engine Hashtbl Ivar List Option Permission Printf Rdma_sim Stats
