lib/rdma/permission.mli: Format Set
