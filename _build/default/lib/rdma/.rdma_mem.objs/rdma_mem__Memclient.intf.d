lib/rdma/memclient.mli: Ivar Memory Permission Rdma_sim
