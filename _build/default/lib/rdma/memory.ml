(* A simulated (shared) memory node — one of the µ_i of Section 3.

   A memory holds registers grouped into named regions; each region has a
   permission checked *at the memory* when an operation arrives, so a
   Byzantine caller cannot bypass it — the trust placement of an RDMA NIC.

   Timing follows the paper's delay metric: an operation issued at time t
   arrives at the memory at t + one_way (permission check + state change
   happen atomically there) and its response reaches the caller at
   t + 2 * one_way.  A crashed memory never responds: the result ivar is
   simply never filled. *)

open Rdma_sim

type op_result = Ack | Nak

type read_result = Read of string option | Read_nak

type region = {
  region_name : string;
  registers : (string, unit) Hashtbl.t;
  mutable perm : Permission.t;
}

type t = {
  mid : int;
  engine : Engine.t;
  stats : Stats.t;
  legal_change : Permission.legal_change;
  one_way : float;
  mutable crashed : bool;
  regions : (string, region) Hashtbl.t;
  store : (string, string option) Hashtbl.t;
  (* register -> owning region; enforces "a register belongs to exactly
     one region" (our algorithms' convention, Section 3) *)
  owner : (string, string) Hashtbl.t;
  mutable tracer : (string -> unit) option; (* optional I/O trace sink *)
}

let create ?(one_way = 1.0) ?(legal_change = Permission.static_permissions)
    ~engine ~stats ~mid () =
  {
    mid;
    engine;
    stats;
    legal_change;
    one_way;
    crashed = false;
    regions = Hashtbl.create 64;
    store = Hashtbl.create 256;
    owner = Hashtbl.create 256;
    tracer = None;
  }

let id t = t.mid

(* Install an I/O trace sink: called with a one-line description of every
   operation as it *arrives* at the memory. *)
let set_tracer t f = t.tracer <- Some f

let trace t fmt = Printf.ksprintf (fun s -> match t.tracer with Some f -> f s | None -> ()) fmt

let crash t = t.crashed <- true

let is_crashed t = t.crashed

let add_region t ~name ~perm ~registers =
  if Hashtbl.mem t.regions name then
    invalid_arg (Printf.sprintf "Memory.add_region: duplicate region %s" name);
  let region =
    { region_name = name; registers = Hashtbl.create (max 1 (List.length registers)); perm }
  in
  List.iter
    (fun r ->
      if Hashtbl.mem t.owner r then
        invalid_arg
          (Printf.sprintf "Memory.add_region: register %s already in region %s" r
             (Hashtbl.find t.owner r));
      Hashtbl.add t.owner r name;
      Hashtbl.add region.registers r ();
      Hashtbl.add t.store r None)
    registers;
  Hashtbl.add t.regions name region

(* Direct (zero-delay) inspection — for tests and trace printing only;
   simulated processes must go through the timed operations below. *)
let peek_register t reg = Option.join (Hashtbl.find_opt t.store reg)

let region_perm t name =
  match Hashtbl.find_opt t.regions name with
  | Some r -> Some r.perm
  | None -> None

let region_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.regions [] |> List.sort compare

(* Kernel-side permission override, bypassing legalChange.  Section 7
   places permission management in the (trusted) OS kernel: the Verbs
   facade is that kernel, so it may install any permission; untrusted
   process programs can still only go through changePermission. *)
let force_permission t ~region ~perm =
  match Hashtbl.find_opt t.regions region with
  | Some r -> r.perm <- perm
  | None -> invalid_arg "Memory.force_permission: no such region"

(* Issue [apply] as a timed memory operation.  [apply] runs at the memory
   (one-way later); its result is delivered another one-way later.  Either
   leg is dropped if the memory is crashed at that moment. *)
let operation t apply =
  let result = Ivar.create () in
  Engine.schedule t.engine t.one_way (fun () ->
      if not t.crashed then begin
        let r = apply () in
        Engine.schedule t.engine t.one_way (fun () ->
            if not t.crashed then Ivar.fill result r)
      end);
  result

let lookup_region t name =
  match Hashtbl.find_opt t.regions name with
  | Some region -> Some region
  | None -> None

let write_async t ~from ~region ~reg value =
  Stats.incr_writes t.stats;
  operation t (fun () ->
      match lookup_region t region with
      | None ->
          trace t "p%d write %s/%s -> nak (no region)" from region reg;
          Nak
      | Some r ->
          if Hashtbl.mem r.registers reg && Permission.can_write r.perm from then begin
            Hashtbl.replace t.store reg (Some value);
            trace t "p%d write %s/%s := %s -> ack" from region reg value;
            Ack
          end
          else begin
            trace t "p%d write %s/%s -> nak" from region reg;
            Nak
          end)

let read_async t ~from ~region ~reg =
  Stats.incr_reads t.stats;
  operation t (fun () ->
      match lookup_region t region with
      | None -> Read_nak
      | Some r ->
          if Hashtbl.mem r.registers reg && Permission.can_read r.perm from then
            Read (Option.join (Hashtbl.find_opt t.store reg))
          else Read_nak)

(* Batched read of several registers of one region in a single operation —
   an RDMA read of a contiguous slot array (Section 7).  Results are in
   request order; the whole batch naks if any register is outside the
   region or the caller lacks read permission. *)
type read_many_result = Read_many of string option array | Read_many_nak

let read_many_async t ~from ~region ~regs =
  Stats.incr_reads t.stats;
  operation t (fun () ->
      match lookup_region t region with
      | None -> Read_many_nak
      | Some r ->
          if
            Permission.can_read r.perm from
            && List.for_all (fun reg -> Hashtbl.mem r.registers reg) regs
          then
            Read_many
              (Array.of_list
                 (List.map (fun reg -> Option.join (Hashtbl.find_opt t.store reg)) regs))
          else Read_many_nak)

(* changePermission (Section 3): the memory evaluates legalChange on
   arrival; an illegal request silently becomes a no-op (the paper's
   semantics), but we report whether it was applied for observability. *)
let change_permission_async t ~from ~region ~perm =
  Stats.incr_perm_changes t.stats;
  operation t (fun () ->
      match lookup_region t region with
      | None -> Nak
      | Some r ->
          if t.legal_change ~pid:from ~region ~current:r.perm ~requested:perm
          then begin
            r.perm <- perm;
            trace t "p%d changePermission %s -> applied" from region;
            Ack
          end
          else begin
            trace t "p%d changePermission %s -> refused" from region;
            Nak
          end)
