(** Process-side capability for accessing the shared memories.  Bound to
    one process id: a Byzantine program holding it can only act as
    itself. *)

open Rdma_sim

type t

val create : pid:int -> memories:Memory.t array -> t

val pid : t -> int

val memory_count : t -> int

val mem : t -> int -> Memory.t

(** ⌊m/2⌋ + 1. *)
val majority : t -> int

(** {2 Single-memory blocking operations} *)

val write : t -> mem:int -> region:string -> reg:string -> string -> Memory.op_result

val read : t -> mem:int -> region:string -> reg:string -> Memory.read_result

val change_permission :
  t -> mem:int -> region:string -> perm:Permission.t -> Memory.op_result

(** {2 Parallel all-memories operations} *)

val write_all_async :
  t -> region:string -> reg:string -> string -> Memory.op_result Ivar.t array

val read_all_async : t -> region:string -> reg:string -> Memory.read_result Ivar.t array

val change_permission_all_async :
  t -> region:string -> perm:Permission.t -> Memory.op_result Ivar.t array

(** Write to every memory, wait for [k] responses (default majority);
    [Ack] iff all received responses were acks. *)
val write_quorum :
  ?k:int -> t -> region:string -> reg:string -> string -> Memory.op_result

(** Read from every memory, wait for [k] responses (default majority);
    returns [(memory index, result)] pairs. *)
val read_quorum :
  ?k:int -> t -> region:string -> reg:string -> (int * Memory.read_result) list

val change_permission_quorum :
  ?k:int -> t -> region:string -> perm:Permission.t -> (int * Memory.op_result) list
