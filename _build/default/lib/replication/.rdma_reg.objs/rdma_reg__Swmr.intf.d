lib/replication/swmr.mli: Memclient Memory Permission Rdma_mem
