lib/replication/swmr.ml: List Memclient Memory Rdma_mem String
