lib/crypto/keychain.mli:
