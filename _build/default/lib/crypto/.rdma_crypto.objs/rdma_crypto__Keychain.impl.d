lib/crypto/keychain.ml: Array Char Hmac Printf Sha256 String
