lib/crypto/hmac.mli:
