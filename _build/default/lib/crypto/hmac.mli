(** HMAC-SHA256 (RFC 2104). *)

(** [mac ~key message] is the 32-byte MAC. *)
val mac : key:string -> string -> string

val mac_hex : key:string -> string -> string

(** Timing-safe digest comparison. *)
val equal : string -> string -> bool
