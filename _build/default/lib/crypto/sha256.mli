(** SHA-256 (FIPS 180-4), implemented from scratch and validated against
    the NIST example vectors in the test suite. *)

type ctx

val init : unit -> ctx

(** Absorb a string into the hash state. *)
val feed_string : ctx -> string -> unit

(** Pad, finish, and return the 32-byte digest.  The context must not be
    reused afterwards. *)
val finalize : ctx -> string

(** One-shot digest (32 raw bytes). *)
val digest_string : string -> string

(** Lowercase hex of a raw digest. *)
val to_hex : string -> string

(** [hex_of_string s = to_hex (digest_string s)]. *)
val hex_of_string : string -> string
