(* Unbounded FIFO mailboxes connecting fibers.

   [recv] blocks until a message is available.  Delivery order is the
   order of [send] calls, which the deterministic engine makes
   reproducible. *)

type 'a t = {
  messages : 'a Queue.t;
  waiters : ('a -> unit) Queue.t;
}

let create () = { messages = Queue.create (); waiters = Queue.create () }

let send t msg =
  if Queue.is_empty t.waiters then Queue.push msg t.messages
  else
    let waiter = Queue.pop t.waiters in
    waiter msg

let length t = Queue.length t.messages

let is_empty t = Queue.is_empty t.messages

let recv t =
  if not (Queue.is_empty t.messages) then Queue.pop t.messages
  else
    Engine.suspend (fun _eng _fiber resume -> Queue.push resume t.waiters)

let recv_timeout t delay =
  if not (Queue.is_empty t.messages) then Some (Queue.pop t.messages)
  else
    Engine.suspend (fun eng _fiber resume ->
        let settled = ref false in
        Queue.push
          (fun msg ->
            if !settled then
              (* Timed out before the message arrived: put it back for the
                 next receiver instead of dropping it. *)
              send t msg
            else begin
              settled := true;
              resume (Some msg)
            end)
          t.waiters;
        Engine.schedule eng delay (fun () ->
            if not !settled then begin
              settled := true;
              resume None
            end))

(* Drain without blocking. *)
let drain t =
  let rec loop acc =
    if Queue.is_empty t.messages then List.rev acc
    else loop (Queue.pop t.messages :: acc)
  in
  loop []
