(* Lightweight event traces.

   A trace records timestamped, labelled events; tests and the F6 bench
   (component-interaction figure) query and pretty-print them.  Recording
   is append-only and cheap. *)

type event = { at : float; actor : string; label : string }

type t = { mutable events : event list (* reverse order *); mutable enabled : bool }

let create ?(enabled = true) () = { events = []; enabled }

let record t ~at ~actor label =
  if t.enabled then t.events <- { at; actor; label } :: t.events

let recordf t ~at ~actor fmt = Format.kasprintf (record t ~at ~actor) fmt

let events t = List.rev t.events

let find t predicate = List.find_opt predicate (events t)

let count t predicate = List.length (List.filter predicate (events t))

let pp_event ppf { at; actor; label } =
  Fmt.pf ppf "[%6.2f] %-12s %s" at actor label

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_event) ppf (events t)
