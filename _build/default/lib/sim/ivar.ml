(* Write-once synchronization variables ("ivars").

   An ivar starts empty and can be filled exactly once.  Fibers block on
   [await]; fills wake every waiter.  Used to represent the pending
   response of an outstanding memory operation, among other things: a
   crashed memory simply never fills the ivar, so the operation hangs
   forever — the paper's memory-crash semantics. *)

type 'a state =
  | Empty of ('a -> unit) list (* waiters, in reverse registration order *)
  | Full of 'a

type 'a t = { mutable state : 'a state }

let create () = { state = Empty [] }

let full v = { state = Full v }

let is_full t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already full"
  | Empty waiters ->
      t.state <- Full v;
      List.iter (fun w -> w v) (List.rev waiters)

let try_fill t v = match t.state with Full _ -> false | Empty _ -> fill t v; true

(* [on_fill t f] calls [f v] when the ivar is filled — immediately if it
   already is.  Callbacks must be cheap; fiber wake-ups go through the
   engine heap so no user code runs re-entrantly. *)
let on_fill t f =
  match t.state with
  | Full v -> f v
  | Empty waiters -> t.state <- Empty (f :: waiters)

let await t =
  match t.state with
  | Full v -> v
  | Empty _ -> Engine.suspend (fun _eng _fiber resume -> on_fill t resume)

(* [await_timeout t d] waits for the ivar for at most [d] time units. *)
let await_timeout t delay =
  match t.state with
  | Full v -> Some v
  | Empty _ ->
      Engine.suspend (fun eng _fiber resume ->
          let settled = ref false in
          on_fill t (fun v ->
              if not !settled then begin
                settled := true;
                resume (Some v)
              end);
          Engine.schedule eng delay (fun () ->
              if not !settled then begin
                settled := true;
                resume None
              end))
