(** Lightweight timestamped event traces. *)

type event = { at : float; actor : string; label : string }

type t

val create : ?enabled:bool -> unit -> t

val record : t -> at:float -> actor:string -> string -> unit

val recordf :
  t -> at:float -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

(** All events in chronological order. *)
val events : t -> event list

val find : t -> (event -> bool) -> event option

val count : t -> (event -> bool) -> int

val pp_event : Format.formatter -> event -> unit

val pp : Format.formatter -> t -> unit
