lib/sim/par.ml: Array Engine Ivar List
