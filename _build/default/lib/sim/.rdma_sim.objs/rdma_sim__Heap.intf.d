lib/sim/heap.mli:
