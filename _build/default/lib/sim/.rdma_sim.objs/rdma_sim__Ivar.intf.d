lib/sim/ivar.mli:
