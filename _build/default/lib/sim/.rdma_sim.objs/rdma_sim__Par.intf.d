lib/sim/par.mli: Ivar
