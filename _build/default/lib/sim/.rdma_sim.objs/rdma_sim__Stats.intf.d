lib/sim/stats.mli: Format Hashtbl
