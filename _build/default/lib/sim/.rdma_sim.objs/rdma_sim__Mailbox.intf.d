lib/sim/mailbox.mli:
