lib/sim/stats.ml: Fmt Hashtbl
