lib/network/network.ml: Array Engine List Mailbox Random Rdma_sim Stats
