lib/network/network.mli: Engine Random Rdma_sim Stats
