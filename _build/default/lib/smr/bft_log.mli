(** A Byzantine-tolerant replicated log: one Fast & Robust instance per
    slot, each in its own namespace.  Common-case appends take the
    2-delay, one-signature fast path; Byzantine leaders or asynchrony
    push individual slots onto the Preferential Paxos backup.  Tolerates
    fP < n/2 Byzantine processes and fM < m/2 memory crashes. *)

open Rdma_sim
open Rdma_mm
open Rdma_consensus

type config = {
  slots : int;
  base : Fast_robust.config;  (** per-slot configuration template *)
}

val default_config : config

val ns_of_slot : int -> string

val legal_change : n:int -> Rdma_mem.Permission.legal_change

val setup_regions : string Cluster.t -> config -> unit

type handle

(** Per-slot decision ivars of one replica. *)
val decisions : handle -> Report.decision Ivar.t array

(** Spawn a replica that drives the slots strictly in order. *)
val spawn :
  string Cluster.t ->
  ?cfg:config ->
  pid:int ->
  input_for:(slot:int -> string) ->
  unit ->
  handle

(** The dense decided prefix as seen by one replica, as
    [(slot, value)]. *)
val applied : handle -> (int * string) list

(** Run a [cfg.slots]-slot log; returns one report per slot and the
    Byzantine pids. *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?byzantine:(int * (string Cluster.ctx -> unit)) list ->
  n:int ->
  m:int ->
  input_for:(pid:int -> slot:int -> string) ->
  unit ->
  Report.t array * int list
