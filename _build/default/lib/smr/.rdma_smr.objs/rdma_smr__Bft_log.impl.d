lib/smr/bft_log.ml: Array Cheap_quorum Cluster Engine Fast_robust Fault Ivar List Printf Rdma_consensus Rdma_mm Rdma_sim Report
