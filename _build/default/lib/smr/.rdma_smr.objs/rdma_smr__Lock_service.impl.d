lib/smr/lock_service.ml: Hashtbl List Queue Rdma_consensus String
