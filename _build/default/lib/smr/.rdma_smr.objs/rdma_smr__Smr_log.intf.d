lib/smr/smr_log.mli: Cluster Permission Rdma_mem Rdma_mm
