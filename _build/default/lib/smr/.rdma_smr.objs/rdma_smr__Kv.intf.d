lib/smr/kv.mli:
