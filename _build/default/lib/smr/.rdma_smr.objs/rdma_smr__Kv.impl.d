lib/smr/kv.ml: Hashtbl List Rdma_consensus
