lib/smr/bft_log.mli: Cluster Fast_robust Fault Ivar Rdma_consensus Rdma_mem Rdma_mm Rdma_sim Report
