lib/smr/lock_service.mli:
