lib/smr/smr_log.ml: Array Cluster Codec Engine Hashtbl Ivar List Mailbox Memclient Memory Network Omega Option Par Permission Printf Queue Rdma_consensus Rdma_mem Rdma_mm Rdma_net Rdma_sim
