(* A replicated log on protected memory — state machine replication in
   the style the paper's technique spawned (cf. Mu, µs-scale SMR).

   The log lives in one region per memory, exclusively writable by the
   current leader (the Protected Memory Paxos permission discipline,
   Algorithm 7).  In steady state the leader appends an entry with ONE
   replicated write — two delays — because write success certifies the
   absence of rivals; no acknowledgement round is needed.

   Leader change: the new leader takes the exclusive write permission on
   every memory, reads a majority of log replicas, adopts for every slot
   the value with the highest term (any committed slot is preserved: the
   read majority intersects the commit majority, and by induction every
   replica holding a term ≥ the committing term holds the committed
   command), rewrites the adopted prefix under its own term, and resumes
   serving.

   Commands reach the leader as network messages from clients (who are
   extra processes on the same simulated network); committed entries are
   announced to the other replicas, which apply them in order. *)

open Rdma_sim
open Rdma_mem
open Rdma_net
open Rdma_mm
open Rdma_consensus

let region = "smr"

let entry_reg i = Printf.sprintf "e.%d" i

let encode_entry ~term ~cmd = Codec.join2 (Codec.int_field term) cmd

let decode_entry s =
  match Codec.split2 s with
  | None -> None
  | Some (tf, cmd) -> Option.map (fun term -> (term, cmd)) (Codec.int_of_field tf)

(* Commands are stored with their (client, seq) origin so that a new
   leader can rebuild the duplicate-suppression table from the log and a
   retried request is acknowledged rather than re-appended. *)
let encode_cmd_meta ~client ~seq ~cmd =
  Codec.join3 (Codec.int_field client) (Codec.int_field seq) cmd

let decode_cmd_meta s =
  match Codec.split3 s with
  | None -> None
  | Some (cf, qf, cmd) -> (
      match (Codec.int_of_field cf, Codec.int_of_field qf) with
      | Some client, Some seq -> Some (client, seq, cmd)
      | _ -> None)

(* Client/replica messages. *)
type msg =
  | Request of { client : int; seq : int; cmd : string }
  | Ack of { client : int; seq : int; index : int }
  | Commit of { index : int; cmd : string }
  | Read_request of { client : int; seq : int }
  | Read_reply of { client : int; seq : int; up_to : int }

let encode_msg = function
  | Request { client; seq; cmd } ->
      Codec.join [ "req"; Codec.int_field client; Codec.int_field seq; cmd ]
  | Ack { client; seq; index } ->
      Codec.join [ "ack"; Codec.int_field client; Codec.int_field seq;
        Codec.int_field index ]
  | Commit { index; cmd } -> Codec.join [ "com"; Codec.int_field index; cmd ]
  | Read_request { client; seq } ->
      Codec.join [ "rdq"; Codec.int_field client; Codec.int_field seq ]
  | Read_reply { client; seq; up_to } ->
      Codec.join [ "rdr"; Codec.int_field client; Codec.int_field seq;
        Codec.int_field up_to ]

let decode_msg s =
  match Codec.split s with
  | [ "req"; c; q; cmd ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q) with
      | Some client, Some seq -> Some (Request { client; seq; cmd })
      | _ -> None)
  | [ "ack"; c; q; i ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q, Codec.int_of_field i) with
      | Some client, Some seq, Some index -> Some (Ack { client; seq; index })
      | _ -> None)
  | [ "com"; i; cmd ] ->
      Option.map (fun index -> Commit { index; cmd }) (Codec.int_of_field i)
  | [ "rdq"; c; q ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q) with
      | Some client, Some seq -> Some (Read_request { client; seq })
      | _ -> None)
  | [ "rdr"; c; q; u ] -> (
      match (Codec.int_of_field c, Codec.int_of_field q, Codec.int_of_field u) with
      | Some client, Some seq, Some up_to -> Some (Read_reply { client; seq; up_to })
      | _ -> None)
  | _ -> None

type config = {
  replicas : int; (* replicas are processes 0 .. replicas-1 *)
  max_entries : int;
  f_m : int option;
  max_terms : int;
  serve_until : float;
      (* virtual time at which replicas stop serving, so a simulation run
         quiesces; clients finish their workload well before *)
}

let default_config =
  { replicas = 3; max_entries = 64; f_m = None; max_terms = 32; serve_until = 2000.0 }

(* Only replicas may take the log's exclusive write permission. *)
let legal_change cfg : Permission.legal_change =
 fun ~pid ~region:r ~current:_ ~requested ->
  r = region
  && pid < cfg.replicas
  && Permission.sole_writer requested = Some pid

let lease_reg = "lease"

let setup_regions cluster cfg =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.exclusive_writer ~writer:0 ~n)
    ~registers:(lease_reg :: List.init cfg.max_entries (fun i -> entry_reg (i + 1)))

type replica = {
  pid : int;
  cfg : config;
  applied : (int * string) Queue.t; (* (index, cmd) in application order *)
  mutable applied_up_to : int;
  mutable current_term : int;
  mutable stopped : bool;
  pending : (int * string) Mailbox.t; (* decoded Commit messages *)
  requests : (int * int * string) Mailbox.t; (* client, seq, cmd *)
  reads : (int * int) Mailbox.t; (* client, seq *)
}

let applied_entries r =
  Queue.fold (fun acc e -> e :: acc) [] r.applied |> List.rev

let applied_count r = r.applied_up_to

let apply_entry r ~index ~cmd =
  if index = r.applied_up_to + 1 then begin
    Queue.push (index, cmd) r.applied;
    r.applied_up_to <- index
  end

(* Route incoming messages by role. *)
let pump (ctx : _ Cluster.ctx) r =
  while not r.stopped do
    let from, payload = Network.recv ctx.Cluster.ep in
    match decode_msg payload with
    | Some (Request { client; seq; cmd }) -> Mailbox.send r.requests (client, seq, cmd)
    | Some (Commit { index; cmd }) -> Mailbox.send r.pending (index, cmd)
    | Some (Read_request { client; seq }) -> Mailbox.send r.reads (client, seq)
    | Some (Ack _) | Some (Read_reply _) | None -> ignore from
  done

(* Followers apply committed entries in order (buffering gaps). *)
let applier r =
  let buffer = Hashtbl.create 32 in
  while not r.stopped do
    let index, cmd = Mailbox.recv r.pending in
    Hashtbl.replace buffer index cmd;
    let continue = ref true in
    while !continue do
      match Hashtbl.find_opt buffer (r.applied_up_to + 1) with
      | Some cmd ->
          Hashtbl.remove buffer (r.applied_up_to + 1);
          apply_entry r ~index:(r.applied_up_to + 1) ~cmd
      | None -> continue := false
    done
  done

(* Leader recovery: take permissions, read a majority of replicas, adopt
   max-term values per slot, rewrite them under our own term.  Returns
   the adopted log (dense prefix) or None if deposed meanwhile. *)
let recover (ctx : _ Cluster.ctx) r ~term =
  let cfg = r.cfg in
  let m = ctx.Cluster.cluster_m in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let n = ctx.Cluster.cluster_n in
  let client = ctx.Cluster.client in
  let regs = List.init cfg.max_entries (fun i -> entry_reg (i + 1)) in
  (* per-memory chain: grab permission, read the whole log *)
  let chains = Array.init m (fun _ -> Ivar.create ()) in
  for i = 0 to m - 1 do
    ctx.Cluster.spawn_sub
      (Printf.sprintf "smr.recover%d" i)
      (fun () ->
        let (_ : Memory.op_result) =
          Memclient.change_permission client ~mem:i ~region
            ~perm:(Permission.exclusive_writer ~writer:r.pid ~n)
        in
        match
          Ivar.await
            (Memory.read_many_async (Memclient.mem client i) ~from:r.pid ~region ~regs)
        with
        | Memory.Read_many values -> Ivar.fill chains.(i) (Some values)
        | Memory.Read_many_nak -> Ivar.fill chains.(i) None)
  done;
  let completed = Par.await_k chains quorum in
  if List.exists (fun (_, v) -> v = None) completed then None
  else begin
    let adopted = Array.make cfg.max_entries None in
    List.iter
      (fun (_, values) ->
        match values with
        | None -> ()
        | Some values ->
            Array.iteri
              (fun idx v ->
                match Option.bind v decode_entry with
                | None -> ()
                | Some (t, cmd) -> (
                    match adopted.(idx) with
                    | Some (t0, _) when t0 >= t -> ()
                    | _ -> adopted.(idx) <- Some (t, cmd)))
              values)
      completed;
    (* Rewrite the dense adopted prefix under our term. *)
    let prefix = ref [] in
    (try
       Array.iteri
         (fun idx e ->
           match e with
           | Some (_, cmd) -> prefix := (idx + 1, cmd) :: !prefix
           | None -> raise Exit)
         adopted
     with Exit -> ());
    let prefix = List.rev !prefix in
    let deposed = ref false in
    List.iter
      (fun (index, cmd) ->
        if not !deposed then begin
          let writes =
            Memclient.write_all_async client ~region ~reg:(entry_reg index)
              (encode_entry ~term ~cmd)
          in
          let completed = Par.await_k writes quorum in
          if not (List.for_all (fun (_, w) -> w = Memory.Ack) completed) then
            deposed := true
        end)
      prefix;
    if !deposed then None else Some prefix
  end

(* Append one entry in steady state: a single replicated write; all-ack
   majority = committed (two delays). *)
let append (ctx : _ Cluster.ctx) r ~term ~index ~cmd =
  let m = ctx.Cluster.cluster_m in
  let f_m = match r.cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let writes =
    Memclient.write_all_async ctx.Cluster.client ~region ~reg:(entry_reg index)
      (encode_entry ~term ~cmd)
  in
  let completed = Par.await_k writes quorum in
  List.for_all (fun (_, w) -> w = Memory.Ack) completed

let leader_loop (ctx : _ Cluster.ctx) r =
  let ep = ctx.Cluster.ep in
  let terms = ref 0 in
  let continue = ref true in
  while !continue && not r.stopped do
    Omega.wait_until_leader ctx.Cluster.ctx_omega ~me:r.pid;
    if r.stopped || Engine.now ctx.Cluster.ctx_engine >= r.cfg.serve_until then
      continue := false
    else begin
      incr terms;
      if !terms > r.cfg.max_terms then continue := false
      else begin
        let term = (!terms * r.cfg.replicas) + r.pid + 1 in
        r.current_term <- term;
        (* First leader in its first term owns the permissions already
           and the log is empty: skip recovery (the 2-delay fast path
           from the very first append). *)
        let recovered =
          if r.pid = 0 && !terms = 1 then Some []
          else recover ctx r ~term
        in
        match recovered with
        | None -> () (* deposed during recovery; wait for Ω again *)
        | Some prefix ->
            (* Rebuild duplicate suppression from the log, then apply and
               announce the recovered prefix (stripped of metadata). *)
            let dedup = Hashtbl.create 32 in
            List.iter
              (fun (index, stored) ->
                let cmd =
                  match decode_cmd_meta stored with
                  | Some (client, seq, cmd) ->
                      Hashtbl.replace dedup (client, seq) index;
                      cmd
                  | None -> stored
                in
                Mailbox.send r.pending (index, cmd);
                Network.broadcast ep (encode_msg (Commit { index; cmd })))
              prefix;
            let next = ref (List.length prefix + 1) in
            let deposed = ref false in
            while (not !deposed) && (not r.stopped)
                  && Engine.now ctx.Cluster.ctx_engine < r.cfg.serve_until
                  && Omega.leader ctx.Cluster.ctx_omega = r.pid do
              (* Linearizable reads (Mu-style): confirm the reign is
                 intact with one permission-protected write to a scratch
                 lease register — it naks iff a rival grabbed the
                 permission — then answer from local applied state. *)
              (match Mailbox.drain r.reads with
              | [] -> ()
              | readers ->
                  let m = ctx.Cluster.cluster_m in
                  let f_m =
                    match r.cfg.f_m with Some f -> f | None -> (m - 1) / 2
                  in
                  let writes =
                    Memclient.write_all_async ctx.Cluster.client ~region
                      ~reg:lease_reg (Codec.int_field term)
                  in
                  let completed = Par.await_k writes (m - f_m) in
                  if List.for_all (fun (_, w) -> w = Memory.Ack) completed then
                    List.iter
                      (fun (client, seq) ->
                        Network.send ep ~dst:client
                          (encode_msg
                             (Read_reply { client; seq; up_to = r.applied_up_to })))
                      readers
                  else deposed := true);
              match Mailbox.recv_timeout r.requests 4.0 with
              | None -> ()
              | Some (client_pid, seq, cmd) -> (
                  match Hashtbl.find_opt dedup (client_pid, seq) with
                  | Some index ->
                      (* a retry of a committed request: just re-ack *)
                      Network.send ep ~dst:client_pid
                        (encode_msg (Ack { client = client_pid; seq; index }))
                  | None ->
                      if !next > r.cfg.max_entries then deposed := true
                      else if
                        append ctx r ~term ~index:!next
                          ~cmd:(encode_cmd_meta ~client:client_pid ~seq ~cmd)
                      then begin
                        let index = !next in
                        incr next;
                        Hashtbl.replace dedup (client_pid, seq) index;
                        Mailbox.send r.pending (index, cmd);
                        Network.broadcast ep (encode_msg (Commit { index; cmd }));
                        Network.send ep ~dst:client_pid
                          (encode_msg (Ack { client = client_pid; seq; index }))
                      end
                      else deposed := true)
            done
      end
    end
  done

let spawn_replica cluster ?(cfg = default_config) ~pid () =
  let r =
    {
      pid;
      cfg;
      applied = Queue.create ();
      applied_up_to = 0;
      current_term = 0;
      stopped = false;
      pending = Mailbox.create ();
      requests = Mailbox.create ();
      reads = Mailbox.create ();
    }
  in
  Cluster.spawn cluster ~pid (fun ctx ->
      ctx.Cluster.spawn_sub "smr.pump" (fun () -> pump ctx r);
      ctx.Cluster.spawn_sub "smr.applier" (fun () -> applier r);
      leader_loop ctx r);
  r

(* Stop a replica's loops (so a test's run can quiesce). *)
let stop r = r.stopped <- true

(* {2 Clients} *)

(* Linearizable read from a client: ask the leader; it lease-checks its
   reign and answers with its applied index. *)
let linearizable_read (ctx : _ Cluster.ctx) ~cfg ~seq ~timeout =
  let me = ctx.Cluster.pid in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. timeout in
  let rec attempt () =
    if Engine.now ctx.Cluster.ctx_engine >= deadline then None
    else begin
      let leader = min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1) in
      Network.send ctx.Cluster.ep ~dst:leader
        (encode_msg (Read_request { client = me; seq }));
      let rec await () =
        let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
        let wait = min 20.0 remaining in
        if wait <= 0. then None
        else
          match Network.recv_timeout ctx.Cluster.ep wait with
          | None -> attempt ()
          | Some (_, payload) -> (
              match decode_msg payload with
              | Some (Read_reply { client; seq = s; up_to }) when client = me && s = seq
                ->
                  Some up_to
              | _ -> await ())
      in
      await ()
    end
  in
  attempt ()

(* A client is an extra process (pid ≥ replicas) that submits commands to
   the Ω leader and waits for the ack, retrying on timeout. *)
let submit (ctx : _ Cluster.ctx) ~cfg ~seq ~cmd ~timeout =
  let me = ctx.Cluster.pid in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. timeout in
  let rec attempt () =
    if Engine.now ctx.Cluster.ctx_engine >= deadline then None
    else begin
      let leader = min (Omega.leader ctx.Cluster.ctx_omega) (cfg.replicas - 1) in
      Network.send ctx.Cluster.ep ~dst:leader
        (encode_msg (Request { client = me; seq; cmd }));
      let rec await () =
        let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
        let wait = min 20.0 remaining in
        if wait <= 0. then None
        else
          match Network.recv_timeout ctx.Cluster.ep wait with
          | None -> attempt () (* resend (possibly to a new leader) *)
          | Some (_, payload) -> (
              match decode_msg payload with
              | Some (Ack { client; seq = s; index }) when client = me && s = seq ->
                  Some index
              | _ -> await ())
      in
      await ()
    end
  in
  attempt ()
