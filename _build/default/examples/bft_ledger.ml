(* A Byzantine-tolerant bank ledger on the BFT log.

   Three bank replicas (one of which may be arbitrarily malicious) and
   three RDMA memories order transfers through the Byzantine-tolerant
   log: each slot is a full Fast & Robust instance, so the ledger
   inherits the paper's bounds — n ≥ 2fP + 1 replicas, m ≥ 2fM + 1
   memories, and 2-delay appends in the common case.

   Act 1: the honest leader orders three transfers at two delays each.
   Act 2: the leader turns Byzantine (silent); the surviving replicas
   still agree on every slot through the backup path, and the final
   balances match on all correct replicas.

     dune exec examples/bft_ledger.exe *)

open Rdma_consensus
open Rdma_smr

let parse_transfer cmd =
  match Codec.split cmd with
  | [ "xfer"; src; dst; amount ] -> (
      match int_of_string_opt amount with
      | Some a -> Some (src, dst, a)
      | None -> None)
  | _ -> None

let transfer ~src ~dst ~amount = Codec.join [ "xfer"; src; dst; string_of_int amount ]

let apply_ledger balances cmd =
  match parse_transfer cmd with
  | Some (src, dst, amount) ->
      let get k = Option.value (Hashtbl.find_opt balances k) ~default:100 in
      Hashtbl.replace balances src (get src - amount);
      Hashtbl.replace balances dst (get dst + amount)
  | None -> ()

let show_balances title reports =
  let balances = Hashtbl.create 8 in
  Array.iter
    (fun report ->
      match Report.decision_value report with
      | Some cmd -> apply_ledger balances cmd
      | None -> ())
    reports;
  Fmt.pr "%s@." title;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) balances []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Fmt.pr "    %-8s %d@." k v)

let () =
  let n = 3 and m = 3 in
  Fmt.pr "=== Act 1: honest leader orders transfers ===@.";
  let transfers =
    [| transfer ~src:"alice" ~dst:"bob" ~amount:30;
       transfer ~src:"bob" ~dst:"carol" ~amount:10;
       transfer ~src:"carol" ~dst:"alice" ~amount:5 |]
  in
  let cfg = { Bft_log.default_config with slots = Array.length transfers } in
  let reports, _ =
    Bft_log.run ~cfg ~n ~m ~input_for:(fun ~pid:_ ~slot -> transfers.(slot)) ()
  in
  Array.iteri
    (fun i report ->
      Fmt.pr "  slot %d: %S ordered at %.1f delays (agreement %b)@." i
        (Option.value (Report.decision_value report) ~default:"-")
        (Option.value (Report.first_decision_time report) ~default:nan)
        (Report.agreement_ok report))
    reports;
  show_balances "  balances (all replicas identical):" reports;

  Fmt.pr "@.=== Act 2: the leader replica turns Byzantine (silent) ===@.";
  let base =
    { Fast_robust.default_config with
      cheap_quorum = { Cheap_quorum.default_config with fast_timeout = 30.0 } }
  in
  let cfg = { Bft_log.slots = 2; base } in
  let honest_transfers ~pid ~slot =
    transfer ~src:"mallory" ~dst:(Printf.sprintf "r%d" pid) ~amount:(10 + slot)
  in
  let byzantine = [ (0, fun _ -> ()) ] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let reports, byz =
    Bft_log.run ~cfg ~n ~m ~input_for:honest_transfers ~byzantine ~faults ()
  in
  Array.iteri
    (fun i report ->
      Fmt.pr "  slot %d: %S via the backup path at %.1f delays (agreement %b)@." i
        (Option.value (Report.decision_value report) ~default:"-")
        (Option.value (Report.first_decision_time report) ~default:nan)
        (Report.agreement_ok ~ignore_pids:byz report))
    reports;
  show_balances "  balances on the correct replicas:" reports;
  Fmt.pr
    "@.The malicious replica could delay the ledger but could not fork it,@.\
     forge a transfer, or double-spend: every slot is protected by the@.\
     paper's n >= 2f+1 weak Byzantine agreement.@."
