examples/verbs_handover.mli:
