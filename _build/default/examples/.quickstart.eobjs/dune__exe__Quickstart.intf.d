examples/quickstart.mli:
