examples/bft_ledger.mli:
