examples/leader_failover.ml: Cluster Engine Fault Fmt Ivar List Memory Permission Protected_paxos Rdma_consensus Rdma_mem Rdma_mm Rdma_sim Report String
