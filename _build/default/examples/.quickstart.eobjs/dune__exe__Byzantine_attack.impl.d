examples/byzantine_attack.ml: Array Attacks Cluster Fast_robust Fault Fmt Neb Network Rdma_consensus Rdma_mm Rdma_net Report
