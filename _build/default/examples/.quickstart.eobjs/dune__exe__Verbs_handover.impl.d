examples/verbs_handover.ml: Array Engine Fmt Ivar Memory Network Printexc Printf Rdma_mem Rdma_net Rdma_sim Stats Verbs
