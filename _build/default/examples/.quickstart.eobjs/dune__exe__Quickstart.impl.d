examples/quickstart.ml: Array Fast_robust Fmt Option Rdma_consensus Rdma_mm Rdma_sim Report
