examples/bft_ledger.ml: Array Bft_log Cheap_quorum Codec Fast_robust Fault Fmt Hashtbl List Option Printf Rdma_consensus Rdma_smr Report
