examples/kv_store.ml: Array Cluster Engine Fmt Kv List Printf Rdma_mm Rdma_sim Rdma_smr Smr_log
