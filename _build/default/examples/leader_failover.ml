(* The uncontended-instantaneous guarantee, watched in slow motion.

   Protected Memory Paxos gives exactly one process write permission per
   memory.  When Ω moves the leadership, the new leader *takes* the
   permission; from that instant the deposed leader's in-flight writes
   nak, so it learns of the takeover from the write itself — no extra
   read, which is where the two delays are saved over Disk Paxos
   (Section 5.1), and why the lingering-write trap of Theorem 6.1 cannot
   violate agreement here.

     dune exec examples/leader_failover.exe *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_consensus

let () =
  Fmt.pr "=== Permission hand-off under Protected Memory Paxos ===@.";
  let n = 2 and m = 3 in
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:Protected_paxos.legal_change ~n ~m ()
  in
  Protected_paxos.setup_regions cluster;
  (* watch the permission state of memory 0 over time *)
  let log_perm at =
    Engine.schedule (Cluster.engine cluster) at (fun () ->
        match Memory.region_perm (Cluster.memory cluster 0) Protected_paxos.region with
        | Some p ->
            Fmt.pr "  [%.1f] memory 0 permission: %a@."
              (Engine.now (Cluster.engine cluster))
              Permission.pp p
        | None -> ())
  in
  List.iter log_perm [ 0.0; 3.0; 8.0 ];
  let h0 = Protected_paxos.spawn cluster ~pid:0 ~input:"from-old-leader" () in
  let h1 = Protected_paxos.spawn cluster ~pid:1 ~input:"from-new-leader" () in
  (* depose p0 before it can write (its proposal write is in flight) *)
  Fault.apply cluster [ Fault.Set_leader { pid = 1; at = 0.5 } ];
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let show pid h =
    match Ivar.peek (Protected_paxos.decision h) with
    | Some { Report.value; at } -> Fmt.pr "  p%d decided %S at %.1f@." pid value at
    | None -> Fmt.pr "  p%d did not decide@." pid
  in
  show 0 h0;
  show 1 h1;
  let v0 = Ivar.peek (Protected_paxos.decision h0) in
  let v1 = Ivar.peek (Protected_paxos.decision h1) in
  (match (v0, v1) with
  | Some d0, Some d1 ->
      Fmt.pr "  agreement across the hand-off: %b@."
        (String.equal d0.Report.value d1.Report.value)
  | _ -> ());
  Fmt.pr
    "@.The deposed leader's write nak'd at the memories the new leader had@.\
     claimed — it never decided blindly.  Compare Theorem 6.1: with static@.\
     permissions that lingering write would have decided and split the system.@."
