(* Section 7, "RDMA in practice", executed literally.

   The paper sketches how the crash-consensus permission discipline maps
   onto real RDMA verbs:

     "A proposer requests write permission using an RDMA message send.
      In response, the acceptor first deregisters write permission for
      the immediate previous proposer.  The acceptor thereafter
      registers the slot array in write mode and responds to the
      proposer with the new key associated with the newly registered
      slot array. ...  The RDMA write fails if the acceptor granted
      write permission to another proposer in the meantime."

   This example builds exactly that out of the Verbs facade: an acceptor
   process owns a NIC and serves permission requests over the network;
   two proposers race; the deposed proposer's stale-rkey write naks —
   the uncontended-instantaneous guarantee, at the verbs level.

     dune exec examples/verbs_handover.exe *)

open Rdma_sim
open Rdma_mem
open Rdma_net

let acceptor_pid = 2

let () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  (* the acceptor's host memory, exposed through its NIC *)
  let memory = Memory.create ~engine ~stats ~mid:0 () in
  let nic = Verbs.nic memory in
  let pd = Verbs.alloc_pd nic in
  let net : string Network.t = Network.create ~engine ~stats ~n:3 () in
  let qps = Array.init 3 (fun remote -> Verbs.create_qp pd ~remote) in

  (* The acceptor: registers the slot array writable by proposer 0
     initially, then serves "may I write?" requests by re-registering. *)
  let current_mr =
    ref
      (Verbs.reg_mr pd ~name:"slots" ~registers:[ "slot" ] ~access:Verbs.Remote_write
         ~grantees:[ 0 ])
  in
  ignore
    (Engine.spawn engine "acceptor" (fun () ->
         let ep = Network.endpoint net acceptor_pid in
         (* initial grant to proposer 0 *)
         Network.send ep ~dst:0 (Verbs.rkey !current_mr);
         let continue = ref true in
         while !continue do
           match Network.recv_timeout ep 60.0 with
           | Some (proposer, "reqperm") ->
               Fmt.pr "  [%.1f] acceptor: dereg previous writer, reregister for p%d@."
                 (Engine.now engine) proposer;
               current_mr :=
                 Verbs.rereg_mr !current_mr ~access:Verbs.Remote_write
                   ~grantees:[ proposer ];
               Network.send ep ~dst:proposer (Verbs.rkey !current_mr)
           | Some _ -> ()
           | None -> continue := false
         done));

  (* A proposer: obtain an rkey (p0 gets one unsolicited; p1 asks),
     write, and report.  p0 then tries to write AGAIN with its stale key
     after p1 has taken over. *)
  let proposer pid ~ask_first ~value ~second_write_after =
    ignore
      (Engine.spawn engine
         (Printf.sprintf "proposer%d" pid)
         (fun () ->
           let ep = Network.endpoint net pid in
           if ask_first then Network.send ep ~dst:acceptor_pid "reqperm";
           match Network.recv_timeout ep 30.0 with
           | Some (_, rkey) -> (
               let w =
                 Ivar.await (Verbs.rdma_write qps.(pid) !current_mr ~rkey ~reg:"slot" value)
               in
               Fmt.pr "  [%.1f] p%d writes %S with its rkey -> %s@."
                 (Engine.now engine) pid value
                 (if w = Memory.Ack then "ack" else "NAK");
               match second_write_after with
               | None -> ()
               | Some delay -> (
                   Engine.sleep delay;
                   let w2 =
                     Ivar.await
                       (Verbs.rdma_write qps.(pid) !current_mr ~rkey ~reg:"slot"
                          (value ^ "-stale"))
                   in
                   Fmt.pr
                     "  [%.1f] p%d retries with the SAME rkey after the hand-over -> %s@."
                     (Engine.now engine) pid
                     (if w2 = Memory.Ack then "ack (BAD!)" else "NAK (deposed, as the paper says)");
                   match Memory.peek_register memory "slot" with
                   | Some v -> Fmt.pr "  final slot content: %S@." v
                   | None -> ()))
           | None -> Fmt.pr "  p%d never got an rkey@." pid))
  in
  Fmt.pr "=== Section 7: rkey hand-over between proposers ===@.";
  proposer 0 ~ask_first:false ~value:"proposal-A" ~second_write_after:(Some 12.0);
  ignore
    (Engine.spawn engine "starter1" (fun () ->
         Engine.sleep 6.0;
         proposer 1 ~ask_first:true ~value:"proposal-B" ~second_write_after:None));
  Engine.run engine;
  (match Engine.errors engine with
  | [] -> ()
  | (name, e) :: _ -> Fmt.epr "fiber %s raised %s@." name (Printexc.to_string e));
  Fmt.pr
    "@.The stale write failed at the NIC: proposer 0 learned it was deposed@.\
     from the write itself, with no extra read round — the verbs-level@.\
     mechanism behind Protected Memory Paxos's two-delay decisions.@."
