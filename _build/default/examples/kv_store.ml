(* A replicated key-value store on the protected-memory log (Mu-style
   SMR, the system family this paper's techniques spawned).

   Three replicas, three memories, two clients.  Steady-state appends
   commit with a single replicated write (two delays).  Mid-workload the
   leader replica crashes; the new leader takes the write permissions,
   recovers the committed prefix from a majority of memories, and the
   store continues without losing an acknowledged write.

     dune exec examples/kv_store.exe *)

open Rdma_sim
open Rdma_mm
open Rdma_smr

let cfg =
  { Smr_log.default_config with replicas = 3; max_entries = 32; serve_until = 600.0 }

let () =
  let clients = 2 in
  let n = cfg.Smr_log.replicas + clients in
  let m = 3 in
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:(Smr_log.legal_change cfg) ~n ~m ()
  in
  Smr_log.setup_regions cluster cfg;
  let replicas =
    Array.init cfg.Smr_log.replicas (fun pid -> Smr_log.spawn_replica cluster ~cfg ~pid ())
  in
  Fmt.pr "Replicated KV store: %d replicas, %d memories, %d clients@."
    cfg.Smr_log.replicas m clients;

  (* client 3: writes user records, then crashes the leader, then writes
     more *)
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      let put seq k v =
        let cmd = Kv.encode_command (Kv.Set (k, v)) in
        match Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:200.0 with
        | Some index ->
            Fmt.pr "  [%.1f] client3 put %s=%s -> committed at index %d@."
              (Engine.now ctx.Cluster.ctx_engine) k v index
        | None -> Fmt.pr "  client3 put %s timed out@." k
      in
      put 0 "alice" "online";
      put 1 "bob" "offline";
      Fmt.pr "  [%.1f] *** crashing the leader replica p0 ***@."
        (Engine.now ctx.Cluster.ctx_engine);
      Cluster.crash_process cluster 0;
      put 2 "carol" "online";
      put 3 "alice" "away");

  (* client 4: interleaved counters *)
  Cluster.spawn cluster ~pid:4 (fun ctx ->
      Engine.sleep 1.0;
      List.iteri
        (fun seq i ->
          let cmd = Kv.encode_command (Kv.Set (Printf.sprintf "counter%d" i, "1")) in
          match Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:250.0 with
          | Some index ->
              Fmt.pr "  [%.1f] client4 counter%d -> index %d@."
                (Engine.now ctx.Cluster.ctx_engine) i index
          | None -> Fmt.pr "  client4 counter%d timed out@." i)
        [ 0; 1 ]);

  Cluster.run cluster;
  Cluster.check_errors cluster;

  Fmt.pr "@.Surviving replica logs:@.";
  for pid = 1 to cfg.Smr_log.replicas - 1 do
    let entries = Smr_log.applied_entries replicas.(pid) in
    Fmt.pr "  replica p%d applied %d entries@." pid (List.length entries)
  done;
  let log1 = Smr_log.applied_entries replicas.(1) in
  let log2 = Smr_log.applied_entries replicas.(2) in
  Fmt.pr "  survivor logs identical: %b@." (log1 = log2);
  let kv = Kv.of_log log1 in
  Fmt.pr "@.Materialized store:@.";
  List.iter (fun (k, v) -> Fmt.pr "  %-10s = %s@." k v) (Kv.bindings kv)
