(* Byzantine containment, end to end.

   Act 1 — equivocation against naive broadcast: a Byzantine sender tells
   p1 "commit" and p2 "abort" over plain message passing; the two honest
   processes are split.

   Act 2 — the same equivocation against non-equivocating broadcast
   (Algorithm 2): the conflicting copies collide in the SWMR slots and
   nobody delivers a lie.

   Act 3 — a fully Byzantine *leader* attacks Fast & Robust (equivocating
   across memory replicas); the correct processes abort the fast path and
   agree through Preferential Paxos on one of their own inputs.

     dune exec examples/byzantine_attack.exe *)

open Rdma_net
open Rdma_mm
open Rdma_consensus

let act1 () =
  Fmt.pr "=== Act 1: equivocation over plain message passing ===@.";
  let cluster : string Cluster.t = Cluster.create ~n:3 ~m:0 () in
  let views = Array.make 3 "?" in
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      Network.send ctx.Cluster.ep ~dst:1 "commit";
      Network.send ctx.Cluster.ep ~dst:2 "abort");
  for pid = 1 to 2 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let _, msg = Network.recv ctx.Cluster.ep in
        views.(pid) <- msg)
  done;
  Cluster.run cluster;
  Fmt.pr "  p1 heard %S, p2 heard %S -> split: %b@." views.(1) views.(2)
    (views.(1) <> views.(2))

let act2 () =
  Fmt.pr "@.=== Act 2: the same attack vs non-equivocating broadcast ===@.";
  let cluster : string Cluster.t = Cluster.create ~n:3 ~m:3 () in
  let neb_cfg = { Neb.default_config with give_up_at = 120.0; poll_interval = 1.0 } in
  Neb.setup_regions cluster ~max_seq:neb_cfg.Neb.max_seq ();
  let delivered = Array.make 3 "nothing" in
  Cluster.spawn_byzantine cluster ~pid:0
    (Attacks.neb_overwrite_equivocation ~m1:"commit" ~m2:"abort");
  for pid = 1 to 2 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let neb =
          Neb.create ctx ~cfg:neb_cfg
            ~deliver:(fun ~k:_ ~msg ~src -> if src = 0 then delivered.(pid) <- msg)
            ()
        in
        Neb.spawn_poller ctx neb)
  done;
  Cluster.run cluster;
  Fmt.pr "  p1 delivered %S, p2 delivered %S -> split: %b@." delivered.(1) delivered.(2)
    (delivered.(1) <> delivered.(2))

let act3 () =
  Fmt.pr "@.=== Act 3: Byzantine leader vs Fast & Robust ===@.";
  let n = 3 and m = 3 in
  let inputs = [| "(byzantine)"; "honest-1"; "honest-2" |] in
  let byzantine = [ (0, Attacks.cq_equivocating_leader ~v1:"black" ~v2:"white") ] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let report, byz, _ = Fast_robust.run ~n ~m ~inputs ~byzantine ~faults () in
  Array.iteri
    (fun pid d ->
      match d with
      | Some { Report.value; at } ->
          Fmt.pr "  p%d decided %S at %.1f delays@." pid value at
      | None -> Fmt.pr "  p%d (Byzantine leader) did not decide@." pid)
    report.Report.decisions;
  Fmt.pr "  agreement among correct processes: %b@."
    (Report.agreement_ok ~ignore_pids:byz report);
  match Report.decision_value report with
  | Some v ->
      Fmt.pr "  decided value is an honest input: %b@." (v = "honest-1" || v = "honest-2")
  | None -> Fmt.pr "  no decision@."

let () =
  act1 ();
  act2 ();
  act3 ()
