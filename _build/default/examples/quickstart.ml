(* Quickstart: one Fast & Robust consensus instance.

   Three processes (one may be Byzantine) and three memories (one may
   crash) agree on a value.  In this failure-free run the leader decides
   after a single replicated RDMA write — two network delays — having
   computed exactly one signature (Theorem 4.9 / Section 4.2).

     dune exec examples/quickstart.exe *)

open Rdma_consensus

let () =
  let n = 3 and m = 3 in
  let inputs = [| "apply-update-42"; "apply-update-17"; "apply-update-99" |] in
  Fmt.pr "Fast & Robust: n=%d processes (tolerates f=%d Byzantine), m=%d memories@."
    n ((n - 1) / 2) m;
  Array.iteri (fun pid v -> Fmt.pr "  p%d proposes %S@." pid v) inputs;
  let report, _, cluster = Fast_robust.run ~n ~m ~inputs () in
  Fmt.pr "@.Decisions:@.";
  Array.iteri
    (fun pid d ->
      match d with
      | Some { Report.value; at } -> Fmt.pr "  p%d decided %S at %.1f delays@." pid value at
      | None -> Fmt.pr "  p%d did not decide@." pid)
    report.Report.decisions;
  Fmt.pr "@.Agreement: %b, Validity: %b@." (Report.agreement_ok report)
    (Report.validity_ok report ~inputs);
  Fmt.pr "First decision: %.1f network delays (the paper's 2-deciding fast path)@."
    (Option.get (Report.first_decision_time report));
  Fmt.pr "Signatures on the fast path: %d@."
    (Rdma_sim.Stats.get (Rdma_mm.Cluster.stats cluster) "sigs_at_fast_decision");
  Fmt.pr "Totals: %d memory ops, %d messages, %d signatures@." report.Report.mem_ops
    report.Report.messages report.Report.signatures
