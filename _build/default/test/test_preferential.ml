(* Preferential Paxos (Algorithm 8, Lemma 4.7): the decision is one of
   the fP + 1 highest-priority inputs, with evidence-verified
   priorities. *)

open Rdma_consensus

(* A simple trusting classifier for crash-only tests: the evidence string
   is the priority itself. *)
let trusting : Preferential_paxos.classify =
 fun ~value:_ ~evidence ->
  match int_of_string_opt evidence with Some p when p >= 0 -> p | _ -> 0

let test_highest_priority_wins () =
  let n = 3 and m = 3 in
  (* one top-priority input; everyone must adopt and decide it *)
  let inputs = [| ("low0", "0"); ("high", "2"); ("low2", "0") |] in
  let report, _ =
    Preferential_paxos.run ~classify:trusting ~n ~m ~inputs ()
  in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check (option string)) "top priority decided" (Some "high")
    (Report.decision_value report);
  Alcotest.(check int) "all decide" n (Report.decided_count report)

let test_majority_top_priority_always_decided () =
  (* Lemma 4.7's consequence used by Fast & Robust: if ≥ f+1 processes
     hold the top-priority value, it must be the decision. *)
  List.iter
    (fun seed ->
      let n = 3 and m = 3 in
      let inputs = [| ("vstar", "2"); ("vstar", "2"); ("other", "0") |] in
      let report, _ =
        Preferential_paxos.run ~classify:trusting ~seed ~n ~m ~inputs ()
      in
      Alcotest.(check (option string))
        (Printf.sprintf "majority top value decided (seed %d)" seed)
        (Some "vstar")
        (Report.decision_value report))
    [ 1; 2; 3 ]

let test_priority_decision_bound () =
  (* The decision is among the f+1 highest-priority inputs: with
     priorities 3 > 2 > 1, and f = 1, the lowest input can never win. *)
  let n = 3 and m = 3 in
  let inputs = [| ("bottom", "0"); ("middle", "1"); ("top", "2") |] in
  let report, _ = Preferential_paxos.run ~classify:trusting ~n ~m ~inputs () in
  match Report.decision_value report with
  | Some v ->
      Alcotest.(check bool) "bottom input cannot be decided" true (v <> "bottom")
  | None -> Alcotest.fail "no decision"

let test_equal_priorities_agreement () =
  let n = 3 and m = 3 in
  let inputs = [| ("a", "0"); ("b", "0"); ("c", "0") |] in
  let report, _ = Preferential_paxos.run ~classify:trusting ~n ~m ~inputs () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true
    (Report.validity_ok report ~inputs:[| "a"; "b"; "c" |])

let test_forged_priority_demoted () =
  (* Definition 3 classification with a Byzantine claiming T priority on
     garbage evidence: the verified classifier demotes it, and the
     honest majority's value wins. *)
  let n = 3 and m = 3 in
  let classify_chain = ref None in
  (* run via Fast_robust's classifier requires a chain; instead run with
     a classifier that verifies "T" evidence structurally. *)
  ignore classify_chain;
  let classify : Preferential_paxos.classify =
   fun ~value:_ ~evidence ->
    match Codec.split2 evidence with
    | Some ("T", proof) when proof = "valid" -> 2
    | _ -> 0
  in
  let inputs =
    [| ("honest", Codec.join2 "T" "valid"); ("honest", Codec.join2 "T" "valid");
       ("unused", "0") |]
  in
  let byzantine = [ (2, Attacks.pp_priority_liar ~value:"liar") ] in
  let report, byz =
    Preferential_paxos.run ~classify ~n ~m ~inputs ~byzantine ()
  in
  Alcotest.(check bool) "agreement among correct" true
    (Report.agreement_ok ~ignore_pids:byz report);
  Alcotest.(check (option string)) "honest top-priority value decided" (Some "honest")
    (Report.decision_value report)

let test_single_top_priority_beats_majority () =
  (* Lemma 4.7: a process can miss at most f higher-priority values, so
     with n=3, f=1, a single top-priority input is seen by every process
     that gathers n−f=2 inputs... unless it is the one missed.  The
     decision must never be of lower priority than the (f+1)-th input:
     here priorities are 2,0,0, so "bottom2" and "bottom1" are both
     admissible, but run across seeds the top value must win whenever its
     holder's set-up message arrives in time — and agreement always
     holds. *)
  List.iter
    (fun seed ->
      let n = 3 and m = 3 in
      let inputs = [| ("top", "2"); ("bottom1", "0"); ("bottom2", "0") |] in
      let report, _ = Preferential_paxos.run ~classify:trusting ~seed ~n ~m ~inputs () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement (seed %d)" seed)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "validity (seed %d)" seed)
        true
        (Report.validity_ok report ~inputs:[| "top"; "bottom1"; "bottom2" |]))
    [ 1; 2; 3; 4 ]

let test_crash_during_setup () =
  let n = 3 and m = 3 in
  let inputs = [| ("a", "1"); ("b", "0"); ("c", "0") |] in
  let faults = [ Fault.Crash_process { pid = 0; at = 2.0 } ] in
  let report, _ =
    Preferential_paxos.run ~classify:trusting ~n ~m ~inputs ~faults ()
  in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2)

let suite =
  [
    Alcotest.test_case "highest priority wins" `Quick test_highest_priority_wins;
    Alcotest.test_case "majority top-priority always decided" `Quick
      test_majority_top_priority_always_decided;
    Alcotest.test_case "decision within top f+1 priorities" `Quick
      test_priority_decision_bound;
    Alcotest.test_case "equal priorities stay safe" `Quick test_equal_priorities_agreement;
    Alcotest.test_case "forged priority demoted" `Quick test_forged_priority_demoted;
    Alcotest.test_case "single top priority across seeds" `Quick
      test_single_top_priority_beats_majority;
    Alcotest.test_case "crash during set-up" `Quick test_crash_during_setup;
  ]
