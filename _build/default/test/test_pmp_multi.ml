(* Repeated Protected Memory Paxos: per-instance agreement/validity,
   2-delays-per-decision in steady state, reign hand-over safety. *)

open Rdma_consensus

let input_for ~pid ~instance = Printf.sprintf "v%d.%d" pid instance

let cfg slots = { Protected_paxos_multi.default_config with slots }

let check_all reports ~n =
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at instance %d" i)
        true (Report.agreement_ok report);
      Alcotest.(check int)
        (Printf.sprintf "everyone decides instance %d" i)
        n (Report.decided_count report))
    reports

let test_sequential_decisions () =
  let n = 3 and m = 3 and slots = 4 in
  let reports = Protected_paxos_multi.run ~cfg:(cfg slots) ~n ~m ~input_for () in
  check_all reports ~n;
  (* the stable leader proposes all values *)
  Array.iteri
    (fun i report ->
      Alcotest.(check (option string))
        (Printf.sprintf "leader's value at instance %d" i)
        (Some (Printf.sprintf "v0.%d" i))
        (Report.decision_value report))
    reports

let test_two_delays_per_decision () =
  (* Steady state: instance i is decided at 2(i+1) — one replicated
     write each, the multi-instance extension of Theorem D.5. *)
  let n = 3 and m = 3 and slots = 4 in
  let reports = Protected_paxos_multi.run ~cfg:(cfg slots) ~n ~m ~input_for () in
  Array.iteri
    (fun i report ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "instance %d decided at %d delays" i (2 * (i + 1)))
        (Some (2.0 *. float_of_int (i + 1)))
        (Report.first_decision_time report))
    reports

let test_leader_crash_mid_sequence () =
  (* The leader dies between instances; the successor's takeover must
     preserve every already-decided instance and finish the rest. *)
  let n = 3 and m = 3 and slots = 4 in
  let faults = [ Fault.Crash_process { pid = 0; at = 4.5 } ] in
  let reports = Protected_paxos_multi.run ~cfg:(cfg slots) ~n ~m ~input_for ~faults () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at instance %d" i)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "survivors decide instance %d" i)
        true
        (Report.decided_count report >= 2))
    reports;
  (* instances 0 and 1 were decided by p0 before the crash at 4.5; the
     successor must decide the same values *)
  Alcotest.(check (option string)) "instance 0 value preserved" (Some "v0.0")
    (Report.decision_value reports.(0));
  Alcotest.(check (option string)) "instance 1 value preserved" (Some "v0.1")
    (Report.decision_value reports.(1))

let test_leader_crash_sweep () =
  List.iter
    (fun at ->
      let n = 3 and m = 3 and slots = 3 in
      let faults = [ Fault.Crash_process { pid = 0; at } ] in
      let reports =
        Protected_paxos_multi.run ~cfg:(cfg slots) ~n ~m ~input_for ~faults ()
      in
      Array.iteri
        (fun i report ->
          Alcotest.(check bool)
            (Printf.sprintf "agreement at instance %d (crash at %.1f)" i at)
            true (Report.agreement_ok report);
          Alcotest.(check bool)
            (Printf.sprintf "progress at instance %d (crash at %.1f)" i at)
            true
            (Report.decided_count report >= 2))
        reports)
    [ 0.5; 1.5; 2.5; 3.5; 5.5 ]

let test_leader_flapping_safety () =
  let n = 3 and m = 3 and slots = 3 in
  let faults =
    [
      Fault.Set_leader { pid = 1; at = 1.0 };
      Fault.Set_leader { pid = 2; at = 6.0 };
      Fault.Set_leader { pid = 0; at = 14.0 };
    ]
  in
  let reports = Protected_paxos_multi.run ~cfg:(cfg slots) ~n ~m ~input_for ~faults () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at instance %d under flapping" i)
        true (Report.agreement_ok report))
    reports

let test_memory_crash_tolerated () =
  let n = 3 and m = 5 and slots = 3 in
  let faults =
    [ Fault.Crash_memory { mid = 0; at = 0.0 }; Fault.Crash_memory { mid = 3; at = 1.0 } ]
  in
  let reports = Protected_paxos_multi.run ~cfg:(cfg slots) ~n ~m ~input_for ~faults () in
  check_all reports ~n

let suite =
  [
    Alcotest.test_case "sequential decisions" `Quick test_sequential_decisions;
    Alcotest.test_case "two delays per steady-state decision" `Quick
      test_two_delays_per_decision;
    Alcotest.test_case "leader crash mid-sequence" `Quick test_leader_crash_mid_sequence;
    Alcotest.test_case "leader crash sweep" `Quick test_leader_crash_sweep;
    Alcotest.test_case "leader flapping stays safe" `Quick test_leader_flapping_safety;
    Alcotest.test_case "memory crashes tolerated" `Quick test_memory_crash_tolerated;
  ]
