(* Unit tests for the event heap: ordering, determinism, stability. *)

open Rdma_sim

let test_ordering () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:1 "c";
  Heap.push h ~time:1.0 ~seq:2 "a";
  Heap.push h ~time:2.0 ~seq:3 "b";
  let pop () =
    match Heap.pop h with Some e -> e.Heap.payload | None -> "empty"
  in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check string) "empty" "empty" (pop ())

let test_same_time_fifo () =
  let h = Heap.create () in
  for i = 1 to 100 do
    Heap.push h ~time:5.0 ~seq:i i
  done;
  for i = 1 to 100 do
    match Heap.pop h with
    | Some e -> Alcotest.(check int) "fifo at equal time" i e.Heap.payload
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_interleaved () =
  let h = Heap.create () in
  let n = 1000 in
  let st = Random.State.make [| 7 |] in
  let times = Array.init n (fun i -> (float_of_int (Random.State.int st 50), i)) in
  Array.iteri (fun i (t, _) -> Heap.push h ~time:t ~seq:i i) times;
  let prev = ref (-1.0, -1) in
  for _ = 1 to n do
    match Heap.pop h with
    | None -> Alcotest.fail "heap exhausted early"
    | Some e ->
        let pt, ps = !prev in
        if e.Heap.time < pt || (e.Heap.time = pt && e.Heap.seq < ps) then
          Alcotest.fail "heap order violated";
        prev := (e.Heap.time, e.Heap.seq)
  done;
  Alcotest.(check bool) "empty at end" true (Heap.is_empty h)

let test_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  Heap.push h ~time:2.0 ~seq:1 "x";
  Heap.push h ~time:1.0 ~seq:2 "y";
  (match Heap.peek h with
  | Some e -> Alcotest.(check string) "peek min" "y" e.Heap.payload
  | None -> Alcotest.fail "peek returned None");
  Alcotest.(check int) "size unchanged by peek" 2 (Heap.size h)

let suite =
  [
    Alcotest.test_case "pops in time order" `Quick test_ordering;
    Alcotest.test_case "same-time entries pop FIFO" `Quick test_same_time_fifo;
    Alcotest.test_case "random interleaving stays sorted" `Quick test_interleaved;
    Alcotest.test_case "peek returns min without removing" `Quick test_peek;
  ]
