(* The Mu-style replicated log + KV store built on the protected-memory
   permission discipline: steady-state appends, failover, log safety. *)

open Rdma_sim
open Rdma_mm
open Rdma_smr

let cfg =
  { Smr_log.default_config with replicas = 3; max_entries = 32; serve_until = 500.0 }

(* n = replicas + clients processes; m memories. *)
let build ?(seed = 1) ~clients ~m () =
  let n = cfg.Smr_log.replicas + clients in
  let cluster : string Cluster.t =
    Cluster.create ~seed ~legal_change:(Smr_log.legal_change cfg) ~n ~m ()
  in
  Smr_log.setup_regions cluster cfg;
  cluster

let spawn_replicas cluster =
  Array.init cfg.Smr_log.replicas (fun pid ->
      Smr_log.spawn_replica cluster ~cfg ~pid ())

let client_program ~commands ~results (ctx : _ Cluster.ctx) =
  List.iteri
    (fun seq cmd ->
      let index = Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:200.0 in
      results := (cmd, index) :: !results)
    commands

let test_basic_replication () =
  let cluster = build ~clients:1 ~m:3 () in
  let replicas = spawn_replicas cluster in
  let results = ref [] in
  let commands =
    List.map Kv.encode_command
      [ Kv.Set ("a", "1"); Kv.Set ("b", "2"); Kv.Delete "a"; Kv.Set ("c", "3") ]
  in
  Cluster.spawn cluster ~pid:3 (client_program ~commands ~results);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  (* all commands committed, in order *)
  let indices = List.rev_map snd !results in
  Alcotest.(check (list (option int))) "commands committed in order"
    [ Some 1; Some 2; Some 3; Some 4 ] indices;
  (* every replica applied the same log *)
  let logs = Array.map Smr_log.applied_entries replicas in
  Alcotest.(check bool) "replicas agree" true (logs.(0) = logs.(1) && logs.(1) = logs.(2));
  (* and the materialized KV state is correct *)
  let kv = Kv.of_log logs.(1) in
  Alcotest.(check (option string)) "a deleted" None (Kv.get kv "a");
  Alcotest.(check (option string)) "b present" (Some "2") (Kv.get kv "b");
  Alcotest.(check (option string)) "c present" (Some "3") (Kv.get kv "c")

let test_two_clients () =
  let cluster = build ~clients:2 ~m:3 () in
  let replicas = spawn_replicas cluster in
  let r1 = ref [] and r2 = ref [] in
  let cmds pfx = List.init 3 (fun i -> Kv.encode_command (Kv.Set (Printf.sprintf "%s%d" pfx i, "v"))) in
  Cluster.spawn cluster ~pid:3 (client_program ~commands:(cmds "x") ~results:r1);
  Cluster.spawn cluster ~pid:4 (client_program ~commands:(cmds "y") ~results:r2);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check bool) "all of client 1 committed" true
    (List.for_all (fun (_, i) -> i <> None) !r1);
  Alcotest.(check bool) "all of client 2 committed" true
    (List.for_all (fun (_, i) -> i <> None) !r2);
  let logs = Array.map Smr_log.applied_entries replicas in
  Alcotest.(check bool) "replicas agree" true (logs.(0) = logs.(1) && logs.(1) = logs.(2));
  Alcotest.(check int) "six entries total" 6 (List.length logs.(0))

let test_leader_failover_preserves_log () =
  let cluster = build ~clients:1 ~m:3 () in
  let replicas = spawn_replicas cluster in
  let results = ref [] in
  let commands =
    List.init 6 (fun i -> Kv.encode_command (Kv.Set (Printf.sprintf "k%d" i, string_of_int i)))
  in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      (* first half under the initial leader *)
      List.iteri
        (fun seq cmd ->
          if seq < 3 then
            results := (cmd, Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:150.0) :: !results)
        commands;
      (* the leader crashes; keep submitting — the new leader must
         recover the committed prefix and continue *)
      Cluster.crash_process cluster 0;
      List.iteri
        (fun seq cmd ->
          if seq >= 3 then
            results :=
              (cmd, Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:250.0) :: !results)
        commands);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "all six committed" 6
    (List.length (List.filter (fun (_, i) -> i <> None) !results));
  (* surviving replicas agree and hold all six entries *)
  let l1 = Smr_log.applied_entries replicas.(1) in
  let l2 = Smr_log.applied_entries replicas.(2) in
  Alcotest.(check bool) "survivors agree" true (l1 = l2);
  Alcotest.(check int) "no committed entry lost" 6 (List.length l1);
  let kv = Kv.of_log l1 in
  Alcotest.(check (option string)) "late write present" (Some "5") (Kv.get kv "k5");
  Alcotest.(check (option string)) "early write survived failover" (Some "0")
    (Kv.get kv "k0")

let test_memory_crash_tolerated () =
  let cluster = build ~clients:1 ~m:3 () in
  let replicas = spawn_replicas cluster in
  let results = ref [] in
  let commands = List.init 3 (fun i -> Kv.encode_command (Kv.Set (Printf.sprintf "k%d" i, "v"))) in
  Cluster.spawn cluster ~pid:3 (client_program ~commands ~results);
  Cluster.crash_memory_at cluster ~at:0.0 1;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check bool) "all committed with 2/3 memories" true
    (List.for_all (fun (_, i) -> i <> None) !results);
  ignore replicas

let test_log_prefix_safety_sweep () =
  (* Crash the leader at several points mid-workload: committed prefixes
     at surviving replicas must always be consistent (one is a prefix of
     the other, and acked commands are never lost). *)
  List.iter
    (fun at ->
      let cluster = build ~clients:1 ~m:3 () in
      let replicas = spawn_replicas cluster in
      let acked = ref [] in
      Cluster.spawn cluster ~pid:3 (fun ctx ->
          List.iter
            (fun seq ->
              let cmd = Kv.encode_command (Kv.Set (Printf.sprintf "k%d" seq, "v")) in
              match Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:250.0 with
              | Some index -> acked := (index, cmd) :: !acked
              | None -> ())
            [ 0; 1; 2; 3 ]);
      Cluster.crash_process_at cluster ~at 0;
      Cluster.run cluster;
      Cluster.check_errors cluster;
      let l1 = Smr_log.applied_entries replicas.(1) in
      let l2 = Smr_log.applied_entries replicas.(2) in
      let is_prefix a b =
        let rec go a b =
          match (a, b) with
          | [], _ -> true
          | x :: a', y :: b' -> x = y && go a' b'
          | _, [] -> false
        in
        if List.length a <= List.length b then go a b else go b a
      in
      Alcotest.(check bool)
        (Printf.sprintf "survivor logs consistent (crash at %.0f)" at)
        true (is_prefix l1 l2);
      (* every acked command appears in the longer survivor log *)
      let longest = if List.length l1 >= List.length l2 then l1 else l2 in
      List.iter
        (fun (index, cmd) ->
          Alcotest.(check bool)
            (Printf.sprintf "acked entry %d survives (crash at %.0f)" index at)
            true
            (List.mem (index, cmd) longest))
        !acked)
    [ 3.0; 6.0; 9.0; 15.0 ]

let test_append_is_two_delays () =
  (* The Mu-style claim: one committed append = one replicated write.
     Measure the ack time of the first command: client→leader (1) +
     append write (2) + ack (1) = 4 virtual time units end to end. *)
  let cluster = build ~clients:1 ~m:3 () in
  let _ = spawn_replicas cluster in
  let acked_at = ref nan in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      let cmd = Kv.encode_command (Kv.Set ("k", "v")) in
      match Smr_log.submit ctx ~cfg ~seq:0 ~cmd ~timeout:100.0 with
      | Some _ -> acked_at := Engine.now ctx.Cluster.ctx_engine
      | None -> ());
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (float 0.0)) "client round trip = 1 + 2 + 1 delays" 4.0 !acked_at

let test_linearizable_reads () =
  (* Reads reflect every command acked before them; a deposed leader's
     lease write naks, so a stale leader can never serve a read. *)
  let cluster = build ~clients:1 ~m:3 () in
  let replicas = spawn_replicas cluster in
  let observations = ref [] in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      let put seq k =
        ignore
          (Smr_log.submit ctx ~cfg ~seq
             ~cmd:(Kv.encode_command (Kv.Set (k, "v")))
             ~timeout:150.0)
      in
      let read seq =
        observations := Smr_log.linearizable_read ctx ~cfg ~seq ~timeout:150.0 :: !observations
      in
      read 100;
      put 0 "a";
      read 101;
      put 1 "b";
      put 2 "c";
      read 102);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (option int)))
    "reads reflect all preceding acked writes"
    [ Some 0; Some 1; Some 3 ]
    (List.rev !observations);
  ignore replicas

let test_read_after_failover () =
  let cluster = build ~clients:1 ~m:3 () in
  let _ = spawn_replicas cluster in
  let final_read = ref None in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      ignore
        (Smr_log.submit ctx ~cfg ~seq:0
           ~cmd:(Kv.encode_command (Kv.Set ("k", "v")))
           ~timeout:150.0);
      Cluster.crash_process cluster 0;
      (* a later linearizable read from the new leader must still count
         the pre-crash committed entry *)
      final_read := Smr_log.linearizable_read ctx ~cfg ~seq:1 ~timeout:250.0);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (option int)) "read after failover sees the committed entry"
    (Some 1) !final_read

let suite =
  [
    Alcotest.test_case "basic replication + KV" `Quick test_basic_replication;
    Alcotest.test_case "linearizable reads" `Quick test_linearizable_reads;
    Alcotest.test_case "linearizable read after failover" `Quick test_read_after_failover;
    Alcotest.test_case "two clients interleave" `Quick test_two_clients;
    Alcotest.test_case "leader failover preserves the log" `Quick
      test_leader_failover_preserves_log;
    Alcotest.test_case "memory crash tolerated" `Quick test_memory_crash_tolerated;
    Alcotest.test_case "log prefix safety sweep" `Slow test_log_prefix_safety_sweep;
    Alcotest.test_case "append commits in 2 delays (Mu-style)" `Quick
      test_append_is_two_delays;
  ]
