(* The heartbeat failure detector: convergence to the lowest-id correct
   process after GST, tolerance of the asynchronous prefix, and the
   full-machine crash fault. *)

open Rdma_sim
open Rdma_net
open Rdma_mm
open Rdma_consensus

let cfg = { Heartbeat_fd.default_config with run_until = 120.0 }

let run_fd_scenario ?(n = 4) ~crash () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let net : unit Network.t = Network.create ~engine ~stats ~n () in
  let fds =
    Array.init n (fun pid ->
        Heartbeat_fd.spawn ~engine ~ep:(Network.endpoint net pid) ~n ~cfg ())
  in
  crash engine net;
  Engine.run engine;
  fds

let test_all_correct_converge_on_p0 () =
  let fds = run_fd_scenario ~crash:(fun _ _ -> ()) () in
  Array.iteri
    (fun pid fd ->
      Alcotest.(check int)
        (Printf.sprintf "p%d trusts p0" pid)
        0
        (Heartbeat_fd.leader fd))
    fds

let test_leader_silence_detected () =
  (* p0's heartbeats stop at t=20 (we model its crash by partitioning it
     away); everyone else must converge on p1. *)
  let fds =
    run_fd_scenario
      ~crash:(fun engine net ->
        Engine.schedule engine 20.0 (fun () ->
            Network.partition net
              (List.concat_map (fun dst -> [ (0, dst) ]) [ 1; 2; 3 ])))
      ()
  in
  List.iter
    (fun pid ->
      Alcotest.(check int)
        (Printf.sprintf "p%d repoints to p1" pid)
        1
        (Heartbeat_fd.leader fds.(pid));
      Alcotest.(check bool)
        (Printf.sprintf "p%d suspects p0" pid)
        true
        (Heartbeat_fd.suspects fds.(pid) 0))
    [ 1; 2; 3 ]

let test_asynchronous_prefix_recovers () =
  (* Messages crawl before GST=40 — suspicions fly — but after GST every
     correct process must re-trust p0. *)
  let fds =
    run_fd_scenario
      ~crash:(fun _engine net ->
        Network.set_gst net ~at:40.0 ~extra:(fun ~src:_ ~dst:_ ~now:_ -> 15.0))
      ()
  in
  Array.iteri
    (fun pid fd ->
      Alcotest.(check int)
        (Printf.sprintf "p%d trusts p0 after GST" pid)
        0
        (Heartbeat_fd.leader fd))
    fds;
  (* and the history shows a wrong leader before GST for some process *)
  let saw_wrong =
    Array.exists
      (fun fd -> List.exists (fun (_, l) -> l <> 0) (Heartbeat_fd.history fd))
      fds
  in
  Alcotest.(check bool) "pre-GST suspicion occurred" true saw_wrong

let test_machine_crash_fault () =
  (* Section 7: a full-system crash kills a process and its co-located
     memory at the same instant; the rest of the cluster continues. *)
  let n = 3 and m = 3 in
  let inputs = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let faults = [ Fault.Crash_machine { pid = 1; mid = 1; at = 0.5 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2);
  (* crashing the leader's machine too *)
  let faults = [ Fault.Crash_machine { pid = 0; mid = 2; at = 1.0 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs ~faults () in
  Alcotest.(check bool) "agreement after leader machine crash" true
    (Report.agreement_ok report);
  Alcotest.(check bool) "survivors decide after leader machine crash" true
    (Report.decided_count report >= 2)

let suite =
  [
    Alcotest.test_case "all correct converge on p0" `Quick test_all_correct_converge_on_p0;
    Alcotest.test_case "silent leader detected and replaced" `Quick
      test_leader_silence_detected;
    Alcotest.test_case "asynchronous prefix recovers after GST" `Quick
      test_asynchronous_prefix_recovers;
    Alcotest.test_case "full-machine crash (Section 7)" `Quick test_machine_crash_fault;
  ]
