(* Classic Paxos (message passing): agreement, validity, termination,
   crash tolerance up to a minority, leader failover, asynchrony. *)

open Rdma_consensus

let inputs_abc n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let check_basic ?(ignore_pids = []) report ~inputs ~expect_all_of =
  Alcotest.(check bool) "agreement" true (Report.agreement_ok ~ignore_pids report);
  Alcotest.(check bool) "validity" true (Report.validity_ok ~ignore_pids report ~inputs);
  Alcotest.(check int) "all correct processes decide" expect_all_of
    (Report.decided_count report)

let test_no_failures () =
  let n = 3 in
  let inputs = inputs_abc n in
  let report = Paxos.run ~n ~inputs () in
  check_basic report ~inputs ~expect_all_of:n;
  (* The initial leader p0 wins with its own value. *)
  Alcotest.(check (option string)) "leader value chosen" (Some "v0")
    (Report.decision_value report)

let test_single_process () =
  let report = Paxos.run ~n:1 ~inputs:[| "solo" |] () in
  check_basic report ~inputs:[| "solo" |] ~expect_all_of:1

let test_five_processes () =
  let n = 5 in
  let inputs = inputs_abc n in
  let report = Paxos.run ~n ~inputs () in
  check_basic report ~inputs ~expect_all_of:n

let test_leader_decides_in_four_delays () =
  (* Classic Paxos: Prepare + Promise + Accept + Accepted = 4 delays. *)
  let n = 3 in
  let report = Paxos.run ~n ~inputs:(inputs_abc n) () in
  Alcotest.(check (option (float 0.0))) "leader decision at 4 delays" (Some 4.0)
    (Report.first_decision_time report)

let test_minority_crash () =
  let n = 5 in
  let inputs = inputs_abc n in
  (* crash two non-leaders immediately *)
  let faults =
    [ Fault.Crash_process { pid = 3; at = 0.0 }; Fault.Crash_process { pid = 4; at = 0.0 } ]
  in
  let report = Paxos.run ~n ~inputs ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check int) "three survivors decide" 3 (Report.decided_count report)

let test_leader_crash_failover () =
  let n = 3 in
  let inputs = inputs_abc n in
  (* p0 crashes before proposing anything useful; Ω repoints and a new
     leader drives its own value. *)
  let faults = [ Fault.Crash_process { pid = 0; at = 0.5 } ] in
  let report = Paxos.run ~n ~inputs ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs);
  Alcotest.(check int) "two survivors decide" 2 (Report.decided_count report)

let test_leader_crash_mid_round () =
  (* Crash the leader between its phases at several cut points: safety
     must hold at every one; survivors must still decide. *)
  List.iter
    (fun at ->
      let n = 3 in
      let inputs = inputs_abc n in
      let faults = [ Fault.Crash_process { pid = 0; at } ] in
      let report = Paxos.run ~n ~inputs ~faults () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement with leader crash at %.1f" at)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "survivors decide (crash at %.1f)" at)
        true
        (Report.decided_count report >= 2))
    [ 1.0; 2.0; 3.0; 3.5 ]

let test_no_quorum_blocks () =
  (* With a crashed majority, Paxos must not decide (n ≥ 2f+1 is tight). *)
  let n = 3 in
  let inputs = inputs_abc n in
  let faults =
    [ Fault.Crash_process { pid = 1; at = 0.0 }; Fault.Crash_process { pid = 2; at = 0.0 } ]
  in
  let report = Paxos.run ~n ~inputs ~faults () in
  Alcotest.(check int) "no decision without a quorum" 0 (Report.decided_count report)

let test_asynchronous_prefix () =
  (* Messages crawl before GST; Paxos must still decide afterwards (and
     never violate safety meanwhile). *)
  let n = 3 in
  let inputs = inputs_abc n in
  let faults = [ Fault.Async_until { gst = 30.0; extra = 25.0 } ] in
  let report = Paxos.run ~n ~inputs ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check int) "all decide after GST" n (Report.decided_count report)

let test_competing_leaders () =
  (* Ω flaps between p0 and p1 before settling: dueling proposers must
     not violate agreement. *)
  let n = 3 in
  let inputs = inputs_abc n in
  let faults =
    [
      Fault.Set_leader { pid = 1; at = 1.0 };
      Fault.Set_leader { pid = 0; at = 3.0 };
      Fault.Set_leader { pid = 1; at = 5.0 };
    ]
  in
  let report = Paxos.run ~n ~inputs ~faults () in
  Alcotest.(check bool) "agreement under dueling leaders" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs);
  Alcotest.(check int) "all decide" n (Report.decided_count report)

let test_deterministic_runs () =
  let n = 3 in
  let inputs = inputs_abc n in
  let r1 = Paxos.run ~seed:9 ~n ~inputs () in
  let r2 = Paxos.run ~seed:9 ~n ~inputs () in
  Alcotest.(check (option string)) "same value" (Report.decision_value r1)
    (Report.decision_value r2);
  Alcotest.(check (option (float 0.0))) "same timing" (Report.first_decision_time r1)
    (Report.first_decision_time r2);
  Alcotest.(check int) "same message count" r1.Report.messages r2.Report.messages

let suite =
  [
    Alcotest.test_case "3 processes, no failures" `Quick test_no_failures;
    Alcotest.test_case "single process" `Quick test_single_process;
    Alcotest.test_case "5 processes" `Quick test_five_processes;
    Alcotest.test_case "leader decides in 4 delays" `Quick
      test_leader_decides_in_four_delays;
    Alcotest.test_case "minority crash tolerated" `Quick test_minority_crash;
    Alcotest.test_case "leader crash failover" `Quick test_leader_crash_failover;
    Alcotest.test_case "leader crash at phase boundaries" `Quick test_leader_crash_mid_round;
    Alcotest.test_case "majority crash blocks (bound is tight)" `Quick test_no_quorum_blocks;
    Alcotest.test_case "decides after asynchronous prefix" `Quick test_asynchronous_prefix;
    Alcotest.test_case "dueling leaders stay safe" `Quick test_competing_leaders;
    Alcotest.test_case "runs are deterministic" `Quick test_deterministic_runs;
  ]
