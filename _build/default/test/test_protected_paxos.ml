(* Protected Memory Paxos (Algorithm 7): the paper's headline crash-case
   claims — 2-deciding, n ≥ fP + 1, m ≥ 2fM + 1 — plus permission
   hand-off and failure sweeps. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let test_common_case_two_deciding () =
  (* Theorem D.5: with a stable initial leader, p1 decides after a single
     write — exactly two delays. *)
  let n = 3 and m = 3 in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check (option (float 0.0))) "2-deciding" (Some 2.0)
    (Report.first_decision_time report);
  Alcotest.(check (option string)) "leader's value" (Some "v0")
    (Report.decision_value report);
  Alcotest.(check int) "everyone decides" n (Report.decided_count report)

let test_n_equals_f_plus_one () =
  (* n ≥ fP + 1: with n = 2, one process may crash and the other still
     decides (message-passing consensus would need n ≥ 3 for f = 1). *)
  let n = 2 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 1; at = 0.0 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check int) "survivor decides" 1 (Report.decided_count report)

let test_all_but_one_crash () =
  (* n = 4, three crash: the lone survivor must still decide. *)
  let n = 4 and m = 3 in
  let faults =
    [
      Fault.Crash_process { pid = 0; at = 0.1 };
      Fault.Crash_process { pid = 1; at = 0.1 };
      Fault.Crash_process { pid = 2; at = 0.1 };
    ]
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check int) "lone survivor decides" 1 (Report.decided_count report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n))

let test_minority_memory_crash () =
  let n = 3 and m = 5 in
  let faults =
    [ Fault.Crash_memory { mid = 0; at = 0.0 }; Fault.Crash_memory { mid = 4; at = 0.0 } ]
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check int) "all decide with 3/5 memories" n (Report.decided_count report)

let test_majority_memory_crash_blocks () =
  let n = 3 and m = 3 in
  let faults =
    [ Fault.Crash_memory { mid = 0; at = 0.0 }; Fault.Crash_memory { mid = 1; at = 0.0 } ]
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check int) "no decision without memory majority" 0
    (Report.decided_count report)

let test_leader_crash_before_write () =
  let n = 3 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 0; at = 0.5 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n))

let test_leader_crash_after_decide () =
  (* p0 decides at 2.0 then crashes before everyone learns; the new
     leader must decide p0's value (it reads p0's slot). *)
  let n = 3 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 0; at = 2.25 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement across leader generations" true
    (Report.agreement_ok report);
  (match report.Report.decisions.(0) with
  | Some d ->
      Alcotest.(check string) "p0 decided its value" "v0" d.Report.value;
      (* every other decision must equal p0's *)
      Array.iter
        (function
          | Some d' -> Alcotest.(check string) "successor preserves decision" "v0" d'.Report.value
          | None -> ())
        report.Report.decisions
  | None -> Alcotest.fail "p0 should have decided before crashing");
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2)

let test_leader_crash_sweep () =
  (* Crash the leader at many cut points around its write; agreement must
     hold at every one and survivors always decide. *)
  List.iter
    (fun at ->
      let n = 3 and m = 3 in
      let faults = [ Fault.Crash_process { pid = 0; at } ] in
      let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement (leader crash at %.2f)" at)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "validity (leader crash at %.2f)" at)
        true
        (Report.validity_ok report ~inputs:(inputs n));
      Alcotest.(check bool)
        (Printf.sprintf "survivors decide (crash at %.2f)" at)
        true
        (Report.decided_count report >= 2))
    [ 0.25; 0.75; 1.0; 1.25; 1.5; 1.75; 2.0 ]

let test_deposed_leader_write_fails () =
  (* The uncontended-instantaneous guarantee, end to end: Ω moves to p1
     while p0 has not yet written; p1 takes the permissions; if p0's
     write then lands it must nak, and p0 must not decide its own value
     unless that is also p1's decision. *)
  let n = 2 and m = 3 in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "someone decides" true (Report.decided_count report >= 1)

let test_leader_flapping () =
  let n = 3 and m = 3 in
  let faults =
    [
      Fault.Set_leader { pid = 1; at = 1.0 };
      Fault.Set_leader { pid = 2; at = 4.0 };
      Fault.Set_leader { pid = 0; at = 9.0 };
    ]
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement under flapping Ω" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n));
  Alcotest.(check bool) "eventually decides" true (Report.decided_count report >= 1)

let test_combined_process_and_memory_faults () =
  let n = 4 and m = 5 in
  let faults =
    [
      Fault.Crash_memory { mid = 1; at = 0.5 };
      Fault.Crash_process { pid = 0; at = 1.2 };
      Fault.Crash_memory { mid = 3; at = 2.0 };
      Fault.Crash_process { pid = 2; at = 6.0 };
    ]
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n));
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2)

let test_memory_op_counts () =
  (* Common case: p1 writes one slot on each of the m memories and does
     nothing else; followers do no memory operations before learning the
     decision by message. *)
  let n = 3 and m = 3 in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) () in
  Alcotest.(check int) "exactly m writes on the fast path" m report.Report.mem_ops

let suite =
  [
    Alcotest.test_case "common case decides in 2 delays" `Quick
      test_common_case_two_deciding;
    Alcotest.test_case "n = f+1 resilience" `Quick test_n_equals_f_plus_one;
    Alcotest.test_case "all but one process crash" `Quick test_all_but_one_crash;
    Alcotest.test_case "minority memory crash tolerated" `Quick test_minority_memory_crash;
    Alcotest.test_case "majority memory crash blocks" `Quick
      test_majority_memory_crash_blocks;
    Alcotest.test_case "leader crash before write" `Quick test_leader_crash_before_write;
    Alcotest.test_case "leader crash after decide" `Quick test_leader_crash_after_decide;
    Alcotest.test_case "leader crash sweep" `Quick test_leader_crash_sweep;
    Alcotest.test_case "deposed leader cannot decide alone" `Quick
      test_deposed_leader_write_fails;
    Alcotest.test_case "leader flapping stays safe" `Quick test_leader_flapping;
    Alcotest.test_case "mixed process+memory faults" `Quick
      test_combined_process_and_memory_faults;
    Alcotest.test_case "fast path uses m memory ops" `Quick test_memory_op_counts;
  ]
