(* Stress sweeps: exhaustive small grids of (who crashes, when, seed)
   checking the safety invariants of the flagship algorithms, plus the
   I/O trace plumbing. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let test_fast_robust_crash_grid () =
  (* Every (crashed pid, crash time, seed) in a small grid: agreement and
     validity must hold in all of them; the fast-path value, when p0
     decided, must survive. *)
  let n = 3 and m = 3 in
  List.iter
    (fun pid ->
      List.iter
        (fun at ->
          List.iter
            (fun seed ->
              let faults = [ Fault.Crash_process { pid; at } ] in
              let report, _, _ = Fast_robust.run ~seed ~n ~m ~inputs:(inputs n) ~faults () in
              let label = Printf.sprintf "p%d@%.1f seed=%d" pid at seed in
              Alcotest.(check bool) ("agreement " ^ label) true
                (Report.agreement_ok report);
              Alcotest.(check bool) ("validity " ^ label) true
                (Report.validity_ok report ~inputs:(inputs n));
              Alcotest.(check bool) ("survivors decide " ^ label) true
                (Report.decided_count report >= 2))
            [ 1; 2 ])
        [ 0.5; 1.5; 2.5; 40.0 ])
    [ 0; 1; 2 ]

let test_pmp_two_fault_grid () =
  (* One process crash and one memory crash, swept jointly. *)
  let n = 3 and m = 3 in
  List.iter
    (fun (pid, p_at) ->
      List.iter
        (fun (mid, m_at) ->
          let faults =
            [ Fault.Crash_process { pid; at = p_at }; Fault.Crash_memory { mid; at = m_at } ]
          in
          let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
          let label = Printf.sprintf "p%d@%.1f mu%d@%.1f" pid p_at mid m_at in
          Alcotest.(check bool) ("agreement " ^ label) true (Report.agreement_ok report);
          Alcotest.(check bool) ("validity " ^ label) true
            (Report.validity_ok report ~inputs:(inputs n));
          Alcotest.(check bool) ("survivors decide " ^ label) true
            (Report.decided_count report >= 1))
        [ (0, 0.5); (1, 1.5); (2, 3.0) ])
    [ (0, 1.0); (1, 2.0); (2, 10.0) ]

let test_io_trace_captures_fast_path () =
  (* enable_io_trace records the m slot writes of the 2-delay fast path. *)
  let open Rdma_mm in
  let open Rdma_sim in
  let n = 2 and m = 3 in
  let captured = ref None in
  let prepare cluster =
    captured := Some cluster;
    Cluster.enable_io_trace cluster
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~prepare () in
  Alcotest.(check bool) "decided" true (Report.decided_count report > 0);
  match !captured with
  | None -> Alcotest.fail "prepare hook never ran"
  | Some cluster ->
      let trace = Cluster.trace cluster in
      let writes =
        Trace.count trace (fun e ->
            e.Trace.at = 1.0
            && String.length e.Trace.label > 8
            && String.sub e.Trace.label 0 8 = "p0 write")
      in
      Alcotest.(check int) "m slot writes arrive at t=1" m writes

let suite =
  [
    Alcotest.test_case "fast-robust crash grid (24 runs)" `Slow
      test_fast_robust_crash_grid;
    Alcotest.test_case "protected-paxos two-fault grid (9 runs)" `Quick
      test_pmp_two_fault_grid;
    Alcotest.test_case "I/O trace captures the fast path" `Quick
      test_io_trace_captures_fast_path;
  ]
