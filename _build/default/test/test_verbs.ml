(* The ibverbs-flavoured facade (Section 7): protection domains, rkeys,
   queue pairs, deregistration-as-revocation. *)

open Rdma_sim
open Rdma_mem

let build () =
  let engine = Engine.create () in
  let stats = Stats.create () in
  let memory = Memory.create ~engine ~stats ~mid:0 () in
  (engine, Verbs.nic memory)

let run_fiber engine f =
  ignore (Engine.spawn engine "test" f);
  Engine.run engine;
  match Engine.errors engine with
  | [] -> ()
  | (name, e) :: _ -> Alcotest.failf "fiber %s raised %s" name (Printexc.to_string e)

let test_register_read_write () =
  let engine, nic = build () in
  let pd = Verbs.alloc_pd nic in
  let mr =
    Verbs.reg_mr pd ~name:"buf" ~registers:[ "x" ] ~access:Verbs.Remote_read_write
      ~grantees:[ 1 ]
  in
  let qp = Verbs.create_qp pd ~remote:1 in
  run_fiber engine (fun () ->
      let w = Ivar.await (Verbs.rdma_write qp mr ~rkey:(Verbs.rkey mr) ~reg:"x" "v") in
      Alcotest.(check bool) "write acks" true (w = Memory.Ack);
      match Ivar.await (Verbs.rdma_read qp mr ~rkey:(Verbs.rkey mr) ~reg:"x") with
      | Memory.Read (Some v) -> Alcotest.(check string) "read back" "v" v
      | _ -> Alcotest.fail "read failed")

let test_wrong_rkey_rejected () =
  let engine, nic = build () in
  let pd = Verbs.alloc_pd nic in
  let mr =
    Verbs.reg_mr pd ~name:"buf" ~registers:[ "x" ] ~access:Verbs.Remote_read_write
      ~grantees:[ 1 ]
  in
  let qp = Verbs.create_qp pd ~remote:1 in
  run_fiber engine (fun () ->
      let w = Ivar.await (Verbs.rdma_write qp mr ~rkey:"bogus" ~reg:"x" "v") in
      Alcotest.(check bool) "bogus rkey naks" true (w = Memory.Nak))

let test_pd_isolation () =
  (* A queue pair from another protection domain cannot reach the region
     even with the correct rkey. *)
  let engine, nic = build () in
  let pd1 = Verbs.alloc_pd nic in
  let pd2 = Verbs.alloc_pd nic in
  let mr =
    Verbs.reg_mr pd1 ~name:"buf" ~registers:[ "x" ] ~access:Verbs.Remote_read_write
      ~grantees:[ 1 ]
  in
  let foreign_qp = Verbs.create_qp pd2 ~remote:1 in
  run_fiber engine (fun () ->
      let w = Ivar.await (Verbs.rdma_write foreign_qp mr ~rkey:(Verbs.rkey mr) ~reg:"x" "v") in
      Alcotest.(check bool) "cross-PD access naks" true (w = Memory.Nak))

let test_access_level_enforced () =
  let engine, nic = build () in
  let pd = Verbs.alloc_pd nic in
  let mr =
    Verbs.reg_mr pd ~name:"ro" ~registers:[ "x" ] ~access:Verbs.Remote_read
      ~grantees:[ 1 ]
  in
  let qp = Verbs.create_qp pd ~remote:1 in
  run_fiber engine (fun () ->
      let w = Ivar.await (Verbs.rdma_write qp mr ~rkey:(Verbs.rkey mr) ~reg:"x" "v") in
      Alcotest.(check bool) "write to read-only region naks" true (w = Memory.Nak);
      match Ivar.await (Verbs.rdma_read qp mr ~rkey:(Verbs.rkey mr) ~reg:"x") with
      | Memory.Read None -> ()
      | _ -> Alcotest.fail "read should succeed with bottom")

let test_grantee_scoping () =
  (* Only the grantees of the registration can access, even within the
     protection domain. *)
  let engine, nic = build () in
  let pd = Verbs.alloc_pd nic in
  let mr =
    Verbs.reg_mr pd ~name:"buf" ~registers:[ "x" ] ~access:Verbs.Remote_read_write
      ~grantees:[ 1 ]
  in
  let outsider = Verbs.create_qp pd ~remote:2 in
  run_fiber engine (fun () ->
      let w = Ivar.await (Verbs.rdma_write outsider mr ~rkey:(Verbs.rkey mr) ~reg:"x" "v") in
      Alcotest.(check bool) "non-grantee naks" true (w = Memory.Nak))

let test_dereg_revokes () =
  (* "p can revoke permissions dynamically by simply deregistering the
     memory region" (Section 7). *)
  let engine, nic = build () in
  let pd = Verbs.alloc_pd nic in
  let mr =
    Verbs.reg_mr pd ~name:"buf" ~registers:[ "x" ] ~access:Verbs.Remote_read_write
      ~grantees:[ 1 ]
  in
  let qp = Verbs.create_qp pd ~remote:1 in
  run_fiber engine (fun () ->
      let w1 = Ivar.await (Verbs.rdma_write qp mr ~rkey:(Verbs.rkey mr) ~reg:"x" "v1") in
      Alcotest.(check bool) "write before dereg acks" true (w1 = Memory.Ack);
      Verbs.dereg_mr mr;
      let w2 = Ivar.await (Verbs.rdma_write qp mr ~rkey:(Verbs.rkey mr) ~reg:"x" "v2") in
      Alcotest.(check bool) "write after dereg naks" true (w2 = Memory.Nak))

let test_rereg_hands_over () =
  (* Re-registration with a new writer invalidates the old rkey and
     installs the new grantee — the acceptor-side flow the paper sketches
     for its crash-consensus deployment. *)
  let engine, nic = build () in
  let pd = Verbs.alloc_pd nic in
  let mr1 =
    Verbs.reg_mr pd ~name:"slots" ~registers:[ "x" ] ~access:Verbs.Remote_write
      ~grantees:[ 1 ]
  in
  let qp1 = Verbs.create_qp pd ~remote:1 in
  let qp2 = Verbs.create_qp pd ~remote:2 in
  run_fiber engine (fun () ->
      let w = Ivar.await (Verbs.rdma_write qp1 mr1 ~rkey:(Verbs.rkey mr1) ~reg:"x" "p1") in
      Alcotest.(check bool) "first proposer writes" true (w = Memory.Ack);
      (* hand the region to proposer 2 *)
      let mr2 = Verbs.rereg_mr mr1 ~access:Verbs.Remote_write ~grantees:[ 2 ] in
      let w_old =
        Ivar.await (Verbs.rdma_write qp1 mr1 ~rkey:(Verbs.rkey mr1) ~reg:"x" "stale")
      in
      Alcotest.(check bool) "old rkey dead" true (w_old = Memory.Nak);
      let w_new =
        Ivar.await (Verbs.rdma_write qp2 mr2 ~rkey:(Verbs.rkey mr2) ~reg:"x" "p2")
      in
      Alcotest.(check bool) "new proposer writes" true (w_new = Memory.Ack))

let suite =
  [
    Alcotest.test_case "register, write, read" `Quick test_register_read_write;
    Alcotest.test_case "wrong rkey rejected" `Quick test_wrong_rkey_rejected;
    Alcotest.test_case "protection domains isolate" `Quick test_pd_isolation;
    Alcotest.test_case "access level enforced" `Quick test_access_level_enforced;
    Alcotest.test_case "grantee scoping" `Quick test_grantee_scoping;
    Alcotest.test_case "deregistration revokes instantly" `Quick test_dereg_revokes;
    Alcotest.test_case "re-registration hands write access over" `Quick
      test_rereg_hands_over;
  ]
