(* Robust Backup (Theorem 4.4): weak Byzantine agreement with
   n ≥ 2fP + 1 processes and m ≥ 2fM + 1 memories. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let check ?(ignore_pids = []) (report, byz) ~inputs ~min_decide =
  let ignore_pids = ignore_pids @ byz in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok ~ignore_pids report);
  Alcotest.(check bool) "validity" true (Report.validity_ok ~ignore_pids report ~inputs);
  Alcotest.(check bool)
    (Printf.sprintf "at least %d decide" min_decide)
    true
    (Report.decided_count report >= min_decide)

let test_no_failures () =
  let n = 3 and m = 3 in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) () in
  check result ~inputs:(inputs n) ~min_decide:n

let test_crash_failure () =
  let n = 3 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 2; at = 5.0 } ] in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~faults () in
  check result ~inputs:(inputs n) ~min_decide:2

let test_leader_crash () =
  let n = 3 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 0; at = 10.0 } ] in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~faults () in
  check result ~inputs:(inputs n) ~min_decide:2

let test_memory_crashes () =
  let n = 3 and m = 5 in
  let faults =
    [ Fault.Crash_memory { mid = 0; at = 0.0 }; Fault.Crash_memory { mid = 2; at = 8.0 } ]
  in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~faults () in
  check result ~inputs:(inputs n) ~min_decide:n

let test_silent_byzantine () =
  (* n = 2f+1 = 3 with one silent Byzantine process: the two correct
     processes must still decide (the translation turns Byzantine into
     crash, and Paxos tolerates one crash). *)
  let n = 3 and m = 3 in
  let byzantine = [ (2, fun _ctx -> ()) ] in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  check result ~inputs:(inputs n) ~min_decide:2

let test_fabricated_promise_contained () =
  (* A Byzantine process sends a Promise citing an acceptance that never
     happened; the replay validator convicts it and the correct
     processes decide without it. *)
  let n = 3 and m = 3 in
  let byzantine = [ (1, Attacks.rb_fabricated_promise ~ballot:1 ~value:"forged") ] in
  let (report, byz) = Robust_backup.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  check (report, byz) ~inputs:(inputs n) ~min_decide:2;
  Alcotest.(check bool) "forged value never decided" true
    (Report.decision_value report <> Some "forged")

let test_spurious_decide_contained () =
  (* A Byzantine process broadcasts Decide("evil") with no quorum behind
     it: the validator rejects it, so no correct process adopts it. *)
  let n = 3 and m = 3 in
  let byzantine = [ (1, Attacks.rb_spurious_decide ~value:"evil") ] in
  let (report, byz) = Robust_backup.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  check (report, byz) ~inputs:(inputs n) ~min_decide:2;
  Alcotest.(check bool) "evil value never decided" true
    (Report.decision_value report <> Some "evil")

let test_spurious_decide_without_validator () =
  (* Ablation: with history validation off, the same attack succeeds in
     planting its value — showing the validator is load-bearing. *)
  let n = 3 and m = 3 in
  let cfg = { Robust_backup.default_config with validate = false } in
  let byzantine = [ (1, Attacks.rb_spurious_decide ~value:"evil") ] in
  let (report, _) = Robust_backup.run ~cfg ~n ~m ~inputs:(inputs n) ~byzantine () in
  Alcotest.(check (option string)) "unvalidated run swallows the fake decide"
    (Some "evil")
    (Report.decision_value report)

let test_unjustified_accept_contained () =
  (* An Accept with no Prepare and no promise quorum behind it must be
     convicted before any acceptor acts on it. *)
  let n = 3 and m = 3 in
  let byzantine = [ (2, Attacks.rb_unjustified_accept ~ballot:9 ~value:"smuggled") ] in
  let (report, byz) = Robust_backup.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  check (report, byz) ~inputs:(inputs n) ~min_decide:2;
  Alcotest.(check bool) "smuggled value never decided" true
    (Report.decision_value report <> Some "smuggled")

let test_double_promise_convicted () =
  (* A second promise for the same ballot cannot be justified by any
     correct replay (the first one raised minProposal): the equivocating
     acceptor is convicted and the run still decides. *)
  let n = 3 and m = 3 in
  let byzantine = [ (1, Attacks.rb_double_promise) ] in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  check result ~inputs:(inputs n) ~min_decide:2

let test_no_false_convictions () =
  (* The replay validator must never convict an honest process: run a
     fault-free instance and check every pairwise conviction flag.  (A
     false positive could hide behind a still-successful run, so we check
     the flags directly.) *)
  let open Rdma_mm in
  let open Rdma_sim in
  let n = 3 and m = 3 in
  let cluster : string Cluster.t = Cluster.create ~n ~m () in
  Robust_backup.setup_regions cluster ();
  let handles = Array.make n None in
  for pid = 0 to n - 1 do
    Cluster.spawn cluster ~pid (fun ctx ->
        handles.(pid) <-
          Some (Robust_backup.attach ctx ~input:(Printf.sprintf "v%d" pid) ()))
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.iteri
    (fun pid h ->
      match h with
      | None -> Alcotest.failf "p%d has no handle" pid
      | Some h ->
          Alcotest.(check bool)
            (Printf.sprintf "p%d decided" pid)
            true
            (Ivar.is_full h.Robust_backup.decision);
          for peer = 0 to n - 1 do
            Alcotest.(check bool)
              (Printf.sprintf "p%d did not convict honest p%d" pid peer)
              false
              (Trusted.is_convicted h.Robust_backup.trusted peer)
          done)
    handles

let test_asynchronous_prefix () =
  (* Weak Byzantine agreement keeps its safety through an asynchronous
     prefix and terminates after GST. *)
  let n = 3 and m = 3 in
  let faults = [ Fault.Async_until { gst = 60.0; extra = 20.0 } ] in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~faults () in
  check result ~inputs:(inputs n) ~min_decide:n

let test_five_processes_two_byzantine () =
  let n = 5 and m = 3 in
  let byzantine =
    [ (3, fun _ctx -> ()); (4, Attacks.rb_spurious_decide ~value:"evil") ]
  in
  let result = Robust_backup.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  check result ~inputs:(inputs n) ~min_decide:3

let suite =
  [
    Alcotest.test_case "no failures" `Quick test_no_failures;
    Alcotest.test_case "follower crash" `Quick test_crash_failure;
    Alcotest.test_case "leader crash" `Quick test_leader_crash;
    Alcotest.test_case "memory crashes tolerated" `Quick test_memory_crashes;
    Alcotest.test_case "silent Byzantine at n=2f+1" `Quick test_silent_byzantine;
    Alcotest.test_case "fabricated promise convicted" `Quick
      test_fabricated_promise_contained;
    Alcotest.test_case "spurious decide rejected" `Quick test_spurious_decide_contained;
    Alcotest.test_case "validator is load-bearing (ablation)" `Quick
      test_spurious_decide_without_validator;
    Alcotest.test_case "no false convictions of honest processes" `Quick
      test_no_false_convictions;
    Alcotest.test_case "unjustified accept convicted" `Quick
      test_unjustified_accept_contained;
    Alcotest.test_case "double promise convicted" `Quick test_double_promise_convicted;
    Alcotest.test_case "asynchronous prefix" `Quick test_asynchronous_prefix;
    Alcotest.test_case "n=5 with two Byzantine" `Slow test_five_processes_two_byzantine;
  ]
