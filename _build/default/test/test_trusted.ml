(* T-send / T-receive (Algorithm 3): history transmission, signature
   citation, prefix checking, and the validator hook. *)

open Rdma_sim
open Rdma_mm
open Rdma_consensus

let neb_cfg = { Neb.default_config with give_up_at = 300.0; poll_interval = 1.0 }

let cfg = { Trusted.neb = neb_cfg }

let build ?(seed = 1) ~n ~m () =
  let cluster : string Cluster.t = Cluster.create ~seed ~n ~m () in
  Neb.setup_regions cluster ~max_seq:neb_cfg.Neb.max_seq ();
  cluster

let test_basic_roundtrip () =
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let received = Array.init n (fun _ -> ref []) in
  for pid = 0 to n - 1 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let t =
          Trusted.create ctx ~cfg
            ~on_receive:(fun ~src ~msg -> received.(pid) := (src, msg) :: !(received.(pid)))
            ()
        in
        if pid = 0 then begin
          Trusted.t_send t "one";
          Engine.sleep 30.0;
          Trusted.t_send t "two"
        end)
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  for pid = 0 to n - 1 do
    Alcotest.(check (list (pair int string)))
      (Printf.sprintf "p%d receives p0's messages in order" pid)
      [ (0, "one"); (0, "two") ]
      (List.rev !(received.(pid)))
  done

let test_history_accumulates () =
  let n = 2 and m = 3 in
  let cluster = build ~n ~m () in
  let history_len = ref 0 in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      let t = Trusted.create ctx ~cfg ~on_receive:(fun ~src:_ ~msg:_ -> ()) () in
      Trusted.t_send t "a";
      Engine.sleep 40.0;
      Trusted.t_send t "b";
      history_len := List.length (Trusted.history t));
  Cluster.spawn cluster ~pid:1 (fun ctx ->
      let t = Trusted.create ctx ~cfg ~on_receive:(fun ~src:_ ~msg:_ -> ()) () in
      ignore t);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  (* p0's history: Sent a, (Received of own a via self-delivery), Sent b —
     at least the two sends. *)
  Alcotest.(check bool) "history grows" true (!history_len >= 2)

let test_validator_rejects () =
  (* A validator that rejects messages containing "evil": the sender is
     convicted at every correct receiver and nothing is delivered. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let validator ~src:_ ~history:_ ~msg =
    if String.length msg >= 4 && String.sub msg 0 4 = "evil" then `Reject else `Accept
  in
  let received = Array.init n (fun _ -> ref []) in
  let convicted = Array.make n false in
  for pid = 0 to n - 1 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let t =
          Trusted.create ctx ~cfg ~validator
            ~on_receive:(fun ~src ~msg -> received.(pid) := (src, msg) :: !(received.(pid)))
            ()
        in
        if pid = 0 then begin
          Trusted.t_send t "evil plan";
          Engine.sleep 30.0;
          Trusted.t_send t "benign"
        end;
        if pid = 1 then begin
          Engine.sleep 100.0;
          convicted.(1) <- Trusted.is_convicted t 0
        end)
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string))) "nothing from the rejected sender" []
    (List.rev !(received.(1)));
  Alcotest.(check bool) "sender convicted" true convicted.(1)

let test_prefix_violation_convicts () =
  (* A Byzantine sender presents message 2 with a history that does not
     extend the history shown with message 1: receivers convict it.  We
     simulate by broadcasting two raw NEB payloads with inconsistent
     histories. *)
  let n = 2 and m = 3 in
  let cluster = build ~n ~m () in
  let received = ref [] in
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      let neb = Neb.create ctx ~cfg:neb_cfg ~deliver:(fun ~k:_ ~msg:_ ~src:_ -> ()) () in
      let bare k msg =
        Rdma_crypto.Keychain.encode
          (Rdma_crypto.Keychain.sign ctx.Cluster.signer (Trusted.bare_payload ~k msg))
      in
      (* message 1 with empty history *)
      Neb.broadcast neb (Codec.join3 "hello" (bare 1 "hello") (Trusted.encode_history []));
      Engine.sleep 20.0;
      (* message 2 whose history *omits* the Sent entry for message 1 *)
      Neb.broadcast neb (Codec.join3 "again" (bare 2 "again") (Trusted.encode_history [])));
  Cluster.spawn cluster ~pid:1 (fun ctx ->
      let t =
        Trusted.create ctx ~cfg
          ~on_receive:(fun ~src ~msg -> received := (src, msg) :: !received)
          ()
      in
      ignore t);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string)))
    "only the first message delivered; the prefix cheat is convicted"
    [ (0, "hello") ]
    (List.rev !received)

let test_fabricated_citation_convicts () =
  (* A Byzantine sender cites a Received entry with a forged signature of
     p1: the citation check must convict. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let received = ref [] in
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      let neb = Neb.create ctx ~cfg:neb_cfg ~deliver:(fun ~k:_ ~msg:_ ~src:_ -> ()) () in
      let bare k msg =
        Rdma_crypto.Keychain.encode
          (Rdma_crypto.Keychain.sign ctx.Cluster.signer (Trusted.bare_payload ~k msg))
      in
      let forged_entry =
        Trusted.Received
          {
            src = 1;
            k = 1;
            msg = "i never said this";
            sig_enc =
              Rdma_crypto.Keychain.encode
                (Rdma_crypto.Keychain.forge ~author:1
                   (Trusted.bare_payload ~k:1 "i never said this"));
          }
      in
      Neb.broadcast neb
        (Codec.join3 "msg" (bare 1 "msg") (Trusted.encode_history [ forged_entry ])));
  for pid = 1 to 2 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let t =
          Trusted.create ctx ~cfg
            ~on_receive:(fun ~src ~msg -> received := (src, msg) :: !received)
            ()
        in
        ignore t)
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string))) "forged citation rejected" [] !received

let test_entry_codec_roundtrip () =
  let entries =
    [
      Trusted.Sent { k = 1; msg = "hello|world" };
      Trusted.Received { src = 2; k = 7; msg = ""; sig_enc = "1:abc" };
      Trusted.Sent { k = 2; msg = "" };
    ]
  in
  match Trusted.decode_history (Trusted.encode_history entries) with
  | Some entries' ->
      Alcotest.(check int) "length preserved" (List.length entries) (List.length entries');
      Alcotest.(check bool) "entries preserved" true (entries = entries')
  | None -> Alcotest.fail "history did not roundtrip"

let suite =
  [
    Alcotest.test_case "t-send/t-receive roundtrip" `Quick test_basic_roundtrip;
    Alcotest.test_case "history accumulates" `Quick test_history_accumulates;
    Alcotest.test_case "validator rejection convicts" `Quick test_validator_rejects;
    Alcotest.test_case "history prefix violation convicts" `Quick
      test_prefix_violation_convicts;
    Alcotest.test_case "fabricated citation convicts" `Quick
      test_fabricated_citation_convicts;
    Alcotest.test_case "history codec roundtrip" `Quick test_entry_codec_roundtrip;
  ]
