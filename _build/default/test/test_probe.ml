(* Theorem 6.1 made executable: the optimistic 2-deciding candidate works
   in the common case, the proof's adversarial schedule breaks it, and
   the dynamic-permission variant survives the same schedule. *)

open Rdma_consensus

let test_synchronous_candidate_is_fine () =
  let r = Two_delay_probe.run_synchronous () in
  Alcotest.(check bool) "agreement holds in the common case" false r.agreement_violated;
  Alcotest.(check (float 0.0)) "the candidate is 2-deciding" 2.0 r.first_decision_at

let test_adversarial_schedule_violates_agreement () =
  let r = Two_delay_probe.run_adversarial () in
  Alcotest.(check bool) "agreement violated (the Theorem 6.1 trap)" true
    r.agreement_violated;
  (* Both processes decided, on different values. *)
  Alcotest.(check int) "both decided" 2 (List.length r.decisions)

let test_revocation_restores_agreement () =
  let r = Two_delay_probe.run_adversarial_with_revocation () in
  Alcotest.(check bool) "dynamic permissions break the indistinguishability" false
    r.agreement_violated

let test_protected_paxos_survives_the_same_trap () =
  (* End-to-end echo of the theorem: Protected Memory Paxos under a
     leader change plus lingering writes stays safe (its lingering write
     naks). *)
  let n = 2 and m = 3 in
  let inputs = [| "v0"; "v1" |] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.5 } ] in
  let report = Protected_paxos.run ~n ~m ~inputs ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "someone decides" true (Report.decided_count report >= 1)

let suite =
  [
    Alcotest.test_case "candidate 2-decides in common case" `Quick
      test_synchronous_candidate_is_fine;
    Alcotest.test_case "adversarial schedule violates agreement" `Quick
      test_adversarial_schedule_violates_agreement;
    Alcotest.test_case "revocation restores agreement" `Quick
      test_revocation_restores_agreement;
    Alcotest.test_case "Protected Memory Paxos survives the trap" `Quick
      test_protected_paxos_survives_the_same_trap;
  ]
