test/test_codec.ml: Alcotest Codec List Paxos QCheck2 QCheck_alcotest Rdma_consensus
