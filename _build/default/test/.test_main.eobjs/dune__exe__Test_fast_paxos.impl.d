test/test_fast_paxos.ml: Alcotest Array Fast_paxos Fault List Printf Rdma_consensus Report
