test/test_probe.ml: Alcotest Fault List Protected_paxos Rdma_consensus Report Two_delay_probe
