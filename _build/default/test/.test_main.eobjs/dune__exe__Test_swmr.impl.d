test/test_swmr.ml: Alcotest Array Engine Ivar Memclient Memory Permission Printexc Rdma_mem Rdma_reg Rdma_sim Stats Swmr
