test/test_memory.ml: Alcotest Engine Fmt Ivar Memory Permission Printexc Rdma_mem Rdma_sim Stats
