test/test_report.ml: Alcotest Array Engine Fault Fmt List Memclient Memory Permission Rdma_consensus Rdma_mem Rdma_sim Report Stats String Trace
