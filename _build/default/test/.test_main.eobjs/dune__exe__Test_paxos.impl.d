test/test_paxos.ml: Alcotest Array Fault List Paxos Printf Rdma_consensus Report
