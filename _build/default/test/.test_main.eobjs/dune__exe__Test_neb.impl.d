test/test_neb.ml: Alcotest Array Attacks Cluster Engine List Neb Printf Rdma_consensus Rdma_crypto Rdma_mem Rdma_mm Rdma_reg Rdma_sim
