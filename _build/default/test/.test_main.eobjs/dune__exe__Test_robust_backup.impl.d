test/test_robust_backup.ml: Alcotest Array Attacks Cluster Fault Ivar Printf Rdma_consensus Rdma_mm Rdma_sim Report Robust_backup Trusted
