test/test_edge_cases.ml: Alcotest Aligned_paxos Array Buffer Cluster Engine Fault Ivar List Mailbox Paxos Printf Protected_paxos Protected_paxos_multi Rdma_consensus Rdma_mm Rdma_sim Rdma_smr Report
