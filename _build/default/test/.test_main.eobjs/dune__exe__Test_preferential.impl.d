test/test_preferential.ml: Alcotest Attacks Codec Fault List Preferential_paxos Printf Rdma_consensus Report
