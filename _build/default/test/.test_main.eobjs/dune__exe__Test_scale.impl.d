test/test_scale.ml: Alcotest Aligned_paxos Array Attacks Cluster Disk_paxos Engine Fast_robust Fault List Neb Printf Protected_paxos Rdma_consensus Rdma_mm Rdma_sim Report
