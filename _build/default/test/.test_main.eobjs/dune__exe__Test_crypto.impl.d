test/test_crypto.ml: Alcotest Char Hmac Keychain List QCheck2 QCheck_alcotest Rdma_crypto Sha256 String
