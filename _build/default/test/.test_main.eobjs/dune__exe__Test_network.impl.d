test/test_network.ml: Alcotest Engine List Network Omega Rdma_mm Rdma_net Rdma_sim Stats
