test/test_attacks.ml: Alcotest Cheap_quorum Cluster Engine Fast_robust Keychain List Neb Rdma_consensus Rdma_crypto Rdma_mem Rdma_mm Rdma_reg Rdma_sim Trusted
