test/test_cheap_quorum.ml: Alcotest Array Attacks Cheap_quorum Cluster Engine Fault List Printf Rdma_consensus Rdma_crypto Rdma_mm Rdma_sim String
