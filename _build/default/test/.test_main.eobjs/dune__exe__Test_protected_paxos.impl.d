test/test_protected_paxos.ml: Alcotest Array Fault List Printf Protected_paxos Rdma_consensus Report
