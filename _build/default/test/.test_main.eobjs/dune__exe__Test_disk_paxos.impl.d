test/test_disk_paxos.ml: Alcotest Array Disk_paxos Fault List Printf Rdma_consensus Report
