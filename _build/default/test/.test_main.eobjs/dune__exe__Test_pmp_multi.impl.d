test/test_pmp_multi.ml: Alcotest Array Fault List Printf Protected_paxos_multi Rdma_consensus Report
