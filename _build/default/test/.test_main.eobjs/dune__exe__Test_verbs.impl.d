test/test_verbs.ml: Alcotest Engine Ivar Memory Printexc Rdma_mem Rdma_sim Stats Verbs
