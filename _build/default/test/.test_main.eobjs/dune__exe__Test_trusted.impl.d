test/test_trusted.ml: Alcotest Array Cluster Codec Engine List Neb Printf Rdma_consensus Rdma_crypto Rdma_mm Rdma_sim String Trusted
