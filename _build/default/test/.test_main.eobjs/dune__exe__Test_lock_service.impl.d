test/test_lock_service.ml: Alcotest Array Cluster Engine List Lock_service Rdma_mm Rdma_sim Rdma_smr Smr_log
