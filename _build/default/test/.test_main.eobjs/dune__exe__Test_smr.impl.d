test/test_smr.ml: Alcotest Array Cluster Engine Kv List Printf Rdma_mm Rdma_sim Rdma_smr Smr_log
