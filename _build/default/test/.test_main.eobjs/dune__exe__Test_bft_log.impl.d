test/test_bft_log.ml: Alcotest Array Bft_log Cheap_quorum Codec Fast_robust Fault List Printf Rdma_consensus Rdma_crypto Rdma_smr Report
