test/test_aligned_paxos.ml: Alcotest Aligned_paxos Array Fault Fmt List Printf Rdma_consensus Report
