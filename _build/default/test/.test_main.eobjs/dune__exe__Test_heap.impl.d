test/test_heap.ml: Alcotest Array Heap Random Rdma_sim
