test/test_stress.ml: Alcotest Array Cluster Fast_robust Fault List Printf Protected_paxos Rdma_consensus Rdma_mm Rdma_sim Report String Trace
