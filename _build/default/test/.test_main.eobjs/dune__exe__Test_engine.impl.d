test/test_engine.ml: Alcotest Array Buffer Engine Ivar List Mailbox Par Printf Rdma_sim
