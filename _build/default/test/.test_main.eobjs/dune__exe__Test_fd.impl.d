test/test_fd.ml: Alcotest Array Engine Fault Heartbeat_fd List Network Printf Protected_paxos Rdma_consensus Rdma_mm Rdma_net Rdma_sim Report Stats
