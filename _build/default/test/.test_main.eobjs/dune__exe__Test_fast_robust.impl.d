test/test_fast_robust.ml: Alcotest Array Attacks Fast_robust Fault List Printf Rdma_consensus Rdma_mm Rdma_sim Report
