(* Non-equivocating broadcast (Algorithm 2): the three properties of
   Definition 1, plus equivocation and memory-failure scenarios. *)

open Rdma_sim
open Rdma_mm
open Rdma_consensus

(* Harness: n processes, m memories; honest processes broadcast the
   given messages and record deliveries as (src, k, msg). *)
type recorded = (int * int * string) list ref

let neb_cfg = { Neb.default_config with give_up_at = 300.0; poll_interval = 1.0 }

let build ?(seed = 1) ~n ~m () =
  let cluster : string Cluster.t = Cluster.create ~seed ~n ~m () in
  Neb.setup_regions cluster ~max_seq:neb_cfg.Neb.max_seq ();
  cluster

(* Honest participant: broadcast [msgs] (spaced out), deliver everything
   until the configured give-up time. *)
let honest ?(cfg = neb_cfg) ~msgs ~(log : recorded) () (ctx : _ Cluster.ctx) =
  let neb =
    Neb.create ctx ~cfg
      ~deliver:(fun ~k ~msg ~src -> log := (src, k, msg) :: !log)
      ()
  in
  Neb.spawn_poller ctx neb;
  List.iter
    (fun m ->
      Neb.broadcast neb m;
      Engine.sleep 1.0)
    msgs

let delivered_by log ~src = List.rev (List.filter_map (fun (s, k, m) -> if s = src then Some (k, m) else None) !log)

let test_broadcast_delivered_by_all () =
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  for pid = 0 to n - 1 do
    let msgs = if pid = 0 then [ "hello"; "world" ] else [] in
    Cluster.spawn cluster ~pid (honest ~msgs ~log:logs.(pid) ())
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.iteri
    (fun pid log ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "p%d delivers p0's messages in order" pid)
        [ (1, "hello"); (2, "world") ]
        (delivered_by log ~src:0))
    logs

let test_all_broadcast () =
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  for pid = 0 to n - 1 do
    Cluster.spawn cluster ~pid
      (honest ~msgs:[ Printf.sprintf "from%d" pid ] ~log:logs.(pid) ())
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.iteri
    (fun pid log ->
      for src = 0 to n - 1 do
        Alcotest.(check (list (pair int string)))
          (Printf.sprintf "p%d delivers p%d" pid src)
          [ (1, Printf.sprintf "from%d" src) ]
          (delivered_by log ~src)
      done)
    logs

let test_no_forged_source () =
  (* Property 3: nothing is delivered from a process that broadcast
     nothing — even when another process writes into its own region
     *about* that process. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  Cluster.spawn cluster ~pid:0 (honest ~msgs:[ "real" ] ~log:logs.(0) ());
  Cluster.spawn cluster ~pid:1 (honest ~msgs:[] ~log:logs.(1) ());
  (* p2 is Byzantine: it plants a (forged) value in its *copy* slot for
     p1's first message. *)
  Cluster.spawn_byzantine cluster ~pid:2 (fun ctx ->
      let own = Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of 2) in
      let fake =
        Neb.encode_slot ~k:1 ~msg:"forged"
          ~signature:(Rdma_crypto.Keychain.forge ~author:1 (Neb.slot_payload ~k:1 "forged"))
      in
      ignore (Rdma_reg.Swmr.write own ~reg:(Neb.slot_reg ~owner:2 ~k:1 ~src:1) fake));
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string))) "nothing delivered from silent p1" []
    (delivered_by logs.(0) ~src:1)

let test_overwrite_equivocation_contained () =
  (* A Byzantine broadcaster overwrites its slot with a second signed
     value: property 2 — no two correct processes deliver different
     values; our implementation additionally refuses to deliver once the
     conflict is visible. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  Cluster.spawn_byzantine cluster ~pid:0
    (Attacks.neb_overwrite_equivocation ~m1:"black" ~m2:"white");
  for pid = 1 to n - 1 do
    Cluster.spawn cluster ~pid (honest ~msgs:[] ~log:logs.(pid) ())
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let d1 = delivered_by logs.(1) ~src:0 in
  let d2 = delivered_by logs.(2) ~src:0 in
  (match (d1, d2) with
  | [ (1, v1) ], [ (1, v2) ] ->
      Alcotest.(check string) "no two correct processes deliver different values" v1 v2
  | _ -> () (* delivering nothing is also correct *));
  Alcotest.(check bool) "at most one delivery each" true
    (List.length d1 <= 1 && List.length d2 <= 1)

let test_replica_equivocation_blocked () =
  (* Different signed values on different memory replicas.  The SWMR
     majority-read rule means every reader sees one value or ⊥ — two
     correct readers can disagree only transiently as ⊥, and the
     algorithm's copy-and-crosscheck step resolves that.  The property to
     hold (Definition 1, property 2): no two correct processes deliver
     different values. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  Cluster.spawn_byzantine cluster ~pid:0
    (Attacks.neb_replica_equivocation ~m1:"black" ~m2:"white");
  for pid = 1 to n - 1 do
    Cluster.spawn cluster ~pid (honest ~msgs:[] ~log:logs.(pid) ())
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let d1 = delivered_by logs.(1) ~src:0 and d2 = delivered_by logs.(2) ~src:0 in
  (match (d1, d2) with
  | [ (1, v1) ], [ (1, v2) ] ->
      Alcotest.(check string) "correct processes deliver the same value" v1 v2
  | ([] | [ _ ]), ([] | [ _ ]) -> ()
  | _ -> Alcotest.fail "more than one delivery from a single broadcast")

let test_replica_split_with_empty_third () =
  (* The sharpest replica attack: black on µ0, white on µ1, nothing on
     µ2 — different majorities now read different single values, and only
     the cross-check step prevents divergent deliveries. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      let slot = Neb.slot_reg ~owner:0 ~k:1 ~src:0 in
      let signed m =
        Neb.encode_slot ~k:1 ~msg:m
          ~signature:
            (Rdma_crypto.Keychain.sign ctx.Cluster.signer (Neb.slot_payload ~k:1 m))
      in
      let client = ctx.Cluster.client in
      ignore
        (Rdma_mem.Memclient.write client ~mem:0 ~region:(Neb.region_of 0) ~reg:slot
           (signed "black"));
      ignore
        (Rdma_mem.Memclient.write client ~mem:1 ~region:(Neb.region_of 0) ~reg:slot
           (signed "white")));
  for pid = 1 to n - 1 do
    Cluster.spawn cluster ~pid (honest ~msgs:[] ~log:logs.(pid) ())
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let d1 = delivered_by logs.(1) ~src:0 and d2 = delivered_by logs.(2) ~src:0 in
  match (d1, d2) with
  | [ (1, v1) ], [ (1, v2) ] ->
      Alcotest.(check string) "no divergent deliveries under replica split" v1 v2
  | ([] | [ _ ]), ([] | [ _ ]) -> ()
  | _ -> Alcotest.fail "more than one delivery from a single broadcast"

let test_survives_memory_crashes () =
  let n = 3 and m = 5 in
  let cluster = build ~n ~m () in
  let logs = Array.init n (fun _ -> ref []) in
  for pid = 0 to n - 1 do
    let msgs = if pid = 1 then [ "survivor" ] else [] in
    Cluster.spawn cluster ~pid (honest ~msgs ~log:logs.(pid) ())
  done;
  Cluster.crash_memory_at cluster ~at:0.0 0;
  Cluster.crash_memory_at cluster ~at:0.0 3;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.iteri
    (fun pid log ->
      Alcotest.(check (list (pair int string)))
        (Printf.sprintf "p%d delivers despite 2/5 memory crashes" pid)
        [ (1, "survivor") ]
        (delivered_by log ~src:1))
    logs

let test_wrong_key_not_delivered () =
  (* A Byzantine broadcaster writes sequence number 5 into its k=1 slot:
     the key check refuses it. *)
  let n = 2 and m = 3 in
  let cluster = build ~n ~m () in
  let log = ref [] in
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      let own =
        Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of 0)
      in
      let v =
        Neb.encode_slot ~k:5 ~msg:"skip"
          ~signature:
            (Rdma_crypto.Keychain.sign ctx.Cluster.signer (Neb.slot_payload ~k:5 "skip"))
      in
      ignore (Rdma_reg.Swmr.write own ~reg:(Neb.slot_reg ~owner:0 ~k:1 ~src:0) v));
  Cluster.spawn cluster ~pid:1 (honest ~msgs:[] ~log ());
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string))) "mis-keyed slot not delivered" []
    (delivered_by log ~src:0)

let test_delivery_order_is_sequential () =
  (* Messages from one sender are delivered in sequence-number order,
     with no gaps, even when broadcast in a burst. *)
  let n = 2 and m = 3 in
  let cluster = build ~n ~m () in
  let log = ref [] in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      let neb = Neb.create ctx ~cfg:neb_cfg ~deliver:(fun ~k:_ ~msg:_ ~src:_ -> ()) () in
      Neb.spawn_poller ctx neb;
      for i = 1 to 5 do
        Neb.broadcast neb (Printf.sprintf "m%d" i)
      done);
  Cluster.spawn cluster ~pid:1 (honest ~msgs:[] ~log ());
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string)))
    "burst delivered in order"
    [ (1, "m1"); (2, "m2"); (3, "m3"); (4, "m4"); (5, "m5") ]
    (delivered_by log ~src:0)

let test_broadcaster_crash_mid_write () =
  (* The broadcaster crashes while its replicated write is in flight: the
     message may or may not deliver, but correct processes never
     diverge.  Sweep the crash instant across the write's window. *)
  List.iter
    (fun at ->
      let n = 3 and m = 3 in
      let cluster = build ~n ~m () in
      let logs = Array.init n (fun _ -> ref []) in
      for pid = 0 to n - 1 do
        let msgs = if pid = 0 then [ "maybe" ] else [] in
        Cluster.spawn cluster ~pid (honest ~msgs ~log:logs.(pid) ())
      done;
      Cluster.crash_process_at cluster ~at 0;
      Cluster.run cluster;
      Cluster.check_errors cluster;
      let d1 = delivered_by logs.(1) ~src:0 and d2 = delivered_by logs.(2) ~src:0 in
      Alcotest.(check bool)
        (Printf.sprintf "no divergence (crash at %.2f)" at)
        true (d1 = d2))
    [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 2.0 ]

let suite =
  [
    Alcotest.test_case "broadcaster crash mid-write sweep" `Quick
      test_broadcaster_crash_mid_write;
    Alcotest.test_case "property 1: broadcasts delivered by all" `Quick
      test_broadcast_delivered_by_all;
    Alcotest.test_case "all-to-all broadcast" `Quick test_all_broadcast;
    Alcotest.test_case "property 3: no forged sources" `Quick test_no_forged_source;
    Alcotest.test_case "property 2: overwrite equivocation contained" `Quick
      test_overwrite_equivocation_contained;
    Alcotest.test_case "replica equivocation: no divergence" `Quick
      test_replica_equivocation_blocked;
    Alcotest.test_case "replica split with empty third" `Quick
      test_replica_split_with_empty_third;
    Alcotest.test_case "tolerates minority memory crashes" `Quick
      test_survives_memory_crashes;
    Alcotest.test_case "mis-keyed slots are not delivered" `Quick
      test_wrong_key_not_delivered;
    Alcotest.test_case "per-sender FIFO delivery" `Quick test_delivery_order_is_sequential;
  ]
