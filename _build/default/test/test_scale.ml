(* Larger configurations: the bounds hold as n and m grow. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let test_fast_robust_n7_f3 () =
  (* n = 2f+1 = 7 with three Byzantine processes (one silent, one
     priority liar, one permission revoker): the four correct processes
     agree on a correct input. *)
  let n = 7 and m = 3 in
  let byzantine =
    [
      (4, fun _ -> ());
      (5, Attacks.pp_priority_liar ~value:"liar");
      (6, Attacks.cq_early_revoker);
    ]
  in
  let report, byz, _ = Fast_robust.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  Alcotest.(check bool) "agreement among 4 correct" true
    (Report.agreement_ok ~ignore_pids:byz report);
  Alcotest.(check bool) "validity among correct" true
    (Report.validity_ok ~ignore_pids:byz report ~inputs:(inputs n));
  Alcotest.(check bool) "correct majority decides" true
    (Report.decided_count report >= 4)

let test_pmp_n6_five_crashes () =
  (* n ≥ f+1 at scale: six processes, five crash, the lone survivor
     decides. *)
  let n = 6 and m = 5 in
  let faults =
    List.init 5 (fun i -> Fault.Crash_process { pid = i; at = 0.2 *. float_of_int i })
  in
  let report = Protected_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "lone survivor decides" true (Report.decided_count report >= 1);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n))

let test_aligned_large_mixed () =
  (* 5 processes + 5 memories = 10 agents; kill 4 (2 of each): decides. *)
  let n = 5 and m = 5 in
  let faults =
    [
      Fault.Crash_process { pid = 3; at = 0.0 };
      Fault.Crash_process { pid = 4; at = 0.0 };
      Fault.Crash_memory { mid = 0; at = 0.0 };
      Fault.Crash_memory { mid = 4; at = 0.0 };
    ]
  in
  let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "decides with 6/10 agents" true (Report.decided_count report >= 1)

let test_disk_paxos_many_disks () =
  let n = 3 and m = 9 in
  let faults = List.init 4 (fun mid -> Fault.Crash_memory { mid; at = 0.0 }) in
  let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement with 5/9 disks" true (Report.agreement_ok report);
  Alcotest.(check bool) "decides" true (Report.decided_count report >= 1)

let test_neb_liveness_under_reader_crash () =
  (* Property 1 liveness: a crashed *reader* must not prevent the others
     from delivering a correct broadcaster's message. *)
  let open Rdma_mm in
  let open Rdma_sim in
  let n = 4 and m = 3 in
  let cluster : string Cluster.t = Cluster.create ~n ~m () in
  let cfg = { Neb.default_config with give_up_at = 200.0; poll_interval = 1.0 } in
  Neb.setup_regions cluster ~max_seq:cfg.Neb.max_seq ();
  let delivered = Array.make n false in
  for pid = 0 to n - 1 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let neb =
          Neb.create ctx ~cfg
            ~deliver:(fun ~k:_ ~msg:_ ~src -> if src = 0 then delivered.(pid) <- true)
            ()
        in
        Neb.spawn_poller ctx neb;
        if pid = 0 then begin
          Engine.sleep 3.0;
          Neb.broadcast neb "liveness"
        end)
  done;
  Cluster.crash_process_at cluster ~at:1.0 3;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d delivers despite p3's crash" pid)
        true delivered.(pid))
    [ 0; 1; 2 ]

let suite =
  [
    Alcotest.test_case "fast-robust n=7, f=3 mixed Byzantine" `Slow
      test_fast_robust_n7_f3;
    Alcotest.test_case "protected-paxos n=6, five crashes" `Quick test_pmp_n6_five_crashes;
    Alcotest.test_case "aligned n=5,m=5, four agents dead" `Quick test_aligned_large_mixed;
    Alcotest.test_case "disk-paxos with nine disks" `Quick test_disk_paxos_many_disks;
    Alcotest.test_case "NEB liveness under reader crash" `Quick
      test_neb_liveness_under_reader_crash;
  ]
