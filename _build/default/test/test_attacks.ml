(* Cross-cutting adversarial cases: signature domain separation and
   replay attacks across protocol layers. *)

open Rdma_sim
open Rdma_mm
open Rdma_crypto
open Rdma_consensus

let test_signature_domain_separation () =
  (* The three protocols sign the same application value under different
     payloads, so a signature captured in one protocol cannot be replayed
     in another. *)
  let chain = Keychain.create ~n:3 () in
  let signer = Keychain.signer chain 1 in
  let v = "transfer $100" in
  let cq_payload = Cheap_quorum.value_payload v in
  let neb_payload = Neb.slot_payload ~k:1 v in
  let bare_payload = Trusted.bare_payload ~k:1 v in
  Alcotest.(check bool) "payload domains are distinct" true
    (cq_payload <> neb_payload && neb_payload <> bare_payload
    && cq_payload <> bare_payload);
  let cq_sig = Keychain.sign signer cq_payload in
  Alcotest.(check bool) "CQ signature valid in its own domain" true
    (Keychain.valid chain ~author:1 cq_payload cq_sig);
  Alcotest.(check bool) "CQ signature rejected as NEB slot" false
    (Keychain.valid chain ~author:1 neb_payload cq_sig);
  Alcotest.(check bool) "CQ signature rejected as trusted citation" false
    (Keychain.valid chain ~author:1 bare_payload cq_sig)

(* A Byzantine process replays p1's genuinely-signed broadcast value as
   its *own* first message: the author check must refuse delivery. *)
let test_neb_identity_replay () =
  let neb_cfg = { Neb.default_config with give_up_at = 120.0; poll_interval = 1.0 } in
  let cluster : string Cluster.t = Cluster.create ~n:3 ~m:3 () in
  Neb.setup_regions cluster ~max_seq:neb_cfg.Neb.max_seq ();
  let delivered = ref [] in
  (* p1 broadcasts honestly *)
  Cluster.spawn cluster ~pid:1 (fun ctx ->
      let neb = Neb.create ctx ~cfg:neb_cfg ~deliver:(fun ~k:_ ~msg:_ ~src:_ -> ()) () in
      Neb.spawn_poller ctx neb;
      Neb.broadcast neb "original");
  (* p0 (Byzantine) copies p1's signed slot value into its own broadcast
     slot *)
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      Engine.sleep 5.0;
      let reader =
        Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of 1)
      in
      match Rdma_reg.Swmr.read reader ~reg:(Neb.slot_reg ~owner:1 ~k:1 ~src:1) with
      | Some stolen ->
          let own =
            Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of 0)
          in
          ignore (Rdma_reg.Swmr.write own ~reg:(Neb.slot_reg ~owner:0 ~k:1 ~src:0) stolen)
      | None -> ());
  (* p2 observes *)
  Cluster.spawn cluster ~pid:2 (fun ctx ->
      let neb =
        Neb.create ctx ~cfg:neb_cfg
          ~deliver:(fun ~k ~msg ~src -> delivered := (src, k, msg) :: !delivered)
          ()
      in
      Neb.spawn_poller ctx neb);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let from_p0 = List.filter (fun (src, _, _) -> src = 0) !delivered in
  let from_p1 = List.filter (fun (src, _, _) -> src = 1) !delivered in
  Alcotest.(check (list (pair int (pair int string))))
    "nothing delivered from the replayer"
    []
    (List.map (fun (s, k, m) -> (s, (k, m))) from_p0);
  Alcotest.(check bool) "the original still delivers" true
    (List.exists (fun (_, k, m) -> k = 1 && m = "original") from_p1)

(* Replaying a genuine signed (k=1) value into the k=2 slot of the same
   author: the embedded key mismatches the slot and delivery skips it. *)
let test_neb_sequence_replay () =
  let neb_cfg = { Neb.default_config with give_up_at = 120.0; poll_interval = 1.0 } in
  let cluster : string Cluster.t = Cluster.create ~n:2 ~m:3 () in
  Neb.setup_regions cluster ~max_seq:neb_cfg.Neb.max_seq ();
  let delivered = ref [] in
  Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
      let own =
        Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of 0)
      in
      let signed =
        Neb.encode_slot ~k:1 ~msg:"once"
          ~signature:(Keychain.sign ctx.Cluster.signer (Neb.slot_payload ~k:1 "once"))
      in
      ignore (Rdma_reg.Swmr.write own ~reg:(Neb.slot_reg ~owner:0 ~k:1 ~src:0) signed);
      (* replay the same signed value at sequence number 2 *)
      ignore (Rdma_reg.Swmr.write own ~reg:(Neb.slot_reg ~owner:0 ~k:2 ~src:0) signed));
  Cluster.spawn cluster ~pid:1 (fun ctx ->
      let neb =
        Neb.create ctx ~cfg:neb_cfg
          ~deliver:(fun ~k ~msg ~src:_ -> delivered := (k, msg) :: !delivered)
          ()
      in
      Neb.spawn_poller ctx neb);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check (list (pair int string)))
    "only the first instance delivers; the replay at k=2 is refused"
    [ (1, "once") ]
    (List.rev !delivered)

let test_permission_thief_cannot_take_neb_region () =
  (* Under the Fast & Robust legalChange policy, nobody can obtain write
     access to another process's NEB region. *)
  let n = 3 in
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:(Fast_robust.legal_change ~n) ~n ~m:3 ()
  in
  Fast_robust.setup_regions cluster ();
  let stolen = ref false in
  Cluster.spawn_byzantine cluster ~pid:2 (fun ctx ->
      let results =
        Rdma_mem.Memclient.change_permission_quorum ~k:3 ctx.Cluster.client
          ~region:(Neb.region_of 1)
          ~perm:(Rdma_mem.Permission.exclusive_writer ~writer:2 ~n)
      in
      if List.exists (fun (_, r) -> r = Rdma_mem.Memory.Ack) results then stolen := true);
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check bool) "NEB regions cannot be stolen" false !stolen

let suite =
  [
    Alcotest.test_case "signature domain separation" `Quick
      test_signature_domain_separation;
    Alcotest.test_case "NEB identity replay refused" `Quick test_neb_identity_replay;
    Alcotest.test_case "NEB sequence replay refused" `Quick test_neb_sequence_replay;
    Alcotest.test_case "legalChange guards NEB regions" `Quick
      test_permission_thief_cannot_take_neb_region;
  ]
