(* Fast Paxos baseline: 2-deciding in the common case, classic recovery
   under failures (n ≥ 2f+1). *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let test_fast_path_two_delays () =
  let n = 3 in
  let report = Fast_paxos.run ~n ~inputs:(inputs n) () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check (option (float 0.0))) "2-deciding fast path" (Some 2.0)
    (Report.first_decision_time report);
  Alcotest.(check int) "all decide" n (Report.decided_count report);
  Alcotest.(check (option string)) "first proposer's value" (Some "v0")
    (Report.decision_value report)

let test_fast_path_five () =
  let n = 5 in
  let report = Fast_paxos.run ~n ~inputs:(inputs n) () in
  Alcotest.(check (option (float 0.0))) "2-deciding at n=5" (Some 2.0)
    (Report.first_decision_time report);
  Alcotest.(check int) "all decide" n (Report.decided_count report)

let test_crash_breaks_fast_path_recovery_decides () =
  (* One acceptor crash: the full-n fast quorum is unreachable, so the
     classic path must finish the job (n ≥ 2f+1). *)
  let n = 3 in
  let faults = [ Fault.Crash_process { pid = 2; at = 0.0 } ] in
  let report = Fast_paxos.run ~n ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "recovery decides" true (Report.decided_count report >= 2);
  (match Report.first_decision_time report with
  | Some t ->
      Alcotest.(check bool) "slower than the fast path" true (t > 2.0)
  | None -> Alcotest.fail "no decision");
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n))

let test_recovery_preserves_fast_value () =
  (* The proposer's value lands at every live acceptor before recovery
     kicks in; the classic round must choose that value, not the
     recovery leader's input. *)
  let n = 3 in
  let faults = [ Fault.Crash_process { pid = 2; at = 1.5 } ] in
  (* p2 accepted (0, v0) at t=1 then crashed: its FastAccepted reached
     everyone, but the fast quorum n=3 cannot complete... it completed at
     t=1 actually — crash at 1.5 is after acceptance; so instead crash p2
     before the proposal arrives: *)
  let faults2 = [ Fault.Crash_process { pid = 2; at = 0.5 } ] in
  ignore faults;
  let report = Fast_paxos.run ~n ~inputs:(inputs n) ~faults:faults2 () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check (option string)) "fast value survives recovery" (Some "v0")
    (Report.decision_value report)

let test_collision_resolved () =
  (* Force a round-0 collision: no stagger, everyone proposes at once.
     No value reaches the full fast quorum; recovery must pick one of the
     proposed values and everyone agrees. *)
  let n = 3 in
  let cfg = { Fast_paxos.default_config with proposer_stagger = 0.0 } in
  let report = Fast_paxos.run ~cfg ~n ~inputs:(inputs n) () in
  Alcotest.(check bool) "agreement after collision" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity after collision" true
    (Report.validity_ok report ~inputs:(inputs n));
  Alcotest.(check int) "all decide" n (Report.decided_count report)

let test_collision_seed_sweep () =
  List.iter
    (fun seed ->
      let n = 5 in
      let cfg = { Fast_paxos.default_config with proposer_stagger = 0.0 } in
      let report = Fast_paxos.run ~cfg ~seed ~n ~inputs:(inputs n) () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement under collision, seed %d" seed)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "validity under collision, seed %d" seed)
        true
        (Report.validity_ok report ~inputs:(inputs n)))
    [ 1; 2; 3; 4; 5; 6 ]

let test_minority_crash_tolerated () =
  let n = 5 in
  let faults =
    [ Fault.Crash_process { pid = 3; at = 0.0 }; Fault.Crash_process { pid = 4; at = 0.0 } ]
  in
  let report = Fast_paxos.run ~n ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check int) "three survivors decide" 3 (Report.decided_count report)

let test_majority_crash_blocks () =
  let n = 3 in
  let faults =
    [ Fault.Crash_process { pid = 1; at = 0.0 }; Fault.Crash_process { pid = 2; at = 0.0 } ]
  in
  let report = Fast_paxos.run ~n ~inputs:(inputs n) ~faults () in
  Alcotest.(check int) "no decision without majority" 0 (Report.decided_count report)

let suite =
  [
    Alcotest.test_case "fast path decides in 2 delays" `Quick test_fast_path_two_delays;
    Alcotest.test_case "fast path at n=5" `Quick test_fast_path_five;
    Alcotest.test_case "acceptor crash falls back to classic" `Quick
      test_crash_breaks_fast_path_recovery_decides;
    Alcotest.test_case "recovery preserves the fast value" `Quick
      test_recovery_preserves_fast_value;
    Alcotest.test_case "round-0 collision resolved" `Quick test_collision_resolved;
    Alcotest.test_case "collision seed sweep" `Quick test_collision_seed_sweep;
    Alcotest.test_case "minority crash tolerated" `Quick test_minority_crash_tolerated;
    Alcotest.test_case "majority crash blocks" `Quick test_majority_crash_blocks;
  ]
