(* Codec round-trip and canonicality tests, including qcheck properties. *)

open Rdma_consensus

let test_simple_roundtrip () =
  let fields = [ "abc"; "def"; "" ] in
  Alcotest.(check (list string)) "roundtrip" fields (Codec.split (Codec.join fields))

let test_separator_escaped () =
  let fields = [ "a|b"; "c%d"; "%7c" ] in
  Alcotest.(check (list string)) "escaping roundtrips" fields
    (Codec.split (Codec.join fields))

let test_fixed_arity () =
  Alcotest.(check (option (pair string string))) "split2" (Some ("x", "y"))
    (Codec.split2 (Codec.join2 "x" "y"));
  Alcotest.(check bool) "split3 rejects arity-2" true (Codec.split3 (Codec.join2 "x" "y") = None);
  (match Codec.split4 (Codec.join4 "a" "b" "c" "d") with
  | Some ("a", "b", "c", "d") -> ()
  | _ -> Alcotest.fail "split4 failed");
  Alcotest.(check (option int)) "int field" (Some 42) (Codec.int_of_field (Codec.int_field 42))

let qcheck_roundtrip =
  QCheck2.Test.make ~name:"codec join/split roundtrips arbitrary fields" ~count:500
    QCheck2.Gen.(list (string_size (0 -- 30)))
    (fun fields -> Codec.split (Codec.join fields) = fields)

let qcheck_canonical =
  QCheck2.Test.make ~name:"codec encodings are injective" ~count:500
    QCheck2.Gen.(pair (list (string_size (0 -- 10))) (list (string_size (0 -- 10))))
    (fun (a, b) -> a = b || Codec.join a <> Codec.join b)

(* Paxos message codec *)

let test_paxos_msgs_roundtrip () =
  let open Paxos in
  let msgs =
    [
      Prepare { ballot = 7 };
      Promise { ballot = 3; accepted_ballot = 0; accepted_value = "" };
      Promise { ballot = 3; accepted_ballot = 2; accepted_value = "weird|value%" };
      Reject { ballot = 5; higher = 9 };
      Accept { ballot = 4; value = "v" };
      Accepted { ballot = 4 };
      Decide { value = "final" };
    ]
  in
  List.iter
    (fun m ->
      match decode (encode m) with
      | Some m' when m = m' -> ()
      | _ -> Alcotest.fail "paxos message did not roundtrip")
    msgs

let test_paxos_decode_garbage () =
  Alcotest.(check bool) "garbage decodes to None" true (Paxos.decode "nonsense" = None);
  Alcotest.(check bool) "bad int decodes to None" true
    (Paxos.decode (Codec.join [ "prepare"; "xyz" ]) = None)

let suite =
  [
    Alcotest.test_case "simple roundtrip" `Quick test_simple_roundtrip;
    Alcotest.test_case "separators escaped" `Quick test_separator_escaped;
    Alcotest.test_case "fixed arity helpers" `Quick test_fixed_arity;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_canonical;
    Alcotest.test_case "paxos messages roundtrip" `Quick test_paxos_msgs_roundtrip;
    Alcotest.test_case "paxos decode rejects garbage" `Quick test_paxos_decode_garbage;
  ]
