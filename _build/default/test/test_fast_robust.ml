(* Fast & Robust (Theorem 4.9): weak Byzantine agreement, n ≥ 2fP + 1,
   m ≥ 2fM + 1, 2-deciding in common executions; the composition lemma
   (4.8) under attacks and crashes. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let check ?(extra_ignore = []) (report, byz, _cluster) ~inputs ~min_decide =
  let ignore_pids = byz @ extra_ignore in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok ~ignore_pids report);
  Alcotest.(check bool) "validity among correct" true
    (Report.validity_ok ~ignore_pids report ~inputs);
  Alcotest.(check bool)
    (Printf.sprintf "at least %d decide" min_decide)
    true
    (Report.decided_count report >= min_decide)

let test_common_case_two_deciding () =
  let n = 3 and m = 3 in
  let ((report, _, _) as result) = Fast_robust.run ~n ~m ~inputs:(inputs n) () in
  check result ~inputs:(inputs n) ~min_decide:n;
  Alcotest.(check (option (float 0.0))) "2-deciding" (Some 2.0)
    (Report.first_decision_time report);
  Alcotest.(check (option string)) "leader's value decided" (Some "v0")
    (Report.decision_value report)

let test_one_signature_fast_decision () =
  (* Followers are correct but arbitrarily slow (they take no steps), so
     the signature counter at the fast decision isolates the leader's
     fast path: exactly one signature (Section 4.2). *)
  let n = 3 and m = 3 in
  let byzantine = [ (1, fun _ -> ()); (2, fun _ -> ()) ] in
  let _, _, cluster = Fast_robust.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  Alcotest.(check int) "one signature at the fast decision" 1
    (Rdma_sim.Stats.get (Rdma_mm.Cluster.stats cluster) "sigs_at_fast_decision")

let test_five_processes () =
  let n = 5 and m = 3 in
  let ((report, _, _) as result) = Fast_robust.run ~n ~m ~inputs:(inputs n) () in
  check result ~inputs:(inputs n) ~min_decide:n;
  Alcotest.(check (option (float 0.0))) "still 2-deciding at n=5" (Some 2.0)
    (Report.first_decision_time report)

let test_silent_byzantine_leader () =
  (* f = 1 Byzantine leader that proposes nothing: the fast path aborts
     and Preferential Paxos decides for the correct processes. *)
  let n = 3 and m = 3 in
  let byzantine = [ (0, Attacks.cq_silent_leader) ] in
  (* liveness requires Ω to eventually trust a correct process *)
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let ((report, _, _) as result) =
    Fast_robust.run ~n ~m ~inputs:(inputs n) ~byzantine ~faults ()
  in
  check result ~inputs:(inputs n) ~min_decide:2;
  (* the decision must be a correct process's input *)
  match Report.decision_value report with
  | Some v -> Alcotest.(check bool) "correct input decided" true (v = "v1" || v = "v2")
  | None -> Alcotest.fail "no decision"

let test_equivocating_byzantine_leader () =
  let n = 3 and m = 3 in
  let byzantine = [ (0, Attacks.cq_equivocating_leader ~v1:"black" ~v2:"white") ] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let ((report, _, _) as result) =
    Fast_robust.run ~n ~m ~inputs:(inputs n) ~byzantine ~faults ()
  in
  check result ~inputs:(inputs n) ~min_decide:2;
  match Report.decision_value report with
  | Some v ->
      Alcotest.(check bool) "equivocator's values never decided" true
        (v <> "black" && v <> "white")
  | None -> Alcotest.fail "no decision"

let test_byzantine_follower () =
  (* A Byzantine follower disrupts the unanimity proof chase; the leader
     still decides at 2 delays, and the composition lemma forces the
     backup to agree with it. *)
  let n = 3 and m = 3 in
  let byzantine = [ (2, Attacks.cq_early_revoker) ] in
  let report, byz, _ = Fast_robust.run ~n ~m ~inputs:(inputs n) ~byzantine () in
  Alcotest.(check bool) "agreement among correct" true
    (Report.agreement_ok ~ignore_pids:byz report);
  Alcotest.(check bool) "both correct processes decide" true
    (Report.decided_count report >= 2)

let test_composition_lemma_sweep () =
  (* Lemma 4.8: crash a follower at various points around the fast path;
     whenever the leader (or any correct process) decided in Cheap
     Quorum, the final decisions all equal that value. *)
  List.iter
    (fun at ->
      let n = 3 and m = 3 in
      let faults = [ Fault.Crash_process { pid = 2; at } ] in
      let report, _, _ = Fast_robust.run ~n ~m ~inputs:(inputs n) ~faults () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement (follower crash at %.1f)" at)
        true (Report.agreement_ok report);
      (match report.Report.decisions.(0) with
      | Some d ->
          Alcotest.(check string)
            (Printf.sprintf "fast-path value survives composition (crash at %.1f)" at)
            "v0" d.Report.value
      | None -> ());
      Alcotest.(check bool)
        (Printf.sprintf "survivors decide (crash at %.1f)" at)
        true
        (Report.decided_count report >= 2))
    [ 0.5; 1.0; 1.5; 2.0; 3.0; 5.0 ]

let test_leader_crash_after_fast_decision () =
  (* The leader decides at 2.0 and crashes: everyone else must decide
     v0 through the backup path (or late fast path). *)
  let n = 3 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 0; at = 2.5 } ] in
  let report, _, _ = Fast_robust.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Array.iteri
    (fun pid d ->
      match d with
      | Some d ->
          Alcotest.(check string)
            (Printf.sprintf "p%d decides the fast value" pid)
            "v0" d.Report.value
      | None -> ())
    report.Report.decisions;
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2)

let test_memory_crashes () =
  let n = 3 and m = 5 in
  let faults =
    [ Fault.Crash_memory { mid = 0; at = 0.0 }; Fault.Crash_memory { mid = 2; at = 0.0 } ]
  in
  let ((report, _, _) as result) = Fast_robust.run ~n ~m ~inputs:(inputs n) ~faults () in
  check result ~inputs:(inputs n) ~min_decide:n;
  Alcotest.(check (option (float 0.0))) "still 2-deciding with 3/5 memories" (Some 2.0)
    (Report.first_decision_time report)

let test_byzantine_plus_memory_crash () =
  let n = 3 and m = 3 in
  let byzantine = [ (2, Attacks.cq_silent_leader) ] in
  let faults = [ Fault.Crash_memory { mid = 1; at = 0.0 } ] in
  let result = Fast_robust.run ~n ~m ~inputs:(inputs n) ~byzantine ~faults () in
  check result ~inputs:(inputs n) ~min_decide:2

let test_seed_sweep_agreement () =
  List.iter
    (fun seed ->
      let n = 3 and m = 3 in
      let byzantine = [ (1, Attacks.pp_priority_liar ~value:"liar") ] in
      let report, byz, _ =
        Fast_robust.run ~seed ~n ~m ~inputs:(inputs n) ~byzantine ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "agreement under priority liar (seed %d)" seed)
        true
        (Report.agreement_ok ~ignore_pids:byz report);
      match Report.decision_value report with
      | Some v ->
          Alcotest.(check bool)
            (Printf.sprintf "liar value never decided (seed %d)" seed)
            true (v <> "liar")
      | None -> Alcotest.fail "no decision")
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "common case decides in 2 delays" `Quick
      test_common_case_two_deciding;
    Alcotest.test_case "one signature on the fast path" `Quick
      test_one_signature_fast_decision;
    Alcotest.test_case "n=5 common case" `Quick test_five_processes;
    Alcotest.test_case "silent Byzantine leader" `Quick test_silent_byzantine_leader;
    Alcotest.test_case "equivocating Byzantine leader" `Quick
      test_equivocating_byzantine_leader;
    Alcotest.test_case "Byzantine follower contained" `Quick test_byzantine_follower;
    Alcotest.test_case "composition lemma crash sweep" `Slow test_composition_lemma_sweep;
    Alcotest.test_case "leader crash after fast decision" `Quick
      test_leader_crash_after_fast_decision;
    Alcotest.test_case "memory crashes tolerated" `Quick test_memory_crashes;
    Alcotest.test_case "Byzantine + memory crash" `Quick test_byzantine_plus_memory_crash;
    Alcotest.test_case "priority liar seed sweep" `Slow test_seed_sweep_agreement;
  ]
