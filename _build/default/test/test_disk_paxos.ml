(* Disk Paxos baseline: 4-deciding (never 2), n ≥ f+1, m ≥ 2fM+1, static
   permissions. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let test_common_case_four_delays () =
  let n = 3 and m = 3 in
  let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check (option (float 0.0)))
    "4-deciding: write + mandatory read-back" (Some 4.0)
    (Report.first_decision_time report);
  Alcotest.(check int) "everyone eventually decides" n (Report.decided_count report)

let test_n_equals_f_plus_one () =
  let n = 2 and m = 3 in
  let faults = [ Fault.Crash_process { pid = 1; at = 0.0 } ] in
  let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check int) "survivor decides alone" 1 (Report.decided_count report)

let test_minority_disk_crash () =
  let n = 3 and m = 3 in
  let faults = [ Fault.Crash_memory { mid = 1; at = 0.0 } ] in
  let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "decides with 2/3 disks" true (Report.decided_count report >= 1)

let test_majority_disk_crash_blocks () =
  let n = 3 and m = 3 in
  let faults =
    [ Fault.Crash_memory { mid = 0; at = 0.0 }; Fault.Crash_memory { mid = 1; at = 0.0 } ]
  in
  let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check int) "no decision without disk majority" 0
    (Report.decided_count report)

let test_leader_crash_sweep () =
  List.iter
    (fun at ->
      let n = 3 and m = 3 in
      let faults = [ Fault.Crash_process { pid = 0; at } ] in
      let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement (leader crash at %.2f)" at)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "validity (leader crash at %.2f)" at)
        true
        (Report.validity_ok report ~inputs:(inputs n));
      Alcotest.(check bool)
        (Printf.sprintf "survivors decide (crash at %.2f)" at)
        true
        (Report.decided_count report >= 2))
    [ 0.5; 1.5; 2.5; 3.5; 4.5 ]

let test_dueling_leaders_safe () =
  let n = 3 and m = 3 in
  let faults =
    [
      Fault.Set_leader { pid = 1; at = 2.0 };
      Fault.Set_leader { pid = 2; at = 6.0 };
      Fault.Set_leader { pid = 0; at = 12.0 };
    ]
  in
  let report = Disk_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement under dueling leaders" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n))

let test_never_two_deciding () =
  (* Theorem 6.1's empirical face: across seeds, static-permission Disk
     Paxos never decides in fewer than 4 delays. *)
  List.iter
    (fun seed ->
      let n = 3 and m = 3 in
      let report = Disk_paxos.run ~seed ~n ~m ~inputs:(inputs n) () in
      match Report.first_decision_time report with
      | Some t ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d decides in >= 4 delays" seed)
            true (t >= 4.0)
      | None -> Alcotest.fail "no decision")
    [ 1; 2; 3; 4; 5 ]

let suite =
  [
    Alcotest.test_case "common case takes 4 delays" `Quick test_common_case_four_delays;
    Alcotest.test_case "n = f+1 resilience" `Quick test_n_equals_f_plus_one;
    Alcotest.test_case "minority disk crash tolerated" `Quick test_minority_disk_crash;
    Alcotest.test_case "majority disk crash blocks" `Quick test_majority_disk_crash_blocks;
    Alcotest.test_case "leader crash sweep" `Quick test_leader_crash_sweep;
    Alcotest.test_case "dueling leaders stay safe" `Quick test_dueling_leaders_safe;
    Alcotest.test_case "never 2-deciding (Theorem 6.1)" `Quick test_never_two_deciding;
  ]
