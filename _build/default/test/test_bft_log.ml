(* The Byzantine-tolerant replicated log (Fast & Robust per slot):
   per-slot agreement, 2-delay appends, cross-slot isolation, Byzantine
   leaders and followers, memory crashes. *)

open Rdma_consensus
open Rdma_smr

let input_for ~pid ~slot = Printf.sprintf "c%d.%d" pid slot

let cfg slots = { Bft_log.default_config with slots }

let test_common_case_appends () =
  let n = 3 and m = 3 and slots = 3 in
  let reports, _ = Bft_log.run ~cfg:(cfg slots) ~n ~m ~input_for () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at slot %d" i)
        true (Report.agreement_ok report);
      Alcotest.(check int)
        (Printf.sprintf "all replicas decide slot %d" i)
        n (Report.decided_count report);
      (* the leader appends slot i at 2(i+1) — pipelined 2-delay appends *)
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "slot %d appended at %d delays" i (2 * (i + 1)))
        (Some (2.0 *. float_of_int (i + 1)))
        (Report.first_decision_time report);
      Alcotest.(check (option string))
        (Printf.sprintf "leader's command at slot %d" i)
        (Some (Printf.sprintf "c0.%d" i))
        (Report.decision_value report))
    reports

let test_byzantine_follower () =
  let n = 3 and m = 3 and slots = 2 in
  let byzantine = [ (2, fun _ -> ()) ] in
  let reports, byz = Bft_log.run ~cfg:(cfg slots) ~n ~m ~input_for ~byzantine () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at slot %d with silent follower" i)
        true
        (Report.agreement_ok ~ignore_pids:byz report);
      Alcotest.(check bool)
        (Printf.sprintf "correct replicas decide slot %d" i)
        true
        (Report.decided_count report >= 2))
    reports

let test_byzantine_leader_slow_path () =
  (* A fully Byzantine (silent) leader: every slot must go through the
     backup path, and correct replicas must agree slot by slot on honest
     inputs. *)
  let n = 3 and m = 3 and slots = 2 in
  let base =
    { Fast_robust.default_config with
      cheap_quorum = { Cheap_quorum.default_config with fast_timeout = 30.0 } }
  in
  let cfg = { Bft_log.slots; base } in
  let byzantine = [ (0, fun _ -> ()) ] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let reports, byz = Bft_log.run ~cfg ~n ~m ~input_for ~byzantine ~faults () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at slot %d under Byzantine leader" i)
        true
        (Report.agreement_ok ~ignore_pids:byz report);
      Alcotest.(check bool)
        (Printf.sprintf "correct replicas decide slot %d" i)
        true
        (Report.decided_count report >= 2);
      match Report.decision_value report with
      | Some v ->
          Alcotest.(check bool)
            (Printf.sprintf "slot %d decided an honest input" i)
            true
            (v = Printf.sprintf "c1.%d" i || v = Printf.sprintf "c2.%d" i)
      | None -> Alcotest.fail "no decision")
    reports

let test_cross_slot_proof_replay_rejected () =
  (* Slot namespacing: a unanimity proof assembled in slot 0 must not
     verify in slot 1's namespace. *)
  let chain = Rdma_crypto.Keychain.create ~n:3 () in
  let ns0 = Bft_log.ns_of_slot 0 and ns1 = Bft_log.ns_of_slot 1 in
  let value = "replay-me" in
  let sigs =
    List.init 3 (fun q ->
        ( q,
          Rdma_crypto.Keychain.sign
            (Rdma_crypto.Keychain.signer chain q)
            (Cheap_quorum.value_payload ~ns:ns0 value) ))
  in
  let proof = Cheap_quorum.encode_proof ~value ~sigs in
  Alcotest.(check (option string)) "valid in its own slot" (Some value)
    (Cheap_quorum.verify_proof ~ns:ns0 chain ~n:3 proof);
  Alcotest.(check (option string)) "rejected in another slot" None
    (Cheap_quorum.verify_proof ~ns:ns1 chain ~n:3 proof);
  (* likewise for the leader's signature via the Definition 3 classifier *)
  let evidence = Codec.join2 "T" proof in
  Alcotest.(check int) "classifier demotes a replayed proof" 0
    (Fast_robust.classify ~ns:ns1 chain ~n:3 ~value ~evidence)

let test_leader_crash_mid_log () =
  let n = 3 and m = 3 and slots = 2 in
  let faults = [ Fault.Crash_process { pid = 0; at = 3.0 } ] in
  let reports, _ = Bft_log.run ~cfg:(cfg slots) ~n ~m ~input_for ~faults () in
  (* slot 0 was decided by p0 at 2.0 before the crash: its value must
     survive into every correct replica *)
  Alcotest.(check bool) "slot 0 agreement" true (Report.agreement_ok reports.(0));
  Alcotest.(check (option string)) "slot 0 value preserved" (Some "c0.0")
    (Report.decision_value reports.(0));
  Alcotest.(check bool) "slot 1 agreement" true (Report.agreement_ok reports.(1));
  Alcotest.(check bool) "slot 1 still decided by survivors" true
    (Report.decided_count reports.(1) >= 2)

let test_memory_crash () =
  let n = 3 and m = 5 and slots = 2 in
  let faults =
    [ Fault.Crash_memory { mid = 1; at = 0.0 }; Fault.Crash_memory { mid = 3; at = 0.0 } ]
  in
  let reports, _ = Bft_log.run ~cfg:(cfg slots) ~n ~m ~input_for ~faults () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "slot %d decided with 3/5 memories" i)
        true
        (Report.decided_count report = n))
    reports

let suite =
  [
    Alcotest.test_case "pipelined 2-delay appends" `Quick test_common_case_appends;
    Alcotest.test_case "silent Byzantine follower" `Quick test_byzantine_follower;
    Alcotest.test_case "Byzantine leader: every slot via backup" `Slow
      test_byzantine_leader_slow_path;
    Alcotest.test_case "cross-slot proof replay rejected" `Quick
      test_cross_slot_proof_replay_rejected;
    Alcotest.test_case "leader crash mid-log" `Quick test_leader_crash_mid_log;
    Alcotest.test_case "memory crashes tolerated" `Quick test_memory_crash;
  ]
