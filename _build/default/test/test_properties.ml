(* Property-based tests: safety invariants over randomized seeds, inputs
   and fault schedules, for every consensus algorithm and the replicated
   register. *)

open Rdma_consensus

let value_gen = QCheck2.Gen.(map (Printf.sprintf "val-%d") (0 -- 1000))

(* {2 Classic Paxos} *)

let paxos_random_crashes =
  QCheck2.Test.make ~name:"paxos: safety under random minority crashes" ~count:25
    QCheck2.Gen.(
      tup4 (1 -- 1000) (array_size (return 5) value_gen)
        (list_size (0 -- 2) (pair (0 -- 4) (float_range 0.0 12.0)))
        unit)
    (fun (seed, inputs, crashes, ()) ->
      let crashes =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) crashes
      in
      let faults =
        List.map (fun (pid, at) -> Fault.Crash_process { pid; at }) crashes
      in
      let report = Paxos.run ~seed ~n:5 ~inputs ~faults () in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

let paxos_always_terminates_without_faults =
  QCheck2.Test.make ~name:"paxos: all decide in failure-free runs" ~count:20
    QCheck2.Gen.(pair (1 -- 1000) (array_size (return 3) value_gen))
    (fun (seed, inputs) ->
      let report = Paxos.run ~seed ~n:3 ~inputs () in
      Report.decided_count report = 3 && Report.agreement_ok report)

(* {2 Protected Memory Paxos} *)

let pmp_random_mixed_faults =
  QCheck2.Test.make
    ~name:"protected-paxos: safety under random process+memory crashes" ~count:25
    QCheck2.Gen.(
      tup4 (1 -- 1000)
        (array_size (return 4) value_gen)
        (list_size (0 -- 3) (pair (0 -- 3) (float_range 0.0 10.0)))
        (list_size (0 -- 2) (pair (0 -- 4) (float_range 0.0 10.0)))
      )
    (fun (seed, inputs, pcrashes, mcrashes) ->
      let pcrashes = List.sort_uniq (fun (a, _) (b, _) -> compare a b) pcrashes in
      let mcrashes = List.sort_uniq (fun (a, _) (b, _) -> compare a b) mcrashes in
      let faults =
        List.map (fun (pid, at) -> Fault.Crash_process { pid; at }) pcrashes
        @ List.map (fun (mid, at) -> Fault.Crash_memory { mid; at }) mcrashes
      in
      let report = Protected_paxos.run ~seed ~n:4 ~m:5 ~inputs ~faults () in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

let pmp_leader_changes =
  QCheck2.Test.make ~name:"protected-paxos: safety under random leader flapping"
    ~count:25
    QCheck2.Gen.(
      pair (1 -- 1000) (list_size (1 -- 4) (pair (0 -- 2) (float_range 0.0 20.0))))
    (fun (seed, changes) ->
      let inputs = [| "a"; "b"; "c" |] in
      let faults =
        List.map (fun (pid, at) -> Fault.Set_leader { pid; at }) changes
      in
      let report = Protected_paxos.run ~seed ~n:3 ~m:3 ~inputs ~faults () in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

(* {2 Disk Paxos} *)

let disk_paxos_random =
  QCheck2.Test.make ~name:"disk-paxos: safety under random faults" ~count:15
    QCheck2.Gen.(
      tup3 (1 -- 1000)
        (list_size (0 -- 1) (pair (0 -- 2) (float_range 0.0 10.0)))
        (list_size (0 -- 1) (pair (0 -- 2) (float_range 0.0 10.0))))
    (fun (seed, pcrashes, mcrashes) ->
      let inputs = [| "a"; "b"; "c" |] in
      let faults =
        List.map (fun (pid, at) -> Fault.Crash_process { pid; at }) pcrashes
        @ List.map (fun (mid, at) -> Fault.Crash_memory { mid; at }) mcrashes
      in
      let report = Disk_paxos.run ~seed ~n:3 ~m:3 ~inputs ~faults () in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

(* {2 Aligned Paxos} *)

let aligned_combined_minority =
  QCheck2.Test.make
    ~name:"aligned-paxos: decides under any random combined minority" ~count:15
    QCheck2.Gen.(
      tup3 (1 -- 1000) (0 -- 4) (0 -- 4)
      (* pick 2 of the 5 agents (n=3, m=2) to kill, by agent index *))
    (fun (seed, a1, a2) ->
      let n = 3 and m = 2 in
      let agents = List.sort_uniq compare [ a1; a2 ] in
      let faults =
        List.map
          (fun a ->
            if a < n then Fault.Crash_process { pid = a; at = 0.0 }
            else Fault.Crash_memory { mid = a - n; at = 0.0 })
          agents
      in
      let inputs = [| "a"; "b"; "c" |] in
      let report = Aligned_paxos.run ~seed ~n ~m ~inputs ~faults () in
      Report.agreement_ok report
      && Report.validity_ok report ~inputs
      && (* liveness: unless every process died, someone decides *)
      (List.for_all (fun a -> a < n) agents && List.length agents = n
      || Report.decided_count report >= 1))

(* {2 Fast Paxos} *)

let fast_paxos_collisions =
  QCheck2.Test.make ~name:"fast-paxos: safety under random proposal staggering"
    ~count:20
    QCheck2.Gen.(pair (1 -- 1000) (float_range 0.0 3.0))
    (fun (seed, stagger) ->
      let cfg = { Fast_paxos.default_config with proposer_stagger = stagger } in
      let inputs = [| "a"; "b"; "c" |] in
      let report = Fast_paxos.run ~cfg ~seed ~n:3 ~inputs () in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

(* {2 Fast & Robust} *)

let fast_robust_crash_times =
  QCheck2.Test.make
    ~name:"fast-robust: composition safety under random follower crash" ~count:10
    QCheck2.Gen.(tup3 (1 -- 1000) (1 -- 2) (float_range 0.0 10.0))
    (fun (seed, pid, at) ->
      let inputs = [| "v0"; "v1"; "v2" |] in
      let faults = [ Fault.Crash_process { pid; at } ] in
      let report, _, _ = Fast_robust.run ~seed ~n:3 ~m:3 ~inputs ~faults () in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

(* {2 The replicated SWMR register} *)

let swmr_regular_semantics =
  QCheck2.Test.make
    ~name:"swmr: non-overlapping reads return the last completed write" ~count:40
    QCheck2.Gen.(pair (1 -- 1000) (list_size (1 -- 6) value_gen))
    (fun (seed, writes) ->
      let open Rdma_sim in
      let open Rdma_mem in
      let engine = Engine.create ~seed () in
      let stats = Stats.create () in
      let memories = Array.init 3 (fun mid -> Memory.create ~engine ~stats ~mid ()) in
      Array.iter
        (fun mem ->
          Memory.add_region mem ~name:"r" ~perm:(Permission.swmr ~writer:0 ~n:2)
            ~registers:[ "x" ])
        memories;
      let w = Rdma_reg.Swmr.attach ~client:(Memclient.create ~pid:0 ~memories) ~region:"r" in
      let r = Rdma_reg.Swmr.attach ~client:(Memclient.create ~pid:1 ~memories) ~region:"r" in
      let ok = ref true in
      ignore
        (Engine.spawn engine "writer-reader" (fun () ->
             List.iter
               (fun v ->
                 ignore (Rdma_reg.Swmr.write w ~reg:"x" v);
                 (* the read starts strictly after the write completed *)
                 let seen = Rdma_reg.Swmr.read r ~reg:"x" in
                 if seen <> Some v then ok := false)
               writes));
      Engine.run engine;
      !ok)

(* {2 Message reordering: the model's links are not FIFO} *)

let reordering_safety algo_name run =
  QCheck2.Test.make
    ~name:(algo_name ^ ": safety under random message latencies (reordering)")
    ~count:15
    QCheck2.Gen.(tup3 (1 -- 1000) (float_range 0.5 1.0) (float_range 1.5 6.0))
    (fun (seed, lo, hi) ->
      let inputs = [| "a"; "b"; "c" |] in
      let faults = [ Fault.Random_latency { min = lo; max = hi } ] in
      let report = run ~seed ~inputs ~faults in
      Report.agreement_ok report && Report.validity_ok report ~inputs)

let paxos_reordering =
  reordering_safety "paxos" (fun ~seed ~inputs ~faults ->
      Paxos.run ~seed ~n:3 ~inputs ~faults ())

let fast_paxos_reordering =
  reordering_safety "fast-paxos" (fun ~seed ~inputs ~faults ->
      Fast_paxos.run ~seed ~n:3 ~inputs ~faults ())

let aligned_reordering =
  reordering_safety "aligned-paxos" (fun ~seed ~inputs ~faults ->
      Aligned_paxos.run ~seed ~n:3 ~m:2 ~inputs ~faults ())

let pmp_reordering =
  reordering_safety "protected-paxos" (fun ~seed ~inputs ~faults ->
      Protected_paxos.run ~seed ~n:3 ~m:3 ~inputs ~faults ())

(* {2 Non-equivocating broadcast: property 2 under a randomized
   overwrite attack} *)

let neb_no_divergence =
  QCheck2.Test.make
    ~name:"neb: no two correct processes deliver different values" ~count:12
    QCheck2.Gen.(pair (1 -- 1000) (float_range 0.5 20.0))
    (fun (seed, overwrite_after) ->
      let open Rdma_mm in
      let open Rdma_sim in
      let cluster : string Cluster.t = Cluster.create ~seed ~n:3 ~m:3 () in
      let cfg = { Neb.default_config with give_up_at = 120.0; poll_interval = 1.0 } in
      Neb.setup_regions cluster ~max_seq:cfg.Neb.max_seq ();
      let delivered = Array.make 3 None in
      Cluster.spawn_byzantine cluster ~pid:0 (fun ctx ->
          let own =
            Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of 0)
          in
          let slot = Neb.slot_reg ~owner:0 ~k:1 ~src:0 in
          let signed m =
            Neb.encode_slot ~k:1 ~msg:m
              ~signature:
                (Rdma_crypto.Keychain.sign ctx.Cluster.signer (Neb.slot_payload ~k:1 m))
          in
          ignore (Rdma_reg.Swmr.write own ~reg:slot (signed "black"));
          Engine.sleep overwrite_after;
          ignore (Rdma_reg.Swmr.write own ~reg:slot (signed "white")));
      for pid = 1 to 2 do
        Cluster.spawn cluster ~pid (fun ctx ->
            let neb =
              Neb.create ctx ~cfg
                ~deliver:(fun ~k:_ ~msg ~src ->
                  if src = 0 then delivered.(pid) <- Some msg)
                ()
            in
            Neb.spawn_poller ctx neb)
      done;
      Cluster.run cluster;
      match (delivered.(1), delivered.(2)) with
      | Some v1, Some v2 -> String.equal v1 v2
      | _ -> true)

(* {2 The replicated log: acked commands survive a random leader crash} *)

let smr_no_lost_acks =
  QCheck2.Test.make ~name:"smr: acked commands survive random leader crashes"
    ~count:10
    QCheck2.Gen.(tup3 (1 -- 1000) (float_range 1.0 20.0) (2 -- 5))
    (fun (seed, crash_at, n_cmds) ->
      let open Rdma_mm in
      let open Rdma_smr in
      let cfg =
        { Smr_log.default_config with replicas = 3; max_entries = 32;
          serve_until = 400.0 }
      in
      let cluster : string Cluster.t =
        Cluster.create ~seed ~legal_change:(Smr_log.legal_change cfg)
          ~n:(cfg.Smr_log.replicas + 1) ~m:3 ()
      in
      Smr_log.setup_regions cluster cfg;
      let replicas =
        Array.init cfg.Smr_log.replicas (fun pid ->
            Smr_log.spawn_replica cluster ~cfg ~pid ())
      in
      let acked = ref [] in
      Cluster.spawn cluster ~pid:3 (fun ctx ->
          for seq = 0 to n_cmds - 1 do
            let cmd = Printf.sprintf "cmd%d" seq in
            match Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:200.0 with
            | Some index -> acked := (index, cmd) :: !acked
            | None -> ()
          done);
      Cluster.crash_process_at cluster ~at:crash_at 0;
      Cluster.run cluster;
      let l1 = Smr_log.applied_entries replicas.(1) in
      let l2 = Smr_log.applied_entries replicas.(2) in
      let is_prefix a b =
        let rec go a b =
          match (a, b) with
          | [], _ -> true
          | x :: a', y :: b' -> x = y && go a' b'
          | _, [] -> false
        in
        if List.length a <= List.length b then go a b else go b a
      in
      let longest = if List.length l1 >= List.length l2 then l1 else l2 in
      is_prefix l1 l2
      && List.for_all (fun entry -> List.mem entry longest) !acked)

(* {2 Lock service: determinism of the state machine} *)

let lock_service_deterministic =
  QCheck2.Test.make ~name:"lock-service: same commands => same state" ~count:100
    QCheck2.Gen.(
      list_size (0 -- 30)
        (tup3 (oneofl [ "A"; "B" ]) (oneofl [ "x"; "y"; "z" ]) bool))
    (fun script ->
      let open Rdma_smr in
      let commands =
        List.map
          (fun (lock, owner, acquire) ->
            if acquire then Lock_service.Acquire { lock; owner }
            else Lock_service.Release { lock; owner })
          script
      in
      let run () =
        let t = Lock_service.create () in
        List.iter (Lock_service.apply t) commands;
        (Lock_service.grant_history t, Lock_service.holder t "A",
         Lock_service.holder t "B")
      in
      run () = run ())

(* {2 Determinism of whole simulations} *)

let simulation_determinism =
  QCheck2.Test.make ~name:"whole runs replay bit-identically from the seed"
    ~count:10
    QCheck2.Gen.(pair (1 -- 1000) (float_range 0.0 8.0))
    (fun (seed, crash_at) ->
      let run () =
        let faults = [ Fault.Crash_process { pid = 0; at = crash_at } ] in
        let r = Protected_paxos.run ~seed ~n:3 ~m:3 ~inputs:[| "a"; "b"; "c" |] ~faults () in
        ( Array.map (Option.map (fun d -> (d.Report.value, d.Report.at))) r.Report.decisions,
          r.Report.mem_ops, r.Report.messages, r.Report.sim_steps )
      in
      run () = run ())

(* {2 BFT log: per-slot safety under random follower crashes} *)

let bft_log_random_crash =
  QCheck2.Test.make ~name:"bft-log: per-slot safety under random follower crash"
    ~count:6
    QCheck2.Gen.(tup3 (1 -- 1000) (1 -- 2) (float_range 0.0 30.0))
    (fun (seed, pid, at) ->
      let cfg = { Rdma_smr.Bft_log.default_config with slots = 2 } in
      let faults = [ Fault.Crash_process { pid; at } ] in
      let reports, _ =
        Rdma_smr.Bft_log.run ~cfg ~seed ~n:3 ~m:3
          ~input_for:(fun ~pid ~slot -> Printf.sprintf "c%d.%d" pid slot)
          ~faults ()
      in
      Array.for_all Report.agreement_ok reports)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      paxos_random_crashes;
      paxos_always_terminates_without_faults;
      pmp_random_mixed_faults;
      pmp_leader_changes;
      disk_paxos_random;
      aligned_combined_minority;
      fast_paxos_collisions;
      fast_robust_crash_times;
      swmr_regular_semantics;
      paxos_reordering;
      fast_paxos_reordering;
      aligned_reordering;
      pmp_reordering;
      neb_no_divergence;
      smr_no_lost_acks;
      lock_service_deterministic;
      simulation_determinism;
      bft_log_random_crash;
    ]
