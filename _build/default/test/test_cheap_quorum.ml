(* Cheap Quorum (Algorithms 4+5): 2-delay fast path, panic mode, abort
   values with Definition 3 evidence, and the agreement lemmas 4.5/4.6. *)

open Rdma_sim
open Rdma_mm
open Rdma_consensus

let cq_cfg = { Cheap_quorum.default_config with fast_timeout = 60.0 }

let build ?(seed = 1) ~n ~m () =
  let cluster : string Cluster.t =
    Cluster.create ~seed ~legal_change:(Cheap_quorum.legal_change ~n) ~n ~m ()
  in
  Cheap_quorum.setup_regions cluster;
  cluster

(* Run Cheap Quorum alone, collecting per-process outcomes. *)
let run_cq ?(seed = 1) ?(byzantine = []) ?(faults = []) ~n ~m ~inputs () =
  let cluster = build ~seed ~n ~m () in
  let outcomes = Array.make n None in
  for pid = 0 to n - 1 do
    match List.assoc_opt pid byzantine with
    | Some behaviour -> Cluster.spawn_byzantine cluster ~pid behaviour
    | None ->
        Cluster.spawn cluster ~pid (fun ctx ->
            outcomes.(pid) <-
              Some (Cheap_quorum.participate ctx ~cfg:cq_cfg ~input:inputs.(pid) ()))
  done;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  (outcomes, cluster)

let decided_value = function
  | Some (Cheap_quorum.Decided { value; _ }) -> Some value
  | _ -> None

let aborted_value = function
  | Some (Cheap_quorum.Aborted { value; _ }) -> Some value
  | _ -> None

let test_common_case_all_decide () =
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "y" |] in
  let outcomes, _ = run_cq ~n ~m ~inputs () in
  Array.iteri
    (fun pid o ->
      Alcotest.(check (option string))
        (Printf.sprintf "p%d decides the leader's value" pid)
        (Some "L") (decided_value o))
    outcomes

let test_leader_decides_in_two_delays () =
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "y" |] in
  let outcomes, _ = run_cq ~n ~m ~inputs () in
  match outcomes.(0) with
  | Some (Cheap_quorum.Decided { at; _ }) ->
      Alcotest.(check (float 0.0)) "leader decision after one replicated write" 2.0 at
  | _ -> Alcotest.fail "leader did not decide"

let test_one_signature_on_fast_path () =
  (* Section 4.2: the fast decision requires one signature — the
     leader's.  The followers here are correct but arbitrarily slow
     (asynchrony), so the only signature in the system at decision time
     is the leader's own. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let sigs_at_decide = ref (-1) in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      match Cheap_quorum.participate ctx ~cfg:cq_cfg ~input:"L" () with
      | Cheap_quorum.Decided _ ->
          if !sigs_at_decide < 0 then
            sigs_at_decide := ctx.Cluster.ctx_stats.Rdma_sim.Stats.signatures
      | _ -> ());
  for pid = 1 to n - 1 do
    Cluster.spawn cluster ~pid (fun _ctx -> ())
  done;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Alcotest.(check int) "exactly one signature before the fast decision" 1 !sigs_at_decide

let test_follower_decisions_have_unanimity_proofs () =
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "y" |] in
  let outcomes, cluster = run_cq ~n ~m ~inputs () in
  let chain = Cluster.keychain cluster in
  for pid = 1 to n - 1 do
    match outcomes.(pid) with
    | Some (Cheap_quorum.Decided { proof = Cheap_quorum.Unanimity p; value; _ }) ->
        Alcotest.(check (option string))
          (Printf.sprintf "p%d's proof verifies" pid)
          (Some value)
          (Cheap_quorum.verify_proof chain ~n p)
    | _ -> Alcotest.failf "p%d should decide with a unanimity proof" pid
  done

let test_silent_leader_all_abort () =
  let n = 3 and m = 3 in
  let inputs = [| "unused"; "x"; "y" |] in
  let byzantine = [ (0, Attacks.cq_silent_leader) ] in
  let outcomes, _ = run_cq ~n ~m ~inputs ~byzantine () in
  for pid = 1 to n - 1 do
    match outcomes.(pid) with
    | Some (Cheap_quorum.Aborted { value; proof = Cheap_quorum.Bare }) ->
        Alcotest.(check string)
          (Printf.sprintf "p%d aborts with its own input" pid)
          inputs.(pid) value
    | _ -> Alcotest.failf "p%d should abort bare" pid
  done

let test_equivocating_leader_all_abort () =
  (* The leader plants different signed values on different replicas:
     majority reads return ⊥ and followers abort with their inputs. *)
  let n = 3 and m = 3 in
  let inputs = [| "unused"; "x"; "y" |] in
  let byzantine = [ (0, Attacks.cq_equivocating_leader ~v1:"black" ~v2:"white") ] in
  let outcomes, _ = run_cq ~n ~m ~inputs ~byzantine () in
  for pid = 1 to n - 1 do
    match outcomes.(pid) with
    | Some (Cheap_quorum.Decided { value; _ }) ->
        Alcotest.failf "p%d decided %s despite equivocation" pid value
    | Some (Cheap_quorum.Aborted _) -> ()
    | None -> Alcotest.failf "p%d has no outcome" pid
  done

let test_forged_leader_signature_rejected () =
  let n = 3 and m = 3 in
  let inputs = [| "unused"; "x"; "y" |] in
  let byzantine = [ (0, Attacks.cq_forging_leader ~value:"fake") ] in
  let outcomes, _ = run_cq ~n ~m ~inputs ~byzantine () in
  for pid = 1 to n - 1 do
    match outcomes.(pid) with
    | Some (Cheap_quorum.Decided _) -> Alcotest.failf "p%d accepted a forged proposal" pid
    | Some (Cheap_quorum.Aborted { value; _ }) ->
        Alcotest.(check bool)
          (Printf.sprintf "p%d never aborts with the forged value" pid)
          true (value <> "fake")
    | None -> Alcotest.failf "p%d has no outcome" pid
  done

let test_early_revocation_leader_panics () =
  (* Lemma: if the leader's permission is revoked before its write lands,
     the write naks and the leader panics instead of deciding. *)
  let n = 3 and m = 3 in
  let cluster = build ~n ~m () in
  let outcome = ref None in
  (* the revoker acts at t=0; delay the leader so the revocation wins *)
  Cluster.spawn_byzantine cluster ~pid:1 Attacks.cq_early_revoker;
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      Engine.sleep 6.0;
      outcome := Some (Cheap_quorum.participate ctx ~cfg:cq_cfg ~input:"L" ()));
  Cluster.spawn cluster ~pid:2 (fun ctx ->
      ignore (Cheap_quorum.participate ctx ~cfg:cq_cfg ~input:"z" ()));
  Cluster.run cluster;
  Cluster.check_errors cluster;
  match !outcome with
  | Some (Cheap_quorum.Aborted _) -> ()
  | Some (Cheap_quorum.Decided { value; _ }) ->
      Alcotest.failf "leader decided %s after revocation" value
  | None -> Alcotest.fail "leader has no outcome"

let test_permission_theft_refused () =
  (* legalChange only admits making the leader region read-only: a thief
     requesting write access for itself is refused, and the protocol is
     undisturbed. *)
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "unused" |] in
  let byzantine = [ (2, Attacks.cq_permission_thief ~then_:(fun _ -> ())) ] in
  let outcomes, _ = run_cq ~n ~m ~inputs ~byzantine () in
  Alcotest.(check (option string)) "leader still decides" (Some "L")
    (decided_value outcomes.(0))

let test_abort_agreement_with_leader_decision () =
  (* Lemma 4.6: leader decides, then a follower crash prevents unanimity;
     the other followers abort with the leader's value. *)
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "y" |] in
  let faults = [ Fault.Crash_process { pid = 2; at = 1.0 } ] in
  let outcomes, _ = run_cq ~n ~m ~inputs ~faults () in
  Alcotest.(check (option string)) "leader decided" (Some "L") (decided_value outcomes.(0));
  match outcomes.(1) with
  | Some (Cheap_quorum.Decided { value; _ }) | Some (Cheap_quorum.Aborted { value; _ })
    ->
      Alcotest.(check string) "follower's outcome carries the leader's value" "L" value
  | None -> Alcotest.fail "follower has no outcome"

let test_abort_value_priorities () =
  (* After a panic caused by a crashed follower, surviving followers
     abort with M or T evidence for the leader's value — never Bare. *)
  let n = 3 and m = 3 in
  let inputs = [| "L"; "x"; "y" |] in
  let faults = [ Fault.Crash_process { pid = 2; at = 1.0 } ] in
  let outcomes, cluster = run_cq ~n ~m ~inputs ~faults () in
  let chain = Cluster.keychain cluster in
  match outcomes.(1) with
  | Some (Cheap_quorum.Aborted { value; proof }) -> (
      Alcotest.(check string) "value is the leader's" "L" value;
      match proof with
      | Cheap_quorum.Bare -> Alcotest.fail "abort evidence should cite the leader"
      | Cheap_quorum.Leader_signed s ->
          Alcotest.(check bool) "leader signature valid" true
            (Rdma_crypto.Keychain.valid chain ~author:0
               (Cheap_quorum.value_payload value) s)
      | Cheap_quorum.Unanimity p ->
          Alcotest.(check (option string)) "unanimity proof valid" (Some value)
            (Cheap_quorum.verify_proof chain ~n p))
  | Some (Cheap_quorum.Decided _) -> () (* also fine: decided before noticing *)
  | None -> Alcotest.fail "follower has no outcome"

let test_memory_crash_tolerated () =
  let n = 3 and m = 5 in
  let inputs = [| "L"; "x"; "y" |] in
  let faults =
    [ Fault.Crash_memory { mid = 1; at = 0.0 }; Fault.Crash_memory { mid = 3; at = 0.0 } ]
  in
  let outcomes, _ = run_cq ~n ~m ~inputs ~faults () in
  Alcotest.(check (option string)) "leader decides with 3/5 memories" (Some "L")
    (decided_value outcomes.(0));
  for pid = 1 to n - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "p%d decides with 3/5 memories" pid)
      (Some "L") (decided_value outcomes.(pid))
  done

let test_decision_agreement_lemma () =
  (* Lemma 4.5 across seeds and fault timings: no two correct processes
     ever decide differently. *)
  List.iter
    (fun (seed, at) ->
      let n = 3 and m = 3 in
      let inputs = [| "L"; "x"; "y" |] in
      let faults = [ Fault.Crash_process { pid = 1; at } ] in
      let outcomes, _ = run_cq ~seed ~n ~m ~inputs ~faults () in
      let decided =
        Array.to_list outcomes |> List.filter_map decided_value
        |> List.sort_uniq String.compare
      in
      Alcotest.(check bool)
        (Printf.sprintf "decision agreement (seed %d, crash at %.1f)" seed at)
        true
        (List.length decided <= 1))
    [ (1, 0.5); (2, 1.5); (3, 2.5); (4, 4.0); (5, 8.0) ]

let suite =
  [
    Alcotest.test_case "common case: all decide leader's value" `Quick
      test_common_case_all_decide;
    Alcotest.test_case "leader decides in 2 delays" `Quick
      test_leader_decides_in_two_delays;
    Alcotest.test_case "one signature on the fast path" `Quick
      test_one_signature_on_fast_path;
    Alcotest.test_case "follower decisions carry unanimity proofs" `Quick
      test_follower_decisions_have_unanimity_proofs;
    Alcotest.test_case "silent leader: followers abort bare" `Quick
      test_silent_leader_all_abort;
    Alcotest.test_case "equivocating leader contained" `Quick
      test_equivocating_leader_all_abort;
    Alcotest.test_case "forged leader signature rejected" `Quick
      test_forged_leader_signature_rejected;
    Alcotest.test_case "early revocation makes leader panic" `Quick
      test_early_revocation_leader_panics;
    Alcotest.test_case "permission theft refused by legalChange" `Quick
      test_permission_theft_refused;
    Alcotest.test_case "abort agreement (Lemma 4.6)" `Quick
      test_abort_agreement_with_leader_decision;
    Alcotest.test_case "abort evidence classes (Definition 3)" `Quick
      test_abort_value_priorities;
    Alcotest.test_case "minority memory crash tolerated" `Quick test_memory_crash_tolerated;
    Alcotest.test_case "decision agreement sweep (Lemma 4.5)" `Quick
      test_decision_agreement_lemma;
  ]
