(* The lock-service state machine, standalone and replicated over the
   protected-memory log. *)

open Rdma_sim
open Rdma_mm
open Rdma_smr

let acq l o = Lock_service.Acquire { lock = l; owner = o }

let rel l o = Lock_service.Release { lock = l; owner = o }

let test_grant_and_release () =
  let t = Lock_service.create () in
  Lock_service.apply t (acq "L" "alice");
  (match Lock_service.holder t "L" with
  | Some ("alice", 1) -> ()
  | _ -> Alcotest.fail "alice should hold L with token 1");
  Lock_service.apply t (rel "L" "alice");
  Alcotest.(check bool) "released" true (Lock_service.holder t "L" = None)

let test_fifo_handover () =
  let t = Lock_service.create () in
  Lock_service.apply t (acq "L" "alice");
  Lock_service.apply t (acq "L" "bob");
  Lock_service.apply t (acq "L" "carol");
  Alcotest.(check (list string)) "queue order" [ "bob"; "carol" ]
    (Lock_service.waiting t "L");
  Lock_service.apply t (rel "L" "alice");
  (match Lock_service.holder t "L" with
  | Some ("bob", 2) -> ()
  | _ -> Alcotest.fail "bob should inherit with token 2");
  Lock_service.apply t (rel "L" "bob");
  match Lock_service.holder t "L" with
  | Some ("carol", 3) -> ()
  | _ -> Alcotest.fail "carol should inherit with token 3"

let test_fencing_tokens_strictly_increase () =
  let t = Lock_service.create () in
  List.iter (Lock_service.apply t)
    [ acq "A" "x"; acq "B" "y"; rel "A" "x"; acq "A" "z"; rel "B" "y"; acq "B" "x" ];
  let tokens = List.map (fun (_, _, tok) -> tok) (Lock_service.grant_history t) in
  let rec strictly_increasing = function
    | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "tokens strictly increase" true (strictly_increasing tokens)

let test_bogus_release_ignored () =
  let t = Lock_service.create () in
  Lock_service.apply t (acq "L" "alice");
  Lock_service.apply t (rel "L" "mallory");
  (match Lock_service.holder t "L" with
  | Some ("alice", _) -> ()
  | _ -> Alcotest.fail "foreign release must be a no-op");
  Lock_service.apply t (rel "Z" "anyone");
  Alcotest.(check bool) "release of unknown lock harmless" true
    (Lock_service.holder t "Z" = None)

let test_reentrant_acquire_noop () =
  let t = Lock_service.create () in
  Lock_service.apply t (acq "L" "alice");
  Lock_service.apply t (acq "L" "alice");
  Alcotest.(check (list string)) "no self-queue" [] (Lock_service.waiting t "L");
  Lock_service.apply t (rel "L" "alice");
  Alcotest.(check bool) "fully released" true (Lock_service.holder t "L" = None)

(* Replicated: two clients compete for a lock through the log; all
   replicas agree on the grant sequence, even across a leader crash. *)
let test_replicated_lock_service () =
  let cfg =
    { Smr_log.default_config with replicas = 3; max_entries = 32; serve_until = 500.0 }
  in
  let n = cfg.Smr_log.replicas + 2 in
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:(Smr_log.legal_change cfg) ~n ~m:3 ()
  in
  Smr_log.setup_regions cluster cfg;
  let replicas =
    Array.init cfg.Smr_log.replicas (fun pid -> Smr_log.spawn_replica cluster ~cfg ~pid ())
  in
  let submit_all ctx cmds =
    List.iteri
      (fun seq cmd ->
        ignore
          (Smr_log.submit ctx ~cfg ~seq ~cmd:(Lock_service.encode_command cmd)
             ~timeout:250.0))
      cmds
  in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      submit_all ctx [ acq "L" "alice"; rel "L" "alice"; acq "L" "alice" ]);
  Cluster.spawn cluster ~pid:4 (fun ctx ->
      Engine.sleep 1.0;
      submit_all ctx [ acq "L" "bob"; acq "M" "bob" ]);
  (* crash the leader mid-stream *)
  Cluster.crash_process_at cluster ~at:7.0 0;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let s1 = Lock_service.of_log (Smr_log.applied_entries replicas.(1)) in
  let s2 = Lock_service.of_log (Smr_log.applied_entries replicas.(2)) in
  Alcotest.(check bool) "replicas agree on grant history" true
    (Lock_service.grant_history s1 = Lock_service.grant_history s2);
  Alcotest.(check bool) "M granted to bob" true
    (match Lock_service.holder s1 "M" with Some ("bob", _) -> true | _ -> false);
  (* L's final holder depends on interleaving but must be alice or bob,
     consistently *)
  Alcotest.(check bool) "L held by a real client" true
    (match Lock_service.holder s1 "L" with
    | Some (("alice" | "bob"), _) -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "grant and release" `Quick test_grant_and_release;
    Alcotest.test_case "FIFO handover with tokens" `Quick test_fifo_handover;
    Alcotest.test_case "fencing tokens strictly increase" `Quick
      test_fencing_tokens_strictly_increase;
    Alcotest.test_case "foreign release ignored" `Quick test_bogus_release_ignored;
    Alcotest.test_case "reentrant acquire is a no-op" `Quick test_reentrant_acquire_noop;
    Alcotest.test_case "replicated locks survive leader crash" `Quick
      test_replicated_lock_service;
  ]
