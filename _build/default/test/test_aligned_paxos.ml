(* Aligned Paxos (Section 5.2): tolerates any minority of the combined
   process+memory agent set, in both memory-agent modes. *)

open Rdma_consensus

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let disk_cfg = { Aligned_paxos.default_config with mode = Aligned_paxos.Disk }

let test_no_failures () =
  let n = 3 and m = 2 in
  let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n));
  Alcotest.(check int) "all decide" n (Report.decided_count report)

let test_disk_mode_no_failures () =
  let n = 3 and m = 2 in
  let report = Aligned_paxos.run ~cfg:disk_cfg ~n ~m ~inputs:(inputs n) () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check int) "all decide (disk mode)" n (Report.decided_count report)

let combined_minority_cases =
  (* (n, m, crashed processes, crashed memories): total agents 5, any 2
     may fail. *)
  [
    (3, 2, [ 1; 2 ], []);
    (3, 2, [ 1 ], [ 0 ]);
    (3, 2, [], [ 0; 1 ]);
    (2, 3, [ 1 ], [ 0; 2 ]) (* 5 agents, 3 failures would block; here 3? no: 1+2=3 > minority — skip *);
  ]

let test_combined_minority () =
  List.iter
    (fun (n, m, crash_ps, crash_ms) ->
      let total = n + m in
      let failures = List.length crash_ps + List.length crash_ms in
      if failures <= (total - 1) / 2 && not (List.mem 0 crash_ps && n = 1) then begin
        let faults =
          List.map (fun pid -> Fault.Crash_process { pid; at = 0.0 }) crash_ps
          @ List.map (fun mid -> Fault.Crash_memory { mid; at = 0.0 }) crash_ms
        in
        let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
        Alcotest.(check bool)
          (Fmt.str "agreement n=%d m=%d kill p%a mu%a" n m
             Fmt.(list ~sep:comma int) crash_ps
             Fmt.(list ~sep:comma int) crash_ms)
          true (Report.agreement_ok report);
        Alcotest.(check bool)
          (Fmt.str "some survivor decides (n=%d m=%d)" n m)
          true
          (Report.decided_count report >= 1)
      end)
    combined_minority_cases

let test_majority_agents_dead_blocks () =
  (* 5 agents; kill 3 (1 process + 2 memories): must block. *)
  let n = 3 and m = 2 in
  let faults =
    [
      Fault.Crash_process { pid = 1; at = 0.0 };
      Fault.Crash_process { pid = 2; at = 0.0 };
      Fault.Crash_memory { mid = 0; at = 0.0 };
    ]
  in
  let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check int) "no decision without combined majority" 0
    (Report.decided_count report)

let test_memories_as_ballast () =
  (* n = 2 processes, m = 3 memories: both processes may be outvoted by
     memories — kill one process AND one memory (2 of 5 agents). *)
  let n = 2 and m = 3 in
  let faults =
    [ Fault.Crash_process { pid = 1; at = 0.0 }; Fault.Crash_memory { mid = 2; at = 0.0 } ]
  in
  let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "survivor decides" true (Report.decided_count report >= 1);
  Alcotest.(check bool) "validity" true (Report.validity_ok report ~inputs:(inputs n))

let test_leader_crash_failover () =
  let n = 3 and m = 2 in
  let faults = [ Fault.Crash_process { pid = 0; at = 3.0 } ] in
  let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report);
  Alcotest.(check bool) "survivors decide" true (Report.decided_count report >= 2)

let test_leader_crash_sweep_disk_mode () =
  List.iter
    (fun at ->
      let n = 3 and m = 2 in
      let faults = [ Fault.Crash_process { pid = 0; at } ] in
      let report = Aligned_paxos.run ~cfg:disk_cfg ~n ~m ~inputs:(inputs n) ~faults () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement (disk mode, crash at %.1f)" at)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "validity (disk mode, crash at %.1f)" at)
        true
        (Report.validity_ok report ~inputs:(inputs n)))
    [ 1.0; 2.0; 3.0; 5.0; 7.0 ]

let test_permission_mode_faster_than_disk_mode () =
  (* The ablation: permissions save the phase-2 read-back. *)
  let n = 3 and m = 2 in
  let rp = Aligned_paxos.run ~n ~m ~inputs:(inputs n) () in
  let rd = Aligned_paxos.run ~cfg:disk_cfg ~n ~m ~inputs:(inputs n) () in
  match (Report.first_decision_time rp, Report.first_decision_time rd) with
  | Some tp, Some td ->
      Alcotest.(check bool)
        (Printf.sprintf "permissions (%.1f) at least as fast as disk (%.1f)" tp td)
        true (tp <= td)
  | _ -> Alcotest.fail "one of the runs did not decide"

let suite =
  [
    Alcotest.test_case "no failures" `Quick test_no_failures;
    Alcotest.test_case "disk mode: no failures" `Quick test_disk_mode_no_failures;
    Alcotest.test_case "combined minority crashes tolerated" `Quick test_combined_minority;
    Alcotest.test_case "combined majority crash blocks" `Quick
      test_majority_agents_dead_blocks;
    Alcotest.test_case "memories count as agents" `Quick test_memories_as_ballast;
    Alcotest.test_case "leader crash failover" `Quick test_leader_crash_failover;
    Alcotest.test_case "disk-mode leader crash sweep" `Quick
      test_leader_crash_sweep_disk_mode;
    Alcotest.test_case "permissions beat read-back (ablation)" `Quick
      test_permission_mode_faster_than_disk_mode;
  ]
