(* Edge cases across the stack: simulator corner conditions, register
   namespaces, aligned-paxos value preservation, multi-instance and
   BFT-log properties under awkward schedules. *)

open Rdma_sim
open Rdma_consensus

(* {2 Simulator corners} *)

let test_cancel_then_fill () =
  (* A fiber cancelled while awaiting an ivar must not run when the ivar
     later fills. *)
  let eng = Engine.create () in
  let iv = Ivar.create () in
  let resumed = ref false in
  let fiber =
    Engine.spawn eng "waiter" (fun () ->
        ignore (Ivar.await iv);
        resumed := true)
  in
  Engine.schedule eng 1.0 (fun () -> Engine.cancel fiber);
  Engine.schedule eng 2.0 (fun () -> Ivar.fill iv 42);
  Engine.run eng;
  Alcotest.(check bool) "cancelled waiter never resumes" false !resumed

let test_nested_spawn_cancellation () =
  (* Cancelling a parent does not implicitly cancel fibers it spawned
     through the raw engine API (the *cluster* wires that up per
     process); both behaviours are checked. *)
  let eng = Engine.create () in
  let child_ran = ref false in
  let parent =
    Engine.spawn eng "parent" (fun () ->
        ignore
          (Engine.spawn eng "child" (fun () ->
               Engine.sleep 5.0;
               child_ran := true));
        Engine.sleep 100.0)
  in
  Engine.schedule eng 1.0 (fun () -> Engine.cancel parent);
  Engine.run eng;
  Alcotest.(check bool) "raw child fiber survives parent cancel" true !child_ran

let test_cluster_crash_kills_subfibers () =
  let open Rdma_mm in
  let cluster : string Cluster.t = Cluster.create ~n:1 ~m:0 () in
  let sub_ran = ref false in
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      ctx.Cluster.spawn_sub "late" (fun () ->
          Engine.sleep 5.0;
          sub_ran := true);
      Engine.sleep 100.0);
  Cluster.crash_process_at cluster ~at:1.0 0;
  Cluster.run cluster;
  Alcotest.(check bool) "cluster sub-fiber dies with its process" false !sub_ran

let test_zero_delay_ordering () =
  (* Same-time events run in scheduling order, transitively through
     yield. *)
  let eng = Engine.create () in
  let log = Buffer.create 16 in
  ignore
    (Engine.spawn eng "a" (fun () ->
         Buffer.add_string log "a1;";
         Engine.yield ();
         Buffer.add_string log "a2;"));
  ignore
    (Engine.spawn eng "b" (fun () ->
         Buffer.add_string log "b1;";
         Engine.yield ();
         Buffer.add_string log "b2;"));
  Engine.run eng;
  Alcotest.(check string) "deterministic interleaving" "a1;b1;a2;b2;"
    (Buffer.contents log)

let test_mailbox_drain () =
  let box = Mailbox.create () in
  Mailbox.send box 1;
  Mailbox.send box 2;
  Mailbox.send box 3;
  Alcotest.(check (list int)) "drain returns FIFO" [ 1; 2; 3 ] (Mailbox.drain box);
  Alcotest.(check bool) "empty after drain" true (Mailbox.is_empty box)

(* {2 Degenerate cluster shapes} *)

let test_pmp_single_memory () =
  (* m = 1, fM = 0: legal (m ≥ 2·0+1); still 2-deciding. *)
  let cfg = { Protected_paxos.default_config with f_m = Some 0 } in
  let report = Protected_paxos.run ~cfg ~n:2 ~m:1 ~inputs:[| "a"; "b" |] () in
  Alcotest.(check (option (float 0.0))) "2-deciding with one memory" (Some 2.0)
    (Report.first_decision_time report);
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report)

let test_paxos_large_cluster () =
  let n = 9 in
  let inputs = Array.init n (fun i -> Printf.sprintf "v%d" i) in
  let report = Paxos.run ~n ~inputs () in
  Alcotest.(check int) "n=9 all decide" n (Report.decided_count report);
  Alcotest.(check bool) "agreement" true (Report.agreement_ok report)

(* {2 Aligned Paxos decided-value preservation} *)

let test_aligned_value_survives_leader_crash () =
  (* The leader decides, then crashes before everyone learns; the next
     leader must decide the same value (read from memory slots or
     acceptor state). *)
  List.iter
    (fun at ->
      let n = 3 and m = 2 in
      let inputs = [| "first"; "second"; "third" |] in
      let faults = [ Fault.Crash_process { pid = 0; at } ] in
      let report = Aligned_paxos.run ~n ~m ~inputs ~faults () in
      Alcotest.(check bool)
        (Printf.sprintf "agreement (crash at %.1f)" at)
        true (Report.agreement_ok report);
      match report.Report.decisions.(0) with
      | Some d ->
          (* p0 decided before crashing: everyone else must match *)
          Array.iteri
            (fun pid d' ->
              match d' with
              | Some d' ->
                  Alcotest.(check string)
                    (Printf.sprintf "p%d preserves p0's decision (crash at %.1f)" pid at)
                    d.Report.value d'.Report.value
              | None -> ())
            report.Report.decisions
      | None -> ())
    [ 4.1; 4.5; 5.0 ]

(* {2 Multi-instance and BFT log under reordering} *)

let test_pmp_multi_reordering () =
  let input_for ~pid ~instance = Printf.sprintf "v%d.%d" pid instance in
  let cfg = { Protected_paxos_multi.default_config with slots = 3 } in
  let faults = [ Fault.Random_latency { min = 0.5; max = 3.0 } ] in
  let reports = Protected_paxos_multi.run ~cfg ~n:3 ~m:3 ~input_for ~faults () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at instance %d under reordering" i)
        true (Report.agreement_ok report))
    reports

let test_bft_log_reordering () =
  let input_for ~pid ~slot = Printf.sprintf "c%d.%d" pid slot in
  let cfg = { Rdma_smr.Bft_log.default_config with slots = 2 } in
  let faults = [ Fault.Random_latency { min = 0.5; max = 2.5 } ] in
  let reports, _ = Rdma_smr.Bft_log.run ~cfg ~n:3 ~m:3 ~input_for ~faults () in
  Array.iteri
    (fun i report ->
      Alcotest.(check bool)
        (Printf.sprintf "agreement at slot %d under reordering" i)
        true (Report.agreement_ok report);
      Alcotest.(check bool)
        (Printf.sprintf "slot %d decided" i)
        true
        (Report.decided_count report >= 2))
    reports

let suite =
  [
    Alcotest.test_case "cancel-then-fill is inert" `Quick test_cancel_then_fill;
    Alcotest.test_case "raw fibers are independent" `Quick test_nested_spawn_cancellation;
    Alcotest.test_case "cluster crash kills sub-fibers" `Quick
      test_cluster_crash_kills_subfibers;
    Alcotest.test_case "deterministic zero-delay interleaving" `Quick
      test_zero_delay_ordering;
    Alcotest.test_case "mailbox drain" `Quick test_mailbox_drain;
    Alcotest.test_case "protected-paxos with a single memory" `Quick
      test_pmp_single_memory;
    Alcotest.test_case "paxos at n=9" `Quick test_paxos_large_cluster;
    Alcotest.test_case "aligned: decided value survives leader crash" `Quick
      test_aligned_value_survives_leader_crash;
    Alcotest.test_case "multi-instance PMP under reordering" `Quick
      test_pmp_multi_reordering;
    Alcotest.test_case "BFT log under reordering" `Slow test_bft_log_reordering;
  ]
