#!/bin/sh
# CI entry point: build, run the test suite, then smoke-test the
# telemetry pipeline end to end — run a seeded consensus instance with
# --trace-out and check that the emitted Chrome trace validates and that
# a second identical run produces byte-identical output.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== simlint v2 =="
# Static analysis over the simulator, CLI and bench trees, via the
# [@lint] alias (so it rebuilds exactly when the scanned sources
# change).  Zero unsuppressed findings is the contract: the determinism
# rules (ambient nondeterminism, hash-order traversals, fragile
# protocol wildcards, physical equality, Obj.magic/Marshal,
# module-level mutable state) plus the interprocedural rules —
# Y1 read->yield->dependent-write atomicity, Y2 [@@sim.yields]
# contract drift in .mlis, F1 branching on one-sided write completion
# without a fence, A1 stale suppressions.  Every suppression
# ([@simlint.allow] / simlint.allow) carries a written justification
# and is reviewed in the diff like any other code; --json below is the
# machine-readable audit of all of them.
dune build @lint
dune exec tools/simlint/simlint.exe -- --json lib/ bin/ bench/ > /dev/null

echo "== telemetry smoke test =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

dune exec bin/rdma_agreement.exe -- run protected-paxos -n 3 -m 3 --seed 1 \
  --trace-out "$tmp/trace1.json" --metrics-out "$tmp/metrics1.json" \
  > "$tmp/run1.out"
dune exec bin/rdma_agreement.exe -- validate-trace "$tmp/trace1.json"

dune exec bin/rdma_agreement.exe -- run protected-paxos -n 3 -m 3 --seed 1 \
  --trace-out "$tmp/trace2.json" --metrics-out "$tmp/metrics2.json" \
  > /dev/null
cmp "$tmp/trace1.json" "$tmp/trace2.json"
cmp "$tmp/metrics1.json" "$tmp/metrics2.json"
echo "trace deterministic: same seed, same bytes"

grep -q "pmp.phase2" "$tmp/metrics1.json" || {
  echo "metrics missing per-phase histograms" >&2
  exit 1
}

echo "== chaos smoke test =="
# Fixed-seed explore batches over two algorithms: inside the fault model
# every schedule must hold all four invariants.
dune exec bin/rdma_agreement.exe -- chaos explore paxos \
  --runs 25 --seed 1 --adversary
dune exec bin/rdma_agreement.exe -- chaos explore robust-backup \
  --runs 25 --seed 1 --adversary --byzantine

# Over-budget exploration must find a violation, shrink it, and write a
# repro artifact ...
dune exec bin/rdma_agreement.exe -- chaos explore paxos \
  --runs 12 --seed 1 --over-budget --expect-violations --out "$tmp/repro.json" \
  > "$tmp/explore.out"

# ... whose replay still violates (exit 1), deterministically: two
# replays produce byte-identical verdicts.
replay_status=0
dune exec bin/rdma_agreement.exe -- chaos replay "$tmp/repro.json" \
  > "$tmp/replay1.out" || replay_status=$?
[ "$replay_status" -eq 1 ] || {
  echo "chaos replay of a violating repro should exit 1 (got $replay_status)" >&2
  exit 1
}
dune exec bin/rdma_agreement.exe -- chaos replay "$tmp/repro.json" \
  > "$tmp/replay2.out" || true
cmp "$tmp/replay1.out" "$tmp/replay2.out"
echo "chaos replay deterministic: same artifact, same verdict bytes"

echo "== parallel smoke test =="
# The task/pool determinism contract, end to end through both CLIs: a
# chaos batch explored across 4 domains must be byte-identical —
# stdout, merged metrics and repro artifact — to the same batch run
# inline, including the parallel shrinker on an over-budget batch.
dune exec bin/rdma_agreement.exe -- chaos explore paxos \
  --runs 25 --seed 1 --adversary -j 1 --metrics-out "$tmp/cm1.json" \
  > "$tmp/cj1.out"
dune exec bin/rdma_agreement.exe -- chaos explore paxos \
  --runs 25 --seed 1 --adversary -j 4 --metrics-out "$tmp/cm4.json" \
  > "$tmp/cj4.out"
cmp "$tmp/cm1.json" "$tmp/cm4.json"
# stdout mentions the metrics file name; strip that line before diffing
grep -v "^metrics written" "$tmp/cj1.out" > "$tmp/cj1.flt"
grep -v "^metrics written" "$tmp/cj4.out" > "$tmp/cj4.flt"
cmp "$tmp/cj1.flt" "$tmp/cj4.flt"

dune exec bin/rdma_agreement.exe -- chaos explore paxos \
  --runs 12 --seed 1 --over-budget --expect-violations -j 4 \
  --out "$tmp/repro-j4.json" > /dev/null
cmp "$tmp/repro.json" "$tmp/repro-j4.json"

# Same contract for the experiment harness: a subset of the suite run
# across 4 domains prints the same bytes as the sequential run.
dune exec bench/main.exe -- -j 1 d2 m1 c1 > "$tmp/bench-j1.out"
dune exec bench/main.exe -- -j 4 d2 m1 c1 > "$tmp/bench-j4.out"
cmp "$tmp/bench-j1.out" "$tmp/bench-j4.out"
echo "parallel runs deterministic: -j 4 bytes = -j 1 bytes"

echo "== perf observatory =="
# Two-plane perf regression gate: re-snapshot the deterministic
# experiments and diff their deterministic plane (exact equality)
# against the checked-in baselines.  Timing is machine-local, so CI
# ignores it (--ignore-timing); the deterministic work counters are
# the contract — any drift means the simulation did different work and
# needs either a fix or an explicit baseline update in the diff.
dune build tools/perfdiff/perfdiff.exe
dune exec bench/main.exe -- d1 d2 v1 --perf-out "$tmp/BENCH_<id>.json" \
  > /dev/null
dune exec tools/perfdiff/perfdiff.exe -- --ignore-timing \
  bench/baselines/BENCH_d1.json "$tmp/BENCH_d1.json"
dune exec tools/perfdiff/perfdiff.exe -- --ignore-timing \
  bench/baselines/BENCH_d2.json "$tmp/BENCH_d2.json"
# The v1 baseline additionally pins the lease economics of the engine
# head-to-head: mem.ops.issued = 0 under the velos.read.leased scope
# (leased reads never touch memory) vs 3 issued writes per
# pmp.read.lease confirm round.  A regression that makes leased reads
# pay memory ops shows up here as counter drift.
dune exec tools/perfdiff/perfdiff.exe -- --ignore-timing \
  bench/baselines/BENCH_v1.json "$tmp/BENCH_v1.json"

# The gate must actually bite: inject counter drift into a copy of the
# fresh snapshot and require perfdiff to exit nonzero on it.
sed 's/"sha256.blocks":[0-9][0-9]*/"sha256.blocks":1/' "$tmp/BENCH_d1.json" \
  > "$tmp/BENCH_d1_drift.json"
drift_status=0
dune exec tools/perfdiff/perfdiff.exe -- --ignore-timing \
  bench/baselines/BENCH_d1.json "$tmp/BENCH_d1_drift.json" \
  > /dev/null || drift_status=$?
[ "$drift_status" -eq 1 ] || {
  echo "perfdiff failed to flag injected counter drift (got $drift_status)" >&2
  exit 1
}
echo "perf baselines match; injected drift detected"

echo "== weak ordering =="
# The memory-ordering chaos axis: forced weak-mode explore batches must
# hold every invariant, stay byte-identical across -j 1 / -j 4 (per-op
# ordering decisions come from the seeded schedule, never from domain
# interleaving), and replay byte-identically from a repro artifact that
# round-trips the ordering mode.
for mode in completion-lag reordered-qp; do
  dune exec bin/rdma_agreement.exe -- chaos explore disk-paxos \
    --runs 25 --seed 1 --adversary --ordering "$mode" -j 1 \
    --metrics-out "$tmp/om1.json" > "$tmp/oj1.out"
  dune exec bin/rdma_agreement.exe -- chaos explore disk-paxos \
    --runs 25 --seed 1 --adversary --ordering "$mode" -j 4 \
    --metrics-out "$tmp/om4.json" > "$tmp/oj4.out"
  cmp "$tmp/om1.json" "$tmp/om4.json"
  grep -v "^metrics written" "$tmp/oj1.out" > "$tmp/oj1.flt"
  grep -v "^metrics written" "$tmp/oj4.out" > "$tmp/oj4.flt"
  cmp "$tmp/oj1.flt" "$tmp/oj4.flt"
  grep -q "mem.ops.issued" "$tmp/om1.json" || {
    echo "weak-ordering metrics missing mem counters ($mode)" >&2
    exit 1
  }
done
echo "weak-ordering explore deterministic: -j 4 bytes = -j 1 bytes"

# Over-budget under a forced weak mode: the shrunk repro embeds the
# Set_ordering fault and replays to the same verdict bytes twice.
dune exec bin/rdma_agreement.exe -- chaos explore paxos \
  --runs 12 --seed 1 --over-budget --expect-violations \
  --ordering completion-lag --out "$tmp/repro-weak.json" > /dev/null
grep -q "set-ordering" "$tmp/repro-weak.json" || {
  echo "weak-mode repro artifact lost the ordering fault" >&2
  exit 1
}
weak_status=0
dune exec bin/rdma_agreement.exe -- chaos replay "$tmp/repro-weak.json" \
  > "$tmp/replay-weak1.out" || weak_status=$?
[ "$weak_status" -eq 1 ] || {
  echo "weak-mode repro replay should exit 1 (got $weak_status)" >&2
  exit 1
}
dune exec bin/rdma_agreement.exe -- chaos replay "$tmp/repro-weak.json" \
  > "$tmp/replay-weak2.out" || true
cmp "$tmp/replay-weak1.out" "$tmp/replay-weak2.out"
echo "weak-mode repro replays deterministically"

echo "== engine parity =="
# The engine-agnostic SMR stack: every registered engine must hold all
# chaos invariants across the same crash/recover schedules, with
# byte-identical exploration under -j 1 and -j 4.
for engine in pmp velos; do
  dune exec bin/rdma_agreement.exe -- chaos explore "smr-$engine-recovery" \
    --runs 25 --seed 1 -j 1 > "$tmp/ep-$engine-j1.out"
  dune exec bin/rdma_agreement.exe -- chaos explore "smr-$engine-recovery" \
    --runs 25 --seed 1 -j 4 > "$tmp/ep-$engine-j4.out"
  cmp "$tmp/ep-$engine-j1.out" "$tmp/ep-$engine-j4.out"
  cat "$tmp/ep-$engine-j1.out"
done

# The refactor that made the stack engine-parametric is
# behaviour-preserving for pmp by construction, and must stay that way:
# a fixed-seed run's full CLI output is pinned to a checked-in fixture.
dune exec bin/rdma_agreement.exe -- run smr --engine pmp -n 3 -m 3 --seed 7 \
  > "$tmp/smr-pmp.out"
cmp test/fixtures/RUN_smr_pmp_seed7.out "$tmp/smr-pmp.out"
echo "pmp fixed-seed output matches the pre-refactor fixture"

# The lease oracle must actually bite: the deliberately broken
# stale-lease fixture engine (serves local reads past deposition) has
# to be flagged on every schedule (--expect-violations inverts exit).
dune exec bin/rdma_agreement.exe -- chaos explore velos-stale-lease \
  --runs 10 --seed 1 --expect-violations > /dev/null
echo "stale-lease fixture caught by the oracle"

echo "== recovery smoke test =="
# Crash -> recover -> repair schedules: the nemesis pairs every crash
# with a recovery, and the oracle's repair invariant demands the
# rejoined memory is fully re-replicated by the watchdog.  Each batch
# runs twice; seeded exploration must be byte-identical.
dune exec bin/rdma_agreement.exe -- chaos explore swmr-recovery \
  --runs 25 --seed 1 > "$tmp/swmr1.out"
dune exec bin/rdma_agreement.exe -- chaos explore swmr-recovery \
  --runs 25 --seed 1 > "$tmp/swmr2.out"
cmp "$tmp/swmr1.out" "$tmp/swmr2.out"
cat "$tmp/swmr1.out"

dune exec bin/rdma_agreement.exe -- chaos explore pmp-multi-recovery \
  --runs 25 --seed 1 > "$tmp/pmp1.out"
dune exec bin/rdma_agreement.exe -- chaos explore pmp-multi-recovery \
  --runs 25 --seed 1 > "$tmp/pmp2.out"
cmp "$tmp/pmp1.out" "$tmp/pmp2.out"
cat "$tmp/pmp1.out"
echo "recovery chaos deterministic: same seed, same bytes"

echo "== ok =="
