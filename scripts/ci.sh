#!/bin/sh
# CI entry point: build, run the test suite, then smoke-test the
# telemetry pipeline end to end — run a seeded consensus instance with
# --trace-out and check that the emitted Chrome trace validates and that
# a second identical run produces byte-identical output.
set -eu

cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== telemetry smoke test =="
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

dune exec bin/rdma_agreement.exe -- run protected-paxos -n 3 -m 3 --seed 1 \
  --trace-out "$tmp/trace1.json" --metrics-out "$tmp/metrics1.json" \
  > "$tmp/run1.out"
dune exec bin/rdma_agreement.exe -- validate-trace "$tmp/trace1.json"

dune exec bin/rdma_agreement.exe -- run protected-paxos -n 3 -m 3 --seed 1 \
  --trace-out "$tmp/trace2.json" --metrics-out "$tmp/metrics2.json" \
  > /dev/null
cmp "$tmp/trace1.json" "$tmp/trace2.json"
cmp "$tmp/metrics1.json" "$tmp/metrics2.json"
echo "trace deterministic: same seed, same bytes"

grep -q "pmp.phase2" "$tmp/metrics1.json" || {
  echo "metrics missing per-phase histograms" >&2
  exit 1
}

echo "== ok =="
