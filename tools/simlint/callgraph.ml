(* May-yield call graph over the simulator's own sources.

   The cooperative-fiber engine ([lib/sim]) makes every blocking
   operation a *suspension point*: the calling fiber parks, the event
   loop runs other fibers, and any shared mutable state the caller read
   before the call may be rewritten underneath it.  PR 2's nastiest bug
   ([Trusted.t_send] recording its Sent history entry after the
   broadcast yield) was exactly such a stale read-modify-write across a
   suspension — found dynamically, by the chaos harness.  This module
   makes the property static: it harvests every function definition
   across the scanned tree, seeds a yield set from the engine's
   suspension primitives, and runs a fixpoint so that any function
   *transitively* reaching a yield is known to yield.

   Function identity is [(module, name)] where [module] is the last
   module-path component — the file's basename for top-level bindings,
   the submodule's own name for bindings inside [module N = struct .. end].
   That matches how the tree calls things: libraries are wrapped
   ([Rdma_sim] etc.), so in-tree call sites are single-qualified
   ([Engine.sleep], [Memclient.write_quorum]) and a qualified path's last
   two components identify the callee.  Functors ([Paxos.Make]) are
   flattened into their enclosing module, and [module X = Paxos.Make (T)]
   records the alias [X -> Paxos], so [X.propose] reaches the functor's
   bindings.

   Known imprecision (all deliberate, documented in DESIGN.md §13):

   - calls through function *values* (functor parameters, record fields,
     higher-order arguments) are unresolvable and assumed non-yielding;
   - a lambda literal's body is attributed to the enclosing definition
     (so [List.iter (fun _ -> Engine.sleep 1.0) xs] correctly marks the
     encloser), EXCEPT under the deferred-context primitives
     ([Engine.spawn]/[schedule]/[on_cancel], [Ivar.on_fill*]), whose
     callbacks run on another fiber or at a later event and are
     therefore not suspension points of the caller;
   - a lambda that is built but never invoked still marks its encloser
     (may-yield is an over-approximation). *)

type fn_id = string * string (* (module last component, value name) *)

let pp_fn_id (m, f) = m ^ "." ^ f

(* {2 Seeds}

   The yield roots: the engine's own suspension primitives plus the
   blocking operations of the layers directly above it.  Everything
   below [Memclient] is rediscovered transitively when [lib/sim] and
   [lib/rdma] are in the scanned set; seeding them explicitly keeps the
   analysis sound when it runs on a partial tree (the fixture corpus). *)

let yield_seeds : fn_id list =
  [
    ("Engine", "suspend"); ("Engine", "sleep"); ("Engine", "yield");
    ("Ivar", "await"); ("Ivar", "await_timeout");
    ("Par", "await_k"); ("Par", "await_all"); ("Par", "await_k_timeout");
    ("Mailbox", "recv"); ("Mailbox", "recv_timeout");
    ("Memclient", "write"); ("Memclient", "read");
    ("Memclient", "change_permission");
    ("Memclient", "write_quorum"); ("Memclient", "read_quorum");
    ("Memclient", "change_permission_quorum");
    ("Memclient", "fence"); ("Memclient", "fence_quorum");
    ("Memclient", "write_many");
    ("Memclient", "write_quorum_timed"); ("Memclient", "read_quorum_timed");
    ("Memclient", "change_permission_quorum_timed");
  ]

(* Callback-registration primitives whose function arguments run on
   another fiber (or at a later event), not in the caller's control
   flow: calls inside those arguments are not suspension points of the
   registering function. *)
let deferred_heads : fn_id list =
  [
    ("Engine", "spawn"); ("Engine", "schedule"); ("Engine", "on_cancel");
    ("Ivar", "on_fill"); ("Ivar", "on_fill_cancellable");
    ("Cluster", "spawn");
  ]

(* Applications through these record fields are also fiber-spawns
   ([ctx.Cluster.spawn_sub "name" (fun () -> ...)]): the callback runs on
   the new fiber, not in the caller. *)
let deferred_fields = [ "spawn_sub" ]

let is_deferred_field name = List.mem name deferred_fields

(* In-tree callback-registration functions extend the deferred set by
   declaring [@@simlint.deferred] on their definition (e.g. [Neb.create],
   whose [~deliver] callback runs on the poller fiber). *)
let deferred_attr_name = "simlint.deferred"

(* One-sided-write issuers (rule F1): the ops whose completion under a
   weak ordering model does NOT imply remote visibility.  In-tree
   wrappers that re-export a completion result declare themselves with
   [@@simlint.write_issuer] (e.g. [Swmr.write]). *)
let write_issuer_prims : fn_id list =
  [
    ("Memclient", "write"); ("Memclient", "write_quorum");
    ("Memclient", "write_many"); ("Memclient", "write_quorum_timed");
    ("Memclient", "write_all_async");
    ("Memory", "write_async"); ("Memory", "write_many_async");
    ("Verbs", "rdma_write");
  ]

(* Fence / permission-switch primitives (rule F1's sanctions): an
   explicit flush, or a permission change — which drains the data plane
   under every ordering model (DESIGN.md §12).  The fence property
   propagates through the call graph: a function that transitively
   performs a permission switch is itself a sanction. *)
let fence_prims : fn_id list =
  [
    ("Memclient", "fence"); ("Memclient", "fence_all_async");
    ("Memclient", "fence_quorum");
    ("Memclient", "change_permission");
    ("Memclient", "change_permission_all_async");
    ("Memclient", "change_permission_quorum");
    ("Memclient", "change_permission_quorum_timed");
    ("Memory", "change_permission_async"); ("Memory", "fence_async");
    ("Verbs", "rdma_flush"); ("Verbs", "dereg_mr"); ("Verbs", "rereg_mr");
  ]

let yields_attr_name = "sim.yields"

let write_issuer_attr_name = "simlint.write_issuer"

(* {2 Small shared utilities} *)

let rec longident_flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (t, s) -> longident_flatten t @ [ s ]
  | Longident.Lapply (a, _) -> longident_flatten a

let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let module_of_path file =
  Filename.basename file |> Filename.remove_extension
  |> String.capitalize_ascii

let has_attr name attrs =
  List.exists (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

(* {2 The graph} *)

type def = {
  d_id : fn_id;
  d_file : string;
  d_loc : Location.t;
  d_body : Parsetree.expression;
  mutable d_calls : fn_id list;
}

type t = {
  defs : (fn_id, def list) Hashtbl.t;
  by_file : (string, def list) Hashtbl.t; (* file -> defs, definition order *)
  aliases : (string, (string * string) list) Hashtbl.t; (* file -> local module aliases *)
  mutable_fields : (string, unit) Hashtbl.t; (* mutable record field names *)
  yield_set : (fn_id, unit) Hashtbl.t;
  fence_set : (fn_id, unit) Hashtbl.t;
  issuer_set : (fn_id, unit) Hashtbl.t;
  deferred_set : (fn_id, unit) Hashtbl.t;
}

let create () =
  let t =
    {
      defs = Hashtbl.create 256;
      by_file = Hashtbl.create 64;
      aliases = Hashtbl.create 64;
      mutable_fields = Hashtbl.create 64;
      yield_set = Hashtbl.create 256;
      fence_set = Hashtbl.create 64;
      issuer_set = Hashtbl.create 64;
      deferred_set = Hashtbl.create 16;
    }
  in
  List.iter (fun id -> Hashtbl.replace t.yield_set id ()) yield_seeds;
  List.iter (fun id -> Hashtbl.replace t.fence_set id ()) fence_prims;
  List.iter (fun id -> Hashtbl.replace t.issuer_set id ()) write_issuer_prims;
  List.iter (fun id -> Hashtbl.replace t.deferred_set id ()) deferred_heads;
  t

let dealias t ~file m =
  match Hashtbl.find_opt t.aliases file with
  | None -> m
  | Some al -> ( match List.assoc_opt m al with Some m' -> m' | None -> m)

(* Resolve a (possibly qualified) identifier at a use site in [file]
   whose enclosing module is [modname].  Unqualified names resolve to
   the enclosing module; qualified names to their last two components,
   with the module component de-aliased. *)
let resolve t ~file ~modname lid =
  match strip_stdlib (longident_flatten lid) with
  | [] -> None
  | [ f ] -> Some (modname, f)
  | parts ->
      let rec last2 = function
        | [ m; f ] -> (m, f)
        | _ :: tl -> last2 tl
        | [] -> assert false
      in
      let m, f = last2 parts in
      Some (dealias t ~file m, f)

(* {2 Pass A: aliases, mutable fields, definitions} *)

let add_def t ~file ~id ~loc ~body =
  let d = { d_id = id; d_file = file; d_loc = loc; d_body = body; d_calls = [] } in
  Hashtbl.replace t.defs id
    (d :: (Option.value ~default:[] (Hashtbl.find_opt t.defs id)));
  Hashtbl.replace t.by_file file
    (d :: (Option.value ~default:[] (Hashtbl.find_opt t.by_file file)));
  d

let add_alias t ~file x target =
  Hashtbl.replace t.aliases file
    ((x, target) :: (Option.value ~default:[] (Hashtbl.find_opt t.aliases file)))

(* The module a [module X = ...] body stands for: a path alias keeps the
   path's last component; a functor application ([Paxos.Make (T)]) keeps
   the component *before* the functor's own name, which is where its
   bindings were flattened to. *)
let rec alias_target (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> (
      match List.rev (longident_flatten txt) with
      | last :: _ -> Some last
      | [] -> None)
  | Pmod_apply (f, _) -> (
      let rec head (m : Parsetree.module_expr) =
        match m.pmod_desc with
        | Pmod_ident { txt; _ } -> Some (longident_flatten txt)
        | Pmod_apply (f, _) -> head f
        | _ -> None
      in
      match head f with
      | Some [ _make ] -> None (* local functor: no better name *)
      | Some parts -> (
          match List.rev parts with
          | _make :: owner :: _ -> Some owner
          | _ -> None)
      | None -> None)
  | Pmod_constraint (m, _) -> alias_target m
  | _ -> None

let harvest_mutable_fields t (td : Parsetree.type_declaration) =
  match td.ptype_kind with
  | Ptype_record labels ->
      List.iter
        (fun (ld : Parsetree.label_declaration) ->
          if ld.pld_mutable = Mutable then
            Hashtbl.replace t.mutable_fields ld.pld_name.txt ())
        labels
  | _ -> ()

let rec harvest_structure t ~file ~modname (str : Parsetree.structure) =
  List.iter
    (fun (si : Parsetree.structure_item) ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = name; _ } ->
                  let d =
                    add_def t ~file ~id:(modname, name) ~loc:vb.pvb_loc
                      ~body:vb.pvb_expr
                  in
                  if has_attr write_issuer_attr_name vb.pvb_attributes then
                    Hashtbl.replace t.issuer_set d.d_id ();
                  if has_attr yields_attr_name vb.pvb_attributes then
                    Hashtbl.replace t.yield_set d.d_id ();
                  if has_attr deferred_attr_name vb.pvb_attributes then
                    Hashtbl.replace t.deferred_set d.d_id ()
              | _ -> ())
            vbs
      | Pstr_type (_, tds) -> List.iter (harvest_mutable_fields t) tds
      | Pstr_module mb ->
          let name = Option.value mb.pmb_name.txt ~default:"_" in
          harvest_module t ~file ~outer:modname ~name mb.pmb_expr
      | _ -> ())
    str

and harvest_module t ~file ~outer ~name (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure str -> harvest_structure t ~file ~modname:name str
  | Pmod_functor (_, body) ->
      (* a functor's bindings are flattened into the enclosing module:
         [module Make (T) = struct let propose .. end] inside paxos.ml
         registers [Paxos.propose] *)
      harvest_module t ~file ~outer ~name:outer body
  | Pmod_constraint (m, _) -> harvest_module t ~file ~outer ~name m
  | (Pmod_ident _ | Pmod_apply _) as _alias -> (
      match alias_target me with
      | Some target -> add_alias t ~file name target
      | None -> ())
  | _ -> ()

(* {2 Pass B: call edges} *)

let calls_of_body t ~file ~modname (body : Parsetree.expression) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when (match resolve t ~file ~modname txt with
                 | Some id -> Hashtbl.mem t.deferred_set id
                 | None -> false) ->
              (* deferred context: the arguments run elsewhere *)
              ()
          | Pexp_apply
              ({ pexp_desc = Pexp_field (_, { txt = flid; _ }); _ }, _)
            when (match List.rev (longident_flatten flid) with
                 | f :: _ -> is_deferred_field f
                 | [] -> false) ->
              ()
          | Pexp_ident { txt; _ } ->
              (match resolve t ~file ~modname txt with
              | Some id -> acc := id :: !acc
              | None -> ());
              Ast_iterator.default_iterator.expr it e
          | _ -> Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body;
  List.sort_uniq compare !acc

(* {2 Fixpoints} *)

let propagate set defs =
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun id ds ->
        if not (Hashtbl.mem set id) then
          if
            List.exists
              (fun d -> List.exists (Hashtbl.mem set) d.d_calls)
              ds
          then begin
            Hashtbl.replace set id ();
            changed := true
          end)
      defs
  done

let build (files : (string * Parsetree.structure) list) =
  let t = create () in
  List.iter
    (fun (file, ast) ->
      harvest_structure t ~file ~modname:(module_of_path file) ast)
    files;
  List.iter
    (fun (file, _) ->
      match Hashtbl.find_opt t.by_file file with
      | None -> ()
      | Some ds ->
          List.iter
            (fun d ->
              d.d_calls <-
                calls_of_body t ~file ~modname:(fst d.d_id) d.d_body)
            ds)
    files;
  propagate t.yield_set t.defs;
  propagate t.fence_set t.defs;
  t

(* {2 Queries} *)

let may_yield t id = Hashtbl.mem t.yield_set id

let is_deferred t id = Hashtbl.mem t.deferred_set id

let is_fence t id = Hashtbl.mem t.fence_set id

let is_write_issuer t id = Hashtbl.mem t.issuer_set id

let is_mutable_field t name = Hashtbl.mem t.mutable_fields name

let defs_of_file t file =
  Option.value ~default:[] (Hashtbl.find_opt t.by_file file) |> List.rev

(* Every known definition with its verdict, sorted — the [--dump-yields]
   debug surface and the EXPERIMENTS.md coverage evidence. *)
let dump t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.defs []
  |> List.sort_uniq compare
  |> List.map (fun id -> (pp_fn_id id, may_yield t id))

let def_count t = Hashtbl.length t.defs

let module_count t =
  Hashtbl.fold (fun (m, _) _ acc -> m :: acc) t.defs []
  |> List.sort_uniq compare |> List.length
