(* Clean: seeded Random.State threaded explicitly is the sanctioned RNG. *)
let roll st = Random.State.int st 100
let flip st = Random.State.bool st
