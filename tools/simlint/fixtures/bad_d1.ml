(* D1: ambient nondeterminism outside lib/sim — every line below fires. *)
let roll () = Random.int 100
let flip () = Random.bool ()
let reseed () = Random.self_init ()
let wall () = Unix.gettimeofday ()
let epoch () = Unix.time ()
let cpu () = Sys.time ()
let heap () = Gc.quick_stat ()
