(* D2: hash-order traversals escaping unsorted — every line below fires. *)
let pairs tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
let first_class = Hashtbl.iter
