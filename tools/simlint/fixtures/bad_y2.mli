(* Y2 drift in both directions: [observe] suspends but the contract is
   missing; [pure] claims a suspension that is unreachable. *)
val wait_turn : unit -> unit [@@sim.yields]

val observe : unit -> int

val pure : int -> int [@@sim.yields]
