(* Suppressed Y1: same shape as bad_y1.bad_field, justified. *)
type t = { mutable epoch : int }

let pause () = Engine.sleep 1.0

let bump (t : t) =
  let e = t.epoch in
  pause ();
  (t.epoch <- t.epoch + e)
  [@simlint.allow "Y1 single-writer: only the owner fiber bumps epoch"]
