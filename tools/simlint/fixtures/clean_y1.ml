(* Clean twins of bad_y1.ml: none of these may fire. *)
type t = { mutable pending : int list }

let pause () = Engine.sleep 1.0

(* write before the yield — the fixed Trusted.t_send shape. *)
let clean_order (t : t) =
  t.pending <- 1 :: t.pending;
  pause ()

(* read -> yield -> independent write: the new value is derived before
   the suspension and does not re-read the location. *)
let clean_rederive (t : t) =
  let n = List.length t.pending in
  pause ();
  t.pending <- [ n ]

(* locally created state cannot be seen by another fiber. *)
let clean_local () =
  let c = ref 0 in
  pause ();
  c := !c + 1;
  !c

(* read-modify-write with no suspension in between is atomic under
   cooperative scheduling. *)
let clean_no_yield (t : t) = t.pending <- 1 :: t.pending
