(* D4: physical equality outside lib/sim — both lines fire. *)
let same a b = a == b
let diff a b = a != b
