(* The prof_clock idiom: the timing plane's single sanctioned wall-clock
   read, suppressed expression-by-expression so any NEW wall-clock read
   added nearby still fires D1. *)
let now () = (Unix.gettimeofday () [@simlint.allow "D1"])
