(* Suppressed F1: the branch reports the completion status itself and
   makes no remote-visibility claim. *)
let demo client region =
  let w = Memclient.write client ~region 0 "v" in
  (if w = `Ack then print_endline "ack" else print_endline "nak")
  [@simlint.allow "F1 prints the completion status itself; no visibility claim"]
