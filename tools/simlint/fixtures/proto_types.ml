(* A protocol type by attribute (not named [msg]). *)
type fault = Boom of int | Quake [@@simlint.protocol]

let boom = Boom 1
