(* Clean: the traversal result feeds straight into a sort. *)
let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
let direct tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
let stable tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.stable_sort compare
let uniq tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort_uniq compare
