(* A1: a suppression whose excused code is gone is itself a finding. *)
let tidy x = x + 1 [@@simlint.allow "D1 left over from a removed Random.int"]
