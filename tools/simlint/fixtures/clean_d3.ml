(* Clean: exhaustive protocol matches; wildcards over non-protocol types. *)
type msg = Ping | Pong

let handle = function Ping -> 1 | Pong -> 2
let len = function [] -> 0 | _ -> 1
let opt = function Some _ -> true | _ -> false
