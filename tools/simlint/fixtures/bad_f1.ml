(* F1: branching on a one-sided write completion as if it implied
   remote visibility, with no fence in between.  All three fire. *)

(* direct scrutinee *)
let bad_direct client region =
  match Memclient.write client ~region 0 "v" with
  | `Ack -> true
  | _ -> false

(* completion bound to a variable first *)
let bad_bound client region =
  let w = Memclient.write_quorum client ~region 1 "v" in
  if w = `Ack then print_endline "committed"

(* through an in-tree wrapper declared a write issuer *)
let log_write client region v = Memclient.write client ~region 0 v
[@@simlint.write_issuer]

let bad_wrapped client region =
  match log_write client region "v" with `Ack -> () | _ -> ()
