(* D5: representation-level escapes — both lines fire. *)
let cast x = Obj.magic x
let save x = Marshal.to_string x []
