(* Suppressed D2: floating file-wide attribute. *)
[@@@simlint.allow "D2"]

let pairs tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl
