(* Implementation side of the Y2 drift fixture. *)
let wait_turn () = Engine.yield ()

let observe () =
  wait_turn ();
  1

let pure x = x + 1
