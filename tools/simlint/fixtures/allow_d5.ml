(* Suppressed D5: expression-level attribute. *)
let cast x = (Obj.magic x [@simlint.allow "D5"])
