(* Regression pin: Trusted.t_send as it shipped before the PR 2 fix.
   The Sent append sat after Neb.broadcast's suspension, so a message
   delivered in that window was recorded ahead of the Sent entry and
   the next presented history failed the receivers' extends-check,
   convicting a correct process.  Y1 must flag the append. *)
type entry = Sent of string | Received of string

type t = { mutable history : entry list }

(* stands in for Neb.broadcast: blocks on the replicated write *)
let broadcast (_payload : string) = Engine.sleep 2.0

let t_send t msg =
  let oldest_first = List.rev t.history in
  let body = function Sent m -> m | Received m -> m in
  let payload = String.concat "|" (msg :: List.map body oldest_first) in
  broadcast payload;
  t.history <- Sent msg :: t.history
