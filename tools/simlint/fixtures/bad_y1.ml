(* Y1: reads of shared mutable state crossing a yield into a dependent
   write.  [pause] reaches Engine.sleep only transitively, so the
   may-yield fixpoint — not just the seed table — must mark it. *)
type t = { mutable pending : int list }

let pause () = Engine.sleep 1.0

(* read t.pending -> yield (on one branch) -> dependent write: fires. *)
let bad_field (t : t) =
  if t.pending = [] then pause ();
  t.pending <- 1 :: t.pending

(* the same shape through a ref handed in by the caller. *)
let bad_ref (backlog : int ref) =
  let snapshot = !backlog in
  pause ();
  backlog := !backlog + snapshot

(* and through a shared array slot. *)
let bad_slot (slots : int array) =
  let seen = slots.(0) in
  pause ();
  slots.(0) <- slots.(0) + seen
