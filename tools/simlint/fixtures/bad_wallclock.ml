(* D1: wall-clock reads OUTSIDE the sanctioned timing module
   (lib/obs/prof_clock.ml) are still findings — the profiler's timing
   plane does not license ambient time anywhere else. *)
let now () = Unix.gettimeofday ()
let cpu_seconds () = Sys.time ()
