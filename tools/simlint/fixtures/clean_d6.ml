(* Clean: creators inside function bodies build fresh state per call;
   immutable module-level values are fine; non-binding initializers are
   not module state. *)
let fresh_table () = Hashtbl.create 16
let make_counter () = ref 0
let limit = 42
let double xs = List.map (fun x -> x * 2) xs
let pick = function 0 -> ref 0 | n -> ref n
let () = ignore (fresh_table ())
