(* Clean twins of bad_f1.ml: a fence or permission switch between the
   issue and the branch sanctions the completion check; never branching
   on the completion at all is also fine. *)

let clean_fenced client region =
  let w = Memclient.write client ~region 0 "v" in
  Memclient.fence client;
  match w with `Ack -> true | _ -> false

(* a permission change drains the data plane (DESIGN.md §12) *)
let clean_permission client region acks =
  let w = Memclient.write client ~region 0 "v" in
  ignore (Memclient.change_permission client ~region `R);
  if w = `Ack then incr acks

let clean_ignored client region = ignore (Memclient.write client ~region 0 "v")
