(* D6: module-level mutable state — every binding below fires. *)
let table = Hashtbl.create 16
let counter = ref 0
let slots = Array.make 4 0
let buf = Buffer.create 64
let shared = Atomic.make 0
let wrapped = Some (ref [])
