(* D3: wildcard arms in matches over protocol constructors. *)
type msg = Ping | Pong | Data of string

let handle = function
  | Ping -> "ping"
  | Data s -> s
  | _ -> "?"

let route m = match m with Pong -> 1 | _ -> 0
