(* D3 via cross-module qualified constructor from an attributed type. *)
let classify f =
  match f with
  | Proto_types.Boom _ -> "boom"
  | _ -> "other"
