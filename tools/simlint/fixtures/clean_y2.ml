(* Implementation side of the clean Y2 fixture. *)
let wait_turn () = Engine.yield ()

let observe () =
  wait_turn ();
  1

let pure x = x + 1
