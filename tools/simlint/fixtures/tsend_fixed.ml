(* The fixed Trusted.t_send shape: the Sent entry is appended before
   the broadcast suspends, and the broadcast carries the pre-send
   snapshot.  Must be silent. *)
type entry = Sent of string | Received of string

type t = { mutable history : entry list }

let broadcast (_payload : string) = Engine.sleep 2.0

let t_send t msg =
  let oldest_first = List.rev t.history in
  t.history <- Sent msg :: t.history;
  let body = function Sent m -> m | Received m -> m in
  let payload = String.concat "|" (msg :: List.map body oldest_first) in
  broadcast payload
