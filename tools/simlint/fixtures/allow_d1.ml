(* Suppressed D1: expression-level and binding-level attributes. *)
let wall () = (Unix.gettimeofday () [@simlint.allow "D1"])
let roll () = Random.int 100 [@@simlint.allow "D1"]
