(* Suppressed D6: binding-level and expression-level attributes. *)
let table = Hashtbl.create 16 [@@simlint.allow "D6"]
let counter = (ref 0 [@simlint.allow "D6"])
