(* Suppressed D3: pattern-level attribute on the wildcard arm. *)
type msg = Ping | Pong

let handle = function
  | Ping -> 1
  | (_ [@simlint.allow "D3"]) -> 0
