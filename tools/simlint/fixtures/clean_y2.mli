(* The contract matches the implementation in both directions. *)
val wait_turn : unit -> unit [@@sim.yields]

val observe : unit -> int [@@sim.yields]

val pure : int -> int
