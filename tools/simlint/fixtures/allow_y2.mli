(* Suppressed Y2: the known reference-marks-encloser imprecision. *)
val lookup : string -> unit -> unit
[@@simlint.allow
  "Y2 returns the action without running it; referencing the table \
   over-approximates may-yield"]
