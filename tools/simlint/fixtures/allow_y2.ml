(* A function that only *references* yielding closures: the call-graph
   over-approximation marks it may-yield (reference marks the
   encloser), which the .mli suppresses with a justification. *)
let menu = [ ("wait", fun () -> Engine.sleep 1.0) ]

let lookup name = List.assoc name menu
