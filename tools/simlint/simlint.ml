(* simlint CLI.

   Usage: dune exec tools/simlint/simlint.exe -- [options] lib/ bin/

   Scans every .ml/.mli under the given roots, prints findings as
   [file:line: [RULE-ID] message], and exits nonzero if any survive the
   suppressions ([@simlint.allow] attributes and the [simlint.allow]
   file, picked up from the current directory by default).
   [--json] emits the full machine-readable report instead — every
   finding including suppressed ones with their justification, in
   stable (file, line, col, rule) order.  [--dump-yields] prints the
   may-yield verdict for every harvested definition and exits. *)

let usage =
  "simlint [--rules D1,..] [--disable D1,..] [--allow-file F | \
   --no-allow-file] [--json] [--dump-yields] PATH.."

module Lint = Simlint_lib.Lint
module Callgraph = Simlint_lib.Callgraph

let () =
  let roots = ref [] in
  let only = ref None in
  let disabled = ref [] in
  let allow_file = ref (Some "simlint.allow") in
  let json = ref false in
  let dump_yields = ref false in
  let parse_rule_list s =
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match Lint.rule_of_id (String.trim tok) with
           | Some r -> r
           | None ->
               prerr_endline ("simlint: unknown rule id " ^ String.trim tok);
               exit 2)
  in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> only := Some (parse_rule_list s)),
        "IDS run only these comma-separated rules (default: all)" );
      ( "--disable",
        Arg.String (fun s -> disabled := parse_rule_list s @ !disabled),
        "IDS disable these comma-separated rules" );
      ( "--allow-file",
        Arg.String (fun s -> allow_file := Some s),
        "FILE read RULE-ID/path-fragment suppressions (default: ./simlint.allow)" );
      ( "--no-allow-file",
        Arg.Unit (fun () -> allow_file := None),
        " ignore any simlint.allow file" );
      ( "--json",
        Arg.Set json,
        " emit all findings (suppressed included) as JSON on stdout" );
      ( "--dump-yields",
        Arg.Set dump_yields,
        " print the may-yield verdict per harvested definition and exit" );
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allow =
    match !allow_file with
    | Some f when Sys.file_exists f -> Lint.load_allow_file f
    | _ -> []
  in
  let rules =
    let base = match !only with Some rs -> rs | None -> Lint.all_rules in
    List.filter (fun r -> not (List.mem r !disabled)) base
  in
  let cfg = { Lint.default_config with rules; allow } in
  let files = Lint.collect_ml_files (List.rev !roots) in
  if !dump_yields then begin
    match Lint.dump_yields files with
    | graph ->
        List.iter
          (fun (name, yields) ->
            Printf.printf "%-50s %s\n" name (if yields then "yields" else "-"))
          (Callgraph.dump graph);
        Printf.printf
          "simlint: %d definitions in %d modules (%d may-yield)\n"
          (Callgraph.def_count graph)
          (Callgraph.module_count graph)
          (List.length
             (List.filter (fun (_, y) -> y) (Callgraph.dump graph)))
    | exception Lint.Parse_error (file, msg) ->
        Printf.eprintf "simlint: %s: parse error\n%s\n" file msg;
        exit 2
  end
  else
    match Lint.lint_files_all cfg files with
    | all ->
        let active = List.filter (fun f -> f.Lint.suppressed = None) all in
        if !json then print_string (Lint.render_json all)
        else begin
          List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) active;
          if active = [] then
            Printf.printf "simlint: %d files clean, %d suppression(s) (%s)\n"
              (List.length files)
              (List.length all - List.length active)
              (String.concat "," (List.map Lint.rule_id rules))
          else
            Printf.eprintf "simlint: %d finding(s) in %d files\n"
              (List.length active) (List.length files)
        end;
        if active <> [] then exit 1
    | exception Lint.Parse_error (file, msg) ->
        Printf.eprintf "simlint: %s: parse error\n%s\n" file msg;
        exit 2
