(* simlint CLI.

   Usage: dune exec tools/simlint/simlint.exe -- [options] lib/ bin/

   Scans every .ml under the given roots, prints findings as
   [file:line: [RULE-ID] message], and exits nonzero if any survive the
   suppressions ([@simlint.allow] attributes and the [simlint.allow]
   file, picked up from the current directory by default). *)

let usage = "simlint [--rules D1,..] [--disable D1,..] [--allow-file F | --no-allow-file] PATH.."

module Lint = Simlint_lib.Lint

let () =
  let roots = ref [] in
  let only = ref None in
  let disabled = ref [] in
  let allow_file = ref (Some "simlint.allow") in
  let parse_rule_list s =
    String.split_on_char ',' s
    |> List.map (fun tok ->
           match Lint.rule_of_id (String.trim tok) with
           | Some r -> r
           | None ->
               prerr_endline ("simlint: unknown rule id " ^ String.trim tok);
               exit 2)
  in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> only := Some (parse_rule_list s)),
        "IDS run only these comma-separated rules (default: all)" );
      ( "--disable",
        Arg.String (fun s -> disabled := parse_rule_list s @ !disabled),
        "IDS disable these comma-separated rules" );
      ( "--allow-file",
        Arg.String (fun s -> allow_file := Some s),
        "FILE read RULE-ID/path-fragment suppressions (default: ./simlint.allow)" );
      ( "--no-allow-file",
        Arg.Unit (fun () -> allow_file := None),
        " ignore any simlint.allow file" );
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let allow =
    match !allow_file with
    | Some f when Sys.file_exists f -> Lint.load_allow_file f
    | _ -> []
  in
  let rules =
    let base = match !only with Some rs -> rs | None -> Lint.all_rules in
    List.filter (fun r -> not (List.mem r !disabled)) base
  in
  let cfg = { Lint.default_config with rules; allow } in
  let files = Lint.collect_ml_files (List.rev !roots) in
  match Lint.lint_files cfg files with
  | [] ->
      Printf.printf "simlint: %d files clean (%s)\n" (List.length files)
        (String.concat "," (List.map Lint.rule_id rules))
  | findings ->
      List.iter
        (fun f -> Format.printf "%a@." Lint.pp_finding f)
        findings;
      Printf.eprintf "simlint: %d finding(s) in %d files\n"
        (List.length findings) (List.length files);
      exit 1
  | exception Lint.Parse_error (file, msg) ->
      Printf.eprintf "simlint: %s: parse error\n%s\n" file msg;
      exit 2
