(* simlint: determinism, protocol-hygiene & yield-atomicity static
   analysis over the repository's own sources.

   Every guarantee the simulator sells — byte-identical traces per seed,
   replayable chaos repro artifacts, deterministic recovery schedules,
   atomic leader-change steps — rests on conventions no type checker
   enforces.  simlint walks the untyped parsetree
   ([compiler-libs.common]'s [Parse] + [Ast_iterator]; no ppx in the
   build loop) and machine-checks those conventions.

   v1 rules (per-expression; each individually toggleable):

   - D1  banned nondeterminism primitives — global-state [Random.*],
         [Unix.time]/[gettimeofday], [Sys.time], [Gc] queries — anywhere
         except [lib/sim].
   - D2  [Hashtbl.iter]/[Hashtbl.fold] whose result is not passed
         directly through [List.sort]/[List.stable_sort]/[List.sort_uniq].
   - D3  a [_] wildcard arm in a [match]/[function] whose other arms
         mention a protocol message/fault constructor, inside the
         designated protocol-handler trees.
   - D4  physical equality [==]/[!=] outside [lib/sim].
   - D5  [Obj.magic] / [Marshal.*] anywhere.
   - D6  module-level mutable state inside the task-parallel trees.

   v2 rules (interprocedural, over the {!Callgraph} may-yield fixpoint):

   - Y1  atomicity-across-yield: inside one function body, a read of
         mutable state (mutable record field, [ref], [Hashtbl], array
         slot) before a may-yield call, with a *dependent* write — one
         whose right-hand side re-reads the same location — after it.
         This is the exact shape of the [Trusted.t_send] bug PR 2's
         chaos harness caught dynamically: the pre-yield read is stale
         by the time the write commits, and any state mutated by a
         concurrently scheduled fiber is silently clobbered.  Locations
         created locally in the body ([let polls = ref 0]) are exempt —
         under this linter's own approximations (deferred-context
         callbacks excluded) nothing else can reach them across the
         yield.
   - Y2  yield-contract drift: an exported function that may yield must
         carry [@@sim.yields] on its [val] in the [.mli], and a
         non-yielding one must not — an interface-level atomicity
         contract, checked on every build, anchored at the yield roots
         in [lib/sim]'s own mlis.
   - F1  fence discipline: outside [lib/rdma], branching on the
         completion of a one-sided write (its [op_result] scrutinized by
         a [match]/[if]) treats an RDMA completion as remote delivery.
         Under the weak ordering models (DESIGN.md §12) a completion
         does not imply visibility; the site needs an intervening
         [Verbs.rdma_flush]/[Memclient.fence], a permission switch
         (which drains the data plane), or an explicit
         [@simlint.allow "F1 <structural reason>"] justification — the
         per-algorithm excuses of EXPERIMENTS.md W2, made machine-
         checked.
   - A1  stale suppression: a [simlint.allow] attribute or allow-file
         entry that no longer matches any finding is itself an error, so
         suppressions cannot outlive the code they excused.

   Suppression: attach [@simlint.allow "ID justification..."] to the
   offending expression, its pattern (for D3 arms), an enclosing [let]
   binding or [val] item, or file-wide via a floating
   [@@@simlint.allow "..."]; several rule ids may share one payload
   ("D2 D4"), and everything after the leading rule ids is the recorded
   justification.  Alternatively list [RULE-ID path-fragment  # why]
   lines in a checked-in [simlint.allow] file.  Unknown rule ids in
   payloads are ignored (forward compatibility). *)

type rule = D1 | D2 | D3 | D4 | D5 | D6 | Y1 | Y2 | F1 | A1

let all_rules = [ D1; D2; D3; D4; D5; D6; Y1; Y2; F1; A1 ]

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"
  | Y1 -> "Y1"
  | Y2 -> "Y2"
  | F1 -> "F1"
  | A1 -> "A1"

let rule_of_id = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "D5" -> Some D5
  | "D6" -> Some D6
  | "Y1" -> Some Y1
  | "Y2" -> Some Y2
  | "F1" -> Some F1
  | "A1" -> Some A1
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  offset : int;  (** char offset in file; drives suppression-range matching *)
  rule : rule;
  message : string;
  suppressed : string option;
      (** [Some justification] when an allow matched; [None] = active *)
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line (rule_id f.rule) f.message

(* An entry of the checked-in allow file (or an equivalent literal in a
   test config): rule + path fragment + recorded justification.
   [ae_source] is the allow file's own (path, line), used to report the
   entry as stale when it stops matching. *)
type allow_entry = {
  ae_rule : rule;
  ae_frag : string;
  ae_just : string;
  ae_source : (string * int) option;
  mutable ae_used : bool;
}

let allow_frag rule frag =
  { ae_rule = rule; ae_frag = frag; ae_just = ""; ae_source = None; ae_used = false }

type config = {
  rules : rule list;  (** enabled rules *)
  sim_dirs : string list;
      (** path fragments naming the engine tree exempt from D1/D4/Y1/F1 *)
  proto_dirs : string list;  (** path fragments where D3 applies *)
  mutable_dirs : string list;  (** path fragments where D6 applies *)
  yield_dirs : string list;  (** path fragments where Y1/F1 apply *)
  y2_dirs : string list;  (** path fragments whose .mli carry the Y2 contract *)
  fence_exempt_dirs : string list;
      (** the substrate that implements the ordering models; F1-exempt *)
  allow : allow_entry list;
}

let default_config =
  {
    rules = all_rules;
    sim_dirs = [ "lib/sim/" ];
    proto_dirs = [ "lib/core/"; "lib/smr/"; "lib/chaos/" ];
    mutable_dirs = [ "lib/"; "bench/" ];
    yield_dirs = [ "lib/"; "bench/" ];
    y2_dirs = [ "lib/" ];
    fence_exempt_dirs = [ "lib/rdma/" ];
    allow = [];
  }

(* {2 Small utilities} *)

let contains_fragment path frag =
  let lp = String.length path and lf = String.length frag in
  let rec go i = i + lf <= lp && (String.sub path i lf = frag || go (i + 1)) in
  lf > 0 && go 0

let in_dirs path dirs = List.exists (contains_fragment path) dirs

let longident_flatten = Callgraph.longident_flatten

let strip_stdlib = Callgraph.strip_stdlib

let module_of_path = Callgraph.module_of_path

(* {2 Attribute handling} *)

let allow_attr_name = "simlint.allow"

let protocol_attr_name = "simlint.protocol"

let yields_attr_name = Callgraph.yields_attr_name

let string_of_payload = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* "D2, D4 justification text" -> ([D2; D4], "justification text"): the
   leading tokens that parse as rule ids are the granted rules, and the
   remainder of the payload — punctuation intact — is the recorded
   justification. *)
let parse_allow_payload s =
  let n = String.length s in
  let is_sep c = c = ' ' || c = '\t' || c = '\n' || c = ',' in
  let rec go i rules =
    let i =
      let j = ref i in
      while !j < n && is_sep s.[!j] do incr j done;
      !j
    in
    if i >= n then (List.rev rules, "")
    else
      let j =
        let j = ref i in
        while !j < n && not (is_sep s.[!j]) do incr j done;
        !j
      in
      match rule_of_id (String.sub s i (j - i)) with
      | Some r -> go j (r :: rules)
      | None ->
          (* justification: normalize the line breaks of multi-line
             string literals, keep everything else *)
          let rest = String.sub s i (n - i) in
          let words =
            String.split_on_char '\n' rest
            |> List.concat_map (String.split_on_char ' ')
            |> List.filter (fun w -> w <> "")
          in
          (List.rev rules, String.concat " " words)
  in
  go 0 []

let has_protocol_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = protocol_attr_name)
    attrs

let has_yields_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = yields_attr_name)
    attrs

(* {2 Suppression sites}

   Every [@simlint.allow] in a file becomes a site covering the char
   range of the node it is attached to (the whole file for floating
   [@@@simlint.allow]).  Findings are computed unsuppressed, then
   filtered: a finding whose offset falls inside a matching site is
   downgraded to suppressed (carrying the site's justification), and the
   site is marked used.  Sites that never match are rule A1 findings —
   the stale-suppression detector. *)

type allow_site = {
  s_rules : rule list;
  s_just : string;
  s_file : string;
  s_line : int;  (** of the attribute, for A1 reports *)
  s_col : int;
  s_offset : int;
  s_lo : int;  (** covered char range [s_lo, s_hi) *)
  s_hi : int;
  mutable s_used : bool;
}

let site_of_attr ~file ~(range : Location.t) (a : Parsetree.attribute) =
  if a.attr_name.txt <> allow_attr_name then None
  else
    match string_of_payload a.attr_payload with
    | None -> None
    | Some s ->
        let rules, just = parse_allow_payload s in
        if rules = [] then None
        else
          let pos = a.attr_loc.loc_start in
          Some
            {
              s_rules = rules;
              s_just = just;
              s_file = file;
              s_line = pos.pos_lnum;
              s_col = pos.pos_cnum - pos.pos_bol;
              s_offset = pos.pos_cnum;
              s_lo = range.loc_start.pos_cnum;
              s_hi = range.loc_end.pos_cnum;
              s_used = false;
            }

let whole_file : Location.t =
  let p = { Lexing.pos_fname = ""; pos_lnum = 0; pos_bol = 0; pos_cnum = 0 } in
  {
    Location.loc_start = p;
    loc_end = { p with pos_cnum = max_int };
    loc_ghost = true;
  }

let collect_sites_structure ~file (ast : Parsetree.structure) =
  let sites = ref [] in
  let add ~range attrs =
    List.iter
      (fun a ->
        match site_of_attr ~file ~range a with
        | Some s -> sites := s :: !sites
        | None -> ())
      attrs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          add ~range:e.pexp_loc e.pexp_attributes;
          Ast_iterator.default_iterator.expr it e);
      pat =
        (fun it p ->
          add ~range:p.ppat_loc p.ppat_attributes;
          Ast_iterator.default_iterator.pat it p);
      value_binding =
        (fun it vb ->
          add ~range:vb.pvb_loc vb.pvb_attributes;
          Ast_iterator.default_iterator.value_binding it vb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a -> add ~range:whole_file [ a ]
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it ast;
  !sites

let collect_sites_signature ~file (sg : Parsetree.signature) =
  let sites = ref [] in
  let add ~range attrs =
    List.iter
      (fun a ->
        match site_of_attr ~file ~range a with
        | Some s -> sites := s :: !sites
        | None -> ())
      attrs
  in
  List.iter
    (fun (si : Parsetree.signature_item) ->
      match si.psig_desc with
      | Psig_attribute a -> add ~range:whole_file [ a ]
      | Psig_value vd -> add ~range:si.psig_loc vd.pval_attributes
      | _ -> ())
    sg;
  !sites

(* {2 Parsing} *)

type unit_ast =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      lexbuf.lex_curr_p <-
        { pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
      if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
      else Impl (Parse.implementation lexbuf))

(* {2 Pass 1: harvest protocol constructors (for D3)} *)

type proto_ctor = { ctor : string; decl_module : string }

let harvest_protocol_ctors cfg (files : (string * Parsetree.structure) list) =
  let acc = ref [] in
  let harvest_decl ~decl_module (td : Parsetree.type_declaration) ~in_proto =
    let is_protocol =
      has_protocol_attr td.ptype_attributes
      || (in_proto && td.ptype_name.txt = "msg")
    in
    if is_protocol then
      match td.ptype_kind with
      | Ptype_variant ctors ->
          List.iter
            (fun (cd : Parsetree.constructor_declaration) ->
              acc := { ctor = cd.pcd_name.txt; decl_module } :: !acc)
            ctors
      | _ -> ()
  in
  List.iter
    (fun (path, ast) ->
      let decl_module = module_of_path path in
      let in_proto = in_dirs path cfg.proto_dirs in
      let it =
        {
          Ast_iterator.default_iterator with
          type_declaration =
            (fun it td ->
              harvest_decl ~decl_module td ~in_proto;
              Ast_iterator.default_iterator.type_declaration it td);
        }
      in
      it.structure it ast)
    files;
  !acc

(* {2 Pass 2: per-file expression checks (the v1 D rules)} *)

(* D1 — banned ambient-nondeterminism idents, by flattened path. *)
let d1_banned path_components =
  match path_components with
  | [ "Random"; fn ] ->
      if
        List.mem fn
          [
            "self_init"; "init"; "int"; "int32"; "int64"; "nativeint";
            "full_int"; "int_in_range"; "bool"; "float"; "bits"; "bits32";
            "bits64"; "char"; "get_state"; "set_state";
          ]
      then
        Some
          (Printf.sprintf
             "global-state Random.%s is unseeded nondeterminism; thread a \
              seeded Random.State (Engine.rng) instead"
             fn)
      else None
  | [ "Unix"; ("time" | "gettimeofday" as fn) ] ->
      Some
        (Printf.sprintf
           "Unix.%s reads the wall clock; simulator code must use virtual \
            time (Engine.now)"
           fn)
  | [ "Sys"; "time" ] ->
      Some
        "Sys.time reads the process clock; simulator code must use virtual \
         time (Engine.now)"
  | "Gc" :: _ :: _ ->
      Some
        "Gc queries leak allocator state into behaviour; nothing outside \
         lib/sim may depend on them"
  | _ -> None

(* D2 — Hashtbl traversal idents. *)
let is_hashtbl_traversal = function
  | [ "Hashtbl"; ("iter" | "fold") ] -> true
  | _ -> false

let is_list_sort = function
  | [ "List"; ("sort" | "stable_sort" | "sort_uniq") ] -> true
  | _ -> false

(* D5 *)
let d5_banned path_components =
  match path_components with
  | [ "Obj"; "magic" ] ->
      Some "Obj.magic defeats the type system and every determinism argument"
  | "Marshal" :: _ :: _ ->
      Some
        "Marshal is representation-dependent (closures, sharing, hash \
         seeds); use the typed codecs"
  | _ -> None

(* D6 — functions whose application yields a fresh mutable container. *)
let d6_creator = function
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Array"; (("make" | "init" | "create_float" | "make_matrix") as f) ] ->
      Some ("Array." ^ f)
  | [ "Bytes"; (("create" | "make") as f) ] -> Some ("Bytes." ^ f)
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | [ "Atomic"; "make" ] -> Some "Atomic.make"
  | [ "Mutex"; "create" ] -> Some "Mutex.create"
  | [ "Condition"; "create" ] -> Some "Condition.create"
  | _ -> None

(* Mutable-creator applications reachable from [e] without entering a
   function body: whatever they build is constructed once, at module
   initialization, not per call. *)
let d6_creator_apps (e : Parsetree.expression) =
  let found = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | _ ->
              (match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                  match d6_creator (strip_stdlib (longident_flatten txt)) with
                  | Some name -> found := (e.pexp_loc, name) :: !found
                  | None -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !found

(* Does the pattern bind at least one name?  [let () = ...] and
   [let _ = ...] initializers are not module state. *)
let rec pattern_binds (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var _ | Ppat_alias _ -> true
  | Ppat_tuple ps | Ppat_array ps -> List.exists pattern_binds ps
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p
    ->
      pattern_binds p
  | Ppat_or (a, b) -> pattern_binds a || pattern_binds b
  | Ppat_construct (_, Some (_, p)) -> pattern_binds p
  | Ppat_record (fields, _) -> List.exists (fun (_, p) -> pattern_binds p) fields
  | _ -> false

let head_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (longident_flatten txt))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      Some (strip_stdlib (longident_flatten txt))
  | _ -> None

(* Top-level wildcard-ness of a match arm's pattern. *)
let rec pattern_is_wildcard (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_is_wildcard p
  | Ppat_or (a, b) -> pattern_is_wildcard a || pattern_is_wildcard b
  | _ -> false

(* Does [p] mention a harvested protocol constructor anywhere? *)
let pattern_mentions_proto ~ctors ~file_module (p : Parsetree.pattern) =
  let found = ref false in
  let check lid =
    match List.rev (strip_stdlib (longident_flatten lid)) with
    | [] -> ()
    | [ c ] ->
        if List.exists (fun pc -> pc.ctor = c && pc.decl_module = file_module) ctors
        then found := true
    | c :: m :: _ ->
        if List.exists (fun pc -> pc.ctor = c && pc.decl_module = m) ctors then
          found := true
  in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> check txt
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !found

let proto_ctor_names ~ctors ~file_module cases =
  List.concat_map
    (fun (c : Parsetree.case) ->
      let names = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          pat =
            (fun it p ->
              (match p.ppat_desc with
              | Ppat_construct ({ txt; _ }, _) -> (
                  match List.rev (strip_stdlib (longident_flatten txt)) with
                  | c :: rest
                    when List.exists
                           (fun pc ->
                             pc.ctor = c
                             &&
                             match rest with
                             | [] -> pc.decl_module = file_module
                             | m :: _ -> pc.decl_module = m)
                           ctors ->
                      names := c :: !names
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.pat it p);
        }
      in
      it.pat it c.pc_lhs;
      !names)
    cases
  |> List.sort_uniq compare

(* {2 Pass 3: the interprocedural Y1/F1 body analysis}

   A single approximate-evaluation-order walk per harvested function
   body, tracking three event planes at once:

   - Y1: reads/writes of named mutable locations and yield points.  A
     location key is the access path ("t.history", "pending", ...);
     reads move to the stale set when a yield passes; a dependent write
     (RHS re-reads the key) to a stale key is a finding.
   - F1: one-sided write issues, fence/permission-switch calls, and
     branch points whose scrutinee observes a write completion (a direct
     issuer application, or a variable bound to one).  A branch with no
     fence after its issue point is a finding.
   - Branches ([match]/[if]/[try]) fork the Y1 state and merge by
     union; loop bodies are walked once (the read-yield-write shape is
     visible in a single linearized iteration). *)

module SMap = Map.Make (String)

type ystate = {
  fresh : Location.t SMap.t;  (* key -> read loc, no yield crossed yet *)
  stale : (Location.t * Location.t) SMap.t;  (* key -> (read, yield) locs *)
  comp : int SMap.t;  (* completion-result variables -> issue position *)
}

let y_empty = { fresh = SMap.empty; stale = SMap.empty; comp = SMap.empty }

let y_merge a b =
  {
    fresh = SMap.union (fun _ l _ -> Some l) a.fresh b.fresh;
    stale = SMap.union (fun _ l _ -> Some l) a.stale b.stale;
    comp = SMap.union (fun _ l _ -> Some l) a.comp b.comp;
  }

(* The access path of a location expression: an identifier or a chain of
   field projections rooted at one ("t", "t.history").  Anything more
   exotic is not tracked. *)
let rec path_of (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      Some (String.concat "." (strip_stdlib (longident_flatten txt)))
  | Pexp_field (b, { txt; _ }) -> (
      match (path_of b, List.rev (longident_flatten txt)) with
      | Some p, f :: _ -> Some (p ^ "." ^ f)
      | _ -> None)
  | Pexp_constraint (e, _) -> path_of e
  | _ -> None

let path_root p = match String.index_opt p '.' with
  | Some i -> String.sub p 0 i
  | None -> p

let hashtbl_read = function
  | [ "Hashtbl"; ("find" | "find_opt" | "find_all" | "mem" | "length"
                 | "iter" | "fold") ] -> true
  | _ -> false

let hashtbl_write = function
  | [ "Hashtbl"; ("add" | "replace" | "remove" | "reset" | "clear"
                 | "filter_map_inplace") ] -> true
  | _ -> false

let array_read = function
  | [ ("Array" | "Bytes" | "String"); ("get" | "unsafe_get") ] -> true
  | _ -> false

let array_write = function
  | [ ("Array" | "Bytes"); ("set" | "unsafe_set" | "fill" | "blit") ] -> true
  | _ -> false

(* Does [e] read location [key] anywhere (dereference, field read, array
   get, Hashtbl read)?  Decides write "dependence" — a stale
   read-modify-write re-reads the location it clobbers. *)
let mentions_read ~key (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_field _ -> if path_of e = Some key then found := true
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
              let p = strip_stdlib (longident_flatten txt) in
              let arg1_is_key () =
                match args with
                | (_, a) :: _ -> path_of a = Some key
                | [] -> false
              in
              match p with
              | [ "!" ] -> if arg1_is_key () then found := true
              | _ ->
                  if (array_read p || hashtbl_read p) && arg1_is_key () then
                    found := true)
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* One analyzed function body.  Lambdas handed to the deferred-context
   primitives (fiber spawns, completion callbacks) run on another fiber:
   they are excluded from this body's event order and recursively
   analyzed as bodies of their own, with fresh state. *)
let rec analyze_body ~graph ~file ~modname ~check_y1 ~check_f1 ~report body =
  let locals : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let pos = ref 0 in
  let fences = ref [] in
  (* (issue position, branch loc) *)
  let candidates = ref [] in
  (* lambda bodies spawned onto other fibers, analyzed separately *)
  let spawned = ref [] in
  let defer_args args =
    List.iter
      (fun ((_, a) : _ * Parsetree.expression) ->
        match a.pexp_desc with
        | Pexp_fun _ | Pexp_function _ -> spawned := a :: !spawned
        | _ -> ())
      args
  in
  let resolve lid = Callgraph.resolve graph ~file ~modname lid in
  let tick () = incr pos; !pos in
  let tracked key =
    not (Hashtbl.mem locals (path_root key))
  in
  let read st key loc =
    ignore (tick ());
    if tracked key && not (SMap.mem key st.fresh) then
      { st with fresh = SMap.add key loc st.fresh }
    else st
  in
  let write st key loc ~dependent =
    ignore (tick ());
    (if check_y1 && dependent && tracked key then
       match SMap.find_opt key st.stale with
       | Some (read_loc, yield_loc) ->
           report ~loc Y1
             (Printf.sprintf
                "read-modify-write of %s spans a yield: read at line %d, \
                 suspension at line %d, dependent write here — concurrent \
                 fibers can mutate %s inside that window (the Trusted.t_send \
                 bug shape); move the write before the yield, re-derive the \
                 state after it, or justify with [@simlint.allow \"Y1 \
                 <why>\"]"
                key read_loc.Location.loc_start.pos_lnum
                yield_loc.Location.loc_start.pos_lnum key)
       | None -> ());
    st
  in
  let yield st yloc =
    ignore (tick ());
    {
      st with
      stale =
        SMap.fold
          (fun key rloc acc ->
            if SMap.mem key acc then acc else SMap.add key (rloc, yloc) acc)
          st.fresh st.stale;
    }
  in
  (* Does [e] contain an application of a one-sided write issuer? *)
  let contains_issuer e =
    let found = ref false in
    let it =
      {
        Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                match resolve txt with
                | Some id when Callgraph.is_write_issuer graph id ->
                    found := true
                | _ -> ())
            | _ -> ());
            Ast_iterator.default_iterator.expr it e);
      }
    in
    it.expr it e;
    !found
  in
  (* A scrutinee/condition that observes a write completion: a direct
     issuer application, or a mention of a variable bound to one. *)
  let completion_observed st e =
    if contains_issuer e then Some !pos
    else
      let found = ref None in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident { txt = Lident x; _ } -> (
                  match SMap.find_opt x st.comp with
                  | Some p when !found = None -> found := Some p
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.expr it e;
      !found
  in
  let observe_branch st scrut =
    if check_f1 then
      match completion_observed st scrut with
      | Some issue_pos ->
          candidates := (issue_pos, scrut.Parsetree.pexp_loc) :: !candidates
      | None -> ()
  in
  let rec walk st (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident _ | Pexp_constant _ -> st
    | Pexp_field (b, { txt; _ }) -> (
        let st = walk st b in
        match (path_of e, List.rev (longident_flatten txt)) with
        | Some key, f :: _ when Callgraph.is_mutable_field graph f ->
            read st key e.pexp_loc
        | _ -> st)
    | Pexp_setfield (b, { txt; _ }, rhs) -> (
        let st = walk st b in
        let st = walk st rhs in
        match (path_of b, List.rev (longident_flatten txt)) with
        | Some bp, f :: _ ->
            let key = bp ^ "." ^ f in
            write st key e.pexp_loc ~dependent:(mentions_read ~key rhs)
        | _ -> st)
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as hd), args) -> (
        let p = strip_stdlib (longident_flatten txt) in
        let resolved = resolve txt in
        let deferred =
          match resolved with
          | Some id -> Callgraph.is_deferred graph id
          | None -> false
        in
        if deferred then begin
          defer_args args;
          st
        end
        else
          let arg_path i =
            match List.nth_opt args i with
            | Some (_, a) -> path_of a
            | None -> None
          in
          match p with
          | [ "!" ] -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key -> read st key e.pexp_loc
              | None -> st)
          | [ ":=" ] -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key ->
                  let dependent =
                    match args with
                    | _ :: (_, rhs) :: _ ->
                        mentions_read ~key rhs
                        ||
                        (* !key inside rhs: the [!] application *)
                        (let found = ref false in
                         let it =
                           {
                             Ast_iterator.default_iterator with
                             expr =
                               (fun it e ->
                                 (match e.pexp_desc with
                                 | Pexp_apply
                                     ( { pexp_desc = Pexp_ident { txt = Lident "!"; _ }; _ },
                                       [ (_, a) ] )
                                   when path_of a = Some key ->
                                     found := true
                                 | _ -> ());
                                 Ast_iterator.default_iterator.expr it e);
                           }
                         in
                         it.expr it rhs;
                         !found)
                    | _ -> false
                  in
                  write st key e.pexp_loc ~dependent
              | None -> st)
          | [ ("incr" | "decr") ] -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key ->
                  let st = read st key e.pexp_loc in
                  write st key e.pexp_loc ~dependent:true
              | None -> st)
          | _ when array_read p -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key -> read st key e.pexp_loc
              | None -> st)
          | _ when array_write p -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key ->
                  let dependent =
                    List.exists (fun (_, a) -> mentions_read ~key a)
                      (match args with _ :: rest -> rest | [] -> [])
                  in
                  write st key e.pexp_loc ~dependent
              | None -> st)
          | _ when hashtbl_read p -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key -> read st key e.pexp_loc
              | None -> st)
          | _ when hashtbl_write p -> (
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              match arg_path 0 with
              | Some key ->
                  let dependent =
                    List.exists (fun (_, a) -> mentions_read ~key a)
                      (match args with _ :: rest -> rest | [] -> [])
                  in
                  write st key e.pexp_loc ~dependent
              | None -> st)
          | _ ->
              let st = walk st hd in
              let st = List.fold_left (fun st (_, a) -> walk st a) st args in
              (match resolved with
              | Some id when check_f1 && Callgraph.is_fence graph id ->
                  fences := tick () :: !fences
              | _ -> ());
              (match resolved with
              | Some id when Callgraph.may_yield graph id ->
                  yield st e.pexp_loc
              | _ -> st))
    | Pexp_apply
        (({ pexp_desc = Pexp_field (_, { txt = flid; _ }); _ } as hd), args)
      -> (
        (* [ctx.spawn_sub "name" (fun () -> ...)]: the callback runs on
           the new fiber, not here *)
        match List.rev (longident_flatten flid) with
        | f :: _ when Callgraph.is_deferred_field f ->
            defer_args args;
            st
        | _ ->
            let st = walk st hd in
            List.fold_left (fun st (_, a) -> walk st a) st args)
    | Pexp_apply (hd, args) ->
        let st = walk st hd in
        List.fold_left (fun st (_, a) -> walk st a) st args
    | Pexp_let (_, vbs, body) ->
        let st =
          List.fold_left
            (fun st (vb : Parsetree.value_binding) ->
              let st = walk st vb.pvb_expr in
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = x; _ } ->
                  let creator =
                    match head_ident vb.pvb_expr with
                    | Some p -> d6_creator p <> None
                    | None -> (
                        match vb.pvb_expr.pexp_desc with
                        | Pexp_record _ | Pexp_array _ -> true
                        | _ -> false)
                  in
                  if creator then Hashtbl.replace locals x ();
                  if check_f1 && contains_issuer vb.pvb_expr then
                    { st with comp = SMap.add x !pos st.comp }
                  else { st with comp = SMap.remove x st.comp }
              | _ -> st)
            st vbs
        in
        walk st body
    | Pexp_sequence (a, b) ->
        let st = walk st a in
        walk st b
    | Pexp_ifthenelse (c, t, e_opt) ->
        let st = walk st c in
        observe_branch st c;
        let st_t = walk st t in
        let st_e = match e_opt with Some e -> walk st e | None -> st in
        y_merge st_t st_e
    | Pexp_match (scrut, cases) ->
        let st = walk st scrut in
        observe_branch st scrut;
        List.fold_left
          (fun acc (c : Parsetree.case) ->
            let st_g =
              match c.pc_guard with Some g -> walk st g | None -> st
            in
            y_merge acc (walk st_g c.pc_rhs))
          st cases
    | Pexp_try (b, cases) ->
        let st_b = walk st b in
        List.fold_left
          (fun acc (c : Parsetree.case) -> y_merge acc (walk st_b c.pc_rhs))
          st_b cases
    | Pexp_function cases ->
        List.fold_left
          (fun acc (c : Parsetree.case) ->
            let st_g =
              match c.pc_guard with Some g -> walk st g | None -> st
            in
            y_merge acc (walk st_g c.pc_rhs))
          st cases
    | Pexp_fun (_, default, _, body) ->
        let st =
          match default with Some d -> walk st d | None -> st
        in
        walk st body
    | Pexp_while (c, b) ->
        let st = walk st c in
        walk st b
    | Pexp_for (_, lo, hi, _, b) ->
        let st = walk st lo in
        let st = walk st hi in
        walk st b
    | Pexp_construct (_, Some e)
    | Pexp_variant (_, Some e)
    | Pexp_assert e | Pexp_lazy e | Pexp_newtype (_, e)
    | Pexp_open (_, e) | Pexp_letexception (_, e)
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_poly (e, _)
    | Pexp_send (e, _) | Pexp_setinstvar (_, e) ->
        walk st e
    | Pexp_tuple es | Pexp_array es ->
        List.fold_left walk st es
    | Pexp_record (fields, base) ->
        let st = match base with Some b -> walk st b | None -> st in
        List.fold_left (fun st (_, e) -> walk st e) st fields
    | Pexp_letmodule (_, _, e) -> walk st e
    | Pexp_letop { let_; ands; body } ->
        let st = walk st let_.pbop_exp in
        let st =
          List.fold_left (fun st (b : Parsetree.binding_op) -> walk st b.pbop_exp)
            st ands
        in
        walk st body
    | _ -> st
  in
  ignore (walk y_empty body);
  List.iter
    (analyze_body ~graph ~file ~modname ~check_y1 ~check_f1 ~report)
    (List.rev !spawned);
  if check_f1 then
    List.iter
      (fun (issue_pos, loc) ->
        if not (List.exists (fun f -> f > issue_pos) !fences) then
          report ~loc F1
            "branches on a one-sided write completion as if it implied \
             remote delivery; under a weak ordering model (DESIGN.md §12) \
             completion does not mean visibility — fence first \
             (Memclient.fence / Verbs.rdma_flush), switch permissions \
             (which drains the data plane), or record the structural \
             reason this is safe with [@simlint.allow \"F1 <why>\"]")
      (List.rev !candidates)

(* {2 Per-file linting} *)

let lint_structure cfg ~ctors ~graph (path, (ast : Parsetree.structure)) =
  let findings = ref [] in
  let file_module = module_of_path path in
  let in_sim = in_dirs path cfg.sim_dirs in
  let in_proto = in_dirs path cfg.proto_dirs in
  let in_mutable = in_dirs path cfg.mutable_dirs in
  let in_yield = in_dirs path cfg.yield_dirs && not in_sim in
  let enabled r = List.mem r cfg.rules in
  let report ~loc rule message =
    if enabled rule then
      let pos = loc.Location.loc_start in
      findings :=
        {
          file = path;
          line = pos.pos_lnum;
          col = pos.pos_cnum - pos.pos_bol;
          offset = pos.pos_cnum;
          rule;
          message;
          suppressed = None;
        }
        :: !findings
  in
  (* D2 bookkeeping: character offsets of traversal expressions that are
     sanctioned (feed directly into a sort) or already reported at the
     application node (so the head ident is not reported twice). *)
  let sanctioned : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let consumed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark tbl (e : Parsetree.expression) =
    Hashtbl.replace tbl e.pexp_loc.loc_start.pos_cnum ()
  in
  let marked tbl (e : Parsetree.expression) =
    Hashtbl.mem tbl e.pexp_loc.loc_start.pos_cnum
  in
  let sanction_if_traversal (e : Parsetree.expression) =
    match head_ident e with
    | Some p when is_hashtbl_traversal p -> mark sanctioned e
    | _ -> ()
  in
  let check_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ },
                  [ (_, lhs); (_, rhs) ]) -> (
        match head_ident rhs with
        | Some p when is_list_sort p -> sanction_if_traversal lhs
        | _ -> ())
    | Pexp_apply (f, args) -> (
        (match head_ident f with
        | Some p when is_list_sort p ->
            List.iter (fun (_, a) -> sanction_if_traversal a) args
        | _ -> ());
        match f.pexp_desc with
        | Pexp_ident { txt; _ } ->
            let p = strip_stdlib (longident_flatten txt) in
            if is_hashtbl_traversal p then begin
              mark consumed f;
              if not (marked sanctioned e) then
                report ~loc:e.pexp_loc D2
                  (Printf.sprintf
                     "%s escapes in hash-bucket order; pipe the result \
                      through List.sort before it leaves this expression, \
                      or justify with [@simlint.allow \"D2\"]"
                     (String.concat "." p))
            end
        | _ -> ())
    | Pexp_ident { txt; _ } -> (
        let p = strip_stdlib (longident_flatten txt) in
        if is_hashtbl_traversal p && (not (marked consumed e))
           && not (marked sanctioned e)
        then
          report ~loc:e.pexp_loc D2
            (Printf.sprintf
               "%s passed as a first-class value; its traversal order is \
                hash-internal — sort at the use site or justify with \
                [@simlint.allow \"D2\"]"
               (String.concat "." p));
        (match d1_banned p with
        | Some msg when not in_sim -> report ~loc:e.pexp_loc D1 msg
        | _ -> ());
        (match p with
        | [ ("==" | "!=") ] when not in_sim ->
            report ~loc:e.pexp_loc D4
              "physical equality compares addresses, not values; use \
               structural (=)/(<>) outside lib/sim"
        | _ -> ());
        match d5_banned p with
        | Some msg -> report ~loc:e.pexp_loc D5 msg
        | None -> ())
    | Pexp_match (_, cases) | Pexp_function cases ->
        if in_proto && enabled D3 then begin
          let mentions =
            List.exists
              (fun (c : Parsetree.case) ->
                pattern_mentions_proto ~ctors ~file_module c.pc_lhs)
              cases
          in
          if mentions then
            List.iter
              (fun (c : Parsetree.case) ->
                if pattern_is_wildcard c.pc_lhs then
                  report ~loc:c.pc_lhs.ppat_loc D3
                    (Printf.sprintf
                       "wildcard arm in a match over protocol constructors \
                        (%s): a newly added constructor is silently \
                        swallowed here — list the remaining constructors \
                        explicitly, or justify with [@simlint.allow \"D3\"]"
                       (String.concat ", "
                          (proto_ctor_names ~ctors ~file_module cases))))
              cases
        end
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          check_expr e;
          Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_value (_, vbs) when in_mutable && enabled D6 ->
              (* Structure items only occur at module level (the
                 expression walk never re-enters here), so every binding
                 seen by this hook is module state. *)
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  if pattern_binds vb.pvb_pat then
                    List.iter
                      (fun (loc, name) ->
                        report ~loc D6
                          (Printf.sprintf
                             "module-level mutable state (%s) is shared by \
                              every domain that touches this module and \
                              breaks task isolation; move it into the task's \
                              own state or threaded config, or justify with \
                              [@simlint.allow \"D6\"]"
                             name))
                      (d6_creator_apps vb.pvb_expr))
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it ast;
  (* Y1 + F1: one pass per harvested function body of this file. *)
  let check_y1 = enabled Y1 && in_yield in
  let check_f1 =
    enabled F1 && in_yield && not (in_dirs path cfg.fence_exempt_dirs)
  in
  if check_y1 || check_f1 then
    List.iter
      (fun (d : Callgraph.def) ->
        analyze_body ~graph ~file:path ~modname:(fst d.Callgraph.d_id)
          ~check_y1 ~check_f1 ~report d.Callgraph.d_body)
      (Callgraph.defs_of_file graph path);
  !findings

(* Y2 over an interface: every top-level arrow-typed [val] must carry
   [@@sim.yields] exactly when its implementation may yield. *)
let rec core_type_is_arrow (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_arrow _ -> true
  | Ptyp_poly (_, c) | Ptyp_alias (c, _) -> core_type_is_arrow c
  | _ -> false

let lint_signature cfg ~graph (path, (sg : Parsetree.signature)) =
  if not (in_dirs path cfg.y2_dirs) then []
  else if not (List.mem Y2 cfg.rules) then []
  else begin
    let file_module = module_of_path path in
    let findings = ref [] in
    let report ~(loc : Location.t) message =
      let pos = loc.loc_start in
      findings :=
        {
          file = path;
          line = pos.pos_lnum;
          col = pos.pos_cnum - pos.pos_bol;
          offset = pos.pos_cnum;
          rule = Y2;
          message;
          suppressed = None;
        }
        :: !findings
    in
    List.iter
      (fun (si : Parsetree.signature_item) ->
        match si.psig_desc with
        | Psig_value vd when core_type_is_arrow vd.pval_type ->
            let name = vd.pval_name.txt in
            let yields =
              Callgraph.may_yield graph (file_module, name)
            in
            let declared = has_yields_attr vd.pval_attributes in
            if yields && not declared then
              report ~loc:vd.pval_loc
                (Printf.sprintf
                   "%s.%s may suspend the calling fiber (it transitively \
                    reaches a yield) but its val is not marked — callers \
                    cannot see the atomicity boundary; add [@@sim.yields] \
                    to the val in %s"
                   file_module name (Filename.basename path))
            else if declared && not yields then
              report ~loc:vd.pval_loc
                (Printf.sprintf
                   "%s.%s is declared [@@sim.yields] but no yield is \
                    reachable from its implementation — the contract has \
                    drifted; drop the attribute (or fix the \
                    implementation)"
                   file_module name)
        | _ -> ())
      sg;
    !findings
  end

(* {2 Suppression application + stale detection} *)

let apply_suppressions ~sites ~allow findings =
  List.map
    (fun f ->
      let matching =
        List.filter
          (fun s ->
            s.s_file = f.file
            && List.mem f.rule s.s_rules
            && f.offset >= s.s_lo && f.offset < s.s_hi)
          sites
      in
      let entry_matching =
        List.filter
          (fun e -> e.ae_rule = f.rule && contains_fragment f.file e.ae_frag)
          allow
      in
      match (matching, entry_matching) with
      | [], [] -> f
      | sites', entries ->
          List.iter (fun s -> s.s_used <- true) sites';
          List.iter (fun e -> e.ae_used <- true) entries;
          let just =
            match sites' with
            | s :: _ -> s.s_just
            | [] -> ( match entries with e :: _ -> e.ae_just | [] -> "")
          in
          { f with suppressed = Some just })
    findings

let stale_findings cfg ~sites ~allow =
  if not (List.mem A1 cfg.rules) then []
  else
    let enabled r = List.mem r cfg.rules in
    let of_site s =
      if s.s_used || not (List.exists enabled s.s_rules) then None
      else
        Some
          {
            file = s.s_file;
            line = s.s_line;
            col = s.s_col;
            offset = s.s_offset;
            rule = A1;
            message =
              Printf.sprintf
                "stale suppression: [@simlint.allow \"%s\"] matches no \
                 current finding — the code it excused is gone; delete the \
                 attribute so it cannot silently cover future regressions"
                (String.concat " " (List.map rule_id s.s_rules));
            suppressed = None;
          }
    in
    let of_entry e =
      match e.ae_source with
      | None -> None (* literal config entries carry no reportable site *)
      | Some (file, line) ->
          if e.ae_used || not (enabled e.ae_rule) then None
          else
            Some
              {
                file;
                line;
                col = 0;
                offset = line;
                rule = A1;
                message =
                  Printf.sprintf
                    "stale suppression: allow-file entry \"%s %s\" matches \
                     no current finding — delete the line so it cannot \
                     silently cover future regressions"
                    (rule_id e.ae_rule) e.ae_frag;
                suppressed = None;
              }
    in
    List.filter_map of_site sites @ List.filter_map of_entry allow

(* {2 Entry points} *)

let compare_findings a b =
  compare (a.file, a.line, a.col, rule_id a.rule)
    (b.file, b.line, b.col, rule_id b.rule)

(* Lint already-parsed units (the fixture tests feed these).  Returns
   every finding, suppressed ones included, in stable order. *)
let lint_parsed_all cfg (units : (string * unit_ast) list) =
  let impls =
    List.filter_map
      (function path, Impl ast -> Some (path, ast) | _, Intf _ -> None)
      units
  in
  let intfs =
    List.filter_map
      (function path, Intf sg -> Some (path, sg) | _, Impl _ -> None)
      units
  in
  let graph = Callgraph.build impls in
  let ctors = harvest_protocol_ctors cfg impls in
  let sites =
    List.concat_map
      (fun (path, ast) -> collect_sites_structure ~file:path ast)
      impls
    @ List.concat_map
        (fun (path, sg) -> collect_sites_signature ~file:path sg)
        intfs
  in
  let allow = cfg.allow in
  List.iter (fun e -> e.ae_used <- false) allow;
  let raw =
    List.concat_map (lint_structure cfg ~ctors ~graph) impls
    @ List.concat_map (lint_signature cfg ~graph) intfs
  in
  let filtered = apply_suppressions ~sites ~allow raw in
  let stale =
    apply_suppressions ~sites:[] ~allow (stale_findings cfg ~sites ~allow)
  in
  List.sort compare_findings (filtered @ stale)

let active findings = List.filter (fun f -> f.suppressed = None) findings

let lint_parsed cfg units = active (lint_parsed_all cfg units)

exception Parse_error of string * string (* file, message *)

let parse_files paths =
  List.map
    (fun path ->
      match parse_file path with
      | ast -> (path, ast)
      | exception exn ->
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok report) ->
                Format.asprintf "%a" Location.print_report report
            | _ -> Printexc.to_string exn
          in
          raise (Parse_error (path, msg)))
    paths

let lint_files_all cfg paths = lint_parsed_all cfg (parse_files paths)

let lint_files cfg paths = active (lint_files_all cfg paths)

(* The may-yield verdict for every known definition — the
   [--dump-yields] debug surface. *)
let dump_yields paths =
  let units = parse_files paths in
  let impls =
    List.filter_map
      (function path, Impl ast -> Some (path, ast) | _ -> None)
      units
  in
  Callgraph.build impls

(* Recursively collect .ml/.mli files under [roots] (files are taken
   as-is), sorted so the scan order — and therefore the report order —
   never depends on directory enumeration. *)
let collect_ml_files roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun name -> name <> "_build" && name.[0] <> '.')
      |> List.fold_left (fun acc name -> walk acc (Filename.concat path name)) acc
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.sort_uniq compare

(* [simlint.allow]: one [RULE-ID path-fragment  # justification] per
   line; a [#] comment on an entry line is recorded as that entry's
   justification. *)
let load_allow_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            let body, comment =
              match String.index_opt line '#' with
              | Some i ->
                  ( String.sub line 0 i,
                    String.trim
                      (String.sub line (i + 1) (String.length line - i - 1)) )
              | None -> (line, "")
            in
            match
              String.split_on_char ' ' (String.trim body)
              |> List.filter (fun s -> s <> "")
            with
            | [] -> go (lineno + 1) acc
            | [ rid; frag ] -> (
                match rule_of_id rid with
                | Some r ->
                    go (lineno + 1)
                      ({
                         ae_rule = r;
                         ae_frag = frag;
                         ae_just = comment;
                         ae_source = Some (path, lineno);
                         ae_used = false;
                       }
                      :: acc)
                | None ->
                    failwith
                      (Printf.sprintf "%s: unknown rule id %S" path rid))
            | _ ->
                failwith
                  (Printf.sprintf
                     "%s: expected \"RULE-ID path-fragment\", got %S" path
                     line))
      in
      go 1 [])

(* {2 JSON findings output}

   Machine-readable mirror of the text report, stable field order and
   stable (file, line, col, rule) sort, so CI tooling can diff findings
   between trees the way tools/perfdiff diffs perf snapshots.
   Suppressed findings are included with their recorded justification —
   the diffable artifact of every [@simlint.allow] in the tree. *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_json findings =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n  ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\
            \"message\":\"%s\",\"suppressed\":%b,\"justification\":%s}"
           (json_escape f.file) f.line f.col (rule_id f.rule)
           (json_escape f.message)
           (f.suppressed <> None)
           (match f.suppressed with
           | None -> "null"
           | Some j -> "\"" ^ json_escape j ^ "\"")))
    findings;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
