(* simlint: determinism & protocol-hygiene static analysis over the
   repository's own sources.

   Every guarantee the simulator sells — byte-identical traces per seed,
   replayable chaos repro artifacts, deterministic recovery schedules —
   rests on conventions no type checker enforces: no ambient randomness
   or wall-clock time outside the engine, no hash-order-dependent output,
   no protocol handler that silently swallows a newly added message or
   fault constructor behind a [_] wildcard.  simlint walks the untyped
   parsetree ([compiler-libs.common]'s [Parse] + [Ast_iterator]; no ppx
   in the build loop) and machine-checks those conventions.

   Rules (each individually toggleable):

   - D1  banned nondeterminism primitives — global-state [Random.*]
         ([self_init], [int], [bool], ...), [Unix.time]/[gettimeofday],
         [Sys.time], and [Gc] queries — anywhere except [lib/sim].  The
         engine owns the only RNG ([Random.State] threaded from the
         seed) and the only clock (virtual time).
   - D2  [Hashtbl.iter]/[Hashtbl.fold] whose result is not passed
         directly through [List.sort]/[List.stable_sort]/[List.sort_uniq]:
         hash-bucket order is an implementation detail and must never
         reach a trace, report, or protocol decision unsorted.  (A
         syntactic approximation: a fold that is provably
         order-independent is suppressed with an attribute and a
         one-line justification.)
   - D3  a [_] wildcard arm in a [match]/[function] whose other arms
         mention a protocol message/fault constructor, inside the
         designated protocol-handler trees ([lib/core], [lib/smr],
         [lib/chaos]).  Protocol types are variant declarations named
         [msg] in those trees, plus any declaration carrying
         [@@simlint.protocol].  Wildcards there mean a newly added
         constructor is silently swallowed instead of forcing every
         handler to be revisited.
   - D4  physical equality [==]/[!=] outside [lib/sim].
   - D5  [Obj.magic] / [Marshal.*] anywhere.
   - D6  module-level mutable state — a top-level [let] whose
         right-hand side applies a mutable-container creator ([ref],
         [Hashtbl.create], [Array.make], [Buffer.create], ...) outside
         any function body — inside the designated task-parallel trees
         ([lib/], [bench/]).  Such a value is shared by every domain
         that touches the module, so it breaks the task isolation the
         domain pool's determinism rests on; state belongs in the task
         or its threaded config.

   Suppression: attach [@simlint.allow "D2"] to the offending
   expression, its pattern (for D3 arms), an enclosing [let] binding, or
   file-wide via a floating [@@@simlint.allow "..."]; several rule ids
   may share one payload string ("D2 D4").  Alternatively list
   [RULE-ID path-fragment] lines in a checked-in [simlint.allow] file.
   Unknown rule ids in payloads are ignored (forward compatibility). *)

type rule = D1 | D2 | D3 | D4 | D5 | D6

let all_rules = [ D1; D2; D3; D4; D5; D6 ]

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"
  | D5 -> "D5"
  | D6 -> "D6"

let rule_of_id = function
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | "D5" -> Some D5
  | "D6" -> Some D6
  | _ -> None

type finding = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line (rule_id f.rule) f.message

type config = {
  rules : rule list;  (** enabled rules *)
  sim_dirs : string list;
      (** path fragments naming the engine tree exempt from D1/D4 *)
  proto_dirs : string list;  (** path fragments where D3 applies *)
  mutable_dirs : string list;  (** path fragments where D6 applies *)
  allow : (rule * string) list;
      (** file-level allowlist: (rule, path fragment) pairs *)
}

let default_config =
  {
    rules = all_rules;
    sim_dirs = [ "lib/sim/" ];
    proto_dirs = [ "lib/core/"; "lib/smr/"; "lib/chaos/" ];
    mutable_dirs = [ "lib/"; "bench/" ];
    allow = [];
  }

(* {2 Small utilities} *)

let contains_fragment path frag =
  let lp = String.length path and lf = String.length frag in
  let rec go i = i + lf <= lp && (String.sub path i lf = frag || go (i + 1)) in
  lf > 0 && go 0

let in_dirs path dirs = List.exists (contains_fragment path) dirs

(* "D2 D4" / "D2,D4" -> [D2; D4] *)
let rules_of_payload s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char ',')
  |> List.filter_map (fun tok -> rule_of_id (String.trim tok))

let rec longident_flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (t, s) -> longident_flatten t @ [ s ]
  | Longident.Lapply (a, _) -> longident_flatten a

(* Strip a [Stdlib.] qualifier so [Stdlib.Obj.magic] = [Obj.magic]. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

let module_of_path file =
  Filename.basename file |> Filename.remove_extension
  |> String.capitalize_ascii

(* {2 Attribute handling} *)

let allow_attr_name = "simlint.allow"

let protocol_attr_name = "simlint.protocol"

let string_of_payload = function
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let allows_of_attributes attrs =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> allow_attr_name then []
      else
        match string_of_payload a.attr_payload with
        | Some s -> rules_of_payload s
        | None -> [])
    attrs

let has_protocol_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> a.attr_name.txt = protocol_attr_name)
    attrs

(* {2 Parsing} *)

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      lexbuf.lex_curr_p <-
        { pos_fname = path; pos_lnum = 1; pos_bol = 0; pos_cnum = 0 };
      Parse.implementation lexbuf)

(* {2 Pass 1: harvest protocol constructors (for D3)}

   A constructor is "protocol" when its variant declaration either is
   named [msg] inside a designated protocol tree or carries
   [@@simlint.protocol] anywhere.  Each harvested constructor remembers
   its declaring module (derived from the file name) so a qualified
   pattern [Paxos.Decide] only counts against Paxos's declaration and an
   unqualified [Decide] only counts inside the declaring file — a
   [Decide] constructor of some unrelated type in another module never
   triggers D3 by name collision. *)

type proto_ctor = { ctor : string; decl_module : string }

let harvest_protocol_ctors cfg (files : (string * Parsetree.structure) list) =
  let acc = ref [] in
  let harvest_decl ~decl_module (td : Parsetree.type_declaration) ~in_proto =
    let is_protocol =
      has_protocol_attr td.ptype_attributes
      || (in_proto && td.ptype_name.txt = "msg")
    in
    if is_protocol then
      match td.ptype_kind with
      | Ptype_variant ctors ->
          List.iter
            (fun (cd : Parsetree.constructor_declaration) ->
              acc := { ctor = cd.pcd_name.txt; decl_module } :: !acc)
            ctors
      | _ -> ()
  in
  List.iter
    (fun (path, ast) ->
      let decl_module = module_of_path path in
      let in_proto = in_dirs path cfg.proto_dirs in
      let it =
        {
          Ast_iterator.default_iterator with
          type_declaration =
            (fun it td ->
              harvest_decl ~decl_module td ~in_proto;
              Ast_iterator.default_iterator.type_declaration it td);
        }
      in
      it.structure it ast)
    files;
  !acc

(* {2 Pass 2: per-file checks} *)

(* D1 — banned ambient-nondeterminism idents, by flattened path. *)
let d1_banned path_components =
  match path_components with
  | [ "Random"; fn ] ->
      if
        List.mem fn
          [
            "self_init"; "init"; "int"; "int32"; "int64"; "nativeint";
            "full_int"; "int_in_range"; "bool"; "float"; "bits"; "bits32";
            "bits64"; "char"; "get_state"; "set_state";
          ]
      then
        Some
          (Printf.sprintf
             "global-state Random.%s is unseeded nondeterminism; thread a \
              seeded Random.State (Engine.rng) instead"
             fn)
      else None
  | [ "Unix"; ("time" | "gettimeofday" as fn) ] ->
      Some
        (Printf.sprintf
           "Unix.%s reads the wall clock; simulator code must use virtual \
            time (Engine.now)"
           fn)
  | [ "Sys"; "time" ] ->
      Some
        "Sys.time reads the process clock; simulator code must use virtual \
         time (Engine.now)"
  | "Gc" :: _ :: _ ->
      Some
        "Gc queries leak allocator state into behaviour; nothing outside \
         lib/sim may depend on them"
  | _ -> None

(* D2 — Hashtbl traversal idents. *)
let is_hashtbl_traversal = function
  | [ "Hashtbl"; ("iter" | "fold") ] -> true
  | _ -> false

let is_list_sort = function
  | [ "List"; ("sort" | "stable_sort" | "sort_uniq") ] -> true
  | _ -> false

(* D5 *)
let d5_banned path_components =
  match path_components with
  | [ "Obj"; "magic" ] ->
      Some "Obj.magic defeats the type system and every determinism argument"
  | "Marshal" :: _ :: _ ->
      Some
        "Marshal is representation-dependent (closures, sharing, hash \
         seeds); use the typed codecs"
  | _ -> None

(* D6 — functions whose application yields a fresh mutable container. *)
let d6_creator = function
  | [ "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Array"; (("make" | "init" | "create_float" | "make_matrix") as f) ] ->
      Some ("Array." ^ f)
  | [ "Bytes"; (("create" | "make") as f) ] -> Some ("Bytes." ^ f)
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | [ "Atomic"; "make" ] -> Some "Atomic.make"
  | [ "Mutex"; "create" ] -> Some "Mutex.create"
  | [ "Condition"; "create" ] -> Some "Condition.create"
  | _ -> None

(* Mutable-creator applications reachable from [e] without entering a
   function body: whatever they build is constructed once, at module
   initialization, not per call.  Expression-level [@simlint.allow]
   attributes are honoured here because the D6 scan runs from the
   structure-item hook, outside the expression-walk suppression stack. *)
let d6_creator_apps (e : Parsetree.expression) =
  let found = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> ()
          | _ ->
              (match e.pexp_desc with
              | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                  match d6_creator (strip_stdlib (longident_flatten txt)) with
                  | Some name
                    when not (List.mem D6 (allows_of_attributes e.pexp_attributes))
                    ->
                      found := (e.pexp_loc, name) :: !found
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  List.rev !found

(* Does the pattern bind at least one name?  [let () = ...] and
   [let _ = ...] initializers are not module state. *)
let rec pattern_binds (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var _ | Ppat_alias _ -> true
  | Ppat_tuple ps | Ppat_array ps -> List.exists pattern_binds ps
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p
    ->
      pattern_binds p
  | Ppat_or (a, b) -> pattern_binds a || pattern_binds b
  | Ppat_construct (_, Some (_, p)) -> pattern_binds p
  | Ppat_record (fields, _) -> List.exists (fun (_, p) -> pattern_binds p) fields
  | _ -> false

let head_ident (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (longident_flatten txt))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      Some (strip_stdlib (longident_flatten txt))
  | _ -> None

(* Top-level wildcard-ness of a match arm's pattern. *)
let rec pattern_is_wildcard (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pattern_is_wildcard p
  | Ppat_or (a, b) -> pattern_is_wildcard a || pattern_is_wildcard b
  | _ -> false

(* Does [p] mention a harvested protocol constructor anywhere?  An
   unqualified constructor only counts in its declaring file; a
   qualified one only under its declaring module's name. *)
let pattern_mentions_proto ~ctors ~file_module (p : Parsetree.pattern) =
  let found = ref false in
  let check lid =
    match List.rev (strip_stdlib (longident_flatten lid)) with
    | [] -> ()
    | [ c ] ->
        if List.exists (fun pc -> pc.ctor = c && pc.decl_module = file_module) ctors
        then found := true
    | c :: m :: _ ->
        if List.exists (fun pc -> pc.ctor = c && pc.decl_module = m) ctors then
          found := true
  in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct ({ txt; _ }, _) -> check txt
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p;
  !found

let proto_ctor_names ~ctors ~file_module cases =
  List.concat_map
    (fun (c : Parsetree.case) ->
      let names = ref [] in
      let it =
        {
          Ast_iterator.default_iterator with
          pat =
            (fun it p ->
              (match p.ppat_desc with
              | Ppat_construct ({ txt; _ }, _) -> (
                  match List.rev (strip_stdlib (longident_flatten txt)) with
                  | c :: rest
                    when List.exists
                           (fun pc ->
                             pc.ctor = c
                             &&
                             match rest with
                             | [] -> pc.decl_module = file_module
                             | m :: _ -> pc.decl_module = m)
                           ctors ->
                      names := c :: !names
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.pat it p);
        }
      in
      it.pat it c.pc_lhs;
      !names)
    cases
  |> List.sort_uniq compare

let lint_file cfg ~ctors (path, (ast : Parsetree.structure)) =
  let findings = ref [] in
  let file_module = module_of_path path in
  let in_sim = in_dirs path cfg.sim_dirs in
  let in_proto = in_dirs path cfg.proto_dirs in
  let in_mutable = in_dirs path cfg.mutable_dirs in
  let enabled r = List.mem r cfg.rules in
  (* Suppression state: a stack of attribute-granted rule sets plus a
     file-wide set fed by floating [@@@simlint.allow] and the config's
     allow list. *)
  let allow_stack = ref [] in
  let file_allows =
    ref
      (List.filter_map
         (fun (r, frag) -> if contains_fragment path frag then Some r else None)
         cfg.allow)
  in
  let allowed r =
    List.mem r !file_allows || List.exists (List.mem r) !allow_stack
  in
  let report ~loc rule message =
    if enabled rule && not (allowed rule) then
      let pos = loc.Location.loc_start in
      findings :=
        {
          file = path;
          line = pos.pos_lnum;
          col = pos.pos_cnum - pos.pos_bol;
          rule;
          message;
        }
        :: !findings
  in
  (* D2 bookkeeping: character offsets of traversal expressions that are
     sanctioned (feed directly into a sort) or already reported at the
     application node (so the head ident is not reported twice). *)
  let sanctioned : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let consumed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let mark tbl (e : Parsetree.expression) =
    Hashtbl.replace tbl e.pexp_loc.loc_start.pos_cnum ()
  in
  let marked tbl (e : Parsetree.expression) =
    Hashtbl.mem tbl e.pexp_loc.loc_start.pos_cnum
  in
  let sanction_if_traversal (e : Parsetree.expression) =
    match head_ident e with
    | Some p when is_hashtbl_traversal p -> mark sanctioned e
    | _ -> ()
  in
  let check_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    (* Sanction [Hashtbl.fold ... |> List.sort ...] and
       [List.sort cmp (Hashtbl.fold ...)]. *)
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident "|>"; _ }; _ },
                  [ (_, lhs); (_, rhs) ]) -> (
        match head_ident rhs with
        | Some p when is_list_sort p -> sanction_if_traversal lhs
        | _ -> ())
    | Pexp_apply (f, args) -> (
        (match head_ident f with
        | Some p when is_list_sort p ->
            List.iter (fun (_, a) -> sanction_if_traversal a) args
        | _ -> ());
        match f.pexp_desc with
        | Pexp_ident { txt; _ } ->
            let p = strip_stdlib (longident_flatten txt) in
            if is_hashtbl_traversal p then begin
              mark consumed f;
              if not (marked sanctioned e) then
                report ~loc:e.pexp_loc D2
                  (Printf.sprintf
                     "%s escapes in hash-bucket order; pipe the result \
                      through List.sort before it leaves this expression, \
                      or justify with [@simlint.allow \"D2\"]"
                     (String.concat "." p))
            end
        | _ -> ())
    | Pexp_ident { txt; _ } -> (
        let p = strip_stdlib (longident_flatten txt) in
        if is_hashtbl_traversal p && (not (marked consumed e))
           && not (marked sanctioned e)
        then
          report ~loc:e.pexp_loc D2
            (Printf.sprintf
               "%s passed as a first-class value; its traversal order is \
                hash-internal — sort at the use site or justify with \
                [@simlint.allow \"D2\"]"
               (String.concat "." p));
        (match d1_banned p with
        | Some msg when not in_sim -> report ~loc:e.pexp_loc D1 msg
        | _ -> ());
        (match p with
        | [ ("==" | "!=") ] when not in_sim ->
            report ~loc:e.pexp_loc D4
              "physical equality compares addresses, not values; use \
               structural (=)/(<>) outside lib/sim"
        | _ -> ());
        match d5_banned p with
        | Some msg -> report ~loc:e.pexp_loc D5 msg
        | None -> ())
    | Pexp_match (_, cases) | Pexp_function cases ->
        if in_proto && enabled D3 then begin
          let mentions =
            List.exists
              (fun (c : Parsetree.case) ->
                pattern_mentions_proto ~ctors ~file_module c.pc_lhs)
              cases
          in
          if mentions then
            List.iter
              (fun (c : Parsetree.case) ->
                if
                  pattern_is_wildcard c.pc_lhs
                  && not (List.mem D3 (allows_of_attributes c.pc_lhs.ppat_attributes))
                then
                  report ~loc:c.pc_lhs.ppat_loc D3
                    (Printf.sprintf
                       "wildcard arm in a match over protocol constructors \
                        (%s): a newly added constructor is silently \
                        swallowed here — list the remaining constructors \
                        explicitly, or justify with [@simlint.allow \"D3\"]"
                       (String.concat ", "
                          (proto_ctor_names ~ctors ~file_module cases))))
              cases
        end
    | _ -> ()
  in
  let with_allows pushed f =
    match pushed with
    | [] -> f ()
    | _ ->
        allow_stack := pushed :: !allow_stack;
        f ();
        allow_stack := List.tl !allow_stack
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          with_allows (allows_of_attributes e.pexp_attributes) (fun () ->
              check_expr e;
              Ast_iterator.default_iterator.expr it e));
      value_binding =
        (fun it vb ->
          with_allows (allows_of_attributes vb.pvb_attributes) (fun () ->
              Ast_iterator.default_iterator.value_binding it vb));
      pat =
        (fun it p ->
          with_allows (allows_of_attributes p.ppat_attributes) (fun () ->
              Ast_iterator.default_iterator.pat it p));
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a ->
              if a.attr_name.txt = allow_attr_name then
                Option.iter
                  (fun s -> file_allows := rules_of_payload s @ !file_allows)
                  (string_of_payload a.attr_payload)
          | Pstr_value (_, vbs) when in_mutable && enabled D6 ->
              (* Structure items only occur at module level (the
                 expression walk never re-enters here), so every binding
                 seen by this hook is module state. *)
              List.iter
                (fun (vb : Parsetree.value_binding) ->
                  if
                    pattern_binds vb.pvb_pat
                    && not (List.mem D6 (allows_of_attributes vb.pvb_attributes))
                  then
                    List.iter
                      (fun (loc, name) ->
                        report ~loc D6
                          (Printf.sprintf
                             "module-level mutable state (%s) is shared by \
                              every domain that touches this module and \
                              breaks task isolation; move it into the task's \
                              own state or threaded config, or justify with \
                              [@simlint.allow \"D6\"]"
                             name))
                      (d6_creator_apps vb.pvb_expr))
                vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it ast;
  !findings

(* {2 Entry points} *)

let compare_findings a b =
  compare (a.file, a.line, a.col, rule_id a.rule)
    (b.file, b.line, b.col, rule_id b.rule)

(* Lint already-parsed units (the fixture tests feed these). *)
let lint_parsed cfg files =
  let ctors = harvest_protocol_ctors cfg files in
  List.concat_map (lint_file cfg ~ctors) files |> List.sort compare_findings

exception Parse_error of string * string (* file, message *)

let lint_files cfg paths =
  let parsed =
    List.map
      (fun path ->
        match parse_file path with
        | ast -> (path, ast)
        | exception exn ->
            let msg =
              match Location.error_of_exn exn with
              | Some (`Ok report) ->
                  Format.asprintf "%a" Location.print_report report
              | _ -> Printexc.to_string exn
            in
            raise (Parse_error (path, msg)))
      paths
  in
  lint_parsed cfg parsed

(* Recursively collect .ml files under [roots] (files are taken as-is),
   sorted so the scan order — and therefore the report order — never
   depends on directory enumeration. *)
let collect_ml_files roots =
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.filter (fun name -> name <> "_build" && name.[0] <> '.')
      |> List.fold_left (fun acc name -> walk acc (Filename.concat path name)) acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  List.fold_left walk [] roots |> List.sort_uniq compare

(* [simlint.allow]: one [RULE-ID path-fragment] per line, [#] comments. *)
let load_allow_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line -> (
            let line =
              match String.index_opt line '#' with
              | Some i -> String.sub line 0 i
              | None -> line
            in
            match
              String.split_on_char ' ' (String.trim line)
              |> List.filter (fun s -> s <> "")
            with
            | [] -> go acc
            | [ rid; frag ] -> (
                match rule_of_id rid with
                | Some r -> go ((r, frag) :: acc)
                | None ->
                    failwith
                      (Printf.sprintf "%s: unknown rule id %S" path rid))
            | _ ->
                failwith
                  (Printf.sprintf
                     "%s: expected \"RULE-ID path-fragment\", got %S" path
                     line))
      in
      go [])
