(* simlint's own test suite: every rule fires exactly where the bad
   fixtures say it does, stays quiet on the clean fixtures, and each
   suppression mechanism ([@simlint.allow] on expressions, bindings and
   patterns, floating [@@@simlint.allow], and the allow-file) actually
   suppresses.  Findings are compared as (file, rule, line) triples so a
   rule firing on the wrong line is a test failure, not a pass. *)

module Lint = Simlint_lib.Lint
module Callgraph = Simlint_lib.Callgraph

let fixture name = Filename.concat "fixtures" name

(* Fixtures play the role of the protocol-handler trees for D3, the
   task-parallel trees for D6 and the fiber trees for Y1/Y2/F1; nothing
   in them is exempt as engine code. *)
let cfg =
  {
    Lint.default_config with
    proto_dirs = [ "fixtures" ];
    mutable_dirs = [ "fixtures" ];
    sim_dirs = [];
    yield_dirs = [ "fixtures" ];
    y2_dirs = [ "fixtures" ];
    fence_exempt_dirs = [];
  }

let all_fixtures = Lint.collect_ml_files [ "fixtures" ]

let summarize findings =
  List.map
    (fun f -> (Filename.basename f.Lint.file, Lint.rule_id f.Lint.rule, f.Lint.line))
    findings

let finding_t = Alcotest.(list (triple string string int))

let lint ?(cfg = cfg) files = summarize (Lint.lint_files cfg files)

(* One pass over the whole corpus, like the CI run over lib/ bin/: the
   union of every expected firing, in (file, line) order, and nothing
   else — in particular nothing from the clean_* and allow_* files. *)
let test_corpus () =
  Alcotest.check finding_t "whole fixture corpus"
    [
      ("bad_d1.ml", "D1", 2);
      ("bad_d1.ml", "D1", 3);
      ("bad_d1.ml", "D1", 4);
      ("bad_d1.ml", "D1", 5);
      ("bad_d1.ml", "D1", 6);
      ("bad_d1.ml", "D1", 7);
      ("bad_d1.ml", "D1", 8);
      ("bad_d2.ml", "D2", 2);
      ("bad_d2.ml", "D2", 3);
      ("bad_d2.ml", "D2", 4);
      ("bad_d3.ml", "D3", 7);
      ("bad_d3.ml", "D3", 9);
      ("bad_d4.ml", "D4", 2);
      ("bad_d4.ml", "D4", 3);
      ("bad_d5.ml", "D5", 2);
      ("bad_d5.ml", "D5", 3);
      ("bad_d6.ml", "D6", 2);
      ("bad_d6.ml", "D6", 3);
      ("bad_d6.ml", "D6", 4);
      ("bad_d6.ml", "D6", 5);
      ("bad_d6.ml", "D6", 6);
      ("bad_d6.ml", "D6", 7);
      ("bad_f1.ml", "F1", 6);
      ("bad_f1.ml", "F1", 13);
      ("bad_f1.ml", "F1", 20);
      ("bad_wallclock.ml", "D1", 4);
      ("bad_wallclock.ml", "D1", 5);
      ("bad_y1.ml", "Y1", 11);
      ("bad_y1.ml", "Y1", 17);
      ("bad_y1.ml", "Y1", 23);
      ("bad_y2.mli", "Y2", 5);
      ("bad_y2.mli", "Y2", 7);
      ("stale_allow.ml", "A1", 2);
      ("tsend_prefix.ml", "Y1", 18);
      ("uses_proto.ml", "D3", 5);
    ]
    (lint all_fixtures)

(* lib/sim is exempt from D1/D4: the same bad files are clean when the
   config classifies the fixture tree as the engine. *)
let test_sim_exemption () =
  let sim_cfg = { cfg with sim_dirs = [ "fixtures" ] } in
  Alcotest.check finding_t "D1/D4 exempt under lib/sim" []
    (lint ~cfg:sim_cfg [ fixture "bad_d1.ml"; fixture "bad_d4.ml" ])

(* D3 only applies inside the designated protocol trees. *)
let test_proto_scope () =
  let no_proto = { cfg with proto_dirs = [ "lib/core/" ] } in
  Alcotest.check finding_t "D3 silent outside protocol dirs" []
    (lint ~cfg:no_proto
       [ fixture "bad_d3.ml"; fixture "proto_types.ml"; fixture "uses_proto.ml" ])

(* D6 only applies inside the designated task-parallel trees. *)
let test_mutable_scope () =
  let no_mut = { cfg with mutable_dirs = [ "lib/"; "bench/" ] } in
  Alcotest.check finding_t "D6 silent outside mutable dirs" []
    (lint ~cfg:no_mut [ fixture "bad_d6.ml" ])

(* Y1/F1 only apply inside the designated fiber trees, and the
   fence-exempt tree (lib/rdma, which implements the fences) drops F1
   but keeps Y1. *)
let test_yield_scope () =
  let no_yield = { cfg with yield_dirs = [ "lib/"; "bench/" ] } in
  Alcotest.check finding_t "Y1/F1 silent outside yield dirs" []
    (lint ~cfg:no_yield [ fixture "bad_y1.ml"; fixture "bad_f1.ml" ]);
  let exempt = { cfg with fence_exempt_dirs = [ "fixtures" ] } in
  Alcotest.check finding_t "F1 exempt, Y1 kept, inside lib/rdma"
    [ ("bad_y1.ml", "Y1", 11); ("bad_y1.ml", "Y1", 17); ("bad_y1.ml", "Y1", 23) ]
    (lint ~cfg:exempt [ fixture "bad_y1.ml"; fixture "bad_f1.ml" ])

(* Each rule is individually toggleable. *)
let test_rule_toggle () =
  List.iter
    (fun (rule, files) ->
      let files = List.map fixture files @ [ fixture "proto_types.ml" ] in
      let others = List.filter (fun r -> r <> rule) Lint.all_rules in
      Alcotest.check finding_t
        (Printf.sprintf "%s disabled" (Lint.rule_id rule))
        []
        (lint ~cfg:{ cfg with rules = others } files);
      Alcotest.(check bool)
        (Printf.sprintf "%s alone still fires" (Lint.rule_id rule))
        true
        (lint ~cfg:{ cfg with rules = [ rule ] } files <> []))
    [
      (Lint.D1, [ "bad_d1.ml" ]);
      (Lint.D2, [ "bad_d2.ml" ]);
      (Lint.D3, [ "bad_d3.ml" ]);
      (Lint.D4, [ "bad_d4.ml" ]);
      (Lint.D5, [ "bad_d5.ml" ]);
      (Lint.D6, [ "bad_d6.ml" ]);
      (Lint.Y1, [ "bad_y1.ml" ]);
      (Lint.Y2, [ "bad_y2.ml"; "bad_y2.mli" ]);
      (Lint.F1, [ "bad_f1.ml" ]);
    ]

(* {2 The interprocedural rules} *)

(* Y1 fires on every read->yield->dependent-write shape (field, ref,
   array slot) and on none of the clean twins. *)
let test_y1 () =
  Alcotest.check finding_t "Y1 corpus"
    [ ("bad_y1.ml", "Y1", 11); ("bad_y1.ml", "Y1", 17); ("bad_y1.ml", "Y1", 23) ]
    (lint [ fixture "bad_y1.ml"; fixture "clean_y1.ml"; fixture "allow_y1.ml" ])

(* The PR 2 Trusted.t_send bug, pinned: the pre-fix body (history append
   after the broadcast suspension) fires, the shipped fix is silent. *)
let test_tsend_regression () =
  Alcotest.check finding_t "pre-fix t_send flagged"
    [ ("tsend_prefix.ml", "Y1", 18) ]
    (lint [ fixture "tsend_prefix.ml" ]);
  Alcotest.check finding_t "fixed t_send silent" []
    (lint [ fixture "tsend_fixed.ml" ])

(* Y2 catches both directions of contract drift and is quiet when the
   .mli matches the computed may-yield verdicts. *)
let test_y2 () =
  Alcotest.check finding_t "Y2 drift both directions"
    [ ("bad_y2.mli", "Y2", 5); ("bad_y2.mli", "Y2", 7) ]
    (lint
       [ fixture "bad_y2.ml"; fixture "bad_y2.mli";
         fixture "clean_y2.ml"; fixture "clean_y2.mli" ])

(* F1 fires on a direct scrutinee, a let-bound completion variable and
   an attributed in-tree wrapper; a fence or permission switch between
   issue and branch sanctions the check. *)
let test_f1 () =
  Alcotest.check finding_t "F1 corpus"
    [ ("bad_f1.ml", "F1", 6); ("bad_f1.ml", "F1", 13); ("bad_f1.ml", "F1", 20) ]
    (lint [ fixture "bad_f1.ml"; fixture "clean_f1.ml"; fixture "allow_f1.ml" ])

(* The may-yield call graph itself: seeds, the transitive fixpoint, and
   a negative verdict. *)
let test_may_yield () =
  let units =
    Lint.parse_files
      [ fixture "tsend_prefix.ml"; fixture "bad_y2.ml"; fixture "clean_f1.ml" ]
  in
  let impls =
    List.filter_map
      (function p, Lint.Impl s -> Some (p, s) | _, Lint.Intf _ -> None)
      units
  in
  let g = Callgraph.build impls in
  let check name id expect =
    Alcotest.(check bool) name expect (Callgraph.may_yield g id)
  in
  check "seeded primitive" ("Engine", "sleep") true;
  check "direct caller of a seed" ("Tsend_prefix", "broadcast") true;
  check "transitive caller" ("Tsend_prefix", "t_send") true;
  check "pure function" ("Bad_y2", "pure") false;
  check "blocking memory op" ("Memclient", "write") true

(* {2 Suppression} *)

(* The attribute-based suppressions: the allow_* twins of the bad_*
   files carry the same flagged code plus [@simlint.allow] and must be
   silent (the bad_* twins prove the un-suppressed code fires). *)
let test_attribute_suppression () =
  Alcotest.check finding_t "attributes suppress D1/D2/D3/D5/D6/Y1/Y2/F1" []
    (lint
       [ fixture "allow_d1.ml"; fixture "allow_d2.ml"; fixture "allow_d3.ml";
         fixture "allow_d5.ml"; fixture "allow_d6.ml"; fixture "allow_y1.ml";
         fixture "allow_y2.ml"; fixture "allow_y2.mli"; fixture "allow_f1.ml" ])

(* Suppressed findings are retained with their recorded justification —
   the auditable artifact a bare "it's fine" comment would not be. *)
let test_justification_recorded () =
  let all = Lint.lint_files_all cfg [ fixture "allow_y1.ml" ] in
  Alcotest.(check (list (option string)))
    "justification text"
    [ Some "single-writer: only the owner fiber bumps epoch" ]
    (List.map (fun f -> f.Lint.suppressed) all)

(* The checked-in allow-file format: rule id + path fragment.  An entry
   left unused by the linted set is itself a finding (A1). *)
let test_allow_file () =
  let allow = Lint.load_allow_file (fixture "test.allow") in
  Alcotest.check finding_t "allow-file suppresses D4 by path" []
    (lint ~cfg:{ cfg with allow } [ fixture "bad_d4.ml" ]);
  Alcotest.check finding_t "allow-file is path-specific, unused entry is stale"
    [ ("bad_d5.ml", "D5", 2); ("bad_d5.ml", "D5", 3); ("test.allow", "A1", 3) ]
    (lint ~cfg:{ cfg with allow } [ fixture "bad_d5.ml" ])

(* An unrelated allow id must not silence a different rule. *)
let test_allow_is_rule_specific () =
  let allow = [ Lint.allow_frag Lint.D1 "bad_d4.ml" ] in
  Alcotest.check finding_t "D1 allow does not hide D4"
    [ ("bad_d4.ml", "D4", 2); ("bad_d4.ml", "D4", 3) ]
    (lint ~cfg:{ cfg with allow } [ fixture "bad_d4.ml" ])

(* A1: an attribute matching no finding is an error; it is moot (not
   stale) when the rule it grants is disabled, and off with A1 itself. *)
let test_stale_suppression () =
  Alcotest.check finding_t "stale attribute flagged"
    [ ("stale_allow.ml", "A1", 2) ]
    (lint [ fixture "stale_allow.ml" ]);
  Alcotest.check finding_t "no A1 when the granted rule is disabled" []
    (lint
       ~cfg:{ cfg with rules = List.filter (fun r -> r <> Lint.D1) Lint.all_rules }
       [ fixture "stale_allow.ml" ]);
  Alcotest.check finding_t "no A1 when A1 is disabled" []
    (lint
       ~cfg:{ cfg with rules = List.filter (fun r -> r <> Lint.A1) Lint.all_rules }
       [ fixture "stale_allow.ml" ]);
  Alcotest.check finding_t "used attribute is not stale" []
    (lint [ fixture "allow_y1.ml" ])

(* {2 JSON output} *)

(* --json golden output: stable field order, stable sort, suppressed
   findings included with their justification. *)
let test_json_golden () =
  let golden =
    let ic = open_in (fixture "golden.json") in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let actual =
    Lint.render_json
      (Lint.lint_files_all cfg
         [ fixture "allow_f1.ml"; fixture "bad_y2.ml"; fixture "bad_y2.mli" ])
  in
  Alcotest.(check string) "golden --json output" golden actual

let () =
  Alcotest.run "simlint"
    [
      ( "rules",
        [
          Alcotest.test_case "corpus" `Quick test_corpus;
          Alcotest.test_case "sim exemption" `Quick test_sim_exemption;
          Alcotest.test_case "proto scope" `Quick test_proto_scope;
          Alcotest.test_case "mutable-state scope" `Quick test_mutable_scope;
          Alcotest.test_case "yield scope" `Quick test_yield_scope;
          Alcotest.test_case "rule toggle" `Quick test_rule_toggle;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "Y1 atomicity" `Quick test_y1;
          Alcotest.test_case "t_send regression" `Quick test_tsend_regression;
          Alcotest.test_case "Y2 contract drift" `Quick test_y2;
          Alcotest.test_case "F1 fence discipline" `Quick test_f1;
          Alcotest.test_case "may-yield graph" `Quick test_may_yield;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_attribute_suppression;
          Alcotest.test_case "justification" `Quick test_justification_recorded;
          Alcotest.test_case "allow file" `Quick test_allow_file;
          Alcotest.test_case "rule specific" `Quick test_allow_is_rule_specific;
          Alcotest.test_case "stale suppression" `Quick test_stale_suppression;
        ] );
      ( "json",
        [ Alcotest.test_case "golden output" `Quick test_json_golden ] );
    ]
