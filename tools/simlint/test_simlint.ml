(* simlint's own test suite: every rule fires exactly where the bad
   fixtures say it does, stays quiet on the clean fixtures, and each
   suppression mechanism ([@simlint.allow] on expressions, bindings and
   patterns, floating [@@@simlint.allow], and the allow-file) actually
   suppresses.  Findings are compared as (file, rule, line) triples so a
   rule firing on the wrong line is a test failure, not a pass. *)

module Lint = Simlint_lib.Lint

let fixture name = Filename.concat "fixtures" name

(* Fixtures play the role of the protocol-handler trees for D3 and the
   task-parallel trees for D6; nothing in them is exempt as engine
   code. *)
let cfg =
  {
    Lint.default_config with
    proto_dirs = [ "fixtures" ];
    mutable_dirs = [ "fixtures" ];
    sim_dirs = [];
  }

let all_fixtures = Lint.collect_ml_files [ "fixtures" ]

let summarize findings =
  List.map
    (fun f -> (Filename.basename f.Lint.file, Lint.rule_id f.Lint.rule, f.Lint.line))
    findings

let finding_t = Alcotest.(list (triple string string int))

let lint ?(cfg = cfg) files = summarize (Lint.lint_files cfg files)

(* One pass over the whole corpus, like the CI run over lib/ bin/: the
   union of every expected firing, in (file, line) order, and nothing
   else — in particular nothing from the clean_* and allow_* files. *)
let test_corpus () =
  Alcotest.check finding_t "whole fixture corpus"
    [
      ("bad_d1.ml", "D1", 2);
      ("bad_d1.ml", "D1", 3);
      ("bad_d1.ml", "D1", 4);
      ("bad_d1.ml", "D1", 5);
      ("bad_d1.ml", "D1", 6);
      ("bad_d1.ml", "D1", 7);
      ("bad_d1.ml", "D1", 8);
      ("bad_d2.ml", "D2", 2);
      ("bad_d2.ml", "D2", 3);
      ("bad_d2.ml", "D2", 4);
      ("bad_d3.ml", "D3", 7);
      ("bad_d3.ml", "D3", 9);
      ("bad_d4.ml", "D4", 2);
      ("bad_d4.ml", "D4", 3);
      ("bad_d5.ml", "D5", 2);
      ("bad_d5.ml", "D5", 3);
      ("bad_d6.ml", "D6", 2);
      ("bad_d6.ml", "D6", 3);
      ("bad_d6.ml", "D6", 4);
      ("bad_d6.ml", "D6", 5);
      ("bad_d6.ml", "D6", 6);
      ("bad_d6.ml", "D6", 7);
      ("bad_wallclock.ml", "D1", 4);
      ("bad_wallclock.ml", "D1", 5);
      ("uses_proto.ml", "D3", 5);
    ]
    (lint all_fixtures)

(* lib/sim is exempt from D1/D4: the same bad files are clean when the
   config classifies the fixture tree as the engine. *)
let test_sim_exemption () =
  let sim_cfg = { cfg with sim_dirs = [ "fixtures" ] } in
  Alcotest.check finding_t "D1/D4 exempt under lib/sim" []
    (lint ~cfg:sim_cfg [ fixture "bad_d1.ml"; fixture "bad_d4.ml" ])

(* D3 only applies inside the designated protocol trees. *)
let test_proto_scope () =
  let no_proto = { cfg with proto_dirs = [ "lib/core/" ] } in
  Alcotest.check finding_t "D3 silent outside protocol dirs" []
    (lint ~cfg:no_proto
       [ fixture "bad_d3.ml"; fixture "proto_types.ml"; fixture "uses_proto.ml" ])

(* D6 only applies inside the designated task-parallel trees. *)
let test_mutable_scope () =
  let no_mut = { cfg with mutable_dirs = [ "lib/"; "bench/" ] } in
  Alcotest.check finding_t "D6 silent outside mutable dirs" []
    (lint ~cfg:no_mut [ fixture "bad_d6.ml" ])

(* Each rule is individually toggleable. *)
let test_rule_toggle () =
  List.iter
    (fun (rule, file) ->
      let others = List.filter (fun r -> r <> rule) Lint.all_rules in
      Alcotest.check finding_t
        (Printf.sprintf "%s disabled on %s" (Lint.rule_id rule) file)
        []
        (lint ~cfg:{ cfg with rules = others }
           [ fixture file; fixture "proto_types.ml" ]);
      Alcotest.(check bool)
        (Printf.sprintf "%s alone still fires on %s" (Lint.rule_id rule) file)
        true
        (lint ~cfg:{ cfg with rules = [ rule ] }
           [ fixture file; fixture "proto_types.ml" ]
        <> []))
    [
      (Lint.D1, "bad_d1.ml");
      (Lint.D2, "bad_d2.ml");
      (Lint.D3, "bad_d3.ml");
      (Lint.D4, "bad_d4.ml");
      (Lint.D5, "bad_d5.ml");
      (Lint.D6, "bad_d6.ml");
    ]

(* The attribute-based suppressions: the allow_* twins of the bad_*
   files carry the same banned code plus [@simlint.allow] and must be
   silent (the bad_* twins prove the un-suppressed code fires). *)
let test_attribute_suppression () =
  Alcotest.check finding_t "attributes suppress D1/D2/D3/D5/D6" []
    (lint
       [ fixture "allow_d1.ml"; fixture "allow_d2.ml"; fixture "allow_d3.ml";
         fixture "allow_d5.ml"; fixture "allow_d6.ml" ])

(* The checked-in allow-file format: rule id + path fragment. *)
let test_allow_file () =
  let allow = Lint.load_allow_file (fixture "test.allow") in
  Alcotest.check finding_t "allow-file suppresses D4 by path" []
    (lint ~cfg:{ cfg with allow } [ fixture "bad_d4.ml" ]);
  Alcotest.check finding_t "allow-file is path-specific"
    [ ("bad_d5.ml", "D5", 2); ("bad_d5.ml", "D5", 3) ]
    (lint ~cfg:{ cfg with allow } [ fixture "bad_d5.ml" ])

(* An unrelated allow id must not silence a different rule. *)
let test_allow_is_rule_specific () =
  let allow = [ (Lint.D1, "bad_d4.ml") ] in
  Alcotest.check finding_t "D1 allow does not hide D4"
    [ ("bad_d4.ml", "D4", 2); ("bad_d4.ml", "D4", 3) ]
    (lint ~cfg:{ cfg with allow } [ fixture "bad_d4.ml" ])

let () =
  Alcotest.run "simlint"
    [
      ( "rules",
        [
          Alcotest.test_case "corpus" `Quick test_corpus;
          Alcotest.test_case "sim exemption" `Quick test_sim_exemption;
          Alcotest.test_case "proto scope" `Quick test_proto_scope;
          Alcotest.test_case "mutable-state scope" `Quick test_mutable_scope;
          Alcotest.test_case "rule toggle" `Quick test_rule_toggle;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "attributes" `Quick test_attribute_suppression;
          Alcotest.test_case "allow file" `Quick test_allow_file;
          Alcotest.test_case "rule specific" `Quick test_allow_is_rule_specific;
        ] );
    ]
