(* Golden tests for the perf-snapshot differ: an identical pair is
   clean, deterministic-counter drift always fails, timing noise below
   the threshold passes, a big slowdown fails unless --ignore-timing,
   and an improvement never fails. *)

let load name =
  match Pdiff.load (Filename.concat "fixtures" name) with
  | Ok json -> json
  | Error e -> Alcotest.failf "fixture %s: %s" name e

let diff ?timing_threshold ?ignore_timing old_name new_name =
  Pdiff.compare_snapshots ?timing_threshold ?ignore_timing (load old_name)
    (load new_name)

let test_identical () =
  let r = diff "baseline.json" "identical.json" in
  Alcotest.(check bool) "clean" false (Pdiff.has_regression r);
  Alcotest.(check int) "no drift" 0 (List.length r.Pdiff.det_drift);
  Alcotest.(check int) "no slow" 0 (List.length r.Pdiff.regressions);
  Alcotest.(check int) "no fast" 0 (List.length r.Pdiff.improvements)

let test_det_drift () =
  let r = diff "baseline.json" "regressed_det.json" in
  Alcotest.(check bool) "regression" true (Pdiff.has_regression r);
  (* 1000 -> 1017 in both the total and the cluster.run scope, plus a
     scope key that only the new snapshot has: 3 drift rows. *)
  Alcotest.(check int) "drift rows" 3 (List.length r.Pdiff.det_drift);
  let changed =
    List.find
      (fun d -> d.Pdiff.key = "counters:sha256.blocks")
      r.Pdiff.det_drift
  in
  Alcotest.(check (option int)) "old" (Some 1000) changed.Pdiff.old_v;
  Alcotest.(check (option int)) "new" (Some 1017) changed.Pdiff.new_v;
  let added =
    List.find
      (fun d -> d.Pdiff.key = "scopes:cluster.run;extra.scope:hmac.macs")
      r.Pdiff.det_drift
  in
  Alcotest.(check (option int)) "absent before" None added.Pdiff.old_v

let test_det_drift_ignores_timing_flag () =
  (* --ignore-timing must never mask deterministic drift. *)
  let r = diff ~ignore_timing:true "baseline.json" "regressed_det.json" in
  Alcotest.(check bool) "still a regression" true (Pdiff.has_regression r)

let test_timing_regression () =
  let r = diff "baseline.json" "regressed_timing.json" in
  Alcotest.(check int) "det clean" 0 (List.length r.Pdiff.det_drift);
  Alcotest.(check bool) "regression" true (Pdiff.has_regression r);
  Alcotest.(check int) "one slow path" 1 (List.length r.Pdiff.regressions);
  let d = List.hd r.Pdiff.regressions in
  Alcotest.(check string) "path" "cluster.run" d.Pdiff.path

let test_timing_threshold () =
  (* 0.2s -> 0.9s is x4.5: a 400% threshold lets it pass. *)
  let r =
    diff ~timing_threshold:4.0 "baseline.json" "regressed_timing.json"
  in
  Alcotest.(check bool) "within threshold" false (Pdiff.has_regression r)

let test_ignore_timing () =
  let r = diff ~ignore_timing:true "baseline.json" "regressed_timing.json" in
  Alcotest.(check bool) "clean" false (Pdiff.has_regression r)

let test_improvement () =
  let r = diff "baseline.json" "improved_timing.json" in
  Alcotest.(check bool) "clean" false (Pdiff.has_regression r);
  Alcotest.(check int) "both paths faster" 2
    (List.length r.Pdiff.improvements)

let test_bad_version () =
  match
    Pdiff.parse_snapshot ~file:"v9" {|{"version":9,"id":"x"}|}
  with
  | Ok _ -> Alcotest.fail "version 9 accepted"
  | Error e ->
      let contains hay needle =
        let lh = String.length hay and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions version" true (contains e "version")

let () =
  Alcotest.run "perfdiff"
    [
      ( "diff",
        [
          Alcotest.test_case "identical" `Quick test_identical;
          Alcotest.test_case "det drift" `Quick test_det_drift;
          Alcotest.test_case "det drift vs --ignore-timing" `Quick
            test_det_drift_ignores_timing_flag;
          Alcotest.test_case "timing regression" `Quick test_timing_regression;
          Alcotest.test_case "timing threshold" `Quick test_timing_threshold;
          Alcotest.test_case "ignore timing" `Quick test_ignore_timing;
          Alcotest.test_case "improvement" `Quick test_improvement;
          Alcotest.test_case "bad version" `Quick test_bad_version;
        ] );
    ]
