(* perfdiff OLD NEW — compare two perf snapshots.

   Exit 0 when NEW matches OLD (deterministic plane exact, timing within
   threshold), 1 on any regression, 2 on usage or parse errors.

     perfdiff bench/baselines/BENCH_d1.json /tmp/BENCH_d1.json
     perfdiff --ignore-timing OLD NEW      # deterministic plane only
     perfdiff --timing-threshold 0.5 OLD NEW *)

let usage () =
  Fmt.epr
    "usage: perfdiff [--timing-threshold R] [--ignore-timing] OLD NEW@.";
  exit 2

let () =
  let rec parse (threshold, ignore_timing, files) = function
    | [] -> (threshold, ignore_timing, List.rev files)
    | "--ignore-timing" :: rest -> parse (threshold, true, files) rest
    | "--timing-threshold" :: r :: rest -> (
        match float_of_string_opt r with
        | Some t when t >= 0. -> parse (t, ignore_timing, files) rest
        | _ -> usage ())
    | arg :: rest ->
        if String.length arg > 0 && arg.[0] = '-' then usage ()
        else parse (threshold, ignore_timing, arg :: files) rest
  in
  let threshold, ignore_timing, files =
    parse (0.25, false, []) (List.tl (Array.to_list Sys.argv))
  in
  match files with
  | [ old_file; new_file ] -> (
      match (Pdiff.load old_file, Pdiff.load new_file) with
      | Error e, _ | _, Error e ->
          Fmt.epr "perfdiff: %s@." e;
          exit 2
      | Ok old_json, Ok new_json ->
          let report =
            Pdiff.compare_snapshots ~timing_threshold:threshold ~ignore_timing
              old_json new_json
          in
          Fmt.pr "%a" Pdiff.pp_report report;
          if Pdiff.has_regression report then exit 1)
  | _ -> usage ()
