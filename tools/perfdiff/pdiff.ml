(* Perf-snapshot comparison: the CI regression gate's engine.

   A snapshot (written by `bench/main.exe --perf-out` or `rdma_agreement
   run --perf-out`) has two planes with two different contracts:

   - the deterministic plane (work counters, per scope) must match a
     baseline EXACTLY — same key set, same values.  Any difference is a
     behavioural change: the simulation did different work, which either
     needs a baseline update (intended) or is a regression (not).

   - the timing plane (wall-clock per scope) is noisy by nature, so it
     is compared with a relative threshold plus an absolute floor, and
     only flagged when it got slower.  Faster is reported but never
     fails the diff.

   Exit discipline for the CLI (see perfdiff.ml): 0 clean, 1 regression,
   2 usage/parse error. *)

open Rdma_obs

type counter_drift = { key : string; old_v : int option; new_v : int option }

type timing_delta = {
  path : string;
  old_s : float;
  new_s : float;
  ratio : float;  (* new/old *)
}

type report = {
  old_id : string;
  new_id : string;
  det_drift : counter_drift list;  (* sorted by key; empty = planes equal *)
  regressions : timing_delta list;
  improvements : timing_delta list;
}

let supported_version = 1

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_snapshot ~file contents =
  match Json.parse contents with
  | Error e -> Error (Printf.sprintf "%s: not valid JSON: %s" file e)
  | Ok json -> (
      match Json.member "version" json with
      | Some (Json.Int v) when v = supported_version -> Ok json
      | Some (Json.Int v) ->
          Error
            (Printf.sprintf "%s: snapshot version %d, this tool reads %d" file
               v supported_version)
      | _ -> Error (Printf.sprintf "%s: not a perf snapshot (no version)" file))

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse_snapshot ~file contents
  | exception Sys_error e -> Error e

let id_of json =
  match Json.member "id" json with Some (Json.String s) -> s | _ -> "?"

(* Flatten the deterministic plane into one sorted assoc list:
   "counters:NAME" for totals, "scopes:PATH:NAME" per scope.  Flattening
   makes "key present on one side only" and "value changed" the same
   kind of finding. *)
let det_entries json =
  let det = Json.member "deterministic" json in
  let obj_fields = function Some (Json.Obj fields) -> fields | _ -> [] in
  let counters =
    List.filter_map
      (function name, Json.Int n -> Some ("counters:" ^ name, n) | _ -> None)
      (obj_fields (Option.bind det (Json.member "counters")))
  in
  let scopes =
    List.concat_map
      (fun (path, per_scope) ->
        match per_scope with
        | Json.Obj fields ->
            List.filter_map
              (function
                | name, Json.Int n ->
                    Some (Printf.sprintf "scopes:%s:%s" path name, n)
                | _ -> None)
              fields
        | _ -> [])
      (obj_fields (Option.bind det (Json.member "scopes")))
  in
  List.sort compare (counters @ scopes)

(* total_s per timing path. *)
let timing_entries json =
  let scopes =
    Option.bind (Json.member "timing" json) (Json.member "scopes")
  in
  match scopes with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (path, row) ->
          match Json.member "total_s" row with
          | Some (Json.Float s) -> Some (path, s)
          | Some (Json.Int s) -> Some (path, float_of_int s)
          | _ -> None)
        fields
      |> List.sort compare
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

(* Merge-walk two sorted assoc lists producing drift rows for every key
   whose value differs or that is missing on one side. *)
let diff_sorted old_entries new_entries =
  let rec go acc olds news =
    match (olds, news) with
    | [], [] -> List.rev acc
    | (k, v) :: olds', [] ->
        go ({ key = k; old_v = Some v; new_v = None } :: acc) olds' []
    | [], (k, v) :: news' ->
        go ({ key = k; old_v = None; new_v = Some v } :: acc) [] news'
    | (ko, vo) :: olds', (kn, vn) :: news' ->
        if ko = kn then
          if vo = vn then go acc olds' news'
          else
            go ({ key = ko; old_v = Some vo; new_v = Some vn } :: acc) olds'
              news'
        else if ko < kn then
          go ({ key = ko; old_v = Some vo; new_v = None } :: acc) olds' news
        else go ({ key = kn; old_v = None; new_v = Some vn } :: acc) olds news'
  in
  go [] old_entries new_entries

(* Noise guards for the timing plane: a path only counts as a regression
   (or improvement) when it moved by more than [threshold] relatively
   AND more than [abs_floor_s] absolutely — microsecond scopes jitter by
   large ratios without meaning anything. *)
let abs_floor_s = 0.001

let diff_timing ~threshold old_entries new_entries =
  let regs = ref [] and imps = ref [] in
  List.iter
    (fun (path, old_s) ->
      match List.assoc_opt path new_entries with
      | None -> ()
      | Some new_s ->
          let delta = { path; old_s; new_s; ratio = new_s /. old_s } in
          if new_s > (old_s *. (1. +. threshold)) +. abs_floor_s then
            regs := delta :: !regs
          else if new_s < (old_s *. (1. -. threshold)) -. abs_floor_s then
            imps := delta :: !imps)
    old_entries;
  (List.rev !regs, List.rev !imps)

let compare_snapshots ?(timing_threshold = 0.25) ?(ignore_timing = false)
    old_json new_json =
  let det_drift = diff_sorted (det_entries old_json) (det_entries new_json) in
  let regressions, improvements =
    if ignore_timing then ([], [])
    else
      diff_timing ~threshold:timing_threshold (timing_entries old_json)
        (timing_entries new_json)
  in
  {
    old_id = id_of old_json;
    new_id = id_of new_json;
    det_drift;
    regressions;
    improvements;
  }

let has_regression r = r.det_drift <> [] || r.regressions <> []

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_value ppf = function
  | Some v -> Fmt.pf ppf "%d" v
  | None -> Fmt.pf ppf "(absent)"

let pp_report ppf r =
  Fmt.pf ppf "perfdiff %s -> %s@." r.old_id r.new_id;
  (match r.det_drift with
  | [] -> Fmt.pf ppf "deterministic plane: OK (exact match)@."
  | drift ->
      Fmt.pf ppf "deterministic plane: %d drifted key(s)@."
        (List.length drift);
      List.iter
        (fun d ->
          Fmt.pf ppf "  DRIFT %-56s %a -> %a@." d.key pp_value d.old_v pp_value
            d.new_v)
        drift);
  (match r.regressions with
  | [] -> ()
  | regs ->
      Fmt.pf ppf "timing plane: %d regression(s)@." (List.length regs);
      List.iter
        (fun d ->
          Fmt.pf ppf "  SLOWER %-55s %.4fs -> %.4fs (x%.2f)@." d.path d.old_s
            d.new_s d.ratio)
        regs);
  List.iter
    (fun d ->
      Fmt.pf ppf "  faster %-55s %.4fs -> %.4fs (x%.2f)@." d.path d.old_s
        d.new_s d.ratio)
    r.improvements
