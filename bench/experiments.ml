(* The experiment harness: regenerates every table- and figure-level
   claim of "The Impact of RDMA on Agreement" (PODC 2019).

   The paper is a theory paper; its "evaluation" is the set of
   resilience/delay claims of Table 1, Sections 4–6 and the introduction.
   Each experiment below reruns the corresponding algorithms on the
   simulated M&M substrate and prints paper-vs-measured.  EXPERIMENTS.md
   records the outcomes.

   Every experiment is a declared task over a threaded [env] — no
   global state.  An experiment renders its entire output into the
   [env]'s formatter and returns file artifacts (trace/metrics exports)
   as rendered strings in [env.exports]; the suite driver prints
   outputs in request order and performs the writes.  That discipline
   is what lets [run_suite] dispatch experiments onto a domain pool
   ([-j N]) with byte-identical output to a sequential run. *)

open Rdma_consensus
open Rdma_obs

(* Everything one experiment may read or produce.  [jobs] is the
   parallelism available to the experiment's own inner pools (chaos
   explore batches); the driver sets it to 1 when the experiments
   themselves are being dispatched in parallel, so nested pools never
   multiply domains. *)
type env = {
  ppf : Format.formatter;  (* all experiment output renders here *)
  trace_out : string option;  (* o1: trace export destination *)
  metrics_out : string option;  (* o1: metrics export destination *)
  jobs : int;
  mutable exports : (string * string) list;  (* file -> rendered contents *)
  mutable bench_rows : (string * float * int) list;
      (* b1 Bechamel estimates, (label, ns/run, samples), in print
         order; [run_one] routes them into the perf snapshot's timing
         plane so B1 is machine-readable, not text-only *)
}

let pr env fmt = Fmt.pf env.ppf fmt

let section env id title =
  pr env "@.==============================================================@.";
  pr env "%s — %s@." (String.uppercase_ascii id) title;
  pr env "==============================================================@."

let inputs n = Array.init n (fun i -> Printf.sprintf "v%d" i)

let fmt_delay = function Some t -> Printf.sprintf "%.1f" t | None -> "-"

let check b = if b then "yes" else "NO!"

(* ------------------------------------------------------------------ *)
(* T1: Table 1 — fault-tolerance of Byzantine agreement                 *)
(* ------------------------------------------------------------------ *)

let exp_t1 env =
  section env "t1"
    "Table 1: Byzantine agreement resilience (paper row: async, \
     signatures, RDMA non-equivocation, weak validity, 2f+1)";
  pr env "Paper: weak Byzantine agreement with n = 2fP + 1 processes.@.";
  pr env "We run Fast & Robust at the bound and below it.@.@.";
  pr env "%-34s %-6s %-9s %-10s %-8s@." "scenario" "n" "byz f" "agreement"
    "decided";
  let row name n byzantine faults expect_decide =
    let report, byz, _ =
      Fast_robust.run ~n ~m:3 ~inputs:(inputs n) ~byzantine ~faults ()
    in
    let correct = n - List.length byzantine in
    let decided = Report.decided_count report in
    pr env "%-34s %-6d %-9d %-10s %d/%d %s@." name n (List.length byzantine)
      (check (Report.agreement_ok ~ignore_pids:byz report))
      decided correct
      (if expect_decide then if decided >= correct then "(all correct)" else "(LIVENESS!)"
       else if decided = 0 then "(stuck, as expected below the bound)"
       else "(unexpected progress)")
  in
  row "n=3, f=1 silent Byzantine" 3
    [ (2, fun _ -> ()) ]
    [] true;
  row "n=3, f=1 equivocating leader" 3
    [ (0, Attacks.cq_equivocating_leader ~v1:"black" ~v2:"white") ]
    [ Fault.Set_leader { pid = 1; at = 0.0 } ]
    true;
  row "n=5, f=2 mixed Byzantine" 5
    [ (3, fun _ -> ()); (4, Attacks.pp_priority_liar ~value:"liar") ]
    [] true;
  (* Below the bound the backup quorum (a majority of n) exceeds the
     number of correct processes, so a silent Byzantine leader leaves the
     lone correct process stuck forever. *)
  row "n=2, f=1 (below 2f+1: must stall)" 2
    [ (0, Attacks.cq_silent_leader) ]
    [ Fault.Set_leader { pid = 1; at = 0.0 } ]
    false;
  pr env "@.Shape to match: 2f+1 suffices with RDMA (vs 3f+1 for async \
          message passing even with signatures).@."

(* ------------------------------------------------------------------ *)
(* D1: the 2-deciding Byzantine fast path (Theorem 4.9, Section 4.2)    *)
(* ------------------------------------------------------------------ *)

let exp_d1 env =
  section env "d1" "Fast & Robust: 2-deciding, one signature (Theorem 4.9)";
  pr env "%-8s %-8s %-14s %-16s %-12s@." "n" "m" "first (delays)" "sigs@decide"
    "agreement";
  List.iter
    (fun (n, m) ->
      let report, _, cluster = Fast_robust.run ~n ~m ~inputs:(inputs n) () in
      pr env "%-8d %-8d %-14s %-16d %-12s@." n m
        (fmt_delay (Report.first_decision_time report))
        (Rdma_sim.Stats.get (Rdma_mm.Cluster.stats cluster) "sigs_at_fast_decision")
        (check (Report.agreement_ok report)))
    [ (3, 3); (5, 3); (5, 5); (7, 3) ];
  pr env "@.Paper: decides in 2 delays with 1 signature in common executions;@.";
  pr env "best prior 2-delay BFT needed 6f+2 signatures and n >= 3f+1 [7].@.";
  (* per-process decision latency: "some process decides in 2" — the
     followers take the unanimity-proof route *)
  let report, _, _ = Fast_robust.run ~n:3 ~m:3 ~inputs:(inputs 3) () in
  pr env "@.Per-process decision times (n=3, m=3):@.";
  Array.iteri
    (fun pid d ->
      match d with
      | Some { Report.at; _ } ->
          pr env "  p%d decided at %5.1f delays%s@." pid at
            (if pid = 0 then "  (leader: the 2-delay fast path)"
             else "  (follower: replicate, countersign, verify n proofs)")
      | None -> ())
    report.Report.decisions

(* ------------------------------------------------------------------ *)
(* D2: the crash-case trade-off table (Sections 1 and 5)                *)
(* ------------------------------------------------------------------ *)

let exp_d2 env =
  section env "d2" "Crash consensus: resilience vs delays (the paper's core trade-off)";
  pr env "%-24s %-16s %-10s %-14s %-10s@." "algorithm" "processes" "memories"
    "first (delays)" "decided";
  let msg_row name run n =
    let report = run ~n ~inputs:(inputs n) in
    pr env "%-24s %-16s %-10s %-14s %-10s@." name
      (Printf.sprintf "n=%d (>=2f+1)" n) "-"
      (fmt_delay (Report.first_decision_time report))
      (Printf.sprintf "%d/%d" (Report.decided_count report) n)
  in
  let mem_row name run n m proc_bound =
    let report = run ~n ~m ~inputs:(inputs n) in
    pr env "%-24s %-16s %-10s %-14s %-10s@." name
      (Printf.sprintf "n=%d (>=%s)" n proc_bound)
      (Printf.sprintf "m=%d" m)
      (fmt_delay (Report.first_decision_time report))
      (Printf.sprintf "%d/%d" (Report.decided_count report) n)
  in
  msg_row "Paxos" (fun ~n ~inputs -> Paxos.run ~n ~inputs ()) 3;
  msg_row "Fast Paxos" (fun ~n ~inputs -> Fast_paxos.run ~n ~inputs ()) 3;
  mem_row "Disk Paxos" (fun ~n ~m ~inputs -> Disk_paxos.run ~n ~m ~inputs ()) 2 3 "f+1";
  mem_row "Protected Memory Paxos"
    (fun ~n ~m ~inputs -> Protected_paxos.run ~n ~m ~inputs ())
    2 3 "f+1";
  mem_row "Aligned Paxos"
    (fun ~n ~m ~inputs -> Aligned_paxos.run ~n ~m ~inputs ())
    3 2 "maj(n+m)";
  pr env "@.Shape to match (Section 1): Disk Paxos reaches n=f+1 but needs >=4@.";
  pr env "delays; Fast Paxos reaches 2 delays but needs n>=2f+1; Protected@.";
  pr env "Memory Paxos gets BOTH 2 delays AND n=f+1 via dynamic permissions.@.";
  (* and the resilience crossover, demonstrated *)
  pr env "@.Resilience at n = f+1 = 2 with one process crash:@.";
  let crash0 = [ Fault.Crash_process { pid = 1; at = 0.0 } ] in
  let pmp = Protected_paxos.run ~n:2 ~m:3 ~inputs:(inputs 2) ~faults:crash0 () in
  pr env "  protected-paxos n=2, crash p1: survivor decides = %s@."
    (check (Report.decided_count pmp = 1));
  let px =
    Paxos.run ~n:2 ~inputs:(inputs 2) ~faults:crash0 ()
  in
  pr env "  paxos           n=2, crash p1: stuck (needs majority) = %s@."
    (check (Report.decided_count px = 0))

(* ------------------------------------------------------------------ *)
(* D3: Aligned Paxos — combined-agent majority (Section 5.2)            *)
(* ------------------------------------------------------------------ *)

let exp_d3 env =
  section env "d3" "Aligned Paxos: any minority of processes+memories may crash";
  let n = 3 and m = 2 in
  pr env "cluster: n=%d processes + m=%d memories = %d agents; majority = %d@." n m
    (n + m)
    (((n + m) / 2) + 1);
  pr env "%-38s %-10s %-10s@." "killed agents" "decides" "verdict";
  let agent_name a = if a < n then Printf.sprintf "p%d" a else Printf.sprintf "mu%d" (a - n) in
  let kill agents expect =
    let faults =
      List.map
        (fun a ->
          if a < n then Fault.Crash_process { pid = a; at = 0.0 }
          else Fault.Crash_memory { mid = a - n; at = 0.0 })
        agents
    in
    let report = Aligned_paxos.run ~n ~m ~inputs:(inputs n) ~faults () in
    let decided = Report.decided_count report > 0 in
    pr env "%-38s %-10b %-10s@."
      (String.concat ", " (List.map agent_name agents))
      decided
      (if decided = expect then "as expected" else "UNEXPECTED");
  in
  (* every 2-subset of the 5 agents: must still decide *)
  for a = 0 to n + m - 1 do
    for b = a + 1 to n + m - 1 do
      (* skip killing every process (then nobody is left to decide) *)
      kill [ a; b ] true
    done
  done;
  (* one more than a minority: must block *)
  kill [ 1; 2; 3 ] false;
  kill [ 2; 3; 4 ] false;
  pr env "@.Memory-agent ablation (footnote 4) — both modes solve consensus;@.";
  pr env "permissions trade the phase-2 read-back for a permission grab:@.";
  List.iter
    (fun (label, cfg, n, m) ->
      let r = Aligned_paxos.run ~cfg ~n ~m ~inputs:(inputs n) () in
      pr env "  %-34s n=%d m=%d  first decision %s delays@." label n m
        (fmt_delay (Report.first_decision_time r)))
    [
      ("with permissions", Aligned_paxos.default_config, 3, 2);
      ( "disk-style (no permissions)",
        { Aligned_paxos.default_config with mode = Aligned_paxos.Disk },
        3, 2 );
      (* with n=2, m=3 the memories are needed for the majority, so the
         memory path is on the critical path and the modes differ *)
      ("with permissions, memory-bound", Aligned_paxos.default_config, 2, 3);
      ( "disk-style, memory-bound",
        { Aligned_paxos.default_config with mode = Aligned_paxos.Disk },
        2, 3 );
    ]

(* ------------------------------------------------------------------ *)
(* D4: the slow path — Robust Backup & non-equivocating broadcast       *)
(* ------------------------------------------------------------------ *)

let exp_d4 env =
  section env "d4" "The slow path: Robust Backup delay; NEB latency (footnote 2)";
  let n = 3 and m = 3 in
  let report, _ = Robust_backup.run ~n ~m ~inputs:(inputs n) () in
  pr env "Robust Backup alone (n=%d, m=%d): first decision at %s delays@." n m
    (fmt_delay (Report.first_decision_time report));
  pr env "  history burden of the Clement et al. transform:@.";
  pr env "    longest attached history: %d entries; largest payload: %d bytes@."
    (Report.named report "trusted.max_history_entries")
    (Report.named report "trusted.max_payload_bytes");
  let fr, _, _ = Fast_robust.run ~n ~m ~inputs:(inputs n) () in
  pr env "Fast & Robust fast path:          first decision at %s delays@."
    (fmt_delay (Report.first_decision_time fr));
  (* NEB broadcast-to-delivery latency *)
  let open Rdma_mm in
  let open Rdma_sim in
  let cluster : string Cluster.t = Cluster.create ~n ~m () in
  let neb_cfg = { Neb.default_config with give_up_at = 200.0; poll_interval = 1.0 } in
  Neb.setup_regions cluster ~max_seq:neb_cfg.Neb.max_seq ();
  let delivered_at = Array.make n nan in
  for pid = 0 to n - 1 do
    Cluster.spawn cluster ~pid (fun ctx ->
        let neb =
          Neb.create ctx ~cfg:neb_cfg
            ~deliver:(fun ~k:_ ~msg:_ ~src ->
              if src = 0 then delivered_at.(pid) <- Engine.now ctx.Cluster.ctx_engine)
            ()
        in
        Neb.spawn_poller ctx neb;
        if pid = 0 then Neb.broadcast neb "payload")
  done;
  Cluster.run cluster;
  pr env "@.Non-equivocating broadcast delivery times (broadcast at t=0):@.";
  Array.iteri (fun pid t -> pr env "  p%d delivered at %.1f delays@." pid t) delivered_at;
  pr env "Paper (footnote 2): non-equivocating broadcast costs at least 6 delays,@.";
  pr env "which is why Clement et al. alone cannot give a 2-deciding algorithm.@."

(* ------------------------------------------------------------------ *)
(* D5: repeated consensus — "the leader terminates one instance and     *)
(* becomes the default leader in the next" (Section 5.1)                *)
(* ------------------------------------------------------------------ *)

let exp_d5 env =
  section env "d5" "Repeated Protected Memory Paxos: two delays per decision";
  let n = 3 and m = 3 and slots = 6 in
  let cfg = { Protected_paxos_multi.default_config with slots } in
  let input_for ~pid ~instance = Printf.sprintf "cmd%d.%d" pid instance in
  let reports = Protected_paxos_multi.run ~cfg ~n ~m ~input_for () in
  pr env "%-10s %-16s %-14s@." "instance" "first (delays)" "delta";
  let prev = ref 0.0 in
  Array.iteri
    (fun i report ->
      match Report.first_decision_time report with
      | Some t ->
          pr env "%-10d %-16.1f %-14.1f@." i t (t -. !prev);
          prev := t
      | None -> pr env "%-10d %-16s@." i "-")
    reports;
  pr env "@.Steady state: every instance costs exactly one replicated write@.";
  pr env "(2 delays) because the leader retains the write permission.@.";
  (* and across a leader crash *)
  let faults = [ Fault.Crash_process { pid = 0; at = 4.5 } ] in
  let reports = Protected_paxos_multi.run ~cfg ~n ~m ~input_for ~faults () in
  let ok = Array.for_all Report.agreement_ok reports in
  pr env "With a leader crash at t=4.5: per-instance agreement across the@.";
  pr env "takeover = %s; instances decided before the crash keep their values.@."
    (check ok)

(* ------------------------------------------------------------------ *)
(* D6: a BFT log from Fast & Robust per slot                            *)
(* ------------------------------------------------------------------ *)

let exp_d6 env =
  section env "d6" "BFT log: Fast & Robust per slot, pipelined 2-delay appends";
  let n = 3 and m = 3 in
  let input_for ~pid ~slot = Printf.sprintf "cmd%d.%d" pid slot in
  let cfg = { Rdma_smr.Bft_log.default_config with slots = 4 } in
  let reports, _ = Rdma_smr.Bft_log.run ~cfg ~n ~m ~input_for () in
  pr env "%-8s %-18s %-12s %-10s@." "slot" "appended (delays)" "agreement" "decided";
  Array.iteri
    (fun i report ->
      pr env "%-8d %-18s %-12s %d/%d@." i
        (fmt_delay (Report.first_decision_time report))
        (check (Report.agreement_ok report))
        (Report.decided_count report) n)
    reports;
  pr env "@.Each slot is one weak-Byzantine-agreement instance (Theorem 4.9) in@.";
  pr env "its own namespace; the honest leader appends with one signature and@.";
  pr env "one replicated write per slot.  Under a Byzantine leader every slot@.";
  pr env "falls back to Preferential Paxos and correct replicas still agree:@.";
  let base =
    { Fast_robust.default_config with
      cheap_quorum = { Cheap_quorum.default_config with fast_timeout = 30.0 } }
  in
  let byz_cfg = { Rdma_smr.Bft_log.slots = 2; base } in
  let byzantine = [ (0, fun _ -> ()) ] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let reports, byz =
    Rdma_smr.Bft_log.run ~cfg:byz_cfg ~n ~m ~input_for ~byzantine ~faults ()
  in
  Array.iteri
    (fun i report ->
      pr env "  slot %d: decided %s at %s delays, agreement %s@." i
        (match Report.decision_value report with Some v -> v | None -> "-")
        (fmt_delay (Report.first_decision_time report))
        (check (Report.agreement_ok ~ignore_pids:byz report)))
    reports

(* ------------------------------------------------------------------ *)
(* D7: the SMR application layer — append latency and failover downtime *)
(* ------------------------------------------------------------------ *)

let exp_d7 env =
  section env "d7" "Replicated log (Mu-style SMR): append latency and failover downtime";
  let open Rdma_mm in
  let open Rdma_smr in
  let cfg =
    { Smr_log.default_config with replicas = 3; max_entries = 32; serve_until = 600.0 }
  in
  let crash_at = 10.0 in
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:(Smr_log.legal_change cfg)
      ~n:(cfg.Smr_log.replicas + 1) ~m:3 ()
  in
  Smr_log.setup_regions cluster cfg;
  let replicas =
    Array.init cfg.Smr_log.replicas (fun pid -> Smr_log.spawn_replica cluster ~cfg ~pid ())
  in
  let commits = ref [] in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      let rec loop seq =
        if seq < 12 then begin
          let cmd = Printf.sprintf "cmd%d" seq in
          match Smr_log.submit ctx ~cfg ~seq ~cmd ~timeout:200.0 with
          | Some index ->
              commits :=
                (index, Rdma_sim.Engine.now ctx.Cluster.ctx_engine) :: !commits;
              loop (seq + 1)
          | None -> loop (seq + 1)
        end
      in
      loop 0);
  Cluster.crash_process_at cluster ~at:crash_at 0;
  Cluster.run cluster;
  let commits = List.rev !commits in
  pr env "client-observed commit times (leader crash at t=%.0f):@." crash_at;
  let prev = ref 0.0 in
  List.iter
    (fun (index, at) ->
      pr env "  index %-3d committed at %6.1f  (+%.1f)%s@." index at (at -. !prev)
        (if !prev <= crash_at && at > crash_at then "   <- failover gap" else "");
      prev := at)
    commits;
  (match
     List.partition (fun (_, at) -> at <= crash_at) commits
   with
  | (_ :: _ as before), (_, first_after) :: _ ->
      let _, last_before = List.nth before (List.length before - 1) in
      pr env "@.steady-state append RTT: 4 delays (send 1 + replicated write 2 + ack 1)@.";
      pr env "failover downtime: %.1f delays (detection + permission grab + log read/rewrite)@."
        (first_after -. last_before)
  | _ -> ());
  ignore replicas

(* ------------------------------------------------------------------ *)
(* A1: ablations of the design choices (DESIGN.md section 4)            *)
(* ------------------------------------------------------------------ *)

let exp_a1 env =
  section env "a1" "Ablations: what each mechanism buys";
  (* 1. history validation in Robust Backup *)
  pr env "1. Clement et al. history validation (Robust Backup):@.";
  let attack = [ (1, Attacks.rb_spurious_decide ~value:"evil") ] in
  let with_v, _ = Robust_backup.run ~n:3 ~m:3 ~inputs:(inputs 3) ~byzantine:attack () in
  let cfg_off = { Robust_backup.default_config with validate = false } in
  let without_v, _ =
    Robust_backup.run ~cfg:cfg_off ~n:3 ~m:3 ~inputs:(inputs 3) ~byzantine:attack ()
  in
  pr env "   spurious Decide attack, validator ON : decided %s (evil rejected: %s)@."
    (match Report.decision_value with_v with Some v -> v | None -> "-")
    (check (Report.decision_value with_v <> Some "evil"));
  pr env "   spurious Decide attack, validator OFF: decided %s (attack lands)@."
    (match Report.decision_value without_v with Some v -> v | None -> "-");
  (* 2. Cheap Quorum timeout sensitivity *)
  pr env "@.2. Cheap Quorum fast timeout vs decision latency under a silent leader:@.";
  List.iter
    (fun fast_timeout ->
      let cq = { Cheap_quorum.default_config with fast_timeout } in
      let cfg = { Fast_robust.default_config with cheap_quorum = cq } in
      let byzantine = [ (0, Attacks.cq_silent_leader) ] in
      let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
      let report, _, _ =
        Fast_robust.run ~cfg ~n:3 ~m:3 ~inputs:(inputs 3) ~byzantine ~faults ()
      in
      pr env "   timeout=%5.0f -> first correct decision at %s delays@." fast_timeout
        (fmt_delay (Report.first_decision_time report)))
    [ 20.0; 60.0; 120.0 ];
  pr env "   (the timeout bounds the fast path's failure detection; the paper's@.";
  pr env "   footnote 3 assumes it covers common-case delays)@.";
  (* 3. NEB poll cadence vs slow-path latency *)
  pr env "@.3. NEB poll interval vs Robust Backup decision time:@.";
  List.iter
    (fun poll_interval ->
      let cfg =
        { Robust_backup.default_config with
          trusted =
            { Trusted.neb =
                { Neb.ns = ""; max_seq = 128; poll_interval; give_up_at = 4000.0 } } }
      in
      let report, _ = Robust_backup.run ~cfg ~n:3 ~m:3 ~inputs:(inputs 3) () in
      pr env "   poll=%4.1f -> first decision at %s delays (%d memory ops)@."
        poll_interval
        (fmt_delay (Report.first_decision_time report))
        report.Report.mem_ops)
    [ 0.5; 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* L1: Theorem 6.1 — dynamic permissions are necessary                  *)
(* ------------------------------------------------------------------ *)

let exp_l1 env =
  section env "l1" "Theorem 6.1: no 2-deciding consensus from static-permission memory";
  let s = Two_delay_probe.run_synchronous () in
  pr env "optimistic candidate, common case:      decides at %.1f delays, \
          agreement %s@."
    s.Two_delay_probe.first_decision_at
    (check (not s.Two_delay_probe.agreement_violated));
  let a = Two_delay_probe.run_adversarial () in
  pr env "same candidate, Theorem 6.1 schedule:   agreement violated = %b@."
    a.Two_delay_probe.agreement_violated;
  List.iter
    (fun (pid, v, t) -> pr env "    p%d decided %S at %.1f@." pid v t)
    a.Two_delay_probe.decisions;
  let r = Two_delay_probe.run_adversarial_with_revocation () in
  pr env "with dynamic-permission revocation:     agreement violated = %b@."
    r.Two_delay_probe.agreement_violated;
  (* Disk Paxos (static permissions) can never be 2-deciding *)
  let times =
    List.map
      (fun seed ->
        Report.first_decision_time (Disk_paxos.run ~seed ~n:3 ~m:3 ~inputs:(inputs 3) ()))
      [ 1; 2; 3; 4; 5 ]
  in
  pr env "Disk Paxos (static perms) first-decision times over 5 seeds: %a@."
    Fmt.(list ~sep:(any ", ") (option ~none:(any "-") (fmt "%.1f")))
    times;
  pr env "All >= 4.0, consistent with the lower bound.@."

(* ------------------------------------------------------------------ *)
(* F1: Figure 1 — the model itself                                      *)
(* ------------------------------------------------------------------ *)

let exp_f1 env =
  section env "f1" "Figure 1: the M&M model with permissions (self-check)";
  let open Rdma_sim in
  let open Rdma_mem in
  let engine = Engine.create () in
  let stats = Stats.create () in
  let mem = Memory.create ~engine ~stats ~mid:0 () in
  Memory.add_region mem ~name:"mr1" ~perm:(Permission.swmr ~writer:0 ~n:3)
    ~registers:[ "r1"; "r2" ];
  Memory.add_region mem
    ~name:"mr2"
    ~perm:(Permission.make ~read:[ 1 ] ~write:[ 2 ] ())
    ~registers:[ "r3" ];
  pr env "memory 0 regions:@.";
  List.iter
    (fun name ->
      match Memory.region_perm mem name with
      | Some p -> pr env "  %-6s %a@." name Permission.pp p
      | None -> ())
    (Memory.region_names mem);
  ignore
    (Engine.spawn engine "probe" (fun () ->
         let w_ok = Ivar.await (Memory.write_async mem ~from:0 ~region:"mr1" ~reg:"r1" "x") in
         let w_bad = Ivar.await (Memory.write_async mem ~from:1 ~region:"mr1" ~reg:"r1" "y") in
         let r_ok = Ivar.await (Memory.read_async mem ~from:2 ~region:"mr1" ~reg:"r1") in
         let r_bad = Ivar.await (Memory.read_async mem ~from:0 ~region:"mr2" ~reg:"r3") in
         pr env "  owner write -> %s | intruder write -> %s@."
           ((if w_ok = Memory.Ack then "ack" else "nak")
           [@simlint.allow
             "F1 permission demo: prints the completion status itself; \
              no remote-visibility claim"])
           ((if w_bad = Memory.Ack then "ack" else "nak")
           [@simlint.allow "F1 same permission demo as the line above"]);
         pr env "  reader read -> %s | out-of-R read -> %s@."
           (match r_ok with Memory.Read _ -> "ack" | _ -> "nak")
           (match r_bad with Memory.Read _ -> "ack" | _ -> "nak")));
  Engine.run engine;
  pr env "Operation timing: message = 1 delay; memory op = 2 delays (both checked@.";
  pr env "in the unit tests); permissions enforced at the memory, not the caller.@."

(* ------------------------------------------------------------------ *)
(* F6: Figure 6 — component interactions of Fast & Robust               *)
(* ------------------------------------------------------------------ *)

let exp_f6 env =
  section env "f6" "Figure 6: Cheap Quorum -> (abort values) -> Preferential Paxos";
  let n = 3 and m = 3 in
  (* force the fast path to abort: the leader stays silent *)
  let byzantine = [ (0, Attacks.cq_silent_leader) ] in
  let faults = [ Fault.Set_leader { pid = 1; at = 0.0 } ] in
  let cq_cfg = { Cheap_quorum.default_config with fast_timeout = 40.0 } in
  let cfg = { Fast_robust.default_config with cheap_quorum = cq_cfg } in
  let report, byz, cluster =
    Fast_robust.run ~cfg ~n ~m ~inputs:(inputs n) ~byzantine ~faults ()
  in
  pr env "Component hand-off events (the arrows of Figure 6):@.";
  List.iter
    (fun e ->
      if
        String.length e.Rdma_sim.Trace.label >= 12
        && String.sub e.Rdma_sim.Trace.label 0 12 = "cheap-quorum"
      then pr env "  %a@." Rdma_sim.Trace.pp_event e)
    (Rdma_sim.Trace.events (Rdma_mm.Cluster.trace cluster));
  pr env "@.Final decisions (via the backup path):@.";
  Array.iteri
    (fun pid d ->
      match d with
      | Some { Report.value; at } -> pr env "  p%d decided %S at %.1f@." pid value at
      | None -> pr env "  p%d: no decision%s@." pid (if List.mem pid byz then " (Byzantine)" else ""))
    report.Report.decisions;
  pr env "agreement among correct: %s@."
    (check (Report.agreement_ok ~ignore_pids:byz report))

(* ------------------------------------------------------------------ *)
(* M1: memory-crash tolerance sweep (m >= 2fM + 1)                      *)
(* ------------------------------------------------------------------ *)

let exp_m1 env =
  section env "m1" "Memory failures: every algorithm tolerates fM < m/2 crashed memories";
  pr env "m = 5 memories; crash the first k at t=0.@.";
  pr env "%-24s %-10s %-10s %-10s %-14s@." "algorithm" "k=0" "k=1" "k=2"
    "k=3 (majority)";
  let sweep name run =
    let result k =
      let faults = List.init k (fun mid -> Fault.Crash_memory { mid; at = 0.0 }) in
      let report = run ~faults in
      if Report.decided_count report > 0 then
        Printf.sprintf "%s" (fmt_delay (Report.first_decision_time report))
      else "stuck"
    in
    pr env "%-24s %-10s %-10s %-10s %-14s@." name (result 0) (result 1) (result 2)
      (result 3)
  in
  sweep "Protected Memory Paxos" (fun ~faults ->
      Protected_paxos.run ~n:2 ~m:5 ~inputs:(inputs 2) ~faults ());
  sweep "Disk Paxos" (fun ~faults -> Disk_paxos.run ~n:2 ~m:5 ~inputs:(inputs 2) ~faults ());
  sweep "Fast & Robust" (fun ~faults ->
      let r, _, _ = Fast_robust.run ~n:3 ~m:5 ~inputs:(inputs 3) ~faults () in
      r);
  sweep "Robust Backup" (fun ~faults ->
      fst (Robust_backup.run ~n:3 ~m:5 ~inputs:(inputs 3) ~faults ()));
  pr env "@.(Aligned Paxos counts memories as agents — it may even survive a@.";
  pr env "memory majority if enough processes survive; see D3.)@.";
  let faults = List.init 3 (fun mid -> Fault.Crash_memory { mid; at = 0.0 }) in
  let r = Aligned_paxos.run ~n:5 ~m:5 ~inputs:(inputs 5) ~faults () in
  pr env "Aligned Paxos n=5, m=5, 3 memories crashed (7/10 agents alive): %s@."
    (if Report.decided_count r > 0 then "decides" else "stuck")

(* ------------------------------------------------------------------ *)
(* O1: the telemetry subsystem itself — per-phase latency breakdown     *)
(* ------------------------------------------------------------------ *)

let exp_o1 env =
  section env "o1" "Observability: per-phase latency percentiles and trace export";
  let n = 3 and m = 3 in
  let row name run =
    let captured = ref None in
    let prepare cluster =
      captured := Some cluster;
      if env.trace_out <> None then
        Obs.set_recording (Rdma_mm.Cluster.obs cluster) true
    in
    let report = run ~prepare in
    pr env "@.%s (n=%d, m=%d), first decision %s delays:@." name n m
      (fmt_delay (Report.first_decision_time report));
    pr env "%a@." Report.pp_phases report;
    !captured
  in
  let (_ : _ option) =
    row "Paxos" (fun ~prepare -> Paxos.run ~n ~inputs:(inputs n) ~prepare ())
  in
  let (_ : _ option) =
    row "Fast & Robust" (fun ~prepare ->
        let r, _, _ = Fast_robust.run ~n ~m ~inputs:(inputs n) ~prepare () in
        r)
  in
  let captured =
    row "Protected Memory Paxos" (fun ~prepare ->
        Protected_paxos.run ~n ~m ~inputs:(inputs n) ~prepare ())
  in
  match captured with
  | None -> ()
  | Some cluster ->
      let obs = Rdma_mm.Cluster.obs cluster in
      Option.iter
        (fun file ->
          env.exports <- env.exports @ [ (file, Export.render_trace obs ~file) ];
          pr env "@.trace (protected-paxos run) written to %s (%d entries)@."
            file (Obs.entry_count obs))
        env.trace_out;
      Option.iter
        (fun file ->
          env.exports <- env.exports @ [ (file, Export.metrics obs) ];
          pr env "metrics (protected-paxos run) written to %s@." file)
        env.metrics_out

(* ------------------------------------------------------------------ *)
(* C1: chaos exploration — violation rates across the registry          *)
(* ------------------------------------------------------------------ *)

let exp_c1 env =
  section env "c1"
    "Chaos: seeded nemesis schedules vs the invariant oracle, all scenarios";
  let open Rdma_chaos in
  pr env
    "@.%d schedules per scenario (seed base 1), nemesis within each fault \
     model; Byzantine scenarios also draw attacks and arm phase-boundary \
     triggers:@.@."
    100;
  pr env "%-18s %-10s %-6s %-10s %-12s@." "scenario" "schedules" "ok"
    "violations" "mode";
  List.iter
    (fun scenario ->
      let byz = scenario.Scenario.attack_pool <> [] in
      let options =
        { Explore.default_options with
          runs = 100; seed = 1; adversary = true; byz; jobs = env.jobs }
      in
      let batch = Explore.explore ~options scenario in
      pr env "%-18s %-10d %-6d %-10d %-12s@." scenario.Scenario.name
        (Explore.total batch) batch.Explore.passed
        (List.length batch.Explore.failures)
        (if byz then "byz+trigger" else "trigger"))
    Scenario.all;
  (* The shrinker, demonstrated: unleash the budget past Paxos's fault
     model (majority crashes become possible) and minimize the first
     violating schedule. *)
  let paxos = Option.get (Scenario.find "paxos") in
  let options =
    { Explore.default_options with
      runs = 10; seed = 1; over_budget = true; jobs = env.jobs }
  in
  let batch = Explore.explore ~options paxos in
  match batch.Explore.failures with
  | [] -> pr env "@.over-budget paxos: no violation in 10 schedules (unexpected)@."
  | f :: _ ->
      pr env
        "@.over-budget paxos seed %d: %d-fault schedule shrunk to %d faults (%d \
         probe runs):@."
        f.Explore.outcome.Scenario.case.Nemesis.case_seed
        (List.length f.Explore.outcome.Scenario.case.Nemesis.faults)
        (List.length f.Explore.repro.Repro.faults)
        f.Explore.shrink_probes;
      pr env "  %a@." Fmt.(list ~sep:(any ", ") Fault.pp) f.Explore.repro.Repro.faults;
      List.iter
        (fun v -> pr env "  violation: %s@." v)
        f.Explore.repro.Repro.violations

(* ------------------------------------------------------------------ *)
(* W2: weak memory ordering — chaos grids under each ordering model     *)
(* ------------------------------------------------------------------ *)

let exp_w2 env =
  section env "w2"
    "Weak memory ordering: chaos grids under strict / completion-lag / \
     reordered-qp";
  let open Rdma_chaos in
  let modes =
    [
      Rdma_mem.Ordering.Strict;
      Rdma_mem.Ordering.completion_lag;
      Rdma_mem.Ordering.reorder_qp;
    ]
  in
  pr env "@.100 adversary schedules per scenario per mode (seed base 1).  A@.";
  pr env "forced ordering mode consumes no nemesis draws, so each weak-mode@.";
  pr env "schedule is its strict twin with one Set_ordering fault prepended:@.";
  pr env "the columns differ only in the memory model.@.@.";
  pr env "%-18s %-16s %-16s %-16s@." "scenario" "strict" "completion-lag"
    "reordered-qp";
  List.iter
    (fun scenario ->
      let byz = scenario.Scenario.attack_pool <> [] in
      let cell mode =
        let options =
          { Explore.default_options with
            runs = 100; seed = 1; adversary = true; byz;
            ordering = Some mode; jobs = env.jobs }
        in
        let batch = Explore.explore ~options scenario in
        Printf.sprintf "%d/%d ok" batch.Explore.passed (Explore.total batch)
      in
      match List.map cell modes with
      | [ a; b; c ] ->
          pr env "%-18s %-16s %-16s %-16s@." scenario.Scenario.name a b c
      | _ -> assert false)
    Scenario.all;
  pr env "@.Why the grid is clean (see EXPERIMENTS.md for the per-algorithm@.";
  pr env "argument): disk-paxos self-fences — every round is an awaited write@.";
  pr env "followed by a same-QP read-back, and reads order after the issuer's@.";
  pr env "own writes; the protected/aligned family is covered by permission@.";
  pr env "changes draining the data plane (dynamic permissions subsume@.";
  pr env "fencing); message-only algorithms never touch the weak substrate;@.";
  pr env "and SWMR readers treat bounded staleness as not-yet-written.  The@.";
  pr env "one genuine casualty was swmr-recovery's repair sweep under@.";
  pr env "reordered-qp — a fastest-majority read could miss the rejoined@.";
  pr env "replica on every sweep — fixed structurally with a grace-window@.";
  pr env "await-all read, not with a fence.@."

(* ------------------------------------------------------------------ *)
(* R1: recovery — memory rejoin and state-transfer latency (SMR log)    *)
(* ------------------------------------------------------------------ *)

let exp_r1 env =
  section env "r1" "Recovery: crashed-memory rejoin and state-transfer latency (SMR log)";
  let open Rdma_mm in
  let open Rdma_smr in
  pr env "A replica memory crashes at t=20 and rejoins EMPTY at t=40 under a@.";
  pr env "fresh epoch; the leader detects the rejoin and re-replicates@.";
  pr env "(checkpoint + live entries).  Repair latency is measured from the@.";
  pr env "Mem_restart telemetry event to the smr.repair event.@.@.";
  pr env "%-18s %-9s %-7s %-16s %-12s@." "checkpoint_every" "commits" "ckpts"
    "repair (delays)" "fully fresh";
  List.iter
    (fun checkpoint_every ->
      let cfg =
        { Smr_log.default_config with
          replicas = 3; max_entries = 32; serve_until = 300.0; checkpoint_every }
      in
      let cluster : string Cluster.t =
        Cluster.create ~legal_change:(Smr_log.legal_change cfg)
          ~n:(cfg.Smr_log.replicas + 1) ~m:3 ()
      in
      Smr_log.setup_regions cluster cfg;
      let replicas =
        Array.init cfg.Smr_log.replicas (fun pid ->
            Smr_log.spawn_replica cluster ~cfg ~pid ())
      in
      Cluster.spawn cluster ~pid:3 (fun ctx ->
          for seq = 0 to 11 do
            ignore
              (Smr_log.submit ctx ~cfg ~seq
                 ~cmd:(Printf.sprintf "cmd%d" seq)
                 ~timeout:200.0)
          done);
      let restart_at = ref nan and repaired_at = ref nan in
      Obs.subscribe (Cluster.obs cluster) (fun ~at ~actor:_ ev ->
          match (ev : Event.t) with
          | Event.Mem_restart { mid = 1; _ } -> restart_at := at
          | Event.Custom { name = "smr.repair"; detail = "mu1" } ->
              if Float.is_nan !repaired_at then repaired_at := at
          | _ -> ());
      Fault.apply cluster
        [
          Fault.Crash_memory { mid = 1; at = 20.0 };
          Fault.Recover_memory { mid = 1; at = 40.0 };
        ];
      Cluster.run cluster;
      let stale =
        Rdma_mem.Memory.stale_registers (Cluster.memory cluster 1)
          ~region:Smr_log.region
      in
      pr env "%-18d %-9d %-7d %-16s %-12s@." checkpoint_every
        (Smr_log.applied_count replicas.(0))
        (Rdma_sim.Stats.get (Cluster.stats cluster) "smr.checkpoints")
        (if Float.is_nan !repaired_at || Float.is_nan !restart_at then "-"
         else Printf.sprintf "%.1f" (!repaired_at -. !restart_at))
        (check (stale = [])))
    [ 0; 4; 2 ];
  pr env "@.With checkpointing the transfer is one snapshot register plus the@.";
  pr env "live tail instead of the whole log; either way the rejoined memory@.";
  pr env "ends fully fresh (stale_registers = []), so it counts toward read@.";
  pr env "quorums again without ever serving its lost state as bottom.@."

(* ------------------------------------------------------------------ *)
(* V1: engine head-to-head — pmp vs velos (one-sided Paxos + leases)    *)
(* ------------------------------------------------------------------ *)

(* One measured run of an SMR engine: 3 replicas plus a client that
   submits commands and then issues linearizable reads, with per-phase
   virtual-delay and substrate-op accounting.  [crash] kills the
   leader mid-stream so the largest inter-ack interval measures the
   failover gap (detection + recovery + — for velos — the lease wait). *)
type v1_row = {
  v1_commits : int;
  v1_commit_delay : float;  (* avg virtual delays per acked submit *)
  v1_read_delay : float;  (* avg virtual delays per linearizable read *)
  v1_leased : int;  (* velos: reads served off the local lease *)
  v1_paid : int;  (* read rounds that touched memory (pmp lease-write
                     confirms + velos quorum fallbacks) *)
  v1_msgs : int;
  v1_mem_ops : int;
  v1_agree : bool;  (* surviving replicas applied identical logs *)
  v1_gap : float;  (* crash runs: largest gap between client acks *)
  v1_lease_waits : int;  (* velos: successors that waited out a lease *)
}

let v1_run (engine : Rdma_smr.Consensus_engine.engine) ~mode ~crash =
  let open Rdma_mm in
  let open Rdma_smr in
  let module E = (val engine : Consensus_engine.S) in
  let cfg =
    {
      Consensus_engine.default_config with
      replicas = 3;
      max_entries = 48;
      serve_until = 300.0;
      checkpoint_every = 5;
      anti_entropy_every = 10.0;
      (* Long enough that every steady-state read lands under the lease
         (velos refreshes it at reign start) and that a failover
         successor genuinely has a remaining term to wait out. *)
      lease_duration = 100.0;
    }
  in
  let cluster : string Cluster.t =
    Cluster.create ~legal_change:(E.legal_change cfg) ~n:4 ~m:3 ()
  in
  E.setup_regions cluster cfg;
  let replicas =
    Array.init cfg.Consensus_engine.replicas (fun pid ->
        E.spawn_replica cluster ~cfg ~pid ())
  in
  let stats = Cluster.stats cluster in
  let eng = Cluster.engine cluster in
  let n_cmds = if crash then 10 else 8 in
  let commit_delays = ref [] and read_delays = ref [] in
  let ack_times = ref [] in
  Cluster.spawn cluster ~pid:3 (fun ctx ->
      for seq = 0 to n_cmds - 1 do
        let t0 = Rdma_sim.Engine.now eng in
        (* Retry past failovers; a committed-but-unacked submit is
           deduplicated by (client, seq) on the next attempt. *)
        let rec attempt () =
          if Rdma_sim.Engine.now eng < 150.0 then
            match
              E.submit ctx ~cfg ~seq
                ~cmd:(Printf.sprintf "c%d" seq)
                ~timeout:30.0
            with
            | Some _ ->
                commit_delays :=
                  (Rdma_sim.Engine.now eng -. t0) :: !commit_delays;
                ack_times := Rdma_sim.Engine.now eng :: !ack_times
            | None -> attempt ()
        in
        attempt ()
      done;
      for seq = 100 to 105 do
        let t0 = Rdma_sim.Engine.now eng in
        match E.linearizable_read ctx ~cfg ~seq ~timeout:30.0 with
        | Some _ ->
            read_delays := (Rdma_sim.Engine.now eng -. t0) :: !read_delays
        | None -> ()
      done);
  let faults =
    (match (mode : Rdma_mem.Ordering.mode) with
    | Rdma_mem.Ordering.Strict -> []
    | m -> [ Fault.Set_ordering { mode = m } ])
    @ if crash then [ Fault.Crash_process { pid = 0; at = 40.0 } ] else []
  in
  Fault.apply cluster faults;
  Cluster.run cluster;
  let logs =
    Array.to_list (Array.map E.applied_entries replicas)
    |> List.filteri (fun pid _ -> not (crash && pid = 0))
  in
  let agree =
    match logs with [] -> false | l :: rest -> List.for_all (( = ) l) rest
  in
  let avg = function
    | [] -> nan
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  let gap =
    match List.sort compare !ack_times with
    | [] | [ _ ] -> nan
    | t :: rest ->
        let worst, _ =
          List.fold_left
            (fun (worst, prev) t -> (Float.max worst (t -. prev), t))
            (0.0, t) rest
        in
        worst
  in
  {
    v1_commits = E.applied_count replicas.(1);
    v1_commit_delay = avg !commit_delays;
    v1_read_delay = avg !read_delays;
    v1_leased = Rdma_sim.Stats.get stats "velos.reads.leased";
    v1_paid =
      Rdma_sim.Stats.get stats "smr.reads.confirm"
      + Rdma_sim.Stats.get stats "velos.reads.quorum";
    v1_msgs = stats.Rdma_sim.Stats.messages_sent;
    v1_mem_ops = Rdma_sim.Stats.mem_ops stats;
    v1_agree = agree;
    v1_gap = gap;
    v1_lease_waits = Rdma_sim.Stats.get stats "velos.lease.waits";
  }

let exp_v1 env =
  section env "v1"
    "Engine head-to-head: pmp (RPC log on Protected Memory Paxos) vs \
     velos (one-sided Paxos, passive memories, leader leases)";
  let open Rdma_smr in
  let modes =
    [
      Rdma_mem.Ordering.Strict;
      Rdma_mem.Ordering.completion_lag;
      Rdma_mem.Ordering.reorder_qp;
    ]
  in
  pr env "Same workload against both consensus engines: 8 client commands@.";
  pr env "followed by 6 linearizable reads, 3 replicas / 3 memories.  pmp@.";
  pr env "replicates through follower processes (messages); velos writes@.";
  pr env "follower memories directly (one-sided ops) and serves reads off a@.";
  pr env "quorum-acked leader lease on virtual time.@.@.";
  let steady =
    List.map
      (fun engine ->
        let module E = (val engine : Consensus_engine.S) in
        ( E.name,
          List.map (fun mode -> (mode, v1_run engine ~mode ~crash:false)) modes
        ))
      Engines.all
  in
  pr env "-- steady state (strict ordering) --------------------------------@.";
  pr env "%-7s %-8s %-13s %-11s %-7s %-6s %-6s %-8s@." "engine" "commits"
    "commit (dly)" "read (dly)" "leased" "paid" "msgs" "mem-ops";
  List.iter
    (fun (name, rows) ->
      let r = List.assoc Rdma_mem.Ordering.Strict rows in
      pr env "%-7s %-8d %-13.1f %-11.1f %-7d %-6d %-6d %-8d@." name
        r.v1_commits r.v1_commit_delay r.v1_read_delay r.v1_leased r.v1_paid
        r.v1_msgs r.v1_mem_ops)
    steady;
  pr env "@.The trade the paper's Section 6 predicts: velos moves replication@.";
  pr env "cost from the message plane onto one-sided memory ops, and its@.";
  pr env "leased reads never touch memory at all — the perf baseline pins@.";
  pr env "mem.ops.issued = 0 under the velos.read.leased profiler scope,@.";
  pr env "against 3 issued writes per pmp.read.lease confirm round ('paid'@.";
  pr env "counts read rounds that had to touch memory).@.@.";
  pr env "-- weak memory-ordering grid -------------------------------------@.";
  pr env "%-7s %-16s %-8s %-13s %-6s@." "engine" "ordering" "commits"
    "commit (dly)" "agree";
  List.iter
    (fun (name, rows) ->
      List.iter
        (fun (mode, r) ->
          pr env "%-7s %-16s %-8d %-13.1f %-6s@." name
            (Rdma_mem.Ordering.name mode)
            r.v1_commits r.v1_commit_delay (check r.v1_agree))
        rows)
    steady;
  pr env "@.Both engines keep agreement under completion-lag and reordered-qp@.";
  pr env "because their commit points sit behind fences/acks, not behind@.";
  pr env "local completions (the chaos ordering axis hunts for violations@.";
  pr env "of exactly this).@.@.";
  pr env "-- leader failover (crash p0 at t=40, strict) --------------------@.";
  pr env "%-7s %-8s %-12s %-13s %-6s@." "engine" "commits" "gap (dly)"
    "lease waits" "agree";
  List.iter
    (fun engine ->
      let module E = (val engine : Consensus_engine.S) in
      let r = v1_run engine ~mode:Rdma_mem.Ordering.Strict ~crash:true in
      pr env "%-7s %-8d %-12.1f %-13d %-6s@." E.name r.v1_commits r.v1_gap
        r.v1_lease_waits (check r.v1_agree))
    Engines.all;
  pr env "@.Failover is where leases bill you: a velos successor must wait@.";
  pr env "out the deposed leader's lease (lease waits > 0) before serving@.";
  pr env "reads, so its ack gap carries the remaining lease term on top of@.";
  pr env "detection + recovery.  pmp pays nothing extra — its reads were@.";
  pr env "never local to begin with.  Cheap reads are a loan against@.";
  pr env "failover latency.@."

(* ------------------------------------------------------------------ *)
(* B1: wall-clock microbenches (Bechamel)                               *)
(* ------------------------------------------------------------------ *)

let bechamel_benches env =
  section env "b1" "Bechamel wall-clock microbenches (simulator + crypto + algorithms)";
  let open Bechamel in
  let open Toolkit in
  let test_of (name, f) = Test.make ~name (Staged.stage f) in
  let tests =
    List.map test_of
      [
        ("sha256/1KiB", fun () -> ignore (Rdma_crypto.Sha256.digest_string (String.make 1024 'x')));
        ("hmac/64B", fun () -> ignore (Rdma_crypto.Hmac.mac ~key:"k" (String.make 64 'm')));
        ( "sim/10k-events",
          fun () ->
            let open Rdma_sim in
            let e = Engine.create () in
            for i = 1 to 10_000 do
              Engine.schedule e (float_of_int i) (fun () -> ())
            done;
            Engine.run e );
        (* one full simulated consensus instance per algorithm (T1/D1/D2
           rows as wall-clock costs) *)
        ("paxos/n3", fun () -> ignore (Paxos.run ~n:3 ~inputs:(inputs 3) ()));
        ("fast-paxos/n3", fun () -> ignore (Fast_paxos.run ~n:3 ~inputs:(inputs 3) ()));
        ( "disk-paxos/n3m3",
          fun () -> ignore (Disk_paxos.run ~n:3 ~m:3 ~inputs:(inputs 3) ()) );
        ( "protected-paxos/n3m3",
          fun () -> ignore (Protected_paxos.run ~n:3 ~m:3 ~inputs:(inputs 3) ()) );
        ( "aligned-paxos/n3m2",
          fun () -> ignore (Aligned_paxos.run ~n:3 ~m:2 ~inputs:(inputs 3) ()) );
        ( "fast-robust/n3m3",
          fun () -> ignore (Fast_robust.run ~n:3 ~m:3 ~inputs:(inputs 3) ()) );
        ( "robust-backup/n3m3",
          fun () -> ignore (Robust_backup.run ~n:3 ~m:3 ~inputs:(inputs 3) ()) );
        ( "pmp-multi/6slots",
          fun () ->
            ignore
              (Protected_paxos_multi.run
                 ~cfg:{ Protected_paxos_multi.default_config with slots = 6 }
                 ~n:3 ~m:3
                 ~input_for:(fun ~pid ~instance ->
                   Printf.sprintf "c%d.%d" pid instance)
                 ()) );
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) () in
  pr env "%-24s %16s %10s@." "benchmark" "time/run" "samples";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyze =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.fold (fun label result acc -> (label, result) :: acc) analyze []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (label, result) ->
             let samples =
               match Hashtbl.find_opt results label with
               | Some b -> b.Benchmark.stats.Benchmark.samples
               | None -> 0
             in
             match Analyze.OLS.estimates result with
             | Some [ est ] ->
                 let time =
                   if est > 1_000_000.0 then Printf.sprintf "%.2f ms" (est /. 1_000_000.)
                   else if est > 1_000.0 then Printf.sprintf "%.2f us" (est /. 1_000.)
                   else Printf.sprintf "%.0f ns" est
                 in
                 env.bench_rows <- env.bench_rows @ [ (label, est, samples) ];
                 pr env "%-24s %16s %10d@." label time samples
             | _ -> pr env "%-24s %16s %10d@." label "?" samples))
    tests

(* ------------------------------------------------------------------ *)
(* The declared experiment list and the pooled suite driver             *)
(* ------------------------------------------------------------------ *)

(* [wall_clock] experiments measure real time; their output is
   inherently nondeterministic, so the driver keeps them off the pool
   and determinism checks exclude them. *)
type exp = { id : string; wall_clock : bool; run : env -> unit }

let all =
  [
    { id = "t1"; wall_clock = false; run = exp_t1 };
    { id = "d1"; wall_clock = false; run = exp_d1 };
    { id = "d2"; wall_clock = false; run = exp_d2 };
    { id = "d3"; wall_clock = false; run = exp_d3 };
    { id = "d4"; wall_clock = false; run = exp_d4 };
    { id = "d5"; wall_clock = false; run = exp_d5 };
    { id = "d6"; wall_clock = false; run = exp_d6 };
    { id = "d7"; wall_clock = false; run = exp_d7 };
    { id = "a1"; wall_clock = false; run = exp_a1 };
    { id = "l1"; wall_clock = false; run = exp_l1 };
    { id = "f1"; wall_clock = false; run = exp_f1 };
    { id = "f6"; wall_clock = false; run = exp_f6 };
    { id = "m1"; wall_clock = false; run = exp_m1 };
    { id = "o1"; wall_clock = false; run = exp_o1 };
    { id = "c1"; wall_clock = false; run = exp_c1 };
    { id = "w2"; wall_clock = false; run = exp_w2 };
    { id = "r1"; wall_clock = false; run = exp_r1 };
    { id = "v1"; wall_clock = false; run = exp_v1 };
    { id = "bechamel"; wall_clock = true; run = bechamel_benches };
  ]

let ids () = List.map (fun e -> e.id) all

let find id = List.find_opt (fun e -> e.id = id) all

(* Substitute every "<id>" in a --perf-out template; see bench/main.ml. *)
let perf_file template id =
  let marker = "<id>" in
  let buf = Buffer.create (String.length template) in
  let ml = String.length marker in
  let i = ref 0 in
  while !i < String.length template do
    if
      !i + ml <= String.length template
      && String.sub template !i ml = marker
    then begin
      Buffer.add_string buf id;
      i := !i + ml
    end
    else begin
      Buffer.add_char buf template.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Run one experiment into its own buffer: the task's result is the
   rendered output plus the export blobs, both plain strings.

   With [perf_out], the experiment runs under its own work profiler and
   exports a perf snapshot.  Wall-clock experiments get no profiler —
   Bechamel's iteration counts depend on real time, so their op counts
   are not deterministic and must stay out of the snapshot's
   deterministic plane; their Bechamel estimates land in the timing
   plane instead.  Deterministic experiments capture both planes
   (timing is real wall-clock and varies run to run; only the
   deterministic plane is byte-stable). *)
let run_one ~jobs ~trace_out ~metrics_out ?perf_out e =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let env = { ppf; trace_out; metrics_out; jobs; exports = []; bench_rows = [] } in
  (match perf_out with
  | None -> e.run env
  | Some template ->
      let prof = Prof.create () in
      if e.wall_clock then e.run env
      else Prof.with_profiler prof (fun () -> e.run env);
      List.iter
        (fun (label, est_ns, samples) ->
          let s = est_ns /. 1e9 in
          Prof.add_timing prof ~path:("bechamel;" ^ label) ~calls:samples
            ~total_s:s ~self_s:s)
        env.bench_rows;
      env.exports <-
        env.exports
        @ [
            ( perf_file template e.id,
              Export.perf_snapshot ~wall_clock:e.wall_clock ~id:e.id prof );
          ]);
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, env.exports)

let write_file (file, contents) =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Run the selected experiments (ids must be valid — see {!find}) and
   print their outputs in request order; file exports are written after
   the runs, also in request order.  With [jobs > 1] and more than one
   pool-eligible experiment, experiments are dispatched across domains
   and each runs its inner pools at jobs = 1 (so nested pools never
   multiply domains); with a single selected experiment, the whole
   [jobs] budget goes to that experiment's inner pools instead.  Either
   way the bytes printed are identical to a sequential run. *)
let run_suite ?(jobs = 1) ?trace_out ?metrics_out ?perf_out requested =
  let selected =
    List.map
      (fun id ->
        match find id with
        | Some e -> e
        | None -> invalid_arg ("run_suite: unknown experiment " ^ id))
      requested
  in
  let indexed = List.mapi (fun i e -> (i, e)) selected in
  let pooled, serial = List.partition (fun (_, e) -> not e.wall_clock) indexed in
  let across = jobs > 1 && List.length pooled > 1 in
  let inner_jobs = if across then 1 else jobs in
  let results = Array.make (List.length selected) ("", []) in
  Rdma_sim.Pool.run_exn
    ~jobs:(if across then jobs else 1)
    (List.map
       (fun (i, e) ->
         Rdma_sim.Task.make ~label:e.id ~seed:i (fun ~seed:_ ->
             (i, run_one ~jobs:inner_jobs ~trace_out ~metrics_out ?perf_out e)))
       pooled)
  |> List.iter (fun (i, r) -> results.(i) <- r);
  (* wall-clock experiments run on the calling domain, after the pool *)
  List.iter
    (fun (i, e) ->
      results.(i) <- run_one ~jobs:inner_jobs ~trace_out ~metrics_out ?perf_out e)
    serial;
  Array.iter
    (fun (output, _) -> print_string output)
    results;
  Array.iter (fun (_, exports) -> List.iter write_file exports) results
