(* Experiment-harness CLI: argument parsing only; the experiments and
   the pooled suite driver live in the Experiments library.

     dune exec bench/main.exe             # all experiments
     dune exec bench/main.exe -- d2 m1    # a subset
     dune exec bench/main.exe -- -j 4     # experiments across 4 domains
     dune exec bench/main.exe -- bechamel # wall-clock microbenches *)

let usage () =
  Fmt.epr
    "usage: main.exe [-j N] [--trace-out FILE] [--metrics-out FILE] \
     [--perf-out TEMPLATE] [ID..]@.";
  Fmt.epr
    "  --perf-out TEMPLATE  write one perf snapshot per experiment; every@.";
  Fmt.epr
    "                       <id> in TEMPLATE is replaced by the experiment id@.";
  exit 1

let () =
  (* Split the option flags (with their argument, = or space separated)
     from the experiment ids. *)
  let prefixed prefix arg =
    let lp = String.length prefix in
    if String.length arg > lp && String.sub arg 0 lp = prefix then
      Some (String.sub arg lp (String.length arg - lp))
    else None
  in
  let rec parse (ids, trace_out, metrics_out, perf_out, jobs) = function
    | [] -> (List.rev ids, trace_out, metrics_out, perf_out, jobs)
    | "--trace-out" :: file :: rest ->
        parse (ids, Some file, metrics_out, perf_out, jobs) rest
    | "--metrics-out" :: file :: rest ->
        parse (ids, trace_out, Some file, perf_out, jobs) rest
    | "--perf-out" :: tmpl :: rest ->
        parse (ids, trace_out, metrics_out, Some tmpl, jobs) rest
    | ("-j" | "--jobs") :: n :: rest -> (
        match int_of_string_opt n with
        | Some j -> parse (ids, trace_out, metrics_out, perf_out, j) rest
        | None -> usage ())
    | arg :: rest -> (
        match
          ( prefixed "--trace-out=" arg,
            prefixed "--metrics-out=" arg,
            prefixed "--perf-out=" arg,
            (match prefixed "--jobs=" arg with
            | Some n -> Some n
            | None -> prefixed "-j" arg) )
        with
        | Some file, _, _, _ ->
            parse (ids, Some file, metrics_out, perf_out, jobs) rest
        | _, Some file, _, _ ->
            parse (ids, trace_out, Some file, perf_out, jobs) rest
        | _, _, Some tmpl, _ ->
            parse (ids, trace_out, metrics_out, Some tmpl, jobs) rest
        | _, _, _, Some n -> (
            match int_of_string_opt n with
            | Some j -> parse (ids, trace_out, metrics_out, perf_out, j) rest
            | None -> usage ())
        | None, None, None, None ->
            parse (arg :: ids, trace_out, metrics_out, perf_out, jobs) rest)
  in
  let ids, trace_out, metrics_out, perf_out, jobs =
    parse
      ([], None, None, None, Rdma_sim.Pool.default_jobs ())
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match ids with
    | _ :: _ -> ids
    | [] ->
        (* A bare --trace-out run means "just the observability
           experiment", not the full suite. *)
        if trace_out <> None || metrics_out <> None then [ "o1" ]
        else Rdma_bench.Experiments.ids ()
  in
  List.iter
    (fun id ->
      if Rdma_bench.Experiments.find id = None then begin
        Fmt.epr "unknown experiment %s (known: %s)@." id
          (String.concat ", " (Rdma_bench.Experiments.ids ()));
        exit 1
      end)
    requested;
  (* A template without <id> would make several experiments overwrite
     each other's snapshot; refuse it up front. *)
  (match perf_out with
  | Some tmpl
    when List.length requested > 1
         && Rdma_bench.Experiments.perf_file tmpl "" = tmpl ->
      (* substituting "" changed nothing => no <id> marker present *)
      Fmt.epr
        "--perf-out: template %S has no <id> marker but %d experiments are \
         selected@."
        tmpl (List.length requested);
      exit 1
  | _ -> ());
  Rdma_bench.Experiments.run_suite ~jobs ?trace_out ?metrics_out ?perf_out
    requested
