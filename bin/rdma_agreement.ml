(* Command-line driver: run any of the repository's agreement algorithms
   on a simulated M&M cluster with a declarative fault schedule, and
   print decisions, delay counts and substrate statistics.

     dune exec bin/rdma_agreement.exe -- run fast-robust -n 3 -m 3
     dune exec bin/rdma_agreement.exe -- run protected-paxos -n 2 -m 3 \
         --crash-process 1@0.0 --crash-memory 2@1.5
     dune exec bin/rdma_agreement.exe -- list *)

open Cmdliner
open Rdma_consensus
open Rdma_obs

type algorithm = {
  name : string;
  descr : string;
  needs_memories : bool;
  exec :
    seed:int ->
    n:int ->
    m:int ->
    inputs:string array ->
    faults:Fault.t list ->
    prepare:(string Rdma_mm.Cluster.t -> unit) ->
    Report.t;
}

let algorithms =
  [
    {
      name = "paxos";
      descr = "classic Paxos (messages only, n >= 2f+1, 4 delays)";
      needs_memories = false;
      exec =
        (fun ~seed ~n ~m:_ ~inputs ~faults ~prepare ->
          Paxos.run ~seed ~n ~inputs ~faults ~prepare ());
    };
    {
      name = "fast-paxos";
      descr = "Fast Paxos (messages only, n >= 2f+1, 2 delays common case)";
      needs_memories = false;
      exec =
        (fun ~seed ~n ~m:_ ~inputs ~faults ~prepare ->
          Fast_paxos.run ~seed ~n ~inputs ~faults ~prepare ());
    };
    {
      name = "disk-paxos";
      descr = "Disk Paxos (memories only, n >= f+1, m >= 2fM+1, 4 delays)";
      needs_memories = true;
      exec =
        (fun ~seed ~n ~m ~inputs ~faults ~prepare ->
          Disk_paxos.run ~seed ~n ~m ~inputs ~faults ~prepare ());
    };
    {
      name = "protected-paxos";
      descr =
        "Protected Memory Paxos (Algorithm 7: n >= f+1, m >= 2fM+1, 2 delays)";
      needs_memories = true;
      exec =
        (fun ~seed ~n ~m ~inputs ~faults ~prepare ->
          Protected_paxos.run ~seed ~n ~m ~inputs ~faults ~prepare ());
    };
    {
      name = "aligned-paxos";
      descr = "Aligned Paxos (Section 5.2: any minority of n+m agents may crash)";
      needs_memories = true;
      exec =
        (fun ~seed ~n ~m ~inputs ~faults ~prepare ->
          Aligned_paxos.run ~seed ~n ~m ~inputs ~faults ~prepare ());
    };
    {
      name = "robust-backup";
      descr = "Robust Backup (Theorem 4.4: Byzantine, n >= 2f+1, slow path)";
      needs_memories = true;
      exec =
        (fun ~seed ~n ~m ~inputs ~faults ~prepare ->
          fst (Robust_backup.run ~seed ~n ~m ~inputs ~faults ~prepare ()));
    };
    {
      name = "fast-robust";
      descr = "Fast & Robust (Theorem 4.9: Byzantine, n >= 2f+1, 2 delays)";
      needs_memories = true;
      exec =
        (fun ~seed ~n ~m ~inputs ~faults ~prepare ->
          let r, _, _ = Fast_robust.run ~seed ~n ~m ~inputs ~faults ~prepare () in
          r);
    };
  ]

(* "smr" is engine-parametric (--engine), so it is not a closed [exec]
   in the list above; [find_algorithm] builds it per engine choice. *)
let smr_descr =
  "replicated log over a pluggable consensus engine (--engine, see \
   list-engines)"

let engine_names = Rdma_smr.Engines.names

let engine_arg =
  let doc =
    "SMR consensus engine: "
    ^ String.concat ", "
        (List.map
           (fun (module E : Rdma_smr.Consensus_engine.S) ->
             Printf.sprintf "$(b,%s) (%s)" E.name E.descr)
           Rdma_smr.Engines.all)
    ^ "."
  in
  Arg.(value
      & opt (enum (List.map (fun n -> (n, n)) engine_names)) "pmp"
      & info [ "engine" ] ~docv:"ENGINE" ~doc)

let find_algorithm ~engine name =
  if name = "smr" then
    Some
      {
        name = "smr";
        descr = smr_descr;
        needs_memories = true;
        exec =
          (fun ~seed ~n ~m ~inputs ~faults ~prepare ->
            Rdma_smr.Harness.run
              ~engine:(Rdma_smr.Engines.get engine)
              ~seed ~n ~m ~inputs ~faults ~prepare ());
      }
  else List.find_opt (fun a -> a.name = name) algorithms

(* "pid@time" *)
let event_conv =
  let parse s =
    match String.split_on_char '@' s with
    | [ id; at ] -> (
        match (int_of_string_opt id, float_of_string_opt at) with
        | Some id, Some at -> Ok (id, at)
        | _ -> Error (`Msg (Printf.sprintf "expected ID@TIME, got %s" s)))
    | _ -> Error (`Msg (Printf.sprintf "expected ID@TIME, got %s" s))
  in
  let print ppf (id, at) = Fmt.pf ppf "%d@%.1f" id at in
  Arg.conv (parse, print)

(* "pid:mid@time" *)
let machine_conv =
  let parse s =
    let err () = Error (`Msg (Printf.sprintf "expected PID:MID@TIME, got %s" s)) in
    match String.split_on_char '@' s with
    | [ ids; at ] -> (
        match String.split_on_char ':' ids with
        | [ pid; mid ] -> (
            match
              (int_of_string_opt pid, int_of_string_opt mid, float_of_string_opt at)
            with
            | Some pid, Some mid, Some at -> Ok (pid, mid, at)
            | _ -> err ())
        | _ -> err ())
    | _ -> err ()
  in
  let print ppf (pid, mid, at) = Fmt.pf ppf "%d:%d@%.1f" pid mid at in
  Arg.conv (parse, print)

(* "strict" | "completion-lag[:MAX_LAG]" | "reordered-qp[:WINDOW]" *)
let ordering_conv =
  let parse s =
    match Rdma_mem.Ordering.of_string s with
    | Ok mode -> Ok mode
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Rdma_mem.Ordering.pp)

let ordering_arg =
  let doc =
    "Memory-ordering model for the RDMA substrate: $(b,strict) (completion \
     implies remote apply — today's default), $(b,completion-lag)[:MAX_LAG] \
     (the issuer's completion can arrive before the write applies remotely; \
     per-op lag is seeded), or $(b,reordered-qp)[:WINDOW] (in-flight same-QP \
     ops may apply out of issue order within the window)."
  in
  Arg.(value & opt (some ordering_conv) None
      & info [ "ordering" ] ~docv:"MODE" ~doc)

let run_cmd =
  let algo =
    let doc = "Algorithm to run (see the list command)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ALGORITHM" ~doc)
  in
  let n =
    let doc = "Number of processes." in
    Arg.(value & opt int 3 & info [ "n"; "processes" ] ~doc)
  in
  let m =
    let doc = "Number of memories." in
    Arg.(value & opt int 3 & info [ "m"; "memories" ] ~doc)
  in
  let seed =
    let doc = "Deterministic simulation seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let inputs =
    let doc = "Proposed values (default v0..v(n-1))." in
    Arg.(value & opt (list string) [] & info [ "inputs" ] ~doc)
  in
  let crash_procs =
    let doc = "Crash process PID at TIME (repeatable), e.g. 1@2.5." in
    Arg.(value & opt_all event_conv [] & info [ "crash-process" ] ~docv:"PID@TIME" ~doc)
  in
  let crash_mems =
    let doc = "Crash memory MID at TIME (repeatable)." in
    Arg.(value & opt_all event_conv [] & info [ "crash-memory" ] ~docv:"MID@TIME" ~doc)
  in
  let recover_mems =
    let doc =
      "Recover crashed memory MID at TIME (repeatable): it rejoins EMPTY \
       under a fresh epoch and must be re-replicated by the protocol."
    in
    Arg.(value & opt_all event_conv []
        & info [ "recover-memory" ] ~docv:"MID@TIME" ~doc)
  in
  let restart_machines =
    let doc =
      "Restart the machine hosting process PID and memory MID at TIME \
       (repeatable): the memory rejoins empty and the process re-runs its \
       program, e.g. 0:1@5.0."
    in
    Arg.(value & opt_all machine_conv []
        & info [ "restart-machine" ] ~docv:"PID:MID@TIME" ~doc)
  in
  let leaders =
    let doc = "Point the leader oracle at PID at TIME (repeatable)." in
    Arg.(value & opt_all event_conv [] & info [ "set-leader" ] ~docv:"PID@TIME" ~doc)
  in
  let gst =
    let doc = "Asynchronous prefix: GST@EXTRA adds EXTRA delay before GST." in
    Arg.(value & opt (some event_conv) None & info [ "async-until" ] ~docv:"GST@EXTRA" ~doc)
  in
  let trace =
    let doc = "Print the I/O event trace (memory writes, permission changes, sends)." in
    Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N" ~doc)
  in
  let trace_out =
    let doc =
      "Write the full telemetry stream to $(docv): Chrome trace_event JSON \
       (load in chrome://tracing or Perfetto), or JSONL if $(docv) ends in \
       .jsonl.  Same seed, same bytes."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)
  in
  let metrics_out =
    let doc =
      "Write latency histograms (p50/p90/p99 per span name, incl. protocol \
       phases) and counters to $(docv) as JSON."
    in
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let perf_out =
    let doc =
      "Write a versioned perf snapshot (deterministic work counters per \
       scope, plus wall-clock timings) for this run to $(docv) as JSON.  \
       The deterministic plane is byte-identical for a given seed; the \
       timing plane is informational."
    in
    Arg.(value & opt (some string) None & info [ "perf-out" ] ~docv:"FILE" ~doc)
  in
  let flame_out =
    let doc =
      "Write collapsed flamegraph stacks (scope;path count) for this run to \
       $(docv); feed to flamegraph.pl or speedscope."
    in
    Arg.(value & opt (some string) None & info [ "flame-out" ] ~docv:"FILE" ~doc)
  in
  let action name engine n m seed inputs crash_procs crash_mems recover_mems
      restart_machines leaders gst ordering trace trace_out metrics_out
      perf_out flame_out =
    match find_algorithm ~engine name with
    | None ->
        Fmt.epr "unknown algorithm %s; try the list command@." name;
        exit 1
    | Some algo ->
        let inputs =
          if inputs = [] then Array.init n (fun i -> Printf.sprintf "v%d" i)
          else if List.length inputs = n then Array.of_list inputs
          else begin
            Fmt.epr "need exactly %d inputs@." n;
            exit 1
          end
        in
        let faults =
          (match ordering with
          | Some mode -> [ Fault.Set_ordering { mode } ]
          | None -> [])
          @ List.map (fun (pid, at) -> Fault.Crash_process { pid; at }) crash_procs
          @ List.map (fun (mid, at) -> Fault.Crash_memory { mid; at }) crash_mems
          @ List.map (fun (mid, at) -> Fault.Recover_memory { mid; at }) recover_mems
          @ List.map
              (fun (pid, mid, at) -> Fault.Restart_machine { pid; mid; at })
              restart_machines
          @ List.map (fun (pid, at) -> Fault.Set_leader { pid; at }) leaders
          @
          match gst with
          | Some (g, e) -> [ Fault.Async_until { gst = float_of_int g; extra = e } ]
          | None -> []
        in
        let m = if algo.needs_memories then m else 0 in
        let captured = ref None in
        let prepare cluster =
          captured := Some cluster;
          if trace <> None then Rdma_mm.Cluster.enable_io_trace cluster;
          (* Retaining the raw event/span stream costs memory, so it is
             only on when an export was requested. *)
          if trace_out <> None then
            Obs.set_recording (Rdma_mm.Cluster.obs cluster) true
        in
        (* Profile only when a perf export was asked for: the profiler
           is cheap but not free, and an uninstrumented run should cost
           nothing. *)
        let want_prof = perf_out <> None || flame_out <> None in
        let prof = Prof.create () in
        let report =
          if want_prof then
            Prof.with_profiler prof (fun () ->
                algo.exec ~seed ~n ~m ~inputs ~faults ~prepare)
          else algo.exec ~seed ~n ~m ~inputs ~faults ~prepare
        in
        Fmt.pr "algorithm : %s@." report.Report.algorithm;
        Fmt.pr "cluster   : n=%d processes, m=%d memories, seed=%d@." n m seed;
        if faults <> [] then
          Fmt.pr "faults    : %a@." Fmt.(list ~sep:(any ", ") Fault.pp) faults;
        Fmt.pr "@.decisions:@.";
        Array.iteri
          (fun pid d ->
            match d with
            | Some { Report.value; at } ->
                Fmt.pr "  p%-2d %-20S at %6.1f delays@." pid value at
            | None -> Fmt.pr "  p%-2d (no decision)@." pid)
          report.Report.decisions;
        Fmt.pr "@.agreement : %b@." (Report.agreement_ok report);
        (* SMR decisions are joined logs, not one of the proposed values,
           so single-value validity does not apply. *)
        if name = "smr" then Fmt.pr "validity  : n/a (replicated log)@."
        else Fmt.pr "validity  : %b@." (Report.validity_ok report ~inputs);
        (match Report.first_decision_time report with
        | Some t -> Fmt.pr "first decision: %.1f delays@." t
        | None -> Fmt.pr "first decision: -@.");
        Fmt.pr "cost      : %d msgs, %d memory ops, %d signatures, %d sim events@."
          report.Report.messages report.Report.mem_ops report.Report.signatures
          report.Report.sim_steps;
        if report.Report.phases <> [] then
          Fmt.pr "@.phase latencies (delays):@.%a@." Report.pp_phases report;
        (match !captured with
        | None -> ()
        | Some cluster ->
            let obs = Rdma_mm.Cluster.obs cluster in
            Option.iter
              (fun file ->
                Export.write_trace obs ~file;
                Fmt.pr "@.trace written to %s (%d entries)@." file
                  (Obs.entry_count obs))
              trace_out;
            Option.iter
              (fun file ->
                Export.write_metrics obs ~file;
                Fmt.pr "metrics written to %s@." file)
              metrics_out);
        let write_string file contents =
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc contents)
        in
        Option.iter
          (fun file ->
            write_string file
              (Export.perf_snapshot ~id:(name ^ "-seed" ^ string_of_int seed)
                 prof);
            Fmt.pr "perf snapshot written to %s@." file)
          perf_out;
        Option.iter
          (fun file ->
            write_string file (Export.flamegraph prof);
            Fmt.pr "flamegraph stacks written to %s@." file)
          flame_out;
        match (trace, !captured) with
        | Some limit, Some cluster ->
            let events = Rdma_sim.Trace.events (Rdma_mm.Cluster.trace cluster) in
            let total = List.length events in
            Fmt.pr "@.I/O trace (first %d of %d events):@." (min limit total) total;
            List.iteri
              (fun i e ->
                if i < limit then Fmt.pr "  %a@." Rdma_sim.Trace.pp_event e)
              events
        | _ -> ()
  in
  let doc = "Run one consensus instance under a fault schedule." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const action $ algo $ engine_arg $ n $ m $ seed $ inputs $ crash_procs
      $ crash_mems $ recover_mems $ restart_machines $ leaders $ gst
      $ ordering_arg $ trace $ trace_out $ metrics_out $ perf_out $ flame_out)

let fuzz_cmd =
  let algo =
    let doc = "Algorithm to fuzz (see the list command)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ALGORITHM" ~doc)
  in
  let runs =
    let doc = "Number of randomized runs." in
    Arg.(value & opt int 50 & info [ "runs" ] ~doc)
  in
  let n = Arg.(value & opt int 3 & info [ "n"; "processes" ] ~doc:"Processes.") in
  let m = Arg.(value & opt int 3 & info [ "m"; "memories" ] ~doc:"Memories.") in
  let action name runs n m =
    if name = "smr" then begin
      Fmt.epr
        "smr is exercised by the chaos scenarios (chaos explore \
         smr-ENGINE-recovery), not fuzz@.";
      exit 1
    end;
    match find_algorithm ~engine:"pmp" name with
    | None ->
        Fmt.epr "unknown algorithm %s; try the list command@." name;
        exit 1
    | Some algo ->
        (* Randomized schedules drawn deterministically per seed: one
           process crash at a random time, optionally one memory crash,
           and random per-message latencies. *)
        let violations = ref 0 in
        let no_decision = ref 0 in
        let inputs = Array.init n (fun i -> Printf.sprintf "v%d" i) in
        let m = if algo.needs_memories then m else 0 in
        for seed = 1 to runs do
          let rng = Random.State.make [| seed; 0xF5 |] in
          let faults =
            [
              Fault.Crash_process
                { pid = Random.State.int rng n; at = Random.State.float rng 10.0 };
              Fault.Random_latency
                { min = 0.5; max = 1.5 +. Random.State.float rng 4.0 };
            ]
            @
            if m > 0 && Random.State.bool rng then
              [ Fault.Crash_memory
                  { mid = Random.State.int rng m; at = Random.State.float rng 10.0 } ]
            else []
          in
          let report =
            algo.exec ~seed ~n ~m ~inputs ~faults ~prepare:(fun _ -> ())
          in
          if
            (not (Report.agreement_ok report))
            || not (Report.validity_ok report ~inputs)
          then begin
            incr violations;
            Fmt.pr "VIOLATION at seed %d: %a@." seed
              Fmt.(list ~sep:(any ", ") Fault.pp)
              faults
          end;
          if Report.decided_count report = 0 then incr no_decision
        done;
        Fmt.pr "%d randomized runs of %s: %d safety violations, %d without decisions@."
          runs name !violations !no_decision;
        if !violations > 0 then exit 1
  in
  let doc = "Fuzz an algorithm with randomized crash/latency schedules." in
  Cmd.v (Cmd.info "fuzz" ~doc) Term.(const action $ algo $ runs $ n $ m)

let log_cmd =
  let kind =
    let doc = "Log flavour: pmp-multi (crash model) or bft (Byzantine model)." in
    Arg.(required & pos 0 (some (enum [ ("pmp-multi", `Pmp); ("bft", `Bft) ])) None
        & info [] ~docv:"KIND" ~doc)
  in
  let slots =
    let doc = "Number of log slots." in
    Arg.(value & opt int 4 & info [ "slots" ] ~doc)
  in
  let n = Arg.(value & opt int 3 & info [ "n"; "processes" ] ~doc:"Processes.") in
  let m = Arg.(value & opt int 3 & info [ "m"; "memories" ] ~doc:"Memories.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Simulation seed.") in
  let crash_procs =
    Arg.(value & opt_all event_conv []
        & info [ "crash-process" ] ~docv:"PID@TIME" ~doc:"Crash process PID at TIME.")
  in
  let action kind slots n m seed crash_procs =
    let faults =
      List.map (fun (pid, at) -> Fault.Crash_process { pid; at }) crash_procs
    in
    let reports =
      match kind with
      | `Pmp ->
          let cfg = { Protected_paxos_multi.default_config with slots } in
          Protected_paxos_multi.run ~cfg ~seed ~n ~m ~faults
            ~input_for:(fun ~pid ~instance -> Printf.sprintf "cmd%d.%d" pid instance)
            ()
      | `Bft ->
          let cfg = { Rdma_smr.Bft_log.default_config with slots } in
          fst
            (Rdma_smr.Bft_log.run ~cfg ~seed ~n ~m ~faults
               ~input_for:(fun ~pid ~slot -> Printf.sprintf "cmd%d.%d" pid slot)
               ())
    in
    Fmt.pr "%-8s %-22s %-16s %-12s %-8s@." "slot" "decided value" "first (delays)"
      "agreement" "decided";
    Array.iteri
      (fun i report ->
        Fmt.pr "%-8d %-22s %-16s %-12b %d/%d@." i
          (Option.value (Report.decision_value report) ~default:"-")
          (match Report.first_decision_time report with
          | Some t -> Printf.sprintf "%.1f" t
          | None -> "-")
          (Report.agreement_ok report)
          (Report.decided_count report) n)
      reports
  in
  let doc = "Run a replicated log (multi-instance consensus) and print per-slot results." in
  Cmd.v (Cmd.info "log" ~doc)
    Term.(const action $ kind $ slots $ n $ m $ seed $ crash_procs)

let validate_trace_cmd =
  let file =
    let doc = "Chrome trace JSON file to validate." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let action file =
    let ic = open_in_bin file in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    match Export.validate_chrome contents with
    | Ok (events, tracks) ->
        Fmt.pr "%s: valid Chrome trace, %d events on %d tracks@." file events
          tracks
    | Error msg ->
        Fmt.epr "%s: INVALID trace: %s@." file msg;
        exit 1
  in
  let doc = "Structurally validate a Chrome trace produced by run --trace-out." in
  Cmd.v (Cmd.info "validate-trace" ~doc) Term.(const action $ file)

let list_cmd =
  let action () =
    Fmt.pr "available algorithms:@.";
    List.iter (fun a -> Fmt.pr "  %-16s %s@." a.name a.descr) algorithms;
    Fmt.pr "  %-16s %s@." "smr" smr_descr
  in
  let doc = "List the available algorithms." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const action $ const ())

let list_engines_cmd =
  let action () =
    Fmt.pr "available SMR engines (run smr --engine E, chaos explore \
            smr-E-recovery):@.";
    List.iter
      (fun (module E : Rdma_smr.Consensus_engine.S) ->
        Fmt.pr "  %-8s %s@." E.name E.descr)
      Rdma_smr.Engines.all
  in
  let doc = "List the pluggable SMR consensus engines." in
  Cmd.v (Cmd.info "list-engines" ~doc) Term.(const action $ const ())

(* --- chaos: deterministic fault exploration ------------------------- *)

let chaos_scenario_pos =
  let doc =
    "Chaos scenario (one of "
    ^ String.concat ", " (Rdma_chaos.Scenario.names ())
    ^ ")."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let find_scenario ?engine name =
  (* With --engine E, an engine-generic name like "smr-recovery" resolves
     to the per-engine registration "smr-E-recovery" first. *)
  let candidates =
    match engine with
    | Some e when String.length name >= 4 && String.sub name 0 4 = "smr-" ->
        [ "smr-" ^ e ^ "-" ^ String.sub name 4 (String.length name - 4); name ]
    | _ -> [ name ]
  in
  match List.find_map Rdma_chaos.Scenario.find candidates with
  | Some s -> s
  | None ->
      Fmt.epr "unknown chaos scenario %s; known: %s@." name
        (String.concat ", " (Rdma_chaos.Scenario.names ()));
      exit 2

let pp_outcome ppf (outcome : Rdma_chaos.Scenario.outcome) =
  let open Rdma_chaos in
  (match outcome.fired with
  | [] -> ()
  | fired ->
      List.iter (fun (at, msg) -> Fmt.pf ppf "  adversary @%.1f: %s@." at msg) fired);
  match outcome.violations with
  | [] -> Fmt.pf ppf "  verdict: ok@."
  | vs ->
      List.iter (fun v -> Fmt.pf ppf "  verdict: %a@." Oracle.pp_violation v) vs

let chaos_explore_cmd =
  let open Rdma_chaos in
  let runs =
    Arg.(value & opt int 50 & info [ "runs" ] ~doc:"Number of generated schedules.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base seed (case i uses seed+i).")
  in
  let adversary =
    Arg.(value & flag
        & info [ "adversary" ]
            ~doc:"Arm telemetry-driven triggers at protocol phase boundaries.")
  in
  let byzantine =
    Arg.(value & flag
        & info [ "byzantine" ]
            ~doc:"Draw Byzantine processes from the scenario's attack pool.")
  in
  let over_budget =
    Arg.(value & flag
        & info [ "over-budget" ]
            ~doc:
              "Lift the crash budget past the algorithm's fault model \
               (violations expected; exercises the shrinker).")
  in
  let out =
    Arg.(value & opt (some string) None
        & info [ "out" ] ~docv:"FILE"
            ~doc:"Write the first minimized repro artifact to $(docv).")
  in
  let expect_violations =
    Arg.(value & flag
        & info [ "expect-violations" ]
            ~doc:"Invert the exit status: fail when NO violation is found.")
  in
  let jobs =
    Arg.(value
        & opt int (Rdma_sim.Pool.default_jobs ())
        & info [ "j"; "jobs" ] ~docv:"N"
            ~doc:
              "Run schedules across $(docv) domains (results are \
               byte-identical at any job count).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE"
            ~doc:"Write the batch's merged metrics snapshot to $(docv).")
  in
  let action name engine runs seed adversary byzantine over_budget
      out expect_violations jobs metrics_out ordering =
    let scenario = find_scenario ?engine name in
    let name = scenario.Scenario.name in
    let options =
      {
        Explore.default_options with
        runs;
        seed;
        adversary;
        byz = byzantine;
        over_budget;
        jobs;
        ordering;
      }
    in
    let batch = Explore.explore ~options scenario in
    List.iter
      (fun (f : Explore.failure) ->
        Fmt.pr "violation: %s seed=%d@." name f.outcome.case.Nemesis.case_seed;
        Fmt.pr "%a" pp_outcome f.outcome;
        Fmt.pr "  schedule: %a@."
          Fmt.(list ~sep:(any ", ") Fault.pp)
          f.outcome.case.Nemesis.faults;
        Fmt.pr "  minimized (%d probes): %a@." f.shrink_probes
          Fmt.(list ~sep:(any ", ") Fault.pp)
          f.repro.Repro.faults)
      batch.failures;
    (match (out, batch.failures) with
    | Some path, f :: _ ->
        Repro.save f.repro path;
        Fmt.pr "repro written to %s@." path
    | Some _, [] -> Fmt.pr "no violation to write@."
    | None, _ -> ());
    (match metrics_out with
    | Some path ->
        Rdma_obs.Export.write_metrics batch.Explore.metrics ~file:path;
        Fmt.pr "metrics written to %s@." path
    | None -> ());
    let failed = List.length batch.failures in
    Fmt.pr "%s: %d schedules, %d ok, %d violations@." name (Explore.total batch)
      batch.passed failed;
    if expect_violations then begin
      if failed = 0 then exit 1
    end
    else if failed > 0 then exit 1
  in
  let engine =
    let doc =
      "Resolve an engine-generic scenario name (e.g. $(b,smr-recovery)) \
       against this SMR engine's registration."
    in
    Arg.(value
        & opt (some (enum (List.map (fun n -> (n, n)) engine_names))) None
        & info [ "engine" ] ~docv:"ENGINE" ~doc)
  in
  let doc = "Explore seeded random fault schedules against an algorithm." in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(
      const action $ chaos_scenario_pos $ engine $ runs $ seed $ adversary
      $ byzantine $ over_budget $ out $ expect_violations $ jobs $ metrics_out
      $ ordering_arg)

let chaos_replay_cmd =
  let open Rdma_chaos in
  let file =
    Arg.(required & pos 0 (some file) None
        & info [] ~docv:"FILE" ~doc:"Repro artifact written by explore --out.")
  in
  let action file =
    match Repro.load file with
    | Error e ->
        Fmt.epr "%s: %s@." file e;
        exit 2
    | Ok repro ->
        let scenario = find_scenario repro.Repro.scenario in
        let outcome = Explore.replay scenario repro in
        Fmt.pr "replay %s seed=%d@." repro.Repro.scenario repro.Repro.seed;
        Fmt.pr "  schedule: %a@."
          Fmt.(list ~sep:(any ", ") Fault.pp)
          repro.Repro.faults;
        Fmt.pr "%a" pp_outcome outcome;
        if outcome.violations <> [] then exit 1
  in
  let doc = "Replay a minimized repro artifact bit-for-bit." in
  Cmd.v (Cmd.info "replay" ~doc) Term.(const action $ file)

let chaos_cmd =
  let doc = "Deterministic chaos testing: nemesis schedules, oracle, shrinker." in
  Cmd.group (Cmd.info "chaos" ~doc) [ chaos_explore_cmd; chaos_replay_cmd ]

let () =
  let doc = "Consensus on simulated RDMA (The Impact of RDMA on Agreement, PODC'19)" in
  let info = Cmd.info "rdma_agreement" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            fuzz_cmd;
            chaos_cmd;
            log_cmd;
            validate_trace_cmd;
            list_cmd;
            list_engines_cmd;
          ]))
