(** Wall-clock source for the profiler's timing plane — the only
    sanctioned wall-clock read outside [lib/sim].  Values derived from
    it stay in {!Prof}'s timing tables: they are reported, never merged,
    never digested, never replayed. *)

val now : unit -> float
