(* Streaming latency histogram with bounded relative error.

   HDR-style geometric buckets: bucket i covers [ratio^i, ratio^(i+1))
   with ratio = 2^(1/8) (≈ 9% width), so a percentile estimate is within
   one bucket — at most a factor [ratio] — of the exact order statistic,
   at O(1) memory per distinct magnitude regardless of sample count.
   Exact min/max/sum/count are tracked on the side; non-positive samples
   (zero-duration spans are legal in virtual time) get a dedicated
   bucket. *)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable zeros : int; (* samples <= 0 *)
  buckets : (int, int ref) Hashtbl.t;
}

(* 2^(1/8): the bound on estimate/exact for any percentile. *)
let ratio = Float.pow 2.0 0.125

let log_ratio = Float.log ratio

let create () =
  {
    count = 0;
    sum = 0.;
    vmin = Float.infinity;
    vmax = Float.neg_infinity;
    zeros = 0;
    buckets = Hashtbl.create 32;
  }

let bucket_of v = int_of_float (Float.floor ((Float.log v /. log_ratio) +. 1e-9))

let add t v =
  let v = if Float.is_nan v then 0. else v in
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= 0. then t.zeros <- t.zeros + 1
  else
    let idx = bucket_of v in
    match Hashtbl.find_opt t.buckets idx with
    | Some r -> incr r
    | None -> Hashtbl.add t.buckets idx (ref 1)

(* Fold [src] into [into].  Every tracked quantity is a sum (or a
   min/max), so merging is insensitive to the order the samples were
   originally observed in — the property the domain-parallel sweep
   merge relies on.  Buckets are visited in sorted index order so the
   destination's table is grown deterministically. *)
let merge ~into src =
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.count > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end;
  into.zeros <- into.zeros + src.zeros;
  Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) src.buckets []
  |> List.sort compare
  |> List.iter (fun (idx, c) ->
         match Hashtbl.find_opt into.buckets idx with
         | Some r -> r := !r + c
         | None -> Hashtbl.add into.buckets idx (ref c))

let count t = t.count

let sum t = t.sum

let min t = if t.count = 0 then 0. else t.vmin

let max t = if t.count = 0 then 0. else t.vmax

let mean t = if t.count = 0 then 0. else t.sum /. float_of_int t.count

(* Nearest-rank percentile over the buckets: the estimate is the upper
   bound of the bucket holding the rank-th sample, clamped to the exact
   [min, max] envelope, so estimate ∈ [exact, exact * ratio]. *)
let percentile t q =
  if t.count = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    let rank = Stdlib.min rank t.count in
    if rank <= t.zeros then Stdlib.min 0. t.vmax |> Float.max t.vmin
    else begin
      let sorted =
        Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.buckets []
        |> List.sort compare
      in
      let estimate = ref t.vmax in
      let cumulative = ref t.zeros in
      (try
         List.iter
           (fun (idx, c) ->
             cumulative := !cumulative + c;
             if !cumulative >= rank then begin
               estimate := Float.pow ratio (float_of_int (idx + 1));
               raise Exit
             end)
           sorted
       with Exit -> ());
      Float.min (Float.max !estimate t.vmin) t.vmax
    end
  end

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary (t : t) =
  if t.count = 0 then
    { count = 0; sum = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0.; p99 = 0. }
  else
    {
      count = t.count;
      sum = t.sum;
      min = t.vmin;
      max = t.vmax;
      p50 = percentile t 0.5;
      p90 = percentile t 0.9;
      p99 = percentile t 0.99;
    }

let pp_summary ppf s =
  Fmt.pf ppf "count=%d p50=%.2f p90=%.2f p99=%.2f max=%.2f" s.count s.p50 s.p90
    s.p99 s.max
