(* The telemetry collector: structured events, nested spans keyed to
   virtual time, and streaming metrics.

   One collector is shared by every layer of a simulated cluster (the
   engine owns it).  Three concerns, with different costs:

   - Metrics (histograms over span durations + named counters) are always
     on: they are O(1) per observation and bounded in size, so reports
     can include per-phase percentiles for free.
   - Subscribers (typed callbacks) are always notified; the cluster uses
     one to render the legacy human-readable I/O trace.
   - Event/span *retention* (for the exporters) is opt-in via
     [set_recording]: a long stress run would otherwise accumulate
     millions of entries.

   Timestamps come from the installed clock — the simulation engine's
   virtual [now] — so recorded data is deterministic for a fixed seed. *)

type span = {
  span_id : int;
  span_actor : string;
  span_name : string;
  span_cat : string;
  span_start : float;
  mutable span_stop : float option;
}

type entry = Ev of { at : float; actor : string; ev : Event.t } | Sp of span

type t = {
  mutable clock : unit -> float;
  mutable recording : bool;
  mutable entries : entry list; (* reverse chronological insertion order *)
  mutable entry_count : int;
  mutable next_span_id : int;
  mutable subscribers : (at:float -> actor:string -> Event.t -> unit) list;
  mutable span_subscribers : (span -> unit) list;
  hists : (string, string * Hist.t) Hashtbl.t; (* name -> (cat, hist) *)
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t; (* name -> high watermark *)
}

let create ?(recording = false) () =
  {
    clock = (fun () -> 0.);
    recording;
    entries = [];
    entry_count = 0;
    next_span_id = 0;
    subscribers = [];
    span_subscribers = [];
    hists = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
  }

let set_clock t clock = t.clock <- clock

let now t = t.clock ()

let recording t = t.recording

let set_recording t flag = t.recording <- flag

let subscribe t f = t.subscribers <- f :: t.subscribers

let subscribe_spans t f = t.span_subscribers <- f :: t.span_subscribers

let push t entry =
  t.entries <- entry :: t.entries;
  t.entry_count <- t.entry_count + 1

(* {2 Events} *)

let event t ~actor ev =
  let at = t.clock () in
  List.iter (fun f -> f ~at ~actor ev) t.subscribers;
  if t.recording then push t (Ev { at; actor; ev })

(* {2 Metrics} *)

let hist_for t ~cat name =
  match Hashtbl.find_opt t.hists name with
  | Some (_, h) -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.hists name (cat, h);
      h

let observe t ?(cat = "metric") name v = Hist.add (hist_for t ~cat name) v

let count t name n =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + n
  | None -> Hashtbl.add t.counters name (ref n)

(* Gauges are high watermarks: [gauge] keeps the max of everything set,
   which is the only combination that also merges associatively —
   merging per-task peaks in any grouping yields the batch peak. *)
let gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add t.gauges name (ref v)

(* Merge is METRICS-ONLY and an explicit, order-stable fold: src's
   histograms and counters are folded into [into] in sorted-name order,
   so merging N collectors in submission order yields one deterministic
   aggregate no matter which domain produced which collector.  The raw
   entry stream (events/spans), clock, and subscribers are deliberately
   NOT merged: those stay confined to the domain that recorded them,
   and exporting them is a per-task concern (tasks return rendered
   export blobs instead of live collectors). *)
let merge ~into src =
  Hashtbl.fold (fun name (cat, h) acc -> (name, cat, h) :: acc) src.hists []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  |> List.iter (fun (name, cat, h) -> Hist.merge ~into:(hist_for into ~cat name) h);
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) src.counters []
  |> List.sort compare
  |> List.iter (fun (name, n) -> count into name n);
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) src.gauges []
  |> List.sort compare
  |> List.iter (fun (name, v) -> gauge into name v)

(* {2 Spans} *)

let span t ~actor ?(cat = "span") name =
  t.next_span_id <- t.next_span_id + 1;
  let sp =
    {
      span_id = t.next_span_id;
      span_actor = actor;
      span_name = name;
      span_cat = cat;
      span_start = t.clock ();
      span_stop = None;
    }
  in
  if t.recording then push t (Sp sp);
  List.iter (fun f -> f sp) t.span_subscribers;
  sp

let finish t sp =
  match sp.span_stop with
  | Some _ -> () (* already finished; keep first-close semantics *)
  | None ->
      let stop = t.clock () in
      sp.span_stop <- Some stop;
      Hist.add (hist_for t ~cat:sp.span_cat sp.span_name) (stop -. sp.span_start)

(* [with_span] also enters a profiler scope of the same name, so every
   span-wrapped region — protocol phases, rdma quorum ops — doubles as
   a work-attribution scope for free.  Safe across suspension: the
   engine detaches/re-attaches profiler frames around fiber suspension,
   and [with_span] bodies close in LIFO order per fiber.  (The raw
   [span]/[finish] pair is NOT hooked: callers like [Memory.operation]
   close those spans from a different fiber.) *)
let with_span t ~actor ?cat name f =
  let sp = span t ~actor ?cat name in
  Prof.scope name (fun () -> Fun.protect ~finally:(fun () -> finish t sp) f)

let span_name sp = sp.span_name

let span_actor sp = sp.span_actor

let span_cat sp = sp.span_cat

let span_id sp = sp.span_id

let span_start sp = sp.span_start

let span_stop sp = sp.span_stop

let span_duration sp =
  match sp.span_stop with Some stop -> Some (stop -. sp.span_start) | None -> None

(* {2 Read-back} *)

let entries t = List.rev t.entries

let entry_count t = t.entry_count

let events t =
  List.filter_map
    (function Ev { at; actor; ev } -> Some (at, actor, ev) | Sp _ -> None)
    (entries t)

let spans t =
  List.filter_map (function Sp sp -> Some sp | Ev _ -> None) (entries t)

let histograms t =
  Hashtbl.fold (fun name (cat, h) acc -> (name, cat, h) :: acc) t.hists []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let summaries ?cat t =
  histograms t
  |> List.filter_map (fun (name, c, h) ->
         match cat with
         | Some wanted when wanted <> c -> None
         | _ -> Some (name, Hist.summary h))

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort compare

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []
  |> List.sort compare

(* Fold a profiler's DETERMINISTIC plane into the collector as
   [prof.]-prefixed counters (sorted, so insertion is order-stable).
   The timing plane deliberately has no path into an [Obs.t]: merged
   metrics feed digests and replay artifacts, and wall-clock must never
   reach either. *)
let absorb_prof t prof =
  List.iter (fun (name, n) -> count t ("prof." ^ name) n) (Prof.totals prof)

(* Drop retained entries (metrics and counters are kept). *)
let clear_entries t =
  t.entries <- [];
  t.entry_count <- 0
