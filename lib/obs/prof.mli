(** Scoped work-attribution profiler with a two-plane design.

    The {b deterministic plane} is integer work counters (SHA-256
    blocks, HMAC evaluations, memory ops, messages, simulator events)
    attributed to the innermost open scope.  Scheduling is
    deterministic, so the plane is byte-identical across repeated runs
    of a seed and across [-j N]; it merges into an {!Obs.t} via
    {!Obs.absorb_prof} and may be baselined and diffed exactly
    (tools/perfdiff).

    The {b timing plane} is wall-clock self/total seconds per scope
    path, read from {!Prof_clock}.  It is reported — perf snapshots,
    flamegraphs — but never merged into an {!Obs.t}, never digested,
    never replayed.

    A profiler is installed per domain ({!with_profiler}); with none
    installed every hook is a no-op.  Scopes are fiber-aware: the
    engine detaches a suspending fiber's frames (pausing their wall
    timers) and re-attaches them on resume, so a scope opened inside a
    fiber attributes only that fiber's own execution. *)

type t

(** [create ()] uses {!Prof_clock.now}; tests inject a fake [clock]. *)
val create : ?clock:(unit -> float) -> unit -> t

(** Install [t] as this domain's profiler for the extent of [f]
    (restoring whatever was installed before, so installs nest). *)
val with_profiler : t -> (unit -> 'a) -> 'a

(** Mask any installed profiler for the extent of [f].  The task pool
    wraps inline task execution with this so [-j 1] attributes exactly
    like a fresh worker domain. *)
val without_profiler : (unit -> 'a) -> 'a

(** The profiler installed on the current domain, if any. *)
val installed : unit -> t option

(** [bump counter n] adds [n] to [counter] on the installed profiler
    (total and current-scope attribution); no-op when none installed. *)
val bump : string -> int -> unit

(** [scope name f] runs [f] under a scope frame named [name] on the
    installed profiler; no-op wrapper when none installed.  Scope names
    must not contain [';'] (the collapsed-stack separator). *)
val scope : string -> (unit -> 'a) -> 'a

(** {2 Fiber suspension support — engine use only} *)

(** A detached stack segment, paused and portable with a continuation. *)
type frames

val no_frames : frames

(** Current scope-stack depth of the installed profiler (0 if none). *)
val depth : unit -> int

(** [detach_to base] detaches every frame above depth [base], pausing
    their wall timers; {!attach} resumes them.  The engine brackets
    fiber suspension with this pair. *)
val detach_to : int -> frames

val attach : frames -> unit

(** {2 Read-back — all lists sorted, so consumers are order-stable} *)

(** Deterministic plane: [(counter, total)] sorted by counter. *)
val totals : t -> (string * int) list

(** Deterministic plane per scope path: [(path, rows)] sorted by path,
    rows sorted by counter.  Counts bumped outside any scope appear
    under ["(root)"]. *)
val by_scope : t -> (string * (string * int) list) list

(** Timing plane: [(path, calls, total_s, self_s)] sorted by path.
    [total_s] includes nested scopes; [self_s] excludes them. *)
val timings : t -> (string * int * float * float) list

(** Inject an externally measured wall-clock row (e.g. a Bechamel
    estimate) into the timing plane. *)
val add_timing : t -> path:string -> calls:int -> total_s:float -> self_s:float -> unit
