(** Streaming latency histogram: geometric buckets with ratio 2^(1/8), so
    any percentile estimate is within a factor {!ratio} of the exact
    order statistic, at O(1) memory per distinct magnitude. *)

type t

(** Upper bound on [percentile] / exact-order-statistic (≈ 1.09). *)
val ratio : float

val create : unit -> t

val add : t -> float -> unit

(** [merge ~into src] folds [src]'s samples into [into].  Equivalent to
    re-adding every sample of [src] (same counts, sums, extrema and
    buckets), and insensitive to observation order. *)
val merge : into:t -> t -> unit

val count : t -> int

val sum : t -> float

val min : t -> float

val max : t -> float

val mean : t -> float

(** [percentile t q] with [q] in [0, 1], nearest-rank semantics.  The
    estimate lies in [exact, exact * ratio] (exact for [q] landing on the
    tracked min/max or on non-positive samples). *)
val percentile : t -> float -> float

type summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit
