(* The profiler's timing plane reads the wall clock HERE and nowhere
   else.  simlint's D1 rule bans wall-clock reads outside lib/sim
   because a timestamp that reaches a digest, a replay artifact, or any
   merged metric destroys the byte-identical-runs contract.  The
   profiler keeps its two planes apart precisely so this module stays
   legal: Prof routes everything derived from [now] into the
   timing-plane tables only, which are reported (perf snapshots,
   stderr) but never merged into an [Obs.t], never hashed, and never
   replayed.  The [@simlint.allow "D1"] below is the single sanctioned
   suppression; a wall-clock read anywhere else in lib/ or bin/ still
   fails CI (see tools/simlint/fixtures/bad_wallclock.ml). *)

let now () = (Unix.gettimeofday () [@simlint.allow "D1"])
