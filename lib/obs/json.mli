(** A minimal JSON value type with a deterministic printer and a strict
    parser — the serialization substrate of the telemetry exporters.
    Deterministic output (no hashtable order, fixed float images) is what
    makes identical seeded runs produce byte-identical trace files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Strict parse of a complete JSON document. *)
val parse : string -> (t, string) result

(** [member key json] is the value of field [key] if [json] is an object
    containing it. *)
val member : string -> t -> t option

val to_list : t -> t list option

val to_string_opt : t -> string option
