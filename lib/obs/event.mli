(** The typed telemetry event schema — one constructor per observable
    substrate action (network send/deliver, memory read/write/permission
    change, signing, fiber lifecycle, protocol decisions). *)

type t =
  | Net_send of { src : int; dst : int }
  | Net_deliver of { src : int; dst : int }
  | Mem_read of { pid : int; mid : int; region : string; reg : string; ok : bool }
  | Mem_read_many of { pid : int; mid : int; region : string; count : int; ok : bool }
  | Mem_write of {
      pid : int;
      mid : int;
      region : string;
      reg : string;
      value : string;
      ok : bool;
    }
  | Mem_write_many of {
      pid : int;
      mid : int;
      region : string;
      count : int;
      ok : bool;
    }
  | Mem_perm of { pid : int; mid : int; region : string; applied : bool }
  | Mem_fence of { pid : int; mid : int }
  | Mem_restart of { mid : int; epoch : int }
  | Verbs_mr of { mid : int; region : string; op : string }
  | Sign of { pid : int }
  | Verify of { ok : bool }
  | Fiber_spawn of { fid : int; name : string }
  | Fiber_cancel of { fid : int; name : string }
  | Deadlock of { steps : int }
  | Decide of { pid : int; value : string }
  | Custom of { name : string; detail : string }

(** Short dotted name, e.g. ["mem.write"]. *)
val name : t -> string

(** Chrome-trace category: ["net"], ["mem"], ["verbs"], ["crypto"],
    ["sim"], ["protocol"] or ["custom"]. *)
val cat : t -> string

(** Structured payload, ready for the JSON exporters. *)
val fields : t -> (string * Json.t) list

val pp : Format.formatter -> t -> unit
