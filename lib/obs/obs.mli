(** The telemetry collector: typed events, nested spans keyed to virtual
    time, and streaming metrics (histograms + counters).

    Metrics and subscriber notification are always on (O(1), bounded
    memory); retention of the raw event/span stream for the exporters is
    opt-in via {!set_recording}.  All timestamps come from the installed
    clock — the simulation engine's virtual time — so a fixed seed yields
    byte-identical exports. *)

type t

(** A (possibly still open) span.  Spans nest naturally: whatever spans a
    fiber opens and closes in LIFO order render as a flame stack over
    virtual time. *)
type span

val create : ?recording:bool -> unit -> t

(** Install the time source (the engine does this at creation). *)
val set_clock : t -> (unit -> float) -> unit

val now : t -> float

val recording : t -> bool

(** Toggle retention of the raw event/span stream. *)
val set_recording : t -> bool -> unit

(** Register a typed tap called on every event regardless of recording;
    the cluster's legacy I/O trace is one of these. *)
val subscribe : t -> (at:float -> actor:string -> Event.t -> unit) -> unit

(** Register a tap called at every span open, regardless of recording.
    Protocol phases open spans under [~cat:"phase"], so a span tap sees
    phase boundaries the moment they happen — the chaos adversary uses
    this to fire faults at observed protocol state rather than at blind
    times. *)
val subscribe_spans : t -> (span -> unit) -> unit

(** Record an instant event attributed to [actor] at the current virtual
    time. *)
val event : t -> actor:string -> Event.t -> unit

(** Add one sample to the named histogram (created on first use under
    [cat], default ["metric"]). *)
val observe : t -> ?cat:string -> string -> float -> unit

(** Add [n] to a named counter. *)
val count : t -> string -> int -> unit

(** [gauge t name v] records a high-watermark gauge: the stored value
    is the max of everything set (e.g. peak event-heap depth).  Max is
    the only combination that merges associatively, so per-task peaks
    merged in any grouping yield the batch peak. *)
val gauge : t -> string -> float -> unit

(** [merge ~into src] folds [src]'s metrics (histograms, counters and
    gauges) into [into], visiting names in sorted order so the fold is
    order-stable: merging per-task collectors in submission order
    yields the same aggregate regardless of which domain produced
    which collector.  The raw event/span stream, clock, and
    subscribers of [src] are not merged — they stay confined to the
    domain that recorded them. *)
val merge : into:t -> t -> unit

(** Open a span at the current virtual time.  [cat] defaults to
    ["span"]; protocol phases use [~cat:"phase"] so reports can single
    them out. *)
val span : t -> actor:string -> ?cat:string -> string -> span

(** Close a span: records its duration into the histogram named after the
    span.  Idempotent (first close wins). *)
val finish : t -> span -> unit

(** [with_span t ~actor name f] wraps [f] in a span, closing it on normal
    return, exception, or fiber cancellation.  Also enters a {!Prof}
    scope of the same name on the installed profiler (if any), so every
    span-wrapped region doubles as a work-attribution scope. *)
val with_span : t -> actor:string -> ?cat:string -> string -> (unit -> 'a) -> 'a

val span_name : span -> string

val span_actor : span -> string

val span_cat : span -> string

val span_id : span -> int

val span_start : span -> float

val span_stop : span -> float option

val span_duration : span -> float option

type entry = Ev of { at : float; actor : string; ev : Event.t } | Sp of span

(** The raw retained stream, chronological: events at their record time,
    spans at their start time. *)
val entries : t -> entry list

(** Recorded events in chronological order, as [(at, actor, event)]. *)
val events : t -> (float * string * Event.t) list

(** Recorded spans in start order. *)
val spans : t -> span list

(** Number of retained entries (events + spans). *)
val entry_count : t -> int

(** All histograms as [(name, cat, hist)], sorted by name. *)
val histograms : t -> (string * string * Hist.t) list

(** Histogram summaries sorted by name, optionally restricted to one
    category (e.g. [~cat:"phase"] for the per-phase report breakdown). *)
val summaries : ?cat:string -> t -> (string * Hist.summary) list

(** Named counters, sorted. *)
val counters : t -> (string * int) list

(** High-watermark gauges, sorted. *)
val gauges : t -> (string * float) list

(** Fold a profiler's deterministic plane into [t] as [prof.]-prefixed
    counters.  The timing plane has no path into a collector: merged
    metrics feed digests and replay artifacts, and wall-clock must
    never reach either. *)
val absorb_prof : t -> Prof.t -> unit

(** Drop retained entries; metrics and counters are kept. *)
val clear_entries : t -> unit
