(* The typed telemetry event schema.

   One constructor per observable substrate action, replacing the ad-hoc
   [string -> unit] tracer callbacks that used to live in the network and
   memory layers.  Every event knows its category (the Chrome-trace "cat"
   field), a short name, and its structured fields, so exporters never
   parse strings back apart. *)

type t =
  | Net_send of { src : int; dst : int }
  | Net_deliver of { src : int; dst : int }
  | Mem_read of { pid : int; mid : int; region : string; reg : string; ok : bool }
  | Mem_read_many of { pid : int; mid : int; region : string; count : int; ok : bool }
  | Mem_write of {
      pid : int;
      mid : int;
      region : string;
      reg : string;
      value : string;
      ok : bool;
    }
  | Mem_write_many of {
      pid : int;
      mid : int;
      region : string;
      count : int;
      ok : bool;
    }
  | Mem_perm of { pid : int; mid : int; region : string; applied : bool }
  | Mem_fence of { pid : int; mid : int }
  | Mem_restart of { mid : int; epoch : int }
  | Verbs_mr of { mid : int; region : string; op : string }
  | Sign of { pid : int }
  | Verify of { ok : bool }
  | Fiber_spawn of { fid : int; name : string }
  | Fiber_cancel of { fid : int; name : string }
  | Deadlock of { steps : int }
  | Decide of { pid : int; value : string }
  | Custom of { name : string; detail : string }

let name = function
  | Net_send _ -> "net.send"
  | Net_deliver _ -> "net.deliver"
  | Mem_read _ -> "mem.read"
  | Mem_read_many _ -> "mem.read_many"
  | Mem_write _ -> "mem.write"
  | Mem_write_many _ -> "mem.write_many"
  | Mem_perm _ -> "mem.perm"
  | Mem_fence _ -> "mem.fence"
  | Mem_restart _ -> "mem.restart"
  | Verbs_mr _ -> "verbs.mr"
  | Sign _ -> "crypto.sign"
  | Verify _ -> "crypto.verify"
  | Fiber_spawn _ -> "fiber.spawn"
  | Fiber_cancel _ -> "fiber.cancel"
  | Deadlock _ -> "engine.deadlock"
  | Decide _ -> "protocol.decide"
  | Custom { name; _ } -> name

let cat = function
  | Net_send _ | Net_deliver _ -> "net"
  | Mem_read _ | Mem_read_many _ | Mem_write _ | Mem_write_many _ | Mem_perm _
  | Mem_fence _ | Mem_restart _ ->
      "mem"
  | Verbs_mr _ -> "verbs"
  | Sign _ | Verify _ -> "crypto"
  | Fiber_spawn _ | Fiber_cancel _ | Deadlock _ -> "sim"
  | Decide _ -> "protocol"
  | Custom _ -> "custom"

let fields = function
  | Net_send { src; dst } | Net_deliver { src; dst } ->
      [ ("src", Json.Int src); ("dst", Json.Int dst) ]
  | Mem_read { pid; mid; region; reg; ok } ->
      [
        ("pid", Json.Int pid);
        ("mid", Json.Int mid);
        ("region", Json.String region);
        ("reg", Json.String reg);
        ("ok", Json.Bool ok);
      ]
  | Mem_read_many { pid; mid; region; count; ok }
  | Mem_write_many { pid; mid; region; count; ok } ->
      [
        ("pid", Json.Int pid);
        ("mid", Json.Int mid);
        ("region", Json.String region);
        ("count", Json.Int count);
        ("ok", Json.Bool ok);
      ]
  | Mem_write { pid; mid; region; reg; value; ok } ->
      [
        ("pid", Json.Int pid);
        ("mid", Json.Int mid);
        ("region", Json.String region);
        ("reg", Json.String reg);
        ("value", Json.String value);
        ("ok", Json.Bool ok);
      ]
  | Mem_perm { pid; mid; region; applied } ->
      [
        ("pid", Json.Int pid);
        ("mid", Json.Int mid);
        ("region", Json.String region);
        ("applied", Json.Bool applied);
      ]
  | Mem_fence { pid; mid } -> [ ("pid", Json.Int pid); ("mid", Json.Int mid) ]
  | Mem_restart { mid; epoch } ->
      [ ("mid", Json.Int mid); ("epoch", Json.Int epoch) ]
  | Verbs_mr { mid; region; op } ->
      [
        ("mid", Json.Int mid);
        ("region", Json.String region);
        ("op", Json.String op);
      ]
  | Sign { pid } -> [ ("pid", Json.Int pid) ]
  | Verify { ok } -> [ ("ok", Json.Bool ok) ]
  | Fiber_spawn { fid; name } | Fiber_cancel { fid; name } ->
      [ ("fid", Json.Int fid); ("name", Json.String name) ]
  | Deadlock { steps } -> [ ("steps", Json.Int steps) ]
  | Decide { pid; value } ->
      [ ("pid", Json.Int pid); ("value", Json.String value) ]
  | Custom { detail; _ } -> [ ("detail", Json.String detail) ]

let pp ppf ev =
  Fmt.pf ppf "%s{%s}" (name ev)
    (String.concat ","
       (List.map
          (fun (k, v) -> Printf.sprintf "%s=%s" k (Json.to_string v))
          (fields ev)))
