(** Deterministic exporters over a collector's retained stream and
    metrics: Chrome [trace_event] JSON (chrome://tracing / Perfetto),
    line-oriented JSONL, and a metrics summary document. *)

(** Chrome trace_event document: actors as tracks, spans as "X" duration
    events, instant events as "i".  One virtual delay = 1000 trace µs. *)
val chrome_json : Obs.t -> Json.t

val chrome : Obs.t -> string

(** One JSON object per line per entry. *)
val jsonl : Obs.t -> string

(** Histogram summaries (count/sum/min/max/p50/p90/p99), counters and
    gauges. *)
val metrics_json : Obs.t -> Json.t

val metrics : Obs.t -> string

(** Perf-snapshot schema version (see tools/perfdiff). *)
val perf_snapshot_version : int

(** One profiler as a versioned snapshot document: the deterministic
    plane (counters + per-scope attribution, byte-stable for a seed,
    diffed exactly) and the timing plane (wall-clock seconds, diffed
    with noise thresholds).  [wall_clock] marks snapshots of wall-clock
    experiments whose deterministic plane is intentionally empty. *)
val perf_snapshot_json : ?wall_clock:bool -> id:string -> Prof.t -> Json.t

val perf_snapshot : ?wall_clock:bool -> id:string -> Prof.t -> string

(** Collapsed-stack rendering of one deterministic counter (default
    ["sim.events.popped"]): one [path weight] line per scope, the input
    format of flamegraph.pl / speedscope. *)
val flamegraph : ?counter:string -> Prof.t -> string

(** Render the trace that {!write_trace} would write to [file]: a
    [.jsonl] suffix selects the JSONL exporter, anything else the
    Chrome format.  Pooled tasks use this to return export blobs as
    plain strings. *)
val render_trace : Obs.t -> file:string -> string

(** Write the trace to [file]; a [.jsonl] suffix selects the JSONL
    exporter, anything else the Chrome format. *)
val write_trace : Obs.t -> file:string -> unit

val write_metrics : Obs.t -> file:string -> unit

(** Structurally validate an exported Chrome trace; [Ok (events, tracks)]
    on success. *)
val validate_chrome : string -> (int * int, string) result
