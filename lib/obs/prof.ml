(* Scoped work-attribution profiler with a two-plane design.

   DETERMINISTIC PLANE — integer work counters (SHA-256 blocks
   compressed, HMAC evaluations, sign/verify calls, memory operations,
   messages, simulator events) attributed to the innermost open scope
   at the moment of the bump.  Scheduling is deterministic, so the
   scope stack at any bump site is a pure function of the seed: the
   whole plane is byte-identical across repeated runs and across
   [-j N].  It merges into an [Obs.t] (see [Obs.absorb_prof]) and may
   appear in digests, baselines and replay artifacts.

   TIMING PLANE — wall-clock self/total seconds per scope path, read
   from {!Prof_clock} (the one sanctioned wall-clock source).  Timing
   is reported (perf snapshots, flamegraphs) but NEVER merged into an
   [Obs.t], never hashed, never replayed: nothing downstream of a
   digest may depend on it.

   AMBIENT INSTALLATION — instrumentation sites (sha256's compress
   loop, the engine's event loop, the memory's issue path) have no
   collector handle, so the current profiler is domain-local state:
   [with_profiler] installs one for the extent of a run and every
   [bump]/[scope] call finds it in O(1); with none installed the hooks
   are no-ops.  Domain-local is the one mutable-global shape that keeps
   the task-pool determinism contract: a pooled task never observes
   another domain's profiler, and [Pool] additionally masks the
   caller's profiler around inline task execution so [-j 1] and [-j N]
   attribute identically (a task profiles only what it installs
   itself).

   FIBERS — a scope opened inside an engine fiber survives suspension:
   the engine detaches the fiber's frames at every [Suspend] (pausing
   their wall timers) and re-attaches them when the fiber resumes, so
   scopes nest per fiber, not per domain, and time spent suspended (or
   running other fibers) is charged to nobody.  Deterministic counts
   are recorded eagerly at bump time, so a fiber that is cancelled
   while suspended loses only the wall-time of its still-open frames,
   never counts. *)

type frame = {
  id : int;
  path : string; (* scope names joined with ';' — a collapsed stack *)
  parent : frame option;
  mutable attached_at : float; (* wall time of last attach, when attached *)
  mutable ran : float; (* wall seconds accumulated over past attachments *)
  mutable child : float; (* total seconds of directly nested closed scopes *)
}

type timing = { mutable calls : int; mutable total_s : float; mutable self_s : float }

type t = {
  clock : unit -> float;
  mutable stack : frame list; (* innermost first *)
  mutable depth : int;
  mutable next_frame_id : int;
  totals : (string, int ref) Hashtbl.t; (* counter -> total *)
  by_path : (string * string, int ref) Hashtbl.t; (* (path, counter) -> n *)
  times : (string, timing) Hashtbl.t; (* path -> wall self/total *)
}

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Prof_clock.now in
  {
    clock;
    stack = [];
    depth = 0;
    next_frame_id = 0;
    totals = Hashtbl.create 16;
    by_path = Hashtbl.create 32;
    times = Hashtbl.create 32;
  }

(* {2 Ambient installation} *)

(* Domain-local, deliberately: see the header.  Not a cross-domain
   global — each domain sees only the profiler it installed itself. *)
let installed_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let installed () = Domain.DLS.get installed_key

let with_profiler t f =
  let prev = Domain.DLS.get installed_key in
  Domain.DLS.set installed_key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_key prev) f

(* Mask any installed profiler for the extent of [f]; the pool wraps
   every task with this so inline (-j 1) execution attributes exactly
   like worker-domain execution (which starts with no profiler). *)
let without_profiler f =
  let prev = Domain.DLS.get installed_key in
  Domain.DLS.set installed_key None;
  Fun.protect ~finally:(fun () -> Domain.DLS.set installed_key prev) f

(* {2 Deterministic plane} *)

let incr_tbl tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.add tbl key (ref n)

let current_path t =
  match t.stack with [] -> "" | f :: _ -> f.path

let bump_in t counter n =
  incr_tbl t.totals counter n;
  incr_tbl t.by_path (current_path t, counter) n

let bump counter n =
  match Domain.DLS.get installed_key with
  | None -> ()
  | Some t -> bump_in t counter n

(* {2 Scopes (both planes)} *)

let timing_for t path =
  match Hashtbl.find_opt t.times path with
  | Some tm -> tm
  | None ->
      let tm = { calls = 0; total_s = 0.; self_s = 0. } in
      Hashtbl.add t.times path tm;
      tm

let push_frame t name =
  let parent = match t.stack with [] -> None | f :: _ -> Some f in
  let path =
    match parent with None -> name | Some p -> p.path ^ ";" ^ name
  in
  t.next_frame_id <- t.next_frame_id + 1;
  let frame =
    {
      id = t.next_frame_id;
      path;
      parent;
      attached_at = t.clock ();
      ran = 0.;
      child = 0.;
    }
  in
  t.stack <- frame :: t.stack;
  t.depth <- t.depth + 1;
  frame

let close_frame t frame =
  let total = frame.ran +. (t.clock () -. frame.attached_at) in
  let tm = timing_for t frame.path in
  tm.calls <- tm.calls + 1;
  tm.total_s <- tm.total_s +. total;
  tm.self_s <- tm.self_s +. Float.max 0. (total -. frame.child);
  Option.iter (fun p -> p.child <- p.child +. total) frame.parent

(* Pop [frame] (normally the top of the stack).  If an intervening
   frame leaked — a scope body escaped without closing, which the
   engine's detach/attach protocol prevents but a buggy instrumentation
   site could provoke — close the leaked frames too rather than
   corrupting the stack for every later scope. *)
let pop_frame t frame =
  let rec pop = function
    | [] -> [] (* frame already gone (detached and lost); leave stack *)
    | f :: rest ->
        close_frame t f;
        t.depth <- t.depth - 1;
        if f.id = frame.id then rest else pop rest
  in
  match t.stack with
  | f :: rest when f.id = frame.id ->
      close_frame t f;
      t.depth <- t.depth - 1;
      t.stack <- rest
  | stack -> if List.exists (fun f -> f.id = frame.id) stack then t.stack <- pop stack

let in_scope t name f =
  let frame = push_frame t name in
  Fun.protect ~finally:(fun () -> pop_frame t frame) f

let scope name f =
  match Domain.DLS.get installed_key with
  | None -> f ()
  | Some t -> in_scope t name f

(* {2 Fiber suspension support (used by the engine)} *)

(* A detached segment remembers which profiler it came from, so a
   resume delivered after the run's profiler was uninstalled (or under
   a nested one) re-attaches to the right stack. *)
type frames = (t * frame list) option

let no_frames : frames = None

let depth () =
  match Domain.DLS.get installed_key with None -> 0 | Some t -> t.depth

(* Detach every frame above [base] (the stack depth when the engine
   dispatched the current event), pausing their wall timers.  The
   engine calls this inside its [Suspend] handler; the frames travel
   with the continuation and re-attach on resume. *)
let detach_to base =
  match Domain.DLS.get installed_key with
  | None -> None
  | Some t ->
      if t.depth <= base then None
      else begin
        let now = t.clock () in
        let n = t.depth - base in
        let rec split k stack =
          if k = 0 then ([], stack)
          else
            match stack with
            | [] -> ([], [])
            | f :: rest ->
                f.ran <- f.ran +. (now -. f.attached_at);
                let taken, left = split (k - 1) rest in
                (f :: taken, left)
        in
        let taken, left = split n t.stack in
        t.stack <- left;
        t.depth <- base;
        Some (t, taken)
      end

let attach = function
  | None -> ()
  | Some (t, frames) ->
      let now = t.clock () in
      List.iter (fun f -> f.attached_at <- now) frames;
      (* [frames] is innermost-first, same order as the stack *)
      t.stack <- frames @ t.stack;
      t.depth <- t.depth + List.length frames

(* {2 Read-back (all sorted, so every consumer is order-stable)} *)

let totals t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.totals []
  |> List.sort compare

let display_path path = if path = "" then "(root)" else path

let by_scope t =
  let rows =
    Hashtbl.fold
      (fun (path, counter) r acc -> ((path, counter), !r) :: acc)
      t.by_path []
    |> List.sort compare
  in
  (* group the (path, counter)-sorted rows by path *)
  List.fold_left
    (fun acc ((path, counter), n) ->
      match acc with
      | (p, row) :: rest when p = path -> (p, (counter, n) :: row) :: rest
      | _ -> (path, [ (counter, n) ]) :: acc)
    [] rows
  |> List.rev_map (fun (path, row) -> (display_path path, List.rev row))

let timings t =
  Hashtbl.fold
    (fun path tm acc -> (path, (tm.calls, tm.total_s, tm.self_s)) :: acc)
    t.times []
  |> List.sort compare
  |> List.map (fun (path, (calls, total_s, self_s)) ->
         (display_path path, calls, total_s, self_s))

(* Inject an externally measured timing row (e.g. a Bechamel estimate)
   into the timing plane, so one snapshot carries both the profiler's
   own scopes and harness-level wall-clock results. *)
let add_timing t ~path ~calls ~total_s ~self_s =
  let tm = timing_for t path in
  tm.calls <- tm.calls + calls;
  tm.total_s <- tm.total_s +. total_s;
  tm.self_s <- tm.self_s +. self_s
