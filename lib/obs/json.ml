(* A minimal JSON value type with a deterministic printer and a strict
   recursive-descent parser.

   The telemetry exporters must produce byte-identical output for
   identical seeded runs, so all serialization funnels through here: no
   hashtable iteration order, no locale-dependent number formatting.
   The parser exists so the exporters' output can be validated in-tree
   (tests and the CLI's validate-trace command) without adding a JSON
   dependency the container may not have. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {2 Printing} *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Deterministic float image: integral floats as "x.0", everything else
   via %.12g (enough digits to round-trip the virtual-time values we
   emit).  Non-finite floats have no JSON image; emit null. *)
let float_image f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec print_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_image f)
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          print_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          print_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_to buf v;
  Buffer.contents buf

(* {2 Parsing} *)

exception Fail of string

let parse (s : string) : (t, string) result =
  let len = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > len then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'u' ->
              advance ();
              let code = parse_hex4 () in
              (* UTF-8 encode; surrogate pairs are not combined (the
                 exporters never emit code points above 0x1f). *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* {2 Accessors (for validation code)} *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
