(* Trace and metrics exporters.

   Two trace formats over the same retained stream:

   - Chrome [trace_event] JSON, loadable in chrome://tracing or Perfetto:
     every actor (p0, mu1, ...) becomes a track (tid), spans become "X"
     complete events, instant events become "i" events.  Virtual time is
     scaled so one network delay = 1000 trace microseconds, which renders
     readably in either viewer.
   - JSONL: one self-describing JSON object per line, for ad-hoc jq/awk
     analysis.

   Everything is emitted in deterministic order (insertion order for the
   stream, sorted names for metrics), so identical seeded runs produce
   byte-identical files. *)

(* One virtual delay unit -> 1000 Chrome-trace microseconds. *)
let ts_scale = 1000.

let ts_of at = Json.Int (int_of_float (Float.round (at *. ts_scale)))

(* Actor -> track id, in order of first appearance in the stream. *)
let actor_table entries =
  let tids = Hashtbl.create 16 in
  let order = ref [] in
  let see actor =
    if not (Hashtbl.mem tids actor) then begin
      Hashtbl.add tids actor (Hashtbl.length tids);
      order := actor :: !order
    end
  in
  List.iter
    (function
      | Obs.Ev { actor; _ } -> see actor
      | Obs.Sp sp -> see (Obs.span_actor sp))
    entries;
  (tids, List.rev !order)

let chrome_json obs =
  let entries = Obs.entries obs in
  let tids, actors = actor_table entries in
  let tid actor = Hashtbl.find tids actor in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.String "rdma-sim") ]);
      ]
    :: List.concat_map
         (fun actor ->
           [
             Json.Obj
               [
                 ("name", Json.String "thread_name");
                 ("ph", Json.String "M");
                 ("pid", Json.Int 0);
                 ("tid", Json.Int (tid actor));
                 ("args", Json.Obj [ ("name", Json.String actor) ]);
               ];
             Json.Obj
               [
                 ("name", Json.String "thread_sort_index");
                 ("ph", Json.String "M");
                 ("pid", Json.Int 0);
                 ("tid", Json.Int (tid actor));
                 ("args", Json.Obj [ ("sort_index", Json.Int (tid actor)) ]);
               ];
           ])
         actors
  in
  let entry_json = function
    | Obs.Ev { at; actor; ev } ->
        Json.Obj
          [
            ("name", Json.String (Event.name ev));
            ("cat", Json.String (Event.cat ev));
            ("ph", Json.String "i");
            ("s", Json.String "t");
            ("ts", ts_of at);
            ("pid", Json.Int 0);
            ("tid", Json.Int (tid actor));
            ("args", Json.Obj (Event.fields ev));
          ]
    | Obs.Sp sp ->
        let start = Obs.span_start sp in
        let dur, extra =
          match Obs.span_stop sp with
          | Some stop -> (stop -. start, [])
          | None -> (0., [ ("unfinished", Json.Bool true) ])
        in
        Json.Obj
          [
            ("name", Json.String (Obs.span_name sp));
            ("cat", Json.String (Obs.span_cat sp));
            ("ph", Json.String "X");
            ("ts", ts_of start);
            ("dur", Json.Int (int_of_float (Float.round (dur *. ts_scale))));
            ("pid", Json.Int 0);
            ("tid", Json.Int (tid (Obs.span_actor sp)));
            ("args", Json.Obj (("id", Json.Int (Obs.span_id sp)) :: extra));
          ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta @ List.map entry_json entries));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("clock", Json.String "virtual");
            ("scale", Json.String "1 network delay = 1000us");
          ] );
    ]

let chrome obs = Json.to_string (chrome_json obs)

let jsonl obs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun entry ->
      let line =
        match entry with
        | Obs.Ev { at; actor; ev } ->
            Json.Obj
              (("at", Json.Float at)
              :: ("actor", Json.String actor)
              :: ("kind", Json.String "event")
              :: ("type", Json.String (Event.name ev))
              :: ("cat", Json.String (Event.cat ev))
              :: Event.fields ev)
        | Obs.Sp sp ->
            Json.Obj
              ([
                 ("at", Json.Float (Obs.span_start sp));
                 ("actor", Json.String (Obs.span_actor sp));
                 ("kind", Json.String "span");
                 ("name", Json.String (Obs.span_name sp));
                 ("cat", Json.String (Obs.span_cat sp));
               ]
              @
              match Obs.span_duration sp with
              | Some d -> [ ("dur", Json.Float d) ]
              | None -> [ ("unfinished", Json.Bool true) ])
      in
      Buffer.add_string buf (Json.to_string line);
      Buffer.add_char buf '\n')
    (Obs.entries obs);
  Buffer.contents buf

let metrics_json obs =
  let histograms =
    Obs.histograms obs
    |> List.map (fun (name, cat, h) ->
           let s = Hist.summary h in
           ( name,
             Json.Obj
               [
                 ("cat", Json.String cat);
                 ("count", Json.Int s.Hist.count);
                 ("sum", Json.Float s.Hist.sum);
                 ("min", Json.Float s.Hist.min);
                 ("max", Json.Float s.Hist.max);
                 ("p50", Json.Float s.Hist.p50);
                 ("p90", Json.Float s.Hist.p90);
                 ("p99", Json.Float s.Hist.p99);
               ] ))
  in
  let counters =
    Obs.counters obs |> List.map (fun (name, v) -> (name, Json.Int v))
  in
  let gauges =
    Obs.gauges obs |> List.map (fun (name, v) -> (name, Json.Float v))
  in
  Json.Obj
    [
      ("histograms", Json.Obj histograms);
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
    ]

let metrics obs = Json.to_string (metrics_json obs)

(* {2 Perf snapshots (the profiler's two planes, one document)}

   Versioned so tools/perfdiff can refuse to compare incompatible
   shapes.  The deterministic plane (counters, per-scope attribution)
   is byte-stable for a seed and diffed exactly; the timing plane
   (wall-clock seconds) varies run to run and is diffed with noise
   thresholds, or ignored.  [wall_clock] marks snapshots of
   wall-clock-only experiments (Bechamel rows, empty deterministic
   plane). *)

let perf_snapshot_version = 1

let perf_snapshot_json ?(wall_clock = false) ~id prof =
  let counters =
    Prof.totals prof |> List.map (fun (name, n) -> (name, Json.Int n))
  in
  let scopes =
    Prof.by_scope prof
    |> List.map (fun (path, row) ->
           (path, Json.Obj (List.map (fun (c, n) -> (c, Json.Int n)) row)))
  in
  let timing_scopes =
    Prof.timings prof
    |> List.map (fun (path, calls, total_s, self_s) ->
           ( path,
             Json.Obj
               [
                 ("calls", Json.Int calls);
                 ("total_s", Json.Float total_s);
                 ("self_s", Json.Float self_s);
               ] ))
  in
  Json.Obj
    [
      ("version", Json.Int perf_snapshot_version);
      ("id", Json.String id);
      ("wall_clock", Json.Bool wall_clock);
      ( "deterministic",
        Json.Obj
          [ ("counters", Json.Obj counters); ("scopes", Json.Obj scopes) ] );
      ( "timing",
        Json.Obj
          [ ("clock", Json.String "wall"); ("scopes", Json.Obj timing_scopes) ]
      );
    ]

let perf_snapshot ?wall_clock ~id prof =
  Json.to_string (perf_snapshot_json ?wall_clock ~id prof)

(* Collapsed-stack rendering of one deterministic counter: one line per
   scope path, [frame;frame;frame weight], the input format of
   flamegraph.pl / speedscope / inferno.  Weights are the per-scope
   (self) attribution, which is exactly what a flamegraph expects. *)
let flamegraph ?(counter = "sim.events.popped") prof =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (path, row) ->
      match List.assoc_opt counter row with
      | Some n when n > 0 ->
          Buffer.add_string buf path;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int n);
          Buffer.add_char buf '\n'
      | _ -> ())
    (Prof.by_scope prof);
  Buffer.contents buf

let write_string ~file s =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s)

(* [.jsonl] selects the line-oriented exporter; anything else gets the
   Chrome trace_event document.  [render_trace] exposes the same
   format choice as a pure string so pooled tasks can render their
   export blob inside the worker domain and let the submitting domain
   do the file write. *)
let render_trace obs ~file =
  if Filename.check_suffix file ".jsonl" then jsonl obs else chrome obs

let write_trace obs ~file = write_string ~file (render_trace obs ~file)

let write_metrics obs ~file = write_string ~file (metrics obs)

(* Structural validation of an exported Chrome trace: used by tests and
   the CLI's validate-trace command.  Returns (events, tracks). *)
let validate_chrome (s : string) : (int * int, string) result =
  match Json.parse s with
  | Error e -> Error (Printf.sprintf "not valid JSON: %s" e)
  | Ok json -> (
      match Json.member "traceEvents" json with
      | None -> Error "missing traceEvents"
      | Some te -> (
          match Json.to_list te with
          | None -> Error "traceEvents is not an array"
          | Some items -> (
              let tids = Hashtbl.create 8 in
              let check item =
                let has_string key =
                  match Json.member key item with
                  | Some (Json.String _) -> true
                  | _ -> false
                in
                let ph =
                  Option.bind (Json.member "ph" item) Json.to_string_opt
                in
                (match Json.member "tid" item with
                | Some (Json.Int tid) -> Hashtbl.replace tids tid ()
                | _ -> ());
                has_string "name"
                && (match ph with Some _ -> true | None -> false)
                && (match ph with
                   | Some "M" -> true (* metadata has no ts *)
                   | _ -> (
                       match Json.member "ts" item with
                       | Some (Json.Int _ | Json.Float _) -> true
                       | _ -> false))
              in
              match List.for_all check items with
              | true -> Ok (List.length items, Hashtbl.length tids)
              | false -> Error "malformed trace event")))
