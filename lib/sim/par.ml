(* Combinators for waiting on several outstanding operations.

   The paper's algorithms repeatedly issue an operation to every memory in
   parallel and continue once m - f_M of them complete ("wait for
   completion of m - fM iterations of pfor loop", Algorithm 7).

   Once a k-of-n wait settles (quorum reached, or timeout), every
   callback it registered on the still-unfilled ivars is deregistered:
   a memory that responds after the quorum is met finds no waiter and
   the late response is dropped, rather than queueing a dead closure on
   an ivar that may never fill (e.g. one owned by a crashed memory). *)

(* [await_k ivars k] blocks until at least [k] of [ivars] are filled, then
   returns the filled (index, value) pairs observed at that instant, in
   index order.  Raises [Invalid_argument] if [k] exceeds the number of
   ivars (such a wait could never complete even without failures). *)
let await_k ivars k =
  let total = Array.length ivars in
  if k > total then invalid_arg "Par.await_k: k larger than ivar count";
  let snapshot () =
    Array.to_list ivars
    |> List.mapi (fun i iv -> (i, Ivar.peek iv))
    |> List.filter_map (fun (i, v) ->
           match v with Some v -> Some (i, v) | None -> None)
  in
  let filled = Array.fold_left (fun acc iv -> if Ivar.is_full iv then acc + 1 else acc) 0 ivars in
  if filled >= k then snapshot ()
  else begin
    Engine.suspend (fun _eng fiber resume ->
        let count = ref filled and settled = ref false in
        let cancels = ref [] in
        let unhook = ref (fun () -> ()) in
        let settle () =
          if not !settled then begin
            settled := true;
            List.iter (fun cancel -> cancel ()) !cancels;
            cancels := [];
            !unhook ();
            resume ()
          end
        in
        Array.iter
          (fun iv ->
            if not (Ivar.is_full iv) then
              let cancel =
                Ivar.on_fill_cancellable iv (fun _ ->
                    if not !settled then begin
                      incr count;
                      if !count >= k then settle ()
                    end)
              in
              cancels := cancel :: !cancels)
          ivars;
        (* A crashed issuer abandons the wait: tear it down at cancel
           time so late completions — lagged ones in particular — find
           no waiter to wake and no callbacks leak on never-filled
           ivars.  The resume inside [settle] discontinues the fiber. *)
        unhook := Engine.on_cancel fiber settle;
        if (not !settled) && !count >= k then settle ());
    snapshot ()
  end

(* Wait for all. *)
let await_all ivars = await_k ivars (Array.length ivars)

(* [await_k_timeout ivars k d]: like [await_k] but gives up after [d] time
   units, returning whatever completed. *)
let await_k_timeout ivars k delay =
  let total = Array.length ivars in
  let k = min k total in
  let snapshot () =
    Array.to_list ivars
    |> List.mapi (fun i iv -> (i, Ivar.peek iv))
    |> List.filter_map (fun (i, v) ->
           match v with Some v -> Some (i, v) | None -> None)
  in
  let filled = Array.fold_left (fun acc iv -> if Ivar.is_full iv then acc + 1 else acc) 0 ivars in
  if filled >= k then snapshot ()
  else begin
    Engine.suspend (fun eng fiber resume ->
        let count = ref filled and settled = ref false in
        let cancels = ref [] in
        let unhook = ref (fun () -> ()) in
        let finish () =
          if not !settled then begin
            settled := true;
            List.iter (fun cancel -> cancel ()) !cancels;
            cancels := [];
            !unhook ();
            resume ()
          end
        in
        Array.iter
          (fun iv ->
            if not (Ivar.is_full iv) then
              let cancel =
                Ivar.on_fill_cancellable iv (fun _ ->
                    if not !settled then begin
                      incr count;
                      if !count >= k then finish ()
                    end)
              in
              cancels := cancel :: !cancels)
          ivars;
        (* Cancel-time teardown, as in [await_k]; the timer below still
           fires afterwards and finds [settled] set. *)
        unhook := Engine.on_cancel fiber finish;
        if !count >= k then finish ();
        Engine.schedule eng delay (fun () -> finish ()));
    snapshot ()
  end
