(* Per-run counters.

   One [Stats.t] is shared by all the substrate components of a simulated
   cluster; the benches read it to report message counts, memory-operation
   counts and signature counts next to decision delays (e.g. the "one
   signature on the fast path" claim of Section 4.2). *)

type t = {
  mutable messages_sent : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable perm_changes : int;
  mutable signatures : int;
  mutable verifications : int;
  named : (string, int ref) Hashtbl.t;
}

let create () =
  {
    messages_sent = 0;
    mem_reads = 0;
    mem_writes = 0;
    perm_changes = 0;
    signatures = 0;
    verifications = 0;
    named = Hashtbl.create 16;
  }

let incr_messages t = t.messages_sent <- t.messages_sent + 1

let incr_reads t = t.mem_reads <- t.mem_reads + 1

let incr_writes t = t.mem_writes <- t.mem_writes + 1

let incr_perm_changes t = t.perm_changes <- t.perm_changes + 1

let incr_signatures t = t.signatures <- t.signatures + 1

let incr_verifications t = t.verifications <- t.verifications + 1

let bump t name =
  match Hashtbl.find_opt t.named name with
  | Some r -> incr r
  | None -> Hashtbl.add t.named name (ref 1)

let get t name =
  match Hashtbl.find_opt t.named name with Some r -> !r | None -> 0

let set t name v =
  match Hashtbl.find_opt t.named name with
  | Some r -> r := v
  | None -> Hashtbl.add t.named name (ref v)

let mem_ops t = t.mem_reads + t.mem_writes + t.perm_changes

(* Named counters sorted by key — [Hashtbl.fold] order depends on the
   hash seed, and reports must be stable for expect-style comparison. *)
let named_sorted t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.named [] |> List.sort compare

let pp ppf t =
  Fmt.pf ppf "msgs=%d reads=%d writes=%d perms=%d signs=%d verifies=%d"
    t.messages_sent t.mem_reads t.mem_writes t.perm_changes t.signatures
    t.verifications;
  List.iter (fun (k, v) -> Fmt.pf ppf " %s=%d" k v) (named_sorted t)
