(** A unit of simulation work: seed/config in, pure result out.

    Tasks are what {!Pool} schedules across domains.  A task may only
    depend on its [seed] and the immutable values captured by its
    closure; it must not touch shared mutable state.  Results are
    ordinary heap values handed back to the submitting domain under a
    full synchronisation, so they may carry reports, rendered output,
    or [Obs] export blobs. *)

type 'r t

(** [make ~label ~seed run] packages one unit of work.  [label] is for
    diagnostics (pool error reports); [run] receives the task's own
    [seed] — never any pool or domain identity. *)
val make : label:string -> seed:int -> (seed:int -> 'r) -> 'r t

val label : 'r t -> string

val seed : 'r t -> int

(** Run the task on the calling domain. *)
val apply : 'r t -> 'r
