(* Unbounded FIFO mailboxes connecting fibers.

   [recv] blocks until a message is available.  Delivery order is the
   order of [send] calls, which the deterministic engine makes
   reproducible.

   Waiters are cancel-aware: a fiber that crashes (is cancelled) while
   blocked in [recv] leaves a dead waiter behind, and [send] must not
   hand it the message — resuming a cancelled fiber discards the value,
   so a restarted receiver queued behind the corpse would silently lose
   the first message sent after the restart (and, for in-order
   consumers like the SMR applier, everything after the gap). *)

type 'a waiter = { mutable deliver : ('a -> unit) option }
(* [None] = the waiting fiber was cancelled, timed out, or was served. *)

type 'a t = {
  messages : 'a Queue.t;
  waiters : 'a waiter Queue.t;
}

let create () = { messages = Queue.create (); waiters = Queue.create () }

let rec send t msg =
  match Queue.take_opt t.waiters with
  | None -> Queue.push msg t.messages
  | Some { deliver = None } -> send t msg (* dead waiter: skip it *)
  | Some ({ deliver = Some k } as w) ->
      w.deliver <- None;
      k msg

let length t = Queue.length t.messages

let is_empty t = Queue.is_empty t.messages

let recv t =
  if not (Queue.is_empty t.messages) then Queue.pop t.messages
  else
    Engine.suspend (fun _eng fiber resume ->
        let dereg = ref (fun () -> ()) in
        let w = { deliver = None } in
        w.deliver <-
          Some
            (fun msg ->
              !dereg ();
              resume msg);
        dereg := Engine.on_cancel fiber (fun () -> w.deliver <- None);
        Queue.push w t.waiters)

let recv_timeout t delay =
  if not (Queue.is_empty t.messages) then Some (Queue.pop t.messages)
  else
    Engine.suspend (fun eng fiber resume ->
        let dereg = ref (fun () -> ()) in
        let w = { deliver = None } in
        w.deliver <-
          Some
            (fun msg ->
              !dereg ();
              resume (Some msg));
        dereg := Engine.on_cancel fiber (fun () -> w.deliver <- None);
        Queue.push w t.waiters;
        Engine.schedule eng delay (fun () ->
            match w.deliver with
            | None -> () (* delivered, or the fiber was cancelled *)
            | Some _ ->
                w.deliver <- None;
                !dereg ();
                resume None))

(* Drain without blocking. *)
let drain t =
  let rec loop acc =
    if Queue.is_empty t.messages then List.rev acc
    else loop (Queue.pop t.messages :: acc)
  in
  loop []
