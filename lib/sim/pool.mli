(** Fixed-size domain pool over {!Task} lists with a seed-ordered
    deterministic merge: results come back in submission order
    regardless of completion order, so [-j 1] and [-j N] runs are
    byte-identical for any consumer that folds over the result list.

    Exceptions raised by a task are captured into that task's result
    slot; the other tasks are unaffected. *)

type error = { task_label : string; task_seed : int; exn : exn }

val pp_error : Format.formatter -> error -> unit

(** [Domain.recommended_domain_count () - 1] (at least 1): one domain
    coordinates, the rest work. *)
val default_jobs : unit -> int

(** [run ~jobs tasks] executes the tasks on [min jobs (length tasks)]
    worker domains ([jobs <= 1] runs inline on the calling domain) and
    returns per-task results in submission order.  [jobs] defaults to
    {!default_jobs}. *)
val run : ?jobs:int -> 'r Task.t list -> ('r, error) result list

(** Like {!run} but re-raises the first (in submission order) captured
    task exception. *)
val run_exn : ?jobs:int -> 'r Task.t list -> 'r list
