(* Binary min-heap keyed by (time, sequence number).

   The sequence number makes the ordering total and deterministic: two
   events scheduled for the same virtual time fire in insertion order. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable max_size : int; (* high watermark, for the heap-depth gauge *)
}

let dummy payload = { time = 0.; seq = 0; payload }

let create () = { data = [||]; size = 0; max_size = 0 }

let is_empty h = h.size = 0

let size h = h.size

let max_size h = h.max_size

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow h entry =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let capacity' = max 16 (2 * capacity) in
    let data' = Array.make capacity' (dummy entry.payload) in
    Array.blit h.data 0 data' 0 h.size;
    h.data <- data'
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && lt h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.size && lt h.data.(right) h.data.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h ~time ~seq payload =
  let entry = { time; seq; payload } in
  grow h entry;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  if h.size > h.max_size then h.max_size <- h.size;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let peek h = if h.size = 0 then None else Some h.data.(0)
