(* A unit of simulation work: seed (and whatever configuration the
   closure captured) in, pure result out.

   Tasks are the currency of the domain-parallel sweep layer (Pool):
   every heavy harness in the repository — chaos exploration batches,
   shrinker probes, bench experiments — is expressed as a list of tasks
   whose results are merged back in submission order, so the same list
   runs sequentially or across domains with byte-identical outcomes.

   The discipline that makes this safe is carried by the type: a task's
   only inputs are its [seed] and the immutable values its closure
   captured at construction time.  The runner passes the task's own
   seed back to [run] — never a pool slot index or domain id — so any
   RNG a task builds (ultimately [Engine.create ~seed]) is a function
   of the task alone.  A task must not touch shared mutable state; its
   result is handed back to the submitting domain after a full
   synchronisation (Domain.join / the pool's queue lock), so results
   may be ordinary heap values (reports, rendered output, Obs export
   blobs). *)

type 'r t = { label : string; seed : int; run : seed:int -> 'r }

let make ~label ~seed run = { label; seed; run }

let label t = t.label

let seed t = t.seed

(* Run the task on the calling domain, feeding it its own seed. *)
let apply t = t.run ~seed:t.seed
