(** Waiting on several outstanding operations at once ("wait for
    completion of m - fM iterations of pfor loop", Algorithm 7). *)

(** [await_k ivars k] blocks until at least [k] ivars are filled; returns
    the filled [(index, value)] pairs observed at that instant, in index
    order.  Raises [Invalid_argument] if [k > Array.length ivars]. *)
val await_k : 'a Ivar.t array -> int -> (int * 'a) list [@@sim.yields]

val await_all : 'a Ivar.t array -> (int * 'a) list [@@sim.yields]

(** Like {!await_k} but returns whatever has completed after [delay] time
    units if [k] completions have not happened by then. *)
val await_k_timeout : 'a Ivar.t array -> int -> float -> (int * 'a) list
[@@sim.yields]
