(* Deterministic discrete-event simulator with cooperative fibers.

   Virtual time is a float whose unit is one network delay (the paper's
   complexity metric, Section 3).  Fibers are implemented with OCaml 5
   effects: a fiber is ordinary blocking-style code; every blocking point
   performs the single [Suspend] effect, handing the engine a callback
   that will resume the fiber at a later virtual time.

   Crash injection works by cancelling a fiber: any later attempt to
   resume it discontinues the fiber with [Cancelled] instead, so the
   fiber "stops taking steps forever" exactly as the model prescribes. *)

exception Cancelled

exception Deadlock of string

type t = {
  mutable now : float;
  mutable seq : int;
  heap : (unit -> unit) Heap.t;
  mutable steps : int;
  max_steps : int;
  rng : Random.State.t;
  mutable next_fid : int;
  mutable errors : (string * exn) list;
  mutable fiber_count : int;
  obs : Rdma_obs.Obs.t;
  (* Profiler scope-stack depth owned by the engine's caller: frames
     above it belong to the currently executing fiber and travel with
     it across suspension (see the Suspend handler and [run]). *)
  mutable prof_base : int;
}

and fiber = {
  fid : int;
  name : string;
  mutable cancelled : bool;
  owner : t;
  (* cleanup actions to run if the fiber is cancelled — registered by
     blocking combinators so an abandoned wait can deregister its ivar
     callbacks instead of leaking waiters (id, action) *)
  mutable cancel_hooks : (int * (unit -> unit)) list;
  mutable next_hook : int;
}

type _ Effect.t +=
  | Suspend : (t -> fiber -> ('a -> unit) -> unit) -> 'a Effect.t

let create ?(max_steps = 20_000_000) ?(seed = 1) () =
  let t =
    {
      now = 0.;
      seq = 0;
      heap = Heap.create ();
      steps = 0;
      max_steps;
      rng = Random.State.make [| seed |];
      next_fid = 0;
      errors = [];
      fiber_count = 0;
      obs = Rdma_obs.Obs.create ();
      prof_base = 0;
    }
  in
  (* The telemetry clock is virtual time: every span and event recorded
     anywhere in the stack is keyed to the paper's delay metric. *)
  Rdma_obs.Obs.set_clock t.obs (fun () -> t.now);
  t

let now t = t.now

let obs t = t.obs

let rng t = t.rng

let steps t = t.steps

let errors t = t.errors

let fiber_name f = f.name

let cancelled f = f.cancelled

let cancel f =
  if not f.cancelled then begin
    f.cancelled <- true;
    Rdma_obs.Obs.event f.owner.obs ~actor:f.name
      (Rdma_obs.Event.Fiber_cancel { fid = f.fid; name = f.name });
    (* run the registered cleanups in registration order; each may
       resume (hence discontinue) the fiber, so hooks guard their own
       settled state *)
    let hooks = List.rev f.cancel_hooks in
    f.cancel_hooks <- [];
    List.iter (fun (_, hook) -> hook ()) hooks
  end

(* [on_cancel fiber hook] runs [hook] if the fiber is ever cancelled
   (immediately when it already is) and returns a deregistration
   closure — call it once the guarded wait settles, so long-lived
   fibers don't accumulate dead hooks. *)
let on_cancel fiber hook =
  if fiber.cancelled then begin
    hook ();
    fun () -> ()
  end
  else begin
    fiber.next_hook <- fiber.next_hook + 1;
    let id = fiber.next_hook in
    fiber.cancel_hooks <- (id, hook) :: fiber.cancel_hooks;
    fun () ->
      fiber.cancel_hooks <-
        List.filter (fun (id', _) -> id' <> id) fiber.cancel_hooks
  end

let schedule t delay callback =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  Rdma_obs.Prof.bump "sim.heap.pushes" 1;
  t.seq <- t.seq + 1;
  Heap.push t.heap ~time:(t.now +. delay) ~seq:t.seq callback

(* [resume_of t fiber ~saved k] wraps a continuation as a single-shot
   resume function that respects cancellation and schedules through the
   heap, preserving deterministic ordering.  [saved] is the fiber's
   detached profiler-frame segment: re-attached just before the
   continuation runs (also on the discontinue path, so the unwinding
   [Fun.protect]s close their frames), and left paused forever if the
   resume never fires — a cancelled fiber loses only the wall-time of
   its still-open frames, never deterministic counts. *)
let resume_of t fiber ~saved k =
  let used = ref false in
  fun v ->
    if !used then invalid_arg "Engine: fiber resumed twice";
    used := true;
    schedule t 0. (fun () ->
        Rdma_obs.Prof.attach saved;
        if fiber.cancelled then
          try Effect.Deep.discontinue k Cancelled with Cancelled -> ()
        else Effect.Deep.continue k v)

let handler t fiber =
  let retc () = () in
  let exnc = function
    | Cancelled -> ()
    | e -> t.errors <- (fiber.name, e) :: t.errors
  in
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option
      = function
    | Suspend f ->
        Some
          (fun k ->
            (* The fiber is suspending: detach its profiler frames (the
               ones above the dispatch-time base) so the counters and
               wall timers of other fibers never land in its scopes. *)
            let saved = Rdma_obs.Prof.detach_to t.prof_base in
            f t fiber (resume_of t fiber ~saved k))
    | _ -> None
  in
  { Effect.Deep.retc; exnc; effc }

let spawn t name f =
  t.next_fid <- t.next_fid + 1;
  t.fiber_count <- t.fiber_count + 1;
  let fiber =
    {
      fid = t.next_fid;
      name;
      cancelled = false;
      owner = t;
      cancel_hooks = [];
      next_hook = 0;
    }
  in
  schedule t 0. (fun () ->
      if not fiber.cancelled then begin
        (* Recorded at first step, not at [spawn], so traces enabled
           between cluster construction and [run] still see it. *)
        Rdma_obs.Obs.event t.obs ~actor:name
          (Rdma_obs.Event.Fiber_spawn { fid = fiber.fid; name });
        Effect.Deep.match_with
          (fun () ->
            Fun.protect
              ~finally:(fun () -> t.fiber_count <- t.fiber_count - 1)
              f)
          () (handler t fiber)
      end);
  fiber

let run t =
  let continue = ref true in
  while !continue do
    match Heap.pop t.heap with
    | None -> continue := false
    | Some { Heap.time; payload; _ } ->
        t.steps <- t.steps + 1;
        if t.steps > t.max_steps then begin
          Rdma_obs.Obs.event t.obs ~actor:"engine"
            (Rdma_obs.Event.Deadlock { steps = t.steps });
          raise
            (Deadlock
               (Printf.sprintf "Engine: exceeded %d steps at time %.2f"
                  t.max_steps t.now))
        end;
        t.now <- time;
        Rdma_obs.Prof.bump "sim.events.popped" 1;
        (* Frames open here belong to the caller; anything a payload
           opens above this depth belongs to the fiber it runs. *)
        t.prof_base <- Rdma_obs.Prof.depth ();
        payload ()
  done;
  Rdma_obs.Obs.gauge t.obs "sim.heap.peak_depth"
    (float_of_int (Heap.max_size t.heap))

let suspend f = Effect.perform (Suspend f)

let sleep delay =
  if delay < 0. then invalid_arg "Engine.sleep: negative delay";
  suspend (fun t _fiber resume -> schedule t delay (fun () -> resume ()))

let yield () = sleep 0.

let self () = suspend (fun _t fiber resume -> resume fiber)
