(** Unbounded FIFO mailboxes connecting fibers. *)

type 'a t

val create : unit -> 'a t

(** Enqueue a message, waking one blocked receiver if any. *)
val send : 'a t -> 'a -> unit

(** Queued (undelivered) message count. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** Block until a message is available. *)
val recv : 'a t -> 'a [@@sim.yields]

(** Block for at most [delay] virtual time units; [None] on timeout.  A
    message arriving after the timeout is kept for the next receiver. *)
val recv_timeout : 'a t -> float -> 'a option [@@sim.yields]

(** Remove and return all queued messages without blocking. *)
val drain : 'a t -> 'a list
