(** Per-run counters shared by the substrate components of a cluster. *)

type t = {
  mutable messages_sent : int;
  mutable mem_reads : int;
  mutable mem_writes : int;
  mutable perm_changes : int;
  mutable signatures : int;
  mutable verifications : int;
  named : (string, int ref) Hashtbl.t;
}

val create : unit -> t

val incr_messages : t -> unit

val incr_reads : t -> unit

val incr_writes : t -> unit

val incr_perm_changes : t -> unit

val incr_signatures : t -> unit

val incr_verifications : t -> unit

(** Bump an ad-hoc named counter. *)
val bump : t -> string -> unit

val get : t -> string -> int

(** Set a named counter to an absolute value. *)
val set : t -> string -> int -> unit

(** Total memory operations (reads + writes + permission changes). *)
val mem_ops : t -> int

(** Snapshot of the named counters, sorted by key (stable across runs,
    unlike raw [Hashtbl] iteration order). *)
val named_sorted : t -> (string * int) list

(** Prints the fixed counters followed by the named counters in sorted
    key order, so output is deterministic. *)
val pp : Format.formatter -> t -> unit
