(* Fixed-size domain pool with a seed-ordered deterministic merge.

   [run ~jobs tasks] executes every task and returns the results in
   SUBMISSION order, regardless of completion order, so [-j 1] and
   [-j N] are byte-identical for any consumer that folds over the
   result list.  The work queue is the task array itself plus an atomic
   cursor: workers pop indices in submission order (the queue), write
   into their slot of a results array, and the final [Domain.join]
   publishes every slot to the submitting domain before it reads them.

   Determinism argument:
   - each task is a pure function of its own seed and captured config
     (see Task); nothing a worker observes — its domain id, the cursor
     value, timing — flows into a task's inputs;
   - results land in the slot of their submission index, so the merged
     list is [f t0; f t1; ...] no matter which domain computed what;
   - exceptions are captured per task into the result slot rather than
     tearing down the pool, so a failing task cannot reorder or starve
     the others.

   The engine itself stays single-domain: one simulation = one task =
   one domain at a time.  The pool never hands two domains the same
   engine, and collectors ([Obs.t]) stay confined to the domain that
   created them until the task returns. *)

type error = { task_label : string; task_seed : int; exn : exn }

let pp_error ppf e =
  Fmt.pf ppf "task %s (seed %d) raised %s" e.task_label e.task_seed
    (Printexc.to_string e.exn)

(* One domain is the coordinator; leave the rest to workers.  At least
   1 so the pool degrades to sequential on single-core machines. *)
let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* OCaml caps live domains (128 by default); clamp well below it so a
   misconfigured -j or an accidentally nested pool cannot trip the
   runtime limit. *)
let max_workers = 64

(* Tasks never inherit the caller's ambient profiler: a worker domain
   starts with none installed, so the sequential path masks it too —
   otherwise [-j 1] would attribute pooled work to the submitting
   domain's scopes and [-j N] would not, breaking the byte-identical
   contract.  A task that wants profiling installs its own. *)
let run_task task =
  match Rdma_obs.Prof.without_profiler (fun () -> Task.apply task) with
  | r -> Ok r
  | exception exn ->
      Error { task_label = Task.label task; task_seed = Task.seed task; exn }

let run ?jobs tasks =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let workers = min (min jobs n) max_workers in
  if n = 0 then []
  else if workers <= 1 then
    (* Sequential fast path: same merge order by construction. *)
    Array.to_list (Array.map run_task tasks)
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <- Some (run_task tasks.(i));
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init workers (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None ->
               (* unreachable: every index below the cursor was claimed
                  by exactly one worker and joined above *)
               assert false)
         results)
  end

(* All-or-nothing variant: re-raise the first (submission-order) task
   failure.  Harness drivers use this when a task exception means a
   bug in the harness itself, not a property of the simulated run. *)
let run_exn ?jobs tasks =
  List.map
    (function Ok r -> r | Error e -> raise e.exn)
    (run ?jobs tasks)
