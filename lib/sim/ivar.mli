(** Write-once synchronization variables.

    A crashed simulated memory never fills the ivar of an outstanding
    operation, so the operation hangs forever — the paper's memory-crash
    semantics (Section 3). *)

type 'a t

val create : unit -> 'a t

(** An ivar already holding [v]. *)
val full : 'a -> 'a t

val is_full : 'a t -> bool

val peek : 'a t -> 'a option

(** Number of callbacks currently registered and waiting for the fill
    (0 once full).  Exposed so tests can assert that abandoned quorum
    waits deregister instead of leaking. *)
val waiter_count : 'a t -> int

(** Fill the ivar and wake all waiters.  Raises [Invalid_argument] if
    already full. *)
val fill : 'a t -> 'a -> unit

(** Like {!fill} but returns [false] instead of raising when full. *)
val try_fill : 'a t -> 'a -> bool

(** [on_fill t f] registers [f] to run on fill (immediately if already
    full). *)
val on_fill : 'a t -> ('a -> unit) -> unit

(** Like {!on_fill}, but returns a cancel function that deregisters the
    callback.  Cancelling after the fill (or twice) is a no-op. *)
val on_fill_cancellable : 'a t -> ('a -> unit) -> unit -> unit

(** Block the current fiber until the ivar is filled. *)
val await : 'a t -> 'a [@@sim.yields]

(** [await_timeout t d] blocks for at most [d] virtual time units; [None]
    on timeout.  The internal waiter is deregistered on timeout. *)
val await_timeout : 'a t -> float -> 'a option [@@sim.yields]
