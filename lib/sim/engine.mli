(** Deterministic discrete-event simulator with cooperative fibers.

    Virtual time is a [float] whose unit is one network delay — the paper's
    complexity metric (Section 3): a message costs 1.0, a memory operation
    costs 2.0 (request arrival at +1.0, response at +2.0).

    Fibers are blocking-style computations multiplexed over the event loop
    with OCaml effects.  All scheduling goes through a single heap ordered
    by [(time, insertion seq)], so runs are fully deterministic. *)

(** Raised inside a fiber that has been {!cancel}led, at its next
    (attempted) resumption. *)
exception Cancelled

(** Raised by {!run} when the step budget is exhausted — almost always a
    livelock in the simulated protocol. *)
exception Deadlock of string

type t

type fiber

val create : ?max_steps:int -> ?seed:int -> unit -> t

(** Current virtual time. *)
val now : t -> float

(** The engine's telemetry collector; its clock is virtual time.  All
    substrate layers built over this engine record their typed events,
    spans and metrics here. *)
val obs : t -> Rdma_obs.Obs.t

(** Seeded PRNG for simulated randomness; all determinism flows from the
    [seed] given to {!create}. *)
val rng : t -> Random.State.t

(** Number of events executed so far. *)
val steps : t -> int

(** Exceptions that escaped fibers, most recent first, as
    [(fiber name, exn)]. *)
val errors : t -> (string * exn) list

(** [schedule t delay f] runs [f] at virtual time [now t +. delay].
    Usable from inside or outside fibers. *)
val schedule : t -> float -> (unit -> unit) -> unit

(** [spawn t name f] starts a new fiber.  [f] runs at the current virtual
    time (as a fresh event). *)
val spawn : t -> string -> (unit -> unit) -> fiber

(** Cancelling a fiber makes it stop taking steps forever: pending
    resumptions are discarded and the fiber is discontinued with
    {!Cancelled} at its next wake-up point.  This models a process
    crash. *)
val cancel : fiber -> unit

val cancelled : fiber -> bool

(** [on_cancel fiber hook] registers [hook] to run when the fiber is
    cancelled (immediately if it already is) and returns a
    deregistration closure.  Blocking combinators use it to tear down an
    abandoned wait — deregistering ivar callbacks so late completions
    (e.g. lagged ones under a weak ordering model) find no waiter.
    Hooks run in registration order and may resume the fiber (which
    discontinues it); a hook must guard its own settled state. *)
val on_cancel : fiber -> (unit -> unit) -> unit -> unit

val fiber_name : fiber -> string

(** Run the event loop until no events remain.  Raises {!Deadlock} if the
    step budget is exhausted. *)
val run : t -> unit

(** {2 Fiber-context operations}

    These may only be called from inside a fiber spawned by {!spawn}. *)

(** [suspend f] blocks the current fiber; [f engine self resume] must
    arrange for [resume] to be called (at most once) with the result.

    [@@sim.yields] below is the interface-level atomicity contract
    simlint's rule Y2 checks: a [val] carries it iff a fiber suspension
    is reachable from its implementation, so callers can see where
    shared state may change underneath them.  These three are the yield
    roots the whole-tree may-yield analysis is anchored at. *)
val suspend : (t -> fiber -> ('a -> unit) -> unit) -> 'a [@@sim.yields]

(** Block for [delay] units of virtual time. *)
val sleep : float -> unit [@@sim.yields]

(** Re-enqueue the current fiber at the current time. *)
val yield : unit -> unit [@@sim.yields]

(** The currently running fiber.  Implemented on {!suspend}, but the
    handler resumes synchronously — the scheduler never runs another
    fiber in between, so this is not an atomicity boundary. *)
val self : unit -> fiber
[@@simlint.allow
  "Y2 self resumes inside its own Suspend handler without re-entering \
   the scheduler; no other fiber can run during the call"]
