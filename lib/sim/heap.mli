(** Binary min-heap keyed by [(time, seq)].

    Two entries with the same time are ordered by their sequence number, so
    scheduling is fully deterministic. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

(** Peak size ever reached (high watermark); feeds the engine's
    [sim.heap.peak_depth] gauge. *)
val max_size : 'a t -> int

(** [push h ~time ~seq payload] inserts an entry. *)
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** [pop h] removes and returns the least entry, or [None] if empty. *)
val pop : 'a t -> 'a entry option

(** [peek h] returns the least entry without removing it. *)
val peek : 'a t -> 'a entry option
