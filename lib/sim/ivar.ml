(* Write-once synchronization variables ("ivars").

   An ivar starts empty and can be filled exactly once.  Fibers block on
   [await]; fills wake every waiter.  Used to represent the pending
   response of an outstanding memory operation, among other things: a
   crashed memory simply never fills the ivar, so the operation hangs
   forever — the paper's memory-crash semantics.

   Waiters carry a registration id so a caller that stops caring (a
   k-of-n quorum wait that already settled, a timed-out await) can
   deregister instead of leaving a dead callback queued on an ivar that
   may never fill. *)

type 'a waiter = { wid : int; notify : 'a -> unit }

type 'a state =
  | Empty of 'a waiter list (* waiters, in reverse registration order *)
  | Full of 'a

type 'a t = { mutable state : 'a state; mutable next_wid : int }

let create () = { state = Empty []; next_wid = 0 }

let full v = { state = Full v; next_wid = 0 }

let is_full t = match t.state with Full _ -> true | Empty _ -> false

let peek t = match t.state with Full v -> Some v | Empty _ -> None

let waiter_count t =
  match t.state with Empty ws -> List.length ws | Full _ -> 0

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already full"
  | Empty waiters ->
      t.state <- Full v;
      List.iter (fun w -> w.notify v) (List.rev waiters)

let try_fill t v = match t.state with Full _ -> false | Empty _ -> fill t v; true

(* [on_fill t f] calls [f v] when the ivar is filled — immediately if it
   already is.  Callbacks must be cheap; fiber wake-ups go through the
   engine heap so no user code runs re-entrantly. *)
let on_fill t f =
  match t.state with
  | Full v -> f v
  | Empty waiters ->
      let wid = t.next_wid in
      t.next_wid <- wid + 1;
      t.state <- Empty ({ wid; notify = f } :: waiters)

(* Like [on_fill], but returns a cancel function: calling it removes the
   waiter so the callback never runs.  Cancelling after the fill (or
   twice) is a no-op. *)
let on_fill_cancellable t f =
  match t.state with
  | Full v ->
      f v;
      fun () -> ()
  | Empty waiters ->
      let wid = t.next_wid in
      t.next_wid <- wid + 1;
      t.state <- Empty ({ wid; notify = f } :: waiters);
      fun () ->
        (match t.state with
        | Full _ -> ()
        | Empty ws -> t.state <- Empty (List.filter (fun w -> w.wid <> wid) ws))

let await t =
  match t.state with
  | Full v -> v
  | Empty _ -> Engine.suspend (fun _eng _fiber resume -> on_fill t resume)

(* [await_timeout t d] waits for the ivar for at most [d] time units.  On
   timeout the waiter is deregistered, so an ivar that never fills does
   not accumulate dead callbacks. *)
let await_timeout t delay =
  match t.state with
  | Full v -> Some v
  | Empty _ ->
      Engine.suspend (fun eng _fiber resume ->
          let settled = ref false in
          let cancel =
            on_fill_cancellable t (fun v ->
                if not !settled then begin
                  settled := true;
                  resume (Some v)
                end)
          in
          Engine.schedule eng delay (fun () ->
              if not !settled then begin
                settled := true;
                cancel ();
                resume None
              end))
