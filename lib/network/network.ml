(* The message-passing half of the M&M model (Section 3).

   Directed links between every pair of processes with integrity (a
   message is received at most once and only if sent) and no-loss (every
   message between correct processes is eventually received).  Liveness
   assumptions are modelled with a global stabilization time (GST):
   before GST an adversary may add arbitrary finite delay to any message;
   from GST on, every message takes exactly the base latency — one delay
   unit in the paper's metric.

   A process sends through its [endpoint] capability, which pins the
   sender id: a Byzantine program can send arbitrary *payloads* but only
   under its own identity (links have integrity; there is no spoofing in
   the model). *)

open Rdma_sim
open Rdma_obs

type 'm envelope = { from : int; payload : 'm }

type 'm t = {
  engine : Engine.t;
  stats : Stats.t;
  obs : Obs.t;
  n : int;
  boxes : 'm envelope Mailbox.t array;
  mutable base_latency : src:int -> dst:int -> float;
  mutable gst : float;
  (* Extra delay added to messages sent before GST. *)
  mutable pre_gst_extra : src:int -> dst:int -> now:float -> float;
  mutable partitioned : (int * int) list;
      (* temporarily severed ordered pairs: messages are buffered, not
         dropped (no-loss), and flushed when the partition heals *)
  mutable buffered : (int * int * 'm envelope) list;
}

let create ?(latency = 1.0) ~engine ~stats ~n () =
  {
    engine;
    stats;
    obs = Engine.obs engine;
    n;
    boxes = Array.init n (fun _ -> Mailbox.create ());
    base_latency = (fun ~src:_ ~dst:_ -> latency);
    gst = 0.;
    pre_gst_extra = (fun ~src:_ ~dst:_ ~now:_ -> 0.);
    partitioned = [];
    buffered = [];
  }

let n t = t.n

let set_latency t f = t.base_latency <- f

(* Random per-message latency in [min, max) — used by the safety fuzzers:
   with heterogeneous latencies, messages between the same pair of
   processes can overtake each other, which the model allows (links
   guarantee integrity and no-loss, not FIFO).  Draws come from the
   engine's seeded RNG, so runs stay reproducible. *)
let randomize_latency t ~rng ~min:lo ~max:hi =
  if hi <= lo then invalid_arg "Network.randomize_latency: empty range";
  t.base_latency <-
    (fun ~src:_ ~dst:_ -> lo +. Random.State.float rng (hi -. lo))

let set_gst t ~at ~extra =
  t.gst <- at;
  t.pre_gst_extra <- extra

let partition t pairs =
  List.iter
    (fun (src, dst) ->
      if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
        invalid_arg "Network.partition: pid out of range")
    pairs;
  t.partitioned <- pairs @ t.partitioned;
  Obs.event t.obs ~actor:"net"
    (Event.Custom
       {
         name = "net.partition";
         detail =
           String.concat ","
             (List.map (fun (s, d) -> Printf.sprintf "%d>%d" s d) pairs);
       })

let severed t = t.partitioned

(* Schedule the final delivery leg: the typed deliver event fires at
   arrival time, on the receiver's track, and the link latency feeds the
   [net.latency] histogram. *)
let schedule_delivery t ~src ~dst ~delay env =
  Obs.observe t.obs ~cat:"net" "net.latency" delay;
  Engine.schedule t.engine delay (fun () ->
      Obs.event t.obs
        ~actor:(Printf.sprintf "p%d" dst)
        (Event.Net_deliver { src; dst });
      Mailbox.send t.boxes.(dst) env)

let heal t =
  t.partitioned <- [];
  let pending = List.rev t.buffered in
  t.buffered <- [];
  Obs.event t.obs ~actor:"net"
    (Event.Custom
       { name = "net.heal"; detail = string_of_int (List.length pending) });
  List.iter
    (fun (src, dst, env) ->
      let d = t.base_latency ~src ~dst in
      schedule_delivery t ~src ~dst ~delay:d env)
    pending

let deliver t ~src ~dst payload =
  Stats.incr_messages t.stats;
  Prof.bump "net.msgs.sent" 1;
  Obs.event t.obs ~actor:(Printf.sprintf "p%d" src) (Event.Net_send { src; dst });
  let env = { from = src; payload } in
  if List.mem (src, dst) t.partitioned then t.buffered <- (src, dst, env) :: t.buffered
  else begin
    let now = Engine.now t.engine in
    let extra = if now < t.gst then t.pre_gst_extra ~src ~dst ~now else 0. in
    let d = t.base_latency ~src ~dst +. extra in
    schedule_delivery t ~src ~dst ~delay:d env
  end

type 'm endpoint = { pid : int; net : 'm t }

let endpoint t pid =
  if pid < 0 || pid >= t.n then invalid_arg "Network.endpoint: bad pid";
  { pid; net = t }

let endpoint_pid e = e.pid

let send e ~dst payload = deliver e.net ~src:e.pid ~dst payload

(* Broadcast to all n processes, self included (the paper's algorithms
   count a process's own value uniformly). *)
let broadcast e payload =
  for dst = 0 to e.net.n - 1 do
    send e ~dst payload
  done

let broadcast_others e payload =
  for dst = 0 to e.net.n - 1 do
    if dst <> e.pid then send e ~dst payload
  done

let recv e =
  let env = Mailbox.recv e.net.boxes.(e.pid) in
  (env.from, env.payload)

let recv_timeout e delay =
  match Mailbox.recv_timeout e.net.boxes.(e.pid) delay with
  | None -> None
  | Some env -> Some (env.from, env.payload)

let pending e = Mailbox.length e.net.boxes.(e.pid)
