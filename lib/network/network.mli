(** The message-passing half of the M&M model (Section 3): directed links
    with integrity and no-loss; partial synchrony via a GST switch. *)

open Rdma_sim

type 'm t

val create : ?latency:float -> engine:Engine.t -> stats:Stats.t -> n:int -> unit -> 'm t

val n : 'm t -> int

(** Override the per-link base latency (default: the [latency] given to
    {!create}, itself defaulting to 1.0 — one delay unit). *)
val set_latency : 'm t -> (src:int -> dst:int -> float) -> unit

(** Random per-message latency in [[min, max)]: messages may overtake
    each other (the model's links are not FIFO).  Reproducible via the
    supplied seeded RNG. *)
val randomize_latency :
  'm t -> rng:Random.State.t -> min:float -> max:float -> unit

(** Messages sent before [at] suffer [extra] additional delay — the
    asynchronous prefix of a partially synchronous execution. *)
val set_gst : 'm t -> at:float -> extra:(src:int -> dst:int -> now:float -> float) -> unit

(** Sever the given ordered pairs.  Messages are buffered, not dropped
    (links are no-loss), and flushed by {!heal}.  Raises [Invalid_argument]
    if a pair names a pid outside [0, n). *)
val partition : 'm t -> (int * int) list -> unit

val heal : 'm t -> unit

(** The currently severed ordered pairs (empty after {!heal}). *)
val severed : 'm t -> (int * int) list

(** Sending capability of one process; pins the sender identity. *)
type 'm endpoint

val endpoint : 'm t -> int -> 'm endpoint

val endpoint_pid : 'm endpoint -> int

val send : 'm endpoint -> dst:int -> 'm -> unit

(** Send to all n processes, self included. *)
val broadcast : 'm endpoint -> 'm -> unit

val broadcast_others : 'm endpoint -> 'm -> unit

(** Block until a message arrives; returns [(sender, payload)]. *)
val recv : 'm endpoint -> int * 'm [@@sim.yields]

val recv_timeout : 'm endpoint -> float -> (int * 'm) option [@@sim.yields]

(** Queued undelivered messages for this endpoint. *)
val pending : 'm endpoint -> int
