(* Greedy counterexample minimization: repeatedly try dropping single
   faults from a violating schedule, keeping any removal after which the
   run still violates, until no single removal preserves the failure (a
   1-minimal schedule, in delta-debugging terms).

   Every probe is a full deterministic re-run, so the minimized schedule
   is guaranteed to still violate — there is no abstraction gap between
   "the shrinker thinks this fails" and "it fails".  A run cap bounds
   the worst case ([length^2] probes for a list that shrinks one element
   per pass). *)

open Rdma_consensus

(* Remove the element at [i]. *)
let drop i l = List.filteri (fun j _ -> j <> i) l

(* [minimize ~still_fails faults] returns the minimized schedule and the
   number of probe runs spent.  [still_fails] must be deterministic. *)
let minimize ?(max_runs = 200) ~still_fails (faults : Fault.t list) =
  let runs = ref 0 in
  let probe candidate =
    incr runs;
    still_fails candidate
  in
  let rec pass faults i =
    if i >= List.length faults || !runs >= max_runs then faults
    else
      let candidate = drop i faults in
      if probe candidate then
        (* the fault at [i] was not needed: keep the smaller schedule and
           retry the same index, which now names the next element *)
        pass candidate i
      else pass faults (i + 1)
  in
  let rec fixpoint faults =
    let smaller = pass faults 0 in
    if List.length smaller < List.length faults && !runs < max_runs then
      fixpoint smaller
    else smaller
  in
  let minimized = fixpoint faults in
  (minimized, !runs)
