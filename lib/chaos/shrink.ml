(* Counterexample minimization by step-batched delta debugging.

   Each step materializes EVERY single-drop candidate of the current
   schedule as one batch, evaluates the whole batch, and adopts the
   candidate at the first (lowest-index) still-failing position.  When
   no candidate in a full batch fails, the schedule is 1-minimal by
   construction: the batch just demonstrated that every single removal
   loses the failure.

   The batch shape is what makes the shrinker parallelizable without
   losing determinism: [eval] receives the complete candidate list for
   the step and may probe the candidates on any number of domains —
   each probe is a full deterministic re-run seeded only by the
   candidate — while the selection rule (first failing index) and the
   probe accounting (every submitted candidate counts) depend only on
   the batch contents, never on completion order.  A run cap bounds
   the worst case; when the remaining budget cannot cover a full
   batch, the batch is truncated to the first [budget] candidates so
   the probe count stays identical at every [-j]. *)

open Rdma_consensus

(* Remove the element at [i]. *)
let drop i l = List.filteri (fun j _ -> j <> i) l

(* First index whose verdict is [true], if any. *)
let first_failing verdicts =
  let rec go i = function
    | [] -> None
    | true :: _ -> Some i
    | false :: rest -> go (i + 1) rest
  in
  go 0 verdicts

(* [minimize ~eval faults] returns the minimized schedule and the number
   of probe runs spent.  [eval candidates] must return one still-fails
   verdict per candidate, in candidate order, each verdict a
   deterministic function of its candidate alone. *)
let minimize ?(max_runs = 200) ~eval (faults : Fault.t list) =
  let runs = ref 0 in
  let rec step faults =
    let len = List.length faults in
    let budget = max_runs - !runs in
    if len = 0 || budget <= 0 then faults
    else begin
      let width = min len budget in
      let candidates = List.init width (fun i -> drop i faults) in
      runs := !runs + width;
      match first_failing (eval candidates) with
      | Some i -> step (drop i faults)
      | None ->
          (* A full batch with no failing candidate certifies
             1-minimality; a truncated batch just means the budget ran
             out.  Either way there is nothing more to drop. *)
          faults
    end
  in
  let minimized = step faults in
  (minimized, !runs)
