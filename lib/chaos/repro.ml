(* Repro artifacts: a violating chaos case, minimized, serialized as
   deterministic JSON so it can be replayed bit-for-bit by
   [rdma_agreement chaos replay].  The artifact carries everything a
   replay needs — scenario name, case seed, minimized fault schedule,
   Byzantine assignment, telemetry triggers — plus, for the human, the
   violations observed and the original (pre-shrink) schedule. *)

open Rdma_obs
open Rdma_consensus

type t = {
  scenario : string;
  seed : int;
  faults : Fault.t list;  (* the minimized schedule *)
  byz : (int * string) list;
  triggers : Nemesis.trigger list;
  violations : string list;  (* rendered verdicts, informational *)
  original_faults : Fault.t list;  (* pre-shrink, informational *)
}

let of_outcome ~scenario ~minimized (outcome : Scenario.outcome) =
  {
    scenario;
    seed = outcome.case.case_seed;
    faults = minimized;
    byz = outcome.case.byz;
    triggers = outcome.case.triggers;
    violations = List.map Oracle.violation_to_string outcome.violations;
    original_faults = outcome.case.faults;
  }

let case t =
  {
    Nemesis.case_seed = t.seed;
    faults = t.faults;
    byz = t.byz;
    triggers = t.triggers;
  }

let trigger_to_json (tr : Nemesis.trigger) =
  Json.Obj
    [
      ("phase", Json.String tr.phase);
      ("occurrence", Json.Int tr.occurrence);
      ("action", Json.String (Nemesis.action_name tr.action));
    ]

let trigger_of_json j =
  let ( let* ) = Result.bind in
  let str k =
    match Json.member k j with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "trigger: missing string field %S" k)
  in
  let* phase = str "phase" in
  let* occurrence =
    match Json.member "occurrence" j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error "trigger: missing int field \"occurrence\""
  in
  let* action_name = str "action" in
  match Nemesis.action_of_name action_name with
  | Some action -> Ok { Nemesis.phase; occurrence; action }
  | None -> Error (Printf.sprintf "trigger: unknown action %S" action_name)

let to_json t =
  Json.Obj
    [
      ("format", Json.String "rdma-agreement/chaos-repro");
      ("version", Json.Int 1);
      ("scenario", Json.String t.scenario);
      ("seed", Json.Int t.seed);
      ("faults", Fault_codec.schedule_to_json t.faults);
      ( "byz",
        Json.List
          (List.map
             (fun (pid, attack) ->
               Json.Obj [ ("pid", Json.Int pid); ("attack", Json.String attack) ])
             t.byz) );
      ("triggers", Json.List (List.map trigger_to_json t.triggers));
      ("violations", Json.List (List.map (fun v -> Json.String v) t.violations));
      ("original_faults", Fault_codec.schedule_to_json t.original_faults);
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let* scenario =
    match Json.member "scenario" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "repro: missing string field \"scenario\""
  in
  let* seed =
    match Json.member "seed" j with
    | Some (Json.Int n) -> Ok n
    | _ -> Error "repro: missing int field \"seed\""
  in
  let* faults =
    match Json.member "faults" j with
    | Some fj -> Fault_codec.schedule_of_json fj
    | None -> Error "repro: missing field \"faults\""
  in
  let* byz =
    match Json.member "byz" j with
    | None -> Ok []
    | Some (Json.List l) ->
        List.fold_left
          (fun acc bj ->
            let* acc = acc in
            match (Json.member "pid" bj, Json.member "attack" bj) with
            | Some (Json.Int pid), Some (Json.String attack) ->
                Ok ((pid, attack) :: acc)
            | _ -> Error "repro: malformed byz entry")
          (Ok []) l
        |> Result.map List.rev
    | Some _ -> Error "repro: field \"byz\" is not a list"
  in
  let* triggers =
    match Json.member "triggers" j with
    | None -> Ok []
    | Some (Json.List l) ->
        List.fold_left
          (fun acc tj ->
            let* acc = acc in
            let* tr = trigger_of_json tj in
            Ok (tr :: acc))
          (Ok []) l
        |> Result.map List.rev
    | Some _ -> Error "repro: field \"triggers\" is not a list"
  in
  let violations =
    match Json.member "violations" j with
    | Some (Json.List l) ->
        List.filter_map (function Json.String s -> Some s | _ -> None) l
    | _ -> []
  in
  let original_faults =
    match Json.member "original_faults" j with
    | Some fj -> (
        match Fault_codec.schedule_of_json fj with Ok l -> l | Error _ -> [])
    | None -> []
  in
  Ok { scenario; seed; faults; byz; triggers; violations; original_faults }

let to_string t = Json.to_string (to_json t)

let of_string s =
  match Json.parse s with Ok j -> of_json j | Error e -> Error e

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
