(** The exploration driver: seeded batches of chaos cases, shrinking
    every violation to a minimal repro artifact.  Deterministic: the
    batch verdict is a pure function of (scenario, options). *)

type options = {
  runs : int;
  seed : int;  (** base seed; case [i] uses [seed + i] *)
  adversary : bool;  (** arm telemetry-driven triggers *)
  byz : bool;  (** draw Byzantine processes from the scenario pool *)
  over_budget : bool;  (** lift the crash budget past the fault model *)
  shrink_runs : int;  (** probe cap for the shrinker *)
}

val default_options : options

type failure = {
  outcome : Scenario.outcome;
  repro : Repro.t;
  shrink_probes : int;
}

type batch = {
  scenario : string;
  options : options;
  passed : int;
  failures : failure list;  (** in seed order *)
}

val total : batch -> int

(** Shrink one violating outcome to a repro artifact; returns the probe
    count too. *)
val shrink :
  ?max_runs:int -> Scenario.t -> Scenario.outcome -> Repro.t * int

val explore : ?options:options -> Scenario.t -> batch

(** Rebuild the artifact's exact case and run it. *)
val replay : Scenario.t -> Repro.t -> Scenario.outcome
