(** The exploration driver: seeded batches of chaos cases, shrinking
    every violation to a minimal repro artifact.  Deterministic: the
    batch verdict, artifacts, and aggregate metrics are a pure function
    of (scenario, options) — [jobs] only changes wall-clock, never
    output.  Case runs are self-contained {!Rdma_sim.Task}s scheduled
    on a {!Rdma_sim.Pool}; shrink steps evaluate their candidate
    batches on the same pool. *)

open Rdma_obs

type options = {
  runs : int;
  seed : int;  (** base seed; case [i] uses [seed + i] *)
  adversary : bool;  (** arm telemetry-driven triggers *)
  byz : bool;  (** draw Byzantine processes from the scenario pool *)
  over_budget : bool;  (** lift the crash budget past the fault model *)
  shrink_runs : int;  (** probe cap for the shrinker *)
  jobs : int;  (** worker domains for case runs and shrink batches *)
  ordering : Rdma_mem.Ordering.mode option;
      (** force every case onto this memory-ordering model; [None] = the
          scenario budget's [orderings] pool decides.  Forcing consumes
          no generator draws, so the rest of each schedule is
          byte-identical to the strict batch of the same seeds *)
}

val default_options : options

type failure = {
  outcome : Scenario.outcome;
  repro : Repro.t;
  shrink_probes : int;
}

type batch = {
  scenario : string;
  options : options;
  passed : int;
  failures : failure list;  (** in seed order *)
  metrics : Obs.t;
      (** the primary runs' histograms/counters, merged in seed order
          (shrink probes excluded) — identical at any [jobs] *)
}

val total : batch -> int

(** Shrink one violating outcome to a repro artifact; returns the probe
    count too.  [jobs] parallelizes each shrink step's candidate batch
    without changing the trajectory or the probe count. *)
val shrink :
  ?max_runs:int -> ?jobs:int -> Scenario.t -> Scenario.outcome -> Repro.t * int

val explore : ?options:options -> Scenario.t -> batch

(** Rebuild the artifact's exact case and run it. *)
val replay : Scenario.t -> Repro.t -> Scenario.outcome
