(** The invariant oracle: agreement, validity, Byzantine containment and
    post-GST termination (via a virtual-time watchdog), checked on every
    chaos run by listening to the telemetry stream. *)

open Rdma_mm
open Rdma_consensus

type violation =
  | Agreement of { decisions : (int * string) list }
      (** conflicting decisions among correct processes *)
  | Validity of { pid : int; value : string }
      (** a correct process decided a value nobody proposed *)
  | Liveness of { undecided : int list; deadline : float }
      (** correct, uncrashed processes undecided at the watchdog *)
  | Aborted of { error : string }
      (** the run itself died: engine deadlock or a fiber exception *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string

type watch

(** Install the decision listener (a tap on the typed [Decide] events)
    and schedule the termination watchdog at virtual time [deadline].
    Call from a run's [prepare] hook. *)
val install : deadline:float -> 'm Cluster.t -> watch

(** Correct, uncrashed pids that had not decided when the watchdog
    fired. *)
val missed : watch -> int list

(** Decisions seen on the telemetry stream, as [(pid, value, at)]. *)
val decided : watch -> (int * string * float) list

(** Verdict over a completed run: agreement over the non-Byzantine
    decisions, validity (crash-only runs), and the watchdog's liveness
    result when a [watch] is given. *)
val check :
  ?watch:watch -> inputs:string array -> byz:int list -> Report.t -> violation list
