(** The invariant oracle: agreement, validity, Byzantine containment and
    post-GST termination (via a virtual-time watchdog), checked on every
    chaos run by listening to the telemetry stream. *)

open Rdma_mm
open Rdma_consensus

type violation =
  | Agreement of { decisions : (int * string) list }
      (** conflicting decisions among correct processes *)
  | Validity of { pid : int; value : string }
      (** a correct process decided a value nobody proposed *)
  | Liveness of { undecided : int list; deadline : float }
      (** correct, uncrashed processes undecided at the watchdog *)
  | Repair of { mid : int; detail : string }
      (** a rejoined memory the protocol failed to re-replicate onto by
          the watchdog deadline *)
  | Aborted of { error : string }
      (** the run itself died: engine deadlock or a fiber exception *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string

type watch

(** Install the decision listener (a tap on the typed [Decide] events)
    and schedule the termination watchdog at virtual time [deadline].
    Call from a run's [prepare] hook.  [repair], when given, is
    evaluated at the watchdog for every memory that rejoined (observed
    via [Mem_restart]) and is still alive: [Some detail] means the
    protocol failed to re-replicate its state onto that memory. *)
val install :
  ?repair:(int -> string option) -> deadline:float -> 'm Cluster.t -> watch

(** Correct, uncrashed pids that had not decided when the watchdog
    fired. *)
val missed : watch -> int list

(** Decisions seen on the telemetry stream, as [(pid, value, at)]. *)
val decided : watch -> (int * string * float) list

(** Memories observed rejoining under a fresh epoch, sorted. *)
val restarted : watch -> int list

(** Verdict over a completed run: agreement over the non-Byzantine
    decisions, validity (crash-only runs; pass [~validity:false] when
    the scenario decides a derived value that is not literally any
    input), the watchdog's liveness result, and the repair predicate's
    verdicts when a [watch] is given. *)
val check :
  ?watch:watch ->
  ?validity:bool ->
  inputs:string array ->
  byz:int list ->
  Report.t ->
  violation list
