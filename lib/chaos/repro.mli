(** Repro artifacts: minimized violating chaos cases as deterministic
    JSON files, replayable bit-for-bit. *)

open Rdma_consensus

type t = {
  scenario : string;
  seed : int;
  faults : Fault.t list;  (** the minimized schedule *)
  byz : (int * string) list;
  triggers : Nemesis.trigger list;
  violations : string list;  (** rendered verdicts, informational *)
  original_faults : Fault.t list;  (** pre-shrink, informational *)
}

val of_outcome :
  scenario:string -> minimized:Fault.t list -> Scenario.outcome -> t

(** The replayable case the artifact denotes. *)
val case : t -> Nemesis.case

val to_string : t -> string

val of_string : string -> (t, string) result

val save : t -> string -> unit

val load : string -> (t, string) result
