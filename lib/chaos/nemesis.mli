(** The nemesis: seeded generation of adversarial fault schedules over
    the full fault vocabulary, constrained by a per-algorithm budget so
    runs stay inside the algorithm's fault model — plus telemetry-driven
    triggers that fire at observed protocol phase boundaries. *)

open Rdma_consensus

type budget = {
  horizon : float;  (** faults are injected in [[0, horizon)] *)
  max_process_crashes : int;
      (** shared fP pool: scheduled crashes + Byzantine replacements +
          trigger-fired crashes *)
  max_memory_crashes : int;  (** fM *)
  max_machine_crashes : int;  (** full-system crashes (Section 7) *)
  max_leader_flaps : int;
  allow_partition : bool;
  allow_latency : bool;
  max_gst : float;  (** 0. = no asynchronous prefix *)
  max_extra : float;
  max_faults : int;
  max_recoveries : int;
      (** how many memory/machine crashes get paired with a later
          [Recover_memory]/[Restart_machine] at crash + 2.0 + U[0,
          horizon/2); recoveries ride along outside the [max_faults]
          cap *)
  orderings : Rdma_mem.Ordering.mode list;
      (** weak memory-ordering models the nemesis may install (one
          [Fault.Set_ordering] per case, drawn alongside "leave it
          strict"); empty = always strict.  Rides outside [max_faults]:
          an ordering model is hardware configuration, not an injected
          event *)
}

(** Lift the crash constraints (all processes and memories become
    crashable): schedules leave the fault model, so violations are
    expected — this is how the shrinker is exercised. *)
val unleash : n:int -> m:int -> budget -> budget

type action =
  | Crash_leader  (** crash whoever Ω trusts the instant the phase opens *)
  | Crash_opener  (** crash the process that opened the phase span *)
  | Flip_leader  (** repoint Ω at another live correct process *)

type trigger = { phase : string; occurrence : int; action : action }

type case = {
  case_seed : int;
  faults : Fault.t list;
  byz : (int * string) list;  (** pid -> attack name from the scenario pool *)
  triggers : trigger list;
}

val action_name : action -> string

val action_of_name : string -> action option

val pp_trigger : Format.formatter -> trigger -> unit

val pp_case : Format.formatter -> case -> unit

(** Deterministically generate one case from [seed].  [attack_pool]
    names the Byzantine behaviours the scenario allows; [phases] the
    span names the telemetry adversary may hook.  [ordering] forces the
    memory-ordering model without consuming any draws — the rest of the
    schedule stays byte-identical to the strict run of the same seed
    (forcing [Strict] emits no fault); when absent, the budget's
    [orderings] pool is drawn from. *)
val generate :
  budget:budget ->
  n:int ->
  m:int ->
  ?attack_pool:string list ->
  ?max_byz:int ->
  ?phases:string list ->
  ?adversary:bool ->
  ?ordering:Rdma_mem.Ordering.mode ->
  seed:int ->
  unit ->
  case
