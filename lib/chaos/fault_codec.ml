(* JSON codec for declarative fault schedules — the repro-artifact
   format.  Encoding is deterministic (fixed field order, the Json
   printer's fixed float images), so a saved schedule replays and
   re-serializes bit-for-bit. *)

open Rdma_consensus
open Rdma_mem
open Rdma_obs

let f x = Json.Float x

let i x = Json.Int x

(* The ordering mode rides in the schedule as a regular fault, so repro
   artifacts, ddmin shrinking and -j N replay all round-trip it without
   any side channel; the parameter is a JSON number (the Json printer's
   fixed float image), never a formatted string. *)
let ordering_to_json = function
  | Ordering.Strict -> [ ("mode", Json.String "strict") ]
  | Ordering.Completion_lag { max_lag } ->
      [ ("mode", Json.String "completion-lag"); ("max_lag", f max_lag) ]
  | Ordering.Reorder_qp { window } ->
      [ ("mode", Json.String "reordered-qp"); ("window", f window) ]

let to_json = function
  | Fault.Crash_process { pid; at } ->
      Json.Obj [ ("kind", Json.String "crash-process"); ("pid", i pid); ("at", f at) ]
  | Fault.Crash_memory { mid; at } ->
      Json.Obj [ ("kind", Json.String "crash-memory"); ("mid", i mid); ("at", f at) ]
  | Fault.Set_leader { pid; at } ->
      Json.Obj [ ("kind", Json.String "set-leader"); ("pid", i pid); ("at", f at) ]
  | Fault.Async_until { gst; extra } ->
      Json.Obj
        [ ("kind", Json.String "async-until"); ("gst", f gst); ("extra", f extra) ]
  | Fault.Random_latency { min; max } ->
      Json.Obj
        [ ("kind", Json.String "random-latency"); ("min", f min); ("max", f max) ]
  | Fault.Crash_machine { pid; mid; at } ->
      Json.Obj
        [
          ("kind", Json.String "crash-machine");
          ("pid", i pid);
          ("mid", i mid);
          ("at", f at);
        ]
  | Fault.Partition { pairs; at } ->
      Json.Obj
        [
          ("kind", Json.String "partition");
          ( "pairs",
            Json.List (List.map (fun (s, d) -> Json.List [ i s; i d ]) pairs) );
          ("at", f at);
        ]
  | Fault.Heal { at } -> Json.Obj [ ("kind", Json.String "heal"); ("at", f at) ]
  | Fault.Recover_memory { mid; at } ->
      Json.Obj [ ("kind", Json.String "recover-memory"); ("mid", i mid); ("at", f at) ]
  | Fault.Restart_machine { pid; mid; at } ->
      Json.Obj
        [
          ("kind", Json.String "restart-machine");
          ("pid", i pid);
          ("mid", i mid);
          ("at", f at);
        ]
  | Fault.Set_ordering { mode } ->
      Json.Obj (("kind", Json.String "set-ordering") :: ordering_to_json mode)

let num_field name json =
  match Json.member name json with
  | Some (Json.Float x) -> Ok x
  | Some (Json.Int x) -> Ok (float_of_int x)
  | _ -> Error (Printf.sprintf "fault: missing numeric field %S" name)

let int_field name json =
  match Json.member name json with
  | Some (Json.Int x) -> Ok x
  | _ -> Error (Printf.sprintf "fault: missing integer field %S" name)

let ( let* ) = Result.bind

let of_json json =
  match Json.member "kind" json with
  | Some (Json.String kind) -> (
      match kind with
      | "crash-process" ->
          let* pid = int_field "pid" json in
          let* at = num_field "at" json in
          Ok (Fault.Crash_process { pid; at })
      | "crash-memory" ->
          let* mid = int_field "mid" json in
          let* at = num_field "at" json in
          Ok (Fault.Crash_memory { mid; at })
      | "set-leader" ->
          let* pid = int_field "pid" json in
          let* at = num_field "at" json in
          Ok (Fault.Set_leader { pid; at })
      | "async-until" ->
          let* gst = num_field "gst" json in
          let* extra = num_field "extra" json in
          Ok (Fault.Async_until { gst; extra })
      | "random-latency" ->
          let* min = num_field "min" json in
          let* max = num_field "max" json in
          Ok (Fault.Random_latency { min; max })
      | "crash-machine" ->
          let* pid = int_field "pid" json in
          let* mid = int_field "mid" json in
          let* at = num_field "at" json in
          Ok (Fault.Crash_machine { pid; mid; at })
      | "partition" ->
          let* at = num_field "at" json in
          let pairs =
            match Json.member "pairs" json with
            | Some (Json.List l) ->
                List.fold_left
                  (fun acc p ->
                    match (acc, p) with
                    | Ok acc, Json.List [ Json.Int s; Json.Int d ] ->
                        Ok ((s, d) :: acc)
                    | Ok _, _ -> Error "fault: malformed partition pair"
                    | (Error _ as e), _ -> e)
                  (Ok []) l
                |> Result.map List.rev
            | _ -> Error "fault: partition without pairs"
          in
          let* pairs = pairs in
          Ok (Fault.Partition { pairs; at })
      | "heal" ->
          let* at = num_field "at" json in
          Ok (Fault.Heal { at })
      | "recover-memory" ->
          let* mid = int_field "mid" json in
          let* at = num_field "at" json in
          Ok (Fault.Recover_memory { mid; at })
      | "restart-machine" ->
          let* pid = int_field "pid" json in
          let* mid = int_field "mid" json in
          let* at = num_field "at" json in
          Ok (Fault.Restart_machine { pid; mid; at })
      | "set-ordering" -> (
          match Json.member "mode" json with
          | Some (Json.String "strict") ->
              Ok (Fault.Set_ordering { mode = Ordering.Strict })
          | Some (Json.String "completion-lag") ->
              let* max_lag = num_field "max_lag" json in
              Ok (Fault.Set_ordering { mode = Ordering.Completion_lag { max_lag } })
          | Some (Json.String "reordered-qp") ->
              let* window = num_field "window" json in
              Ok (Fault.Set_ordering { mode = Ordering.Reorder_qp { window } })
          | Some (Json.String other) ->
              Error (Printf.sprintf "fault: unknown ordering mode %S" other)
          | _ -> Error "fault: set-ordering without mode")
      | other -> Error (Printf.sprintf "fault: unknown kind %S" other))
  | _ -> Error "fault: missing kind"

let schedule_to_json faults = Json.List (List.map to_json faults)

let schedule_of_json = function
  | Json.List l ->
      List.fold_left
        (fun acc j ->
          let* acc = acc in
          let* fault = of_json j in
          Ok (fault :: acc))
        (Ok []) l
      |> Result.map List.rev
  | _ -> Error "schedule: expected a list"
