(** Recovery chaos workloads: scenario executors exercising the
    crash → recover → repair cycle (SWMR read-repair; repeated Protected
    Paxos with checkpoints and state-transfer), plus their repair
    predicates for the oracle. *)

open Rdma_mm
open Rdma_consensus

val swmr_n : int

val swmr_m : int

(** [Some detail] iff memory [mid] still has stale SWMR registers. *)
val swmr_stale : string Cluster.t -> int -> string option

val swmr_recovery :
  seed:int ->
  inputs:string array ->
  faults:Fault.t list ->
  byzantine:(int * (string Cluster.ctx -> unit)) list ->
  prepare:(string Cluster.t -> unit) ->
  Report.t

val pmp_n : int

val pmp_m : int

(** [Some detail] iff memory [mid] still has stale Protected-Paxos
    registers. *)
val pmp_stale : string Cluster.t -> int -> string option

val pmp_multi_recovery :
  seed:int ->
  inputs:string array ->
  faults:Fault.t list ->
  byzantine:(int * (string Cluster.ctx -> unit)) list ->
  prepare:(string Cluster.t -> unit) ->
  Report.t

val smr_n : int

val smr_m : int

(** [Some detail] iff memory [mid] still has stale registers in the
    given engine's region. *)
val smr_stale :
  Rdma_smr.Consensus_engine.engine -> string Cluster.t -> int -> string option

(** Engine-agnostic SMR recovery workload: replicated log under the
    crash/recovery/partition/weak-ordering nemesis, with client-side
    real-time read checking (a stale read becomes a decision the
    agreement oracle flags).  [lease_violation] arms the deliberately
    broken velos stale-lease fixture. *)
val smr_deadline : float

val smr_recovery :
  Rdma_smr.Consensus_engine.engine ->
  lease_violation:bool ->
  seed:int ->
  inputs:string array ->
  faults:Fault.t list ->
  byzantine:(int * (string Cluster.ctx -> unit)) list ->
  prepare:(string Cluster.t -> unit) ->
  Report.t
