(* The chaos scenario registry: one entry per algorithm, carrying the
   algorithm's fault model as a nemesis budget, the phase-span names its
   telemetry adversary may hook, the Byzantine attack pool it composes
   with, and the oracle deadline for its termination watchdog.

   [run] executes one generated case: it installs the oracle and the
   trigger executor through the algorithm's [prepare] hook, runs the
   instance, and returns the report plus the oracle's verdict.  All
   randomness comes from the case seed, so outcomes replay bit-for-bit. *)

open Rdma_sim
open Rdma_mm
open Rdma_obs
open Rdma_consensus

type exec =
  seed:int ->
  inputs:string array ->
  faults:Fault.t list ->
  byzantine:(int * (string Cluster.ctx -> unit)) list ->
  prepare:(string Cluster.t -> unit) ->
  Report.t

type t = {
  name : string;
  descr : string;
  n : int;
  m : int;
  budget : Nemesis.budget;
  phases : string list;
  attack_pool : (string * (string Cluster.ctx -> unit)) list;
  max_byz : int;
  deadline : float;
  repair : (string Cluster.t -> int -> string option) option;
  validity : bool;
  exec : exec;
}

(* Every registered scenario held its full chaos grid (>= 100 schedules
   per mode, see EXPERIMENTS.md) under both stock weak ordering models,
   so the nemesis draws them routinely: roughly a third of generated
   schedules run strict, a third completion-lag, a third reordered-qp. *)
let base_orderings =
  [ Rdma_mem.Ordering.completion_lag; Rdma_mem.Ordering.reorder_qp ]

let base_budget =
  {
    Nemesis.horizon = 25.0;
    max_process_crashes = 1;
    max_memory_crashes = 0;
    max_machine_crashes = 0;
    max_leader_flaps = 2;
    allow_partition = true;
    allow_latency = true;
    max_gst = 15.0;
    max_extra = 8.0;
    max_faults = 5;
    max_recoveries = 0;
    orderings = base_orderings;
  }

(* Byzantine behaviours by name (the repro artifact stores names). *)
let byz_silent = ("silent", fun (_ : string Cluster.ctx) -> ())

let byz_cq_equivocator =
  ("cq-equivocating-leader", Attacks.cq_equivocating_leader ~v1:"black" ~v2:"white")

let byz_cq_silent = ("cq-silent-leader", Attacks.cq_silent_leader)

let byz_priority_liar = ("pp-priority-liar", Attacks.pp_priority_liar ~value:"liar")

let byz_rb_spurious = ("rb-spurious-decide", Attacks.rb_spurious_decide ~value:"evil")

let byz_rb_double = ("rb-double-promise", Attacks.rb_double_promise)

let byz_rb_unjustified =
  ("rb-unjustified-accept", Attacks.rb_unjustified_accept ~ballot:7 ~value:"evil")

let all =
  [
    {
      name = "paxos";
      descr = "classic Paxos, minority process crashes";
      n = 3;
      m = 0;
      budget = base_budget;
      phases = [ "paxos.phase1"; "paxos.phase2" ];
      attack_pool = [];
      max_byz = 0;
      deadline = 1000.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          assert (byzantine = []);
          Paxos.run ~seed ~n:3 ~inputs ~faults ~prepare ());
    };
    {
      name = "fast-paxos";
      descr = "Fast Paxos, minority process crashes";
      n = 3;
      m = 0;
      budget = base_budget;
      phases = [];
      attack_pool = [];
      max_byz = 0;
      deadline = 1000.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          assert (byzantine = []);
          Fast_paxos.run ~seed ~n:3 ~inputs ~faults ~prepare ());
    };
    {
      name = "disk-paxos";
      descr = "Disk Paxos, n-1 process crashes, minority memory crashes";
      n = 3;
      m = 3;
      budget =
        {
          base_budget with
          max_process_crashes = 2;
          max_memory_crashes = 1;
          max_machine_crashes = 1;
        };
      phases = [];
      attack_pool = [];
      max_byz = 0;
      deadline = 1000.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          assert (byzantine = []);
          Disk_paxos.run ~seed ~n:3 ~m:3 ~inputs ~faults ~prepare ());
    };
    {
      name = "protected-paxos";
      descr = "Protected Memory Paxos, fP = n-1, fM = minority";
      n = 3;
      m = 3;
      budget =
        {
          base_budget with
          max_process_crashes = 2;
          max_memory_crashes = 1;
          max_machine_crashes = 1;
        };
      phases = [ "pmp.phase1"; "pmp.phase2" ];
      attack_pool = [];
      max_byz = 0;
      deadline = 1000.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          assert (byzantine = []);
          Protected_paxos.run ~seed ~n:3 ~m:3 ~inputs ~faults ~prepare ());
    };
    {
      name = "aligned-paxos";
      descr = "Aligned Paxos, any minority of the n+m agents";
      n = 3;
      m = 2;
      budget = { base_budget with max_process_crashes = 1; max_memory_crashes = 1 };
      phases = [];
      attack_pool = [];
      max_byz = 0;
      deadline = 1200.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          assert (byzantine = []);
          Aligned_paxos.run ~seed ~n:3 ~m:2 ~inputs ~faults ~prepare ());
    };
    {
      name = "robust-backup";
      descr = "Robust Backup, Byzantine fP = minority (crash or attack)";
      n = 3;
      m = 3;
      budget = { base_budget with max_memory_crashes = 1 };
      phases = [ "paxos.phase1"; "paxos.phase2" ];
      attack_pool =
        [ byz_silent; byz_rb_spurious; byz_rb_double; byz_rb_unjustified ];
      max_byz = 1;
      deadline = 2000.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          fst
            (Robust_backup.run ~seed ~n:3 ~m:3 ~inputs ~faults ~byzantine ~prepare ()));
    };
    {
      name = "fast-robust";
      descr = "Fast & Robust, Byzantine fP = minority (crash or attack)";
      n = 3;
      m = 3;
      budget = { base_budget with max_memory_crashes = 1 };
      phases = [ "fr.cheap-quorum"; "fr.preferential" ];
      attack_pool =
        [ byz_silent; byz_cq_equivocator; byz_cq_silent; byz_priority_liar ];
      max_byz = 1;
      deadline = 2000.0;
      repair = None;
      validity = true;
      exec =
        (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
          let report, _, _ =
            Fast_robust.run ~seed ~n:3 ~m:3 ~inputs ~faults ~byzantine ~prepare ()
          in
          report);
    };
    {
      name = "swmr-recovery";
      descr = "SWMR replication under memory crash + rejoin; read-repair";
      n = Workloads.swmr_n;
      m = Workloads.swmr_m;
      budget =
        {
          base_budget with
          (* the sole writer must survive to drive the repair sweeps *)
          max_process_crashes = 0;
          max_memory_crashes = 1;
          max_leader_flaps = 0;
          allow_partition = false;
          max_gst = 0.0;
          max_faults = 3;
          max_recoveries = 1;
        };
      phases = [];
      attack_pool = [];
      max_byz = 0;
      deadline = 200.0;
      repair = Some Workloads.swmr_stale;
      validity = true;
      exec = Workloads.swmr_recovery;
    };
    {
      name = "pmp-multi-recovery";
      descr = "repeated Protected Paxos: checkpoints, memory rejoin, repair";
      n = Workloads.pmp_n;
      m = Workloads.pmp_m;
      budget =
        {
          base_budget with
          max_process_crashes = 1;
          (* one memory outage at a time: with a second concurrent
             outage no write quorum exists and in-flight waits cannot be
             re-driven, so the run would (correctly) miss its deadline *)
          max_memory_crashes = 1;
          max_machine_crashes = 1;
          max_recoveries = 2;
        };
      phases = [];
      attack_pool = [];
      max_byz = 0;
      deadline = 1000.0;
      repair = Some Workloads.pmp_stale;
      (* decisions are the joined instance sequence, not a literal input *)
      validity = false;
      exec = Workloads.pmp_multi_recovery;
    };
  ]
  (* One recovery scenario per registered consensus engine
     (smr-pmp-recovery, smr-velos-recovery, ...): the SAME workload,
     budget and oracle for every engine — the head-to-head the refactor
     exists for.  [n] counts only the replicas: the workload's client
     drivers live above it, out of the fault generator's reach. *)
  @ List.map
      (fun ((module E : Rdma_smr.Consensus_engine.S) as engine) ->
        {
          name = Printf.sprintf "smr-%s-recovery" E.name;
          descr =
            Printf.sprintf
              "engine-agnostic SMR on %s: crashes, rejoins, partitions, \
               real-time reads"
              E.name;
          n = Workloads.smr_n;
          m = Workloads.smr_m;
          budget =
            {
              base_budget with
              max_process_crashes = 1;
              (* one memory outage at a time, as in pmp-multi-recovery:
                 a second concurrent outage removes the write quorum *)
              max_memory_crashes = 1;
              max_machine_crashes = 1;
              max_recoveries = 2;
            };
          phases = [];
          attack_pool = [];
          max_byz = 0;
          deadline = Workloads.smr_deadline;
          repair = Some (Workloads.smr_stale engine);
          (* decisions are joined logs, not a literal input *)
          validity = false;
          exec = Workloads.smr_recovery engine ~lease_violation:false;
        })
      Rdma_smr.Engines.all
  @ [
      {
        (* The deliberately broken fixture: a velos leader that keeps
           serving local reads after deposition.  A forced leader change
           mid-workload guarantees the stale window on every seed; the
           clients' real-time watermark check must turn it into an
           Agreement violation — this scenario is run with
           --expect-violations in CI. *)
        name = "velos-stale-lease";
        descr =
          "BROKEN BY DESIGN: velos leader ignores lease expiry; the \
           oracle must catch the stale reads";
        n = Workloads.smr_n;
        m = Workloads.smr_m;
        budget =
          {
            base_budget with
            (* no random faults: the violation comes from the fixture's
               own forced flap, so every seed is a clean repro *)
            max_process_crashes = 0;
            max_memory_crashes = 0;
            max_machine_crashes = 0;
            max_leader_flaps = 0;
            allow_partition = false;
            allow_latency = false;
            max_gst = 0.0;
            max_faults = 1;
            max_recoveries = 0;
          };
        phases = [];
        attack_pool = [];
        max_byz = 0;
        deadline = Workloads.smr_deadline;
        repair = None;
        validity = false;
        exec =
          (fun ~seed ~inputs ~faults ~byzantine ~prepare ->
            Workloads.smr_recovery
              (module Rdma_smr.Velos_engine)
              ~lease_violation:true ~seed ~inputs
              ~faults:(Fault.Set_leader { pid = 1; at = 30.0 } :: faults)
              ~byzantine ~prepare);
      };
    ]

let find name = List.find_opt (fun s -> s.name = name) all

let names () = List.map (fun s -> s.name) all

let attack t name = List.assoc_opt name t.attack_pool

let inputs t = Array.init t.n (fun i -> Printf.sprintf "v%d" i)

type outcome = {
  case : Nemesis.case;
  report : Report.t option;  (* None when the run aborted *)
  violations : Oracle.violation list;
  fired : (float * string) list;  (* adversary actions, with fire times *)
}

let passed outcome = outcome.violations = []

(* Arm one telemetry trigger: watch the span stream for the configured
   phase opening and fire the action at that exact virtual instant (as a
   fresh engine event, so the opener's fiber is not re-entered). *)
let arm_trigger cluster ~fired (tr : Nemesis.trigger) =
  let engine = Cluster.engine cluster in
  let omega = Cluster.omega cluster in
  let seen = ref 0 in
  let done_ = ref false in
  let record msg = fired := (Engine.now engine, msg) :: !fired in
  let crash pid =
    if not (Cluster.is_crashed cluster pid) then Cluster.crash_process cluster pid
  in
  Obs.subscribe_spans (Cluster.obs cluster) (fun sp ->
      if
        (not !done_)
        && Obs.span_cat sp = "phase"
        && Obs.span_name sp = tr.phase
      then begin
        incr seen;
        if !seen = tr.occurrence then begin
          done_ := true;
          let opener = Obs.span_actor sp in
          Engine.schedule engine 0.0 (fun () ->
              match tr.action with
              | Nemesis.Crash_leader ->
                  let pid = Omega.leader omega in
                  record
                    (Printf.sprintf "%s#%d: crash leader p%d" tr.phase tr.occurrence
                       pid);
                  crash pid
              | Nemesis.Crash_opener -> (
                  match
                    if String.length opener > 1 && opener.[0] = 'p' then
                      int_of_string_opt
                        (String.sub opener 1 (String.length opener - 1))
                    else None
                  with
                  | Some pid when pid >= 0 && pid < Cluster.n cluster ->
                      record
                        (Printf.sprintf "%s#%d: crash opener p%d" tr.phase
                           tr.occurrence pid);
                      crash pid
                  | _ -> ())
              | Nemesis.Flip_leader -> (
                  let current = Omega.leader omega in
                  match
                    List.filter (( <> ) current) (Cluster.correct_pids cluster)
                  with
                  | pid :: _ ->
                      record
                        (Printf.sprintf "%s#%d: leader := p%d" tr.phase tr.occurrence
                           pid);
                      Omega.set_leader omega pid
                  | [] -> ()))
        end
      end)

let run ?prepare:(extra_prepare = fun (_ : string Cluster.t) -> ()) t
    (case : Nemesis.case) =
  let inputs = inputs t in
  let byzantine =
    List.map
      (fun (pid, name) ->
        match attack t name with
        | Some behaviour -> (pid, behaviour)
        | None ->
            invalid_arg
              (Printf.sprintf "Scenario.run: %s has no attack %S" t.name name))
      case.byz
  in
  let byz_pids = List.map fst case.byz in
  let watch = ref None in
  let fired = ref [] in
  let prepare cluster =
    watch :=
      Some
        (Oracle.install
           ?repair:(Option.map (fun pred -> pred cluster) t.repair)
           ~deadline:t.deadline cluster);
    List.iter (arm_trigger cluster ~fired) case.triggers;
    extra_prepare cluster
  in
  match
    t.exec ~seed:case.case_seed ~inputs ~faults:case.faults ~byzantine ~prepare
  with
  | report ->
      let violations =
        Oracle.check ?watch:!watch ~validity:t.validity ~inputs ~byz:byz_pids
          report
      in
      { case; report = Some report; violations; fired = List.rev !fired }
  | exception e ->
      {
        case;
        report = None;
        violations = [ Oracle.Aborted { error = Printexc.to_string e } ];
        fired = List.rev !fired;
      }

(* Generate the case for [seed] under this scenario's constraints. *)
let generate t ?(adversary = false) ?(byz = false) ?(over_budget = false)
    ?ordering ~seed () =
  let budget =
    if over_budget then Nemesis.unleash ~n:t.n ~m:t.m t.budget else t.budget
  in
  Nemesis.generate ~budget ~n:t.n ~m:t.m
    ~attack_pool:(if byz then List.map fst t.attack_pool else [])
    ~max_byz:(if byz then t.max_byz else 0)
    ~phases:t.phases ~adversary ?ordering ~seed ()
