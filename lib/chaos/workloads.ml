(* Recovery chaos workloads: scenario executors that exercise the
   crash → recover → repair cycle rather than a single consensus
   instance.

   - [swmr_recovery]: a writer replicates one value through the
     Section 4.1 SWMR construction and then keeps sweeping
     [Swmr.read_repair] while the nemesis crashes and recovers replicas;
     a reader decides the first value a quorum read returns.  The repair
     predicate then demands that every rejoined memory holds a fresh
     copy ([Memory.stale_registers] empty).

   - [pmp_multi_recovery]: repeated Protected Memory Paxos with
     checkpointing and a repair custodian; the per-process decision is
     the joined instance sequence, so the oracle checks agreement over
     the whole log (validity is vacuous — the joined value is not
     literally any input). *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_obs
open Rdma_consensus
open Rdma_reg

(* ---------------- SWMR replication under memory rejoin ------------- *)

let swmr_region = "swmr"

let swmr_reg = "x"

let swmr_n = 2

let swmr_m = 3

(* Writer sweeps end well past the latest possible recovery under the
   scenario budget (crash < horizon, recovery < 1.5*horizon + 2). *)
let swmr_serve_until = 60.0

let swmr_stale cluster mid =
  match
    Memory.stale_registers (Cluster.memory cluster mid) ~region:swmr_region
  with
  | [] -> None
  | regs -> Some (Printf.sprintf "stale: %s" (String.concat "," regs))

let swmr_recovery ~seed ~inputs ~faults ~byzantine ~prepare =
  assert (byzantine = []);
  let n = swmr_n and m = swmr_m in
  let cluster : string Cluster.t = Cluster.create ~seed ~n ~m () in
  Cluster.add_region_everywhere cluster ~name:swmr_region
    ~perm:(Permission.swmr ~writer:0 ~n)
    ~registers:[ swmr_reg ];
  let decisions : Report.decision option array = Array.make n None in
  let decide (ctx : string Cluster.ctx) value =
    let pid = ctx.Cluster.pid in
    decisions.(pid) <-
      Some { Report.value; at = Engine.now ctx.Cluster.ctx_engine };
    Obs.event ctx.Cluster.ctx_obs
      ~actor:(Printf.sprintf "p%d" pid)
      (Event.Decide { pid; value })
  in
  (* p0, the sole writer: replicate the value, then keep sweeping
     [read_repair] so a replica that rejoined empty gets the value
     written back (and stamped fresh) once it is responding again. *)
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      let h = Swmr.attach ~client:ctx.Cluster.client ~region:swmr_region in
      let v = inputs.(0) in
      ignore (Swmr.write h ~reg:swmr_reg v);
      decide ctx v;
      while Engine.now ctx.Cluster.ctx_engine < swmr_serve_until do
        ignore (Swmr.read_repair h ~reg:swmr_reg);
        Engine.sleep 5.0
      done);
  (* p1, a reader: decides the first value a quorum read returns.  The
     loop is bounded so an (out-of-budget) unreadable run still
     quiesces and lets the watchdog report the liveness miss. *)
  Cluster.spawn cluster ~pid:1 (fun ctx ->
      let h = Swmr.attach ~client:ctx.Cluster.client ~region:swmr_region in
      let rec loop () =
        match Swmr.read h ~reg:swmr_reg with
        | Some v -> decide ctx v
        | None ->
            if Engine.now ctx.Cluster.ctx_engine < swmr_serve_until then begin
              Engine.sleep 2.0;
              loop ()
            end
      in
      loop ());
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Report.of_stats ~algorithm:"swmr-recovery" ~n ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster))
    ()

(* --------- repeated Protected Paxos with checkpoints + repair ------ *)

let pmp_n = 3

let pmp_m = 3

let pmp_cfg =
  {
    Protected_paxos_multi.default_config with
    slots = 3;
    checkpoint_every = 2;
    serve_until = 60.0;
  }

let pmp_stale cluster mid =
  match
    Memory.stale_registers (Cluster.memory cluster mid)
      ~region:Protected_paxos_multi.region
  with
  | [] -> None
  | regs -> Some (Printf.sprintf "stale: %s" (String.concat "," regs))

let pmp_multi_recovery ~seed ~inputs:_ ~faults ~byzantine ~prepare =
  assert (byzantine = []);
  let reports =
    Protected_paxos_multi.run ~cfg:pmp_cfg ~seed ~faults ~prepare ~n:pmp_n
      ~m:pmp_m
      ~input_for:(fun ~pid ~instance -> Printf.sprintf "v%d.%d" pid instance)
      ()
  in
  (* Collapse the per-instance reports into one: a process "decides" the
     joined sequence iff it decided every instance, mirroring the Decide
     event the program emits — so the oracle checks agreement (and
     liveness) over the whole log. *)
  let decisions =
    Array.init pmp_n (fun pid ->
        let per =
          Array.map (fun (r : Report.t) -> r.Report.decisions.(pid)) reports
        in
        if Array.for_all Option.is_some per then
          let ds = Array.to_list per |> List.map Option.get in
          Some
            {
              Report.value = Codec.join (List.map (fun d -> d.Report.value) ds);
              at = List.fold_left (fun acc d -> Float.max acc d.Report.at) 0.0 ds;
            }
        else None)
  in
  {
    (reports.(Array.length reports - 1)) with
    Report.algorithm = "pmp-multi-recovery";
    decisions;
  }
