(* Recovery chaos workloads: scenario executors that exercise the
   crash → recover → repair cycle rather than a single consensus
   instance.

   - [swmr_recovery]: a writer replicates one value through the
     Section 4.1 SWMR construction and then keeps sweeping
     [Swmr.read_repair] while the nemesis crashes and recovers replicas;
     a reader decides the first value a quorum read returns.  The repair
     predicate then demands that every rejoined memory holds a fresh
     copy ([Memory.stale_registers] empty).

   - [pmp_multi_recovery]: repeated Protected Memory Paxos with
     checkpointing and a repair custodian; the per-process decision is
     the joined instance sequence, so the oracle checks agreement over
     the whole log (validity is vacuous — the joined value is not
     literally any input). *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_obs
open Rdma_consensus
open Rdma_reg

(* ---------------- SWMR replication under memory rejoin ------------- *)

let swmr_region = "swmr"

let swmr_reg = "x"

let swmr_n = 2

let swmr_m = 3

(* Writer sweeps end well past the latest possible recovery under the
   scenario budget (crash < horizon, recovery < 1.5*horizon + 2). *)
let swmr_serve_until = 60.0

let swmr_stale cluster mid =
  match
    Memory.stale_registers (Cluster.memory cluster mid) ~region:swmr_region
  with
  | [] -> None
  | regs -> Some (Printf.sprintf "stale: %s" (String.concat "," regs))

let swmr_recovery ~seed ~inputs ~faults ~byzantine ~prepare =
  assert (byzantine = []);
  let n = swmr_n and m = swmr_m in
  let cluster : string Cluster.t = Cluster.create ~seed ~n ~m () in
  Cluster.add_region_everywhere cluster ~name:swmr_region
    ~perm:(Permission.swmr ~writer:0 ~n)
    ~registers:[ swmr_reg ];
  let decisions : Report.decision option array = Array.make n None in
  let decide (ctx : string Cluster.ctx) value =
    let pid = ctx.Cluster.pid in
    decisions.(pid) <-
      Some { Report.value; at = Engine.now ctx.Cluster.ctx_engine };
    Obs.event ctx.Cluster.ctx_obs
      ~actor:(Printf.sprintf "p%d" pid)
      (Event.Decide { pid; value })
  in
  (* p0, the sole writer: replicate the value, then keep sweeping
     [read_repair] so a replica that rejoined empty gets the value
     written back (and stamped fresh) once it is responding again. *)
  Cluster.spawn cluster ~pid:0 (fun ctx ->
      let h = Swmr.attach ~client:ctx.Cluster.client ~region:swmr_region in
      let v = inputs.(0) in
      ignore (Swmr.write h ~reg:swmr_reg v);
      decide ctx v;
      while Engine.now ctx.Cluster.ctx_engine < swmr_serve_until do
        ignore (Swmr.read_repair h ~reg:swmr_reg);
        Engine.sleep 5.0
      done);
  (* p1, a reader: decides the first value a quorum read returns.  The
     loop is bounded so an (out-of-budget) unreadable run still
     quiesces and lets the watchdog report the liveness miss. *)
  Cluster.spawn cluster ~pid:1 (fun ctx ->
      let h = Swmr.attach ~client:ctx.Cluster.client ~region:swmr_region in
      let rec loop () =
        match Swmr.read h ~reg:swmr_reg with
        | Some v -> decide ctx v
        | None ->
            if Engine.now ctx.Cluster.ctx_engine < swmr_serve_until then begin
              Engine.sleep 2.0;
              loop ()
            end
      in
      loop ());
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Report.of_stats ~algorithm:"swmr-recovery" ~n ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster))
    ()

(* --------- repeated Protected Paxos with checkpoints + repair ------ *)

let pmp_n = 3

let pmp_m = 3

let pmp_cfg =
  {
    Protected_paxos_multi.default_config with
    slots = 3;
    checkpoint_every = 2;
    serve_until = 60.0;
  }

let pmp_stale cluster mid =
  match
    Memory.stale_registers (Cluster.memory cluster mid)
      ~region:Protected_paxos_multi.region
  with
  | [] -> None
  | regs -> Some (Printf.sprintf "stale: %s" (String.concat "," regs))

let pmp_multi_recovery ~seed ~inputs:_ ~faults ~byzantine ~prepare =
  assert (byzantine = []);
  let reports =
    Protected_paxos_multi.run ~cfg:pmp_cfg ~seed ~faults ~prepare ~n:pmp_n
      ~m:pmp_m
      ~input_for:(fun ~pid ~instance -> Printf.sprintf "v%d.%d" pid instance)
      ()
  in
  (* Collapse the per-instance reports into one: a process "decides" the
     joined sequence iff it decided every instance, mirroring the Decide
     event the program emits — so the oracle checks agreement (and
     liveness) over the whole log. *)
  let decisions =
    Array.init pmp_n (fun pid ->
        let per =
          Array.map (fun (r : Report.t) -> r.Report.decisions.(pid)) reports
        in
        if Array.for_all Option.is_some per then
          let ds = Array.to_list per |> List.map Option.get in
          Some
            {
              Report.value = Codec.join (List.map (fun d -> d.Report.value) ds);
              at = List.fold_left (fun acc d -> Float.max acc d.Report.at) 0.0 ds;
            }
        else None)
  in
  {
    (reports.(Array.length reports - 1)) with
    Report.algorithm = "pmp-multi-recovery";
    decisions;
  }

(* ---------- engine-agnostic SMR under the full recovery nemesis ----- *)

(* One workload, every consensus engine: 3 replicas serve a replicated
   log through the shared {!Rdma_smr.Consensus_engine} interface while 2
   client processes (spawned beyond the nemesis-facing [smr_n], so the
   fault generator never targets them) submit commands and issue
   linearizable reads.  Clients enforce the real-time read invariant
   with a shared watermark: a read must never return less than the
   highest index any client saw acknowledged (or read) before the read
   was SENT.  A violation becomes that client's decision, which the
   agreement oracle then flags against the replicas' joined logs — this
   is exactly how the deliberately stale-lease velos fixture is caught.

   Replicas decide the joined applied log at a fixed virtual time well
   after the workload quiesces (both engines' catch-up paths — pmp
   snapshot anti-entropy, velos memory polling — have healed by then);
   clients that never witnessed a violation are retired (crashed) before
   the decision point so the liveness watchdog exempts them. *)

let smr_n = 3

let smr_m = 3

let smr_clients = 2

let smr_t_stop = 120.0 (* clients stop issuing new operations *)

let smr_t_retire = 140.0 (* violation-free clients are retired *)

let smr_t_decide = 260.0 (* replicas decide their joined logs *)

let smr_deadline = 400.0 (* oracle watchdog *)

let smr_cfg ~lease_violation =
  {
    Rdma_smr.Consensus_engine.default_config with
    replicas = smr_n;
    max_entries = 48;
    serve_until = 300.0;
    checkpoint_every = 5;
    (* pmp: snapshot anti-entropy cadence; velos: the poll interval *)
    anti_entropy_every = 10.0;
    (* velos serves leased reads with 0 memory ops; pmp ignores it *)
    lease_duration = 20.0;
    lease_violation;
  }

let smr_stale (module E : Rdma_smr.Consensus_engine.S) cluster mid =
  match Memory.stale_registers (Cluster.memory cluster mid) ~region:E.region with
  | [] -> None
  | regs -> Some (Printf.sprintf "stale: %s" (String.concat "," regs))

let smr_recovery (module E : Rdma_smr.Consensus_engine.S) ~lease_violation
    ~seed ~inputs:_ ~faults ~byzantine ~prepare =
  assert (byzantine = []);
  let cfg = smr_cfg ~lease_violation in
  let n = smr_n + smr_clients in
  let m = smr_m in
  let cluster : string Cluster.t =
    Cluster.create ~seed ~legal_change:(E.legal_change cfg) ~n ~m ()
  in
  E.setup_regions cluster cfg;
  let engine = Cluster.engine cluster in
  let decisions : Report.decision option array = Array.make n None in
  let decide ~pid value =
    decisions.(pid) <- Some { Report.value; at = Engine.now engine };
    Obs.event (Cluster.obs cluster)
      ~actor:(Printf.sprintf "p%d" pid)
      (Event.Decide { pid; value })
  in
  (* Replicas + their decision watchdogs.  The replica handle survives
     process restarts (the engine program re-catches-up), so reading the
     applied log at decide time is always current. *)
  let replicas =
    Array.init smr_n (fun pid -> E.spawn_replica cluster ~cfg ~pid ())
  in
  Array.iteri
    (fun pid r ->
      Engine.schedule engine smr_t_decide (fun () ->
          if not (Cluster.is_crashed cluster pid) then
            decide ~pid
              (String.concat ";" (List.map snd (E.applied_entries r)))))
    replicas;
  (* Clients: interleave submits and linearizable reads, checking the
     shared real-time watermark.  [ops] seeds differ per client; read
     seqs live in a disjoint space from submit seqs. *)
  let watermark = ref 0 in
  for c = 0 to smr_clients - 1 do
    let pid = smr_n + c in
    Cluster.spawn cluster ~pid (fun ctx ->
        let stale = ref None in
        let seq = ref 0 in
        while
          !stale = None
          && Engine.now ctx.Cluster.ctx_engine < smr_t_stop
        do
          let cmd = Printf.sprintf "c%d.%d" pid !seq in
          (match E.submit ctx ~cfg ~seq:!seq ~cmd ~timeout:30.0 with
          | Some index -> watermark := max !watermark index
          | None -> ());
          let w0 = !watermark in
          (match E.linearizable_read ctx ~cfg ~seq:(1000 + !seq) ~timeout:30.0 with
          | Some up_to ->
              if up_to < w0 then
                stale :=
                  Some
                    (Printf.sprintf "stale-read: saw %d after %d was acked" up_to
                       w0)
              else watermark := max !watermark up_to
          | None -> ());
          incr seq
        done;
        match !stale with Some v -> decide ~pid:ctx.Cluster.pid v | None -> ());
    (* Retire the client before the decision point: crashed pids are
       exempt from the liveness watchdog, and a retired client that DID
       decide (a violation) still counts for agreement. *)
    Engine.schedule engine smr_t_retire (fun () ->
        if not (Cluster.is_crashed cluster pid) then
          Cluster.crash_process cluster pid)
  done;
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Report.of_stats
    ~algorithm:(Printf.sprintf "smr-%s-recovery" E.name)
    ~n ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps engine)
    ()
