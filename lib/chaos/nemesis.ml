(* The nemesis: a seeded generator of adversarial fault schedules.

   Two modes of attack:

   - Blind schedules: random draws over the full fault vocabulary
     (process/memory/machine crashes, leader flapping, partitions +
     heals, latency storms, a delayed GST), constrained by a per-
     algorithm [budget] so generated runs stay inside the algorithm's
     fault model — e.g. at most a minority of processes for Paxos, at
     most fP processes and fM memories for Protected Paxos.  Within the
     budget, safety AND post-GST liveness must hold, so the oracle
     checks both.

   - Telemetry-driven triggers: instead of firing at a blind time, a
     trigger subscribes to the run's span stream and fires its action
     the instant an observed protocol phase opens (e.g. crash the leader
     when [pmp.phase2] starts) — the adversarial interleavings at phase
     boundaries where consensus bugs hide.

   Everything is drawn from a [seed]-keyed PRNG: the same seed always
   yields the same schedule, which is what makes violations replayable
   and shrinkable. *)

open Rdma_consensus

type budget = {
  horizon : float;  (* faults are injected in [0, horizon) *)
  max_process_crashes : int;  (* shared pool: crashes + Byzantine + triggers *)
  max_memory_crashes : int;
  max_machine_crashes : int;
  max_leader_flaps : int;
  allow_partition : bool;
  allow_latency : bool;
  max_gst : float;  (* 0. = no asynchronous prefix *)
  max_extra : float;  (* pre-GST adversarial delay bound *)
  max_faults : int;  (* schedule length cap *)
  max_recoveries : int;
      (* how many memory/machine crashes get paired with a later
         Recover_memory/Restart_machine; recoveries ride along outside
         the max_faults cap *)
  orderings : Rdma_mem.Ordering.mode list;
      (* weak memory-ordering models the nemesis may install (one
         Set_ordering per case, drawn alongside "leave it strict");
         empty = always strict.  The pick rides outside max_faults: it
         is hardware configuration, not an injected event *)
}

(* Lift the crash constraints of a budget: every process and memory
   becomes fair game.  Schedules drawn from an unleashed budget step
   outside the algorithm's fault model, so the oracle is expected to
   find violations — this is how the shrinker is exercised. *)
let unleash ~n ~m budget =
  {
    budget with
    max_process_crashes = n;
    max_memory_crashes = m;
    max_faults = budget.max_faults + 2;
  }

type action = Crash_leader | Crash_opener | Flip_leader

type trigger = { phase : string; occurrence : int; action : action }

type case = {
  case_seed : int;
  faults : Fault.t list;
  byz : (int * string) list;  (* pid -> attack name from the scenario pool *)
  triggers : trigger list;
}

let action_name = function
  | Crash_leader -> "crash-leader"
  | Crash_opener -> "crash-opener"
  | Flip_leader -> "flip-leader"

let action_of_name = function
  | "crash-leader" -> Some Crash_leader
  | "crash-opener" -> Some Crash_opener
  | "flip-leader" -> Some Flip_leader
  | _ -> None

let pp_trigger ppf tr =
  Fmt.pf ppf "%s#%d->%s" tr.phase tr.occurrence (action_name tr.action)

(* Draw [k] distinct elements from [pool] (in draw order). *)
let sample rng k pool =
  let pool = ref pool in
  let out = ref [] in
  for _ = 1 to k do
    match !pool with
    | [] -> ()
    | l ->
        let idx = Random.State.int rng (List.length l) in
        let picked = List.nth l idx in
        out := picked :: !out;
        pool := List.filter (fun x -> x <> picked) l
  done;
  List.rev !out

let at rng horizon = Random.State.float rng horizon

(* Generate one case.  The process-fault pool [max_process_crashes] is
   shared between Byzantine replacements, trigger-fired crashes, and
   scheduled crashes, mirroring the fault models where crashed and
   Byzantine processes count against the same fP. *)
let generate ~budget ~n ~m ?(attack_pool = []) ?(max_byz = 0)
    ?(phases = []) ?(adversary = false) ?ordering ~seed () =
  let rng = Random.State.make [| 0x6e656d65; seed |] in
  (* Ordering model first.  A forced [?ordering] (scenario config / CLI
     --ordering) consumes no draws, so the rest of the schedule is
     byte-identical to the strict run of the same seed — weak-mode grids
     differ from their strict baseline only in the model.  Otherwise the
     budget's pool is drawn from, with "leave it strict" as one more
     face of the die; an empty pool consumes no draws either, keeping
     legacy schedules stable. *)
  let ordering_faults =
    match ordering with
    | Some mode ->
        if Rdma_mem.Ordering.equal mode Rdma_mem.Ordering.Strict then []
        else [ Fault.Set_ordering { mode } ]
    | None -> (
        match budget.orderings with
        | [] -> []
        | pool -> (
            match Random.State.int rng (List.length pool + 1) with
            | 0 -> []
            | idx -> [ Fault.Set_ordering { mode = List.nth pool (idx - 1) } ]))
  in
  let fp_pool = ref budget.max_process_crashes in
  (* Byzantine replacements: up to max_byz, drawn from the shared pool. *)
  let byz =
    let want =
      if max_byz > 0 && attack_pool <> [] then
        Random.State.int rng (min max_byz !fp_pool + 1)
      else 0
    in
    let pids = sample rng want (List.init n Fun.id) in
    fp_pool := !fp_pool - List.length pids;
    List.map
      (fun pid ->
        (pid, List.nth attack_pool (Random.State.int rng (List.length attack_pool))))
      pids
  in
  let is_byz pid = List.mem_assoc pid byz in
  (* Ω must eventually point at a correct process: if the initial leader
     (p0) went Byzantine, repoint the oracle at the lowest correct pid. *)
  let leader_fix =
    if is_byz 0 then
      match List.filter (fun p -> not (is_byz p)) (List.init n Fun.id) with
      | pid :: _ -> [ Fault.Set_leader { pid; at = 4.0 +. at rng 8.0 } ]
      | [] -> []
    else []
  in
  (* One telemetry trigger per case in adversary mode; a crash action
     reserves a slot from the shared process pool. *)
  let triggers =
    if adversary && phases <> [] then begin
      let phase = List.nth phases (Random.State.int rng (List.length phases)) in
      let occurrence = 1 + Random.State.int rng 2 in
      let action =
        if !fp_pool > 0 then begin
          decr fp_pool;
          if Random.State.bool rng then Crash_leader else Crash_opener
        end
        else Flip_leader
      in
      [ { phase; occurrence; action } ]
    end
    else []
  in
  (* Scheduled faults.  Crash targets are drawn without replacement (a
     second crash of the same pid tests nothing), and leader flaps avoid
     both Byzantine pids and crash targets so Ω stays eventually
     accurate. *)
  let mem_pool = ref budget.max_memory_crashes in
  let machine_pool = ref budget.max_machine_crashes in
  let recovery_pool = ref budget.max_recoveries in
  (* recoveries trail their crash by a grace gap so the cluster observes
     the outage before the rejoin protocol starts *)
  let recover_at crash_at = crash_at +. 2.0 +. at rng (budget.horizon /. 2.) in
  let flap_pool = ref budget.max_leader_flaps in
  let crashable = ref (List.filter (fun p -> not (is_byz p)) (List.init n Fun.id)) in
  let mem_crashable = ref (List.init m Fun.id) in
  let async_done = ref false in
  let latency_done = ref false in
  let partition_done = ref false in
  let faults = ref [] in
  let crash_targets = ref [] in
  let take_pid () =
    match sample rng 1 !crashable with
    | [ pid ] ->
        crashable := List.filter (( <> ) pid) !crashable;
        crash_targets := pid :: !crash_targets;
        Some pid
    | _ -> None
  in
  let take_mid () =
    match sample rng 1 !mem_crashable with
    | [ mid ] ->
        mem_crashable := List.filter (( <> ) mid) !mem_crashable;
        Some mid
    | _ -> None
  in
  let count = 1 + Random.State.int rng (max 1 budget.max_faults) in
  for _ = 1 to count do
    let menu =
      List.concat
        [
          (if !fp_pool > 0 && !crashable <> [] then [ `Crash_process ] else []);
          (if !mem_pool > 0 && !mem_crashable <> [] then [ `Crash_memory ] else []);
          (if
             !machine_pool > 0 && !fp_pool > 0 && !mem_pool > 0
             && !crashable <> [] && !mem_crashable <> []
           then [ `Crash_machine ]
           else []);
          (if !flap_pool > 0 && n > 1 then [ `Set_leader ] else []);
          (if budget.max_gst > 0. && not !async_done then [ `Async ] else []);
          (if budget.allow_latency && not !latency_done then [ `Latency ] else []);
          (if budget.allow_partition && n > 1 && not !partition_done then
             [ `Partition ]
           else []);
        ]
    in
    if menu <> [] then
      match List.nth menu (Random.State.int rng (List.length menu)) with
      | `Crash_process -> (
          match take_pid () with
          | Some pid ->
              decr fp_pool;
              faults := Fault.Crash_process { pid; at = at rng budget.horizon } :: !faults
          | None -> ())
      | `Crash_memory -> (
          match take_mid () with
          | Some mid ->
              decr mem_pool;
              let crash_at = at rng budget.horizon in
              faults := Fault.Crash_memory { mid; at = crash_at } :: !faults;
              if !recovery_pool > 0 then begin
                decr recovery_pool;
                faults :=
                  Fault.Recover_memory { mid; at = recover_at crash_at }
                  :: !faults
              end
          | None -> ())
      | `Crash_machine -> (
          match (take_pid (), take_mid ()) with
          | Some pid, Some mid ->
              decr fp_pool;
              decr mem_pool;
              decr machine_pool;
              let crash_at = at rng budget.horizon in
              faults := Fault.Crash_machine { pid; mid; at = crash_at } :: !faults;
              if !recovery_pool > 0 then begin
                decr recovery_pool;
                faults :=
                  Fault.Restart_machine { pid; mid; at = recover_at crash_at }
                  :: !faults
              end
          | _ -> ())
      | `Set_leader -> (
          (* flap only to processes that stay alive and honest *)
          let safe =
            List.filter
              (fun p -> (not (is_byz p)) && not (List.mem p !crash_targets))
              (List.init n Fun.id)
          in
          match sample rng 1 safe with
          | [ pid ] ->
              decr flap_pool;
              faults := Fault.Set_leader { pid; at = at rng budget.horizon } :: !faults
          | _ -> ())
      | `Async ->
          async_done := true;
          faults :=
            Fault.Async_until
              {
                gst = 1.0 +. at rng budget.max_gst;
                extra = 1.0 +. at rng budget.max_extra;
              }
            :: !faults
      | `Latency ->
          latency_done := true;
          let min = 0.5 +. at rng 1.0 in
          faults :=
            Fault.Random_latency { min; max = min +. 0.5 +. at rng 4.0 } :: !faults
      | `Partition ->
          (* isolate one process from a nonempty set of peers, both
             directions, and always heal within the horizon *)
          partition_done := true;
          let victim = Random.State.int rng n in
          let others = List.filter (( <> ) victim) (List.init n Fun.id) in
          let peers =
            match List.filter (fun _ -> Random.State.bool rng) others with
            | [] -> [ List.nth others (Random.State.int rng (List.length others)) ]
            | l -> l
          in
          let pairs =
            List.concat_map (fun p -> [ (victim, p); (p, victim) ]) peers
          in
          let start = at rng (budget.horizon /. 2.) in
          let heal_at = start +. 2.0 +. at rng (budget.horizon /. 2.) in
          faults :=
            Fault.Heal { at = heal_at } :: Fault.Partition { pairs; at = start }
            :: !faults
  done;
  {
    case_seed = seed;
    faults = ordering_faults @ List.rev !faults @ leader_fix;
    byz;
    triggers;
  }

let pp_case ppf case =
  Fmt.pf ppf "seed=%d faults=[%a]%a%a" case.case_seed
    Fmt.(list ~sep:(any ", ") Fault.pp)
    case.faults
    (fun ppf -> function
      | [] -> ()
      | byz ->
          Fmt.pf ppf " byz=[%a]"
            Fmt.(
              list ~sep:(any ", ") (fun ppf (pid, a) -> Fmt.pf ppf "p%d:%s" pid a))
            byz)
    case.byz
    (fun ppf -> function
      | [] -> ()
      | triggers ->
          Fmt.pf ppf " triggers=[%a]" Fmt.(list ~sep:(any ", ") pp_trigger) triggers)
    case.triggers
