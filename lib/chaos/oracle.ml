(* The invariant oracle: checks the paper's claims on every chaos run.

   - Agreement: no two correct processes decide differently (uniform
     agreement for the crash algorithms; containment of Byzantine
     processes for the weak-Byzantine ones — the Byzantine pids are
     excluded, everything the correct ones decide must still agree).
   - Validity: in crash-only runs every decision is some process's
     input.  With Byzantine processes the algorithms guarantee only weak
     validity (inputs differ, so it is vacuous) and the check is skipped.
   - Post-GST termination: a virtual-time watchdog fires at the
     scenario's deadline — comfortably past GST, every scheduled heal,
     and the protocols' retry budgets — and records every correct,
     uncrashed process that has not decided by then.  Within the fault
     budget this set must be empty.

   - Repair: when a scenario provides a repair predicate, every memory
     that rejoined (a [Mem_restart] on the stream) and is still alive at
     the watchdog must satisfy it — typically "no stale registers left",
     i.e. the protocol re-replicated its state onto the rejoined memory.

   The oracle is telemetry-driven: it learns decisions by subscribing to
   the typed [Decide] events every protocol already emits, so it needs
   no per-algorithm wiring. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_obs
open Rdma_consensus

type violation =
  | Agreement of { decisions : (int * string) list }
  | Validity of { pid : int; value : string }
  | Liveness of { undecided : int list; deadline : float }
  | Repair of { mid : int; detail : string }
  | Aborted of { error : string }

let pp_violation ppf = function
  | Agreement { decisions } ->
      Fmt.pf ppf "agreement: conflicting decisions %a"
        Fmt.(
          list ~sep:(any ", ") (fun ppf (pid, v) -> Fmt.pf ppf "p%d=%S" pid v))
        decisions
  | Validity { pid; value } ->
      Fmt.pf ppf "validity: p%d decided %S, which nobody proposed" pid value
  | Liveness { undecided; deadline } ->
      Fmt.pf ppf "liveness: %a undecided at watchdog deadline %.1f"
        Fmt.(list ~sep:(any ",") (fun ppf pid -> Fmt.pf ppf "p%d" pid))
        undecided deadline
  | Repair { mid; detail } ->
      Fmt.pf ppf "repair: mu%d not re-replicated at the watchdog (%s)" mid detail
  | Aborted { error } -> Fmt.pf ppf "aborted: %s" error

let violation_to_string v = Fmt.str "%a" pp_violation v

type watch = {
  deadline : float;
  mutable decided : (int * string * float) list;  (* (pid, value, at), reverse *)
  mutable missed : int list;  (* undecided correct pids at the deadline *)
  mutable restarted : int list;  (* mids that rejoined under a fresh epoch *)
  mutable unrepaired : (int * string) list;  (* (mid, detail) at the deadline *)
  mutable fired : bool;
}

(* Install the decision listener and the watchdog on a cluster (call
   from a run's [prepare] hook, before the engine starts).  [repair],
   when given, is evaluated at the watchdog for every rejoined memory
   that is still alive: [Some detail] means the protocol failed to
   re-replicate onto it. *)
let install ?repair ~deadline cluster =
  let w =
    {
      deadline;
      decided = [];
      missed = [];
      restarted = [];
      unrepaired = [];
      fired = false;
    }
  in
  let obs = Cluster.obs cluster in
  Obs.subscribe obs (fun ~at ~actor:_ ev ->
      match ev with
      | Event.Decide { pid; value } -> w.decided <- (pid, value, at) :: w.decided
      | Event.Mem_restart { mid; _ } ->
          if not (List.mem mid w.restarted) then
            w.restarted <- mid :: w.restarted
      | _ -> ());
  let engine = Cluster.engine cluster in
  Engine.schedule engine deadline (fun () ->
      w.fired <- true;
      let decided_pids = List.map (fun (pid, _, _) -> pid) w.decided in
      w.missed <-
        List.filter
          (fun pid ->
            (not (Cluster.is_crashed cluster pid))
            && (not (Cluster.is_byzantine cluster pid))
            && not (List.mem pid decided_pids))
          (List.init (Cluster.n cluster) Fun.id);
      w.unrepaired <-
        (match repair with
        | None -> []
        | Some pred ->
            List.filter_map
              (fun mid ->
                (* a memory that crashed again after its rejoin owes
                   nothing: only live rejoined memories must be whole *)
                if Memory.is_crashed (Cluster.memory cluster mid) then None
                else Option.map (fun detail -> (mid, detail)) (pred mid))
              (List.sort compare w.restarted)));
  w

let missed w = w.missed

let decided w = List.rev w.decided

let restarted w = List.sort compare w.restarted

(* Verdict over a completed run. *)
let check ?watch ?(validity = true) ~inputs ~byz (report : Report.t) =
  let correct_decisions =
    Array.to_list report.decisions
    |> List.mapi (fun pid d -> (pid, d))
    |> List.filter (fun (pid, _) -> not (List.mem pid byz))
    |> List.filter_map (fun (pid, d) ->
           Option.map (fun { Report.value; _ } -> (pid, value)) d)
  in
  let agreement =
    match correct_decisions with
    | [] | [ _ ] -> []
    | (_, v0) :: rest ->
        if List.for_all (fun (_, v) -> v = v0) rest then []
        else [ Agreement { decisions = correct_decisions } ]
  in
  let validity =
    (* [validity = false]: the scenario decides a derived value (e.g. a
       joined multi-instance log) that is not literally any input *)
    if byz <> [] || not validity then []
    else
      List.filter_map
        (fun (pid, value) ->
          if Array.exists (( = ) value) inputs then None
          else Some (Validity { pid; value }))
        correct_decisions
  in
  let liveness =
    match watch with
    | Some w when w.fired && w.missed <> [] ->
        [ Liveness { undecided = w.missed; deadline = w.deadline } ]
    | _ -> []
  in
  let repair =
    match watch with
    | Some w when w.fired ->
        List.map (fun (mid, detail) -> Repair { mid; detail }) w.unrepaired
    | _ -> []
  in
  agreement @ validity @ liveness @ repair
