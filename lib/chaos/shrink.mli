(** Greedy (ddmin-style, 1-minimal) minimization of violating fault
    schedules by deterministic re-execution. *)

open Rdma_consensus

(** [minimize ~still_fails faults] drops single faults while the failure
    reproduces, to a fixpoint.  Returns the minimized schedule and the
    number of probe runs spent.  [still_fails] must be deterministic;
    [max_runs] (default 200) bounds the probe count. *)
val minimize :
  ?max_runs:int ->
  still_fails:(Fault.t list -> bool) ->
  Fault.t list ->
  Fault.t list * int
