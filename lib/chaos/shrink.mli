(** Minimization of violating fault schedules by deterministic
    re-execution, organised as step-batched delta debugging: each step
    evaluates every single-drop candidate as one batch and adopts the
    first still-failing candidate.  Termination with a fully evaluated
    batch certifies 1-minimality. *)

open Rdma_consensus

(** [minimize ~eval faults] shrinks to a fixpoint.  [eval candidates]
    must return one still-fails verdict per candidate in candidate
    order; each verdict must be a deterministic function of its
    candidate alone, which lets callers evaluate the batch on several
    domains without affecting the result or the probe count.  Returns
    the minimized schedule and the number of probe runs spent;
    [max_runs] (default 200) bounds the probe count, truncating the
    last batch deterministically if needed. *)
val minimize :
  ?max_runs:int ->
  eval:(Fault.t list list -> bool list) ->
  Fault.t list ->
  Fault.t list * int
