(* The exploration driver: generate a batch of cases from consecutive
   seeds, run each against the scenario, and on any violation shrink the
   schedule to a minimal counterexample and package it as a repro
   artifact.  The whole batch is a pure function of (scenario, options,
   base seed) — including [jobs]: two invocations with the same
   arguments produce the same verdicts, the same artifacts, the same
   aggregate metrics, byte for byte, at any [-j].

   Structure for parallelism: each case run is a self-contained
   {!Rdma_sim.Task} — the task builds its case from its own seed, runs
   it on a fresh cluster, and returns the outcome plus the cluster's
   collector.  There are no shared accumulators; the batch verdict and
   the metrics aggregate are a sequential, submission-ordered fold over
   the pool's (already submission-ordered) results.  Shrinking runs per
   failure in seed order, with each delta-debugging step's candidate
   batch evaluated on the pool. *)

open Rdma_sim
open Rdma_obs
open Rdma_mm

type options = {
  runs : int;
  seed : int;  (* base seed; case i uses seed + i *)
  adversary : bool;  (* arm telemetry-driven triggers *)
  byz : bool;  (* draw Byzantine processes from the scenario pool *)
  over_budget : bool;  (* lift the crash budget past the fault model *)
  shrink_runs : int;  (* probe cap for the shrinker *)
  jobs : int;  (* worker domains for case runs and shrink batches *)
  ordering : Rdma_mem.Ordering.mode option;
      (* force every case onto this memory-ordering model; None = let
         the scenario budget's [orderings] pool decide (strict for all
         registered scenarios today) *)
}

let default_options =
  {
    runs = 50;
    seed = 1;
    adversary = false;
    byz = false;
    over_budget = false;
    shrink_runs = 200;
    jobs = 1;
    ordering = None;
  }

type failure = {
  outcome : Scenario.outcome;
  repro : Repro.t;
  shrink_probes : int;
}

type batch = {
  scenario : string;
  options : options;
  passed : int;
  failures : failure list;  (* in seed order *)
  metrics : Obs.t;  (* seed-ordered merge of the primary runs' metrics *)
}

let total batch = batch.passed + List.length batch.failures

(* Re-run [case] with a substitute fault schedule; used by the shrinker
   as its (deterministic) failure probe and by [replay]. *)
let run_with_faults scenario (case : Nemesis.case) faults =
  Scenario.run scenario { case with Nemesis.faults }

(* A schedule "still fails" if the re-run yields any violation at all —
   not necessarily the same one: for a minimal counterexample any
   invariant breakage keeps the schedule interesting. *)
let still_fails scenario case faults =
  (run_with_faults scenario case faults).Scenario.violations <> []

let shrink ?(max_runs = 200) ?(jobs = 1) scenario (outcome : Scenario.outcome) =
  let case = outcome.Scenario.case in
  (* One delta-debugging step's candidates as one pool batch.  Every
     probe is a full deterministic re-run seeded by the case alone, so
     the verdict vector — and with it the shrink trajectory and probe
     count — is independent of [jobs]. *)
  let eval candidates =
    candidates
    |> List.mapi (fun j faults ->
           Task.make
             ~label:
               (Printf.sprintf "%s/seed%d/shrink-candidate%d"
                  scenario.Scenario.name case.Nemesis.case_seed j)
             ~seed:case.Nemesis.case_seed
             (fun ~seed:_ -> still_fails scenario case faults))
    |> Pool.run_exn ~jobs
  in
  let minimized, probes = Shrink.minimize ~max_runs ~eval case.Nemesis.faults in
  (* The minimized schedule's outcome (re-run once more so the artifact
     records the violations of what it actually ships). *)
  let final = run_with_faults scenario case minimized in
  let repro =
    Repro.of_outcome ~scenario:scenario.Scenario.name ~minimized
      { final with Scenario.case = outcome.Scenario.case }
  in
  (repro, probes)

(* One case as a self-contained task: build the case from the task's
   own seed, run it on a fresh cluster, and hand back the outcome plus
   that cluster's collector (captured via the prepare hook) so the
   caller can fold metrics in submission order.  Everything mutable the
   task touches is created inside the task. *)
let case_task scenario (options : options) i =
  Task.make
    ~label:(Printf.sprintf "%s/case%d" scenario.Scenario.name i)
    ~seed:(options.seed + i)
    (fun ~seed ->
      let case =
        Scenario.generate scenario ~adversary:options.adversary
          ~byz:options.byz ~over_budget:options.over_budget
          ?ordering:options.ordering ~seed ()
      in
      let obs = ref None in
      (* Each primary run carries its own work profiler; its
         deterministic op-counter totals are folded into the case's
         collector (as [prof.*] counters), so the batch metrics report
         chaos cost — hashing, memory ops, events — per schedule batch.
         Shrink probes install no profiler, so (like the rest of the
         metrics) they contribute nothing. *)
      let prof = Prof.create () in
      let outcome =
        Prof.with_profiler prof (fun () ->
            Scenario.run scenario case ~prepare:(fun cluster ->
                obs := Some (Cluster.obs cluster)))
      in
      Option.iter (fun o -> Obs.absorb_prof o prof) !obs;
      (outcome, !obs))

let explore ?(options = default_options) scenario =
  let results =
    Pool.run_exn ~jobs:options.jobs
      (List.init options.runs (case_task scenario options))
  in
  (* Submission-ordered fold: verdicts, shrinks, and the metrics merge
     all walk the results in seed order, so the batch is identical at
     any [jobs].  Shrink probes do not contribute to [metrics]. *)
  let metrics = Obs.create () in
  let passed, failures =
    List.fold_left
      (fun (passed, failures) (outcome, obs) ->
        Option.iter (fun o -> Obs.merge ~into:metrics o) obs;
        if Scenario.passed outcome then (passed + 1, failures)
        else
          let repro, shrink_probes =
            shrink ~max_runs:options.shrink_runs ~jobs:options.jobs scenario
              outcome
          in
          (passed, { outcome; repro; shrink_probes } :: failures))
      (0, []) results
  in
  {
    scenario = scenario.Scenario.name;
    options;
    passed;
    failures = List.rev failures;
    metrics;
  }

(* Replay a repro artifact: rebuild the exact case and run it.  Returns
   the outcome; the caller renders the (deterministic) verdict. *)
let replay scenario (repro : Repro.t) = Scenario.run scenario (Repro.case repro)
