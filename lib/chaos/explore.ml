(* The exploration driver: generate a batch of cases from consecutive
   seeds, run each against the scenario, and on any violation shrink the
   schedule to a minimal counterexample and package it as a repro
   artifact.  The whole batch is a pure function of (scenario, options,
   base seed), so two invocations with the same arguments produce the
   same verdicts, the same artifacts, byte for byte. *)

type options = {
  runs : int;
  seed : int;  (* base seed; case i uses seed + i *)
  adversary : bool;  (* arm telemetry-driven triggers *)
  byz : bool;  (* draw Byzantine processes from the scenario pool *)
  over_budget : bool;  (* lift the crash budget past the fault model *)
  shrink_runs : int;  (* probe cap for the shrinker *)
}

let default_options =
  {
    runs = 50;
    seed = 1;
    adversary = false;
    byz = false;
    over_budget = false;
    shrink_runs = 200;
  }

type failure = {
  outcome : Scenario.outcome;
  repro : Repro.t;
  shrink_probes : int;
}

type batch = {
  scenario : string;
  options : options;
  passed : int;
  failures : failure list;  (* in seed order *)
}

let total batch = batch.passed + List.length batch.failures

(* Re-run [case] with a substitute fault schedule; used by the shrinker
   as its (deterministic) failure probe and by [replay]. *)
let run_with_faults scenario (case : Nemesis.case) faults =
  Scenario.run scenario { case with Nemesis.faults }

(* A schedule "still fails" if the re-run yields any violation at all —
   not necessarily the same one: for a minimal counterexample any
   invariant breakage keeps the schedule interesting. *)
let still_fails scenario case faults =
  (run_with_faults scenario case faults).violations <> []

let shrink ?(max_runs = 200) scenario (outcome : Scenario.outcome) =
  let case = outcome.Scenario.case in
  let minimized, probes =
    Shrink.minimize ~max_runs
      ~still_fails:(still_fails scenario case)
      case.Nemesis.faults
  in
  (* The minimized schedule's outcome (re-run once more so the artifact
     records the violations of what it actually ships). *)
  let final = run_with_faults scenario case minimized in
  let repro =
    Repro.of_outcome ~scenario:scenario.Scenario.name ~minimized
      { final with Scenario.case = outcome.Scenario.case }
  in
  (repro, probes)

let explore ?(options = default_options) scenario =
  let passed = ref 0 in
  let failures = ref [] in
  for i = 0 to options.runs - 1 do
    let case =
      Scenario.generate scenario ~adversary:options.adversary ~byz:options.byz
        ~over_budget:options.over_budget ~seed:(options.seed + i) ()
    in
    let outcome = Scenario.run scenario case in
    if Scenario.passed outcome then incr passed
    else begin
      let repro, shrink_probes =
        shrink ~max_runs:options.shrink_runs scenario outcome
      in
      failures := { outcome; repro; shrink_probes } :: !failures
    end
  done;
  {
    scenario = scenario.Scenario.name;
    options;
    passed = !passed;
    failures = List.rev !failures;
  }

(* Replay a repro artifact: rebuild the exact case and run it.  Returns
   the outcome; the caller renders the (deterministic) verdict. *)
let replay scenario (repro : Repro.t) = Scenario.run scenario (Repro.case repro)
