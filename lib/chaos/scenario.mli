(** The chaos scenario registry: one entry per algorithm, binding its
    fault-model budget, phase-span names, Byzantine attack pool, oracle
    deadline, and an executor that runs one generated case. *)

open Rdma_mm
open Rdma_consensus

type exec =
  seed:int ->
  inputs:string array ->
  faults:Fault.t list ->
  byzantine:(int * (string Cluster.ctx -> unit)) list ->
  prepare:(string Cluster.t -> unit) ->
  Report.t

type t = {
  name : string;
  descr : string;
  n : int;
  m : int;
  budget : Nemesis.budget;
  phases : string list;  (** span names the telemetry adversary may hook *)
  attack_pool : (string * (string Cluster.ctx -> unit)) list;
  max_byz : int;
  deadline : float;  (** oracle watchdog deadline, in virtual delays *)
  repair : (string Cluster.t -> int -> string option) option;
      (** evaluated at the watchdog for every rejoined, live memory:
          [Some detail] = the protocol failed to re-replicate onto it *)
  validity : bool;
      (** [false] when decisions are derived values (e.g. a joined
          multi-instance log) that are not literally any input *)
  exec : exec;
}

val all : t list

val find : string -> t option
[@@simlint.allow
  "Y2 find only returns the scenario record; referencing the workload \
   table marks it may-yield under the reference-marks-encloser \
   over-approximation (DESIGN.md §13), but the run closures are never \
   invoked here"]

val names : unit -> string list
[@@simlint.allow
  "Y2 names maps over the scenario table without invoking any run \
   closure; same over-approximation as find"]

val attack : t -> string -> (string Cluster.ctx -> unit) option

(** The fixed per-run proposal vector ["v0"; "v1"; ...]. *)
val inputs : t -> string array

type outcome = {
  case : Nemesis.case;
  report : Report.t option;  (** [None] when the run aborted *)
  violations : Oracle.violation list;
  fired : (float * string) list;  (** adversary actions, with fire times *)
}

val passed : outcome -> bool

(** Run one case deterministically: install the oracle and telemetry
    triggers, execute, and return the verdict.  [?prepare] composes an
    extra hook run after the standard installation — callers use it to
    capture the cluster's collector ({!Cluster.obs}) for metrics
    aggregation without the outcome itself carrying live state. *)
val run : ?prepare:(string Cluster.t -> unit) -> t -> Nemesis.case -> outcome

(** Generate the case for [seed] under this scenario's constraints.
    [over_budget] lifts the crash budget past the fault model (expected
    violations — shrinker fodder).  [ordering] forces the memory-ordering
    model without consuming any draws, so the rest of the schedule stays
    byte-identical to the strict run of the same seed. *)
val generate :
  t ->
  ?adversary:bool ->
  ?byz:bool ->
  ?over_budget:bool ->
  ?ordering:Rdma_mem.Ordering.mode ->
  seed:int ->
  unit ->
  Nemesis.case
