(** JSON codec for {!Rdma_consensus.Fault} schedules — the repro-artifact
    wire format.  Deterministic: encoding the same schedule always yields
    the same bytes. *)

open Rdma_consensus
open Rdma_obs

val to_json : Fault.t -> Json.t

val of_json : Json.t -> (Fault.t, string) result

val schedule_to_json : Fault.t list -> Json.t

val schedule_of_json : Json.t -> (Fault.t list, string) result
