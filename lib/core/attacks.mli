(** A library of Byzantine behaviours.

    Each attack is an ordinary process program run with honest-process
    capabilities only: it can write garbage, equivocate, replay, and lie,
    but it cannot forge signatures, spoof senders, or bypass memory
    permissions.  Tests, benches and examples run these against the
    algorithms to check containment. *)

open Rdma_mm

(** {2 Attacks on non-equivocating broadcast} *)

(** Broadcast a signed (1, m1), then overwrite the slot with a signed
    (1, m2): readers expose the conflict during cross-checking. *)
val neb_overwrite_equivocation : m1:string -> m2:string -> 'm Cluster.ctx -> unit
[@@sim.yields]

(** Plant different signed values on different memory replicas of the
    same slot. *)
val neb_replica_equivocation : m1:string -> m2:string -> 'm Cluster.ctx -> unit
[@@sim.yields]

(** {2 Attacks on Cheap Quorum} *)

(** A Byzantine leader writing different signed values to different
    replicas of the leader region. *)
val cq_equivocating_leader : v1:string -> v2:string -> 'm Cluster.ctx -> unit
[@@sim.yields]

(** A leader that proposes nothing: followers time out and panic. *)
val cq_silent_leader : 'm Cluster.ctx -> unit

(** A leader whose proposal carries a forged signature. *)
val cq_forging_leader : value:string -> 'm Cluster.ctx -> unit [@@sim.yields]

(** A follower that revokes the leader's write permission immediately. *)
val cq_early_revoker : 'm Cluster.ctx -> unit [@@sim.yields]

(** A follower that tries to take write access to the leader region for
    itself (legalChange must refuse), then runs [then_]. *)
val cq_permission_thief :
  then_:('m Cluster.ctx -> unit) -> 'm Cluster.ctx -> unit
[@@sim.yields]

(** {2 Attacks on Preferential Paxos / Robust Backup} *)

(** Claim top (T) priority with fabricated evidence. *)
val pp_priority_liar : value:string -> 'm Cluster.ctx -> unit [@@sim.yields]

(** Send a Promise citing an acceptance the history cannot justify. *)
val rb_fabricated_promise : ballot:int -> value:string -> 'm Cluster.ctx -> unit
[@@sim.yields]

(** Broadcast a Decide with no quorum behind it. *)
val rb_spurious_decide : value:string -> 'm Cluster.ctx -> unit [@@sim.yields]

(** Broadcast an Accept without preparing or gathering a promise
    quorum. *)
val rb_unjustified_accept : ballot:int -> value:string -> 'm Cluster.ctx -> unit
[@@sim.yields]

(** Answer the first Prepare with two different promises for the same
    ballot. *)
val rb_double_promise : 'm Cluster.ctx -> unit [@@sim.yields]
