(* Aligned Paxos (Section 5.2, Algorithms 9–15).

   Processes and memories are *equivalent agents*: consensus survives as
   long as a majority of the n + m agents survive — any mix of process
   and memory crashes.  The algorithm aligns message-passing Paxos (for
   process agents) with memory Paxos (for memory agents): each phase
   communicates with every agent, hears back, and analyzes once a
   majority of the combined agent set has responded.

   Memory agents come in two flavours (the paper's footnote 4):
   - [`Permissions`]: Protected-Memory-Paxos style — acquire the
     exclusive write permission, and let phase-2 write success certify
     the absence of rivals;
   - [`Disk`]: Disk-Paxos style — static all-readwrite permissions, with
     a read-back after the phase-2 write instead.  Permissions are then
     not needed at all, at the cost of two extra delays.

   Process agents run a standard Paxos acceptor (we reuse the Paxos
   message codec). *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_net
open Rdma_obs

let region = "aligned"

let slot_reg q = Printf.sprintf "slot.%d" q

let encode_slot ~min_prop ~acc_prop ~value =
  Codec.join3 (Codec.int_field min_prop) (Codec.int_field acc_prop) value

let decode_slot s =
  match Codec.split3 s with
  | None -> None
  | Some (mp, ap, v) -> (
      match (Codec.int_of_field mp, Codec.int_of_field ap) with
      | Some min_prop, Some acc_prop -> Some (min_prop, acc_prop, v)
      | _ -> None)

type memory_mode = Permissions | Disk

type config = {
  mode : memory_mode;
  max_rounds : int;
  round_timeout : float;
}

let default_config = { mode = Permissions; max_rounds = 64; round_timeout = 16.0 }

let legal_change ~pid ~region:r ~current:_ ~requested =
  r = region
  &&
  match Permission.sole_writer requested with Some w -> w = pid | None -> false

let setup_regions cluster ~mode =
  let n = Cluster.n cluster in
  let perm =
    match mode with
    | Permissions -> Permission.exclusive_writer ~writer:0 ~n
    | Disk -> Permission.all_readwrite ~n
  in
  Cluster.add_region_everywhere cluster ~name:region ~perm
    ~registers:(List.init n slot_reg)

(* Everything the proposer hears back, from either kind of agent, lands in
   one mailbox tagged with the proposal number it answers. *)
type reply =
  | Mem_info of { prop_nr : int; slots : (int * int * string) option array }
  | Mem_ack of { prop_nr : int }
  | Mem_fail of { prop_nr : int }
  | Proc_msg of { from : int; msg : Paxos.msg }

(* Phase-1 chain for memory agent [mem]: (acquire permission,) write the
   proposal number, read all slots.  A leader that believes it already
   holds the permission skips the grab — the retention optimization that
   makes permissions pay off (as in Protected Memory Paxos); if the
   belief is stale the write naks and the next round regrabs. *)
let phase1_mem_chain (ctx : _ Cluster.ctx) cfg ~mem ~prop_nr ~grab box =
  let n = ctx.Cluster.cluster_n in
  let me = ctx.Cluster.pid in
  let client = ctx.Cluster.client in
  (match cfg.mode with
  | Permissions when grab ->
      ignore
        (Memclient.change_permission client ~mem ~region
           ~perm:(Permission.exclusive_writer ~writer:me ~n))
  | Permissions | Disk -> ());
  let w =
    Memclient.write client ~mem ~region ~reg:(slot_reg me)
      (encode_slot ~min_prop:prop_nr ~acc_prop:0 ~value:"")
  in
  match w with
  | Memory.Nak -> Mailbox.send box (Mem_fail { prop_nr })
  | Memory.Ack -> (
      match
        Ivar.await
          (Memory.read_many_async (Memclient.mem client mem) ~from:me ~region
             ~regs:(List.init n slot_reg))
      with
      | Memory.Read_many_nak -> Mailbox.send box (Mem_fail { prop_nr })
      | Memory.Read_many values ->
          let slots = Array.map (fun v -> Option.bind v decode_slot) values in
          Mailbox.send box (Mem_info { prop_nr; slots }))
[@@simlint.allow
  "F1 Nak-vs-Ack detects permission loss, not remote visibility; in \
   Permissions mode a rival must switch permissions -- draining this \
   write -- before acting, and the awaited same-QP read-back that \
   follows orders behind it anyway (EXPERIMENTS.md W2)"]

(* Phase-2 chain: write the accepted value; in Disk mode, read back to
   check for rivals (the two extra delays permissions save). *)
let phase2_mem_chain (ctx : _ Cluster.ctx) cfg ~mem ~prop_nr ~value box =
  let n = ctx.Cluster.cluster_n in
  let me = ctx.Cluster.pid in
  let client = ctx.Cluster.client in
  let w =
    Memclient.write client ~mem ~region ~reg:(slot_reg me)
      (encode_slot ~min_prop:prop_nr ~acc_prop:prop_nr ~value)
  in
  match w with
  | Memory.Nak -> Mailbox.send box (Mem_fail { prop_nr })
  | Memory.Ack -> (
      match cfg.mode with
      | Permissions -> Mailbox.send box (Mem_ack { prop_nr })
      | Disk -> (
          match
            Ivar.await
              (Memory.read_many_async (Memclient.mem client mem) ~from:me ~region
                 ~regs:(List.init n slot_reg))
          with
          | Memory.Read_many_nak -> Mailbox.send box (Mem_fail { prop_nr })
          | Memory.Read_many values ->
              let rival =
                Array.exists
                  (fun v ->
                    match Option.bind v decode_slot with
                    | Some (mp, _, _) -> mp > prop_nr
                    | None -> false)
                  values
              in
              Mailbox.send box
                (if rival then Mem_fail { prop_nr } else Mem_ack { prop_nr })))
[@@simlint.allow
  "F1 same structure as phase 1: permission drain in Permissions mode, \
   awaited same-QP read-back self-fence in Disk mode (EXPERIMENTS.md W2)"]

type handle = { decision : Report.decision Ivar.t }

let decision h = h.decision

let decide_now (ctx : _ Cluster.ctx) decision value =
  if
    Ivar.try_fill decision
      { Report.value; at = Engine.now ctx.Cluster.ctx_engine }
  then
    Obs.event
      (Engine.obs ctx.Cluster.ctx_engine)
      ~actor:(Printf.sprintf "p%d" ctx.Cluster.pid)
      (Event.Decide { pid = ctx.Cluster.pid; value })

(* Route network traffic: acceptor requests to the acceptor, everything
   else to the proposer's reply box. *)
let pump (ctx : _ Cluster.ctx) ~acceptor_box ~reply_box decision =
  let continue = ref true in
  while !continue do
    let from, payload = Network.recv ctx.Cluster.ep in
    match Paxos.decode payload with
    | None -> ()
    | Some (Paxos.Decide { value } as m) ->
        decide_now ctx decision value;
        Mailbox.send acceptor_box (from, m);
        continue := false
    | Some (Paxos.Prepare _ as m) | Some (Paxos.Accept _ as m) ->
        Mailbox.send acceptor_box (from, m)
    | Some m -> Mailbox.send reply_box (Proc_msg { from; msg = m })
  done

(* Standard Paxos acceptor over the network — the process-agent half. *)
let acceptor (ctx : _ Cluster.ctx) ~acceptor_box =
  let ep = ctx.Cluster.ep in
  let min_proposal = ref 0 in
  let accepted_ballot = ref 0 in
  let accepted_value = ref "" in
  let continue = ref true in
  while !continue do
    let from, m = Mailbox.recv acceptor_box in
    match m with
    | Paxos.Prepare { ballot } ->
        if ballot > !min_proposal then begin
          min_proposal := ballot;
          Network.send ep ~dst:from
            (Paxos.encode
               (Paxos.Promise
                  { ballot; accepted_ballot = !accepted_ballot;
                    accepted_value = !accepted_value }))
        end
        else
          Network.send ep ~dst:from
            (Paxos.encode (Paxos.Reject { ballot; higher = !min_proposal }))
    | Paxos.Accept { ballot; value } ->
        if ballot >= !min_proposal then begin
          min_proposal := ballot;
          accepted_ballot := ballot;
          accepted_value := value;
          Network.send ep ~dst:from (Paxos.encode (Paxos.Accepted { ballot }))
        end
        else
          Network.send ep ~dst:from
            (Paxos.encode (Paxos.Reject { ballot; higher = !min_proposal }))
    | Paxos.Decide _ -> continue := false
    | Paxos.Promise _ | Paxos.Reject _ | Paxos.Accepted _ -> ()
  done

type collect_outcome =
  | Enough of reply list
  | Restart

(* Wait until a majority of the n + m agents answered positively for
   [prop_nr]; restart on any rejection/failure or on timeout. *)
let collect (ctx : _ Cluster.ctx) cfg ~reply_box ~prop_nr ~is_positive =
  let n = ctx.Cluster.cluster_n and m = ctx.Cluster.cluster_m in
  let needed = ((n + m) / 2) + 1 in
  let deadline = Engine.now ctx.Cluster.ctx_engine +. cfg.round_timeout in
  let rec loop acc count =
    if count >= needed then Enough acc
    else
      let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
      if remaining <= 0. then Restart
      else
        match Mailbox.recv_timeout reply_box remaining with
        | None -> Restart
        | Some reply -> (
            match is_positive reply with
            | `Yes -> loop (reply :: acc) (count + 1)
            | `No -> Restart
            | `Stale -> loop acc count)
  in
  ignore prop_nr;
  loop [] 0

let proposer (ctx : _ Cluster.ctx) cfg ~input ~reply_box decision =
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let me = ctx.Cluster.pid in
  let ep = ctx.Cluster.ep in
  let round = ref 0 in
  (* p0 starts as the initial exclusive writer; anyone else must grab *)
  let holds_permission = ref (me = 0 && cfg.mode = Permissions) in
  let continue = ref true in
  while !continue do
    Omega.wait_until_leader ctx.Cluster.ctx_omega ~me;
    if Ivar.is_full decision then continue := false
    else begin
      incr round;
      if !round > cfg.max_rounds then continue := false
      else begin
        let prop_nr = (!round * n) + me + 1 in
        let grab = not !holds_permission in
        if cfg.mode = Permissions then holds_permission := true;
        (* Phase 1: communicate with every agent. *)
        for i = 0 to m - 1 do
          ctx.Cluster.spawn_sub
            (Printf.sprintf "aligned.p1.chain%d" i)
            (fun () -> phase1_mem_chain ctx cfg ~mem:i ~prop_nr ~grab reply_box)
        done;
        Network.broadcast ep (Paxos.encode (Paxos.Prepare { ballot = prop_nr }));
        let phase1 =
          collect ctx cfg ~reply_box ~prop_nr ~is_positive:(fun reply ->
              match reply with
              | Mem_info { prop_nr = p; slots } when p = prop_nr ->
                  if
                    Array.exists
                      (function Some (mp, _, _) -> mp > prop_nr | None -> false)
                      slots
                  then `No
                  else `Yes
              | Mem_fail { prop_nr = p } when p = prop_nr -> `No
              | Proc_msg { msg = Paxos.Promise { ballot; _ }; _ } when ballot = prop_nr
                ->
                  `Yes
              | Proc_msg { msg = Paxos.Reject { ballot; _ }; _ } when ballot = prop_nr
                ->
                  `No
              | Proc_msg { msg = Paxos.Decide { value }; _ } ->
                  decide_now ctx decision value;
                  `No
              | Mem_info _ | Mem_fail _ (* stale proposal *)
              | Mem_ack _ (* phase-2 stragglers *)
              | Proc_msg _ -> `Stale)
        in
        match phase1 with
        | Restart ->
            holds_permission := false;
            Engine.sleep 2.0
        | Enough replies -> (
            (* Analyze 1: adopt the value with the highest accProposal
               seen across both kinds of agents. *)
            let best = ref None in
            let consider acc_prop v =
              if acc_prop > 0 then
                match !best with
                | Some (b, _) when b >= acc_prop -> ()
                | _ -> best := Some (acc_prop, v)
            in
            List.iter
              (fun reply ->
                match reply with
                | Mem_info { slots; _ } ->
                    Array.iter
                      (function
                        | Some (_, ap, v) -> consider ap v
                        | None -> ())
                      slots
                | Proc_msg
                    { msg = Paxos.Promise { accepted_ballot; accepted_value; _ }; _ }
                  ->
                    consider accepted_ballot accepted_value
                | Mem_ack _ | Mem_fail _ | Proc_msg _ -> ())
              replies;
            let value = match !best with Some (_, v) -> v | None -> input in
            (* Phase 2 *)
            for i = 0 to m - 1 do
              ctx.Cluster.spawn_sub
                (Printf.sprintf "aligned.p2.chain%d" i)
                (fun () -> phase2_mem_chain ctx cfg ~mem:i ~prop_nr ~value reply_box)
            done;
            Network.broadcast ep (Paxos.encode (Paxos.Accept { ballot = prop_nr; value }));
            let phase2 =
              collect ctx cfg ~reply_box ~prop_nr ~is_positive:(fun reply ->
                  match reply with
                  | Mem_ack { prop_nr = p } when p = prop_nr -> `Yes
                  | Mem_fail { prop_nr = p } when p = prop_nr -> `No
                  | Proc_msg { msg = Paxos.Accepted { ballot }; _ } when ballot = prop_nr
                    ->
                      `Yes
                  | Proc_msg { msg = Paxos.Reject { ballot; _ }; _ }
                    when ballot = prop_nr ->
                      `No
                  | Proc_msg { msg = Paxos.Decide { value }; _ } ->
                      decide_now ctx decision value;
                      `No
                  | Mem_ack _ | Mem_fail _ | Mem_info _ (* stale proposal *)
                  | Proc_msg _ -> `Stale)
            in
            match phase2 with
            | Restart ->
                holds_permission := false;
                Engine.sleep 2.0
            | Enough _ ->
                decide_now ctx decision value;
                Network.broadcast ep (Paxos.encode (Paxos.Decide { value }));
                continue := false)
      end
    end
  done

let spawn cluster ?(cfg = default_config) ~pid ~input () =
  let decision = Ivar.create () in
  Cluster.spawn cluster ~pid (fun ctx ->
      let acceptor_box = Mailbox.create () in
      let reply_box = Mailbox.create () in
      ctx.Cluster.spawn_sub "aligned.pump" (fun () ->
          pump ctx ~acceptor_box ~reply_box decision);
      ctx.Cluster.spawn_sub "aligned.acceptor" (fun () -> acceptor ctx ~acceptor_box);
      proposer ctx cfg ~input ~reply_box decision);
  { decision }

let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ()) ~n ~m ~inputs () =
  if Array.length inputs <> n then invalid_arg "Aligned_paxos.run: |inputs| <> n";
  let legal_change =
    match cfg.mode with
    | Permissions -> legal_change
    | Disk -> Permission.static_permissions
  in
  let cluster = Cluster.create ~seed ~legal_change ~n ~m () in
  setup_regions cluster ~mode:cfg.mode;
  let handles = Array.init n (fun pid -> spawn cluster ~cfg ~pid ~input:inputs.(pid) ()) in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions = Array.map (fun h -> Ivar.peek h.decision) handles in
  let name =
    match cfg.mode with
    | Permissions -> "aligned-paxos"
    | Disk -> "aligned-paxos-disk"
  in
  Report.of_stats ~algorithm:name ~n ~m ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster)) ()
