(* Declarative fault schedules, applied to a cluster before a run.

   These cover the model's failure and asynchrony knobs (Section 3):
   process crashes, memory crashes, Ω behaviour, network partitions
   (buffered, never dropped — links are no-loss), and the asynchronous
   prefix of a partially synchronous execution. *)

open Rdma_sim
open Rdma_mm
open Rdma_net

type t =
  | Crash_process of { pid : int; at : float }
  | Crash_memory of { mid : int; at : float }
  | Set_leader of { pid : int; at : float }
  | Async_until of { gst : float; extra : float }
      (* messages sent before [gst] take [extra] additional delay *)
  | Random_latency of { min : float; max : float }
      (* per-message latency in [min, max): messages may overtake each
         other (links are not FIFO in the model) *)
  | Crash_machine of { pid : int; mid : int; at : float }
      (* a full-system crash (Section 7): the process and its co-located
         memory fail at the same instant *)
  | Partition of { pairs : (int * int) list; at : float }
      (* sever the ordered pairs at [at]; messages buffer until Heal *)
  | Heal of { at : float }
  | Recover_memory of { mid : int; at : float }
      (* bring a crashed memory back EMPTY under a fresh epoch (the
         rejoin protocol re-establishes its permissions); a benign no-op
         when the memory is not crashed at [at], so shrunk schedules that
         dropped the paired crash stay valid *)
  | Restart_machine of { pid : int; mid : int; at : float }
      (* restart a full machine: the memory rejoins empty and the process
         re-runs its program from the top *)
  | Set_ordering of { mode : Rdma_mem.Ordering.mode }
      (* install a weak memory-ordering model on every memory, at
         schedule-install time (a NIC's ordering behaviour is a property
         of the hardware, not a mid-run event); per-op lag/reorder
         decisions come from the run's seed, so replay and ddmin shrink
         reproduce them verbatim *)
[@@simlint.protocol]
(* simlint D3: a new fault constructor must be handled (or consciously
   ignored) by every schedule generator, codec, and oracle — no silent
   wildcard fall-through. *)

(* Every fault names its targets before the run starts, so a target
   outside the cluster is a schedule bug, not a benign no-op: a typo'd
   pid would otherwise silently test nothing. *)
let validate cluster fault =
  let n = Cluster.n cluster and m = Cluster.m cluster in
  let check_pid pid =
    if pid < 0 || pid >= n then
      invalid_arg
        (Printf.sprintf "Fault.apply: pid %d outside cluster of %d processes" pid n)
  in
  let check_mid mid =
    if mid < 0 || mid >= m then
      invalid_arg
        (Printf.sprintf "Fault.apply: mid %d outside cluster of %d memories" mid m)
  in
  match fault with
  | Crash_process { pid; _ } | Set_leader { pid; _ } -> check_pid pid
  | Crash_memory { mid; _ } | Recover_memory { mid; _ } -> check_mid mid
  | Crash_machine { pid; mid; _ } | Restart_machine { pid; mid; _ } ->
      check_pid pid;
      check_mid mid
  | Partition { pairs; _ } ->
      List.iter
        (fun (src, dst) ->
          check_pid src;
          check_pid dst)
        pairs
  | Async_until _ | Random_latency _ | Heal _ | Set_ordering _ -> ()

let apply cluster faults =
  List.iter (validate cluster) faults;
  let engine = Cluster.engine cluster in
  let at_time at f = Engine.schedule engine (max 0. (at -. Engine.now engine)) f in
  List.iter
    (fun fault ->
      match fault with
      | Crash_process { pid; at } -> Cluster.crash_process_at cluster ~at pid
      | Crash_memory { mid; at } -> Cluster.crash_memory_at cluster ~at mid
      | Set_leader { pid; at } ->
          Omega.set_leader_after (Cluster.omega cluster) at pid
      | Async_until { gst; extra } ->
          Network.set_gst (Cluster.net cluster) ~at:gst
            ~extra:(fun ~src:_ ~dst:_ ~now:_ -> extra)
      | Random_latency { min; max } ->
          Network.randomize_latency (Cluster.net cluster)
            ~rng:(Engine.rng (Cluster.engine cluster))
            ~min ~max
      | Crash_machine { pid; mid; at } ->
          Cluster.crash_process_at cluster ~at pid;
          Cluster.crash_memory_at cluster ~at mid
      | Partition { pairs; at } ->
          at_time at (fun () -> Network.partition (Cluster.net cluster) pairs)
      | Heal { at } -> at_time at (fun () -> Network.heal (Cluster.net cluster))
      | Recover_memory { mid; at } -> Cluster.restart_memory_at cluster ~at mid
      | Restart_machine { pid; mid; at } ->
          Cluster.restart_machine_at cluster ~at ~pid ~mid
      | Set_ordering { mode } -> Cluster.set_ordering cluster mode)
    faults

let pp ppf = function
  | Crash_process { pid; at } -> Fmt.pf ppf "crash p%d@%.1f" pid at
  | Crash_memory { mid; at } -> Fmt.pf ppf "crash mu%d@%.1f" mid at
  | Set_leader { pid; at } -> Fmt.pf ppf "leader:=p%d@%.1f" pid at
  | Async_until { gst; extra } -> Fmt.pf ppf "async(+%.1f)until@%.1f" extra gst
  | Random_latency { min; max } -> Fmt.pf ppf "latency~U[%.1f,%.1f)" min max
  | Crash_machine { pid; mid; at } -> Fmt.pf ppf "crash machine(p%d,mu%d)@%.1f" pid mid at
  | Partition { pairs; at } ->
      Fmt.pf ppf "partition{%a}@%.1f"
        Fmt.(list ~sep:(any ",") (fun ppf (s, d) -> Fmt.pf ppf "%d>%d" s d))
        pairs at
  | Heal { at } -> Fmt.pf ppf "heal@%.1f" at
  | Recover_memory { mid; at } -> Fmt.pf ppf "recover mu%d@%.1f" mid at
  | Restart_machine { pid; mid; at } ->
      Fmt.pf ppf "restart machine(p%d,mu%d)@%.1f" pid mid at
  | Set_ordering { mode } -> Fmt.pf ppf "ordering:=%a" Rdma_mem.Ordering.pp mode
