(* Fast & Robust (Section 4.3): the paper's headline Byzantine result.

   Weak Byzantine agreement with n ≥ 2fP + 1 processes and m ≥ 2fM + 1
   memories, 2-deciding in common executions (Theorem 4.9).

   Composition (Figure 6): run Cheap Quorum; if it aborts, feed each
   process's abort value — with its evidence — into Preferential Paxos,
   whose priorities (Definition 3) guarantee that any value a correct
   process already decided on the fast path is the only value the backup
   can decide (Lemma 4.8):

     T: values carrying a correct unanimity proof
     M: values carrying the leader's signature (but no proof)
     B: everything else

   A process that decided in Cheap Quorum still joins Preferential Paxos
   (with its decided value and strongest evidence) so that aborting
   processes can assemble their n − fP set-up quorum. *)

open Rdma_sim
open Rdma_mm
open Rdma_crypto
open Rdma_obs

(* {2 Definition 3 evidence} *)

let encode_evidence = function
  | Cheap_quorum.Unanimity proof -> Codec.join2 "T" proof
  | Cheap_quorum.Leader_signed s -> Codec.join2 "M" (Keychain.encode s)
  | Cheap_quorum.Bare -> Codec.join2 "B" ""

(* Verified classification: a claimed priority counts only if the
   attached evidence checks out — within this instance's namespace, so
   proofs and signatures from other instances are worthless here. *)
let classify ?(ns = "") chain ~n : Preferential_paxos.classify =
 fun ~value ~evidence ->
  match Codec.split2 evidence with
  | Some ("T", proof) when Cheap_quorum.verify_proof ~ns chain ~n proof = Some value ->
      2
  | Some ("M", sig_enc) -> (
      match Keychain.decode sig_enc with
      | Some s
        when Keychain.valid chain ~author:Cheap_quorum.leader
               (Cheap_quorum.value_payload ~ns value)
               s ->
          1
      | _ -> 0)
  | _ -> 0

type config = {
  cheap_quorum : Cheap_quorum.config;
  preferential : Preferential_paxos.config;
}

let default_config =
  {
    cheap_quorum = Cheap_quorum.default_config;
    preferential = Preferential_paxos.default_config;
  }

(* A configuration whose Cheap Quorum and NEB layers live in instance
   namespace [ns] — the slots of a BFT log use one per slot. *)
let config_with_ns ?(base = default_config) ns =
  {
    cheap_quorum = { base.cheap_quorum with Cheap_quorum.ns };
    preferential =
      { base.preferential with
        Preferential_paxos.backup =
          { base.preferential.Preferential_paxos.backup with
            Robust_backup.trusted =
              { Trusted.neb =
                  { base.preferential.Preferential_paxos.backup.Robust_backup.trusted
                      .Trusted.neb
                    with Neb.ns } } } };
  }

let ns_of cfg = cfg.cheap_quorum.Cheap_quorum.ns

type handle = { decision : Report.decision Ivar.t }

let decision h = h.decision

let setup_regions cluster ?(cfg = default_config) () =
  Cheap_quorum.setup_regions ~ns:(ns_of cfg) cluster;
  Robust_backup.setup_regions cluster ~cfg:cfg.preferential.Preferential_paxos.backup ()

let legal_change ~n = Cheap_quorum.legal_change ~n

(* The per-process program: Cheap Quorum, then Preferential Paxos. *)
let program (ctx : _ Cluster.ctx) cfg ~input decision =
  let n = ctx.Cluster.cluster_n in
  let obs = ctx.Cluster.ctx_obs in
  let actor = Printf.sprintf "p%d" ctx.Cluster.pid in
  let outcome =
    Obs.with_span obs ~actor ~cat:"phase" "fr.cheap-quorum" (fun () ->
        Cheap_quorum.participate ctx ~cfg:cfg.cheap_quorum ~input ())
  in
  let value, evidence =
    match outcome with
    | Cheap_quorum.Decided { value; at; proof } ->
        if Ivar.try_fill decision { Report.value; at } then
          Obs.event obs ~actor
            (Event.Decide { pid = ctx.Cluster.pid; value });
        if ctx.Cluster.pid = Cheap_quorum.leader then
          Stats.set ctx.Cluster.ctx_stats "sigs_at_fast_decision"
            (Stats.get ctx.Cluster.ctx_stats
               (Printf.sprintf "sigs.p%d" Cheap_quorum.leader));
        (value, proof)
    | Cheap_quorum.Aborted { value; proof } -> (value, proof)
  in
  Trace.recordf ctx.Cluster.ctx_trace
    ~at:(Engine.now ctx.Cluster.ctx_engine)
    ~actor:(Printf.sprintf "p%d" ctx.Cluster.pid)
    "%s -> preferential-paxos value=%s class=%s"
    (match outcome with
    | Cheap_quorum.Decided _ -> "cheap-quorum COMMIT"
    | Cheap_quorum.Aborted _ -> "cheap-quorum ABORT")
    value
    (match evidence with
    | Cheap_quorum.Unanimity _ -> "T"
    | Cheap_quorum.Leader_signed _ -> "M"
    | Cheap_quorum.Bare -> "B");
  (* The backup phase runs in auxiliary fibers; open the span here and
     close it when the backup's decision lands (or never, if it doesn't —
     an unfinished span in the trace is the signal). *)
  let backup_span = Obs.span obs ~actor ~cat:"phase" "fr.preferential" in
  let pp =
    Preferential_paxos.attach ctx ~cfg:cfg.preferential
      ~classify:(classify ~ns:(ns_of cfg) ctx.Cluster.chain ~n)
      ~value ~evidence:(encode_evidence evidence) ()
  in
  Ivar.on_fill (Preferential_paxos.decision pp) (fun d ->
      Obs.finish obs backup_span;
      if Ivar.try_fill decision d then
        Obs.event obs ~actor
          (Event.Decide { pid = ctx.Cluster.pid; value = d.Report.value }))

(* Run one instance from inside an existing process fiber (blocking
   through the Cheap Quorum phase); the returned ivar fills on decision.
   The BFT log drives one of these per slot. *)
let attach ctx ?(cfg = default_config) ~input () =
  let decision = Ivar.create () in
  program ctx cfg ~input decision;
  decision

let spawn cluster ?(cfg = default_config) ~pid ~input () =
  let decision = Ivar.create () in
  Cluster.spawn cluster ~pid (fun ctx -> program ctx cfg ~input decision);
  { decision }

let run ?(cfg = default_config) ?(seed = 1) ?(faults = [])
    ?(prepare = fun _ -> ())
    ?(byzantine : (int * (string Cluster.ctx -> unit)) list = []) ~n ~m ~inputs () =
  if Array.length inputs <> n then invalid_arg "Fast_robust.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~legal_change:(legal_change ~n) ~n ~m () in
  setup_regions cluster ~cfg ();
  let handles = Array.make n None in
  for pid = 0 to n - 1 do
    match List.assoc_opt pid byzantine with
    | Some behaviour -> Cluster.spawn_byzantine cluster ~pid behaviour
    | None -> handles.(pid) <- Some (spawn cluster ~cfg ~pid ~input:inputs.(pid) ())
  done;
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions =
    Array.map (function Some h -> Ivar.peek h.decision | None -> None) handles
  in
  let report =
    Report.of_stats ~algorithm:"fast-robust" ~n ~m ~decisions
      ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
      ~steps:(Engine.steps (Cluster.engine cluster)) ()
  in
  (report, List.map fst byzantine, cluster)
