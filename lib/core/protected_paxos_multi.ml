(* Repeated Protected Memory Paxos — the paper's multi-instance remark:

     "the code shows one instance of consensus, with p1 as initial
      leader.  With many consensus instances, the leader terminates one
      instance and becomes the default leader in the next."

   All instances share one region per memory (registers slot[i, q] for
   instance i and process q), so one exclusive write permission covers
   the whole sequence.  Leadership is organized in *reigns*:

   - Taking over, a leader grabs the permission on every memory and
     reads the entire region from a majority in a single batched RDMA
     read per memory.  It adopts, per instance, the value with the
     highest accepted proposal number, and picks its reign's proposal
     number strictly above everything it saw (Algorithm 7 line 10).
   - While the reign lasts (every write acked), each instance costs one
     replicated write — two delays — whether it carries an adopted value
     or the leader's own input: the permission has been held
     continuously since the takeover read, so no rival value can exist
     in any instance the read found empty.
   - Any nak ends the reign; the process must take over again before
     deciding anything else.

   Safety is the single-shot argument applied per instance: a committed
   (P, v) lies in a majority of memories; a later reign's takeover read
   (behind the same permission fence) intersects it, adopts v, and
   chooses a higher proposal number, so maxima never go backwards. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_net

let region = "pmp-multi"

let slot_reg ~instance q = Printf.sprintf "slot.%d.%d" instance q

(* Slot contents reuse the single-shot codec. *)
let encode_slot = Protected_paxos.encode_slot

let decode_slot = Protected_paxos.decode_slot

let legal_change ~pid ~region:r ~current:_ ~requested =
  r = region
  &&
  match Permission.sole_writer requested with Some w -> w = pid | None -> false

type config = {
  slots : int;
  f_m : int option;
  max_takeovers : int;
}

let default_config = { slots = 4; f_m = None; max_takeovers = 32 }

let all_registers cfg n =
  List.concat_map
    (fun i -> List.init n (fun q -> slot_reg ~instance:i q))
    (List.init cfg.slots Fun.id)

let setup_regions cluster cfg =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.exclusive_writer ~writer:0 ~n)
    ~registers:(all_registers cfg n)

let encode_decide ~instance ~value = Codec.join3 "decide" (Codec.int_field instance) value

let decode_decide s =
  match Codec.split3 s with
  | Some ("decide", inst, value) ->
      Option.map (fun instance -> (instance, value)) (Codec.int_of_field inst)
  | _ -> None

type handle = { decisions : Report.decision Ivar.t array (* per instance *) }

let decisions h = h.decisions

let listener (ctx : _ Cluster.ctx) cfg (decisions : Report.decision Ivar.t array) =
  let remaining = ref cfg.slots in
  while !remaining > 0 do
    let _, payload = Network.recv ctx.Cluster.ep in
    match decode_decide payload with
    | Some (instance, value) when instance >= 0 && instance < cfg.slots ->
        if
          Ivar.try_fill decisions.(instance)
            { Report.value; at = Engine.now ctx.Cluster.ctx_engine }
        then decr remaining
    | _ -> ()
  done

(* Block until this process leads or the instance is decided. *)
let await_leadership_or_decision (ctx : _ Cluster.ctx) decision =
  let omega = ctx.Cluster.ctx_omega in
  let me = ctx.Cluster.pid in
  if Ivar.is_full decision || Omega.leader omega = me then ()
  else
    Engine.suspend (fun _eng _fiber resume ->
        let settled = ref false in
        let fire () =
          if not !settled then begin
            settled := true;
            resume ()
          end
        in
        Omega.on_change omega ~want:(fun pid -> pid = me) fire;
        Ivar.on_fill decision (fun _ -> fire ()))

(* The per-process reign state. *)
type reign = {
  mutable active : bool; (* permission believed held since the last read *)
  mutable prop_nr : int;
  mutable adopted : (int * string) option array; (* per instance *)
}

(* Take over: grab the permission on every memory and read the whole
   region from a quorum.  On success, installs the reign (adopted values
   + fresh proposal number above everything seen). *)
let takeover (ctx : _ Cluster.ctx) cfg reign =
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let me = ctx.Cluster.pid in
  let client = ctx.Cluster.client in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let regs = all_registers cfg n in
  let chains = Array.init m (fun _ -> Ivar.create ()) in
  for i = 0 to m - 1 do
    ctx.Cluster.spawn_sub
      (Printf.sprintf "pmpm.takeover%d" i)
      (fun () ->
        ignore
          (Memclient.change_permission client ~mem:i ~region
             ~perm:(Permission.exclusive_writer ~writer:me ~n));
        match
          Ivar.await (Memory.read_many_async (Memclient.mem client i) ~from:me ~region ~regs)
        with
        | Memory.Read_many values -> Ivar.fill chains.(i) (Some values)
        | Memory.Read_many_nak -> Ivar.fill chains.(i) None)
  done;
  let completed = Par.await_k chains quorum in
  if List.exists (fun (_, v) -> v = None) completed then false
  else begin
    let adopted = Array.make cfg.slots None in
    let max_seen = ref 0 in
    List.iter
      (fun (_, values) ->
        match values with
        | None -> ()
        | Some values ->
            (* registers are laid out instance-major, n per instance *)
            Array.iteri
              (fun idx v ->
                match Option.bind v decode_slot with
                | None -> ()
                | Some (mp, ap, value) ->
                    let instance = idx / n in
                    if mp > !max_seen then max_seen := mp;
                    if ap > !max_seen then max_seen := ap;
                    if ap > 0 then
                      match adopted.(instance) with
                      | Some (b, _) when b >= ap -> ()
                      | _ -> adopted.(instance) <- Some (ap, value))
              values)
      completed;
    (* the smallest proposal number of ours above everything seen *)
    let k = ref 1 in
    while (!k * ctx.Cluster.cluster_n) + me + 1 <= !max_seen do
      incr k
    done;
    reign.prop_nr <- (!k * ctx.Cluster.cluster_n) + me + 1;
    reign.adopted <- adopted;
    reign.active <- true;
    true
  end

(* Decide one instance under an active reign: a single replicated write.
   Returns false (and ends the reign) on any nak. *)
let fast_decide (ctx : _ Cluster.ctx) cfg reign ~instance ~input decision =
  let m = ctx.Cluster.cluster_m in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let value =
    match reign.adopted.(instance) with Some (_, v) -> v | None -> input
  in
  let writes =
    Memclient.write_all_async ctx.Cluster.client ~region
      ~reg:(slot_reg ~instance ctx.Cluster.pid)
      (encode_slot ~min_prop:reign.prop_nr ~acc_prop:reign.prop_nr ~value)
  in
  let completed = Par.await_k writes quorum in
  if List.for_all (fun (_, w) -> w = Memory.Ack) completed then begin
    ignore
      (Ivar.try_fill decision { Report.value; at = Engine.now ctx.Cluster.ctx_engine });
    Network.broadcast ctx.Cluster.ep (encode_decide ~instance ~value);
    true
  end
  else begin
    reign.active <- false;
    false
  end

(* One process's program: instances strictly in order; the reign persists
   across instances, so in steady state every decision is one write. *)
let program (ctx : _ Cluster.ctx) cfg ~input_for handle =
  ctx.Cluster.spawn_sub "pmpm.listener" (fun () -> listener ctx cfg handle.decisions);
  let reign =
    {
      (* p0 owns the initial permission over an all-⊥ region: an implicit
         first takeover with nothing adopted *)
      active = ctx.Cluster.pid = 0;
      prop_nr = 1;
      adopted = Array.make cfg.slots None;
    }
  in
  let takeovers = ref 0 in
  for instance = 0 to cfg.slots - 1 do
    let decision = handle.decisions.(instance) in
    while not (Ivar.is_full decision) do
      await_leadership_or_decision ctx decision;
      if (not (Ivar.is_full decision))
         && Omega.leader ctx.Cluster.ctx_omega = ctx.Cluster.pid
      then begin
        if not reign.active then begin
          incr takeovers;
          if !takeovers > cfg.max_takeovers then ignore (Ivar.await decision)
          else if not (takeover ctx cfg reign) then Engine.sleep 2.0
        end;
        if reign.active && not (Ivar.is_full decision) then
          ignore
            (fast_decide ctx cfg reign ~instance ~input:(input_for ~instance) decision)
      end
    done
  done

let spawn cluster ?(cfg = default_config) ~pid ~input_for () =
  let handle = { decisions = Array.init cfg.slots (fun _ -> Ivar.create ()) } in
  Cluster.spawn cluster ~pid (fun ctx -> program ctx cfg ~input_for handle);
  handle

(* Run [cfg.slots] sequential decisions; [input_for ~pid ~instance]
   supplies proposals.  Returns one report per instance. *)
let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ())
    ~n ~m ~input_for () =
  let cluster : string Cluster.t = Cluster.create ~seed ~legal_change ~n ~m () in
  setup_regions cluster cfg;
  let handles =
    Array.init n (fun pid ->
        spawn cluster ~cfg ~pid ~input_for:(fun ~instance -> input_for ~pid ~instance) ())
  in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.init cfg.slots (fun instance ->
      let decisions = Array.map (fun h -> Ivar.peek h.decisions.(instance)) handles in
      Report.of_stats
        ~algorithm:(Printf.sprintf "protected-paxos-multi[%d]" instance)
        ~n ~m ~decisions
        ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
        ~steps:(Engine.steps (Cluster.engine cluster)) ())
