(* Repeated Protected Memory Paxos — the paper's multi-instance remark:

     "the code shows one instance of consensus, with p1 as initial
      leader.  With many consensus instances, the leader terminates one
      instance and becomes the default leader in the next."

   All instances share one region per memory (registers slot[i, q] for
   instance i and process q), so one exclusive write permission covers
   the whole sequence.  Leadership is organized in *reigns*:

   - Taking over, a leader grabs the permission on every memory and
     reads the entire region from a majority in a single batched RDMA
     read per memory.  It adopts, per instance, the value with the
     highest accepted proposal number, and picks its reign's proposal
     number strictly above everything it saw (Algorithm 7 line 10).
   - While the reign lasts (every write acked), each instance costs one
     replicated write — two delays — whether it carries an adopted value
     or the leader's own input: the permission has been held
     continuously since the takeover read, so no rival value can exist
     in any instance the read found empty.
   - Any nak ends the reign; the process must take over again before
     deciding anything else.

   Safety is the single-shot argument applied per instance: a committed
   (P, v) lies in a majority of memories; a later reign's takeover read
   (behind the same permission fence) intersects it, adopts v, and
   chooses a higher proposal number, so maxima never go backwards. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_net
open Rdma_obs

let region = "pmp-multi"

let slot_reg ~instance q = Printf.sprintf "slot.%d.%d" instance q

(* The checkpoint register: the decided values of the first [up_to]
   instances, written quorum-acked by a leader AFTER those instances
   decided, then the covered slots are truncated (batched ⊥-writes).  A
   checkpoint read from any single replica covers only decided instances,
   so adopting the maximum seen is safe — it lets a takeover (or a
   restarted learner) install decisions without replaying the slots. *)
let ckpt_reg = "ckpt"

let encode_ckpt ~values = Codec.join (Codec.int_field (List.length values) :: values)

let decode_ckpt s =
  match Codec.split s with
  | up :: values -> (
      match Codec.int_of_field up with
      | Some up_to when up_to = List.length values -> Some values
      | _ -> None)
  | [] -> None

(* Slot contents reuse the single-shot codec. *)
let encode_slot = Protected_paxos.encode_slot

let decode_slot = Protected_paxos.decode_slot

let legal_change ~pid ~region:r ~current:_ ~requested =
  r = region
  &&
  match Permission.sole_writer requested with Some w -> w = pid | None -> false

type config = {
  slots : int;
  f_m : int option;
  max_takeovers : int;
  checkpoint_every : int;
      (* checkpoint (and truncate the slots below) every this many decided
         instances; 0 disables checkpointing *)
  serve_until : float;
      (* keep a custodian fiber alive until this virtual time to repair
         memories that rejoin after the decisions are done; 0 disables *)
}

let default_config =
  { slots = 4; f_m = None; max_takeovers = 32; checkpoint_every = 0;
    serve_until = 0.0 }

let all_registers cfg n =
  List.concat_map
    (fun i -> List.init n (fun q -> slot_reg ~instance:i q))
    (List.init cfg.slots Fun.id)

let setup_regions cluster cfg =
  let n = Cluster.n cluster in
  Cluster.add_region_everywhere cluster ~name:region
    ~perm:(Permission.exclusive_writer ~writer:0 ~n)
    ~registers:(ckpt_reg :: all_registers cfg n)

let encode_decide ~instance ~value = Codec.join3 "decide" (Codec.int_field instance) value

let decode_decide s =
  match Codec.split3 s with
  | Some ("decide", inst, value) ->
      Option.map (fun instance -> (instance, value)) (Codec.int_of_field inst)
  | _ -> None

type handle = { decisions : Report.decision Ivar.t array (* per instance *) }

let decisions h = h.decisions

let listener (ctx : _ Cluster.ctx) cfg (decisions : Report.decision Ivar.t array) =
  let remaining = ref cfg.slots in
  while !remaining > 0 do
    let _, payload = Network.recv ctx.Cluster.ep in
    match decode_decide payload with
    | Some (instance, value) when instance >= 0 && instance < cfg.slots ->
        if
          Ivar.try_fill decisions.(instance)
            { Report.value; at = Engine.now ctx.Cluster.ctx_engine }
        then decr remaining
    | _ -> ()
  done

(* Block until this process leads or the instance is decided. *)
let await_leadership_or_decision (ctx : _ Cluster.ctx) decision =
  let omega = ctx.Cluster.ctx_omega in
  let me = ctx.Cluster.pid in
  if Ivar.is_full decision || Omega.leader omega = me then ()
  else
    Engine.suspend (fun _eng _fiber resume ->
        let settled = ref false in
        let fire () =
          if not !settled then begin
            settled := true;
            resume ()
          end
        in
        Omega.on_change omega ~want:(fun pid -> pid = me) fire;
        Ivar.on_fill decision (fun _ -> fire ()))

(* The per-process reign state. *)
type reign = {
  mutable active : bool; (* permission believed held since the last read *)
  mutable prop_nr : int;
  mutable adopted : (int * string) option array; (* per instance *)
}

(* State transfer to one (typically restarted) memory: take the write
   permission there, then install everything this process knows — the
   checkpoint of decided instances, plus its own slot above it carrying
   the decided or takeover-adopted value — in ONE batched write,
   stamping those registers fresh in the memory's current epoch.
   Writing a decided value under any proposal number is safe: no other
   value can ever be decided in that instance, and takeover reads adopt
   the max-proposal value, which for a decided instance is always the
   decided one.  Carrying the ADOPTED value matters for the same reason:
   the adopted value is the only possibly-decided one our takeover read
   observed, and a later takeover whose read quorum includes only the
   repaired memory must still see it.

   Only registers still STALE since the restart are written: a fresh
   register was written after the rejoin — possibly by a newer leader —
   and clobbering it with our (possibly outdated) knowledge could erase
   an accepted value.  The staleness mask models reading the memory's
   per-epoch valid bitmap; the batched write stays permission-guarded,
   so if a newer leader takes permission between the mask read and the
   write, the write naks and that leader repairs instead.

   Spawned as a sub-fiber so a memory that re-crashes mid-transfer
   cannot wedge the caller. *)
let spawn_repair (ctx : _ Cluster.ctx) cfg reign handle mid =
  ctx.Cluster.spawn_sub
    (Printf.sprintf "pmpm.repair%d" mid)
    (fun () ->
      let n = ctx.Cluster.cluster_n in
      let me = ctx.Cluster.pid in
      let client = ctx.Cluster.client in
      ignore
        (Memclient.change_permission client ~mem:mid ~region
           ~perm:(Permission.exclusive_writer ~writer:me ~n));
      (* the consecutively decided prefix, for the checkpoint *)
      let decided = ref [] in
      (try
         for i = 0 to cfg.slots - 1 do
           match Ivar.peek handle.decisions.(i) with
           | Some d -> decided := d.Report.value :: !decided
           | None -> raise Exit
         done
       with Exit -> ());
      let values = List.rev !decided in
      let up_to = List.length values in
      let slots =
        List.concat_map
          (fun i ->
            List.init n (fun q ->
                let reg = slot_reg ~instance:i q in
                if i < up_to || q <> me then (reg, None)
                else
                  let known =
                    match Ivar.peek handle.decisions.(i) with
                    | Some d -> Some d.Report.value
                    | None -> Option.map snd reign.adopted.(i)
                  in
                  ( reg,
                    Option.map
                      (fun value ->
                        encode_slot ~min_prop:reign.prop_nr
                          ~acc_prop:reign.prop_nr ~value)
                      known )))
          (List.init cfg.slots Fun.id)
      in
      let batch =
        (ckpt_reg, if up_to = 0 then None else Some (encode_ckpt ~values)) :: slots
      in
      let stale = Memory.stale_registers (Memclient.mem client mid) ~region in
      let batch = List.filter (fun (reg, _) -> List.mem reg stale) batch in
      if batch <> [] then
        match Memclient.write_many client ~mem:mid ~region ~values:batch with
        | Memory.Ack ->
            Stats.bump ctx.Cluster.ctx_stats "pmpm.repairs";
            Obs.event ctx.Cluster.ctx_obs ~actor:(Printf.sprintf "p%d" me)
              (Event.Custom
                 { name = "pmpm.repair"; detail = Printf.sprintf "mu%d" mid })
        | Memory.Nak -> ())
[@@simlint.allow
  "F1 repair bookkeeping: the Ack branch only counts the repair in \
   telemetry; the rewritten registers are validated by the next \
   takeover's reads, which run under a fresh permission grab that \
   drains this write (EXPERIMENTS.md W2)"]

(* Take over: grab the permission on every memory and read the whole
   region from a quorum.  On success, installs the reign (adopted values
   + fresh proposal number above everything seen).

   A read nak no longer dooms the takeover: a restarted memory answers
   "I don't know" for its stale registers, so we wait for a quorum of
   SUCCESSFUL chains and repair the nak'd memories afterwards.  The
   highest checkpoint seen installs its decided instances directly
   (learner catch-up without slot replay). *)
let takeover (ctx : _ Cluster.ctx) cfg reign handle =
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let me = ctx.Cluster.pid in
  let client = ctx.Cluster.client in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let regs = ckpt_reg :: all_registers cfg n in
  let chains = Array.init m (fun _ -> Ivar.create ()) in
  for i = 0 to m - 1 do
    ctx.Cluster.spawn_sub
      (Printf.sprintf "pmpm.takeover%d" i)
      (fun () ->
        ignore
          (Memclient.change_permission client ~mem:i ~region
             ~perm:(Permission.exclusive_writer ~writer:me ~n));
        match
          Ivar.await (Memory.read_many_async (Memclient.mem client i) ~from:me ~region ~regs)
        with
        | Memory.Read_many values -> Ivar.fill chains.(i) (Some values)
        | Memory.Read_many_nak -> Ivar.fill chains.(i) None)
  done;
  let rec gather k =
    if k > m then None
    else begin
      let completed = Par.await_k chains k in
      let failed =
        List.filter_map (fun (i, v) -> if v = None then Some i else None) completed
      in
      let ok =
        List.filter_map (fun (i, v) -> Option.map (fun vs -> (i, vs)) v) completed
      in
      if List.length ok >= quorum then Some (ok, failed)
      else gather (quorum + List.length failed)
    end
  in
  match gather quorum with
  | None -> false
  | Some (ok, failed) ->
      (* Adopt the highest checkpoint seen: its instances are decided, so
         install them locally and re-announce for the other learners. *)
      let ckpt = ref [] in
      List.iter
        (fun (_, values) ->
          if Array.length values > 0 then
            match Option.bind values.(0) decode_ckpt with
            | Some vs when List.length vs > List.length !ckpt -> ckpt := vs
            | _ -> ())
        ok;
      List.iteri
        (fun instance value ->
          if instance < cfg.slots then begin
            ignore
              (Ivar.try_fill handle.decisions.(instance)
                 { Report.value; at = Engine.now ctx.Cluster.ctx_engine });
            Network.broadcast ctx.Cluster.ep (encode_decide ~instance ~value)
          end)
        !ckpt;
      let adopted = Array.make cfg.slots None in
      let max_seen = ref 0 in
      List.iter
        (fun (_, values) ->
          (* registers are laid out ckpt first, then instance-major, n per
             instance *)
          Array.iteri
            (fun idx v ->
              if idx > 0 then
                match Option.bind v decode_slot with
                | None -> ()
                | Some (mp, ap, value) ->
                    let instance = (idx - 1) / n in
                    if mp > !max_seen then max_seen := mp;
                    if ap > !max_seen then max_seen := ap;
                    if ap > 0 then
                      match adopted.(instance) with
                      | Some (b, _) when b >= ap -> ()
                      | _ -> adopted.(instance) <- Some (ap, value))
            values)
        ok;
      (* the smallest proposal number of ours above everything seen *)
      let k = ref 1 in
      while (!k * ctx.Cluster.cluster_n) + me + 1 <= !max_seen do
        incr k
      done;
      reign.prop_nr <- (!k * ctx.Cluster.cluster_n) + me + 1;
      reign.adopted <- adopted;
      reign.active <- true;
      (* State-transfer repair of the memories whose chains nak'd (they
         restarted and lost their slots). *)
      List.iter (fun mid -> spawn_repair ctx cfg reign handle mid) failed;
      true

(* Decide one instance under an active reign: a single replicated write.
   Returns false (and ends the reign) on any nak. *)
let fast_decide (ctx : _ Cluster.ctx) cfg reign ~instance ~input decision =
  let m = ctx.Cluster.cluster_m in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  let value =
    match reign.adopted.(instance) with Some (_, v) -> v | None -> input
  in
  let writes =
    Memclient.write_all_async ctx.Cluster.client ~region
      ~reg:(slot_reg ~instance ctx.Cluster.pid)
      (encode_slot ~min_prop:reign.prop_nr ~acc_prop:reign.prop_nr ~value)
  in
  let completed = Par.await_k writes quorum in
  if List.for_all (fun (_, w) -> w = Memory.Ack) completed then begin
    ignore
      (Ivar.try_fill decision { Report.value; at = Engine.now ctx.Cluster.ctx_engine });
    Network.broadcast ctx.Cluster.ep (encode_decide ~instance ~value);
    true
  end
  else begin
    reign.active <- false;
    false
  end

(* One process's program: instances strictly in order; the reign persists
   across instances, so in steady state every decision is one write. *)
let program (ctx : _ Cluster.ctx) cfg ~input_for handle =
  ctx.Cluster.spawn_sub "pmpm.listener" (fun () -> listener ctx cfg handle.decisions);
  let reign =
    {
      (* p0 owns the initial permission over an all-⊥ region: an implicit
         first takeover with nothing adopted *)
      active = ctx.Cluster.pid = 0;
      prop_nr = 1;
      adopted = Array.make cfg.slots None;
    }
  in
  let n = ctx.Cluster.cluster_n in
  let m = ctx.Cluster.cluster_m in
  let f_m = match cfg.f_m with Some f -> f | None -> (m - 1) / 2 in
  let quorum = m - f_m in
  (* Once [checkpoint_every] instances have decided past the last
     checkpoint (and we still hold the reign): write the checkpoint
     register quorum-acked, then truncate the covered slots with one
     batched ⊥-write per memory. *)
  let last_ckpt = ref 0 in
  let maybe_checkpoint instance =
    let decided = instance + 1 in
    if
      cfg.checkpoint_every > 0 && reign.active
      && decided >= !last_ckpt + cfg.checkpoint_every
    then begin
      let values =
        List.init decided (fun i ->
            match Ivar.peek handle.decisions.(i) with
            | Some d -> d.Report.value
            | None -> "" (* unreachable: instances decide strictly in order *))
      in
      let writes =
        Memclient.write_all_async ctx.Cluster.client ~region ~reg:ckpt_reg
          (encode_ckpt ~values)
      in
      let completed = Par.await_k writes quorum in
      if List.for_all (fun (_, w) -> w = Memory.Ack) completed then begin
        let nones =
          List.concat_map
            (fun i -> List.init n (fun q -> (slot_reg ~instance:i q, None)))
            (List.init decided Fun.id)
        in
        let truncs =
          Array.init m (fun i ->
              Memory.write_many_async
                (Memclient.mem ctx.Cluster.client i)
                ~from:ctx.Cluster.pid ~region ~values:nones)
        in
        ignore (Par.await_k truncs quorum);
        last_ckpt := decided;
        Stats.bump ctx.Cluster.ctx_stats "pmpm.checkpoints"
      end
      else reign.active <- false
    end
  in
  (* Custodian: while [serve_until] lasts, the current Ω leader sweeps
     every memory for stale registers and answers with a state transfer,
     so a memory rejoining after the decisions are done still gets
     re-replicated.  The sweep polls [Memory.stale_registers] (one read
     of each memory's per-epoch valid bitmap per period) rather than
     subscribing to [Mem_restart]: an event subscription dies with the
     process, so a leader whose own machine restarted would re-subscribe
     *after* the co-located memory's restart event fired and never learn
     it has a memory to repair. *)
  if cfg.serve_until > 0.0 then
    ctx.Cluster.spawn_sub "pmpm.custodian" (fun () ->
        (* Repair only once every instance has decided locally: the
           checkpoint then covers every decided value, so the transfer
           is safe no matter how stale this process's reign state is.
           Anything earlier is dangerous — even a believed-active reign
           may be deposed, and its adopted array can miss a value a
           newer leader decided before the restart; stamping ⊥ fresh
           over that slot would erase the restart-nak defense.  Mid-run
           restarts are instead repaired by the next takeover, whose
           read observes the nak directly. *)
        let informed () = Array.for_all Ivar.is_full handle.decisions in
        while Engine.now ctx.Cluster.ctx_engine < cfg.serve_until do
          if Omega.leader ctx.Cluster.ctx_omega = ctx.Cluster.pid then begin
            (* Re-announce decided instances: a restarted process missed
               the original broadcasts while it was down, and its
               listener needs them to fill the decisions it skipped.
               Re-announcing a decided value is always safe. *)
            Array.iteri
              (fun instance d ->
                match Ivar.peek d with
                | Some (d : Report.decision) ->
                    Network.broadcast ctx.Cluster.ep
                      (encode_decide ~instance ~value:d.Report.value)
                | None -> ())
              handle.decisions;
            if informed () then
              for mid = 0 to ctx.Cluster.cluster_m - 1 do
                let mem = Memclient.mem ctx.Cluster.client mid in
                if
                  (not (Memory.is_crashed mem))
                  && Memory.stale_registers mem ~region <> []
                then spawn_repair ctx cfg reign handle mid
              done
          end;
          Engine.sleep 5.0
        done);
  let takeovers = ref 0 in
  for instance = 0 to cfg.slots - 1 do
    let decision = handle.decisions.(instance) in
    while not (Ivar.is_full decision) do
      await_leadership_or_decision ctx decision;
      if (not (Ivar.is_full decision))
         && Omega.leader ctx.Cluster.ctx_omega = ctx.Cluster.pid
      then begin
        if not reign.active then begin
          incr takeovers;
          if !takeovers > cfg.max_takeovers then ignore (Ivar.await decision)
          else if not (takeover ctx cfg reign handle) then Engine.sleep 2.0
        end;
        if reign.active && not (Ivar.is_full decision) then
          if
            fast_decide ctx cfg reign ~instance ~input:(input_for ~instance)
              decision
          then maybe_checkpoint instance
      end
    done
  done;
  (* Every instance decided: emit one Decide event carrying the whole
     sequence, so trace consumers (e.g. the chaos oracle) can check
     agreement on the full run. *)
  let value =
    Codec.join
      (List.init cfg.slots (fun i ->
           match Ivar.peek handle.decisions.(i) with
           | Some d -> d.Report.value
           | None -> ""))
  in
  Obs.event ctx.Cluster.ctx_obs ~actor:(Printf.sprintf "p%d" ctx.Cluster.pid)
    (Event.Decide { pid = ctx.Cluster.pid; value })

let spawn cluster ?(cfg = default_config) ~pid ~input_for () =
  let handle = { decisions = Array.init cfg.slots (fun _ -> Ivar.create ()) } in
  Cluster.spawn cluster ~pid (fun ctx -> program ctx cfg ~input_for handle);
  handle

(* Run [cfg.slots] sequential decisions; [input_for ~pid ~instance]
   supplies proposals.  Returns one report per instance. *)
let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ())
    ~n ~m ~input_for () =
  let cluster : string Cluster.t = Cluster.create ~seed ~legal_change ~n ~m () in
  setup_regions cluster cfg;
  let handles =
    Array.init n (fun pid ->
        spawn cluster ~cfg ~pid ~input_for:(fun ~instance -> input_for ~pid ~instance) ())
  in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  Array.init cfg.slots (fun instance ->
      let decisions = Array.map (fun h -> Ivar.peek h.decisions.(instance)) handles in
      Report.of_stats
        ~algorithm:(Printf.sprintf "protected-paxos-multi[%d]" instance)
        ~n ~m ~decisions
        ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
        ~steps:(Engine.steps (Cluster.engine cluster)) ())
