(* Preferential Paxos (Algorithm 8).

   A wrapper around Robust Backup(Paxos) with a set-up phase: every
   process T-sends its (value, evidence) to all, waits to T-receive from
   n − fP processes, adopts the value with the highest *verified*
   priority among those, and proposes the adopted value to Robust
   Backup(Paxos).

   Lemma 4.7 (priority decision): the decision is always one of the
   fP + 1 highest-priority inputs — a process can miss at most fP values
   of higher priority than the one it adopts.

   Priorities are never taken on faith: each input carries *evidence*,
   and receivers classify it themselves with a caller-supplied verifier
   (in Fast & Robust, Definition 3: a correct unanimity proof beats the
   leader's signature beats anything else).  A Byzantine process
   therefore cannot promote an arbitrary value: forging T or M evidence
   requires forging signatures. *)

open Rdma_sim
open Rdma_mm

(* A classifier maps (value, evidence) to a non-negative priority after
   verifying the evidence; unverifiable evidence must be given the bottom
   priority. *)
type classify = value:string -> evidence:string -> int

(* Trust-free default: every input is bottom priority (plain weak
   Byzantine agreement, no preference). *)
let no_priorities : classify = fun ~value:_ ~evidence:_ -> 0

type config = {
  backup : Robust_backup.config;
  f_p : int option; (* default ⌊(n-1)/2⌋ *)
  setup_timeout : float;
      (* safety net: adopt from whatever arrived if the set-up quorum
         never completes (only reachable when > fP processes are faulty) *)
}

let default_config =
  { backup = Robust_backup.default_config; f_p = None; setup_timeout = 400.0 }

let encode_setup ~value ~evidence = Codec.join3 Robust_backup.setup_tag value evidence

let decode_setup msg =
  match Codec.split3 msg with
  | Some (tag, value, evidence) when tag = Robust_backup.setup_tag ->
      Some (value, evidence)
  | _ -> None

type handle = { decision : Report.decision Ivar.t }

let decision h = h.decision

(* Must run inside the process's program fiber. *)
let attach (ctx : _ Cluster.ctx) ?(cfg = default_config) ?(classify = no_priorities)
    ~value ~evidence () =
  let n = ctx.Cluster.cluster_n in
  let f_p = match cfg.f_p with Some f -> f | None -> (n - 1) / 2 in
  let setup_box = Mailbox.create () in
  let transport, trusted =
    Robust_backup.make_channel ctx ~cfg:cfg.backup
      ~route:(fun ~src ~msg ->
        match decode_setup msg with
        | Some (v, e) ->
            Mailbox.send setup_box (src, v, e);
            true
        | None -> false)
      ()
  in
  let decision = Ivar.create () in
  ctx.Cluster.spawn_sub "pp.main" (fun () ->
      (* Set-up phase: send our input to all, gather n − fP inputs
         (first message per sender), adopt the best verified one. *)
      Robust_backup.T_transport.broadcast transport (encode_setup ~value ~evidence);
      let deadline = Engine.now ctx.Cluster.ctx_engine +. cfg.setup_timeout in
      let seen = Hashtbl.create 8 in
      Hashtbl.add seen ctx.Cluster.pid (value, evidence);
      let rec gather () =
        if Hashtbl.length seen >= n - f_p then ()
        else
          let remaining = deadline -. Engine.now ctx.Cluster.ctx_engine in
          if remaining <= 0. then ()
          else
            match Mailbox.recv_timeout setup_box remaining with
            | None -> ()
            | Some (src, v, e) ->
                if not (Hashtbl.mem seen src) then Hashtbl.add seen src (v, e);
                gather ()
      in
      gather ();
      (* Order-independent max-reduction: highest priority class, ties
         broken toward the larger value — a total order, so the
         hash-bucket fold order cannot change the adopted input. *)
      let best =
        (Hashtbl.fold
           (fun _src (v, e) acc ->
             let p = classify ~value:v ~evidence:e in
             match acc with
             | Some (p0, v0) when p0 > p || (p0 = p && v0 >= v) -> acc
             | _ -> Some (p, v))
           seen None)
        [@simlint.allow "D2"]
      in
      let adopted = match best with Some (_, v) -> v | None -> value in
      (* Robust Backup(Paxos) with the adopted input. *)
      let paxos =
        Robust_backup.Paxos_bft.spawn ~engine:ctx.Cluster.ctx_engine
          ~omega:ctx.Cluster.ctx_omega ~cfg:cfg.backup.Robust_backup.paxos
          ~spawn_fiber:ctx.Cluster.spawn_sub ~transport ~input:adopted ()
      in
      Ivar.on_fill (Robust_backup.Paxos_bft.decision paxos) (fun d ->
          ignore (Ivar.try_fill decision d);
          Trusted.stop trusted));
  { decision }

let run ?(cfg = default_config) ?(classify = no_priorities) ?(seed = 1) ?(faults = [])
    ?(prepare = fun _ -> ())
    ?(byzantine : (int * (string Cluster.ctx -> unit)) list = []) ~n ~m
    ~(inputs : (string * string) array) () =
  if Array.length inputs <> n then invalid_arg "Preferential_paxos.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~n ~m () in
  Robust_backup.setup_regions cluster ~cfg:cfg.backup ();
  let handles = Array.make n None in
  for pid = 0 to n - 1 do
    match List.assoc_opt pid byzantine with
    | Some behaviour -> Cluster.spawn_byzantine cluster ~pid behaviour
    | None ->
        Cluster.spawn cluster ~pid (fun ctx ->
            let value, evidence = inputs.(pid) in
            handles.(pid) <- Some (attach ctx ~cfg ~classify ~value ~evidence ()))
  done;
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions =
    Array.map
      (function Some h -> Ivar.peek h.decision | None -> None)
      handles
  in
  let report =
    Report.of_stats ~algorithm:"preferential-paxos" ~n ~m ~decisions
      ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
      ~steps:(Engine.steps (Cluster.engine cluster)) ()
  in
  (report, List.map fst byzantine)
