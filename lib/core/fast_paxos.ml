(* Fast Paxos (Lamport) — the message-passing 2-deciding baseline.

   The paper's comparison point (Section 1): message passing alone can
   decide in two delays in common executions, but needs n ≥ 2fP + 1
   processes, while Protected Memory Paxos achieves the same two delays
   with n ≥ fP + 1 (plus memories).

   We instantiate Fast Paxos with e = 0 (fast quorum = all n acceptors),
   which is the configuration matching the paper's n ≥ 2fP + 1 row: the
   fast path needs every acceptor, so it only fires in failure-free
   executions — exactly the "common case" — while the classic path
   (majority quorums, coordinated by Ω) provides f-crash tolerance.

   Fast path: a proposer broadcasts its value in round 0 (pre-authorized
   "any value"); each acceptor accepts the first round-0 value it sees
   and broadcasts Accepted(0, v); any process that sees all n acceptors
   accept the same v decides — two delays end to end.

   Recovery: if a process suspects the fast round (timeout), the Ω leader
   runs a classic round b ≥ 1.  Value selection from a majority of
   promises: a value accepted at a classic ballot wins by highest ballot;
   otherwise, if any promise reports a round-0 acceptance, the most
   frequent round-0 value is chosen (with a full-n fast quorum, a
   fast-chosen value is reported unanimously, so this is safe); otherwise
   the leader's input. *)

open Rdma_sim
open Rdma_mm
open Rdma_net
open Rdma_obs

type msg =
  | Propose of { value : string } (* round-0 fast proposal *)
  | FastAccepted of { acceptor : int; value : string }
  | Prepare of { ballot : int }
  | Promise of {
      ballot : int;
      accepted_ballot : int; (* 0 = round-0 acceptance or nothing *)
      accepted_value : string;
      has_fast : bool; (* did this acceptor accept in round 0? *)
    }
  | Reject of { ballot : int; higher : int }
  | Accept of { ballot : int; value : string }
  | Accepted of { ballot : int }
  | Decide of { value : string }

let encode = function
  | Propose { value } -> Codec.join [ "fp"; value ]
  | FastAccepted { acceptor; value } ->
      Codec.join [ "fa"; Codec.int_field acceptor; value ]
  | Prepare { ballot } -> Codec.join [ "p1"; Codec.int_field ballot ]
  | Promise { ballot; accepted_ballot; accepted_value; has_fast } ->
      Codec.join
        [ "pr"; Codec.int_field ballot; Codec.int_field accepted_ballot;
          accepted_value; (if has_fast then "1" else "0") ]
  | Reject { ballot; higher } ->
      Codec.join [ "rj"; Codec.int_field ballot; Codec.int_field higher ]
  | Accept { ballot; value } -> Codec.join [ "p2"; Codec.int_field ballot; value ]
  | Accepted { ballot } -> Codec.join [ "ak"; Codec.int_field ballot ]
  | Decide { value } -> Codec.join [ "dc"; value ]

let decode s =
  match Codec.split s with
  | [ "fp"; v ] -> Some (Propose { value = v })
  | [ "fa"; a; v ] ->
      Option.map (fun acceptor -> FastAccepted { acceptor; value = v })
        (Codec.int_of_field a)
  | [ "p1"; b ] -> Option.map (fun ballot -> Prepare { ballot }) (Codec.int_of_field b)
  | [ "pr"; b; ab; av; hf ] -> (
      match (Codec.int_of_field b, Codec.int_of_field ab, hf) with
      | Some ballot, Some accepted_ballot, ("0" | "1") ->
          Some
            (Promise
               { ballot; accepted_ballot; accepted_value = av; has_fast = hf = "1" })
      | _ -> None)
  | [ "rj"; b; h ] -> (
      match (Codec.int_of_field b, Codec.int_of_field h) with
      | Some ballot, Some higher -> Some (Reject { ballot; higher })
      | _ -> None)
  | [ "p2"; b; v ] ->
      Option.map (fun ballot -> Accept { ballot; value = v }) (Codec.int_of_field b)
  | [ "ak"; b ] -> Option.map (fun ballot -> Accepted { ballot }) (Codec.int_of_field b)
  | [ "dc"; v ] -> Some (Decide { value = v })
  | _ -> None

type config = {
  recovery_timeout : float; (* when the leader abandons the fast round *)
  round_timeout : float;
  max_rounds : int;
  proposer_stagger : float;
      (* followers hold their fast proposal back this long per pid, so
         the common case has a single fast proposer *)
}

let default_config =
  { recovery_timeout = 10.0; round_timeout = 8.0; max_rounds = 64;
    proposer_stagger = 4.0 }

type handle = { decision : Report.decision Ivar.t }

let decision h = h.decision

type state = {
  ctx : string Cluster.ctx;
  cfg : config;
  input : string;
  decision : Report.decision Ivar.t;
  acceptor_box : (int * msg) Mailbox.t;
  learner_box : (int * msg) Mailbox.t;
  recovery_box : (int * msg) Mailbox.t;
}

let decide_now st value =
  if
    Ivar.try_fill st.decision
      { Report.value; at = Engine.now st.ctx.Cluster.ctx_engine }
  then
    Obs.event
      (Engine.obs st.ctx.Cluster.ctx_engine)
      ~actor:(Printf.sprintf "p%d" st.ctx.Cluster.pid)
      (Event.Decide { pid = st.ctx.Cluster.pid; value })

let pump st =
  let continue = ref true in
  while !continue do
    let from, payload = Network.recv st.ctx.Cluster.ep in
    match decode payload with
    | None -> ()
    | Some (Decide { value } as m) ->
        decide_now st value;
        Mailbox.send st.acceptor_box (from, m);
        Mailbox.send st.learner_box (from, m);
        Mailbox.send st.recovery_box (from, m);
        continue := false
    | Some (Propose _ as m) | Some (Prepare _ as m) | Some (Accept _ as m) ->
        Mailbox.send st.acceptor_box (from, m)
    | Some (FastAccepted _ as m) -> Mailbox.send st.learner_box (from, m)
    | Some (Promise _ as m) | Some (Reject _ as m) | Some (Accepted _ as m) ->
        Mailbox.send st.recovery_box (from, m)
  done

let acceptor st =
  let ep = st.ctx.Cluster.ep in
  let min_proposal = ref 0 in
  let accepted_ballot = ref 0 in
  let accepted_value = ref None in
  let continue = ref true in
  while !continue do
    let from, m = Mailbox.recv st.acceptor_box in
    match m with
    | Propose { value } ->
        (* Round 0: accept the first value, only if we have not promised
           any classic ballot and not accepted yet. *)
        if !min_proposal = 0 && !accepted_value = None then begin
          accepted_value := Some value;
          Network.broadcast ep
            (encode (FastAccepted { acceptor = st.ctx.Cluster.pid; value }))
        end
    | Prepare { ballot } ->
        if ballot > !min_proposal then begin
          min_proposal := ballot;
          let has_fast = !accepted_ballot = 0 && !accepted_value <> None in
          Network.send ep ~dst:from
            (encode
               (Promise
                  { ballot; accepted_ballot = !accepted_ballot;
                    accepted_value = Option.value !accepted_value ~default:"";
                    has_fast }))
        end
        else
          Network.send ep ~dst:from (encode (Reject { ballot; higher = !min_proposal }))
    | Accept { ballot; value } ->
        if ballot >= !min_proposal && ballot > 0 then begin
          min_proposal := ballot;
          accepted_ballot := ballot;
          accepted_value := Some value;
          Network.send ep ~dst:from (encode (Accepted { ballot }))
        end
        else
          Network.send ep ~dst:from (encode (Reject { ballot; higher = !min_proposal }))
    | Decide _ -> continue := false
    | FastAccepted _ | Promise _ | Reject _ | Accepted _ -> ()
  done

(* Learner: watch for a full fast quorum (all n acceptors) on one value. *)
let learner st =
  let n = st.ctx.Cluster.cluster_n in
  let votes = Hashtbl.create 8 in
  let voted = Array.make n false in
  let continue = ref true in
  while !continue do
    let _, m = Mailbox.recv st.learner_box in
    match m with
    | FastAccepted { acceptor; value } ->
        if acceptor >= 0 && acceptor < n && not voted.(acceptor) then begin
          voted.(acceptor) <- true;
          let count =
            match Hashtbl.find_opt votes value with Some c -> c + 1 | None -> 1
          in
          Hashtbl.replace votes value count;
          if count = n then begin
            decide_now st value;
            Network.broadcast st.ctx.Cluster.ep (encode (Decide { value }));
            continue := false
          end
        end
    | Decide _ -> continue := false
    | Propose _ | Prepare _ | Promise _ | Reject _ | Accept _ | Accepted _ -> ()
  done

(* The fast proposer: p0 fires immediately; others hold back so the
   common case has a single round-0 value. *)
let fast_proposer st =
  let me = st.ctx.Cluster.pid in
  if me > 0 then Engine.sleep (float_of_int me *. st.cfg.proposer_stagger);
  if not (Ivar.is_full st.decision) then
    Network.broadcast st.ctx.Cluster.ep (encode (Propose { value = st.input }))

type collect = Quorum of (int * int * string * bool) list | Rejected | Timeout

let collect_promises st ~ballot ~quorum =
  let deadline = Engine.now st.ctx.Cluster.ctx_engine +. st.cfg.round_timeout in
  let rec loop acc =
    if List.length acc >= quorum then Quorum acc
    else
      let remaining = deadline -. Engine.now st.ctx.Cluster.ctx_engine in
      if remaining <= 0. then Timeout
      else
        match Mailbox.recv_timeout st.recovery_box remaining with
        | None -> Timeout
        | Some (from, m) -> (
            match m with
            | Promise { ballot = b; accepted_ballot; accepted_value; has_fast }
              when b = ballot ->
                loop ((from, accepted_ballot, accepted_value, has_fast) :: acc)
            | Reject { ballot = b; _ } when b = ballot -> Rejected
            | Decide _ -> Rejected
            | Promise _ | Reject _ (* stale ballot *)
            | Propose _ | FastAccepted _ | Prepare _ | Accept _ | Accepted _ ->
                loop acc)
  in
  loop []

let collect_accepts st ~ballot ~quorum =
  let deadline = Engine.now st.ctx.Cluster.ctx_engine +. st.cfg.round_timeout in
  let rec loop count =
    if count >= quorum then Quorum []
    else
      let remaining = deadline -. Engine.now st.ctx.Cluster.ctx_engine in
      if remaining <= 0. then Timeout
      else
        match Mailbox.recv_timeout st.recovery_box remaining with
        | None -> Timeout
        | Some (_, m) -> (
            match m with
            | Accepted { ballot = b } when b = ballot -> loop (count + 1)
            | Reject { ballot = b; _ } when b = ballot -> Rejected
            | Decide _ -> Rejected
            | Accepted _ | Reject _ (* stale ballot *)
            | Propose _ | FastAccepted _ | Prepare _ | Promise _ | Accept _ ->
                loop count)
  in
  loop 0

(* Classic recovery, run by the Ω leader if the fast round stalls. *)
let recovery st =
  let n = st.ctx.Cluster.cluster_n in
  let me = st.ctx.Cluster.pid in
  let ep = st.ctx.Cluster.ep in
  let majority = (n / 2) + 1 in
  Engine.sleep st.cfg.recovery_timeout;
  let round = ref 0 in
  let continue = ref true in
  while !continue do
    if Ivar.is_full st.decision then continue := false
    else begin
      Omega.wait_until_leader st.ctx.Cluster.ctx_omega ~me;
      if Ivar.is_full st.decision then continue := false
      else begin
        incr round;
        if !round > st.cfg.max_rounds then continue := false
        else begin
          let ballot = (!round * n) + me + 1 in
          Network.broadcast ep (encode (Prepare { ballot }));
          match collect_promises st ~ballot ~quorum:majority with
          | Rejected | Timeout -> Engine.sleep 3.0
          | Quorum promises -> (
              (* Value selection (observe that with a full-n fast quorum a
                 fast-chosen value appears in every promise). *)
              let classic_best =
                List.fold_left
                  (fun acc (_, ab, av, _) ->
                    if ab > 0 then
                      match acc with
                      | Some (b, _) when b >= ab -> acc
                      | _ -> Some (ab, av)
                    else acc)
                  None promises
              in
              let value =
                match classic_best with
                | Some (_, v) -> v
                | None -> (
                    let counts = Hashtbl.create 8 in
                    List.iter
                      (fun (_, ab, av, has_fast) ->
                        if ab = 0 && has_fast then
                          let c =
                            match Hashtbl.find_opt counts av with
                            | Some c -> c + 1
                            | None -> 1
                          in
                          Hashtbl.replace counts av c)
                      promises;
                    (* Order-independent max-reduction: highest count,
                       ties broken toward the smaller value — a total
                       order, so the hash-bucket fold order cannot
                       change the result. *)
                    let best =
                      (Hashtbl.fold
                         (fun v c acc ->
                           match acc with
                           | Some (c0, v0) when c0 > c || (c0 = c && v0 <= v) -> acc
                           | _ -> Some (c, v))
                         counts None)
                      [@simlint.allow "D2"]
                    in
                    match best with Some (_, v) -> v | None -> st.input)
              in
              Network.broadcast ep (encode (Accept { ballot; value }));
              match collect_accepts st ~ballot ~quorum:majority with
              | Rejected | Timeout -> Engine.sleep 3.0
              | Quorum _ ->
                  decide_now st value;
                  Network.broadcast ep (encode (Decide { value }));
                  continue := false)
        end
      end
    end
  done

let spawn cluster ?(cfg = default_config) ~pid ~input () =
  let decision = Ivar.create () in
  Cluster.spawn cluster ~pid (fun ctx ->
      let st =
        {
          ctx;
          cfg;
          input;
          decision;
          acceptor_box = Mailbox.create ();
          learner_box = Mailbox.create ();
          recovery_box = Mailbox.create ();
        }
      in
      ctx.Cluster.spawn_sub "fp.pump" (fun () -> pump st);
      ctx.Cluster.spawn_sub "fp.acceptor" (fun () -> acceptor st);
      ctx.Cluster.spawn_sub "fp.learner" (fun () -> learner st);
      ctx.Cluster.spawn_sub "fp.recovery" (fun () -> recovery st);
      fast_proposer st);
  ({ decision } : handle)

let run ?(cfg = default_config) ?(seed = 1) ?(faults = []) ?(prepare = fun _ -> ()) ~n ~inputs () =
  if Array.length inputs <> n then invalid_arg "Fast_paxos.run: |inputs| <> n";
  let cluster = Cluster.create ~seed ~n ~m:0 () in
  let handles = Array.init n (fun pid -> spawn cluster ~cfg ~pid ~input:inputs.(pid) ()) in
  prepare cluster;
  Fault.apply cluster faults;
  Cluster.run cluster;
  Cluster.check_errors cluster;
  let decisions = Array.map (fun (h : handle) -> Ivar.peek h.decision) handles in
  Report.of_stats ~algorithm:"fast-paxos" ~n ~m:0 ~decisions
    ~obs:(Cluster.obs cluster)
    ~stats:(Cluster.stats cluster)
    ~steps:(Engine.steps (Cluster.engine cluster)) ()
