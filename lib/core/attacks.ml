(* A library of Byzantine behaviours.

   Each attack is an ordinary process program: it receives the same
   capability bundle as an honest process — its own signer, its own
   memory client, its own network endpoint — and nothing else.  It can
   write garbage, equivocate, replay, and lie, but it cannot forge
   signatures, spoof senders, or bypass memory permissions.  Tests and
   examples run these against the algorithms to check containment. *)

open Rdma_sim
open Rdma_mem
open Rdma_mm
open Rdma_crypto

(* {2 Attacks on non-equivocating broadcast} *)

(* Write a signed (k, m1) into our NEB slot, then overwrite it with a
   signed (k, m2): readers that copied m1 and readers that see m2 expose
   the conflict during cross-checking, so nobody delivers. *)
let neb_overwrite_equivocation ~m1 ~m2 (ctx : _ Cluster.ctx) =
  let me = ctx.Cluster.pid in
  let own = Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:(Neb.region_of me) in
  let slot = Neb.slot_reg ~owner:me ~k:1 ~src:me in
  let signed m =
    Neb.encode_slot ~k:1 ~msg:m
      ~signature:(Keychain.sign ctx.Cluster.signer (Neb.slot_payload ~k:1 m))
  in
  ignore (Rdma_reg.Swmr.write own ~reg:slot (signed m1));
  Engine.sleep 8.0;
  ignore (Rdma_reg.Swmr.write own ~reg:slot (signed m2))

(* Plant different signed values on different memory replicas of the same
   slot — memory-level equivocation, defeated by the Swmr read rule. *)
let neb_replica_equivocation ~m1 ~m2 (ctx : _ Cluster.ctx) =
  let me = ctx.Cluster.pid in
  let slot = Neb.slot_reg ~owner:me ~k:1 ~src:me in
  let signed m =
    Neb.encode_slot ~k:1 ~msg:m
      ~signature:(Keychain.sign ctx.Cluster.signer (Neb.slot_payload ~k:1 m))
  in
  let client = ctx.Cluster.client in
  for i = 0 to Memclient.memory_count client - 1 do
    let v = if i mod 2 = 0 then signed m1 else signed m2 in
    ignore (Memclient.write client ~mem:i ~region:(Neb.region_of me) ~reg:slot v)
  done

(* {2 Attacks on Cheap Quorum} *)

(* A Byzantine leader that writes *different signed values* to different
   memory replicas of the leader region.  Followers' majority reads see
   two distinct values and return ⊥, so they time out and panic. *)
let cq_equivocating_leader ~v1 ~v2 (ctx : _ Cluster.ctx) =
  let sign v = Keychain.sign ctx.Cluster.signer (Cheap_quorum.value_payload v) in
  let client = ctx.Cluster.client in
  for i = 0 to Memclient.memory_count client - 1 do
    let v = if i mod 2 = 0 then v1 else v2 in
    ignore
      (Memclient.write client ~mem:i ~region:Cheap_quorum.leader_region
         ~reg:Cheap_quorum.leader_value_reg
         (Cheap_quorum.encode_leader_value ~value:v ~sig_l:(sign v)))
  done

(* A leader that proposes nothing: followers time out and panic. *)
let cq_silent_leader (_ctx : _ Cluster.ctx) = ()

(* A leader that writes an unsigned (forged) proposal. *)
let cq_forging_leader ~value (ctx : _ Cluster.ctx) =
  let client = ctx.Cluster.client in
  let forged = Keychain.forge ~author:Cheap_quorum.leader (Cheap_quorum.value_payload value) in
  for i = 0 to Memclient.memory_count client - 1 do
    ignore
      (Memclient.write client ~mem:i ~region:Cheap_quorum.leader_region
         ~reg:Cheap_quorum.leader_value_reg
         (Cheap_quorum.encode_leader_value ~value ~sig_l:forged))
  done

(* A follower that immediately revokes the leader's write permission —
   the only permission change legalChange admits — before the leader's
   proposal lands, forcing the leader's write to nak. *)
let cq_early_revoker (ctx : _ Cluster.ctx) =
  let n = ctx.Cluster.cluster_n in
  let lregion =
    Rdma_reg.Swmr.attach ~client:ctx.Cluster.client ~region:Cheap_quorum.leader_region
  in
  Rdma_reg.Swmr.change_permission lregion ~perm:(Permission.read_all ~n)

(* A follower that tries to *steal* the leader region — requesting write
   permission for itself, which legalChange must refuse. *)
let cq_permission_thief ~then_ (ctx : _ Cluster.ctx) =
  let n = ctx.Cluster.cluster_n in
  let client = ctx.Cluster.client in
  for i = 0 to Memclient.memory_count client - 1 do
    ignore
      (Memclient.change_permission client ~mem:i ~region:Cheap_quorum.leader_region
         ~perm:(Permission.exclusive_writer ~writer:ctx.Cluster.pid ~n))
  done;
  then_ ctx

(* {2 Attacks on Preferential Paxos / Robust Backup} *)

(* Join Preferential Paxos claiming top (T) priority with fabricated
   evidence: the verified classifier must demote it to B. *)
let pp_priority_liar ~value (ctx : _ Cluster.ctx) =
  let transport, _trusted = Robust_backup.make_channel ctx () in
  Robust_backup.T_transport.broadcast transport
    (Preferential_paxos.encode_setup ~value ~evidence:(Codec.join2 "T" "garbage-proof"))

(* Over the trusted layer, send a Promise citing an accepted value the
   history cannot justify: the Paxos replay validator must reject it and
   convict us at every correct receiver. *)
let rb_fabricated_promise ~ballot ~value (ctx : _ Cluster.ctx) =
  let transport, _trusted = Robust_backup.make_channel ctx () in
  Robust_backup.T_transport.send transport ~dst:0
    (Paxos.encode
       (Paxos.Promise { ballot; accepted_ballot = 1; accepted_value = value }))

(* Send a Decide for an arbitrary value with no quorum behind it. *)
let rb_spurious_decide ~value (ctx : _ Cluster.ctx) =
  let transport, _trusted = Robust_backup.make_channel ctx () in
  Robust_backup.T_transport.broadcast transport (Paxos.encode (Paxos.Decide { value }))

(* Send an Accept without ever preparing or gathering promises: the
   replay validator must reject it (no Sent Prepare, no promise
   quorum). *)
let rb_unjustified_accept ~ballot ~value (ctx : _ Cluster.ctx) =
  let transport, _trusted = Robust_backup.make_channel ctx () in
  Robust_backup.T_transport.broadcast transport
    (Paxos.encode (Paxos.Accept { ballot; value }))

(* Behave correctly long enough to receive a Prepare, then answer it with
   TWO different promises for the same ballot — the replay catches the
   second (its ballot is no longer above the replayed minProposal). *)
let rb_double_promise (ctx : _ Cluster.ctx) =
  let box = Rdma_sim.Mailbox.create () in
  let transport, _trusted =
    Robust_backup.make_channel ctx
      ~route:(fun ~src ~msg ->
        match Paxos.decode msg with
        | Some (Paxos.Prepare { ballot }) ->
            Rdma_sim.Mailbox.send box (src, ballot);
            true
        | Some
            ( Paxos.Promise _ | Paxos.Reject _ | Paxos.Accept _
            | Paxos.Accepted _ | Paxos.Decide _ )
        | None ->
            false)
      ()
  in
  let src, ballot = Rdma_sim.Mailbox.recv box in
  let promise accepted_value =
    Robust_backup.T_transport.send transport ~dst:src
      (Paxos.encode
         (Paxos.Promise { ballot; accepted_ballot = 0; accepted_value }))
  in
  promise "";
  promise "second-opinion"
