(** Fast & Robust (Section 4.3, Theorem 4.9): weak Byzantine agreement
    with n ≥ 2fP + 1 processes and m ≥ 2fM + 1 memories, 2-deciding in
    common executions.  Cheap Quorum first; on abort, Preferential Paxos
    with Definition 3 priorities (the composition of Figure 6). *)

open Rdma_sim
open Rdma_mm
open Rdma_crypto

val encode_evidence : Cheap_quorum.evidence -> string

(** Definition 3, verified within instance namespace [ns]: T (correct
    unanimity proof) = 2 > M (leader-signed) = 1 > B = 0. *)
val classify : ?ns:string -> Keychain.t -> n:int -> Preferential_paxos.classify

type config = {
  cheap_quorum : Cheap_quorum.config;
  preferential : Preferential_paxos.config;
}

val default_config : config

(** A configuration whose Cheap Quorum and NEB layers live in instance
    namespace [ns] — the slots of a BFT log use one per slot. *)
val config_with_ns : ?base:config -> string -> config

val ns_of : config -> string

type handle

val decision : handle -> Report.decision Ivar.t

val setup_regions : 'm Cluster.t -> ?cfg:config -> unit -> unit

val legal_change : n:int -> Rdma_mem.Permission.legal_change

(** Run one instance from inside an existing process fiber (blocking
    through the Cheap Quorum phase); the ivar fills on decision. *)
val attach :
  string Cluster.ctx -> ?cfg:config -> input:string -> unit -> Report.decision Ivar.t
[@@sim.yields]

val spawn :
  string Cluster.t -> ?cfg:config -> pid:int -> input:string -> unit -> handle

(** Run one instance; returns the report, the Byzantine pids, and the
    cluster (for stats and trace inspection). *)
val run :
  ?cfg:config ->
  ?seed:int ->
  ?faults:Fault.t list ->
  ?prepare:(string Cluster.t -> unit) ->
  ?byzantine:(int * (string Cluster.ctx -> unit)) list ->
  n:int ->
  m:int ->
  inputs:string array ->
  unit ->
  Report.t * int list * string Cluster.t
